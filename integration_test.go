// End-to-end integration tests over the public API only — what a
// downstream user of the library sees.
package repro_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/sac"
	saclang "repro/sac/lang"
	"repro/snet"
	"repro/snet/lang"
	"repro/sudoku"
)

// The full stack in one test: a textual S-Net program whose boxes are the
// sudoku solver's, built via the registry, solving a puzzle.
func TestPublicAPIDSLSudoku(t *testing.T) {
	pool := sac.NewPool(1)
	reg := lang.NewRegistry().
		RegisterNode("computeOpts", sudoku.ComputeOptsBox(pool)).
		RegisterNode("solveOneLevel", sudoku.SolveOneLevelBoxFig2(pool))
	net, err := lang.BuildText(`
		box computeOpts (board) -> (board, opts);
		box solveOneLevel (board, opts) -> (board, opts, <k>) | (board, <done>);
		net fig2 connect
		    computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>});
	`, "fig2", reg)
	if err != nil {
		t.Fatal(err)
	}
	board, stats, err := sudoku.SolveWithNet(context.Background(), net, sudoku.Easy())
	if err != nil || board == nil {
		t.Fatalf("board=%v err=%v", board, err)
	}
	if !board.Equal(sudoku.EasySolution()) {
		t.Fatal("wrong solution")
	}
	if stats.Counter("star.fig2.star.replicas") == 0 {
		t.Fatal("no unfolding stats")
	}
}

// Public array API: the paper's §2 semantics.
func TestPublicAPISacArrays(t *testing.T) {
	p := sac.NewPool(2)
	v := sac.Genarray(p, []int{6}, 0,
		sac.GenHalfOpen([]int{1}, []int{4}, func(iv []int) int { return 1 }),
		sac.GenHalfOpen([]int{3}, []int{5}, func(iv []int) int { return 2 }))
	if !sac.Equal(v, sac.Vector(0, 1, 1, 2, 2, 0)) {
		t.Fatalf("got %v", v)
	}
	m := sac.Modarray(p, v, sac.GenHalfOpen([]int{0}, []int{3}, func(iv []int) int { return 3 }))
	if !sac.Equal(m, sac.Vector(3, 3, 3, 2, 2, 0)) {
		t.Fatalf("got %v", m)
	}
	if sac.Sum(p, sac.Iota(100)) != 4950 {
		t.Fatal("Sum broken")
	}
	if got := sac.Fold(p, 0, func(a, b int) int { return a + b },
		sac.GenClosed([]int{1}, []int{10}, func(iv []int) int { return iv[0] })); got != 55 {
		t.Fatalf("fold = %d", got)
	}
}

// Public interpreter API: run the paper's embedded sudoku.sac directly.
func TestPublicAPISacInterpreter(t *testing.T) {
	itp := saclang.New(saclang.MustParse(saclang.SudokuSaC), sac.NewPool(1))
	board := sudoku.BoardToValue(sudoku.Easy())
	res, err := itp.Call("computeOpts", []saclang.Value{board}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := itp.Call("solve", []saclang.Value{res[0], res[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sudoku.ValueToBoard(res2[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sudoku.EasySolution()) {
		t.Fatal("interpreted solve wrong")
	}
}

// Public coordination API: combinators, determinism, tracing, stats.
func TestPublicAPICoordination(t *testing.T) {
	var traced atomic.Int64 // Tracers must be safe for concurrent use
	tracer := snet.TracerFunc(func(node, dir string, rec *snet.Record) { traced.Add(1) })
	dec := snet.NewBox("dec", snet.MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"),
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		})
	net := snet.StarDet(dec, snet.MustParsePattern("{<done>}"))
	inputs := []*snet.Record{
		snet.NewRecord().SetTag("n", 3).SetTag("seq", 0),
		snet.NewRecord().SetTag("n", 1).SetTag("seq", 1),
		snet.NewRecord().SetTag("n", 2).SetTag("seq", 2),
	}
	out, _, err := snet.RunAll(context.Background(), net, inputs, snet.WithTracer(tracer))
	if err != nil || len(out) != 3 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i, r := range out {
		if s, _ := r.Tag("seq"); s != i {
			t.Fatalf("det order broken: %v", out)
		}
	}
	if traced.Load() == 0 {
		t.Fatal("tracer saw nothing")
	}
}

// The network checker is reachable and informative from the facade.
func TestPublicAPITypecheck(t *testing.T) {
	a := snet.NewBox("a", snet.MustParseSignature("(x) -> (y)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0]) })
	b := snet.NewBox("b", snet.MustParseSignature("(zz) -> (w)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0]) })
	_, _, diags := snet.Check(snet.Serial(a, b))
	if len(diags) == 0 {
		t.Fatal("expected a diagnostic")
	}
	if !strings.Contains(diags[0].String(), "warning") {
		t.Fatalf("diag = %v", diags[0])
	}
}

// Generated puzzles of several sizes solve through the public networks.
func TestPublicAPIGeneratedBoards(t *testing.T) {
	pool := sac.NewPool(1)
	for _, n := range []int{2, 3} {
		puzzle, solution := sudoku.Generate(pool, n, 11, n*n*2, true)
		got, _, err := sudoku.SolveWithNet(context.Background(),
			sudoku.Fig3Net(sudoku.NetConfig{Pool: pool, Throttle: 2, ExitLevel: n * n * n}), puzzle)
		if err != nil || got == nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(solution) {
			t.Fatalf("n=%d: wrong solution", n)
		}
	}
}
