package service

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/snet"
)

// This file implements Shared session mode: one long-lived, warm network
// instance per registered network, multiplexing every session over indexed
// parallel replication — the paper's own per-key isolation mechanism
// (A !! <tag>, §4) turned into a serving architecture.
//
// The engine wraps the user's root in SessionSplit(root, "__snet_session").
// Opening a session allocates a session id (a map insert — no graph
// instantiation); the first record carrying a fresh id makes the split
// unfold a private replica of the user's network, so per-session state
// (star unfolding, synchrocells) stays isolated exactly as in Isolated
// mode.  Flow inheritance carries the reserved session tag through every
// box untouched.
//
//	ingress: session → bounded queue → round-robin feeder → warm instance
//	egress:  warm instance → demux (routes by session tag, strips it)
//	         → per-session bounded receive queue
//
// Teardown rides the split close protocol: CloseInput (or Release) makes
// the feeder send NewReplicaCloseAck for the session id after the session's
// queued records — FIFO — so the replica drains, its goroutines are
// reclaimed (the "split.session_mux.replicas" gauge decrements), and the
// acknowledgement record surfacing at the demux is the end-of-session
// barrier that completes Recv with done.  Session ids are only reused after
// that barrier, so a recycled id can never reach a draining replica.

// sessionTag is the reserved index tag of the session-multiplexing split.
const sessionTag = snet.ReservedTagPrefix + "session"

// sessionMuxName names the engine's split in run statistics:
// "split.session_mux.replicas" is the live-session replica gauge.
const sessionMuxName = "session_mux"

// engine is one network's warm shared instance plus the session mux state.
type engine struct {
	net    *Network
	handle *snet.Handle
	cancel context.CancelFunc
	ctx    context.Context
	notify chan struct{} // feeder wakeup (capacity 1)
	down   chan struct{} // closed when the engine has wound down

	mu       sync.Mutex
	shut     bool
	sessions map[int]*sharedSession // live ids, until the close barrier
	ring     []*sharedSession       // feeder round-robin order
	ringGen  uint64                 // bumped on every ring change
	free     []int                  // ids past their close barrier, reusable
	seq      int

	demuxDone  chan struct{}
	feederDone chan struct{}
}

// newEngine builds the warm instance for one network and starts its feeder
// and demux loops.  The engine wraps the network's compiled plan, so shared
// sessions dispatch through the same routing tables as isolated ones.
func newEngine(n *Network) (*engine, error) {
	plan, err := n.Plan()
	if err != nil {
		return nil, err
	}
	// The session split wraps the *execution* tree: with fusion on, every
	// session replica then unfolds the fused segments — O(barriers)
	// goroutines per session instead of O(stages).
	root := plan.ExecRoot()
	ctx, cancel := context.WithCancel(context.Background())
	e := &engine{
		net:        n,
		cancel:     cancel,
		ctx:        ctx,
		notify:     make(chan struct{}, 1),
		down:       make(chan struct{}),
		sessions:   map[int]*sharedSession{},
		demuxDone:  make(chan struct{}),
		feederDone: make(chan struct{}),
	}
	e.handle = snet.Start(ctx, snet.SessionSplit(sessionMuxName, root, sessionTag),
		n.opts.runOptions()...)
	go e.demux()
	go e.feeder()
	return e, nil
}

// poke wakes the feeder; lossy by design (capacity 1).
func (e *engine) poke() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// open allocates a session slot on the warm engine: an id, two bounded
// queues, a ring entry.  No network machinery is instantiated — the
// replica unfolds lazily on the session's first record.
func (e *engine) open() (*sharedSession, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.shut {
		return nil, ErrShutdown
	}
	var sid int
	if n := len(e.free); n > 0 {
		sid, e.free = e.free[n-1], e.free[:n-1]
	} else {
		e.seq++
		sid = e.seq
	}
	cap := e.net.opts.queueCap()
	b := &sharedSession{
		eng:      e,
		sid:      sid,
		ingress:  make(chan *snet.Record, cap),
		out:      make(chan *snet.Record, cap),
		inClosed: make(chan struct{}),
		released: make(chan struct{}),
	}
	e.sessions[sid] = b
	e.ring = append(e.ring, b)
	e.ringGen++
	e.net.svcStat.SetMax("engine.sessions", int64(len(e.sessions)))
	return b, nil
}

// ringSnapshot returns the feeder ring, reusing the previous snapshot while
// the ring is unchanged (gen) so a busy steady-state feeder pass costs no
// allocation and no time under the engine lock proportional to S.
func (e *engine) ringSnapshot(prev []*sharedSession, prevGen uint64) ([]*sharedSession, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ringGen == prevGen {
		return prev, prevGen
	}
	out := make([]*sharedSession, len(e.ring))
	copy(out, e.ring)
	return out, e.ringGen
}

// dropFromRing removes a session from the feeder rotation (its close
// acknowledgement has been sent; nothing more will be fed for it).
func (e *engine) dropFromRing(b *sharedSession) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, s := range e.ring {
		if s == b {
			e.ring = append(e.ring[:i], e.ring[i+1:]...)
			e.ringGen++
			return
		}
	}
}

// unregister frees a session id once its close barrier has surfaced at the
// demux: the replica has fully drained, so the id is safe to reuse.
func (e *engine) unregister(b *sharedSession) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, live := e.sessions[b.sid]; !live {
		return
	}
	delete(e.sessions, b.sid)
	e.free = append(e.free, b.sid)
}

// sessionCount reports the number of session ids not yet past their close
// barrier.
func (e *engine) sessionCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// feeder is the ingress half of the mux: one goroutine round-robins over
// the live sessions' queues, moving at most one record per session per pass
// into the warm instance — ingress fairness, so a firehose session cannot
// starve its neighbours at the shared boundary.  When a session's input has
// finished (CloseInput, Release, or idle reap → Release), the feeder sends
// the session's replica-close acknowledgement after its queued records and
// retires it from the rotation.
func (e *engine) feeder() {
	defer close(e.feederDone)
	bg := context.Background()
	var ring []*sharedSession
	var gen uint64
	for {
		moved := false
		ring, gen = e.ringSnapshot(ring, gen)
		for _, b := range ring {
			if b.drop.Load() {
				// Released: queued input is discarded, not fed.
				for {
					select {
					case r := <-b.ingress:
						snet.ReleaseRecord(r)
						moved = true
						continue
					default:
					}
					break
				}
			}
			select {
			case r := <-b.ingress:
				moved = true
				if b.drop.Load() {
					snet.ReleaseRecord(r)
					continue
				}
				r.SetTag(sessionTag, b.sid)
				if e.handle.SendCtx(bg, r) != nil {
					return // engine cancelled
				}
			default:
				if b.inputDone() && len(b.ingress) == 0 && !b.ackSent {
					b.ackSent = true
					moved = true
					e.dropFromRing(b)
					if e.handle.SendCtx(bg, snet.NewReplicaCloseAck(sessionTag, b.sid)) != nil {
						return
					}
				}
			}
		}
		if !moved {
			select {
			case <-e.notify:
			case <-e.ctx.Done():
				return
			}
		}
	}
}

// demux is the egress half of the mux: it routes every output record of the
// warm instance to its session's bounded receive queue by the reserved
// session tag (stripped before delivery).  The replica-close
// acknowledgement is the end-of-session barrier: it completes the session's
// output stream and frees the id.  Records of a released session are
// discarded (counted under "engine.dropped"), which also keeps one dead
// session from head-of-line-blocking the shared output stream.
func (e *engine) demux() {
	defer close(e.demuxDone)
	stat := e.net.svcStat
	for r := range e.handle.Out() {
		sid, ok := r.Tag(sessionTag)
		if !ok {
			stat.Add("engine.stray", 1)
			continue
		}
		e.mu.Lock()
		b := e.sessions[sid]
		e.mu.Unlock()
		if b == nil {
			stat.Add("engine.stray", 1)
			continue
		}
		if snet.IsReplicaClose(r) {
			e.unregister(b)
			close(b.out)
			continue
		}
		r.DeleteTag(sessionTag)
		select {
		case b.out <- r:
		case <-b.released:
			stat.Add("engine.dropped", 1)
		case <-e.ctx.Done():
			// cancelled mid-route; the closed Out ends the loop next spin
		}
	}
	// Engine wound down (service shutdown or cancellation): complete every
	// remaining session's output stream so blocked clients unwind.
	e.mu.Lock()
	remaining := e.sessions
	e.sessions = map[int]*sharedSession{}
	e.ring = nil
	e.mu.Unlock()
	for _, b := range remaining {
		close(b.out)
	}
	close(e.down)
}

// shutdown cancels the warm instance and joins the mux loops.  Idempotent.
func (e *engine) shutdown() {
	e.mu.Lock()
	already := e.shut
	e.shut = true
	e.mu.Unlock()
	e.cancel()
	if !already {
		e.handle.Wait()
	}
	<-e.demuxDone
	<-e.feederDone
}

// engineClosedBit marks a shared session's input as closed in sendState
// (same discipline as the runtime boundary's Handle.sendState).
const engineClosedBit = int64(1) << 62

// sharedSession is the Shared-mode backend of one Session: a slot on the
// network's warm engine.
type sharedSession struct {
	eng     *engine
	sid     int
	ingress chan *snet.Record
	out     chan *snet.Record

	// sendState guards the input side without blocking senders on a lock:
	// low bits count in-flight sends, engineClosedBit marks CloseInput.
	// The last sender out (or CloseInput itself, with none in flight)
	// closes inClosed, after which the feeder knows the ingress queue is
	// complete and may send the replica-close acknowledgement.
	sendState atomic.Int64
	inClosed  chan struct{}
	inOnce    sync.Once
	released  chan struct{}
	relOnce   sync.Once
	drop      atomic.Bool // release: discard queued input

	ackSent bool // feeder-owned: close acknowledgement dispatched
}

func (b *sharedSession) acquireSend() error {
	for {
		s := b.sendState.Load()
		if s&engineClosedBit != 0 {
			return snet.ErrClosed
		}
		if b.sendState.CompareAndSwap(s, s+1) {
			return nil
		}
	}
}

func (b *sharedSession) releaseSend() {
	if b.sendState.Add(-1) == engineClosedBit {
		b.markInputDone()
	}
}

func (b *sharedSession) markInputDone() {
	b.inOnce.Do(func() { close(b.inClosed) })
	b.eng.poke()
}

func (b *sharedSession) inputDone() bool {
	select {
	case <-b.inClosed:
		return true
	default:
		return false
	}
}

func (b *sharedSession) send(ctx context.Context, r *snet.Record) error {
	if err := b.acquireSend(); err != nil {
		return err
	}
	defer b.releaseSend()
	select {
	case b.ingress <- r:
		b.eng.poke()
		return nil
	case <-b.released:
		return snet.ErrCancelled
	case <-b.eng.down:
		return snet.ErrCancelled
	case <-b.eng.ctx.Done():
		return snet.ErrCancelled
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *sharedSession) sendBatch(ctx context.Context, recs []*snet.Record) (int, error) {
	for i, r := range recs {
		if err := b.send(ctx, r); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}

func (b *sharedSession) closeInput() {
	for {
		s := b.sendState.Load()
		if s&engineClosedBit != 0 {
			return
		}
		if b.sendState.CompareAndSwap(s, s|engineClosedBit) {
			if s == 0 {
				b.markInputDone()
			}
			b.eng.poke()
			return
		}
	}
}

func (b *sharedSession) recv(ctx context.Context) (*snet.Record, bool, error) {
	select {
	case r, ok := <-b.out:
		if !ok {
			return nil, true, nil
		}
		return r, false, nil
	case <-b.released:
		return nil, false, snet.ErrCancelled
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// release retires the session: further sends fail, queued input is
// discarded by the feeder, in-flight output is dropped at the demux, and
// the replica is reclaimed by the warm engine through the close protocol —
// asynchronously, in FIFO position behind the session's in-flight work.
func (b *sharedSession) release() {
	b.drop.Store(true)
	b.closeInput()
	b.relOnce.Do(func() { close(b.released) })
	b.eng.poke()
}

func (b *sharedSession) handle() *snet.Handle  { return b.eng.handle }
func (b *sharedSession) runStats() *snet.Stats { return nil }
