//go:build race

package service

// raceEnabled reports whether this test binary was built with -race; the
// soak test skips itself there (the detector's memory overhead at 100k
// sessions dwarfs the scenario being tested).
const raceEnabled = true
