package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/workloads"
	"repro/snet"
)

// TestDivConqCrossModeDeterminism extends the cross-mode determinism
// property to recursive star nets: the divide-and-conquer workload — star
// unfolding, per-pair split replicas and synchrocell joins — must produce
// the same per-job output under every (W,B) ∈ {1,4}×{1,64} combination in
// both session modes, with several sessions running concurrently over the
// same network.
func TestDivConqCrossModeDeterminism(t *testing.T) {
	const jobs, n, leaf = 4, 64, 8
	const sessions = 3

	reference := func(seed int64) map[int]string {
		want := make(map[int]string, jobs)
		for j := 0; j < jobs; j++ {
			want[j] = fmt.Sprint(workloads.DivConqReference(workloads.DivConqInput(n, seed, j)))
		}
		return want
	}

	for _, mode := range []SessionMode{Isolated, Shared} {
		for _, w := range []int{1, 4} {
			for _, b := range []int{1, 64} {
				mode, w, b := mode, w, b
				t.Run(fmt.Sprintf("%s/W=%d/B=%d", mode, w, b), func(t *testing.T) {
					svc := New()
					defer svc.Shutdown()
					svc.Register("dc", "", Options{
						SessionMode:   mode,
						BoxWorkers:    w,
						StreamBatch:   b,
						BufferSize:    4,
						MaxSplitWidth: workloads.DivConqSplitWidth(jobs, n, leaf),
					}, func(Options) (snet.Node, error) {
						return workloads.DivConqNet(n, leaf), nil
					}, nil)

					var wg sync.WaitGroup
					for c := 0; c < sessions; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							seed := int64(100 + c)
							sess, err := svc.Open("dc")
							if err != nil {
								t.Errorf("session %d: open: %v", c, err)
								return
							}
							defer sess.Release()
							ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
							defer cancel()
							if _, err := sess.SendBatch(ctx, workloads.DivConqJobs(jobs, n, seed)); err != nil {
								t.Errorf("session %d: send: %v", c, err)
								return
							}
							sess.CloseInput()
							recs, done, err := sess.Drain(ctx, 0)
							if err != nil || !done {
								t.Errorf("session %d: drain: done=%v err=%v", c, done, err)
								return
							}
							if len(recs) != jobs {
								t.Errorf("session %d: %d output records, want %d", c, len(recs), jobs)
								return
							}
							want := reference(seed)
							for _, rec := range recs {
								job := rec.MustTag("job")
								if got := fmt.Sprint(rec.MustField("out").([]int)); got != want[job] {
									t.Errorf("session %d job %d: output diverged from reference", c, job)
								}
							}
						}(c)
					}
					wg.Wait()
				})
			}
		}
	}
}
