package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/snet"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New()
	svc.Register("inc", "increment <n>", Options{BufferSize: 4, MaxSessions: 128}, incNet, nil)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Shutdown() })
	return svc, ts
}

// call issues a JSON request and decodes the JSON response into out.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	var opened struct {
		Session string `json:"session"`
	}
	if code := call(t, "POST", ts.URL+"/api/sessions", map[string]string{"net": "inc"}, &opened); code != http.StatusCreated {
		t.Fatalf("open: status %d", code)
	}
	recs := []RecordJSON{
		{Tags: map[string]int{"n": 1}},
		{Tags: map[string]int{"n": 2}, Fields: map[string]string{"who": "client"}},
	}
	var fed struct {
		Accepted int `json:"accepted"`
	}
	url := ts.URL + "/api/sessions/" + opened.Session
	if code := call(t, "POST", url+"/records", map[string]any{"records": recs, "close": true}, &fed); code != http.StatusOK {
		t.Fatalf("records: status %d", code)
	}
	if fed.Accepted != 2 {
		t.Fatalf("accepted %d", fed.Accepted)
	}
	var res struct {
		Records []RecordJSON `json:"records"`
		Done    bool         `json:"done"`
	}
	if code := call(t, "GET", url+"/results?wait=5s", nil, &res); code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
	if !res.Done || len(res.Records) != 2 {
		t.Fatalf("results: %+v", res)
	}
	seen := map[int]RecordJSON{}
	for _, r := range res.Records {
		seen[r.Tags["n"]] = r
	}
	if _, ok := seen[2]; !ok {
		t.Fatalf("missing <n>=2: %+v", res.Records)
	}
	if got := seen[3].Fields["who"]; got != "client" {
		t.Fatalf("flow inheritance lost the field: %+v", seen[3])
	}
	if code := call(t, "DELETE", url, nil, nil); code != http.StatusOK {
		t.Fatalf("release: status %d", code)
	}
	if code := call(t, "GET", url+"/results", nil, nil); code != http.StatusNotFound {
		t.Fatalf("results after release: status %d, want 404", code)
	}
}

func TestHTTPRunAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	var res struct {
		Records []RecordJSON `json:"records"`
		Done    bool         `json:"done"`
		Ms      float64      `json:"ms"`
	}
	body := map[string]any{
		"net":     "inc",
		"records": []RecordJSON{{Tags: map[string]int{"n": 41}}},
		"wait":    "5s",
	}
	if code := call(t, "POST", ts.URL+"/api/run", body, &res); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	if !res.Done || len(res.Records) != 1 || res.Records[0].Tags["n"] != 42 {
		t.Fatalf("run result: %+v", res)
	}
	var stats map[string]int64
	if code := call(t, "GET", ts.URL+"/api/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	for _, key := range []string{
		"net.inc.run.count", "net.inc.records.in", "net.inc.records.out",
		"net.inc.latency.run_ns", "run.inc.box.inc.calls",
	} {
		if stats[key] == 0 {
			t.Fatalf("stats[%q] = 0; snapshot: %v", key, stats)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if code := call(t, "POST", ts.URL+"/api/sessions", map[string]string{"net": "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown net: status %d", code)
	}
	if code := call(t, "GET", ts.URL+"/api/sessions/s999/results", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if code := call(t, "GET", ts.URL+"/api/healthz", nil, &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: %d %+v", code, health)
	}
}

func TestHTTPSessionLimit(t *testing.T) {
	svc := New()
	svc.Register("inc", "", Options{MaxSessions: 1}, incNet, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown()
	var opened struct {
		Session string `json:"session"`
	}
	if code := call(t, "POST", ts.URL+"/api/sessions", map[string]string{"net": "inc"}, &opened); code != http.StatusCreated {
		t.Fatalf("open: %d", code)
	}
	if code := call(t, "POST", ts.URL+"/api/sessions", map[string]string{"net": "inc"}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over limit: status %d, want 429", code)
	}
}

// TestHTTPErrorPaths covers the client-fault surface of the wire protocol:
// unknown names, malformed bodies, malformed records, sends after
// close-of-input (409 conflict), spoofed reserved labels, and bad query
// parameters.
func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)

	// Unknown network on the one-shot endpoint too.
	if code := call(t, "POST", ts.URL+"/api/run", map[string]any{"net": "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("run unknown net: status %d", code)
	}
	// Malformed request body (not JSON).
	req, _ := http.NewRequest("POST", ts.URL+"/api/sessions", bytes.NewBufferString("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	var opened struct {
		Session string `json:"session"`
	}
	if code := call(t, "POST", ts.URL+"/api/sessions", map[string]string{"net": "inc"}, &opened); code != http.StatusCreated {
		t.Fatalf("open: status %d", code)
	}
	url := ts.URL + "/api/sessions/" + opened.Session

	// Malformed record JSON: a tag value that is not an int.
	req, _ = http.NewRequest("POST", url+"/records",
		bytes.NewBufferString(`{"records":[{"tags":{"n":"not-an-int"}}]}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed record: status %d", resp.StatusCode)
	}
	// A record spoofing the reserved namespace is rejected, not fed.
	spoof := map[string]any{"records": []RecordJSON{{Tags: map[string]int{"n": 1, "__snet_session": 9}}}}
	if code := call(t, "POST", url+"/records", spoof, nil); code != http.StatusBadRequest {
		t.Fatalf("reserved label: status %d", code)
	}
	// Bad ?wait and ?max on the results endpoint.
	if code := call(t, "GET", url+"/results?wait=banana", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad wait: status %d", code)
	}
	if code := call(t, "GET", url+"/results?max=banana", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad max: status %d", code)
	}

	// Send after close-of-input: 409 conflict.
	feed := map[string]any{"records": []RecordJSON{{Tags: map[string]int{"n": 1}}}, "close": true}
	if code := call(t, "POST", url+"/records", feed, nil); code != http.StatusOK {
		t.Fatalf("feed: status %d", code)
	}
	var late struct {
		Error    string `json:"error"`
		Accepted int    `json:"accepted"`
	}
	if code := call(t, "POST", url+"/records", feed, &late); code != http.StatusConflict {
		t.Fatalf("send after close: status %d (%+v)", code, late)
	}
	if late.Accepted != 0 {
		t.Fatalf("send after close accepted %d records", late.Accepted)
	}

	// The session is still drainable after the failed sends.
	var res struct {
		Records []RecordJSON `json:"records"`
		Done    bool         `json:"done"`
	}
	if code := call(t, "GET", url+"/results?wait=5s", nil, &res); code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
	if !res.Done || len(res.Records) != 1 {
		t.Fatalf("results after conflict: %+v", res)
	}
}

// TestHTTPSharedMode drives the full wire protocol against a Shared-mode
// network: session lifecycle, one-shot runs, and the engine surfacing in
// /api/networks and /api/stats.
func TestHTTPSharedMode(t *testing.T) {
	svc := New()
	svc.Register("inc", "warm increment", Options{BufferSize: 4, SessionMode: Shared}, incNet, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown()

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var res struct {
				Records []RecordJSON `json:"records"`
				Done    bool         `json:"done"`
			}
			body := map[string]any{
				"net":     "inc",
				"records": []RecordJSON{{Tags: map[string]int{"n": c}}},
				"wait":    "10s",
			}
			if code := call(t, "POST", ts.URL+"/api/run", body, &res); code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, code)
				return
			}
			if !res.Done || len(res.Records) != 1 || res.Records[0].Tags["n"] != c+1 {
				errs <- fmt.Errorf("client %d: %+v", c, res)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var nets struct {
		Networks []struct {
			Name        string `json:"name"`
			SessionMode string `json:"sessionMode"`
			EngineWarm  bool   `json:"engineWarm"`
		} `json:"networks"`
	}
	if code := call(t, "GET", ts.URL+"/api/networks", nil, &nets); code != http.StatusOK {
		t.Fatalf("networks: status %d", code)
	}
	if len(nets.Networks) != 1 || nets.Networks[0].SessionMode != "shared" || !nets.Networks[0].EngineWarm {
		t.Fatalf("networks: %+v", nets.Networks)
	}
	var stats map[string]int64
	if code := call(t, "GET", ts.URL+"/api/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats["net.inc.engine.warm"] != 1 || stats["run.inc.box.inc.calls"] != clients {
		t.Fatalf("shared-engine stats missing: warm=%d calls=%d",
			stats["net.inc.engine.warm"], stats["run.inc.box.inc.calls"])
	}
}

// TestHTTPConcurrentClients exercises the wire protocol from many clients
// at once against one shared network definition.
func TestHTTPConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var res struct {
				Records []RecordJSON `json:"records"`
				Done    bool         `json:"done"`
			}
			body := map[string]any{
				"net":     "inc",
				"records": []RecordJSON{{Tags: map[string]int{"n": c}}},
				"wait":    "10s",
			}
			if code := call(t, "POST", ts.URL+"/api/run", body, &res); code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, code)
				return
			}
			if !res.Done || len(res.Records) != 1 || res.Records[0].Tags["n"] != c+1 {
				errs <- fmt.Errorf("client %d: %+v", c, res)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// /api/networks exposes the compile phase: the inferred type signature and
// the typed topology of each network's plan.
func TestHTTPNetworksTopology(t *testing.T) {
	_, ts := newTestServer(t)
	var resp struct {
		Networks []struct {
			Name       string         `json:"name"`
			Type       string         `json:"type"`
			Topology   *snet.Topology `json:"topology"`
			TypeErrors int            `json:"typeErrors"`
		} `json:"networks"`
	}
	if code := call(t, "GET", ts.URL+"/api/networks", nil, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Networks) != 1 || resp.Networks[0].Name != "inc" {
		t.Fatalf("networks = %+v", resp.Networks)
	}
	n := resp.Networks[0]
	if n.Type != "{<n>} -> {<n>}" {
		t.Fatalf("type = %q", n.Type)
	}
	if n.Topology == nil || n.Topology.Kind != "box" || n.Topology.Sig != "(<n>) -> (<n>)" {
		t.Fatalf("topology = %+v", n.Topology)
	}
	if n.TypeErrors != 0 {
		t.Fatalf("typeErrors = %d", n.TypeErrors)
	}
}

// /api/networks exposes the verify phase: the static deadlock verdict and
// the finite memory high-water bound of each network's plan.
func TestHTTPNetworksVerdict(t *testing.T) {
	_, ts := newTestServer(t)
	var resp struct {
		Networks []struct {
			Name         string `json:"name"`
			DeadlockFree *bool  `json:"deadlockFree"`
			MemoryBound  int64  `json:"memoryBound"`
			Findings     int    `json:"findings"`
		} `json:"networks"`
	}
	if code := call(t, "GET", ts.URL+"/api/networks", nil, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Networks) != 1 {
		t.Fatalf("networks = %+v", resp.Networks)
	}
	n := resp.Networks[0]
	if n.DeadlockFree == nil || !*n.DeadlockFree {
		t.Fatalf("deadlockFree = %v, want true", n.DeadlockFree)
	}
	if n.MemoryBound <= 0 {
		t.Fatalf("memoryBound = %d, want a positive finite bound", n.MemoryBound)
	}
	if n.Findings != 0 {
		t.Fatalf("findings = %d, want 0 for the clean inc box", n.Findings)
	}
}
