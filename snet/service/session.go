package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/snet"
)

// Session is one client's use of a registered network: lifecycle state plus
// a mode-specific backend.  The lifecycle is
//
//	Open → Send* → CloseInput → Recv* (until done) → Release
//
// In Isolated mode the backend is a private network instance (snet.Start
// per session); in Shared mode it is one replica slot of the network's warm
// engine (see engine.go) and Open never instantiates a graph.
//
// Release is mandatory and idempotent.  Isolated: it cancels the run
// context, which unwinds every node goroutine of the instance.  Shared: it
// retires the session's replica through the split close protocol — the
// engine keeps running.  Send and Recv additionally honour the caller's
// context, so a slow network exerts backpressure on the client without
// wedging it.
//
// A Session is safe for concurrent use, including racing Send/CloseInput/
// Release from independent HTTP requests.
type Session struct {
	id     string
	net    *Network
	svc    *Service
	back   backend
	opened time.Time

	mu       sync.Mutex
	released bool
	done     chan struct{} // closed once Release has completed
	sent     int64
	received int64

	lastActive atomic.Int64 // unix nanos of the last Send/Recv (or Open)
	inflight   atomic.Int64 // Send/Recv calls currently blocked in this session
}

// backend is the mode-specific half of a session: how records enter and
// leave the network, and how the session's compute is torn down.
type backend interface {
	send(ctx context.Context, r *snet.Record) error
	sendBatch(ctx context.Context, recs []*snet.Record) (int, error)
	closeInput()
	// recv delivers the next output record; done reports that the
	// session's output has drained (after closeInput) or the session is
	// gone.
	recv(ctx context.Context) (rec *snet.Record, done bool, err error)
	// release tears the session's compute down.  Isolated backends block
	// until the instance has wound down; shared backends retire the
	// session's replica asynchronously (the engine reclaims it in FIFO
	// position behind the session's in-flight work).
	release()
	// handle exposes the underlying run — the session's own instance, or
	// the network's shared engine.
	handle() *snet.Handle
	// runStats returns per-run statistics to fold into the network on
	// release, or nil when the backend's run outlives the session (shared
	// mode aggregates live engine stats in Service.Stats instead).
	runStats() *snet.Stats
}

// isolatedBackend is the classic one-instance-per-session mode: the session
// owns a full network run.
type isolatedBackend struct {
	h      *snet.Handle
	cancel context.CancelFunc
}

func (b *isolatedBackend) send(ctx context.Context, r *snet.Record) error {
	return b.h.SendCtx(ctx, r)
}

func (b *isolatedBackend) sendBatch(ctx context.Context, recs []*snet.Record) (int, error) {
	return b.h.SendBatch(ctx, recs)
}

func (b *isolatedBackend) closeInput() { b.h.Close() }

func (b *isolatedBackend) recv(ctx context.Context) (*snet.Record, bool, error) {
	select {
	case r, ok := <-b.h.Out():
		if !ok {
			return nil, true, nil
		}
		return r, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

func (b *isolatedBackend) release() {
	b.cancel()
	b.h.Wait()
}

func (b *isolatedBackend) handle() *snet.Handle  { return b.h }
func (b *isolatedBackend) runStats() *snet.Stats { return b.h.Stats() }

// touch records client activity for the idle reaper.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// enter/exit bracket a blocking client call: a session with a call in
// flight is active by definition (a client is connected and waiting on
// backpressure or results), however long the call blocks, and must not be
// reaped out from under it.
func (s *Session) enter() { s.inflight.Add(1) }
func (s *Session) exit()  { s.inflight.Add(-1); s.touch() }

// reapable reports whether the session has been idle — no call in flight,
// no activity — for longer than limit.
func (s *Session) reapable(limit time.Duration) bool {
	if s.inflight.Load() > 0 {
		return false
	}
	return time.Duration(time.Now().UnixNano()-s.lastActive.Load()) > limit
}

// Open starts a new session of the named network.  The session slot is
// claimed against the network's MaxSessions cap first; then, depending on
// the network's SessionMode, either a fresh instance is started (Isolated)
// or a replica slot of the warm shared engine is allocated (Shared — a map
// insert, no graph instantiation).
func (s *Service) Open(netName string) (*Session, error) {
	n, err := s.Network(netName)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	s.opening.Add(1) // under the lock, after the down check
	defer s.opening.Done()
	s.seq++
	id := fmt.Sprintf("s%d", s.seq)
	s.mu.Unlock()

	if err := n.acquire(); err != nil {
		return nil, err
	}
	var back backend
	if n.opts.SessionMode == Shared {
		eng, err := n.sharedEngine()
		if err != nil {
			n.releaseSlot()
			n.svcStat.Add("sessions.build_errors", 1)
			return nil, fmt.Errorf("%w: network %q: %v", ErrBuild, netName, err)
		}
		sb, err := eng.open()
		if err != nil {
			n.releaseSlot()
			return nil, err
		}
		back = sb
	} else {
		// Sessions share the network's compiled plan: the blueprint is built
		// and type-checked once, and every instance dispatches through the
		// same precomputed routing tables.
		plan, err := n.Plan()
		if err != nil {
			n.releaseSlot()
			n.svcStat.Add("sessions.build_errors", 1)
			return nil, fmt.Errorf("%w: network %q: %v", ErrBuild, netName, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		back = &isolatedBackend{h: plan.Start(ctx, n.opts.runOptions()...), cancel: cancel}
	}
	sess := &Session{
		id:     id,
		net:    n,
		svc:    s,
		back:   back,
		opened: time.Now(),
		done:   make(chan struct{}),
	}
	sess.touch()
	s.mu.Lock()
	if s.down { // raced with Shutdown: unwind immediately
		s.mu.Unlock()
		sess.Release()
		return nil, ErrShutdown
	}
	s.sessions[id] = sess
	s.startReaperLocked()
	s.mu.Unlock()
	return sess, nil
}

// ID returns the session identifier used by the HTTP API.
func (s *Session) ID() string { return s.id }

// Network returns the network definition this session runs.
func (s *Session) Network() *Network { return s.net }

// Handle exposes the underlying running network (for its Stats).  In Shared
// mode this is the network's engine — shared by every session of the
// network — so treat it as read-only.
func (s *Session) Handle() *snet.Handle { return s.back.handle() }

// Counts reports how many records have been accepted and delivered.
func (s *Session) Counts() (sent, received int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.received
}

// Send streams one record into the session's network.  It blocks on
// backpressure — stream buffers are bounded in both modes — until the
// record is accepted, the caller's ctx is cancelled, or the session is
// released.  Records carrying labels in the runtime's reserved namespace
// are rejected (clients must not spoof session or replica control records).
func (s *Session) Send(ctx context.Context, r *snet.Record) error {
	s.enter()
	defer s.exit()
	if r.HasReservedLabel() {
		s.net.svcStat.Add("records.reserved_rejected", 1)
		return fmt.Errorf("%w: record carries a reserved %q label",
			ErrReservedLabel, snet.ReservedTagPrefix)
	}
	if err := s.back.send(ctx, r); err != nil {
		return err
	}
	s.mu.Lock()
	s.sent++
	s.mu.Unlock()
	s.net.svcStat.Add("records.in", 1)
	return nil
}

// SendBatch streams a burst of records into the session's network.  In
// Isolated mode the burst enters as transport frames (one stream
// synchronization per StreamBatch records); in Shared mode records are
// interleaved with other sessions by the engine's round-robin feeder.  It
// returns how many records were accepted; on ctx expiry or release that can
// be a prefix.
func (s *Session) SendBatch(ctx context.Context, recs []*snet.Record) (int, error) {
	s.enter()
	defer s.exit()
	for _, r := range recs {
		if r.HasReservedLabel() {
			s.net.svcStat.Add("records.reserved_rejected", 1)
			return 0, fmt.Errorf("%w: record carries a reserved %q label",
				ErrReservedLabel, snet.ReservedTagPrefix)
		}
	}
	accepted, err := s.back.sendBatch(ctx, recs)
	if accepted > 0 {
		s.mu.Lock()
		s.sent += int64(accepted)
		s.mu.Unlock()
		s.net.svcStat.Add("records.in", int64(accepted))
	}
	return accepted, err
}

// CloseInput signals end-of-input: once in-flight records drain, the
// session's output winds down and Recv reports done.  Idempotent.
func (s *Session) CloseInput() { s.back.closeInput() }

// Recv delivers the next output record.  done reports that the session has
// drained (after CloseInput) or was released; err is the caller's context
// error on timeout/cancellation.
func (s *Session) Recv(ctx context.Context) (rec *snet.Record, done bool, err error) {
	s.enter()
	defer s.exit()
	rec, done, err = s.back.recv(ctx)
	if rec != nil {
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		s.net.svcStat.Add("records.out", 1)
	}
	return rec, done, err
}

// Drain collects up to max output records (max <= 0: unlimited), returning
// early when the session winds down or ctx expires.  On expiry the
// already-collected batch is returned together with the context error so
// the caller can decide what to do with both.  Delivery is at-most-once: a
// record handed out in a batch has been consumed from the stream even if
// the caller never processes it (e.g. an HTTP client that disconnected).
func (s *Session) Drain(ctx context.Context, max int) (recs []*snet.Record, done bool, err error) {
	for max <= 0 || len(recs) < max {
		rec, fin, rerr := s.Recv(ctx)
		if rerr != nil {
			return recs, false, rerr
		}
		if fin {
			return recs, true, nil
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// Release ends the session.  Isolated: the run context is cancelled
// (dropping in-flight records) and the call returns once the instance's
// goroutines have unwound.  Shared: the session's replica is retired
// through the split close protocol — queued input is dropped, in-flight
// output is discarded at the engine's demux, and the replica is reclaimed
// by the warm engine asynchronously; the call returns promptly.  Idempotent
// in both modes; every caller, including losers of a release race, returns
// only after the session's teardown has been initiated and its slot freed.
func (s *Session) Release() {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.released = true
	s.mu.Unlock()

	s.back.release()
	s.svc.mu.Lock()
	delete(s.svc.sessions, s.id)
	s.svc.mu.Unlock()
	s.net.release(s)
	close(s.done)
}
