package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/snet"
)

// Session is one client's run of a registered network: a started network
// instance plus lifecycle state.  The lifecycle is
//
//	Open → Send* → CloseInput → Recv* (until done) → Release
//
// Release is mandatory and idempotent; it cancels the run context, which
// unwinds every node goroutine of the instance (the runtime's
// cancellation-aware send/recv/drain discipline makes this leak-free even
// mid-stream).  Send and Recv additionally honour the caller's context, so
// a slow network exerts backpressure on the client without wedging it.
//
// A Session is safe for concurrent use, including racing Send/CloseInput/
// Release from independent HTTP requests: cancellation unblocks in-flight
// sends, and every Release call returns only after the instance has wound
// down.
type Session struct {
	id     string
	net    *Network
	svc    *Service
	handle *snet.Handle
	cancel context.CancelFunc
	opened time.Time

	mu       sync.Mutex
	released bool
	done     chan struct{} // closed once Release has fully wound down
	sent     int64
	received int64

	lastActive atomic.Int64 // unix nanos of the last Send/Recv (or Open)
	inflight   atomic.Int64 // Send/Recv calls currently blocked in this session
}

// touch records client activity for the idle reaper.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// enter/exit bracket a blocking client call: a session with a call in
// flight is active by definition (a client is connected and waiting on
// backpressure or results), however long the call blocks, and must not be
// reaped out from under it.
func (s *Session) enter() { s.inflight.Add(1) }
func (s *Session) exit()  { s.inflight.Add(-1); s.touch() }

// reapable reports whether the session has been idle — no call in flight,
// no activity — for longer than limit.
func (s *Session) reapable(limit time.Duration) bool {
	if s.inflight.Load() > 0 {
		return false
	}
	return time.Duration(time.Now().UnixNano()-s.lastActive.Load()) > limit
}

// Open instantiates the named network and registers a new session for it.
// The session slot is claimed against the network's MaxSessions cap before
// the instance is started.
func (s *Service) Open(netName string) (*Session, error) {
	n, err := s.Network(netName)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	s.opening.Add(1) // under the lock, after the down check
	defer s.opening.Done()
	s.seq++
	id := fmt.Sprintf("s%d", s.seq)
	s.mu.Unlock()

	if err := n.acquire(); err != nil {
		return nil, err
	}
	root, err := n.build(n.opts)
	if err != nil {
		n.releaseSlot()
		n.svcStat.Add("sessions.build_errors", 1)
		return nil, fmt.Errorf("%w: network %q: %v", ErrBuild, netName, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess := &Session{
		id:     id,
		net:    n,
		svc:    s,
		handle: snet.Start(ctx, root, n.opts.runOptions()...),
		cancel: cancel,
		opened: time.Now(),
		done:   make(chan struct{}),
	}
	sess.touch()
	s.mu.Lock()
	if s.down { // raced with Shutdown: unwind immediately
		s.mu.Unlock()
		sess.Release()
		return nil, ErrShutdown
	}
	s.sessions[id] = sess
	s.startReaperLocked()
	s.mu.Unlock()
	return sess, nil
}

// ID returns the session identifier used by the HTTP API.
func (s *Session) ID() string { return s.id }

// Network returns the network definition this session runs.
func (s *Session) Network() *Network { return s.net }

// Handle exposes the underlying running network (for its Stats).
func (s *Session) Handle() *snet.Handle { return s.handle }

// Counts reports how many records have been accepted and delivered.
func (s *Session) Counts() (sent, received int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.received
}

// Send streams one record into the session's network instance.  It blocks
// on backpressure — the instance's stream buffers are bounded — until the
// record is accepted, the caller's ctx is cancelled, or the session is
// released.
func (s *Session) Send(ctx context.Context, r *snet.Record) error {
	s.enter()
	defer s.exit()
	if err := s.handle.SendCtx(ctx, r); err != nil {
		return err
	}
	s.mu.Lock()
	s.sent++
	s.mu.Unlock()
	s.net.svcStat.Add("records.in", 1)
	return nil
}

// SendBatch streams a burst of records into the session's network instance
// as transport frames — one stream synchronization per frame of the
// network's StreamBatch size instead of one per record, the right call when
// a client request carries a record array.  It returns how many records
// were accepted; on ctx expiry or release that can be a prefix.
func (s *Session) SendBatch(ctx context.Context, recs []*snet.Record) (int, error) {
	s.enter()
	defer s.exit()
	accepted, err := s.handle.SendBatch(ctx, recs)
	if accepted > 0 {
		s.mu.Lock()
		s.sent += int64(accepted)
		s.mu.Unlock()
		s.net.svcStat.Add("records.in", int64(accepted))
	}
	return accepted, err
}

// CloseInput signals end-of-input: once in-flight records drain, the
// network instance winds down and Recv reports done.  Idempotent.
func (s *Session) CloseInput() { s.handle.Close() }

// Recv delivers the next output record.  done reports that the instance
// has drained (after CloseInput) or was released; err is the caller's
// context error on timeout/cancellation.
func (s *Session) Recv(ctx context.Context) (rec *snet.Record, done bool, err error) {
	s.enter()
	defer s.exit()
	select {
	case r, ok := <-s.handle.Out():
		if !ok {
			return nil, true, nil
		}
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		s.net.svcStat.Add("records.out", 1)
		return r, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Drain collects up to max output records (max <= 0: unlimited), returning
// early when the instance winds down or ctx expires.  On expiry the
// already-collected batch is returned together with the context error so
// the caller can decide what to do with both.  Delivery is at-most-once: a
// record handed out in a batch has been consumed from the stream even if
// the caller never processes it (e.g. an HTTP client that disconnected).
func (s *Session) Drain(ctx context.Context, max int) (recs []*snet.Record, done bool, err error) {
	for max <= 0 || len(recs) < max {
		rec, fin, rerr := s.Recv(ctx)
		if rerr != nil {
			return recs, false, rerr
		}
		if fin {
			return recs, true, nil
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// Release ends the session: the run context is cancelled (dropping any
// in-flight records), the instance's goroutines unwind, and the session
// slot and statistics are returned to the network.  Idempotent; every
// caller — including losers of a release race — returns only after the
// wind-down has completed, so Shutdown's leak-free guarantee holds.
func (s *Session) Release() {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.released = true
	s.mu.Unlock()

	s.cancel()
	s.handle.Wait()
	s.svc.mu.Lock()
	delete(s.svc.sessions, s.id)
	s.svc.mu.Unlock()
	s.net.release(s)
	close(s.done)
}
