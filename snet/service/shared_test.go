package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/snet"
)

// pipeNet builds an order-preserving three-stage pipeline over tag <n>
// (+1, *2, +3): a network whose per-session output sequence is a pure
// function of its input sequence, so it can anchor the cross-mode
// determinism property.
func pipeNet(Options) (snet.Node, error) {
	inc := func(name string, f func(int) int) snet.Node {
		return snet.NewBox(name, snet.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *snet.Emitter) error {
				return out.Out(1, f(args[0].(int)))
			})
	}
	return snet.Serial(
		inc("p1", func(n int) int { return n + 1 }),
		inc("p2", func(n int) int { return n * 2 }),
		inc("p3", func(n int) int { return n + 3 }),
	), nil
}

func sharedOpts(extra Options) Options {
	extra.SessionMode = Shared
	return extra
}

// runSessionSequence opens a session, streams seq values of <n>, closes the
// input and drains to completion, returning the output values in arrival
// order.
func runSessionSequence(t *testing.T, svc *Service, netName string, seq []int) []int {
	t.Helper()
	sess, err := svc.Open(netName)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		for _, v := range seq {
			if sess.Send(ctx, recN(v)) != nil {
				return
			}
		}
		sess.CloseInput()
	}()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	out := make([]int, len(recs))
	for i, r := range recs {
		out[i], _ = r.Tag("n")
	}
	return out
}

// TestCrossModeSessionDeterminism is the shared-vs-isolated property test:
// for an order-preserving network, every session's output sequence must be
// identical in both modes — same values, same per-session causal order —
// with many sessions running concurrently.
func TestCrossModeSessionDeterminism(t *testing.T) {
	const sessions = 16
	const perSession = 25
	results := map[SessionMode][][]int{}
	for _, mode := range []SessionMode{Isolated, Shared} {
		svc := New()
		svc.Register("pipe", "", Options{SessionMode: mode, BufferSize: 4, BoxWorkers: 4}, pipeNet, nil)
		outs := make([][]int, sessions)
		var wg sync.WaitGroup
		for c := 0; c < sessions; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				seq := make([]int, perSession)
				for i := range seq {
					seq[i] = c*1000 + i
				}
				outs[c] = runSessionSequence(t, svc, "pipe", seq)
			}(c)
		}
		wg.Wait()
		results[mode] = outs
		svc.Shutdown()
	}
	for c := 0; c < sessions; c++ {
		iso, sh := results[Isolated][c], results[Shared][c]
		if len(iso) != perSession || len(sh) != perSession {
			t.Fatalf("session %d: %d isolated vs %d shared records", c, len(iso), len(sh))
		}
		for i := range iso {
			want := ((c*1000+i)+1)*2 + 3 // the pipeline applied in input order
			if iso[i] != want || sh[i] != want {
				t.Fatalf("session %d position %d: isolated=%d shared=%d want=%d",
					c, i, iso[i], sh[i], want)
			}
		}
	}
}

// TestSharedSessionIsolation: concurrent shared-mode sessions over one warm
// engine each see exactly their own records.
func TestSharedSessionIsolation(t *testing.T) {
	svc := New()
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 4}), incNet, nil)
	defer svc.Shutdown()
	const clients = 48
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := svc.Open("inc")
			if err != nil {
				errs <- err
				return
			}
			defer sess.Release()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			go func() {
				for i := 0; i < perClient; i++ {
					if sess.Send(ctx, recN(c*1000+i)) != nil {
						return
					}
				}
				sess.CloseInput()
			}()
			recs, done, err := sess.Drain(ctx, 0)
			if err != nil || !done || len(recs) != perClient {
				errs <- fmt.Errorf("client %d: %d records done=%v err=%v", c, len(recs), done, err)
				return
			}
			for _, r := range recs {
				n, _ := r.Tag("n")
				if (n-1)/1000 != c {
					errs <- fmt.Errorf("client %d received foreign record <n>=%d", c, n)
					return
				}
				if r.HasReservedLabel() {
					errs <- fmt.Errorf("client %d: session tag leaked at egress: %v", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := svc.Stats()
	if got := stats["net.inc.records.out"]; got != clients*perClient {
		t.Fatalf("records.out = %d, want %d", got, clients*perClient)
	}
	if stats["net.inc.engine.warm"] != 1 {
		t.Fatalf("engine not reported warm: %v", stats)
	}
}

// TestSharedSessionChurnReplicaGauge is the acceptance check on the replica
// lifecycle: after waves of sessions open, work and release over one warm
// engine, the live-replica gauge must return to 0 — replicas are reclaimed,
// not accumulated.
func TestSharedSessionChurnReplicaGauge(t *testing.T) {
	svc := New()
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 4}), incNet, nil)
	defer svc.Shutdown()
	const waves, perWave = 6, 16
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for c := 0; c < perWave; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				seq := []int{w*100 + c, w*100 + c + 1}
				_ = runSessionSequence(t, svc, "inc", seq)
			}(c)
		}
		wg.Wait()
	}
	n, _ := svc.Network("inc")
	eng := n.liveEngine()
	if eng == nil {
		t.Fatal("no warm engine after shared sessions")
	}
	gauge := func() int64 {
		return eng.handle.Stats().Counter("split." + sessionMuxName + ".replicas")
	}
	deadline := time.Now().Add(5 * time.Second)
	for gauge() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := gauge(); g != 0 {
		t.Fatalf("%d session replicas still live after churn", g)
	}
	if closed := eng.handle.Stats().Counter("split." + sessionMuxName + ".closed"); closed != waves*perWave {
		t.Fatalf("closed = %d, want %d", closed, waves*perWave)
	}
	if svc.SessionCount() != 0 {
		t.Fatalf("sessions survived churn")
	}
}

// TestSharedOpenAfterWarmIsCheap: once the engine is warm, Open must not
// instantiate network machinery — it is a map insert, so the goroutine
// count stays flat across a large wave of opens (replicas only unfold on
// the first record).
func TestSharedOpenAfterWarmIsCheap(t *testing.T) {
	svc := New()
	svc.Register("pipe", "", sharedOpts(Options{BufferSize: 2, MaxSessions: -1}), pipeNet, nil)
	defer svc.Shutdown()
	warm, err := svc.Open("pipe") // pays the engine instantiation
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	base := goroutineCount()
	const wave = 256
	sessions := make([]*Session, wave)
	for i := range sessions {
		if sessions[i], err = svc.Open("pipe"); err != nil {
			t.Fatal(err)
		}
	}
	if grew := goroutineCount() - base; grew > 4 {
		t.Fatalf("opening %d warm sessions grew goroutines by %d", wave, grew)
	}
	for _, sess := range sessions {
		sess.Release()
	}
}

// TestSharedReleaseDropsPendingOutput: releasing a shared session with
// undrained output must not wedge the engine — its records are discarded at
// the demux and other sessions keep flowing.
func TestSharedReleaseDropsPendingOutput(t *testing.T) {
	svc := New()
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 1}), incNet, nil)
	defer svc.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	clog, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := clog.Send(ctx, recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	clog.CloseInput()
	clog.Release() // never drained: demux must discard, not block
	if got := runSessionSequence(t, svc, "inc", []int{41}); len(got) != 1 || got[0] != 42 {
		t.Fatalf("session after clogged release: %v", got)
	}
}

// TestSharedSendAfterCloseAndReservedRejected: input-side error paths of
// the shared backend.
func TestSharedSendAfterCloseAndReservedRejected(t *testing.T) {
	svc := New()
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 4}), incNet, nil)
	defer svc.Shutdown()
	sess, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	ctx := context.Background()
	spoof := snet.NewRecord().SetTag("n", 1).SetTag(sessionTag, 99)
	if err := sess.Send(ctx, spoof); !errors.Is(err, ErrReservedLabel) {
		t.Fatalf("spoofed session tag accepted: %v", err)
	}
	if _, err := sess.SendBatch(ctx, []*snet.Record{snet.NewReplicaCloseAck("k", 1)}); !errors.Is(err, ErrReservedLabel) {
		t.Fatalf("spoofed close record accepted: %v", err)
	}
	if err := sess.Send(ctx, recN(1)); err != nil {
		t.Fatal(err)
	}
	sess.CloseInput()
	if err := sess.Send(ctx, recN(2)); !errors.Is(err, snet.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 1 {
		t.Fatalf("drain: %d records done=%v err=%v", len(recs), done, err)
	}
}

// TestSharedReplicaIdleReapSpares SessionReplicas: Options.ReplicaIdleReap
// targets splits inside the user's network; the engine's session-mux split
// is exempt, so a session idle past the reap interval keeps its replica
// (and its state) until the close protocol retires it.
func TestSharedReplicaIdleReapSparesSessionReplicas(t *testing.T) {
	svc := New()
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 4, ReplicaIdleReap: 20 * time.Millisecond}), incNet, nil)
	defer svc.Shutdown()
	sess, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	ctx := context.Background()
	if err := sess.Send(ctx, recN(1)); err != nil {
		t.Fatal(err)
	}
	r, _, err := sess.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Tag("n"); n != 2 {
		t.Fatalf("first record: %v", r)
	}
	time.Sleep(150 * time.Millisecond) // several reap intervals of client silence
	n, _ := svc.Network("inc")
	if g := n.liveEngine().handle.Stats().Counter("split." + sessionMuxName + ".replicas"); g != 1 {
		t.Fatalf("idle session's replica swept: gauge = %d", g)
	}
	if err := sess.Send(ctx, recN(10)); err != nil {
		t.Fatalf("send after idle gap: %v", err)
	}
	sess.CloseInput()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 1 {
		t.Fatalf("drain after idle gap: %d records done=%v err=%v", len(recs), done, err)
	}
}

// TestSharedShutdownNoLeaks: shutting the service down with shared sessions
// mid-flight (undrained output, queued input) unwinds the warm engine and
// every mux goroutine.
func TestSharedShutdownNoLeaks(t *testing.T) {
	base := goroutineCount()
	svc := New()
	gate := make(chan struct{}) // never opened
	svc.Register("slow", "", sharedOpts(Options{BufferSize: 2}), gatedNet(gate), nil)
	svc.Register("inc", "", sharedOpts(Options{BufferSize: 2}), incNet, nil)
	for i := 0; i < 8; i++ {
		name := "slow"
		if i%2 == 0 {
			name = "inc"
		}
		sess, err := svc.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			_ = sess.Send(ctx, recN(j)) // may time out on the gated net
			cancel()
		}
	}
	svc.Shutdown()
	if _, err := svc.Open("inc"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("open after shutdown: %v", err)
	}
	waitForGoroutines(t, base+3)
	if svc.SessionCount() != 0 {
		t.Fatalf("sessions survived shutdown")
	}
}

// TestSharedIdleSessionsReaped: the service-level idle reaper releases
// abandoned shared sessions, whose replicas are then reclaimed by the close
// protocol — slots and replicas both come back.
func TestSharedIdleSessionsReaped(t *testing.T) {
	svc := New()
	svc.reapEvery = 20 * time.Millisecond
	svc.Register("inc", "", sharedOpts(Options{MaxSessions: 2, IdleTimeout: 50 * time.Millisecond}), incNet, nil)
	defer svc.Shutdown()
	for i := 0; i < 2; i++ {
		sess, err := svc.Open("inc")
		if err != nil {
			t.Fatal(err)
		}
		// Leave a record in flight so the replica actually unfolded.
		if err := sess.Send(context.Background(), recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Open("inc"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("expected cap hit, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := svc.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived the reaper", n)
	}
	if _, err := svc.Open("inc"); err != nil { // slots freed again
		t.Fatalf("open after reap: %v", err)
	}
	n, _ := svc.Network("inc")
	gauge := func() int64 {
		return n.liveEngine().handle.Stats().Counter("split." + sessionMuxName + ".replicas")
	}
	deadline = time.Now().Add(5 * time.Second)
	for gauge() > 1 && time.Now().Before(deadline) { // the fresh session may hold one
		time.Sleep(5 * time.Millisecond)
	}
	if g := gauge(); g > 1 {
		t.Fatalf("reaped sessions left %d replicas live", g)
	}
}
