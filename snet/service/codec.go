package service

import (
	"fmt"

	"repro/snet"
)

// RecordJSON is the wire form of an S-Net record: tags are integers, fields
// are strings.  Field values are opaque to the coordination layer (§4 of
// the paper), so a network whose boxes need richer field types registers a
// Codec that knows how to materialise them — see the sudoku board codec in
// cmd/snetd for the case-study example.
type RecordJSON struct {
	Tags   map[string]int    `json:"tags,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

// Codec translates between wire records and runtime records for one
// network.  Implementations must be safe for concurrent use.
type Codec interface {
	// Decode materialises a wire record into a runtime record.
	Decode(RecordJSON) (*snet.Record, error)
	// Encode renders a runtime record for the wire.
	Encode(*snet.Record) RecordJSON
}

// GenericCodec maps tags one-to-one and treats every field as a string —
// exactly the record-literal model of cmd/snetrun.  It is the default for
// networks registered without a codec, including textual snet/lang
// networks over the demo boxes.
type GenericCodec struct{}

// Decode copies tags and string fields into a fresh record.  The record
// comes from the runtime's arena: once it enters the network it is recycled
// by whichever node consumes it, so steady-state ingress traffic allocates
// no records.
func (GenericCodec) Decode(w RecordJSON) (*snet.Record, error) {
	r := snet.AcquireRecord()
	for k, v := range w.Tags {
		r.SetTag(k, v)
	}
	for k, v := range w.Fields {
		r.SetField(k, v)
	}
	return r, nil
}

// Encode copies tags and renders every field value with fmt.Sprint.
func (GenericCodec) Encode(r *snet.Record) RecordJSON {
	w := RecordJSON{}
	for _, k := range r.TagNames() {
		if w.Tags == nil {
			w.Tags = map[string]int{}
		}
		v, _ := r.Tag(k)
		w.Tags[k] = v
	}
	for _, k := range r.FieldNames() {
		if w.Fields == nil {
			w.Fields = map[string]string{}
		}
		v, _ := r.Field(k)
		w.Fields[k] = fmt.Sprint(v)
	}
	return w
}
