// Package service turns S-Net networks into long-running concurrent
// services: the step from the paper's batch experiments (feed a record set,
// drain, exit) to a deployed runtime multiplexing many independent clients,
// in the spirit of the S-Net runtime evaluations of Zaichenkov et al.
// (arXiv:1305.7167) and Poss et al. (arXiv:1306.2743).
//
// A Service holds named network definitions.  Each client session
// instantiates its chosen network (snet.Start), streams records in with
// backpressure from the bounded stream buffers, and drains results; the
// service enforces a per-network session cap, aggregates per-network
// throughput/latency counters, and guarantees leak-free shutdown by
// cancelling every live session's run context.
//
//	svc := service.New()
//	svc.Register("inc", "increment <n>", service.Options{BufferSize: 8}, builder, nil)
//	s, _ := svc.Open("inc")
//	s.Send(ctx, snet.NewRecord().SetTag("n", 1))
//	s.CloseInput()
//	rec, _, _ := s.Recv(ctx)
//	s.Release()
//
// The HTTP binding in http.go exposes the same lifecycle over JSON; see
// cmd/snetd.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/sac"
	"repro/snet"
)

// SessionMode selects how a network's sessions map onto runtime instances.
type SessionMode int

const (
	// Isolated starts one private network instance per session (snet.Start
	// on Open, cancel on Release) — full fault and performance isolation,
	// at the price of instantiating the whole combinator graph per client.
	// It is the default and the backward-compatible behaviour.
	Isolated SessionMode = iota
	// Shared multiplexes every session of the network over one long-lived
	// warm instance: the user's root is wrapped in indexed parallel
	// replication over a reserved session tag (SessionSplit), so Open is a
	// map insert, each session still gets a private lazily-unfolded
	// replica of the network, and Release reclaims the replica through the
	// split close protocol.  See engine.go.
	Shared
)

func (m SessionMode) String() string {
	if m == Shared {
		return "shared"
	}
	return "isolated"
}

// ParseSessionMode reads "isolated" or "shared" (deployment flags).
func ParseSessionMode(s string) (SessionMode, error) {
	switch s {
	case "", "isolated":
		return Isolated, nil
	case "shared":
		return Shared, nil
	}
	return Isolated, fmt.Errorf("service: unknown session mode %q (want isolated or shared)", s)
}

// Options configures every run (session) of one registered network.
// It is the per-network counterpart of the paper's per-experiment harness
// flags: the bounded stream buffering and the data-parallel pool become
// deployment configuration.
type Options struct {
	// SessionMode selects Isolated (default: one network instance per
	// session) or Shared (one warm instance multiplexing all sessions via
	// indexed replication).
	SessionMode SessionMode
	// BufferSize is the stream buffer capacity, in frames, of every
	// stream in the network instance (snet.WithBuffer).  Values < 0
	// select the runtime default (32); 0 is valid and selects fully
	// synchronous streams.
	BufferSize int
	// StreamBatch is the stream batch size B of every instance
	// (snet.WithStreamBatch): how many records a hot stream coalesces
	// into one channel synchronization.  0 keeps the runtime default;
	// 1 forces unbatched per-record handoff.  Adaptive flushing keeps
	// per-session latency flat at any B, so this is a pure throughput
	// knob for record-dense workloads.
	StreamBatch int
	// MaxSessions caps the number of concurrently open sessions of this
	// network; Open fails with ErrSessionLimit beyond it.  0 selects
	// DefaultMaxSessions; negative means unlimited.
	MaxSessions int
	// Pool is the data-parallel with-loop pool handed to the network
	// builder (the "SaC threads" of the boxes).  nil leaves the choice to
	// the builder (typically sequential).
	Pool *sac.Pool
	// BoxWorkers is the per-box invocation concurrency width W of every
	// instance (snet.WithBoxWorkers): each box node of a session's network
	// may run up to W invocations of its stateless box function at a time,
	// with output order preserved by the runtime's reorder stage.  0 keeps
	// the runtime default (GOMAXPROCS); 1 forces sequential boxes.
	BoxWorkers int
	// MaxStarDepth and MaxSplitWidth bound replication unfolding per run
	// (snet.WithMaxStarDepth / WithMaxSplitWidth).  0 keeps the runtime
	// defaults.
	MaxStarDepth  int
	MaxSplitWidth int
	// IdleTimeout releases sessions with no Send/Recv activity — the
	// abandoned-client guard, without which a crashed client would pin a
	// running network instance and a MaxSessions slot forever.  0 selects
	// DefaultIdleTimeout; negative disables reaping.
	IdleTimeout time.Duration
	// ReplicaIdleReap > 0 enables the runtime's split replica idle reaper
	// (snet.WithReplicaIdleReap) in every instance: split replicas whose
	// key has gone quiet for this long are reclaimed.  The shared engine
	// retires session replicas deterministically through the close
	// protocol regardless; this knob additionally covers splits inside the
	// user's network.
	ReplicaIdleReap time.Duration
	// NoFusion compiles the network with the pipeline-fusion pass off
	// (snet.WithFusion(false)): every stage keeps its own goroutine and
	// stream.  The zero value — fusion on — is right for production; the
	// knob exists for triage and baseline measurement (snetd -fuse=false,
	// SNET_FUSE=0).
	NoFusion bool
}

// DefaultMaxSessions is the session cap applied when Options.MaxSessions is
// zero: enough for heavy concurrent traffic, small enough that a stuck
// client population cannot exhaust the process (each session is a running
// network instance).
const DefaultMaxSessions = 1024

// DefaultIdleTimeout is the idle-session reaping threshold applied when
// Options.IdleTimeout is zero.
const DefaultIdleTimeout = 10 * time.Minute

func (o Options) idleTimeout() time.Duration {
	switch {
	case o.IdleTimeout == 0:
		return DefaultIdleTimeout
	case o.IdleTimeout < 0:
		return 0 // reaping disabled
	default:
		return o.IdleTimeout
	}
}

// runOptions translates Options into snet run options.
func (o Options) runOptions() []snet.Option {
	var opts []snet.Option
	if o.BufferSize >= 0 {
		opts = append(opts, snet.WithBuffer(o.BufferSize))
	}
	if o.StreamBatch > 0 {
		opts = append(opts, snet.WithStreamBatch(o.StreamBatch))
	}
	if o.BoxWorkers > 0 {
		opts = append(opts, snet.WithBoxWorkers(o.BoxWorkers))
	}
	if o.MaxStarDepth > 0 {
		opts = append(opts, snet.WithMaxStarDepth(o.MaxStarDepth))
	}
	if o.MaxSplitWidth > 0 {
		opts = append(opts, snet.WithMaxSplitWidth(o.MaxSplitWidth))
	}
	if o.ReplicaIdleReap > 0 {
		opts = append(opts, snet.WithReplicaIdleReap(o.ReplicaIdleReap))
	}
	return opts
}

// queueCap is the per-session ingress/egress queue capacity of the shared
// engine, matching the instance's stream buffering.
func (o Options) queueCap() int {
	if o.BufferSize >= 0 {
		return o.BufferSize
	}
	return 32
}

func (o Options) maxSessions() int {
	switch {
	case o.MaxSessions == 0:
		return DefaultMaxSessions
	case o.MaxSessions < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return o.MaxSessions
	}
}

// Builder instantiates a network definition for one run.  It receives the
// network's options so data-parallel pools and throttles can be wired in;
// it must return a fresh Node tree (node trees are reusable, so returning a
// shared tree is also correct — snet.Start never mutates it).
type Builder func(opts Options) (snet.Node, error)

// Network is one registered network definition plus its service-level
// accounting.
type Network struct {
	name    string
	descr   string
	build   Builder
	codec   Codec
	opts    Options
	svcStat *snet.Stats // service counters: sessions, records, latency
	runStat *snet.Stats // aggregated core runtime counters of finished runs

	mu     sync.Mutex
	active int

	engMu sync.Mutex
	eng   *engine // Shared mode: the warm instance, created on first Open

	// The network's compiled plan: built once from the builder, shared by
	// every session in both modes (nodes are stateless blueprints; the
	// plan's routing tables are the shared artifact sessions amortize).
	planMu   sync.Mutex
	plan     *snet.Plan
	planErr  error // compile diagnostics of the cached plan (*snet.CompileError or nil)
	planDone bool
	verify   *analysis.Report // deadlock & boundedness verdict of the cached plan
}

// Plan returns the network's compiled plan, invoking the builder and
// compiling the blueprint on first use.  A builder failure is returned (and
// retried on the next call, as Open always did); compile *type errors* do
// not fail Plan — a network that only ever failed at runtime before keeps
// serving — but are cached (PlanErr), counted under
// "net.<name>.compile.type_errors", and exposed over /api/networks.
func (n *Network) Plan() (*snet.Plan, error) {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	if n.planDone {
		return n.plan, nil
	}
	root, err := n.build(n.opts)
	if err != nil {
		return nil, err
	}
	plan, cerr := snet.Compile(root, snet.WithFusion(!n.opts.NoFusion))
	n.plan = plan
	n.planDone = true
	if cerr != nil {
		n.planErr = cerr
		n.svcStat.Add("compile.type_errors", int64(len(plan.TypeErrors())))
	}
	if w := len(plan.Warnings()); w > 0 {
		n.svcStat.Add("compile.warnings", int64(w))
	}
	return plan, nil
}

// PlanErr returns the compile diagnostics of the cached plan: nil when the
// network compiled cleanly (or has not been compiled yet), a
// *snet.CompileError otherwise.
func (n *Network) PlanErr() error {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	return n.planErr
}

// Verify returns the network's static deadlock & boundedness verdict
// (internal/analysis) under the default capacity assumptions, computed once
// over the cached plan and shared with /api/networks.  It returns nil if
// the builder fails.
func (n *Network) Verify() *analysis.Report {
	if _, err := n.Plan(); err != nil {
		return nil
	}
	n.planMu.Lock()
	defer n.planMu.Unlock()
	if n.verify == nil && n.plan != nil {
		n.verify = analysis.Analyze(n.plan)
	}
	return n.verify
}

// sharedEngine returns the network's warm engine, starting it on first use
// — the one instantiation every Shared-mode session amortizes.
func (n *Network) sharedEngine() (*engine, error) {
	n.engMu.Lock()
	defer n.engMu.Unlock()
	if n.eng != nil {
		return n.eng, nil
	}
	e, err := newEngine(n)
	if err != nil {
		return nil, err
	}
	n.eng = e
	return e, nil
}

// liveEngine returns the warm engine if one has been started.
func (n *Network) liveEngine() *engine {
	n.engMu.Lock()
	defer n.engMu.Unlock()
	return n.eng
}

// Name returns the network's registered name.
func (n *Network) Name() string { return n.name }

// Description returns the human-readable summary given at registration.
func (n *Network) Description() string { return n.descr }

// Options returns the network's per-run options.
func (n *Network) Options() Options { return n.opts }

// Codec returns the network's record codec.
func (n *Network) Codec() Codec { return n.codec }

// acquire claims a session slot, failing at the cap.
func (n *Network) acquire() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.active >= n.opts.maxSessions() {
		n.svcStat.Add("sessions.rejected", 1)
		return fmt.Errorf("%w: network %q at %d sessions", ErrSessionLimit, n.name, n.active)
	}
	n.active++
	n.svcStat.Add("sessions.opened", 1)
	n.svcStat.SetMax("sessions.active", int64(n.active))
	return nil
}

// releaseSlot undoes one acquire, keeping opened-closed consistent with
// active on every path (including builder failures).
func (n *Network) releaseSlot() {
	n.mu.Lock()
	n.active--
	n.mu.Unlock()
	n.svcStat.Add("sessions.closed", 1)
}

// release returns a session slot and folds the run's statistics in (shared
// sessions have no per-run collector — the engine's live stats are
// aggregated by Service.Stats instead).
func (n *Network) release(s *Session) {
	n.releaseSlot()
	lifetime := time.Since(s.opened)
	n.svcStat.Add("latency.session_ns", lifetime.Nanoseconds())
	n.svcStat.SetMax("latency.session_ns", lifetime.Nanoseconds())
	if rs := s.back.runStats(); rs != nil {
		n.runStat.Merge(rs)
	}
}

// Errors reported by the service layer.
var (
	ErrSessionLimit   = errors.New("service: session limit reached")
	ErrUnknownNetwork = errors.New("service: unknown network")
	ErrUnknownSession = errors.New("service: unknown session")
	ErrShutdown       = errors.New("service: shut down")
	// ErrBuild marks a network builder failure — a server-side
	// configuration fault, not a client error.
	ErrBuild = errors.New("service: network build failed")
	// ErrReservedLabel rejects client records carrying labels in the
	// runtime's reserved namespace (session and replica control records
	// must not be spoofable from outside).
	ErrReservedLabel = errors.New("service: reserved label")
)

// Service is a registry of named networks and the live sessions running
// them.  All methods are safe for concurrent use.
type Service struct {
	mu       sync.Mutex
	nets     map[string]*Network
	sessions map[string]*Session
	seq      uint64
	down     bool
	started  time.Time

	reapEvery  time.Duration // idle-session sweep interval
	reaping    bool          // reaper goroutine running
	stopReaper chan struct{}
	opening    sync.WaitGroup // Opens in flight, so Shutdown can wait for stragglers
}

// New returns an empty service.
func New() *Service {
	return &Service{
		nets:       map[string]*Network{},
		sessions:   map[string]*Session{},
		started:    time.Now(),
		reapEvery:  30 * time.Second,
		stopReaper: make(chan struct{}),
	}
}

// startReaperLocked launches the idle-session sweeper on first use; the
// caller holds s.mu.
func (s *Service) startReaperLocked() {
	if s.reaping || s.down {
		return
	}
	s.reaping = true
	go func() {
		t := time.NewTicker(s.reapEvery)
		defer t.Stop()
		for {
			select {
			case <-s.stopReaper:
				return
			case <-t.C:
				s.reapIdle()
			}
		}
	}()
}

// reapIdle releases every session whose network has an idle timeout and
// that has seen no Send/Recv activity for longer than it.  A session
// observed with a call in flight (a client blocked on backpressure or a
// long result poll) is skipped; a call that starts in the instant between
// the final check and the release loses the race and fails with
// ErrCancelled — the same outcome as racing an explicit concurrent
// Release, which the client-facing layers already surface (HTTP 410).
func (s *Service) reapIdle() {
	s.mu.Lock()
	var victims []*Session
	for _, sess := range s.sessions {
		if limit := sess.net.opts.idleTimeout(); limit > 0 && sess.reapable(limit) {
			victims = append(victims, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range victims {
		if !sess.reapable(sess.net.opts.idleTimeout()) {
			continue // woke up since the sweep snapshot
		}
		sess.net.svcStat.Add("sessions.reaped", 1)
		sess.Release()
	}
}

// Register adds a named network definition.  A nil codec selects the
// generic tag/string-field codec.  Registering a duplicate name panics:
// network registration is deployment configuration, not request handling.
func (s *Service) Register(name, description string, opts Options, build Builder, codec Codec) *Network {
	if build == nil {
		panic("service: Register with nil builder")
	}
	if codec == nil {
		codec = GenericCodec{}
	}
	n := &Network{
		name:    name,
		descr:   description,
		build:   build,
		codec:   codec,
		opts:    opts,
		svcStat: snet.NewStats(),
		runStat: snet.NewStats(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.nets[name]; dup {
		panic(fmt.Sprintf("service: duplicate network %q", name))
	}
	s.nets[name] = n
	return n
}

// Network looks up a registered network.
func (s *Service) Network(name string) (*Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNetwork, name)
	}
	return n, nil
}

// Networks returns all registered networks sorted by name.
func (s *Service) Networks() []*Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Network, 0, len(s.nets))
	for _, n := range s.nets {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Session looks up a live session by id.
func (s *Service) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return sess, nil
}

// SessionCount returns the number of live sessions across all networks.
func (s *Service) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }

// Stats returns a nested snapshot of every network's service counters
// ("net.<name>.<metric>"), aggregated core runtime counters
// ("run.<name>.<metric>": finished isolated runs, plus the live warm engine
// of Shared-mode networks — its "split.session_mux.replicas" gauge is the
// live session-replica count), and service-wide gauges.
func (s *Service) Stats() map[string]int64 {
	out := map[string]int64{
		"service.uptime_ns":       s.Uptime().Nanoseconds(),
		"service.sessions.active": int64(s.SessionCount()),
	}
	for _, n := range s.Networks() {
		for k, v := range n.svcStat.Snapshot() {
			out["net."+n.name+"."+k] = v
		}
		for k, v := range n.runStat.Snapshot() {
			out["run."+n.name+"."+k] = v
		}
		if e := n.liveEngine(); e != nil {
			for k, v := range e.handle.Stats().Snapshot() {
				out["run."+n.name+"."+k] += v
			}
			out["net."+n.name+".engine.warm"] = 1
			out["net."+n.name+".engine.live"] = int64(e.sessionCount())
		}
	}
	return out
}

// Quiesce refuses further Opens while leaving live sessions running — the
// first phase of graceful shutdown (drain, then Shutdown).
func (s *Service) Quiesce() {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
}

// DrainSessions blocks until every live session has been released (clients
// finishing naturally, or the idle reaper collecting them) or ctx expires;
// it reports whether the service drained fully.  Call Quiesce first so no
// new sessions arrive behind the drain.
func (s *Service) DrainSessions(ctx context.Context) bool {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		if s.SessionCount() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return s.SessionCount() == 0
		case <-t.C:
		}
	}
}

// Shutdown cancels every live session, waits for their networks to wind
// down, shuts down every warm shared engine, and refuses further Opens.
// It is idempotent.
func (s *Service) Shutdown() {
	s.mu.Lock()
	s.down = true
	if s.reaping {
		s.reaping = false
		close(s.stopReaper)
	}
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.Release()
	}
	// An Open racing this Shutdown may have started its instance before we
	// snapshotted: it self-releases on its second down-check, and we wait
	// for it here so the wind-down guarantee covers stragglers too.
	s.opening.Wait()
	for _, n := range s.Networks() {
		if e := n.liveEngine(); e != nil {
			e.shutdown()
		}
	}
}
