package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/snet"
)

// Handler returns the HTTP/JSON binding of the service — the snetd wire
// protocol.  Every endpoint is JSON in, JSON out:
//
//	GET    /api/healthz                  liveness probe
//	GET    /api/networks                 registered networks + live session counts
//	GET    /api/stats                    flat counter snapshot (see Service.Stats)
//	POST   /api/sessions                 {"net":"fig1"} → {"session":"s1"}
//	POST   /api/sessions/{id}/records    {"records":[...],"close":true} → {"accepted":n}
//	GET    /api/sessions/{id}/results    ?max=16&wait=5s → {"records":[...],"done":b}
//	POST   /api/sessions/{id}/close      end-of-input
//	DELETE /api/sessions/{id}            release the session
//	POST   /api/run                      one-shot: open, feed, drain, release
//
// Feeding blocks on the bounded stream buffers: a client that outruns its
// network instance is throttled by its own HTTP request — S-Net
// backpressure surfacing as flow control on the wire.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime": s.Uptime().String()})
	})
	mux.HandleFunc("GET /api/networks", s.handleNetworks)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("POST /api/sessions", s.handleOpen)
	mux.HandleFunc("POST /api/sessions/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /api/sessions/{id}/results", s.handleResults)
	mux.HandleFunc("POST /api/sessions/{id}/close", s.handleClose)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleRelease)
	mux.HandleFunc("POST /api/run", s.handleRun)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus maps service errors onto HTTP statuses: the session cap is
// 429 (back off and retry), unknown names are 404, sending after close is a
// 409 conflict with the session's own state, everything else 400.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownNetwork), errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBuild):
		return http.StatusInternalServerError // server-side configuration fault
	case errors.Is(err, snet.ErrClosed):
		return http.StatusConflict // send after close-of-input
	case errors.Is(err, snet.ErrCancelled):
		return http.StatusGone // session released / run cancelled
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errStatus(err), map[string]string{"error": err.Error()})
}

func (s *Service) handleNetworks(w http.ResponseWriter, r *http.Request) {
	type netInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		SessionMode string `json:"sessionMode"`
		BufferSize  int    `json:"bufferSize"`
		MaxSessions int    `json:"maxSessions"`
		Active      int    `json:"activeSessions"`
		EngineWarm  bool   `json:"engineWarm,omitempty"`
		// Compile-phase artifacts: the network's inferred type signature,
		// its typed topology (snet.Plan.Topology), and the number of
		// definite type errors the compile found (0 for a clean plan).
		Type       string         `json:"type,omitempty"`
		Topology   *snet.Topology `json:"topology,omitempty"`
		TypeErrors int            `json:"typeErrors,omitempty"`
		BuildError string         `json:"buildError,omitempty"`
		// Verifier artifacts (internal/analysis under default caps): the
		// headline deadlock verdict, the static memory high-water bound in
		// records (absent when occupancy is unbounded), and the number of
		// analysis findings.
		DeadlockFree *bool `json:"deadlockFree,omitempty"`
		MemoryBound  int64 `json:"memoryBound,omitempty"`
		Findings     int   `json:"findings,omitempty"`
	}
	var out []netInfo
	for _, n := range s.Networks() {
		n.mu.Lock()
		active := n.active
		n.mu.Unlock()
		info := netInfo{
			Name:        n.name,
			Description: n.descr,
			SessionMode: n.opts.SessionMode.String(),
			BufferSize:  n.opts.BufferSize,
			MaxSessions: n.opts.maxSessions(),
			Active:      active,
			EngineWarm:  n.liveEngine() != nil,
		}
		if plan, err := n.Plan(); err != nil {
			info.BuildError = err.Error()
		} else {
			info.Type = fmt.Sprintf("%v -> %v", plan.In(), plan.Out())
			info.Topology = plan.Topology()
			info.TypeErrors = len(plan.TypeErrors())
			if rep := n.Verify(); rep != nil {
				free := rep.DeadlockFree()
				info.DeadlockFree = &free
				info.Findings = len(rep.Findings)
				if rep.Bound != nil && rep.Bound.Finite {
					info.MemoryBound = rep.Bound.Total
				}
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": out})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Net string `json:"net"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	sess, err := s.Open(req.Net)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"session": sess.ID(), "net": req.Net})
}

func (s *Service) sessionFromPath(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return nil
	}
	return sess
}

func (s *Service) handleRecords(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	var req struct {
		Records []RecordJSON `json:"records"`
		Close   bool         `json:"close"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	codec := sess.Network().Codec()
	recs := make([]*snet.Record, 0, len(req.Records))
	for _, wire := range req.Records {
		rec, err := codec.Decode(wire)
		if err != nil {
			for _, r := range recs {
				snet.ReleaseRecord(r)
			}
			writeJSON(w, http.StatusBadRequest,
				map[string]any{"error": err.Error(), "accepted": 0})
			return
		}
		recs = append(recs, rec)
	}
	// The whole request body enters the network as transport frames — one
	// stream synchronization per StreamBatch records.
	accepted, err := sess.SendBatch(r.Context(), recs)
	if err != nil {
		// report how many records entered the network so a retrying
		// client knows where the batch stopped
		writeJSON(w, errStatus(err),
			map[string]any{"error": err.Error(), "accepted": accepted})
		return
	}
	if req.Close {
		sess.CloseInput()
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// maxWait caps client-supplied wait durations so a request cannot pin its
// handler (and, for /api/run, a session slot) indefinitely.
const maxWait = 10 * time.Minute

// parseWait reads a Go duration ("" selects the 30s default), capped at
// maxWait.
func parseWait(v string) (time.Duration, error) {
	wait := 30 * time.Second
	if v != "" {
		var err error
		if wait, err = time.ParseDuration(v); err != nil {
			return 0, fmt.Errorf("bad wait: %w", err)
		}
	}
	if wait > maxWait {
		wait = maxWait
	}
	return wait, nil
}

// resultParams reads ?max= and ?wait= for a drain request.
func resultParams(r *http.Request) (max int, wait time.Duration, err error) {
	if v := r.URL.Query().Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil {
			return 0, 0, fmt.Errorf("bad max: %w", err)
		}
	}
	wait, err = parseWait(r.URL.Query().Get("wait"))
	if err != nil {
		return 0, 0, err
	}
	return max, wait, nil
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	max, wait, err := resultParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	// Delivery is at-most-once (see Session.Drain): whatever was collected
	// before a deadline or disconnect is returned — never discarded, since
	// it has already been consumed from the stream.
	recs, done, err := sess.Drain(ctx, max)
	if err != nil && len(recs) == 0 && !errors.Is(err, context.DeadlineExceeded) {
		writeError(w, err)
		return
	}
	codec := sess.Network().Codec()
	out := make([]RecordJSON, 0, len(recs))
	for _, rec := range recs {
		out = append(out, codec.Encode(rec))
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": out, "done": done})
}

func (s *Service) handleClose(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	sess.CloseInput()
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFromPath(w, r)
	if sess == nil {
		return
	}
	sess.Release()
	writeJSON(w, http.StatusOK, map[string]bool{"released": true})
}

// handleRun is the one-shot convenience: open a session, feed the given
// records, close the input, drain until the network winds down (or max
// records / wait elapsed), release.  It is the request shape under the
// service's per-network latency counters.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Net     string       `json:"net"`
		Records []RecordJSON `json:"records"`
		Max     int          `json:"max"`
		Wait    string       `json:"wait"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	wait, err := parseWait(req.Wait)
	if err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	sess, err := s.Open(req.Net)
	if err != nil {
		writeError(w, err)
		return
	}
	defer sess.Release()
	codec := sess.Network().Codec()
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	inputs := make([]*snet.Record, 0, len(req.Records))
	for _, wire := range req.Records {
		rec, err := codec.Decode(wire)
		if err != nil {
			for _, r := range inputs {
				snet.ReleaseRecord(r)
			}
			writeError(w, err)
			return
		}
		inputs = append(inputs, rec)
	}
	// Feed concurrently so a network whose output must be consumed before
	// all input fits in the buffers cannot deadlock the request.
	type feedResult struct {
		accepted int
		err      error
	}
	feedDone := make(chan feedResult, 1)
	go func() {
		accepted, err := sess.SendBatch(ctx, inputs)
		if err != nil {
			feedDone <- feedResult{accepted: accepted, err: err}
			return
		}
		sess.CloseInput()
		feedDone <- feedResult{accepted: accepted}
	}()
	recs, done, err := sess.Drain(ctx, req.Max)
	cancel() // unblock the feeder if the drain stopped at max or deadline
	feed := <-feedDone
	if err != nil && len(recs) == 0 && !errors.Is(err, context.DeadlineExceeded) {
		writeError(w, err)
		return
	}
	elapsed := time.Since(start)
	n := sess.Network()
	n.svcStat.Add("run.count", 1)
	n.svcStat.Add("latency.run_ns", elapsed.Nanoseconds())
	n.svcStat.SetMax("latency.run_ns", elapsed.Nanoseconds())

	out := make([]RecordJSON, 0, len(recs))
	for _, rec := range recs {
		out = append(out, codec.Encode(rec))
	}
	// accepted/inputDone let the client see a partially fed run (the wait
	// elapsed, or the drain hit max, before all input was delivered).
	writeJSON(w, http.StatusOK, map[string]any{
		"records":   out,
		"done":      done,
		"accepted":  feed.accepted,
		"inputDone": feed.err == nil,
		"ms":        float64(elapsed.Microseconds()) / 1000.0,
	})
}
