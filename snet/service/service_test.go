package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/snet"
)

// incNet builds a one-box network that increments tag <n>.
func incNet(Options) (snet.Node, error) {
	return snet.NewBox("inc", snet.MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		}), nil
}

// gatedNet builds a one-box network that blocks every record on the gate —
// the "slow consumer" for backpressure tests.
func gatedNet(gate chan struct{}) Builder {
	return func(Options) (snet.Node, error) {
		return snet.NewBox("gated", snet.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *snet.Emitter) error {
				select {
				case <-gate:
				case <-out.Done():
					return snet.ErrCancelled
				}
				return out.Out(1, args[0].(int))
			}), nil
	}
}

func recN(n int) *snet.Record { return snet.NewRecord().SetTag("n", n) }

// blockedNet builds a one-box network whose invocations wait until `need`
// of them are in flight, so the test can prove the BoxWorkers option
// reached the runtime's concurrent box engine.
func blockedNet(need int32) Builder {
	return func(Options) (snet.Node, error) {
		var inflight int32
		return snet.NewBox("gate", snet.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *snet.Emitter) error {
				for atomic.AddInt32(&inflight, 1); atomic.LoadInt32(&inflight) < need; {
					select {
					case <-out.Done():
						return snet.ErrCancelled
					case <-time.After(100 * time.Microsecond):
					}
				}
				return out.Out(1, args[0].(int))
			}), nil
	}
}

// TestBoxWorkersOptionReachesRuntime opens a session of a network whose box
// only completes when BoxWorkers invocations overlap, and checks the
// engine's counters surface through the aggregated run stats.
func TestBoxWorkersOptionReachesRuntime(t *testing.T) {
	svc := New()
	svc.Register("wide", "overlap gate", Options{BufferSize: 4, BoxWorkers: 3}, blockedNet(3), nil)
	sess, err := svc.Open("wide")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		if err := sess.Send(ctx, recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	sess.CloseInput()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 6 {
		t.Fatalf("drain: %d records done=%v err=%v", len(recs), done, err)
	}
	sess.Release()
	stats := svc.Stats()
	if stats["run.wide.box.gate.concurrency.max"] != 3 {
		t.Fatalf("concurrency.max = %d, want 3", stats["run.wide.box.gate.concurrency.max"])
	}
	if hw := stats["run.wide.box.gate.inflight.max"]; hw < 3 {
		t.Fatalf("inflight.max = %d, want >= 3", hw)
	}
	if stats["run.wide.box.gate.emitted"] != 6 {
		t.Fatalf("emitted = %d, want 6", stats["run.wide.box.gate.emitted"])
	}
}

func TestSessionLifecycle(t *testing.T) {
	svc := New()
	svc.Register("inc", "increment", Options{BufferSize: 4}, incNet, nil)
	sess, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := sess.Send(ctx, recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	sess.CloseInput()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done || len(recs) != 10 {
		t.Fatalf("drain: %d records done=%v err=%v", len(recs), done, err)
	}
	got := map[int]bool{}
	for _, r := range recs {
		n, _ := r.Tag("n")
		got[n] = true
	}
	for i := 1; i <= 10; i++ {
		if !got[i] {
			t.Fatalf("missing output <n>=%d in %v", i, recs)
		}
	}
	sess.Release()
	if svc.SessionCount() != 0 {
		t.Fatalf("session still registered after release")
	}
	stats := svc.Stats()
	if stats["net.inc.records.in"] != 10 || stats["net.inc.records.out"] != 10 {
		t.Fatalf("stats: %v", stats)
	}
	if stats["net.inc.sessions.opened"] != 1 || stats["net.inc.sessions.closed"] != 1 {
		t.Fatalf("session stats: %v", stats)
	}
	if stats["run.inc.box.inc.calls"] != 10 {
		t.Fatalf("aggregated run stats missing: %v", stats)
	}
}

// TestBackpressureBoundedBuffer verifies that a slow consumer propagates
// backpressure to Send: with a small buffer only a handful of records are
// accepted quickly, later sends time out on the caller's context, and no
// accepted record is lost once the consumer resumes.
func TestBackpressureBoundedBuffer(t *testing.T) {
	gate := make(chan struct{})
	svc := New()
	svc.Register("slow", "gated box", Options{BufferSize: 2}, gatedNet(gate), nil)
	sess, err := svc.Open("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()

	accepted, timedOut := 0, 0
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		err := sess.Send(ctx, recN(i))
		cancel()
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, context.DeadlineExceeded):
			timedOut++
		default:
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Capacity while the box is blocked: the input buffer (2) plus the
	// record held by the box and handoff slack.  All 10 must not fit.
	if accepted > 5 {
		t.Fatalf("buffer cap not respected: %d of 10 sends accepted with BufferSize=2", accepted)
	}
	if timedOut == 0 {
		t.Fatalf("expected at least one send to block on backpressure")
	}

	close(gate) // consumer resumes
	sess.CloseInput()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	recs, done, err := sess.Drain(ctx, 0)
	if err != nil || !done {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	if len(recs) != accepted {
		t.Fatalf("lost records: accepted %d, drained %d", accepted, len(recs))
	}
}

// TestDrainPartialOnDeadline: a deadline mid-drain returns the partial
// batch together with the context error (at-most-once delivery).
func TestDrainPartialOnDeadline(t *testing.T) {
	svc := New()
	svc.Register("inc", "", Options{BufferSize: 4}, incNet, nil)
	sess, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	for i := 0; i < 3; i++ {
		if err := sess.Send(context.Background(), recN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// input stays open: after 3 records the stream goes quiet
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	recs, done, err := sess.Drain(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) || done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if len(recs) != 3 {
		t.Fatalf("partial batch: %d records, want 3", len(recs))
	}
}

func TestMaxSessions(t *testing.T) {
	svc := New()
	svc.Register("inc", "", Options{MaxSessions: 2}, incNet, nil)
	s1, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open("inc"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third open: %v, want ErrSessionLimit", err)
	}
	s1.Release()
	s3, err := svc.Open("inc")
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	s2.Release()
	s3.Release()
	stats := svc.Stats()
	if stats["net.inc.sessions.rejected"] != 1 {
		t.Fatalf("rejected counter: %v", stats)
	}
	if stats["net.inc.sessions.active.max"] != 2 {
		t.Fatalf("active high-water mark: %v", stats)
	}
}

func TestUnknownNames(t *testing.T) {
	svc := New()
	if _, err := svc.Open("nope"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("open: %v", err)
	}
	if _, err := svc.Session("s1"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("session: %v", err)
	}
}

// TestConcurrentSessions runs many independent sessions of one shared
// network definition at once (the snetd serving scenario) and checks that
// every session sees exactly its own results.
func TestConcurrentSessions(t *testing.T) {
	svc := New()
	svc.Register("inc", "", Options{BufferSize: 4}, incNet, nil)
	const clients = 64
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := svc.Open("inc")
			if err != nil {
				errs <- err
				return
			}
			defer sess.Release()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			go func() {
				for i := 0; i < perClient; i++ {
					if sess.Send(ctx, recN(c*1000+i)) != nil {
						return
					}
				}
				sess.CloseInput()
			}()
			recs, done, err := sess.Drain(ctx, 0)
			if err != nil || !done || len(recs) != perClient {
				errs <- fmt.Errorf("client %d: %d records done=%v err=%v", c, len(recs), done, err)
				return
			}
			for _, r := range recs {
				n, _ := r.Tag("n")
				if (n-1)/1000 != c {
					errs <- fmt.Errorf("client %d received foreign record <n>=%d", c, n)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := svc.Stats()
	if got := stats["net.inc.records.out"]; got != clients*perClient {
		t.Fatalf("records.out = %d, want %d", got, clients*perClient)
	}
	if stats["net.inc.sessions.opened"] != clients || stats["net.inc.sessions.closed"] != clients {
		t.Fatalf("session accounting: %v", stats)
	}
}

// goroutine-leak helpers, following internal/core/leak_test.go.
func goroutineCount() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

// TestShutdownNoLeaks opens sessions with records still in flight (some
// blocked on a closed gate, none drained) and shuts the service down; every
// network goroutine must unwind.
func TestShutdownNoLeaks(t *testing.T) {
	base := goroutineCount()
	gate := make(chan struct{}) // never opened
	svc := New()
	svc.Register("slow", "", Options{BufferSize: 2}, gatedNet(gate), nil)
	svc.Register("inc", "", Options{BufferSize: 2}, incNet, nil)
	for i := 0; i < 8; i++ {
		name := "slow"
		if i%2 == 0 {
			name = "inc"
		}
		sess, err := svc.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			_ = sess.Send(ctx, recN(j)) // may time out on the gated net
			cancel()
		}
	}
	svc.Shutdown()
	if _, err := svc.Open("inc"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("open after shutdown: %v", err)
	}
	waitForGoroutines(t, base+3)
	if svc.SessionCount() != 0 {
		t.Fatalf("sessions survived shutdown")
	}
}

// TestConcurrentSendCloseRelease hammers one session's input side from
// many goroutines while another closes and releases it — the HTTP layer's
// worst case (concurrent /records, /close and DELETE on one session id).
// The runtime must never panic on "send on closed channel"; sends after
// close fail with ErrClosed.
func TestConcurrentSendCloseRelease(t *testing.T) {
	for i := 0; i < 20; i++ {
		svc := New()
		svc.Register("inc", "", Options{BufferSize: 1}, incNet, nil)
		sess, err := svc.Open("inc")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := context.Background()
				for j := 0; j < 50; j++ {
					if err := sess.Send(ctx, recN(j)); err != nil {
						if !errors.Is(err, snet.ErrClosed) && !errors.Is(err, snet.ErrCancelled) {
							t.Errorf("send: %v", err)
						}
						return
					}
				}
			}()
		}
		go func() {
			for r := range sess.Handle().Out() {
				_ = r
			}
		}()
		sess.CloseInput()
		sess.Release()
		wg.Wait()
	}
}

// TestIdleSessionsReaped: abandoned sessions (no DELETE, no activity) are
// released by the reaper so they cannot pin MaxSessions slots forever.
func TestIdleSessionsReaped(t *testing.T) {
	svc := New()
	svc.reapEvery = 20 * time.Millisecond
	svc.Register("inc", "", Options{MaxSessions: 2, IdleTimeout: 50 * time.Millisecond}, incNet, nil)
	if _, err := svc.Open("inc"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open("inc"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open("inc"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("expected cap hit, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := svc.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived the reaper", n)
	}
	stats := svc.Stats()
	if stats["net.inc.sessions.reaped"] != 2 {
		t.Fatalf("reaped counter: %v", stats)
	}
	if _, err := svc.Open("inc"); err != nil { // slots freed again
		t.Fatalf("open after reap: %v", err)
	}
	svc.Shutdown()
}

// TestInFlightCallNotReaped: a client blocked inside Send/Recv past the
// idle timeout is active, not idle — the reaper must leave it alone.
func TestInFlightCallNotReaped(t *testing.T) {
	gate := make(chan struct{})
	svc := New()
	svc.reapEvery = 20 * time.Millisecond
	svc.Register("slow", "", Options{BufferSize: 0, IdleTimeout: 50 * time.Millisecond},
		gatedNet(gate), nil)
	sess, err := svc.Open("slow")
	if err != nil {
		t.Fatal(err)
	}
	recvDone := make(chan error, 1)
	go func() { // long result poll, blocked well past IdleTimeout
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := sess.Send(ctx, recN(1)); err != nil {
			recvDone <- err
			return
		}
		_, _, err := sess.Recv(ctx)
		recvDone <- err
	}()
	time.Sleep(300 * time.Millisecond) // several reap sweeps past the timeout
	if svc.SessionCount() != 1 {
		t.Fatalf("session with in-flight call was reaped")
	}
	close(gate) // box delivers; the blocked Recv completes
	if err := <-recvDone; err != nil {
		t.Fatalf("recv: %v", err)
	}
	sess.Release()
	svc.Shutdown()
}

// TestReleaseIdempotent double-releases and re-uses stats.
func TestReleaseIdempotent(t *testing.T) {
	svc := New()
	svc.Register("inc", "", Options{}, incNet, nil)
	sess, err := svc.Open("inc")
	if err != nil {
		t.Fatal(err)
	}
	sess.Release()
	sess.Release()
	if got := svc.Stats()["net.inc.sessions.closed"]; got != 1 {
		t.Fatalf("closed counter after double release: %d", got)
	}
}

// Every session of a network shares one compiled plan: the builder runs
// once, and the plan (with its routing tables) is reused in Isolated mode.
func TestSessionsShareCompiledPlan(t *testing.T) {
	svc := New()
	defer svc.Shutdown()
	var builds atomic.Int32
	svc.Register("shared-plan", "", Options{}, func(o Options) (snet.Node, error) {
		builds.Add(1)
		return incNet(o)
	}, nil)

	for i := 0; i < 5; i++ {
		s, err := svc.Open("shared-plan")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Send(context.Background(), recN(i)); err != nil {
			t.Fatal(err)
		}
		s.CloseInput()
		rec, _, err := s.Recv(context.Background())
		if err != nil || rec.MustTag("n") != i+1 {
			t.Fatalf("rec=%v err=%v", rec, err)
		}
		s.Release()
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1 (plan cached)", got)
	}
	n, _ := svc.Network("shared-plan")
	plan, err := n.Plan()
	if err != nil || plan == nil {
		t.Fatalf("Plan: %v", err)
	}
	if n.PlanErr() != nil {
		t.Fatalf("PlanErr: %v", n.PlanErr())
	}
}

// A network whose compile finds type errors still serves (legacy nets only
// ever failed at runtime), with the findings counted and retrievable.
func TestTypeErroredNetworkStillServes(t *testing.T) {
	svc := New()
	defer svc.Shutdown()
	svc.Register("dead-branch", "", Options{}, func(Options) (snet.Node, error) {
		mk := func(name, sig string) snet.Node {
			return snet.NewBox(name, snet.MustParseSignature(sig),
				func(args []any, out *snet.Emitter) error { return out.Out(1, args...) })
		}
		return snet.Serial(mk("p", "(n) -> (n)"),
			snet.Parallel(mk("q", "(n) -> (n)"), mk("r", "(m) -> (m)"))), nil
	}, nil)

	s, err := svc.Open("dead-branch")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(context.Background(), snet.NewRecord().SetField("n", 1)); err != nil {
		t.Fatal(err)
	}
	s.CloseInput()
	if rec, _, err := s.Recv(context.Background()); err != nil || rec == nil {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
	s.Release()

	n, _ := svc.Network("dead-branch")
	var ce *snet.CompileError
	if !errors.As(n.PlanErr(), &ce) {
		t.Fatalf("PlanErr = %v, want *snet.CompileError", n.PlanErr())
	}
	if ce.Errors[0].Code != snet.ErrCodeUnreachable {
		t.Fatalf("code = %q", ce.Errors[0].Code)
	}
	if got := n.svcStat.Counter("compile.type_errors"); got == 0 {
		t.Fatal("compile.type_errors not counted")
	}
}
