package service

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/snet"
)

// Fusion at the service layer: a shared engine unfolds one session replica
// per client, and with the fusion pass on, each replica of a lightweight
// pipeline is a single goroutine instead of one per stage.

// deepFusibleNet is a depth-stage chain of Observe taps — entirely fusible,
// the service-side analogue of the E13 deep-pipeline shape.
func deepFusibleNet(depth int) func(Options) (snet.Node, error) {
	return func(Options) (snet.Node, error) {
		stages := make([]snet.Node, depth)
		for i := range stages {
			stages[i] = snet.Observe(fmt.Sprintf("dtap%d", i), nil)
		}
		return snet.Serial(stages...), nil
	}
}

func fuseEnvOff() bool { return os.Getenv("SNET_FUSE") == "0" }

// TestSharedFusedOpenWaveStaysFlat: opening S=1024 shared sessions on a
// warm fused deep pipeline spawns no per-stage goroutines — Open stays a
// map insert whatever the stage count behind the engine.
func TestSharedFusedOpenWaveStaysFlat(t *testing.T) {
	svc := New()
	svc.Register("deep", "", sharedOpts(Options{BufferSize: 2, MaxSessions: -1}),
		deepFusibleNet(32), nil)
	defer svc.Shutdown()
	warm, err := svc.Open("deep") // pays the engine instantiation
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	base := goroutineCount()
	const wave = 1024
	sessions := make([]*Session, wave)
	for i := range sessions {
		if sessions[i], err = svc.Open("deep"); err != nil {
			t.Fatal(err)
		}
	}
	if grew := goroutineCount() - base; grew > 4 {
		t.Fatalf("opening %d warm sessions on a fused pipeline grew goroutines by %d", wave, grew)
	}
	for _, sess := range sessions {
		sess.Release()
	}
}

// TestSharedFusedSessionGoroutineBudget drives live session replicas
// through a 32-stage pipeline in both execution modes: with fusion each
// replica costs O(1) goroutines, without it O(depth) — the shared engine's
// capacity story at scale rests on this gap.
func TestSharedFusedSessionGoroutineBudget(t *testing.T) {
	if fuseEnvOff() {
		t.Skip("SNET_FUSE=0")
	}
	const depth = 32
	const live = 8
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	measure := func(noFuse bool) int {
		svc := New()
		svc.Register("deep", "", sharedOpts(Options{
			BufferSize: 2, MaxSessions: -1, NoFusion: noFuse,
		}), deepFusibleNet(depth), nil)
		defer svc.Shutdown()
		warm, err := svc.Open("deep")
		if err != nil {
			t.Fatal(err)
		}
		warm.Release()
		base := goroutineCount()
		sessions := make([]*Session, live)
		for i := range sessions {
			if sessions[i], err = svc.Open("deep"); err != nil {
				t.Fatal(err)
			}
			// The replica unfolds on the first record; pull it back out so
			// the pipeline is demonstrably live, then keep the session open.
			if err = sessions[i].Send(ctx, recN(i)); err != nil {
				t.Fatal(err)
			}
			if _, _, err = sessions[i].Recv(ctx); err != nil {
				t.Fatal(err)
			}
		}
		grew := goroutineCount() - base
		for _, sess := range sessions {
			sess.Release()
		}
		return grew
	}
	fused, unfused := measure(false), measure(true)
	if fused > live*8 {
		t.Errorf("%d fused replicas grew %d goroutines, want O(1) per replica", live, fused)
	}
	if unfused < live*(depth-8) {
		t.Errorf("unfused baseline grew only %d goroutines — harness no longer measures per-stage cost", unfused)
	}
	if fused*3 > unfused {
		t.Errorf("fused replicas not materially lighter: fused=%d unfused=%d", fused, unfused)
	}
}
