package service

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedModeSessionSoak is the sustained-load correctness test: churn
// S >= 100k sessions through one warm shared engine and assert the runtime
// ends exactly where it started — the session_mux replica gauge back to 0,
// every record accounted for (in == out, nothing dropped or stray), and the
// goroutine count back at base.
//
// The run is opt-in (set SNET_SOAK=1; SNET_SOAK_SESSIONS overrides the
// churn size) because 100k sessions take minutes, and it skips itself under
// -race: the detector's per-access overhead at this scale tests the
// detector, not the close protocol.  CI runs it as a dedicated non-race
// job.
func TestSharedModeSessionSoak(t *testing.T) {
	if os.Getenv("SNET_SOAK") == "" {
		t.Skip("soak: set SNET_SOAK=1 to run the 100k-session churn")
	}
	if raceEnabled {
		t.Skip("soak: skipped under -race; run without the detector")
	}
	sessions := 100_000
	if v := os.Getenv("SNET_SOAK_SESSIONS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SNET_SOAK_SESSIONS %q", v)
		}
		sessions = n
	}
	const perSession = 2
	workers := 64

	base := runtime.NumGoroutine()
	svc := New()
	defer svc.Shutdown()
	svc.Register("pipe", "", Options{
		SessionMode: Shared,
		MaxSessions: -1,
		BufferSize:  4,
	}, pipeNet, nil)

	var next atomic.Int64
	var done atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				i := int(next.Add(1)) - 1
				if i >= sessions {
					return
				}
				sess, err := svc.Open("pipe")
				if err != nil {
					errs <- fmt.Errorf("session %d: open: %w", i, err)
					return
				}
				for k := 0; k < perSession; k++ {
					if err := sess.Send(ctx, recN(i+k)); err != nil {
						errs <- fmt.Errorf("session %d: send: %w", i, err)
						sess.Release()
						return
					}
				}
				sess.CloseInput()
				recs, ok, err := sess.Drain(ctx, 0)
				if err != nil || !ok {
					errs <- fmt.Errorf("session %d: drain: done=%v err=%w", i, ok, err)
					sess.Release()
					return
				}
				if len(recs) != perSession {
					errs <- fmt.Errorf("session %d: %d records, want %d", i, len(recs), perSession)
					sess.Release()
					return
				}
				for k, r := range recs {
					if got, _ := r.Tag("n"); got != ((i+k)+1)*2+3 {
						errs <- fmt.Errorf("session %d record %d: n=%d", i, k, got)
						sess.Release()
						return
					}
				}
				sess.Release()
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := done.Load(); got != int64(sessions) {
		t.Fatalf("completed %d sessions, want %d", got, sessions)
	}
	t.Logf("soak: %d sessions × %d records in %v (%.0f sessions/s)",
		sessions, perSession, time.Since(start).Round(time.Millisecond),
		float64(sessions)/time.Since(start).Seconds())

	// The close protocol reclaims session replicas asynchronously: poll the
	// live gauge down to zero, then pin the ledger.
	gauge := func() int64 { return svc.Stats()["run.pipe.split.session_mux.replicas"] }
	deadline := time.Now().Add(30 * time.Second)
	for gauge() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := gauge(); g != 0 {
		t.Fatalf("split.session_mux.replicas = %d after churn, want 0", g)
	}

	m := svc.Stats()
	expectEq := func(key string, want int64) {
		t.Helper()
		if got := m[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	expectEq("net.pipe.sessions.opened", int64(sessions))
	expectEq("net.pipe.sessions.closed", int64(sessions))
	expectEq("net.pipe.records.in", int64(sessions*perSession))
	expectEq("net.pipe.records.out", int64(sessions*perSession))
	expectEq("net.pipe.engine.dropped", 0)
	expectEq("net.pipe.engine.stray", 0)
	expectEq("run.pipe.stream.discarded", 0)

	// Goroutines: everything the churn spawned must have unwound (the warm
	// engine itself stays up until Shutdown).
	glimit := base + 32
	deadline = time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > glimit && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > glimit {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after soak: %d > %d\n%.8000s", g, glimit, buf[:n])
	}
}
