// Package snet is the public API of the S-Net coordination runtime — the
// primary contribution of Grelck, Scholz & Shafarenko, "Coordinating Data
// Parallel SAC Programs with S-Net" (IPPS 2007).
//
// S-Net turns stateless functions into asynchronously executed stream
// components ("boxes") over typed records, and composes them with four
// network combinators (and their deterministic variants):
//
//	Serial(a, b)        a .. b      pipeline
//	Parallel(a, b)      a || b      best-match routing, eager merge
//	Star(a, pattern)    a ** (p)    demand-driven serial replication
//	Split(a, "k")       a !! <k>    tag-indexed parallel replication
//	ParallelDet/StarDet/SplitDet    |  *  !   (order-preserving variants)
//
// plus housekeeping Filters, Synchrocells and transparent Observe taps.
//
// The API is compile-then-run.  A Node tree is an immutable blueprint;
// Compile type-checks it (bottom-up inference with record subtyping and
// flow inheritance, §3–4 of the paper), precomputes the routing tables the
// hot path dispatches through, and returns a Plan; Plan.Start instantiates
// runs from the checked blueprint.  Quickstart:
//
//	inc := snet.NewBox("inc", snet.MustParseSignature("(<n>) -> (<n>)"),
//	    func(args []any, out *snet.Emitter) error {
//	        return out.Out(1, args[0].(int)+1)
//	    })
//	plan, err := snet.Compile(snet.Serial(inc, snet.MustFilter("{<n>} -> {<n>=<n>*2}")))
//	if err != nil { ... }            // structured *TypeErrors, before anything runs
//	h := plan.Start(context.Background())
//	h.Send(snet.NewRecord().SetTag("n", 20))
//	h.Close()
//	for r := range h.Out() { fmt.Println(r) } // {<n>=42}
//
// Compile rejects — with node paths — defects that previously surfaced only
// mid-stream: unreachable Parallel branches, record shapes no branch
// accepts, box signature mismatches, records reaching a Split without its
// index tag, reserved-label violations.  Plan.Topology exports the typed
// graph as JSON.  The pre-Plan entry points remain as shims: Start(ctx,
// node) is Compile with diagnostics discarded followed by Plan.Start.
//
// See snet/lang for the textual network language of the paper.
package snet

import (
	"context"

	"repro/internal/core"
)

// Core data model.
type (
	// Record is a set of labelled fields (opaque values) and tags (ints).
	Record = core.Record
	// Label names a field or tag.
	Label = core.Label
	// Variant is a record type: a set of labels.
	Variant = core.Variant
	// RecType is a disjunction of variants.
	RecType = core.RecType
	// Pattern is a variant with an optional tag guard.
	Pattern = core.Pattern
	// TagExpr is an integer expression over tag values.
	TagExpr = core.TagExpr
	// BoxSignature declares a box's input tuple and output variants.
	BoxSignature = core.BoxSignature
	// FilterSpec is a parsed filter.
	FilterSpec = core.FilterSpec
	// FilterItem is one element of a filter output specifier.
	FilterItem = core.FilterItem
)

// Runtime types.
type (
	// Node is a SISO network component (box, filter or combinator).
	Node = core.Node
	// BoxFunc is the computation wrapped by a box.
	BoxFunc = core.BoxFunc
	// Emitter delivers box outputs (the paper's snet_out).
	Emitter = core.Emitter
	// Handle is a running network.
	Handle = core.Handle
	// Stats collects runtime counters (replica counts, box calls, ...).
	Stats = core.Stats
	// Tracer observes records crossing node boundaries.
	Tracer = core.Tracer
	// TracerFunc adapts a function to Tracer.
	TracerFunc = core.TracerFunc
	// Option configures a run.
	Option = core.Option
	// Diagnostic is a network type-check finding.
	Diagnostic = core.Diagnostic
)

// Compile phase (the typed Plan API).
type (
	// Plan is a compiled network: the checked blueprint plus its
	// precomputed routing tables and serializable topology.  Start it any
	// number of times; all runs share the tables.
	Plan = core.Plan
	// CompileOption configures Compile.
	CompileOption = core.CompileOption
	// TypeError is one definite compile finding, located by node path.
	TypeError = core.TypeError
	// CompileError aggregates a Compile call's TypeErrors.
	CompileError = core.CompileError
	// NoRouteError is the runtime form of a routing failure: a record whose
	// type matches no Parallel branch.  It unwraps to ErrNoRoute.
	NoRouteError = core.NoRouteError
	// Topology is the serializable typed graph of a compiled network.
	Topology = core.Topology
	// FusionGroup names one fused segment of a compiled plan and its
	// constituent stages (Topology.FusionGroups, Plan.FusionGroups).
	FusionGroup = core.FusionGroup
)

// Compile type-checks a network and returns its Plan; MustCompile panics on
// type errors.  WithInputType declares the network's input type instead of
// inferring it bottom-up.  The TypeError codes are the ErrCode constants.
// WithFusion toggles the compile-time pipeline-fusion pass (default on):
// maximal chains of lightweight stages — filters, Observe taps, HideTags,
// and boxes pinned to sequential invocation — collapse into single-goroutine
// fused segments with no streams between stages.  SNET_FUSE=0 disables the
// pass process-wide for triage.
var (
	Compile       = core.Compile
	MustCompile   = core.MustCompile
	WithInputType = core.WithInputType
	WithFusion    = core.WithFusion
)

// TypeError codes.
const (
	ErrCodeUnreachable = core.ErrCodeUnreachable
	ErrCodeNoRoute     = core.ErrCodeNoRoute
	ErrCodeBoxReject   = core.ErrCodeBoxReject
	ErrCodeMissingTag  = core.ErrCodeMissingTag
	ErrCodeReserved    = core.ErrCodeReserved
)

// Record and label constructors.
var (
	NewRecord  = core.NewRecord
	Field      = core.Field
	Tag        = core.Tag
	NewVariant = core.NewVariant
	NewStats   = core.NewStats
)

// Record arena.  The runtime recycles the records it creates internally
// (filter outputs, box emissions, synchrocell merges) through a process-wide
// pool; records handed to user code through Handle.Out leave the pool's
// domain and are reclaimed by the GC as usual.  High-throughput producers
// can opt into the same economy: AcquireRecord returns a pooled empty
// record, and ReleaseRecord returns one whose contents are no longer needed
// (using a record after release panics — ownership transfers completely).
// PoolStats exposes the acquire/recycle/disown counters leak tests assert
// on.  Setting SNET_RECORD_POOL=0 disables pooling process-wide.
type RecordPoolStats = core.RecordPoolStats

var (
	AcquireRecord = core.AcquireRecord
	ReleaseRecord = core.ReleaseRecord
	PoolStats     = core.PoolStats
)

// DecodeFlat reads one record from its canonical flat wire form (the
// slot-array layout serialized as-is; see Record.AppendFlat for the
// encoder).  It returns the record and the remaining bytes, so concatenated
// records decode as a stream.
var DecodeFlat = core.DecodeFlat

// Parsers for the textual micro-forms.
var (
	ParseSignature     = core.ParseSignature
	MustParseSignature = core.MustParseSignature
	ParsePattern       = core.ParsePattern
	MustParsePattern   = core.MustParsePattern
	ParseFilter        = core.ParseFilter
	MustParseFilter    = core.MustParseFilter
	ParseTagExpr       = core.ParseTagExpr
	MustParseTagExpr   = core.MustParseTagExpr
)

// Node constructors.
var (
	NewBox = core.NewBox
	// NewBoxConcurrent is NewBox with a fixed per-box concurrency width
	// (0 inherits the run's WithBoxWorkers default, 1 pins sequential).
	NewBoxConcurrent = core.NewBoxConcurrent
	NewFilter        = core.NewFilter
	FilterFrom       = core.FilterFrom
	MustFilter       = core.MustFilter
	Observe          = core.Observe
	Serial           = core.Serial
	Parallel         = core.Parallel
	ParallelDet      = core.ParallelDet
	Star             = core.Star
	StarDet          = core.StarDet
	NamedStar        = core.NamedStar
	NamedStarDet     = core.NamedStarDet
	Split            = core.Split
	SplitDet         = core.SplitDet
	NamedSplit       = core.NamedSplit
	NamedSplitDet    = core.NamedSplitDet
	// SessionSplit is NamedSplit exempt from WithMaxSplitWidth folding:
	// distinct tag values always get distinct replicas — the
	// session-multiplexing configuration of snet/service's shared mode.
	SessionSplit = core.SessionSplit
	Sync         = core.Sync
	// NamedSync is Sync with an explicit stats label
	// ("sync.<name>.fired"/"sync.<name>.starved") and a stable topology name.
	NamedSync = core.NamedSync
	// HideTags is a transparent node deleting the given tags from every
	// record — compose it serially where a routing tag must not travel on.
	HideTags = core.HideTags
)

// Replica lifecycle: parallel replication (Split) creates replicas on
// demand; these retire them again.  NewReplicaClose builds the in-band
// control record that closes and reclaims the replica of one tag value in
// FIFO position with the data; NewReplicaCloseAck additionally re-emits the
// record downstream after the replica's last output — the end-of-replica
// barrier the session service builds on.  IsReplicaClose recognizes both.
// ReservedTagPrefix marks the label namespace these (and the session
// machinery) live in; the textual parsers reject user labels inside it.
var (
	NewReplicaClose    = core.NewReplicaClose
	NewReplicaCloseAck = core.NewReplicaCloseAck
	IsReplicaClose     = core.IsReplicaClose
	IsReservedLabel    = core.IsReservedLabel
)

// ReservedTagPrefix is the runtime-owned label namespace ("__snet_").
const ReservedTagPrefix = core.ReservedTagPrefix

// Run options.
var (
	WithBuffer = core.WithBuffer
	// WithStreamBuffer sets the per-stream buffer capacity in frames
	// (WithBuffer under its transport-layer name).
	WithStreamBuffer = core.WithStreamBuffer
	// WithStreamBatch sets the stream batch size B: how many records a hot
	// stream coalesces into one channel synchronization.  Flushing is
	// adaptive — markers, idle inputs and close always flush — so
	// deterministic results and low-load latency are independent of B.
	WithStreamBatch  = core.WithStreamBatch
	WithTracer       = core.WithTracer
	WithErrorHandler = core.WithErrorHandler
	// WithBoxWorkers sets the per-box invocation concurrency width W for
	// the run (default GOMAXPROCS, 1 = sequential).  Output order is
	// preserved at any width, so deterministic networks stay deterministic.
	WithBoxWorkers    = core.WithBoxWorkers
	WithMaxStarDepth  = core.WithMaxStarDepth
	WithMaxSplitWidth = core.WithMaxSplitWidth
	// WithReplicaIdleReap makes split nodes reclaim replicas idle for the
	// given duration (goroutines unwound, the "split.<name>.replicas" gauge
	// decremented) — the leak guard for long-lived runs with churning keys.
	WithReplicaIdleReap = core.WithReplicaIdleReap
)

// Typing and analysis.
var (
	Infer      = core.Infer
	Check      = core.Check
	MatchScore = core.MatchScore
)

// Errors.
var ErrCancelled = core.ErrCancelled
var ErrClosed = core.ErrClosed

// ErrNoRoute is the sentinel under every *NoRouteError — check it with
// errors.Is on WithErrorHandler callbacks or Handle.Err.
var ErrNoRoute = core.ErrNoRoute

// Start launches a network; see Handle for the stream API.
//
// Start is the legacy compile-and-run shim: it behaves exactly like
// Compile(root) with diagnostics discarded followed by Plan.Start (the
// routing tables are shared node artifacts either way).  New code should
// Compile once and hold the Plan — it surfaces type errors before anything
// runs and exposes the typed topology.
func Start(ctx context.Context, root Node, opts ...Option) *Handle {
	return core.Start(ctx, root, opts...)
}

// RunAll feeds all inputs, closes the input, and collects every output.
func RunAll(ctx context.Context, root Node, inputs []*Record, opts ...Option) ([]*Record, *Stats, error) {
	return core.RunAll(ctx, root, inputs, opts...)
}

// RunUntil feeds inputs and returns the first output satisfying stop.
func RunUntil(ctx context.Context, root Node, inputs []*Record, stop func(*Record) bool, opts ...Option) (*Record, *Stats, error) {
	return core.RunUntil(ctx, root, inputs, stop, opts...)
}
