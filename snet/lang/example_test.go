package lang_test

import (
	"context"
	"fmt"

	"repro/snet"
	"repro/snet/lang"
)

// A complete textual S-Net program: declare boxes, bind implementations,
// build and run — the paper's Fig. 1 shape on a toy countdown.
func Example() {
	src := `
		// countdown: each stage decrements <n>; <done> exits the chain
		box dec (<n>) -> (<n>) | (<n>,<done>);
		net countdown connect dec ** {<done>};
	`
	reg := lang.NewRegistry().RegisterFunc("dec",
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n == 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		})
	net, err := lang.BuildText(src, "countdown", reg)
	if err != nil {
		panic(err)
	}
	out, _, _ := snet.RunAll(context.Background(), net,
		[]*snet.Record{snet.NewRecord().SetTag("n", 3)})
	_, done := out[0].Tag("done")
	fmt.Println(len(out), done)
	// Output: 1 true
}

// Guarded exit patterns parse exactly as the paper writes them (Fig. 3).
func ExampleParse() {
	prog, err := lang.Parse(`
		box step (board, opts) -> (board, opts, <k>, <level>);
		net fig3core connect
		    ([{<k>} -> {<k>=<k>%4}] .. (step !! <k>)) ** ({<level>} | <level> > 40);
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(prog.Boxes), len(prog.Nets))
	// Output: 1 1
}
