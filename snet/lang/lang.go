// Package lang is the public API of the textual S-Net surface language:
// the notation the paper uses for box declarations, filters and network
// expressions.
//
//	box computeOpts (board) -> (board, opts);
//	box solveOneLevel (board, opts) -> (board, opts) | (board, <done>);
//	net fig1 connect computeOpts .. (solveOneLevel ** {<done>});
//
// Box names are bound to Go implementations through a Registry — the role
// the SaC compiler plays in the paper's two-layer model:
//
//	reg := lang.NewRegistry().
//	    RegisterFunc("computeOpts", computeOptsFn).
//	    RegisterFunc("solveOneLevel", solveFn)
//	plan, err := lang.CompileNet(lang.MustParse(src), "fig1", reg)
//	h := plan.Start(ctx)
//
// CompileNet surfaces the compile phase's structured TypeErrors with .snet
// source positions; BuildText remains the unchecked build-only path.
package lang

import (
	internal "repro/internal/lang"
)

type (
	// Program is a parsed S-Net source file.
	Program = internal.Program
	// BoxDecl is a box declaration.
	BoxDecl = internal.BoxDecl
	// NetDecl is a net definition.
	NetDecl = internal.NetDecl
	// Registry binds box names to implementations.
	Registry = internal.Registry
	// Error is a parse or build failure with source position.
	Error = internal.Error
	// Pos is a source position.
	Pos = internal.Pos
	// Built is a built net plus the node → source-position index used to
	// map compile diagnostics back to the .snet source.
	Built = internal.Built
)

var (
	// Parse parses an S-Net program.
	Parse = internal.Parse
	// MustParse is Parse panicking on error.
	MustParse = internal.MustParse
	// NewRegistry returns an empty box registry.
	NewRegistry = internal.NewRegistry
	// Build instantiates a named net against a registry.
	Build = internal.Build
	// BuildNet is Build keeping the node → source-position index.
	BuildNet = internal.BuildNet
	// BuildText parses and builds in one step.
	BuildText = internal.BuildText
	// CompileNet builds a named net and compiles it (snet.Compile),
	// decorating every TypeError with its .snet source position — the
	// static-diagnostics path of snetrun -check and snetd startup.
	CompileNet = internal.CompileNet
	// AnalyzeNet is CompileNet followed by the graph-level static analysis
	// (internal/analysis): the returned report's Findings — sync
	// starvation, dead arms, star divergence, unbounded splits, marker
	// hazards — carry node paths and .snet source positions.  The lint
	// path of snetrun -check -lint and snetd registration logging.
	AnalyzeNet = internal.AnalyzeNet
	// AnalyzeNetWithCaps is AnalyzeNet under explicit capacity assumptions
	// (analysis.Caps) — the deadlock & boundedness verifier behind
	// snetrun -verify: the report carries the whole-plan memory high-water
	// bound, the deadlock verdict and counterexample traces decorated with
	// .snet source positions.
	AnalyzeNetWithCaps = internal.AnalyzeNetWithCaps
)
