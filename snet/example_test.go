package snet_test

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/snet"
)

// The compile-then-run quickstart: Compile type-checks the blueprint —
// structured TypeErrors surface before anything runs — and returns a Plan
// whose precomputed routing tables every Start shares.
func ExampleCompile() {
	inc := snet.NewBox("inc", snet.MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		})
	plan, err := snet.Compile(snet.Serial(inc, snet.MustFilter("{<n>} -> {<n>=<n>*2}")))
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.In(), "->", plan.Out())
	h := plan.Start(context.Background())
	h.Send(snet.NewRecord().SetTag("n", 20))
	h.Close()
	for r := range h.Out() {
		fmt.Println(r)
	}
	// Output:
	// {<n>} -> {<n>}
	// {<n>=42}
}

// Compile rejects networks with branches no record can ever reach — a
// defect that previously surfaced only as a runtime routing failure.
func ExampleCompile_typeError() {
	produce := snet.NewBox("produce", snet.MustParseSignature("(n) -> (a,b)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0], args[0]) })
	eatAB := snet.NewBox("eatAB", snet.MustParseSignature("(a,b) -> (r)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0]) })
	eatAC := snet.NewBox("eatAC", snet.MustParseSignature("(a,c) -> (r)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0]) })

	_, err := snet.Compile(snet.Serial(produce, snet.Parallel(eatAB, eatAC)))
	var te *snet.TypeError
	if errors.As(err, &te) {
		fmt.Println(te.Code, te.Node)
	}
	// Output: unreachable-branch eatAC
}

// The pre-Plan quickstart keeps working unchanged: Start is a
// compile-and-run shim (Compile with diagnostics discarded, then
// Plan.Start).
func ExampleStart() {
	inc := snet.NewBox("inc", snet.MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *snet.Emitter) error {
			return out.Out(1, args[0].(int)+1)
		})
	net := snet.Serial(inc, snet.MustFilter("{<n>} -> {<n>=<n>*2}"))
	h := snet.Start(context.Background(), net)
	h.Send(snet.NewRecord().SetTag("n", 20))
	h.Close()
	for r := range h.Out() {
		fmt.Println(r)
	}
	// Output: {<n>=42}
}

// The smallest network: one box, one filter, serially composed.
func Example() {
	square := snet.NewBox("square",
		snet.MustParseSignature("(<n>) -> (<n>, <sq>)"),
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			return out.Out(1, n, n*n)
		})
	net := snet.Serial(square, snet.MustFilter("{<sq>} -> {<result>=<sq>+1}"))

	out, _, _ := snet.RunAll(context.Background(), net,
		[]*snet.Record{snet.NewRecord().SetTag("n", 6)})
	fmt.Println(out[0])
	// Output: {<n>=6, <result>=37}
}

// Serial replication unfolds on demand until records match the exit
// pattern — the paper's A ** {<done>}.
func ExampleStar() {
	dec := snet.NewBox("dec",
		snet.MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"),
		func(args []any, out *snet.Emitter) error {
			n := args[0].(int)
			if n == 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		})
	net := snet.Star(dec, snet.MustParsePattern("{<done>}"))
	out, stats, _ := snet.RunAll(context.Background(), net,
		[]*snet.Record{snet.NewRecord().SetTag("n", 3)})
	fmt.Println(len(out), stats.SumPrefix("star.") > 0)
	// Output: 1 true
}

// Parallel replication routes by tag value; equal tags share a replica.
func ExampleSplit() {
	id := snet.NewBox("id", snet.MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *snet.Emitter) error { return out.Out(1, args[0]) })
	net := snet.NamedSplit("width", id, "k")
	var inputs []*snet.Record
	for i := 0; i < 6; i++ {
		inputs = append(inputs, snet.NewRecord().SetTag("n", i).SetTag("k", i%2))
	}
	out, stats, _ := snet.RunAll(context.Background(), net, inputs)
	got := make([]int, 0, len(out))
	for _, r := range out {
		n, _ := r.Tag("n")
		got = append(got, n)
	}
	sort.Ints(got)
	fmt.Println(got, stats.Counter("split.width.replicas"))
	// Output: [0 1 2 3 4 5] 2
}

// Flow inheritance: labels not consumed by a box reappear on its outputs.
func ExampleNewBox_flowInheritance() {
	foo := snet.NewBox("foo", snet.MustParseSignature("(a) -> (b)"),
		func(args []any, out *snet.Emitter) error {
			return out.Out(1, "B")
		})
	in := snet.NewRecord().SetField("a", "A").SetTag("extra", 7)
	out, _, _ := snet.RunAll(context.Background(), foo, []*snet.Record{in})
	fmt.Println(out[0])
	// Output: {b=B, <extra>=7}
}

// Patterns can carry tag guards, as in the paper's Fig. 3 exit condition.
func ExampleMustParsePattern() {
	p := snet.MustParsePattern("{<level>} | <level> > 40")
	r1 := snet.NewRecord().SetTag("level", 41)
	r2 := snet.NewRecord().SetTag("level", 40)
	fmt.Println(p.Matches(r1), p.Matches(r2))
	// Output: true false
}
