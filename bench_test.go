// Package repro's benchmark harness: one testing.B benchmark per experiment
// of the paper's evaluation (see the experiment index in DESIGN.md and the
// recorded results in EXPERIMENTS.md).  The same workloads power
// cmd/experiments, which prints the full markdown tables.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/workloads"
	"repro/sac"
	saclang "repro/sac/lang"
	"repro/snet"
	"repro/snet/service"
	"repro/sudoku"
)

var pool1 = sac.NewPool(1)

func fixed(b *testing.B, name string) *sudoku.Board {
	b.Helper()
	p, ok := sudoku.Fixed9x9()[name]
	if !ok {
		b.Fatalf("unknown puzzle %s", name)
	}
	return p
}

func solveNet(b *testing.B, net snet.Node, puzzle *sudoku.Board, opts ...snet.Option) *snet.Stats {
	b.Helper()
	board, stats, err := sudoku.SolveWithNet(context.Background(), net, puzzle, opts...)
	if err != nil || board == nil || !board.IsSolved() {
		b.Fatalf("network solve failed: %v", err)
	}
	return stats
}

// BenchmarkE1Fig1Pipeline — Fig. 1: computeOpts .. (solveOneLevel ** {<done>}).
func BenchmarkE1Fig1Pipeline(b *testing.B) {
	for _, name := range []string{"easy", "medium", "hard"} {
		puzzle := fixed(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := solveNet(b, sudoku.Fig1Net(sudoku.NetConfig{Pool: pool1}), puzzle)
				if stats.Counter("star.solve_loop.replicas") > 81 {
					b.Fatal("Fig. 1 bound (81 stages) violated")
				}
			}
		})
	}
}

// BenchmarkE2Fig2FullUnfold — Fig. 2: (solveOneLevel !! <k>) ** {<done>}.
func BenchmarkE2Fig2FullUnfold(b *testing.B) {
	for _, name := range []string{"easy", "medium", "hard"} {
		puzzle := fixed(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := solveNet(b, sudoku.Fig2Net(sudoku.NetConfig{Pool: pool1}), puzzle)
				if stats.Max("split.level_split.width") > 9 ||
					stats.Counter("box.solveOneLevel.instances") > 729 {
					b.Fatal("Fig. 2 bounds (9-wide, 729 boxes) violated")
				}
			}
		})
	}
}

// BenchmarkE3Fig3Throttled — Fig. 3: throttle sweep over the %m filter.
func BenchmarkE3Fig3Throttled(b *testing.B) {
	puzzle := fixed(b, "hard")
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("throttle%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sudoku.NetConfig{Pool: pool1, Throttle: m, ExitLevel: 40}
				stats := solveNet(b, sudoku.Fig3Net(cfg), puzzle)
				if stats.Max("split.level_split.width") > int64(m) {
					b.Fatalf("throttle %d violated", m)
				}
			}
		})
	}
}

// BenchmarkE4Sequential9x9 — the §3 sequential solver ("far less than a
// second" for typical 9×9 puzzles).
func BenchmarkE4Sequential9x9(b *testing.B) {
	for _, name := range []string{"easy", "medium", "hard"} {
		puzzle := fixed(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := sudoku.SolveBoard(pool1, puzzle); !ok {
					b.Fatal("solve failed")
				}
			}
		})
	}
}

// BenchmarkE5WithLoopScaling — implicit data parallelism: the same stencil
// with-loop on 1-wide and 2-wide pools.
func BenchmarkE5WithLoopScaling(b *testing.B) {
	const side = 600
	src := sac.Genarray(pool1, []int{side, side}, 0.0,
		sac.GenHalfOpen([]int{0, 0}, []int{side, side}, func(iv []int) float64 {
			return float64((iv[0]*31+iv[1]*17)%1000) / 1000.0
		}))
	for _, workers := range []int{1, 2, 4} {
		p := sac.NewPoolWithGrain(workers, 512)
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sac.Genarray(p, []int{side, side}, 0.0,
					sac.GenHalfOpen([]int{1, 1}, []int{side - 1, side - 1},
						func(iv []int) float64 {
							x, j := iv[0], iv[1]
							return 0.2 * (src.At(x, j) + src.At(x-1, j) +
								src.At(x+1, j) + src.At(x, j-1) + src.At(x, j+1))
						}))
				if res.Size() != side*side {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkE6BigBoards — 16×16 boards, sequential vs the Fig. 3 network
// (medium instance; the seconds-long hard instances live in
// cmd/experiments).
func BenchmarkE6BigBoards(b *testing.B) {
	puzzle, _ := sudoku.Generate(pool1, 4, 7, 150, false)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := sudoku.SolveBoard(pool1, puzzle); !ok {
				b.Fatal("seq failed")
			}
		}
	})
	b.Run("fig3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := sudoku.NetConfig{Pool: pool1, Throttle: 4, ExitLevel: 200}
			solveNet(b, sudoku.Fig3Net(cfg), puzzle)
		}
	})
}

// BenchmarkE7SacVM — the Core SaC interpreter on the paper's §2 examples
// (correctness is asserted by unit tests; this tracks interpreter speed).
func BenchmarkE7SacVM(b *testing.B) {
	prog := saclang.MustParse(saclang.Prelude + `
		int[*] main() {
			A = with { ([1] <= iv < [4]) : 1;
			           ([3] <= iv < [5]) : 2;
			} : genarray( [6], 0);
			res = with { ([0] <= iv < [3]) : 3; } : modarray( A);
			return( res ++ [7,8]);
		}`)
	itp := saclang.New(prog, pool1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itp.Call("main", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8DetVsNondet — the sort-record protocol ablation: identical
// record flood through nondeterministic vs deterministic split.
func BenchmarkE8DetVsNondet(b *testing.B) {
	const n = 500
	mkInputs := func() []*snet.Record {
		inputs := make([]*snet.Record, n)
		for i := range inputs {
			inputs[i] = snet.NewRecord().SetTag("n", i).SetTag("k", i%4)
		}
		return inputs
	}
	idFn := func(args []any, out *snet.Emitter) error { return out.Out(1, args[0].(int)) }
	for _, det := range []bool{false, true} {
		name := "nondet"
		if det {
			name = "det"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				box := snet.NewBox("w", snet.MustParseSignature("(<n>) -> (<n>)"), idFn)
				var net snet.Node
				if det {
					net = snet.SplitDet(box, "k")
				} else {
					net = snet.Split(box, "k")
				}
				out, _, err := snet.RunAll(context.Background(), net, mkInputs())
				if err != nil || len(out) != n {
					b.Fatalf("out=%d err=%v", len(out), err)
				}
			}
		})
	}
}

// BenchmarkE9RuntimeMicro — coordination-layer throughput: box pipeline and
// filter hops per record.
func BenchmarkE9RuntimeMicro(b *testing.B) {
	idFn := func(args []any, out *snet.Emitter) error { return out.Out(1, args[0].(int)) }
	box := func() snet.Node {
		return snet.NewBox("id", snet.MustParseSignature("(<n>) -> (<n>)"), idFn)
	}
	nets := map[string]func() snet.Node{
		"box":      func() snet.Node { return box() },
		"pipeline": func() snet.Node { return snet.Serial(box(), box(), box(), box()) },
		"filter":   func() snet.Node { return snet.MustFilter("{<n>} -> {<n>=<n>*2+1}") },
	}
	for name, mk := range nets {
		b.Run(name, func(b *testing.B) {
			const n = 500
			inputs := make([]*snet.Record, n)
			for i := range inputs {
				inputs[i] = snet.NewRecord().SetTag("n", i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := snet.RunAll(context.Background(), mk(), inputs)
				if err != nil || len(out) != n {
					b.Fatal("micro failed")
				}
			}
		})
	}
}

// BenchmarkE11BoxEngine — the concurrent box engine: sequential invocation
// (W=1) vs W-worker order-preserving invocation on the sudoku networks of
// Figs. 1–3 (hard 9×9 instance).  CPU-bound boxes scale with W only up to
// the core count; see E12 for the latency-bound regime.
func BenchmarkE11BoxEngine(b *testing.B) {
	puzzle := fixed(b, "hard")
	nets := []struct {
		name string
		mk   func() snet.Node
	}{
		{"fig1", func() snet.Node { return sudoku.Fig1Net(sudoku.NetConfig{Pool: pool1}) }},
		{"fig2", func() snet.Node { return sudoku.Fig2Net(sudoku.NetConfig{Pool: pool1}) }},
		{"fig3", func() snet.Node {
			return sudoku.Fig3Net(sudoku.NetConfig{Pool: pool1, Throttle: 4, ExitLevel: 40})
		}},
	}
	for _, net := range nets {
		for _, W := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/W%d", net.name, W), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveNet(b, net.mk(), puzzle, snet.WithBoxWorkers(W))
				}
			})
		}
	}
}

// BenchmarkE12LatencyBoundBox — a box dominated by per-invocation latency
// (simulated I/O, 200µs per record): the engine overlaps the waits, so
// throughput scales with W even on a single core, while the reorder stage
// keeps the output stream in input order.
func BenchmarkE12LatencyBoundBox(b *testing.B) {
	const n, delay = 64, 200 * time.Microsecond
	mkNet := func() snet.Node {
		return snet.NewBox("io", snet.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *snet.Emitter) error {
				time.Sleep(delay)
				return out.Out(1, args[0].(int))
			})
	}
	inputs := make([]*snet.Record, n)
	for i := range inputs {
		inputs[i] = snet.NewRecord().SetTag("n", i)
	}
	for _, W := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("W%d", W), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := snet.RunAll(context.Background(), mkNet(), inputs,
					snet.WithBoxWorkers(W))
				if err != nil || len(out) != n {
					b.Fatalf("out=%d err=%v", len(out), err)
				}
				for j, r := range out {
					if v, _ := r.Tag("n"); v != j {
						b.Fatalf("order broken at %d: %v", j, out[j])
					}
				}
			}
		})
	}
}

// BenchmarkE13DeepPipeline — the batched stream transport on a deep
// pipeline of cheap stages: at B=1 every record pays one channel
// synchronization per hop; frames amortize that B-fold on hot streams
// while the adaptive flush keeps single-record latency flat.
func BenchmarkE13DeepPipeline(b *testing.B) {
	const n, depth = 2000, 32
	mkNet := func() snet.Node {
		stages := make([]snet.Node, depth)
		for i := range stages {
			stages[i] = snet.Observe(fmt.Sprintf("tap%d", i), nil)
		}
		return snet.Serial(stages...)
	}
	inputs := make([]*snet.Record, n)
	for i := range inputs {
		inputs[i] = snet.NewRecord().SetTag("n", i)
	}
	for _, B := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("B%d", B), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := snet.RunAll(context.Background(), mkNet(), inputs,
					snet.WithStreamBatch(B), snet.WithBoxWorkers(1))
				if err != nil || len(out) != n {
					b.Fatalf("out=%d err=%v", len(out), err)
				}
			}
		})
	}
}

// BenchmarkE14Fig1Batch — the Fig. 1 sudoku pipeline (the case study's
// deepest star chain) across the stream batch size.
func BenchmarkE14Fig1Batch(b *testing.B) {
	puzzle := fixed(b, "hard")
	for _, B := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("B%d", B), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveNet(b, sudoku.Fig1Net(sudoku.NetConfig{Pool: pool1}), puzzle,
					snet.WithStreamBatch(B))
			}
		})
	}
}

// BenchmarkSessionChurn — the E15 lifecycle cost per session: open, one
// record through a three-box pipeline, drain, release.  Isolated mode pays
// a full network instantiation and teardown per iteration; shared mode pays
// a map insert plus one replica unfold/reclaim on the warm engine.
func BenchmarkSessionChurn(b *testing.B) {
	builder := func(service.Options) (snet.Node, error) {
		box := func(name string) snet.Node {
			return snet.NewBox(name, snet.MustParseSignature("(<n>) -> (<n>)"),
				func(args []any, out *snet.Emitter) error {
					return out.Out(1, args[0].(int)+1)
				})
		}
		return snet.Serial(box("c1"), box("c2"), box("c3")), nil
	}
	for _, mode := range []service.SessionMode{service.Isolated, service.Shared} {
		b.Run(mode.String(), func(b *testing.B) {
			svc := service.New()
			svc.Register("pipe", "", service.Options{
				BufferSize: 8, SessionMode: mode, MaxSessions: -1,
			}, builder, nil)
			defer svc.Shutdown()
			ctx := context.Background()
			if mode == service.Shared { // warm the engine outside the loop
				warm, err := svc.Open("pipe")
				if err != nil {
					b.Fatal(err)
				}
				warm.Release()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := svc.Open("pipe")
				if err != nil {
					b.Fatal(err)
				}
				if err := sess.Send(ctx, snet.NewRecord().SetTag("n", i)); err != nil {
					b.Fatal(err)
				}
				sess.CloseInput()
				recs, done, err := sess.Drain(ctx, 0)
				if err != nil || !done || len(recs) != 1 {
					b.Fatalf("churn %d: %d records done=%v err=%v", i, len(recs), done, err)
				}
				sess.Release()
			}
		})
	}
}

// BenchmarkE10InterpretedBoxes — Fig. 1 with the paper's interpreted SaC
// boxes (the hybrid two-layer configuration) vs native boxes.
func BenchmarkE10InterpretedBoxes(b *testing.B) {
	puzzle := fixed(b, "easy")
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solveNet(b, sudoku.Fig1Net(sudoku.NetConfig{Pool: pool1}), puzzle)
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		boxes := sudoku.NewSacBoxes(pool1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			board, _, err := boxes.SolveHybrid(context.Background(), puzzle)
			if err != nil || board == nil {
				b.Fatalf("hybrid failed: %v", err)
			}
		}
	})
}

// BenchmarkE17Wavefront — the wavefront workload (internal/workloads): an
// n×n dependency grid of synchrocell joins unfolded from one {start}
// record, verified against the sequential DP reference each iteration.
func BenchmarkE17Wavefront(b *testing.B) {
	for _, n := range []int{8, 16} {
		seed := int64(61)
		plan := snet.MustCompile(workloads.WavefrontNet(n, seed))
		want := workloads.WavefrontReference(n, seed)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := plan.RunAll(context.Background(),
					[]*snet.Record{workloads.WavefrontSeed()})
				if err != nil || len(out) != 1 || out[0].MustField("result").(int) != want {
					b.Fatalf("wavefront n=%d: %v", n, err)
				}
			}
		})
	}
}

// BenchmarkE18DivConq — the divide-and-conquer workload: mergesort as star
// unfolding over per-pair split replicas, verified against sort.Ints.
func BenchmarkE18DivConq(b *testing.B) {
	const jobs, n, leaf = 2, 512, 32
	seed := int64(23)
	plan := snet.MustCompile(workloads.DivConqNet(n, leaf))
	in := workloads.DivConqJobs(jobs, n, seed)
	b.Run(fmt.Sprintf("jobs=%d_n=%d", jobs, n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, err := plan.RunAll(context.Background(), in,
				snet.WithMaxSplitWidth(workloads.DivConqSplitWidth(jobs, n, leaf)))
			if err != nil || len(out) != jobs {
				b.Fatalf("divconq: %d records err=%v", len(out), err)
			}
		}
	})
}

// BenchmarkE19WebPipe — the request/response pipeline driven in-process
// (the HTTP harness lives in cmd/experiments -only E19).
func BenchmarkE19WebPipe(b *testing.B) {
	plan := snet.MustCompile(workloads.WebPipeNet())
	const reqs = 64
	in := make([]*snet.Record, reqs)
	for i := range in {
		in[i] = workloads.WebPipeRequest(i)
	}
	b.Run(fmt.Sprintf("requests=%d", reqs), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, err := plan.RunAll(context.Background(), in)
			if err != nil || len(out) != reqs {
				b.Fatalf("webpipe: %d records err=%v", len(out), err)
			}
		}
	})
}

// drainHandle shuts a persistent benchmark handle down gracefully: close the
// input, drain the in-flight records, wait.  Cancel would strand pooled
// records in stream buffers and skew the arena ledger for later tests in the
// same binary.
func drainHandle(h *snet.Handle) {
	h.Close()
	for range h.Out() {
	}
	h.Wait()
}

// benchRecordPlanePipeline streams records through the E13 deep tap pipeline
// over one persistent handle, ping-ponging a fixed in-flight population: the
// record received from the output is sent straight back in.  Taps forward
// records untouched and frames recycle through the slab arena, so the
// steady state is allocation-free — the record-plane target the slot-array
// refactor set.
func benchRecordPlanePipeline(b *testing.B) {
	const depth, inflight = 32, 64
	stages := make([]snet.Node, depth)
	for i := range stages {
		stages[i] = snet.Observe(fmt.Sprintf("tap%d", i), nil)
	}
	h := snet.Start(context.Background(), snet.Serial(stages...),
		snet.WithBoxWorkers(1), snet.WithStreamBatch(8))
	defer drainHandle(h)
	for i := 0; i < inflight; i++ {
		if err := h.Send(snet.NewRecord().SetTag("n", i)); err != nil {
			b.Fatal(err)
		}
	}
	// Warm laps prime every stream's slab and pool population; the forced
	// collection in between takes the sync.Pool clear a GC would otherwise
	// inflict mid-measurement (the measured loop is allocation-free, so no
	// further collection triggers).
	warmLap := func() {
		for i := 0; i < inflight; i++ {
			r, ok := <-h.Out()
			if !ok {
				b.Fatal("output closed during warmup")
			}
			if err := h.Send(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	warmLap()
	runtime.GC()
	warmLap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := <-h.Out()
		if !ok {
			b.Fatal("output closed")
		}
		if err := h.Send(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchRecordPlaneFused is the pipeline shape through a compiled plan at
// B=1: the fusion pass collapses all 32 taps into one single-goroutine
// segment, so each op's record moves through the executor's swap buffers
// instead of 32 stream hops — and must stay just as allocation-free as the
// stream plane it bypasses.  (With SNET_FUSE=0 the plan runs un-fused; the
// zero-alloc invariant holds either way.)
func benchRecordPlaneFused(b *testing.B) {
	const depth, inflight = 32, 64
	stages := make([]snet.Node, depth)
	for i := range stages {
		stages[i] = snet.Observe(fmt.Sprintf("tap%d", i), nil)
	}
	plan := snet.MustCompile(snet.Serial(stages...))
	h := plan.Start(context.Background(),
		snet.WithBoxWorkers(1), snet.WithStreamBatch(1))
	defer drainHandle(h)
	for i := 0; i < inflight; i++ {
		if err := h.Send(snet.NewRecord().SetTag("n", i)); err != nil {
			b.Fatal(err)
		}
	}
	warmLap := func() {
		for i := 0; i < inflight; i++ {
			r, ok := <-h.Out()
			if !ok {
				b.Fatal("output closed during warmup")
			}
			if err := h.Send(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	warmLap()
	runtime.GC()
	warmLap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := <-h.Out()
		if !ok {
			b.Fatal("output closed")
		}
		if err := h.Send(r); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchRecordPlaneRouting drives the E16 routing shape — a wide Parallel of
// per-branch filters — terminated by a sink box, so every pooled filter
// output is released inside the network and the arena runs as a closed
// loop: the filter acquires what the sink releases.  Inputs are a fixed
// caller-owned population resent round-robin (filters copy, never mutate).
func benchRecordPlaneRouting(b *testing.B) {
	const width, population = 16, 256
	branches := make([]snet.Node, width)
	for i := range branches {
		branches[i] = snet.MustFilter(fmt.Sprintf("{a,x%d} -> {a,x%d}", i, i))
	}
	sink := snet.NewBox("sink", snet.MustParseSignature("(a) -> (a)"),
		func([]any, *snet.Emitter) error { return nil })
	h := snet.Start(context.Background(),
		snet.Serial(snet.Parallel(branches...), sink),
		snet.WithBoxWorkers(1), snet.WithStreamBatch(8))
	defer drainHandle(h)
	inputs := make([]*snet.Record, population)
	for i := range inputs {
		inputs[i] = snet.NewRecord().SetField("a", i).
			SetField(fmt.Sprintf("x%d", i%width), i)
	}
	warmLap := func() { // warm the routing memos and the arena
		for _, r := range inputs {
			if err := h.Send(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	for lap := 0; lap < 4; lap++ {
		warmLap()
	}
	runtime.GC() // absorb the pool-clearing collection outside the window
	for lap := 0; lap < 16; lap++ {
		warmLap() // refill the in-flight arena population
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Send(inputs[i%population]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkRecordPlane — E21: the zero-allocation record plane in steady
// state.  CI runs the companion TestRecordPlaneZeroAlloc, which asserts
// 0 allocs/op on both shapes.
func BenchmarkRecordPlane(b *testing.B) {
	b.Run("pipeline", benchRecordPlanePipeline)
	b.Run("fused", benchRecordPlaneFused)
	b.Run("routing", benchRecordPlaneRouting)
}

// TestRecordPlaneZeroAlloc is the enforced form of the benchmark: the
// record plane must move records without allocating once the arenas are
// warm.  A regression here means a new per-record allocation crept into
// the transport, the routing tables, or the filter/arena loop.
func TestRecordPlaneZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	if raceEnabled {
		t.Skip("allocation counts include race-detector bookkeeping; run without -race")
	}
	for _, c := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"pipeline", benchRecordPlanePipeline},
		{"fused", benchRecordPlaneFused},
		{"routing", benchRecordPlaneRouting},
	} {
		res := testing.Benchmark(c.fn)
		if a := res.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op (%d B/op), want 0", c.name, a, res.AllocedBytesPerOp())
		}
	}
}
