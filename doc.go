// Package repro is a from-scratch Go reproduction of Grelck, Scholz &
// Shafarenko, "Coordinating Data Parallel SAC Programs with S-Net"
// (IPPS 2007): the S-Net stream-coordination runtime and language, the SaC
// data-parallel array substrate with a Core SaC interpreter, and the
// paper's sudoku case study with its three solver networks.
//
// Public entry points:
//
//   - snet         — the coordination runtime (records, boxes, combinators)
//   - snet/lang    — the textual S-Net language
//   - snet/service — networks served to concurrent clients (see cmd/snetd)
//   - sac          — arrays and with-loops
//   - sac/lang     — the Core SaC interpreter
//   - sudoku       — the case study
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
