//go:build race

package repro_test

// raceEnabled reports whether this binary was built with the race detector —
// allocation-count gates are meaningless under its instrumentation.
const raceEnabled = true
