package workloads

import (
	"context"
	"fmt"
	"testing"

	"repro/snet"
)

func TestWavefrontMatchesReference(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			seed := int64(7 * n)
			out, stats, err := snet.RunAll(context.Background(), WavefrontNet(n, seed),
				[]*snet.Record{WavefrontSeed()})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(out) != 1 {
				t.Fatalf("want 1 output record, got %d: %v", len(out), out)
			}
			got := out[0].MustField("result").(int)
			want := WavefrontReference(n, seed)
			if got != want {
				t.Fatalf("wavefront n=%d: got %d, want %d", n, got, want)
			}
			m := stats.Snapshot()
			if fired, interior := m["sync.wave_join.fired"], int64((n-1)*(n-1)); fired != interior {
				t.Errorf("sync.wave_join.fired = %d, want %d (one per interior cell)", fired, interior)
			}
			if starved := m["sync.wave_join.starved"]; starved != 0 {
				t.Errorf("sync.wave_join.starved = %d, want 0", starved)
			}
		})
	}
}

func TestDivConqMatchesReference(t *testing.T) {
	const jobs, n, leaf = 3, 64, 8
	seed := int64(42)
	out, stats, err := snet.RunAll(context.Background(), DivConqNet(n, leaf),
		DivConqJobs(jobs, n, seed),
		snet.WithMaxSplitWidth(DivConqSplitWidth(jobs, n, leaf)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out) != jobs {
		t.Fatalf("want %d output records, got %d", jobs, len(out))
	}
	seen := make(map[int]bool)
	for _, rec := range out {
		job := rec.MustTag("job")
		if seen[job] {
			t.Fatalf("duplicate output for job %d", job)
		}
		seen[job] = true
		got := rec.MustField("out").([]int)
		want := DivConqReference(DivConqInput(n, seed, job))
		if len(got) != len(want) {
			t.Fatalf("job %d: got %d elements, want %d", job, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("job %d: element %d = %d, want %d", job, i, got[i], want[i])
			}
		}
	}
	m := stats.Snapshot()
	if fired, merges := m["sync.dc_join.fired"], int64(jobs*(n/leaf-1)); fired != merges {
		t.Errorf("sync.dc_join.fired = %d, want %d (n/leaf-1 merges per job)", fired, merges)
	}
	if starved := m["sync.dc_join.starved"]; starved != 0 {
		t.Errorf("sync.dc_join.starved = %d, want 0", starved)
	}
}

func TestWebPipeMatchesReference(t *testing.T) {
	const c = 60
	in := make([]*snet.Record, c)
	for i := range in {
		in[i] = WebPipeRequest(i)
	}
	out, _, err := snet.RunAll(context.Background(), WebPipeNet(), in)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out) != c {
		t.Fatalf("want %d responses, got %d", c, len(out))
	}
	for _, rec := range out {
		id := rec.MustTag("id")
		wantResp, wantStatus := WebPipeReference(WebPipeURL(id))
		if got := rec.MustField("resp").(string); got != wantResp {
			t.Errorf("id %d: resp %q, want %q", id, got, wantResp)
		}
		if got := rec.MustTag("status"); got != wantStatus {
			t.Errorf("id %d: status %d, want %d", id, got, wantStatus)
		}
	}
}
