package workloads

import (
	"fmt"
	"sort"

	"repro/snet"
)

// The divide-and-conquer workload: recursive mergesort as a star-unfolded
// split-solve-combine tree — the CnC comparison's recursive-decomposition
// shape, and the stress case for split replica churn and the in-band replica
// close protocol under deep recursion.
//
// Segments are addressed by heap numbering: the root is node 1, the children
// of node t are 2t (left half) and 2t+1 (right half).  The divide box splits
// a segment per star stage until it reaches the leaf size and sorts it;
// sorted halves become {l,...}/{r,...} records keyed by a composite tag
// p = job·stride + parent, so sibling halves of the same job rendezvous in
// the synchrocell of their own split replica:
//
//	( divide || (([| {l,<p>,<job>}, {r,<p>,<job>} |] .. conquer) !! <p>)
//	) ** {<done>}
//
// Because n and leaf are powers of two, every leaf sits at the same depth,
// sibling halves are always produced in the same star stage, and each merge
// happens exactly one stage later — no synchrocell ever waits across stages.
// Each job emits a single {out, <job>, <done>} record carrying the sorted
// data; the star depth is 2·log2(n/leaf)+1.
//
// The composite p exceeds the runtime's default split-width fold (1<<20)
// once jobs·stride does, and folding must NOT collapse distinct keys (two
// different joins sharing a replica would corrupt both syncs) — run this net
// with WithMaxSplitWidth(DivConqSplitWidth(jobs, n, leaf)) or larger.

// DivConqElements returns the element count a run with the given jobs sorts
// — the workload-item count behind the E18 records/s figures.
func DivConqElements(jobs, n int) int { return jobs * n }

func requirePow2(name string, v int) {
	if v < 1 || v&(v-1) != 0 {
		panic(fmt.Sprintf("workloads: divconq %s must be a power of two, got %d", name, v))
	}
}

// divConqStride is the per-job key space: node ids run 1..2L-1 for L = n/leaf
// leaves, so a stride of 2L keeps p = job·stride + t collision-free.
func divConqStride(n, leaf int) int {
	requirePow2("n", n)
	requirePow2("leaf", leaf)
	if leaf > n {
		panic(fmt.Sprintf("workloads: divconq leaf %d exceeds n %d", leaf, n))
	}
	return 2 * (n / leaf)
}

// DivConqSplitWidth returns a WithMaxSplitWidth value large enough that the
// composite p tags of a (jobs, n, leaf) run are never modulo-folded.
func DivConqSplitWidth(jobs, n, leaf int) int {
	return (jobs + 1) * divConqStride(n, leaf)
}

// DivConqInput generates job j's unsorted data deterministically from seed.
func DivConqInput(n int, seed int64, job int) []int {
	seg := make([]int, n)
	for i := range seg {
		z := uint64(seed) + uint64(job)*0x632be59bd9b4e019 + uint64(i+1)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		seg[i] = int((z ^ (z >> 31)) % 1_000_000)
	}
	return seg
}

// DivConqJobs builds the input records for a run: one {seg, <t>=1, <job>=j}
// record per job.
func DivConqJobs(jobs, n int, seed int64) []*snet.Record {
	recs := make([]*snet.Record, jobs)
	for j := 0; j < jobs; j++ {
		recs[j] = snet.NewRecord().
			SetField("seg", DivConqInput(n, seed, j)).
			SetTag("t", 1).
			SetTag("job", j)
	}
	return recs
}

// DivConqReference returns the sorted copy the network's {out} record for
// the same input must reproduce.
func DivConqReference(seg []int) []int {
	sorted := append([]int(nil), seg...)
	sort.Ints(sorted)
	return sorted
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return append(append(out, a[i:]...), b[j:]...)
}

// emitDCHalf sends a solved segment of node t upward as its parent's left or
// right half (children 2m/2m+1 of node m: even t is the left half).
func emitDCHalf(out *snet.Emitter, seg []int, t, job, stride, lVar, rVar int) error {
	p := job*stride + t/2
	if t%2 == 0 {
		return out.Out(lVar, seg, p, job)
	}
	return out.Out(rVar, seg, p, job)
}

// DivConqBoxes returns the two boxes of the divide-and-conquer net keyed by
// their .snet declaration names (see examples/divconq/mergesort.snet).
// n and leaf must be powers of two with leaf <= n.
func DivConqBoxes(n, leaf int) map[string]snet.Node {
	stride := divConqStride(n, leaf)

	// divide splits a segment in half per stage until the leaf size, where
	// it sorts and sends the result upward (or straight out when the whole
	// job fits in one leaf).
	divide := snet.NewBox("divide",
		snet.MustParseSignature("(seg, <t>, <job>) -> (seg, <t>, <job>) | "+
			"(l, <p>, <job>) | (r, <p>, <job>) | (out, <job>, <done>)"),
		func(args []any, out *snet.Emitter) error {
			seg := args[0].([]int)
			t := args[1].(int)
			job := args[2].(int)
			if len(seg) <= leaf {
				sorted := append([]int(nil), seg...)
				sort.Ints(sorted)
				if t == 1 {
					return out.Out(4, sorted, job, 1)
				}
				return emitDCHalf(out, sorted, t, job, stride, 2, 3)
			}
			mid := len(seg) / 2
			if err := out.Out(1, seg[:mid:mid], 2*t, job); err != nil {
				return err
			}
			return out.Out(1, seg[mid:], 2*t+1, job)
		})

	// conquer merges the two sorted halves the synchrocell paired and climbs
	// one level; the root merge leaves the star.
	conquer := snet.NewBox("conquer",
		snet.MustParseSignature("(l, r, <p>, <job>) -> "+
			"(l, <p>, <job>) | (r, <p>, <job>) | (out, <job>, <done>)"),
		func(args []any, out *snet.Emitter) error {
			lseg := args[0].([]int)
			rseg := args[1].([]int)
			p := args[2].(int)
			job := args[3].(int)
			merged := mergeSorted(lseg, rseg)
			t := p % stride
			if t == 1 {
				return out.Out(3, merged, job, 1)
			}
			return emitDCHalf(out, merged, t, job, stride, 1, 2)
		})

	return map[string]snet.Node{"divide": divide, "conquer": conquer}
}

// DivConqNet builds the divide-and-conquer network with named star, split
// and sync nodes: "star.dc_tree.replicas" counts the unfolding depth,
// "split.dc_pairs.replicas"/".closed" the join replica churn, and
// "sync.dc_join.fired" the merges performed (n/leaf - 1 per job).
func DivConqNet(n, leaf int) snet.Node {
	b := DivConqBoxes(n, leaf)
	pairs := snet.NamedSplit("dc_pairs",
		snet.Serial(
			snet.NamedSync("dc_join",
				snet.MustParsePattern("{l, <p>, <job>}"),
				snet.MustParsePattern("{r, <p>, <job>}")),
			b["conquer"]),
		"p")
	stage := snet.Parallel(b["divide"], pairs)
	return snet.NamedStar("dc_tree", stage, snet.MustParsePattern("{<done>}"))
}
