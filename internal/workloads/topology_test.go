package workloads

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/snet"
)

var update = flag.Bool("update", false, "rewrite topology golden files")

// autoNamePat matches the runtime's anonymous node names ("kind#N"); the
// counter behind them is process-global, so goldens must be compared with
// the numbers normalized.
var autoNamePat = regexp.MustCompile(`#\d+`)

func workloadPlans(t *testing.T) map[string]snet.Node {
	t.Helper()
	return map[string]snet.Node{
		"wavefront": WavefrontNet(4, 1),
		"divconq":   DivConqNet(16, 4),
		"webpipe":   WebPipeNet(),
	}
}

// TestWorkloadTopologyGolden pins the typed graph Plan.Topology exports for
// each workload: the JSON must match the committed golden (modulo anonymous
// name counters) and survive an unmarshal/marshal round-trip.
func TestWorkloadTopologyGolden(t *testing.T) {
	for name, net := range workloadPlans(t) {
		name, net := name, net
		t.Run(name, func(t *testing.T) {
			plan, err := snet.Compile(net)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			raw, err := json.MarshalIndent(plan.Topology(), "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got := autoNamePat.ReplaceAll(raw, []byte("#N"))
			got = append(got, '\n')

			golden := filepath.Join("testdata", name+".topology.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("topology drifted from %s (re-run with -update if intended)\ngot:\n%s", golden, got)
			}

			// Round-trip: the exported JSON must decode back into a Topology
			// that re-encodes identically.
			var rt snet.Topology
			if err := json.Unmarshal(raw, &rt); err != nil {
				t.Fatalf("round-trip unmarshal: %v", err)
			}
			raw2, err := json.MarshalIndent(&rt, "", "  ")
			if err != nil {
				t.Fatalf("round-trip marshal: %v", err)
			}
			if !bytes.Equal(raw, raw2) {
				t.Errorf("topology JSON does not round-trip:\nfirst:\n%s\nsecond:\n%s", raw, raw2)
			}
		})
	}
}

// TestWorkloadTopologyNames asserts every sync/star/split node in the
// workload graphs carries an explicit (non-anonymous) name, so their stats
// keys are stable across runs.
func TestWorkloadTopologyNames(t *testing.T) {
	wantNames := map[string][]string{
		"wavefront": {"wave_front", "wave_cells", "wave_join"},
		"divconq":   {"dc_tree", "dc_pairs", "dc_join"},
		"webpipe":   nil, // plain pipeline: no replication or joins
	}
	for name, net := range workloadPlans(t) {
		name, net := name, net
		t.Run(name, func(t *testing.T) {
			plan, err := snet.Compile(net)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			found := map[string]string{}
			var walk func(n *snet.Topology)
			walk = func(n *snet.Topology) {
				switch n.Kind {
				case "sync", "star", "split":
					if autoNamePat.MatchString(n.Name) {
						t.Errorf("%s node at %s has anonymous name %q", n.Kind, n.Path, n.Name)
					}
					found[n.Name] = n.Kind
				}
				for _, c := range n.Children {
					walk(c)
				}
			}
			walk(plan.Topology())
			for _, want := range wantNames[name] {
				if _, ok := found[want]; !ok {
					t.Errorf("topology is missing named node %q (have %v)", want, found)
				}
			}
			if name == "webpipe" && len(found) != 0 {
				t.Errorf("webpipe should have no sync/star/split nodes, found %v", found)
			}
		})
	}
}
