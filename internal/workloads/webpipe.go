package workloads

import (
	"fmt"
	"strings"

	"repro/snet"
)

// The request/response workload: a web-shaped classify → handle → render
// pipeline, the session workload behind the snetd HTTP benchmarks (E19).
//
//	classify .. (api || page || asset) .. render
//
// classify routes a {url, <id>} request to one of three handlers by URL
// prefix; each handler produces a {body, <id>, <status>} record and render
// wraps it into the final {resp, <id>, <status>}.  All fields are strings
// and all tags ints, so the net runs unchanged over snetd's HTTP wire
// protocol (GenericCodec) — the E19 harness drives it through
// service.Handler with a 1000-goroutine concurrent client.

// WebPipeBoxes returns the five boxes of the webpipe net keyed by their
// .snet declaration names (see examples/webpipe/webpipe.snet).
func WebPipeBoxes() map[string]snet.Node {
	classify := snet.NewBox("classify",
		snet.MustParseSignature("(url, <id>) -> (api, <id>) | (page, <id>) | (asset, <id>)"),
		func(args []any, out *snet.Emitter) error {
			url := args[0].(string)
			id := args[1].(int)
			switch {
			case strings.HasPrefix(url, "/api/"):
				return out.Out(1, url, id)
			case strings.HasPrefix(url, "/static/"):
				return out.Out(3, url, id)
			default:
				return out.Out(2, url, id)
			}
		})

	api := snet.NewBox("api",
		snet.MustParseSignature("(api, <id>) -> (body, <id>, <status>)"),
		func(args []any, out *snet.Emitter) error {
			url := args[0].(string)
			id := args[1].(int)
			return out.Out(1, fmt.Sprintf("{\"path\":%q,\"ok\":true}", url), id, 200)
		})

	page := snet.NewBox("page",
		snet.MustParseSignature("(page, <id>) -> (body, <id>, <status>)"),
		func(args []any, out *snet.Emitter) error {
			url := args[0].(string)
			id := args[1].(int)
			if url == "/" || strings.HasSuffix(url, ".html") {
				return out.Out(1, "<html><body>"+url+"</body></html>", id, 200)
			}
			return out.Out(1, "<html><body>not found: "+url+"</body></html>", id, 404)
		})

	asset := snet.NewBox("asset",
		snet.MustParseSignature("(asset, <id>) -> (body, <id>, <status>)"),
		func(args []any, out *snet.Emitter) error {
			url := args[0].(string)
			id := args[1].(int)
			return out.Out(1, "bytes:"+url, id, 200)
		})

	render := snet.NewBox("render",
		snet.MustParseSignature("(body, <id>, <status>) -> (resp, <id>, <status>)"),
		func(args []any, out *snet.Emitter) error {
			body := args[0].(string)
			id := args[1].(int)
			status := args[2].(int)
			return out.Out(1, fmt.Sprintf("%d %s", status, body), id, status)
		})

	return map[string]snet.Node{
		"classify": classify, "api": api, "page": page, "asset": asset, "render": render,
	}
}

// WebPipeNet builds the request/response pipeline.
func WebPipeNet() snet.Node {
	b := WebPipeBoxes()
	return snet.Serial(b["classify"],
		snet.Serial(snet.Parallel(b["api"], b["page"], b["asset"]), b["render"]))
}

// webPipeURLs is the deterministic traffic mix the generators cycle through.
var webPipeURLs = []string{
	"/api/users",
	"/index.html",
	"/static/app.js",
	"/api/orders",
	"/missing/page",
	"/static/site.css",
}

// WebPipeURL returns request i's URL.
func WebPipeURL(i int) string { return webPipeURLs[i%len(webPipeURLs)] }

// WebPipeRequest builds the {url, <id>=i} input record for request i.
func WebPipeRequest(i int) *snet.Record {
	return snet.NewRecord().SetField("url", WebPipeURL(i)).SetTag("id", i)
}

// WebPipeReference computes the resp field and status tag the network must
// produce for a URL.
func WebPipeReference(url string) (string, int) {
	var body string
	status := 200
	switch {
	case strings.HasPrefix(url, "/api/"):
		body = fmt.Sprintf("{\"path\":%q,\"ok\":true}", url)
	case strings.HasPrefix(url, "/static/"):
		body = "bytes:" + url
	case url == "/" || strings.HasSuffix(url, ".html"):
		body = "<html><body>" + url + "</body></html>"
	default:
		body = "<html><body>not found: " + url + "</body></html>"
		status = 404
	}
	return fmt.Sprintf("%d %s", status, body), status
}
