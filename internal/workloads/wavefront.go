package workloads

import (
	"fmt"

	"repro/snet"
)

// The wavefront workload: an n×n dependency grid where cell (i,j) needs the
// results of (i-1,j) and (i,j-1) — the data-flow shape of Cholesky
// factorization, Smith-Waterman alignment and dynamic-programming grids, and
// the first CnC comparison workload of Zaichenkov et al.
//
// The recurrence is grid shortest-path:
//
//	v(0,0) = cost(0,0)
//	v(0,j) = v(0,j-1) + cost(0,j)          (top edge)
//	v(i,0) = v(i-1,0) + cost(i,0)          (left edge)
//	v(i,j) = min(v(i-1,j), v(i,j-1)) + cost(i,j)
//
// As a network, every value becomes a record addressed to the cell that
// consumes it, and the join of the two contributions of an interior cell is
// a synchrocell — one per cell, isolated inside tag-indexed parallel
// replication over the <cell> tag:
//
//	( corner || top || left ||
//	  (([| {up,...}, {left,...} |] .. cell) !! <cell>) ) ** {<done>}
//
// The serial replicator advances the wavefront: every emitted record targets
// a cell on the *next* anti-diagonal, so stage s of the star processes
// exactly diagonal s-1, both contributions of a cell always meet in the same
// stage's replica, and the unfolding depth is 2n-1.  The network emits a
// single {result, <done>} record carrying v(n-1,n-1).

// WavefrontCells returns the number of cell values an n×n wavefront run
// computes — the workload-item count behind the E17 records/s figures.
func WavefrontCells(n int) int { return n * n }

// wavefrontCost derives the deterministic cost matrix from the seed
// (splitmix64 over the cell index, folded to a small non-negative int).
func wavefrontCost(n int, seed int64) func(i, j int) int {
	return func(i, j int) int {
		z := uint64(seed) + uint64(i*n+j+1)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % 1000)
	}
}

// WavefrontReference computes v(n-1,n-1) sequentially — the value the
// network's {result} record must reproduce.
func WavefrontReference(n int, seed int64) int {
	cost := wavefrontCost(n, seed)
	prev := make([]int, n)
	row := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == 0 && j == 0:
				row[j] = cost(0, 0)
			case i == 0:
				row[j] = row[j-1] + cost(0, j)
			case j == 0:
				row[j] = prev[0] + cost(i, 0)
			default:
				up, left := prev[j], row[j-1]
				if left < up {
					up = left
				}
				row[j] = up + cost(i, j)
			}
		}
		prev, row = row, prev
	}
	return prev[n-1]
}

// WavefrontSeed returns the single input record that starts the wavefront:
// the {start} record consumed by the corner box.
func WavefrontSeed() *snet.Record {
	return snet.NewRecord().SetField("start", 1)
}

// WavefrontBoxes returns the four boxes of the wavefront net keyed by their
// .snet declaration names, for binding a lang.Registry (see
// examples/wavefront/wavefront.snet).  The grid size and cost matrix are
// captured by the closures — the coordination layer never sees them.
func WavefrontBoxes(n int, seed int64) map[string]snet.Node {
	if n < 2 {
		panic(fmt.Sprintf("workloads: wavefront needs n >= 2, got %d", n))
	}
	cost := wavefrontCost(n, seed)
	cellID := func(i, j int) int { return i*n + j }

	// corner computes v(0,0) and seeds both edge chains.
	corner := snet.NewBox("corner",
		snet.MustParseSignature("(start) -> (bleft, <col>) | (bup, <row>)"),
		func(args []any, out *snet.Emitter) error {
			v := cost(0, 0)
			if err := out.Out(1, v, 1); err != nil {
				return err
			}
			return out.Out(2, v, 1)
		})

	// top computes the top-edge cell (0,col): continues the edge chain
	// rightwards and feeds the interior cell below it.
	top := snet.NewBox("top",
		snet.MustParseSignature("(bleft, <col>) -> (bleft, <col>) | (up, <row>, <col>, <cell>)"),
		func(args []any, out *snet.Emitter) error {
			j := args[1].(int)
			v := args[0].(int) + cost(0, j)
			if j+1 < n {
				if err := out.Out(1, v, j+1); err != nil {
					return err
				}
			}
			return out.Out(2, v, 1, j, cellID(1, j))
		})

	// left computes the left-edge cell (row,0): continues the edge chain
	// downwards and feeds the interior cell to its right.
	left := snet.NewBox("left",
		snet.MustParseSignature("(bup, <row>) -> (bup, <row>) | (left, <row>, <col>, <cell>)"),
		func(args []any, out *snet.Emitter) error {
			i := args[1].(int)
			v := args[0].(int) + cost(i, 0)
			if i+1 < n {
				if err := out.Out(1, v, i+1); err != nil {
					return err
				}
			}
			return out.Out(2, v, i, 1, cellID(i, 1))
		})

	// cell computes an interior cell from the synchrocell's merged {up,left}
	// record and fans the value out to the next diagonal; the bottom-right
	// cell emits the result instead.
	cell := snet.NewBox("cell",
		snet.MustParseSignature("(up, left, <row>, <col>, <cell>) -> "+
			"(left, <row>, <col>, <cell>) | (up, <row>, <col>, <cell>) | (result, <done>)"),
		func(args []any, out *snet.Emitter) error {
			up, lf := args[0].(int), args[1].(int)
			i, j := args[2].(int), args[3].(int)
			v := up
			if lf < v {
				v = lf
			}
			v += cost(i, j)
			if i == n-1 && j == n-1 {
				return out.Out(3, v, 1)
			}
			if j+1 < n {
				if err := out.Out(1, v, i, j+1, cellID(i, j+1)); err != nil {
					return err
				}
			}
			if i+1 < n {
				return out.Out(2, v, i+1, j, cellID(i+1, j))
			}
			return nil
		})

	return map[string]snet.Node{"corner": corner, "top": top, "left": left, "cell": cell}
}

// WavefrontNet builds the wavefront network for an n×n grid (n >= 2) with
// named star/split/sync nodes: "star.wave_front.replicas" counts the
// anti-diagonal stages (2n-1), "split.wave_cells.replicas" the live interior
// cell replicas, and "sync.wave_join.fired" the joins performed (one per
// interior cell).
func WavefrontNet(n int, seed int64) snet.Node {
	b := WavefrontBoxes(n, seed)
	interior := snet.NamedSplit("wave_cells",
		snet.Serial(
			snet.NamedSync("wave_join",
				snet.MustParsePattern("{up, <row>, <col>, <cell>}"),
				snet.MustParsePattern("{left, <row>, <col>, <cell>}")),
			b["cell"]),
		"cell")
	stage := snet.Parallel(b["corner"], b["top"], b["left"], interior)
	return snet.NamedStar("wave_front", stage, snet.MustParsePattern("{<done>}"))
}
