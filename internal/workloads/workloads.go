// Package workloads holds the CnC-style benchmark workloads that stress the
// coordination runtime beyond the paper's sudoku case study: the workload
// shapes of the S-Net vs Intel Concurrent Collections comparison
// (Zaichenkov et al., arXiv:1305.7167) expressed as S-Net networks.
//
//   - Wavefront (wavefront.go): a Cholesky/Smith-Waterman-style dependency
//     grid — synchrocells join the {up}/{left} contributions of every
//     interior cell inside tag-indexed parallel replication, and serial
//     replication advances one anti-diagonal per stage.
//   - Divide-and-conquer (divconq.go): recursive mergesort — a star unfolds
//     the split tree, sibling halves rendezvous in synchrocells keyed by
//     their parent node, and merged segments climb back to the root.
//   - Request/response (webpipe.go): a web-shaped classify → handle → render
//     pipeline, the session workload behind the snetd HTTP benchmarks.
//
// Each workload exposes a programmatic net builder with *named* star, split
// and sync nodes (stable stats keys and topology names), the box
// constructors an snet/lang registry binds the corresponding .snet surface
// program against (see examples/wavefront, examples/divconq,
// examples/webpipe), an input generator, and a sequential reference the
// tests and experiments check results against.  internal/bench runs them as
// experiments E17–E19.
package workloads
