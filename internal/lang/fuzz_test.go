package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus for FuzzParse: the textual programs shipped
// with the repository (examples/dsl, the snetd testdata networks), plus
// grammar-corner snippets — filters, synchrocells, deterministic variants,
// nested nets — so the fuzzer starts from every production of the grammar.
var fuzzSeeds = []string{
	// cmd/snetd/testdata/countdown.snet
	`box inc (<n>) -> (<n>);
box dec (<n>) -> (<n>) | (<n>, <done>);
net countdown connect inc .. (dec ** {<done>});`,
	// examples/dsl: the paper's Fig. 2 network
	`box computeOpts (board) -> (board, opts);
box solveOneLevel (board, opts) -> (board, opts, <k>) | (board, <done>);

net fig2 connect
    computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>});`,
	// filters with tag arithmetic, guards, duplication
	`net throttle connect [{<k>} -> {<k>=<k>%4}];`,
	`net dup connect [{a} -> {a}; {a,<i>=0}];`,
	// synchrocell, deterministic variants, nested nets
	`box a (x) -> (y);
box b (y) -> (z);
net outer {
    net inner connect a | b;
} connect inner * {<done>} .. [| {p}, {q} |] ! <t>;`,
	// comments, signatures with many variants
	`// comment
box multi (a, <t>) -> (b) | (c, <d>) | ();
net m connect multi || multi;`,
	// degenerate inputs
	``,
	`;`,
	`net x connect`,
	`box (`,
	"net u connect \x00\xff",
}

// FuzzParse asserts the parser is total: any byte string either parses or
// returns an error — it must never panic, hang, or index out of range.
// Run with: go test -fuzz=FuzzParse ./internal/lang
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program without error")
		}
		if err != nil && !strings.Contains(err.Error(), ":") {
			// Errors must carry a source position ("line:col: ...").
			t.Fatalf("parse error without position: %v", err)
		}
	})
}

// The seed corpus itself must stay green as the grammar evolves: everything
// that should parse does, and the degenerate seeds fail with positioned
// errors rather than panics.
func TestFuzzSeedsParseOrError(t *testing.T) {
	for i, seed := range fuzzSeeds {
		prog, err := Parse(seed)
		if err == nil && prog == nil {
			t.Errorf("seed %d: nil program without error", i)
		}
		if err != nil && !strings.Contains(err.Error(), ":") {
			t.Errorf("seed %d: error without position: %v", i, err)
		}
	}
}
