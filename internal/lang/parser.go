package lang

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// Parse parses an S-Net program.
//
// Grammar (precedence from loosest to tightest: parallel, serial, postfix):
//
//	program  := (boxdecl | netdecl)*
//	boxdecl  := "box" IDENT "(" labels ")" "->" tuple ("|" tuple)* ";"
//	netdecl  := "net" IDENT [ "{" program "}" ] "connect" expr ";"
//	expr     := serial (("||" | "|") serial)*
//	serial   := postfix (".." postfix)*
//	postfix  := primary ( ("**"|"*") starpat | ("!!"|"!") TAG )*
//	starpat  := pattern | "(" pattern [("|"|"if") guard] ")"
//	primary  := IDENT | "(" expr ")" | filter | synccell
//	filter   := "[" pattern "->" outs "]"
//	synccell := "[|" pattern ("," pattern)+ "|]"
//	pattern  := "{" label* "}"
//
// Line comments (//) and block comments (/* */) are supported.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram(false)
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF) {
		return nil, p.errf("unexpected %v", p.peek().kind)
	}
	return prog, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok      { return p.toks[p.i] }
func (p *parser) take() tok      { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k kind) bool { return p.toks[p.i].kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.at(tIdent) && p.peek().text == kw
}

func (p *parser) accept(k kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k kind) (tok, error) {
	if !p.at(k) {
		return tok{}, p.errf("expected %v, found %v", k, p.peek().kind)
	}
	return p.take(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseProgram(nested bool) (*Program, error) {
	prog := &Program{}
	for {
		switch {
		case p.atKeyword("box"):
			bd, err := p.parseBoxDecl()
			if err != nil {
				return nil, err
			}
			prog.Boxes = append(prog.Boxes, bd)
		case p.atKeyword("net"):
			nd, err := p.parseNetDecl()
			if err != nil {
				return nil, err
			}
			prog.Nets = append(prog.Nets, nd)
		default:
			if nested || p.at(tEOF) || p.at(tRBrace) {
				return prog, nil
			}
			return nil, p.errf("expected 'box' or 'net', found %v", p.peek().kind)
		}
	}
}

func (p *parser) parseBoxDecl() (*BoxDecl, error) {
	pos := p.take().pos // "box"
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	in, err := p.parseLabelTuple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tArrow); err != nil {
		return nil, err
	}
	var outs [][]core.Label
	for {
		o, err := p.parseLabelTuple()
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
		if !p.accept(tPipe) {
			break
		}
	}
	p.accept(tSemi)
	return &BoxDecl{Name: name.text, Sig: &core.BoxSignature{In: in, Out: outs}, Pos: pos}, nil
}

func (p *parser) parseNetDecl() (*NetDecl, error) {
	pos := p.take().pos // "net"
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	nd := &NetDecl{Name: name.text, Pos: pos}
	if p.accept(tLBrace) {
		body, err := p.parseProgram(true)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		nd.Body = body
	}
	if !p.atKeyword("connect") {
		return nil, p.errf("expected 'connect'")
	}
	p.take()
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	nd.Expr = expr
	p.accept(tSemi)
	return nd, nil
}

func (p *parser) parseLabelTuple() ([]core.Label, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var out []core.Label
	if p.accept(tRParen) {
		return out, nil
	}
	for {
		l, err := p.parseLabel()
		if err != nil {
			return nil, err
		}
		out = append(out, l)
		if p.accept(tComma) {
			continue
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) parseLabel() (core.Label, error) {
	var l core.Label
	at := p.peek().pos
	switch p.peek().kind {
	case tIdent:
		l = core.Field(p.take().text)
	case tTag:
		l = core.Tag(p.take().text)
	default:
		return core.Label{}, p.errf("expected field or tag label, found %v", p.peek().kind)
	}
	// Mirror the core micro-parsers: the runtime's reserved namespace is not
	// available to surface programs (session multiplexing and the replica
	// close protocol depend on user code being unable to mention it).
	if core.IsReservedLabel(l.Name) {
		return core.Label{}, &Error{Pos: at, Msg: fmt.Sprintf(
			"label %s lies in the reserved %q namespace", l, core.ReservedTagPrefix)}
	}
	return l, nil
}

// --- network expressions ---

func (p *parser) parseExpr() (Expr, error) {
	a, err := p.parseSerial()
	if err != nil {
		return nil, err
	}
	for {
		var det bool
		switch {
		case p.at(tPipe2):
			det = false
		case p.at(tPipe):
			det = true
		default:
			return a, nil
		}
		pos := p.take().pos
		b, err := p.parseSerial()
		if err != nil {
			return nil, err
		}
		a = &ParExpr{A: a, B: b, Det: det, At: pos}
	}
}

func (p *parser) parseSerial() (Expr, error) {
	a, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.at(tDots) {
		pos := p.take().pos
		b, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		a = &SerialExpr{A: a, B: b, At: pos}
	}
	return a, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	a, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tStar2) || p.at(tStar):
			det := p.at(tStar)
			pos := p.take().pos
			pat, err := p.parseStarOperand()
			if err != nil {
				return nil, err
			}
			a = &StarExpr{A: a, Exit: pat, Det: det, At: pos}
		case p.at(tBang2) || p.at(tBang):
			det := p.at(tBang)
			pos := p.take().pos
			tag, err := p.expect(tTag)
			if err != nil {
				return nil, err
			}
			a = &SplitExpr{A: a, Tag: tag.text, Det: det, At: pos}
		default:
			return a, nil
		}
	}
}

// parseStarOperand parses the exit pattern of a serial replicator: either a
// bare pattern {<done>} or a parenthesised guarded pattern
// ({<level>} | <level> > 40) as the paper writes it.
func (p *parser) parseStarOperand() (core.Pattern, error) {
	if p.accept(tLParen) {
		pat, err := p.parseGuardedPattern()
		if err != nil {
			return core.Pattern{}, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return core.Pattern{}, err
		}
		return pat, nil
	}
	v, err := p.parseBracedVariant()
	if err != nil {
		return core.Pattern{}, err
	}
	return core.Pattern{Variant: v}, nil
}

func (p *parser) parseGuardedPattern() (core.Pattern, error) {
	v, err := p.parseBracedVariant()
	if err != nil {
		return core.Pattern{}, err
	}
	pat := core.Pattern{Variant: v}
	if p.accept(tPipe) || (p.atKeyword("if") && p.accept(tIdent)) {
		g, err := p.parseTagExpr()
		if err != nil {
			return core.Pattern{}, err
		}
		pat.Guard = g
	}
	return pat, nil
}

func (p *parser) parseBracedVariant() (core.Variant, error) {
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	v := core.Variant{}
	if p.accept(tRBrace) {
		return v, nil
	}
	for {
		l, err := p.parseLabel()
		if err != nil {
			return nil, err
		}
		v[l] = struct{}{}
		if p.accept(tComma) {
			continue
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return v, nil
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.at(tIdent):
		t := p.take()
		return &IdentExpr{Name: t.text, At: t.pos}, nil
	case p.at(tLParen):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tSyncOpen):
		return p.parseSync()
	case p.at(tLBrack):
		return p.parseFilter()
	}
	return nil, p.errf("expected box name, filter, synchrocell or '(', found %v", p.peek().kind)
}

func (p *parser) parseSync() (Expr, error) {
	pos := p.take().pos // [|
	var pats []core.Pattern
	for {
		pat, err := p.parseGuardedPattern()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		if p.accept(tComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tSyncClose); err != nil {
		return nil, err
	}
	if len(pats) < 2 {
		return nil, p.errf("synchrocell needs at least two patterns")
	}
	return &SyncExpr{Patterns: pats, At: pos}, nil
}

func (p *parser) parseFilter() (Expr, error) {
	pos := p.take().pos // [
	pat, err := p.parseGuardedPattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tArrow); err != nil {
		return nil, err
	}
	spec := &core.FilterSpec{Pattern: pat}
	for p.at(tLBrace) {
		items, err := p.parseFilterOutput(pat)
		if err != nil {
			return nil, err
		}
		spec.Outputs = append(spec.Outputs, items)
		if !p.accept(tSemi) {
			break
		}
	}
	if _, err := p.expect(tRBrack); err != nil {
		return nil, err
	}
	return &FilterExpr{Spec: spec, At: pos}, nil
}

func (p *parser) parseFilterOutput(pat core.Pattern) ([]core.FilterItem, error) {
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	items := []core.FilterItem{}
	if p.accept(tRBrace) {
		return items, nil
	}
	for {
		// Output items name labels the filter synthesizes; like parseLabel,
		// refuse the runtime's reserved namespace.
		if k := p.peek().kind; (k == tIdent || k == tTag) && core.IsReservedLabel(p.peek().text) {
			return nil, p.errf("label %q lies in the reserved %q namespace",
				p.peek().text, core.ReservedTagPrefix)
		}
		switch p.peek().kind {
		case tIdent:
			name := p.take().text
			if p.accept(tAssign) {
				src, err := p.expect(tIdent)
				if err != nil {
					return nil, err
				}
				if !pat.Variant.Has(core.Field(src.text)) {
					return nil, p.errf("field %q not in filter pattern", src.text)
				}
				items = append(items, core.FilterItem{Name: name, Src: src.text})
			} else {
				if !pat.Variant.Has(core.Field(name)) {
					return nil, p.errf("field %q not in filter pattern", name)
				}
				items = append(items, core.FilterItem{Name: name, Src: name})
			}
		case tTag:
			name := p.take().text
			if p.accept(tAssign) {
				e, err := p.parseTagExpr()
				if err != nil {
					return nil, err
				}
				for _, ref := range e.TagRefs(nil) {
					if !pat.Variant.Has(core.Tag(ref)) {
						return nil, p.errf("tag <%s> used in expression but not in filter pattern", ref)
					}
				}
				items = append(items, core.FilterItem{Name: name, IsTag: true, Expr: e})
			} else {
				items = append(items, core.FilterItem{Name: name, IsTag: true})
			}
		default:
			return nil, p.errf("expected filter item, found %v", p.peek().kind)
		}
		if p.accept(tComma) {
			continue
		}
		if _, err := p.expect(tRBrace); err != nil {
			return nil, err
		}
		return items, nil
	}
}

// --- tag expressions (same grammar as core.ParseTagExpr) ---

func (p *parser) parseTagExpr() (core.TagExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (core.TagExpr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tPipe2) {
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = core.TagBinary("||", x, y)
	}
	return x, nil
}

func (p *parser) parseAnd() (core.TagExpr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tAnd2) {
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = core.TagBinary("&&", x, y)
	}
	return x, nil
}

var cmpOps = map[kind]string{
	tEq: "==", tNeq: "!=", tLt: "<", tLe: "<=", tGt: ">", tGe: ">=",
}

func (p *parser) parseCmp() (core.TagExpr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpOps[p.peek().kind]
		if !ok {
			return x, nil
		}
		p.take()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = core.TagBinary(op, x, y)
	}
}

func (p *parser) parseAdd() (core.TagExpr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tPlus:
			op = "+"
		case tMinus:
			op = "-"
		default:
			return x, nil
		}
		p.take()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = core.TagBinary(op, x, y)
	}
}

func (p *parser) parseMul() (core.TagExpr, error) {
	x, err := p.parseUnaryTag()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tStar:
			op = "*"
		case tSlash:
			op = "/"
		case tPercent:
			op = "%"
		default:
			return x, nil
		}
		p.take()
		y, err := p.parseUnaryTag()
		if err != nil {
			return nil, err
		}
		x = core.TagBinary(op, x, y)
	}
}

func (p *parser) parseUnaryTag() (core.TagExpr, error) {
	switch p.peek().kind {
	case tMinus:
		p.take()
		x, err := p.parseUnaryTag()
		if err != nil {
			return nil, err
		}
		return core.TagUnary('-', x), nil
	case tBang:
		p.take()
		x, err := p.parseUnaryTag()
		if err != nil {
			return nil, err
		}
		return core.TagUnary('!', x), nil
	case tInt:
		n, _ := strconv.Atoi(p.take().text)
		return core.TagLit(n), nil
	case tTag:
		return core.TagVar(p.take().text), nil
	case tLParen:
		p.take()
		x, err := p.parseTagExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected integer, tag or '(' in tag expression, found %v", p.peek().kind)
}
