// Package lang implements the textual S-Net surface language of the paper:
// box declarations with signatures, net definitions, and network expressions
// over the eight combinators, filters, guarded patterns and synchrocells.
//
//	box computeOpts (board) -> (board, opts);
//	box solveOneLevel (board, opts) -> (board, opts) | (board, <done>);
//
//	net fig1 connect computeOpts .. (solveOneLevel ** {<done>});
//
// Parse produces an AST; Build instantiates it into an internal/core network
// against a registry binding box names to Go implementations (the role the
// SaC compiler plays in the paper).
package lang

import (
	"fmt"
	"unicode"
)

// Pos is a source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a parse or build failure with position information.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("snet: %s: %s", e.Pos, e.Msg) }

type kind int

const (
	tEOF kind = iota
	tIdent
	tInt
	tTag    // <ident>
	tLBrace // {
	tRBrace
	tLParen
	tRParen
	tLBrack // [
	tRBrack
	tSyncOpen  // [|
	tSyncClose // |]
	tComma
	tSemi
	tAssign
	tArrow // ->
	tDots  // ..
	tPipe  // |
	tPipe2 // ||
	tStar  // *
	tStar2 // **
	tBang  // !
	tBang2 // !!
	tPlus
	tMinus
	tSlash
	tPercent
	tEq
	tNeq
	tLt
	tLe
	tGt
	tGe
	tAnd2
)

var kindNames = map[kind]string{
	tEOF: "end of input", tIdent: "identifier", tInt: "integer", tTag: "tag",
	tLBrace: "'{'", tRBrace: "'}'", tLParen: "'('", tRParen: "')'",
	tLBrack: "'['", tRBrack: "']'", tSyncOpen: "'[|'", tSyncClose: "'|]'",
	tComma: "','", tSemi: "';'", tAssign: "'='", tArrow: "'->'",
	tDots: "'..'", tPipe: "'|'", tPipe2: "'||'", tStar: "'*'", tStar2: "'**'",
	tBang: "'!'", tBang2: "'!!'", tPlus: "'+'", tMinus: "'-'",
	tSlash: "'/'", tPercent: "'%'", tEq: "'=='", tNeq: "'!='",
	tLt: "'<'", tLe: "'<='", tGt: "'>'", tGe: "'>='", tAnd2: "'&&'",
}

func (k kind) String() string { return kindNames[k] }

type tok struct {
	kind kind
	text string
	pos  Pos
}

type lexer struct {
	src  []rune
	i    int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() rune {
	if l.i >= len(l.src) {
		return 0
	}
	return l.src[l.i]
}

func (l *lexer) at(off int) rune {
	if l.i+off >= len(l.src) {
		return 0
	}
	return l.src[l.i+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.i]
	l.i++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.i < len(l.src) {
		r := l.peekRune()
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			l.advance()
		case r == '/' && l.at(1) == '/':
			for l.i < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		case r == '/' && l.at(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.i >= len(l.src) {
					return l.errf(start, "unterminated block comment")
				}
				if l.peekRune() == '*' && l.at(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenises the whole input.
func lexAll(src string) ([]tok, error) {
	l := newLexer(src)
	var toks []tok
	for {
		if err := l.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		pos := l.pos()
		if l.i >= len(l.src) {
			toks = append(toks, tok{kind: tEOF, pos: pos})
			return toks, nil
		}
		r := l.peekRune()
		switch {
		case isIdentStart(r):
			start := l.i
			for l.i < len(l.src) && isIdentPart(l.peekRune()) {
				l.advance()
			}
			toks = append(toks, tok{kind: tIdent, text: string(l.src[start:l.i]), pos: pos})
			continue
		case unicode.IsDigit(r):
			start := l.i
			for l.i < len(l.src) && unicode.IsDigit(l.peekRune()) {
				l.advance()
			}
			toks = append(toks, tok{kind: tInt, text: string(l.src[start:l.i]), pos: pos})
			continue
		}
		two := func(k kind) {
			l.advance()
			l.advance()
			toks = append(toks, tok{kind: k, pos: pos})
		}
		one := func(k kind) {
			l.advance()
			toks = append(toks, tok{kind: k, pos: pos})
		}
		switch r {
		case '{':
			one(tLBrace)
		case '}':
			one(tRBrace)
		case '(':
			one(tLParen)
		case ')':
			one(tRParen)
		case '[':
			if l.at(1) == '|' {
				two(tSyncOpen)
			} else {
				one(tLBrack)
			}
		case ']':
			one(tRBrack)
		case ',':
			one(tComma)
		case ';':
			one(tSemi)
		case '+':
			one(tPlus)
		case '/':
			one(tSlash)
		case '%':
			one(tPercent)
		case '.':
			if l.at(1) == '.' {
				two(tDots)
			} else {
				return nil, l.errf(pos, "unexpected '.'")
			}
		case '-':
			if l.at(1) == '>' {
				two(tArrow)
			} else {
				one(tMinus)
			}
		case '*':
			if l.at(1) == '*' {
				two(tStar2)
			} else {
				one(tStar)
			}
		case '!':
			switch l.at(1) {
			case '!':
				two(tBang2)
			case '=':
				two(tNeq)
			default:
				one(tBang)
			}
		case '|':
			switch l.at(1) {
			case '|':
				two(tPipe2)
			case ']':
				two(tSyncClose)
			default:
				one(tPipe)
			}
		case '&':
			if l.at(1) == '&' {
				two(tAnd2)
			} else {
				return nil, l.errf(pos, "unexpected '&'")
			}
		case '=':
			if l.at(1) == '=' {
				two(tEq)
			} else {
				one(tAssign)
			}
		case '>':
			if l.at(1) == '=' {
				two(tGe)
			} else {
				one(tGt)
			}
		case '<':
			// Atomic tag form <ident>.
			if isIdentStart(l.at(1)) {
				j := l.i + 1
				for j < len(l.src) && isIdentPart(l.src[j]) {
					j++
				}
				if j < len(l.src) && l.src[j] == '>' {
					name := string(l.src[l.i+1 : j])
					for l.i <= j {
						l.advance()
					}
					toks = append(toks, tok{kind: tTag, text: name, pos: pos})
					continue
				}
			}
			if l.at(1) == '=' {
				two(tLe)
			} else {
				one(tLt)
			}
		default:
			return nil, l.errf(pos, "unexpected character %q", string(r))
		}
	}
}
