package lang

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll("box net .. | || * ** ! !! <k> [| |] [ ] { } ( ) -> = == != <= >= && % 42 // c\n/* b */ x")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []kind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []kind{tIdent, tIdent, tDots, tPipe, tPipe2, tStar, tStar2, tBang, tBang2,
		tTag, tSyncOpen, tSyncClose, tLBrack, tRBrack, tLBrace, tRBrace, tLParen, tRParen,
		tArrow, tAssign, tEq, tNeq, tLe, tGe, tAnd2, tPercent, tInt, tIdent, tEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerTagVsComparison(t *testing.T) {
	toks, err := lexAll("<level> > 40 && <k> <= 3")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tTag || toks[0].text != "level" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].kind != tGt || toks[4].kind != tTag || toks[5].kind != tLe {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "&", ".", "/* unterminated"} {
		if _, err := lexAll(src); err == nil {
			t.Fatalf("%q: want lex error", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lexAll("box\n  foo")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos.Line != 1 || toks[1].pos.Line != 2 || toks[1].pos.Col != 3 {
		t.Fatalf("positions: %v %v", toks[0].pos, toks[1].pos)
	}
}

func TestParseBoxDecl(t *testing.T) {
	prog, err := Parse("box foo (a,<b>) -> (c) | (c,d,<e>);")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Boxes) != 1 {
		t.Fatalf("boxes = %d", len(prog.Boxes))
	}
	bd := prog.Boxes[0]
	if bd.Name != "foo" || len(bd.Sig.In) != 2 || len(bd.Sig.Out) != 2 {
		t.Fatalf("decl = %+v", bd)
	}
}

func TestParseNetFig1(t *testing.T) {
	src := `
		box computeOpts (board) -> (board, opts);
		box solveOneLevel (board, opts) -> (board, opts) | (board, <done>);
		net fig1 connect computeOpts .. (solveOneLevel ** {<done>});
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Nets) != 1 || prog.Nets[0].Name != "fig1" {
		t.Fatalf("nets = %+v", prog.Nets)
	}
	s := prog.Nets[0].Expr.String()
	if !strings.Contains(s, "**") || !strings.Contains(s, "{<done>}") {
		t.Fatalf("expr = %q", s)
	}
}

func TestParsePrecedenceSerialOverParallel(t *testing.T) {
	prog := MustParse(`
		box a (x) -> (x); box b (x) -> (x); box c (x) -> (x); box d (x) -> (x);
		net n connect a .. b || c .. d;
	`)
	par, ok := prog.Nets[0].Expr.(*ParExpr)
	if !ok {
		t.Fatalf("top is %T, want ParExpr", prog.Nets[0].Expr)
	}
	if _, ok := par.A.(*SerialExpr); !ok {
		t.Fatal("left of || must be the serial chain")
	}
}

func TestParsePostfixBinding(t *testing.T) {
	prog := MustParse(`
		box a (x) -> (x);
		net n connect a ** {<done>} !! <k>;
	`)
	// postfix chains left to right: (a ** p) !! <k>
	sp, ok := prog.Nets[0].Expr.(*SplitExpr)
	if !ok {
		t.Fatalf("top = %T", prog.Nets[0].Expr)
	}
	if _, ok := sp.A.(*StarExpr); !ok {
		t.Fatal("star must bind before split")
	}
	if sp.Det {
		t.Fatal("!! is the nondeterministic split")
	}
}

func TestParseDetVariants(t *testing.T) {
	prog := MustParse(`
		box a (x) -> (x); box b (x) -> (x);
		net n1 connect a * {<done>};
		net n2 connect a ! <k>;
		net n3 connect a | b;
	`)
	if !prog.Nets[0].Expr.(*StarExpr).Det {
		t.Fatal("* must be deterministic")
	}
	if !prog.Nets[1].Expr.(*SplitExpr).Det {
		t.Fatal("! must be deterministic")
	}
	if !prog.Nets[2].Expr.(*ParExpr).Det {
		t.Fatal("| must be deterministic")
	}
}

func TestParseGuardedStarOperand(t *testing.T) {
	prog := MustParse(`
		box a (x) -> (x);
		net n connect a ** ({<level>} | <level> > 40);
	`)
	star := prog.Nets[0].Expr.(*StarExpr)
	if star.Exit.Guard == nil {
		t.Fatal("guard lost")
	}
	if !star.Exit.Matches(core.NewRecord().SetTag("level", 41)) {
		t.Fatal("guard semantics wrong")
	}
	if star.Exit.Matches(core.NewRecord().SetTag("level", 40)) {
		t.Fatal("guard semantics wrong at boundary")
	}
}

func TestParseFilterExpr(t *testing.T) {
	prog := MustParse(`
		net n connect [{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}];
	`)
	f := prog.Nets[0].Expr.(*FilterExpr)
	if len(f.Spec.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(f.Spec.Outputs))
	}
}

func TestParseSyncExpr(t *testing.T) {
	prog := MustParse(`net n connect [| {a}, {b,<t>} |];`)
	sy := prog.Nets[0].Expr.(*SyncExpr)
	if len(sy.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(sy.Patterns))
	}
}

func TestParseNetBodyScoping(t *testing.T) {
	prog := MustParse(`
		box outer (x) -> (x);
		net n {
			box inner (x) -> (x);
		} connect outer .. inner;
	`)
	if prog.Nets[0].Body == nil || len(prog.Nets[0].Body.Boxes) != 1 {
		t.Fatal("body not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"box",                                    // missing name
		"box f (a) -> ",                          // missing output
		"net n connect ;",                        // empty expr
		"net n foo;",                             // missing connect
		"net n connect a ** ;",                   // missing pattern
		"net n connect a !! k;",                  // tag must be <k>
		"xyz",                                    // not a declaration
		"net n connect (a;",                      // unclosed paren
		"net n connect [ {a} -> {b} ];",          // filter item not in pattern
		"box f (a) -> (b) extra net n connect f", // garbage
		"net n connect [| {a} |];",               // sync needs two patterns
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q: want parse error", src)
		} else if _, ok := err.(*Error); !ok {
			t.Fatalf("%q: error type %T", src, err)
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := `
		box computeOpts (board) -> (board, opts);
		box solveOneLevel (board, opts) -> (board, opts, <k>) | (board, <done>);
		net fig2 connect computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>});
	`
	p1 := MustParse(src)
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\nrendered:\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Fatalf("round-trip not stable:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}
