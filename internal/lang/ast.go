package lang

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Program is a parsed S-Net source: box declarations and net definitions.
type Program struct {
	Boxes []*BoxDecl
	Nets  []*NetDecl
}

// BoxDecl is `box name (in) -> (out) | ... ;`.
type BoxDecl struct {
	Name string
	Sig  *core.BoxSignature
	Pos  Pos
}

// NetDecl is `net name [{ body }] connect expr ;`.  Declarations in the body
// are scoped to the net.
type NetDecl struct {
	Name string
	Body *Program // nil when there is no body
	Expr Expr
	Pos  Pos
}

// Expr is a network expression.
type Expr interface {
	fmt.Stringer
	pos() Pos
}

// IdentExpr references a declared box or net by name.
type IdentExpr struct {
	Name string
	At   Pos
}

// SerialExpr is A .. B.
type SerialExpr struct {
	A, B Expr
	At   Pos
}

// ParExpr is A || B (Det false) or A | B (Det true).
type ParExpr struct {
	A, B Expr
	Det  bool
	At   Pos
}

// StarExpr is A ** pattern (Det false) or A * pattern (Det true).
type StarExpr struct {
	A    Expr
	Exit core.Pattern
	Det  bool
	At   Pos
}

// SplitExpr is A !! <tag> (Det false) or A ! <tag> (Det true).
type SplitExpr struct {
	A   Expr
	Tag string
	Det bool
	At  Pos
}

// FilterExpr is [pattern -> rec; rec; ...].
type FilterExpr struct {
	Spec *core.FilterSpec
	At   Pos
}

// SyncExpr is [| pattern, pattern, ... |].
type SyncExpr struct {
	Patterns []core.Pattern
	At       Pos
}

func (e *IdentExpr) pos() Pos  { return e.At }
func (e *SerialExpr) pos() Pos { return e.At }
func (e *ParExpr) pos() Pos    { return e.At }
func (e *StarExpr) pos() Pos   { return e.At }
func (e *SplitExpr) pos() Pos  { return e.At }
func (e *FilterExpr) pos() Pos { return e.At }
func (e *SyncExpr) pos() Pos   { return e.At }

func (e *IdentExpr) String() string { return e.Name }
func (e *SerialExpr) String() string {
	return "(" + e.A.String() + " .. " + e.B.String() + ")"
}
func (e *ParExpr) String() string {
	op := " || "
	if e.Det {
		op = " | "
	}
	return "(" + e.A.String() + op + e.B.String() + ")"
}
func (e *StarExpr) String() string {
	op := " ** "
	if e.Det {
		op = " * "
	}
	s := e.Exit.String()
	if e.Exit.Guard != nil {
		s = "(" + s + ")"
	}
	return "(" + e.A.String() + op + s + ")"
}
func (e *SplitExpr) String() string {
	op := " !! "
	if e.Det {
		op = " ! "
	}
	return "(" + e.A.String() + op + "<" + e.Tag + ">)"
}
func (e *FilterExpr) String() string { return e.Spec.String() }
func (e *SyncExpr) String() string {
	parts := make([]string, len(e.Patterns))
	for i, p := range e.Patterns {
		parts[i] = p.String()
	}
	return "[| " + strings.Join(parts, ", ") + " |]"
}

// String renders the program in re-parseable form.
func (p *Program) String() string {
	var b strings.Builder
	for _, bd := range p.Boxes {
		fmt.Fprintf(&b, "box %s %s;\n", bd.Name, bd.Sig)
	}
	for _, nd := range p.Nets {
		fmt.Fprintf(&b, "net %s", nd.Name)
		if nd.Body != nil {
			b.WriteString(" {\n")
			body := nd.Body.String()
			for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
				b.WriteString("  " + line + "\n")
			}
			b.WriteString("}")
		}
		fmt.Fprintf(&b, " connect %s;\n", nd.Expr)
	}
	return b.String()
}
