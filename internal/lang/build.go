package lang

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Registry binds box names to implementations — the role the SaC compiler
// plays in the paper's two-layer model.  A name may be bound to a plain
// BoxFunc (used together with the declared signature) or to a pre-built
// node (which then ignores the declaration's signature at runtime but is
// still checked against references).
type Registry struct {
	funcs map[string]core.BoxFunc
	nodes map[string]core.Node
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: map[string]core.BoxFunc{}, nodes: map[string]core.Node{}}
}

// RegisterFunc binds a box name to a function; the signature comes from the
// program's box declaration.
func (r *Registry) RegisterFunc(name string, fn core.BoxFunc) *Registry {
	r.funcs[name] = fn
	return r
}

// RegisterNode binds a name to a pre-built node (a box or a whole subnet).
func (r *Registry) RegisterNode(name string, n core.Node) *Registry {
	r.nodes[name] = n
	return r
}

// scope is the name environment during building.
type scope struct {
	parent *scope
	names  map[string]core.Node
}

func (s *scope) lookup(name string) (core.Node, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if n, ok := cur.names[name]; ok {
			return n, true
		}
	}
	return nil, false
}

// Built is the result of BuildNet: the instantiated network plus the source
// position of every node the builder constructed, so compile diagnostics
// (core.TypeError.Subject) can be mapped back to the .snet source.
type Built struct {
	Node      core.Node
	Positions map[core.Node]Pos
}

// Build instantiates the named net of the program into a runnable network.
// Box declarations take their implementations from the registry.  Nets may
// reference previously declared boxes and nets; a net's body declarations
// are local to it.
func Build(prog *Program, netName string, reg *Registry) (core.Node, error) {
	b, err := BuildNet(prog, netName, reg)
	if err != nil {
		return nil, err
	}
	return b.Node, nil
}

// BuildNet is Build keeping the node → source-position index.
func BuildNet(prog *Program, netName string, reg *Registry) (*Built, error) {
	b := &Built{Positions: map[core.Node]Pos{}}
	root := &scope{names: map[string]core.Node{}}
	if err := populate(prog, root, reg, b.Positions); err != nil {
		return nil, err
	}
	n, ok := root.lookup(netName)
	if !ok {
		return nil, fmt.Errorf("snet: no net or box named %q", netName)
	}
	b.Node = n
	return b, nil
}

// BuildText parses and builds in one step.
func BuildText(src, netName string, reg *Registry) (core.Node, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(prog, netName, reg)
}

// CompileNet builds the named net and compiles it (core.Compile), mapping
// every TypeError back to its .snet source position.  The returned plan is
// non-nil whenever the build succeeded, even if compilation found type
// errors (mirroring core.Compile's contract).
func CompileNet(prog *Program, netName string, reg *Registry, opts ...core.CompileOption) (*core.Plan, error) {
	b, err := BuildNet(prog, netName, reg)
	if err != nil {
		return nil, err
	}
	plan, cerr := core.Compile(b.Node, opts...)
	if cerr != nil {
		var ce *core.CompileError
		if errors.As(cerr, &ce) {
			for _, te := range ce.Errors {
				if pos, ok := b.Positions[te.Subject()]; ok {
					te.Pos = pos.String()
				}
			}
		}
	}
	return plan, cerr
}

// populate declares the program's boxes and nets into the scope, recording
// every constructed node's source position in pos.
func populate(prog *Program, sc *scope, reg *Registry, pos map[core.Node]Pos) error {
	for _, bd := range prog.Boxes {
		if _, dup := sc.names[bd.Name]; dup {
			return &Error{Pos: bd.Pos, Msg: fmt.Sprintf("duplicate declaration %q", bd.Name)}
		}
		if n, ok := reg.nodes[bd.Name]; ok {
			sc.names[bd.Name] = n
			pos[n] = bd.Pos
			continue
		}
		fn, ok := reg.funcs[bd.Name]
		if !ok {
			return &Error{Pos: bd.Pos,
				Msg: fmt.Sprintf("box %q has no implementation in the registry", bd.Name)}
		}
		n := core.NewBox(bd.Name, bd.Sig, fn)
		sc.names[bd.Name] = n
		pos[n] = bd.Pos
	}
	for _, nd := range prog.Nets {
		if _, dup := sc.names[nd.Name]; dup {
			return &Error{Pos: nd.Pos, Msg: fmt.Sprintf("duplicate declaration %q", nd.Name)}
		}
		netScope := sc
		if nd.Body != nil {
			netScope = &scope{parent: sc, names: map[string]core.Node{}}
			if err := populate(nd.Body, netScope, reg, pos); err != nil {
				return err
			}
		}
		node, err := buildExpr(nd.Expr, netScope, nd.Name, pos)
		if err != nil {
			return err
		}
		sc.names[nd.Name] = node
		if _, ok := pos[node]; !ok {
			pos[node] = nd.Pos
		}
	}
	return nil
}

// buildExpr lowers an expression to a core network.  netName scopes the
// stats labels of anonymous combinators so experiment counters are
// addressable (e.g. "star.fig1.solve_loop..."); pos records each
// constructed node's source position.
func buildExpr(e Expr, sc *scope, netName string, pos map[core.Node]Pos) (core.Node, error) {
	record := func(n core.Node) core.Node {
		if _, ok := pos[n]; !ok {
			pos[n] = e.pos()
		}
		return n
	}
	switch e := e.(type) {
	case *IdentExpr:
		n, ok := sc.lookup(e.Name)
		if !ok {
			return nil, &Error{Pos: e.At, Msg: fmt.Sprintf("undefined name %q", e.Name)}
		}
		return n, nil
	case *SerialExpr:
		a, err := buildExpr(e.A, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		b, err := buildExpr(e.B, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		return record(core.Serial(a, b)), nil
	case *ParExpr:
		a, err := buildExpr(e.A, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		b, err := buildExpr(e.B, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		if e.Det {
			return record(core.ParallelDet(a, b)), nil
		}
		return record(core.Parallel(a, b)), nil
	case *StarExpr:
		a, err := buildExpr(e.A, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		name := netName + ".star"
		if e.Det {
			return record(core.NamedStarDet(name, a, e.Exit)), nil
		}
		return record(core.NamedStar(name, a, e.Exit)), nil
	case *SplitExpr:
		a, err := buildExpr(e.A, sc, netName, pos)
		if err != nil {
			return nil, err
		}
		name := netName + ".split"
		if e.Det {
			return record(core.NamedSplitDet(name, a, e.Tag)), nil
		}
		return record(core.NamedSplit(name, a, e.Tag)), nil
	case *FilterExpr:
		return record(core.NewFilter(e.Spec)), nil
	case *SyncExpr:
		return record(core.Sync(e.Patterns...)), nil
	}
	return nil, fmt.Errorf("snet: unknown expression %T", e)
}
