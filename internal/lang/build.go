package lang

import (
	"fmt"

	"repro/internal/core"
)

// Registry binds box names to implementations — the role the SaC compiler
// plays in the paper's two-layer model.  A name may be bound to a plain
// BoxFunc (used together with the declared signature) or to a pre-built
// node (which then ignores the declaration's signature at runtime but is
// still checked against references).
type Registry struct {
	funcs map[string]core.BoxFunc
	nodes map[string]core.Node
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: map[string]core.BoxFunc{}, nodes: map[string]core.Node{}}
}

// RegisterFunc binds a box name to a function; the signature comes from the
// program's box declaration.
func (r *Registry) RegisterFunc(name string, fn core.BoxFunc) *Registry {
	r.funcs[name] = fn
	return r
}

// RegisterNode binds a name to a pre-built node (a box or a whole subnet).
func (r *Registry) RegisterNode(name string, n core.Node) *Registry {
	r.nodes[name] = n
	return r
}

// scope is the name environment during building.
type scope struct {
	parent *scope
	names  map[string]core.Node
}

func (s *scope) lookup(name string) (core.Node, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if n, ok := cur.names[name]; ok {
			return n, true
		}
	}
	return nil, false
}

// Build instantiates the named net of the program into a runnable network.
// Box declarations take their implementations from the registry.  Nets may
// reference previously declared boxes and nets; a net's body declarations
// are local to it.
func Build(prog *Program, netName string, reg *Registry) (core.Node, error) {
	root := &scope{names: map[string]core.Node{}}
	if err := populate(prog, root, reg); err != nil {
		return nil, err
	}
	n, ok := root.lookup(netName)
	if !ok {
		return nil, fmt.Errorf("snet: no net or box named %q", netName)
	}
	return n, nil
}

// BuildText parses and builds in one step.
func BuildText(src, netName string, reg *Registry) (core.Node, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(prog, netName, reg)
}

// populate declares the program's boxes and nets into the scope.
func populate(prog *Program, sc *scope, reg *Registry) error {
	for _, bd := range prog.Boxes {
		if _, dup := sc.names[bd.Name]; dup {
			return &Error{Pos: bd.Pos, Msg: fmt.Sprintf("duplicate declaration %q", bd.Name)}
		}
		if n, ok := reg.nodes[bd.Name]; ok {
			sc.names[bd.Name] = n
			continue
		}
		fn, ok := reg.funcs[bd.Name]
		if !ok {
			return &Error{Pos: bd.Pos,
				Msg: fmt.Sprintf("box %q has no implementation in the registry", bd.Name)}
		}
		sc.names[bd.Name] = core.NewBox(bd.Name, bd.Sig, fn)
	}
	for _, nd := range prog.Nets {
		if _, dup := sc.names[nd.Name]; dup {
			return &Error{Pos: nd.Pos, Msg: fmt.Sprintf("duplicate declaration %q", nd.Name)}
		}
		netScope := sc
		if nd.Body != nil {
			netScope = &scope{parent: sc, names: map[string]core.Node{}}
			if err := populate(nd.Body, netScope, reg); err != nil {
				return err
			}
		}
		node, err := buildExpr(nd.Expr, netScope, nd.Name)
		if err != nil {
			return err
		}
		sc.names[nd.Name] = node
	}
	return nil
}

// buildExpr lowers an expression to a core network.  netName scopes the
// stats labels of anonymous combinators so experiment counters are
// addressable (e.g. "star.fig1.solve_loop...").
func buildExpr(e Expr, sc *scope, netName string) (core.Node, error) {
	switch e := e.(type) {
	case *IdentExpr:
		n, ok := sc.lookup(e.Name)
		if !ok {
			return nil, &Error{Pos: e.At, Msg: fmt.Sprintf("undefined name %q", e.Name)}
		}
		return n, nil
	case *SerialExpr:
		a, err := buildExpr(e.A, sc, netName)
		if err != nil {
			return nil, err
		}
		b, err := buildExpr(e.B, sc, netName)
		if err != nil {
			return nil, err
		}
		return core.Serial(a, b), nil
	case *ParExpr:
		a, err := buildExpr(e.A, sc, netName)
		if err != nil {
			return nil, err
		}
		b, err := buildExpr(e.B, sc, netName)
		if err != nil {
			return nil, err
		}
		if e.Det {
			return core.ParallelDet(a, b), nil
		}
		return core.Parallel(a, b), nil
	case *StarExpr:
		a, err := buildExpr(e.A, sc, netName)
		if err != nil {
			return nil, err
		}
		name := netName + ".star"
		if e.Det {
			return core.NamedStarDet(name, a, e.Exit), nil
		}
		return core.NamedStar(name, a, e.Exit), nil
	case *SplitExpr:
		a, err := buildExpr(e.A, sc, netName)
		if err != nil {
			return nil, err
		}
		name := netName + ".split"
		if e.Det {
			return core.NamedSplitDet(name, a, e.Tag), nil
		}
		return core.NamedSplit(name, a, e.Tag), nil
	case *FilterExpr:
		return core.NewFilter(e.Spec), nil
	case *SyncExpr:
		return core.Sync(e.Patterns...), nil
	}
	return nil, fmt.Errorf("snet: unknown expression %T", e)
}
