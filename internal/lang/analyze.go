package lang

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/core"
)

// AnalyzeNet is CompileNet followed by the graph-level static analysis: it
// builds the named net, compiles it, decorates both the TypeErrors and the
// analysis Findings with .snet source positions (via the builder's node→Pos
// index), and returns the plan, the lint report, and the compile error (nil
// when the net type-checks).  The report is always non-nil when err is a
// *core.CompileError or nil — analysis runs even on plans with type errors.
func AnalyzeNet(prog *Program, netName string, reg *Registry, opts ...core.CompileOption) (*core.Plan, *analysis.Report, error) {
	return AnalyzeNetWithCaps(prog, netName, reg, analysis.DefaultCaps(), opts...)
}

// AnalyzeNetWithCaps is AnalyzeNet under explicit capacity assumptions —
// the front end of the deadlock & boundedness verifier: the report's bound,
// verdict and counterexample traces are all decorated with .snet positions.
func AnalyzeNetWithCaps(prog *Program, netName string, reg *Registry, caps analysis.Caps, opts ...core.CompileOption) (*core.Plan, *analysis.Report, error) {
	b, err := BuildNet(prog, netName, reg)
	if err != nil {
		return nil, nil, err
	}
	plan, cerr := core.Compile(b.Node, opts...)
	if cerr != nil {
		var ce *core.CompileError
		if errors.As(cerr, &ce) {
			for _, te := range ce.Errors {
				if pos, ok := b.Positions[te.Subject()]; ok {
					te.Pos = pos.String()
				}
			}
		}
	}
	rep := analysis.AnalyzeWithCaps(plan, caps)
	for _, f := range rep.Findings {
		if pos, ok := b.Positions[f.Subject()]; ok {
			f.Pos = pos.String()
		}
		for i := range f.Trace {
			if pos, ok := b.Positions[f.Trace[i].Subject()]; ok {
				f.Trace[i].Pos = pos.String()
			}
		}
	}
	return plan, rep, cerr
}
