package lang

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func incFn(delta int) core.BoxFunc {
	return func(args []any, out *core.Emitter) error {
		return out.Out(1, args[0].(int)+delta)
	}
}

func decDoneFn() core.BoxFunc {
	return func(args []any, out *core.Emitter) error {
		n := args[0].(int)
		if n <= 0 {
			return out.Out(2, 0, 1)
		}
		return out.Out(1, n-1)
	}
}

func TestBuildAndRunPipeline(t *testing.T) {
	net, err := BuildText(`
		box incA (<n>) -> (<n>);
		box incB (<n>) -> (<n>);
		net main connect incA .. incB;
	`, "main", NewRegistry().
		RegisterFunc("incA", incFn(1)).
		RegisterFunc("incB", incFn(10)))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := core.RunAll(context.Background(), net,
		[]*core.Record{core.NewRecord().SetTag("n", 0)})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if v, _ := out[0].Tag("n"); v != 11 {
		t.Fatalf("n = %d", v)
	}
}

func TestBuildStarLoop(t *testing.T) {
	net, err := BuildText(`
		box dec (<n>) -> (<n>) | (<n>,<done>);
		net loop connect dec ** {<done>};
	`, "loop", NewRegistry().RegisterFunc("dec", decDoneFn()))
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := core.RunAll(context.Background(), net,
		[]*core.Record{core.NewRecord().SetTag("n", 5)})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if _, ok := out[0].Tag("done"); !ok {
		t.Fatal("loop did not terminate via <done>")
	}
	if stats.Counter("star.loop.star.replicas") != 6 {
		t.Fatalf("replicas = %d (keys: %v)", stats.Counter("star.loop.star.replicas"), stats.Keys())
	}
}

func TestBuildSplitAndFilter(t *testing.T) {
	net, err := BuildText(`
		box work (<n>) -> (<n>);
		net main connect [{<n>} -> {<n>=<n>, <k>=<n>%3}] .. (work !! <k>);
	`, "main", NewRegistry().RegisterFunc("work", incFn(100)))
	if err != nil {
		t.Fatal(err)
	}
	var inputs []*core.Record
	for i := 0; i < 9; i++ {
		inputs = append(inputs, core.NewRecord().SetTag("n", i))
	}
	out, stats, err := core.RunAll(context.Background(), net, inputs)
	if err != nil || len(out) != 9 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if stats.Counter("split.main.split.replicas") != 3 {
		t.Fatalf("replicas = %d", stats.Counter("split.main.split.replicas"))
	}
}

func TestBuildNestedNets(t *testing.T) {
	net, err := BuildText(`
		box inc (<n>) -> (<n>);
		net stage connect inc .. inc;
		net main connect stage .. stage;
	`, "main", NewRegistry().RegisterFunc("inc", incFn(1)))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := core.RunAll(context.Background(), net,
		[]*core.Record{core.NewRecord().SetTag("n", 0)})
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if v, _ := out[0].Tag("n"); v != 4 {
		t.Fatalf("n = %d, want 4 increments", v)
	}
}

func TestBuildNetBodyScope(t *testing.T) {
	reg := NewRegistry().RegisterFunc("inner", incFn(1)).RegisterFunc("outer", incFn(2))
	_, err := BuildText(`
		box outer (<n>) -> (<n>);
		net sub {
			box inner (<n>) -> (<n>);
		} connect inner .. outer;
		net main connect sub;
	`, "main", reg)
	if err != nil {
		t.Fatal(err)
	}
	// inner is local to sub: referencing it from main must fail.
	_, err = BuildText(`
		box outer (<n>) -> (<n>);
		net sub {
			box inner (<n>) -> (<n>);
		} connect inner;
		net main connect inner;
	`, "main", reg)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("scope leak: %v", err)
	}
}

func TestBuildRegisteredNodeOverride(t *testing.T) {
	pre := core.NewBox("pre", core.MustParseSignature("(<n>) -> (<n>)"), incFn(7))
	net, err := BuildText(`
		box pre (<n>) -> (<n>);
		net main connect pre;
	`, "main", NewRegistry().RegisterNode("pre", pre))
	if err != nil {
		t.Fatal(err)
	}
	out, _, _ := core.RunAll(context.Background(), net,
		[]*core.Record{core.NewRecord().SetTag("n", 0)})
	if v, _ := out[0].Tag("n"); v != 7 {
		t.Fatalf("n = %d", v)
	}
}

func TestBuildErrors(t *testing.T) {
	reg := NewRegistry().RegisterFunc("a", incFn(1))
	cases := []struct{ src, want string }{
		{"box a (x) -> (x); net n connect missing;", "undefined"},
		{"box nofn (x) -> (x); net n connect nofn;", "no implementation"},
		{"box a (x) -> (x); box a (x) -> (x); net n connect a;", "duplicate"},
		{"box a (x) -> (x); net a connect a;", "duplicate"},
	}
	for _, c := range cases {
		if _, err := BuildText(c.src, "n", reg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
	if _, err := BuildText("box a (x) -> (x); net n connect a;", "ghost", reg); err == nil {
		t.Fatal("unknown net name must fail")
	}
}

func TestBuildDeterministicVariants(t *testing.T) {
	net, err := BuildText(`
		box dec (<n>) -> (<n>) | (<n>,<done>);
		net loop connect dec * {<done>};
	`, "loop", NewRegistry().RegisterFunc("dec", decDoneFn()))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []*core.Record{
		core.NewRecord().SetTag("n", 5).SetTag("seq", 0),
		core.NewRecord().SetTag("n", 1).SetTag("seq", 1),
		core.NewRecord().SetTag("n", 3).SetTag("seq", 2),
	}
	out, _, err := core.RunAll(context.Background(), net, inputs)
	if err != nil || len(out) != 3 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i, r := range out {
		if v, _ := r.Tag("seq"); v != i {
			t.Fatalf("det star broke order: %v", out)
		}
	}
}

func TestBuildSync(t *testing.T) {
	net, err := BuildText(`net j connect [| {a}, {b} |];`, "j", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := core.RunAll(context.Background(), net, []*core.Record{
		core.NewRecord().SetField("a", 1),
		core.NewRecord().SetField("b", 2),
	})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if _, ok := out[0].Field("b"); !ok {
		t.Fatal("join lost b")
	}
}

// CompileNet maps definite type errors back to .snet source positions.
func TestCompileNetPositions(t *testing.T) {
	src := `box produce (n) -> (a,b);
box eatAB (a,b) -> (r);
box eatAC (a,c) -> (r);

net main connect
  produce .. (eatAB || eatAC);
`
	reg := NewRegistry().
		RegisterFunc("produce", incFn(0)).
		RegisterFunc("eatAB", incFn(0)).
		RegisterFunc("eatAC", incFn(0))
	plan, err := CompileNet(MustParse(src), "main", reg)
	if err == nil {
		t.Fatal("CompileNet accepted a net with an unreachable branch")
	}
	if plan == nil {
		t.Fatal("CompileNet returned nil plan alongside type errors")
	}
	var ce *core.CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *core.CompileError", err)
	}
	te := ce.Errors[0]
	if te.Code != core.ErrCodeUnreachable {
		t.Fatalf("code = %q (err %v)", te.Code, err)
	}
	// The unreachable branch is eatAC, declared on line 3.
	if te.Pos != "3:1" {
		t.Fatalf("Pos = %q, want 3:1 (err: %v)", te.Pos, te)
	}
	if !strings.Contains(te.Error(), "3:1") {
		t.Fatalf("rendered error lost the position: %v", te)
	}
}

// CompileNet on a clean program returns the plan with its topology intact.
func TestCompileNetClean(t *testing.T) {
	src := `box inc (<n>) -> (<n>);
net main connect inc .. inc;
`
	reg := NewRegistry().RegisterFunc("inc", incFn(1))
	plan, err := CompileNet(MustParse(src), "main", reg)
	if err != nil {
		t.Fatalf("CompileNet: %v", err)
	}
	if plan.Topology().Kind != "serial" {
		t.Fatalf("topology: %+v", plan.Topology())
	}
}

// Reserved labels are rejected by the surface parser with their position.
func TestParseRejectsReservedLabels(t *testing.T) {
	cases := []struct{ src, wantPos string }{
		{"box a (x) -> (y);\nbox b (__snet_x) -> (y);", "2:8"},
		{"box a (x) -> (<__snet_t>);", "1:15"},
		{"net n connect [ {x} -> {<__snet_t>=1} ];", "1:25"},
		{"net n connect a ** {<__snet_done>};", "1:21"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse accepted %q", tc.src)
		}
		var perr *Error
		if !errors.As(err, &perr) {
			t.Fatalf("%q: err %T", tc.src, err)
		}
		if !strings.Contains(err.Error(), "reserved") {
			t.Fatalf("%q: err %v not about reserved labels", tc.src, err)
		}
		if got := perr.Pos.String(); got != tc.wantPos {
			t.Fatalf("%q: pos %s, want %s", tc.src, got, tc.wantPos)
		}
	}
}

// Regression: parse errors in multi-line programs keep exact line/column
// positions past the first line.
func TestParseErrorPositionsMultiLine(t *testing.T) {
	cases := []struct{ src, wantPos string }{
		{"box a (x) -> (y);\nbox b (y) -> (z);\nnet bad connect a ..;\n", "3:21"},
		{"/* multi\nline\ncomment */\nnet n connect &;\n", "4:15"},
		{"box a (x) -> (y);\r\nnet n connect &;\r\n", "2:15"},
		{"box a (x)\n  -> (y)\n  | (z;\n", "3:7"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse accepted %q", tc.src)
		}
		var perr *Error
		if !errors.As(err, &perr) {
			t.Fatalf("%q: err %T", tc.src, err)
		}
		if got := perr.Pos.String(); got != tc.wantPos {
			t.Fatalf("%q: pos %s, want %s", tc.src, got, tc.wantPos)
		}
	}
}
