package sacvm

import (
	"repro/internal/array"
	"repro/internal/sched"
)

// Elementwise operator evaluation with scalar broadcast, mirroring SaC's
// overloaded arithmetic on arrays.

func evalUnary(p *sched.Pool, op byte, x Value, at Pos) (Value, error) {
	switch op {
	case '-':
		switch x.Kind {
		case KindInt:
			return IntValue(array.Map(p, x.I, func(v int) int { return -v })), nil
		case KindDouble:
			return DoubleValue(array.Map(p, x.D, func(v float64) float64 { return -v })), nil
		}
		return Value{}, errf(at, "unary - needs numeric operand, got %s", x.TypeString())
	case '!':
		if x.Kind != KindBool {
			return Value{}, errf(at, "! needs bool operand, got %s", x.TypeString())
		}
		return BoolValue(array.Map(p, x.B, func(v bool) bool { return !v })), nil
	}
	return Value{}, errf(at, "unknown unary operator %q", string(op))
}

// broadcast pairs two arrays under SaC's scalar-broadcast rule and applies f
// elementwise.
func broadcast[T any, R any](p *sched.Pool, a, b *array.Array[T], f func(T, T) R, at Pos) (*array.Array[R], error) {
	switch {
	case sameShape(a.Shape(), b.Shape()):
		return array.Zip(p, a, b, f), nil
	case a.Dim() == 0:
		av := a.ScalarValue()
		return array.Map(p, b, func(x T) R { return f(av, x) }), nil
	case b.Dim() == 0:
		bv := b.ScalarValue()
		return array.Map(p, a, func(x T) R { return f(x, bv) }), nil
	}
	return nil, errf(at, "shape mismatch %v vs %v", a.Shape(), b.Shape())
}

func evalBinop(p *sched.Pool, op string, x, y Value, at Pos) (Value, error) {
	// int op double promotes the int scalar (sufficient for the paper's
	// programs; general promotion is not part of Core SaC).
	if x.Kind == KindInt && y.Kind == KindDouble && x.IsScalar() {
		x = DoubleScalar(float64(x.I.ScalarValue()))
	}
	if y.Kind == KindInt && x.Kind == KindDouble && y.IsScalar() {
		y = DoubleScalar(float64(y.I.ScalarValue()))
	}
	if x.Kind != y.Kind {
		return Value{}, errf(at, "operator %s on mixed types %s and %s", op, x.TypeString(), y.TypeString())
	}
	switch x.Kind {
	case KindInt:
		return intBinop(p, op, x, y, at)
	case KindDouble:
		return dblBinop(p, op, x, y, at)
	case KindBool:
		return boolBinop(p, op, x, y, at)
	}
	return Value{}, errf(at, "operator %s unsupported", op)
}

func intBinop(p *sched.Pool, op string, x, y Value, at Pos) (Value, error) {
	arith := map[string]func(int, int) int{
		"+": func(a, b int) int { return a + b },
		"-": func(a, b int) int { return a - b },
		"*": func(a, b int) int { return a * b },
		"min": func(a, b int) int {
			if a < b {
				return a
			}
			return b
		},
		"max": func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
	}
	if f, ok := arith[op]; ok {
		out, err := broadcast(p, x.I, y.I, f, at)
		if err != nil {
			return Value{}, err
		}
		return IntValue(out), nil
	}
	switch op {
	case "/", "%":
		// Guard division inside the closure via a pre-scan is racy to
		// report; check scalar divisor upfront, else per element.
		div := func(a, b int) int {
			if b == 0 {
				panic(errf(at, "division by zero"))
			}
			if op == "/" {
				return a / b
			}
			return a % b
		}
		out, err := func() (out *array.Array[int], err error) {
			defer func() {
				if r := recover(); r != nil {
					if e, ok := r.(*Error); ok {
						err = e
						return
					}
					panic(r)
				}
			}()
			return broadcast(p, x.I, y.I, div, at)
		}()
		if err != nil {
			return Value{}, err
		}
		return IntValue(out), nil
	}
	cmp := map[string]func(int, int) bool{
		"==": func(a, b int) bool { return a == b },
		"!=": func(a, b int) bool { return a != b },
		"<":  func(a, b int) bool { return a < b },
		"<=": func(a, b int) bool { return a <= b },
		">":  func(a, b int) bool { return a > b },
		">=": func(a, b int) bool { return a >= b },
	}
	if f, ok := cmp[op]; ok {
		out, err := broadcast(p, x.I, y.I, f, at)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(out), nil
	}
	return Value{}, errf(at, "operator %s not defined on int", op)
}

func dblBinop(p *sched.Pool, op string, x, y Value, at Pos) (Value, error) {
	arith := map[string]func(float64, float64) float64{
		"+": func(a, b float64) float64 { return a + b },
		"-": func(a, b float64) float64 { return a - b },
		"*": func(a, b float64) float64 { return a * b },
		"/": func(a, b float64) float64 { return a / b },
		"min": func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		"max": func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
	}
	if f, ok := arith[op]; ok {
		out, err := broadcast(p, x.D, y.D, f, at)
		if err != nil {
			return Value{}, err
		}
		return DoubleValue(out), nil
	}
	cmp := map[string]func(float64, float64) bool{
		"==": func(a, b float64) bool { return a == b },
		"!=": func(a, b float64) bool { return a != b },
		"<":  func(a, b float64) bool { return a < b },
		"<=": func(a, b float64) bool { return a <= b },
		">":  func(a, b float64) bool { return a > b },
		">=": func(a, b float64) bool { return a >= b },
	}
	if f, ok := cmp[op]; ok {
		out, err := broadcast(p, x.D, y.D, f, at)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(out), nil
	}
	return Value{}, errf(at, "operator %s not defined on double", op)
}

func boolBinop(p *sched.Pool, op string, x, y Value, at Pos) (Value, error) {
	ops := map[string]func(bool, bool) bool{
		"&&": func(a, b bool) bool { return a && b },
		"||": func(a, b bool) bool { return a || b },
		"==": func(a, b bool) bool { return a == b },
		"!=": func(a, b bool) bool { return a != b },
	}
	f, ok := ops[op]
	if !ok {
		return Value{}, errf(at, "operator %s not defined on bool", op)
	}
	out, err := broadcast(p, x.B, y.B, f, at)
	if err != nil {
		return Value{}, err
	}
	return BoolValue(out), nil
}

// indexSelect implements array[idx_vec]: prefix selection yields subarrays,
// full-rank selection yields scalars (§2).
func indexSelect(x Value, iv []int, at Pos) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*array.ShapeError); ok {
				err = errf(at, "%s", se.Error())
				return
			}
			panic(r)
		}
	}()
	if len(iv) > x.Dim() {
		return Value{}, errf(at, "index %v longer than rank %d", iv, x.Dim())
	}
	switch x.Kind {
	case KindInt:
		return IntValue(x.I.Sel(iv...)), nil
	case KindBool:
		return BoolValue(x.B.Sel(iv...)), nil
	default:
		return DoubleValue(x.D.Sel(iv...)), nil
	}
}

// indexUpdate implements the functional update a[iv] = v for full-rank
// scalar writes.
func indexUpdate(cur Value, iv []int, val Value, at Pos) (out Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*array.ShapeError); ok {
				err = errf(at, "%s", se.Error())
				return
			}
			panic(r)
		}
	}()
	if len(iv) != cur.Dim() {
		return Value{}, errf(at, "indexed assignment needs a full index (rank %d, index %v)", cur.Dim(), iv)
	}
	if cur.Kind != val.Kind || !val.IsScalar() {
		return Value{}, errf(at, "indexed assignment needs a %s scalar, got %s", cur.Kind, val.TypeString())
	}
	switch cur.Kind {
	case KindInt:
		return IntValue(cur.I.WithAt(val.I.ScalarValue(), iv...)), nil
	case KindBool:
		return BoolValue(cur.B.WithAt(val.B.ScalarValue(), iv...)), nil
	default:
		return DoubleValue(cur.D.WithAt(val.D.ScalarValue(), iv...)), nil
	}
}
