// Package sacvm implements an interpreter for Core SaC as described in §2
// of the paper: a functional, side-effect free variant of C extended with
// n-dimensional state-less arrays and with-loop array comprehensions
// (genarray, modarray, fold).
//
// The subset covers everything the paper's programs use: multi-value
// returns, assignment sequences (interpreted as nested let-expressions),
// branches, for/while loops (syntactic sugar for tail recursion), array
// literals, vector and multi-scalar selection, user-defined infix ++, and
// the snet_out interface function for embedding functions as S-Net boxes.
// With-loops execute data-parallel on an internal/sched pool, standing in
// for SaC's multithreaded code generation.
package sacvm

import (
	"fmt"
	"strings"
	"unicode"
)

// Pos is a 1-based source position.
type Pos struct{ Line, Col int }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a lex, parse or evaluation failure.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sac: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type kind int

const (
	tEOF kind = iota
	tIdent
	tInt
	tDouble
	tLBrace
	tRBrace
	tLParen
	tRParen
	tLBrack
	tRBrack
	tComma
	tSemi
	tColon
	tDot
	tAssign
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tPlusPlus // vector concatenation / postfix increment
	tEq
	tNeq
	tLt
	tLe
	tGt
	tGe
	tAnd
	tOr
	tNot
)

var kindName = map[kind]string{
	tEOF: "end of input", tIdent: "identifier", tInt: "integer", tDouble: "double",
	tLBrace: "'{'", tRBrace: "'}'", tLParen: "'('", tRParen: "')'",
	tLBrack: "'['", tRBrack: "']'", tComma: "','", tSemi: "';'", tColon: "':'", tDot: "'.'",
	tAssign: "'='", tPlus: "'+'", tMinus: "'-'", tStar: "'*'", tSlash: "'/'",
	tPercent: "'%'", tPlusPlus: "'++'", tEq: "'=='", tNeq: "'!='",
	tLt: "'<'", tLe: "'<='", tGt: "'>'", tGe: "'>='",
	tAnd: "'&&'", tOr: "'||'", tNot: "'!'",
}

func (k kind) String() string { return kindName[k] }

type tok struct {
	kind kind
	text string
	pos  Pos
}

func lexAll(src string) ([]tok, error) {
	runes := []rune(src)
	var toks []tok
	line, col := 1, 1
	i := 0
	adv := func() rune {
		r := runes[i]
		i++
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		return r
	}
	peekAt := func(off int) rune {
		if i+off >= len(runes) {
			return 0
		}
		return runes[i+off]
	}
	for {
		// skip whitespace and comments
		for i < len(runes) {
			r := runes[i]
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				adv()
				continue
			}
			if r == '/' && peekAt(1) == '/' {
				for i < len(runes) && runes[i] != '\n' {
					adv()
				}
				continue
			}
			if r == '/' && peekAt(1) == '*' {
				start := Pos{line, col}
				adv()
				adv()
				closed := false
				for i < len(runes) {
					if runes[i] == '*' && peekAt(1) == '/' {
						adv()
						adv()
						closed = true
						break
					}
					adv()
				}
				if !closed {
					return nil, errf(start, "unterminated comment")
				}
				continue
			}
			break
		}
		pos := Pos{line, col}
		if i >= len(runes) {
			toks = append(toks, tok{kind: tEOF, pos: pos})
			return toks, nil
		}
		r := runes[i]
		switch {
		case r == '_' || unicode.IsLetter(r):
			var b strings.Builder
			for i < len(runes) && (runes[i] == '_' || unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i])) {
				b.WriteRune(adv())
			}
			toks = append(toks, tok{kind: tIdent, text: b.String(), pos: pos})
			continue
		case unicode.IsDigit(r):
			var b strings.Builder
			isDouble := false
			for i < len(runes) && unicode.IsDigit(runes[i]) {
				b.WriteRune(adv())
			}
			if i < len(runes) && runes[i] == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
				isDouble = true
				b.WriteRune(adv())
				for i < len(runes) && unicode.IsDigit(runes[i]) {
					b.WriteRune(adv())
				}
			}
			k := tInt
			if isDouble {
				k = tDouble
			}
			toks = append(toks, tok{kind: k, text: b.String(), pos: pos})
			continue
		}
		two := func(k kind) {
			adv()
			adv()
			toks = append(toks, tok{kind: k, pos: pos})
		}
		one := func(k kind) {
			adv()
			toks = append(toks, tok{kind: k, pos: pos})
		}
		switch r {
		case '{':
			one(tLBrace)
		case '}':
			one(tRBrace)
		case '(':
			one(tLParen)
		case ')':
			one(tRParen)
		case '[':
			one(tLBrack)
		case ']':
			one(tRBrack)
		case ',':
			one(tComma)
		case ';':
			one(tSemi)
		case ':':
			one(tColon)
		case '.':
			one(tDot)
		case '+':
			if peekAt(1) == '+' {
				two(tPlusPlus)
			} else {
				one(tPlus)
			}
		case '-':
			one(tMinus)
		case '*':
			one(tStar)
		case '/':
			one(tSlash)
		case '%':
			one(tPercent)
		case '=':
			if peekAt(1) == '=' {
				two(tEq)
			} else {
				one(tAssign)
			}
		case '!':
			if peekAt(1) == '=' {
				two(tNeq)
			} else {
				one(tNot)
			}
		case '<':
			if peekAt(1) == '=' {
				two(tLe)
			} else {
				one(tLt)
			}
		case '>':
			if peekAt(1) == '=' {
				two(tGe)
			} else {
				one(tGt)
			}
		case '&':
			if peekAt(1) == '&' {
				two(tAnd)
			} else {
				return nil, errf(pos, "unexpected '&'")
			}
		case '|':
			if peekAt(1) == '|' {
				two(tOr)
			} else {
				return nil, errf(pos, "unexpected '|'")
			}
		default:
			return nil, errf(pos, "unexpected character %q", string(r))
		}
	}
}
