package sacvm

import (
	"fmt"
	"io"

	"repro/internal/array"
	"repro/internal/sched"
)

// EmitFn receives snet_out calls made by interpreted code — the interface
// function through which a SaC box function produces its output records
// (§4).  Outside box contexts snet_out is an error.
type EmitFn func(variant int, vals []Value) error

// Interp evaluates a parsed SaC program.  It is safe for concurrent Call
// invocations: all mutable state is per-call.
type Interp struct {
	prog *Program
	pool *sched.Pool
	out  io.Writer
}

// New returns an interpreter for prog whose with-loops execute on pool.
func New(prog *Program, pool *sched.Pool) *Interp {
	if pool == nil {
		pool = sched.New(1)
	}
	return &Interp{prog: prog, pool: pool}
}

// SetOutput directs the print builtin (default: discard).
func (itp *Interp) SetOutput(w io.Writer) { itp.out = w }

// HasFun reports whether the program defines the named function.
func (itp *Interp) HasFun(name string) bool {
	_, ok := itp.prog.Funs[name]
	return ok
}

// Call invokes a defined function with the given arguments.  emit handles
// snet_out calls (nil means snet_out is unavailable).
func (itp *Interp) Call(name string, args []Value, emit EmitFn) ([]Value, error) {
	fd, ok := itp.prog.Funs[name]
	if !ok {
		return nil, fmt.Errorf("sac: undefined function %q", name)
	}
	ctx := &evalCtx{itp: itp, emit: emit}
	return ctx.callFun(fd, args, Pos{})
}

// evalCtx carries the per-call context (the snet_out sink).
type evalCtx struct {
	itp  *Interp
	emit EmitFn
}

// env is a lexical environment.  Function bodies use a single flat frame
// (C-style scoping, as the paper's Core SaC defines assignment sequences as
// nested lets over one frame); with-loop bodies push read-only child frames.
type env struct {
	vars   map[string]Value
	parent *env
}

func (e *env) lookup(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func (e *env) set(name string, v Value) { e.vars[name] = v }

func (ctx *evalCtx) callFun(fd *FunDecl, args []Value, at Pos) ([]Value, error) {
	if len(args) != len(fd.Params) {
		return nil, errf(at, "%s expects %d arguments, got %d", fd.Name, len(fd.Params), len(args))
	}
	frame := &env{vars: make(map[string]Value, len(fd.Params)+8)}
	for i, p := range fd.Params {
		frame.set(p.Name, args[i])
	}
	ret, err := ctx.execBlock(fd.Body, frame)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		if len(fd.Returns) == 1 && fd.Returns[0].Base == "void" {
			return nil, nil
		}
		return nil, errf(fd.At, "%s: missing return", fd.Name)
	}
	return *ret, nil
}

// execBlock runs statements; a non-nil result signals a return.
func (ctx *evalCtx) execBlock(stmts []Stmt, e *env) (*[]Value, error) {
	for _, s := range stmts {
		ret, err := ctx.execStmt(s, e)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

func (ctx *evalCtx) execStmt(s Stmt, e *env) (*[]Value, error) {
	switch s := s.(type) {
	case *AssignStmt:
		var vals []Value
		for _, ex := range s.Exprs {
			vs, err := ctx.evalMulti(ex, e)
			if err != nil {
				return nil, err
			}
			vals = append(vals, vs...)
		}
		if len(vals) != len(s.Targets) {
			return nil, errf(s.At, "assignment of %d values to %d targets", len(vals), len(s.Targets))
		}
		for i, t := range s.Targets {
			e.set(t, vals[i])
		}
		return nil, nil
	case *IndexAssignStmt:
		cur, ok := e.lookup(s.Name)
		if !ok {
			return nil, errf(s.At, "undefined variable %q", s.Name)
		}
		iv, err := ctx.evalIndexVector(s.Index, e, s.At)
		if err != nil {
			return nil, err
		}
		val, err := ctx.eval(s.Value, e)
		if err != nil {
			return nil, err
		}
		upd, err := indexUpdate(cur, iv, val, s.At)
		if err != nil {
			return nil, err
		}
		e.set(s.Name, upd)
		return nil, nil
	case *IfStmt:
		c, err := ctx.eval(s.Cond, e)
		if err != nil {
			return nil, err
		}
		b, err := c.AsBool(s.At)
		if err != nil {
			return nil, err
		}
		if b {
			return ctx.execBlock(s.Then, e)
		}
		return ctx.execBlock(s.Else, e)
	case *WhileStmt:
		for {
			c, err := ctx.eval(s.Cond, e)
			if err != nil {
				return nil, err
			}
			b, err := c.AsBool(s.At)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
			ret, err := ctx.execBlock(s.Body, e)
			if err != nil || ret != nil {
				return ret, err
			}
		}
	case *ForStmt:
		if s.Init != nil {
			if _, err := ctx.execStmt(s.Init, e); err != nil {
				return nil, err
			}
		}
		for {
			c, err := ctx.eval(s.Cond, e)
			if err != nil {
				return nil, err
			}
			b, err := c.AsBool(s.At)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
			ret, err := ctx.execBlock(s.Body, e)
			if err != nil || ret != nil {
				return ret, err
			}
			if s.Post != nil {
				if _, err := ctx.execStmt(s.Post, e); err != nil {
					return nil, err
				}
			}
		}
	case *ReturnStmt:
		vals := make([]Value, 0, len(s.Exprs))
		for _, ex := range s.Exprs {
			vs, err := ctx.evalMulti(ex, e)
			if err != nil {
				return nil, err
			}
			vals = append(vals, vs...)
		}
		return &vals, nil
	case *ExprStmt:
		_, err := ctx.evalMulti(s.X, e)
		return nil, err
	}
	return nil, errf(s.pos(), "unknown statement %T", s)
}

// evalMulti evaluates an expression that may yield multiple values (a
// multi-value function call); all other expressions yield one value.
func (ctx *evalCtx) evalMulti(ex Expr, e *env) ([]Value, error) {
	if call, ok := ex.(*CallExpr); ok {
		return ctx.evalCall(call, e)
	}
	v, err := ctx.eval(ex, e)
	if err != nil {
		return nil, err
	}
	return []Value{v}, nil
}

func (ctx *evalCtx) eval(ex Expr, e *env) (Value, error) {
	switch ex := ex.(type) {
	case *IntLit:
		return IntScalar(ex.V), nil
	case *DoubleLit:
		return DoubleScalar(ex.V), nil
	case *BoolLit:
		return BoolScalar(ex.V), nil
	case *VarRef:
		v, ok := e.lookup(ex.Name)
		if !ok {
			return Value{}, errf(ex.At, "undefined variable %q", ex.Name)
		}
		return v, nil
	case *ArrayLit:
		return ctx.evalArrayLit(ex, e)
	case *UnaryExpr:
		x, err := ctx.eval(ex.X, e)
		if err != nil {
			return Value{}, err
		}
		return evalUnary(ctx.itp.pool, ex.Op, x, ex.At)
	case *BinExpr:
		return ctx.evalBinary(ex, e)
	case *IndexExpr:
		x, err := ctx.eval(ex.X, e)
		if err != nil {
			return Value{}, err
		}
		iv, err := ctx.evalIndexVector(ex.Idx, e, ex.At)
		if err != nil {
			return Value{}, err
		}
		return indexSelect(x, iv, ex.At)
	case *CallExpr:
		vs, err := ctx.evalCall(ex, e)
		if err != nil {
			return Value{}, err
		}
		if len(vs) != 1 {
			return Value{}, errf(ex.At, "%s yields %d values in single-value context", ex.Name, len(vs))
		}
		return vs[0], nil
	case *WithLoop:
		return ctx.evalWith(ex, e)
	}
	return Value{}, errf(ex.epos(), "unknown expression %T", ex)
}

// evalBinary handles && / || with scalar short-circuit, everything else
// elementwise with scalar broadcast.
func (ctx *evalCtx) evalBinary(ex *BinExpr, e *env) (Value, error) {
	x, err := ctx.eval(ex.X, e)
	if err != nil {
		return Value{}, err
	}
	if (ex.Op == "&&" || ex.Op == "||") && x.Kind == KindBool && x.IsScalar() {
		b := x.B.ScalarValue()
		if (ex.Op == "&&" && !b) || (ex.Op == "||" && b) {
			return BoolScalar(b), nil
		}
		return ctx.eval(ex.Y, e)
	}
	y, err := ctx.eval(ex.Y, e)
	if err != nil {
		return Value{}, err
	}
	return evalBinop(ctx.itp.pool, ex.Op, x, y, ex.At)
}

// evalIndexVector evaluates index expressions: either one vector-valued
// expression (a[iv]) or a list of scalars (a[i,j,k]).
func (ctx *evalCtx) evalIndexVector(idx []Expr, e *env, at Pos) ([]int, error) {
	if len(idx) == 1 {
		v, err := ctx.eval(idx[0], e)
		if err != nil {
			return nil, err
		}
		if v.Kind == KindInt && v.Dim() == 1 {
			return append([]int(nil), v.I.Data()...), nil
		}
		n, err := v.AsInt(at)
		if err != nil {
			return nil, err
		}
		return []int{n}, nil
	}
	out := make([]int, len(idx))
	for i, ixe := range idx {
		v, err := ctx.eval(ixe, e)
		if err != nil {
			return nil, err
		}
		n, err := v.AsInt(at)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func (ctx *evalCtx) evalArrayLit(lit *ArrayLit, e *env) (Value, error) {
	if len(lit.Elems) == 0 {
		return IntValue(array.New([]int{0}, 0)), nil
	}
	vals := make([]Value, len(lit.Elems))
	for i, el := range lit.Elems {
		v, err := ctx.eval(el, e)
		if err != nil {
			return Value{}, err
		}
		vals[i] = v
	}
	kind := vals[0].Kind
	shape := vals[0].Shape()
	for _, v := range vals[1:] {
		if v.Kind != kind || !sameShape(v.Shape(), shape) {
			return Value{}, errf(lit.At, "array literal elements must agree in type and shape")
		}
	}
	outShape := append([]int{len(vals)}, shape...)
	switch kind {
	case KindInt:
		data := make([]int, 0, len(vals)*vals[0].Size())
		for _, v := range vals {
			data = append(data, v.I.Data()...)
		}
		return IntValue(array.FromSlice(outShape, data)), nil
	case KindBool:
		data := make([]bool, 0, len(vals)*vals[0].Size())
		for _, v := range vals {
			data = append(data, v.B.Data()...)
		}
		return BoolValue(array.FromSlice(outShape, data)), nil
	default:
		data := make([]float64, 0, len(vals)*vals[0].Size())
		for _, v := range vals {
			data = append(data, v.D.Data()...)
		}
		return DoubleValue(array.FromSlice(outShape, data)), nil
	}
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ctx *evalCtx) evalCall(call *CallExpr, e *env) ([]Value, error) {
	// User definitions shadow builtins.
	if fd, ok := ctx.itp.prog.Funs[call.Name]; ok {
		args := make([]Value, len(call.Args))
		for i, a := range call.Args {
			v, err := ctx.eval(a, e)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ctx.callFun(fd, args, call.At)
	}
	return ctx.evalBuiltin(call, e)
}
