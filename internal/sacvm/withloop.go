package sacvm

import (
	"repro/internal/array"
)

// genBounds is one generator with evaluated bounds.
type genBounds struct {
	lo, hi []int
	incLo  bool
	incHi  bool
	spec   *GenSpec
}

// evalWith evaluates a with-loop.  Generator bodies run data-parallel on
// the interpreter's pool; each body evaluation gets a fresh child frame
// binding the index variable, with the enclosing frame shared read-only —
// sound because Core SaC expressions cannot assign.
func (ctx *evalCtx) evalWith(wl *WithLoop, e *env) (Value, error) {
	gens := make([]genBounds, len(wl.Gens))
	for i := range wl.Gens {
		g := &wl.Gens[i]
		lo, err := ctx.evalBoundVector(g.Lower, e)
		if err != nil {
			return Value{}, err
		}
		hi, err := ctx.evalBoundVector(g.Upper, e)
		if err != nil {
			return Value{}, err
		}
		if len(lo) != len(hi) {
			return Value{}, errf(g.At, "generator bounds %v and %v differ in length", lo, hi)
		}
		gens[i] = genBounds{lo: lo, hi: hi, incLo: g.LowerIncl, incHi: g.UpperIncl, spec: g}
	}
	switch wl.Kind {
	case GenGenarray:
		shapeV, err := ctx.eval(wl.A1, e)
		if err != nil {
			return Value{}, err
		}
		shape, err := shapeV.AsIntVector(wl.A1.epos())
		if err != nil {
			return Value{}, err
		}
		def, err := ctx.eval(wl.A2, e)
		if err != nil {
			return Value{}, err
		}
		if !def.IsScalar() {
			return Value{}, errf(wl.A2.epos(), "genarray default must be scalar (non-scalar defaults are outside this subset)")
		}
		switch def.Kind {
		case KindInt:
			return ctx.capture(wl, func() Value {
				return IntValue(array.Genarray(ctx.itp.pool, shape, def.I.ScalarValue(), ctx.intGens(gens, e)...))
			})
		case KindBool:
			return ctx.capture(wl, func() Value {
				return BoolValue(array.Genarray(ctx.itp.pool, shape, def.B.ScalarValue(), ctx.boolGens(gens, e)...))
			})
		default:
			return ctx.capture(wl, func() Value {
				return DoubleValue(array.Genarray(ctx.itp.pool, shape, def.D.ScalarValue(), ctx.dblGens(gens, e)...))
			})
		}

	case GenModarray:
		src, err := ctx.eval(wl.A1, e)
		if err != nil {
			return Value{}, err
		}
		switch src.Kind {
		case KindInt:
			return ctx.capture(wl, func() Value {
				return IntValue(array.Modarray(ctx.itp.pool, src.I, ctx.intGens(gens, e)...))
			})
		case KindBool:
			return ctx.capture(wl, func() Value {
				return BoolValue(array.Modarray(ctx.itp.pool, src.B, ctx.boolGens(gens, e)...))
			})
		default:
			return ctx.capture(wl, func() Value {
				return DoubleValue(array.Modarray(ctx.itp.pool, src.D, ctx.dblGens(gens, e)...))
			})
		}

	case GenFold:
		neutral, err := ctx.eval(wl.A1, e)
		if err != nil {
			return Value{}, err
		}
		if !neutral.IsScalar() {
			return Value{}, errf(wl.A1.epos(), "fold neutral must be scalar")
		}
		switch neutral.Kind {
		case KindInt:
			op := intFoldOp(wl.Op)
			if op == nil {
				return Value{}, errf(wl.At, "fold operator %q not defined on int", wl.Op)
			}
			return ctx.capture(wl, func() Value {
				return IntScalar(array.Fold(ctx.itp.pool, neutral.I.ScalarValue(), op, ctx.intGens(gens, e)...))
			})
		case KindBool:
			op := boolFoldOp(wl.Op)
			if op == nil {
				return Value{}, errf(wl.At, "fold operator %q not defined on bool", wl.Op)
			}
			return ctx.capture(wl, func() Value {
				return BoolScalar(array.Fold(ctx.itp.pool, neutral.B.ScalarValue(), op, ctx.boolGens(gens, e)...))
			})
		default:
			op := dblFoldOp(wl.Op)
			if op == nil {
				return Value{}, errf(wl.At, "fold operator %q not defined on double", wl.Op)
			}
			return ctx.capture(wl, func() Value {
				return DoubleScalar(array.Fold(ctx.itp.pool, neutral.D.ScalarValue(), op, ctx.dblGens(gens, e)...))
			})
		}
	}
	return Value{}, errf(wl.At, "unknown with-loop kind")
}

// capture runs an array-engine invocation, converting body panics (eval
// errors) and shape errors back into ordinary errors at the with-loop site.
func (ctx *evalCtx) capture(wl *WithLoop, f func() Value) (out Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*Error); ok {
				err = e
				return
			}
			if se, ok := r.(*array.ShapeError); ok {
				err = errf(wl.At, "%s", se.Error())
				return
			}
			panic(r)
		}
	}()
	return f(), nil
}

// evalBoundVector evaluates a generator bound to an index vector; scalars
// become 1-element vectors.
func (ctx *evalCtx) evalBoundVector(ex Expr, e *env) ([]int, error) {
	v, err := ctx.eval(ex, e)
	if err != nil {
		return nil, err
	}
	return v.AsIntVector(ex.epos())
}

// bodyScalar evaluates a generator body under the loop variable binding and
// asserts the expected scalar kind, panicking with *Error on failure (the
// array engine re-raises at the with-loop call site).
func (ctx *evalCtx) bodyScalar(g *GenSpec, e *env, iv []int, want ValueKind) Value {
	frame := &env{vars: map[string]Value{
		g.Var: IntVector(append([]int(nil), iv...)...),
	}, parent: e}
	v, err := ctx.eval(g.Body, frame)
	if err != nil {
		panic(err)
	}
	if v.Kind != want || !v.IsScalar() {
		panic(errf(g.Body.epos(), "with-loop body must yield a %s scalar, got %s", want, v.TypeString()))
	}
	return v
}

func (ctx *evalCtx) intGens(gens []genBounds, e *env) []array.Gen[int] {
	out := make([]array.Gen[int], len(gens))
	for i, g := range gens {
		spec := g.spec
		out[i] = array.Gen[int]{Lower: g.lo, Upper: g.hi, ExclLower: !g.incLo, IncUpper: g.incHi,
			Body: func(iv []int) int { return ctx.bodyScalar(spec, e, iv, KindInt).I.ScalarValue() }}
	}
	return out
}

func (ctx *evalCtx) boolGens(gens []genBounds, e *env) []array.Gen[bool] {
	out := make([]array.Gen[bool], len(gens))
	for i, g := range gens {
		spec := g.spec
		out[i] = array.Gen[bool]{Lower: g.lo, Upper: g.hi, ExclLower: !g.incLo, IncUpper: g.incHi,
			Body: func(iv []int) bool { return ctx.bodyScalar(spec, e, iv, KindBool).B.ScalarValue() }}
	}
	return out
}

func (ctx *evalCtx) dblGens(gens []genBounds, e *env) []array.Gen[float64] {
	out := make([]array.Gen[float64], len(gens))
	for i, g := range gens {
		spec := g.spec
		out[i] = array.Gen[float64]{Lower: g.lo, Upper: g.hi, ExclLower: !g.incLo, IncUpper: g.incHi,
			Body: func(iv []int) float64 { return ctx.bodyScalar(spec, e, iv, KindDouble).D.ScalarValue() }}
	}
	return out
}

func intFoldOp(op string) func(int, int) int {
	switch op {
	case "+":
		return func(a, b int) int { return a + b }
	case "*":
		return func(a, b int) int { return a * b }
	case "min":
		return func(a, b int) int {
			if a < b {
				return a
			}
			return b
		}
	case "max":
		return func(a, b int) int {
			if a > b {
				return a
			}
			return b
		}
	}
	return nil
}

func boolFoldOp(op string) func(bool, bool) bool {
	switch op {
	case "&&":
		return func(a, b bool) bool { return a && b }
	case "||":
		return func(a, b bool) bool { return a || b }
	}
	return nil
}

func dblFoldOp(op string) func(float64, float64) float64 {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }
	case "*":
		return func(a, b float64) float64 { return a * b }
	case "min":
		return func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		}
	case "max":
		return func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}
	}
	return nil
}
