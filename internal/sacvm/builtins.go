package sacvm

import (
	"fmt"

	"repro/internal/array"
)

// Builtins: the SaC primitives of §2 (dim, shape, sel) plus conversions
// (toi, tod, tob), scalar min/max, print, and the snet_out interface
// function of §4.  User definitions shadow builtins.
func (ctx *evalCtx) evalBuiltin(call *CallExpr, e *env) ([]Value, error) {
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		v, err := ctx.eval(a, e)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	one := func(v Value) []Value { return []Value{v} }
	need := func(n int) error {
		if len(args) != n {
			return errf(call.At, "%s expects %d arguments, got %d", call.Name, n, len(args))
		}
		return nil
	}
	switch call.Name {
	case "dim":
		if err := need(1); err != nil {
			return nil, err
		}
		return one(IntScalar(args[0].Dim())), nil
	case "shape":
		if err := need(1); err != nil {
			return nil, err
		}
		return one(IntVector(args[0].Shape()...)), nil
	case "sel":
		if err := need(2); err != nil {
			return nil, err
		}
		iv, err := args[0].AsIntVector(call.At)
		if err != nil {
			return nil, err
		}
		v, err := indexSelect(args[1], iv, call.At)
		if err != nil {
			return nil, err
		}
		return one(v), nil
	case "toi":
		if err := need(1); err != nil {
			return nil, err
		}
		switch args[0].Kind {
		case KindInt:
			return one(args[0]), nil
		case KindBool:
			return one(IntValue(array.Map(ctx.itp.pool, args[0].B, func(b bool) int {
				if b {
					return 1
				}
				return 0
			}))), nil
		default:
			return one(IntValue(array.Map(ctx.itp.pool, args[0].D, func(d float64) int {
				return int(d)
			}))), nil
		}
	case "tod":
		if err := need(1); err != nil {
			return nil, err
		}
		switch args[0].Kind {
		case KindDouble:
			return one(args[0]), nil
		case KindInt:
			return one(DoubleValue(array.Map(ctx.itp.pool, args[0].I, func(i int) float64 {
				return float64(i)
			}))), nil
		default:
			return nil, errf(call.At, "tod: cannot convert bool")
		}
	case "tob":
		if err := need(1); err != nil {
			return nil, err
		}
		switch args[0].Kind {
		case KindBool:
			return one(args[0]), nil
		case KindInt:
			return one(BoolValue(array.Map(ctx.itp.pool, args[0].I, func(i int) bool {
				return i != 0
			}))), nil
		default:
			return nil, errf(call.At, "tob: cannot convert double")
		}
	case "min", "max":
		if err := need(2); err != nil {
			return nil, err
		}
		v, err := evalBinop(ctx.itp.pool, call.Name, args[0], args[1], call.At)
		if err != nil {
			return nil, err
		}
		return one(v), nil
	case "take", "drop", "tile":
		if err := need(2); err != nil {
			return nil, err
		}
		n, err := args[1].AsInt(call.At)
		if err != nil {
			return nil, err
		}
		v, err := structural1(call, args[0], n)
		if err != nil {
			return nil, err
		}
		return one(v), nil
	case "rotate", "reverse":
		// rotate(axis, n, array) / reverse(axis, array)
		switch call.Name {
		case "rotate":
			if err := need(3); err != nil {
				return nil, err
			}
			axis, err := args[0].AsInt(call.At)
			if err != nil {
				return nil, err
			}
			n, err := args[1].AsInt(call.At)
			if err != nil {
				return nil, err
			}
			v, err := applyKindwise(call, args[2], func(a Value) Value {
				switch a.Kind {
				case KindInt:
					return IntValue(array.Rotate(a.I, axis, n))
				case KindBool:
					return BoolValue(array.Rotate(a.B, axis, n))
				default:
					return DoubleValue(array.Rotate(a.D, axis, n))
				}
			})
			if err != nil {
				return nil, err
			}
			return one(v), nil
		default:
			if err := need(2); err != nil {
				return nil, err
			}
			axis, err := args[0].AsInt(call.At)
			if err != nil {
				return nil, err
			}
			v, err := applyKindwise(call, args[1], func(a Value) Value {
				switch a.Kind {
				case KindInt:
					return IntValue(array.Reverse(a.I, axis))
				case KindBool:
					return BoolValue(array.Reverse(a.B, axis))
				default:
					return DoubleValue(array.Reverse(a.D, axis))
				}
			})
			if err != nil {
				return nil, err
			}
			return one(v), nil
		}
	case "transpose":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := applyKindwise(call, args[0], func(a Value) Value {
			switch a.Kind {
			case KindInt:
				return IntValue(array.Transpose(ctx.itp.pool, a.I))
			case KindBool:
				return BoolValue(array.Transpose(ctx.itp.pool, a.B))
			default:
				return DoubleValue(array.Transpose(ctx.itp.pool, a.D))
			}
		})
		if err != nil {
			return nil, err
		}
		return one(v), nil
	case "print":
		for _, a := range args {
			if ctx.itp.out != nil {
				fmt.Fprintln(ctx.itp.out, a.String())
			}
		}
		return nil, nil
	case "snet_out":
		if ctx.emit == nil {
			return nil, errf(call.At, "snet_out called outside a box context")
		}
		if len(args) < 1 {
			return nil, errf(call.At, "snet_out needs a variant number")
		}
		variant, err := args[0].AsInt(call.At)
		if err != nil {
			return nil, err
		}
		if err := ctx.emit(variant, args[1:]); err != nil {
			return nil, errf(call.At, "snet_out: %s", err)
		}
		return nil, nil
	}
	return nil, errf(call.At, "undefined function %q", call.Name)
}

// structural1 dispatches take/drop/tile over the value kinds, converting
// shape panics into values the caller reports.
func structural1(call *CallExpr, a Value, n int) (Value, error) {
	return applyKindwise(call, a, func(a Value) Value {
		switch call.Name {
		case "take":
			switch a.Kind {
			case KindInt:
				return IntValue(array.Take(a.I, n))
			case KindBool:
				return BoolValue(array.Take(a.B, n))
			default:
				return DoubleValue(array.Take(a.D, n))
			}
		case "drop":
			switch a.Kind {
			case KindInt:
				return IntValue(array.Drop(a.I, n))
			case KindBool:
				return BoolValue(array.Drop(a.B, n))
			default:
				return DoubleValue(array.Drop(a.D, n))
			}
		default: // tile
			switch a.Kind {
			case KindInt:
				return IntValue(array.Tile(a.I, n))
			case KindBool:
				return BoolValue(array.Tile(a.B, n))
			default:
				return DoubleValue(array.Tile(a.D, n))
			}
		}
	})
}

// applyKindwise runs a structural builtin, converting array shape panics
// into SaC-level errors at the call site.
func applyKindwise(call *CallExpr, a Value, f func(Value) Value) (out Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*array.ShapeError); ok {
				err = errf(call.At, "%s: %s", call.Name, se.Error())
				return
			}
			panic(r)
		}
	}()
	return f(a), nil
}
