package sacvm

// Prelude is the paper's §2 vector concatenation operator, verbatim:
// a with-loop-implemented universally applicable array operation.
const Prelude = `
int[.] (++) (int[.] a, int[.] b)
{
    rshp = shape(a) + shape(b);
    res = with { ([0] <= iv < shape(a)) : a[iv];
                 (shape(a) <= iv < rshp) : b[iv - shape(a)];
    } : genarray( rshp, 0);
    return( res);
}
`

// SudokuGenSaC generalises the paper's solver from the hard-coded 9×9 of
// §3 to any n²×n² board, deriving all bounds from shape(board) — the style
// the paper's §2 recommends ("express generator boundaries in a symbolic
// way").  It demonstrates that the interpreter handles symbolic with-loop
// bounds; the 9×9-specific SudokuSaC below stays verbatim to the paper.
const SudokuGenSaC = Prelude + `
int isqrt( int x)
{
    n = 1;
    while (n*n < x) { n = n + 1; }
    return( n);
}

int[*], bool[*] addNumberGen( int i, int j, int k, int[*] board, bool[*] opts)
{
    N = shape(board)[0];
    n = isqrt(N);
    board[i,j] = k;
    k = k - 1; is = (i/n)*n; js = (j/n)*n;
    opts = with {
        ([i,j,0]   <= iv <= [i,j,N-1])          : false;
        ([i,0,k]   <= iv <= [i,N-1,k])          : false;
        ([0,j,k]   <= iv <= [N-1,j,k])          : false;
        ([is,js,k] <= iv <= [is+n-1,js+n-1,k])  : false;
    } : modarray( opts);
    return( board, opts);
}

bool isCompletedGen( int[*] board)
{
    N = shape(board)[0];
    res = with { ([0,0] <= iv < [N,N]) : board[iv] != 0;
    } : fold( and, true);
    return( res);
}

int countAtGen( bool[*] opts, int i, int j)
{
    N = shape(opts)[0];
    c = with { ([0] <= kv < [N]) : toi( opts[ [i,j] ++ kv ]);
    } : fold( +, 0);
    return( c);
}

bool isStuckGen( int[*] board, bool[*] opts)
{
    N = shape(board)[0];
    stuck = with { ([0,0] <= iv < [N,N]) :
                   (board[iv] == 0) && (countAtGen( opts, iv[0], iv[1]) == 0);
    } : fold( or, false);
    return( stuck);
}

int, int findMinTruesGen( bool[*] opts)
{
    N = shape(opts)[0];
    bi = 0; bj = 0; best = N + 1;
    for( i = 0; i < N; i++) {
        for( j = 0; j < N; j++) {
            c = countAtGen( opts, i, j);
            if ((c > 0) && (c < best)) {
                best = c; bi = i; bj = j;
            }
        }
    }
    return( bi, bj);
}

int[*], bool[*] computeOptsGen( int[*] board)
{
    N = shape(board)[0];
    opts = with { ([0,0,0] <= iv < [N,N,N]) : true;
    } : genarray( [N,N,N], true);
    current = with { ([0,0] <= iv < [N,N]) : 0;
    } : genarray( [N,N], 0);
    for( i = 0; i < N; i++) {
        for( j = 0; j < N; j++) {
            if (board[i,j] != 0) {
                current, opts = addNumberGen( i, j, board[i,j], current, opts);
            }
        }
    }
    return( current, opts);
}

int[*], bool[*] solveGen( int[*] board, bool[*] opts)
{
    N = shape(board)[0];
    if (! isStuckGen( board, opts)
        && ! isCompletedGen( board)) {
        i,j = findMinTruesGen( opts);
        mem_board = board;
        mem_opts = opts;
        for( k=1; (k<=N) && (!isCompletedGen( board)); k++) {
            if( mem_opts[i,j,k-1] ) {
                board, opts = addNumberGen( i, j, k,
                                            mem_board, mem_opts);
                board, opts = solveGen( board, opts);
            }
        }
    }
    return( board, opts);
}
`

// SudokuSaC is the paper's sudoku solver written in the Core SaC subset:
// addNumber and solve follow §3 literally (9×9 boards, 3×3 sub-boards, as
// in the paper's hard-coded bounds); solveOneLevel follows §5/Fig. 1, using
// snet_out to emit one record per viable alternative.  The predicates
// isCompleted/isStuck and the findMinTrues heuristic are expressed as
// fold-with-loops.
const SudokuSaC = Prelude + `
int[*], bool[*] addNumber( int i, int j, int k, int[*] board, bool[*] opts)
{
    board[i,j] = k;
    k = k - 1; is = (i/3)*3; js = (j/3)*3;
    opts = with {
        ([i,j,0]   <= iv <= [i,j,8])        : false;
        ([i,0,k]   <= iv <= [i,8,k])        : false;
        ([0,j,k]   <= iv <= [8,j,k])        : false;
        ([is,js,k] <= iv <= [is+2,js+2,k])  : false;
    } : modarray( opts);
    return( board, opts);
}

bool isCompleted( int[*] board)
{
    res = with { ([0,0] <= iv < [9,9]) : board[iv] != 0;
    } : fold( and, true);
    return( res);
}

int countAt( bool[*] opts, int i, int j)
{
    c = with { ([0] <= kv < [9]) : toi( opts[ [i,j] ++ kv ]);
    } : fold( +, 0);
    return( c);
}

bool isStuck( int[*] board, bool[*] opts)
{
    stuck = with { ([0,0] <= iv < [9,9]) :
                   (board[iv] == 0) && (countAt( opts, iv[0], iv[1]) == 0);
    } : fold( or, false);
    return( stuck);
}

int, int findMinTrues( bool[*] opts)
{
    bi = 0; bj = 0; best = 10;
    for( i = 0; i < 9; i++) {
        for( j = 0; j < 9; j++) {
            c = countAt( opts, i, j);
            if ((c > 0) && (c < best)) {
                best = c; bi = i; bj = j;
            }
        }
    }
    return( bi, bj);
}

int[*], bool[*] computeOpts( int[*] board)
{
    opts = with { ([0,0,0] <= iv < [9,9,9]) : true;
    } : genarray( [9,9,9], true);
    current = with { ([0,0] <= iv < [9,9]) : 0;
    } : genarray( [9,9], 0);
    for( i = 0; i < 9; i++) {
        for( j = 0; j < 9; j++) {
            if (board[i,j] != 0) {
                current, opts = addNumber( i, j, board[i,j], current, opts);
            }
        }
    }
    return( current, opts);
}

int[*], bool[*] solve( int[*] board, bool[*] opts)
{
    if (! isStuck( board, opts)
        && ! isCompleted( board)) {
        i,j = findMinTrues( opts);
        mem_board = board;
        mem_opts = opts;
        for( k=1; (k<=9) && (!isCompleted( board)); k++) {
            if( mem_opts[i,j,k-1] ) {
                board, opts = addNumber( i, j, k,
                                         mem_board, mem_opts);
                board, opts = solve( board, opts);
            }
        }
    }
    return( board, opts);
}

void solveOneLevel( int[*] board, bool[*] opts)
{
    if ( !isStuck( board, opts)
         && !isCompleted( board)) {
        i,j = findMinTrues( opts);
        mem_board = board;
        mem_opts = opts;
        for( k=1; (k<=9) && !isCompleted(board); k++) {
            if( mem_opts[i,j,k-1] ) {
                board, opts = addNumber( i, j, k,
                                         mem_board, mem_opts);
                /* Variant order follows the box signature
                   (board, opts) | (board, <done>): completion emits
                   the <done> variant.  The paper's Fig. 1 listing has
                   the two snet_out variant numbers swapped relative
                   to its own prose and signature — see DESIGN.md. */
                if ( isCompleted( board)) {
                    snet_out( 2, board, 1);
                } else {
                    snet_out( 1, board, opts);
                }
            }
        }
    }
    return;
}
`
