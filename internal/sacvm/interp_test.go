package sacvm

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

var tp = sched.New(1)
var tp2 = sched.NewWithGrain(2, 8)

// run evaluates `main` of a small program and returns its results.
func run(t *testing.T, src string, args ...Value) []Value {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	itp := New(prog, tp)
	out, err := itp.Call("main", args, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return out
}

func wantInts(t *testing.T, v Value, want ...int) {
	t.Helper()
	got, err := v.AsIntVector(Pos{})
	if err != nil {
		t.Fatalf("%s: %v", v, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// --- §2 examples, verbatim ---

func TestPaperWithLoop42(t *testing.T) {
	out := run(t, `
		int[*] main()
		{
			res = with { ([0,0] <= iv < [3,5]) : 42;
			} : genarray( [3,5], 0);
			return( res);
		}`)
	v := out[0]
	if v.Dim() != 2 || v.Shape()[0] != 3 || v.Shape()[1] != 5 {
		t.Fatalf("shape = %v", v.Shape())
	}
	for _, x := range v.I.Data() {
		if x != 42 {
			t.Fatalf("data = %v", v.I.Data())
		}
	}
}

func TestPaperWithLoopIota(t *testing.T) {
	out := run(t, `
		int[*] main()
		{
			res = with { ([0] <= iv < [5]) : iv[0];
			} : genarray( [5], 0);
			return( res);
		}`)
	wantInts(t, out[0], 0, 1, 2, 3, 4)
}

func TestPaperWithLoopPartial(t *testing.T) {
	out := run(t, `
		int[*] main()
		{
			res = with { ([1] <= iv < [4]) : 42;
			} : genarray( [5], 0);
			return( res);
		}`)
	wantInts(t, out[0], 0, 42, 42, 42, 0)
}

func TestPaperWithLoopOverlap(t *testing.T) {
	out := run(t, `
		int[*] main()
		{
			res = with { ([1] <= iv < [4]) : 1;
			             ([3] <= iv < [5]) : 2;
			} : genarray( [6], 0);
			return( res);
		}`)
	wantInts(t, out[0], 0, 1, 1, 2, 2, 0)
}

func TestPaperWithLoopModarray(t *testing.T) {
	out := run(t, `
		int[*] main()
		{
			A = with { ([1] <= iv < [4]) : 1;
			           ([3] <= iv < [5]) : 2;
			} : genarray( [6], 0);
			res = with { ([0] <= iv < [3]) : 3;
			} : modarray( A);
			return( res);
		}`)
	wantInts(t, out[0], 3, 3, 3, 2, 2, 0)
}

func TestPaperConcatFunction(t *testing.T) {
	out := run(t, Prelude+`
		int[*] main()
		{
			a = [1,2,3];
			b = [4,5];
			return( a ++ b);
		}`)
	wantInts(t, out[0], 1, 2, 3, 4, 5)
}

// --- language semantics ---

func TestScalarsAreRankZero(t *testing.T) {
	out := run(t, `
		int main() {
			x = 42;
			return( dim(x));
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 0 {
		t.Fatalf("dim(scalar) = %d", n)
	}
}

func TestShapeAndDim(t *testing.T) {
	out := run(t, Prelude+`
		int[*] main() {
			a = with { ([0,0] <= iv < [3,7]) : 1; } : genarray( [3,7], 0);
			return( shape(a) ++ [dim(a)]);
		}`)
	wantInts(t, out[0], 3, 7, 2)
}

func TestMultiValueReturnsAndAssignment(t *testing.T) {
	out := run(t, `
		int, int swap( int a, int b) { return( b, a); }
		int main() {
			x, y = swap( 3, 7);
			return( x*10 + y);
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 73 {
		t.Fatalf("got %d", n)
	}
}

func TestIndexedAssignIsFunctionalUpdate(t *testing.T) {
	out := run(t, Prelude+`
		int[*] main() {
			a = [1,2,3];
			b = a;
			a[1] = 99;
			return( a ++ b);
		}`)
	wantInts(t, out[0], 1, 99, 3, 1, 2, 3)
}

func TestVectorIndexSelection(t *testing.T) {
	out := run(t, `
		int main() {
			m = with { ([0,0] <= iv < [3,3]) : iv[0]*10 + iv[1]; } : genarray([3,3], 0);
			i = [1,2];
			return( m[i] + m[2,1]);
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 12+21 {
		t.Fatalf("got %d", n)
	}
}

func TestPrefixSelectionYieldsSubarray(t *testing.T) {
	out := run(t, `
		int[*] main() {
			m = with { ([0,0] <= iv < [2,3]) : iv[0]*10 + iv[1]; } : genarray([2,3], 0);
			return( m[1]);
		}`)
	wantInts(t, out[0], 10, 11, 12)
}

func TestForLoopAndWhile(t *testing.T) {
	out := run(t, `
		int main() {
			sum = 0;
			for( i = 0; i < 10; i++) { sum = sum + i; }
			n = 0;
			while (n < 5) { n = n + 1; }
			return( sum*100 + n);
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 4505 {
		t.Fatalf("got %d", n)
	}
}

func TestIfElseChains(t *testing.T) {
	out := run(t, `
		int classify( int x) {
			r = 0;
			if (x < 0) { r = -1; }
			else if (x == 0) { r = 0; }
			else { r = 1; }
			return( r);
		}
		int main() { return( classify(-5)*100 + classify(0)*10 + classify(9)); }`)
	if n, _ := out[0].AsInt(Pos{}); n != -99 {
		t.Fatalf("got %d", n)
	}
}

func TestRecursion(t *testing.T) {
	out := run(t, `
		int fib( int n) {
			r = n;
			if (n > 1) { r = fib(n-1) + fib(n-2); }
			return( r);
		}
		int main() { return( fib(15)); }`)
	if n, _ := out[0].AsInt(Pos{}); n != 610 {
		t.Fatalf("fib(15) = %d", n)
	}
}

func TestFoldLoops(t *testing.T) {
	out := run(t, `
		int main() {
			s = with { ([0] <= iv < [100]) : iv[0]; } : fold( +, 0);
			return( s);
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 4950 {
		t.Fatalf("fold sum = %d", n)
	}
	out = run(t, `
		bool main() {
			all = with { ([0] <= iv < [5]) : iv[0] < 5; } : fold( and, true);
			any = with { ([0] <= iv < [5]) : iv[0] == 9; } : fold( or, false);
			return( all && !any);
		}`)
	if b, _ := out[0].AsBool(Pos{}); !b {
		t.Fatal("bool folds broken")
	}
}

func TestInclusiveGeneratorBounds(t *testing.T) {
	out := run(t, `
		int[*] main() {
			res = with { ([1] <= iv <= [3]) : 7; } : genarray( [5], 0);
			return( res);
		}`)
	wantInts(t, out[0], 0, 7, 7, 7, 0)
}

func TestElementwiseArithmeticBroadcast(t *testing.T) {
	out := run(t, `
		int[*] main() {
			a = [1,2,3];
			return( a * 2 + [10,10,10]);
		}`)
	wantInts(t, out[0], 12, 14, 16)
}

func TestDoublesAndConversions(t *testing.T) {
	out := run(t, `
		double main() {
			x = 1.5;
			y = tod(2);
			return( x * y + 1.0);
		}`)
	if out[0].Kind != KindDouble || out[0].D.ScalarValue() != 4.0 {
		t.Fatalf("got %v", out[0])
	}
}

func TestBuiltinsToiTobSelMinMax(t *testing.T) {
	out := run(t, `
		int main() {
			a = toi(true) + toi(false);
			b = toi( tob(7));
			c = sel( [1], [10,20,30]);
			return( a*1000 + b*100 + c + min(1,2) + max(1,2));
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 1000+100+20+1+2 {
		t.Fatalf("got %d", n)
	}
}

func TestParallelPoolEquivalence(t *testing.T) {
	src := `
		int[*] main() {
			res = with { ([0,0] <= iv < [20,20]) : iv[0]*iv[1]; } : genarray( [20,20], 0);
			return( res);
		}`
	prog := MustParse(src)
	a, err := New(prog, tp).Call("main", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(prog, tp2).Call("main", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a[0].Equal(b[0]) {
		t.Fatal("pool width changed semantics")
	}
}

// --- error reporting ---

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return( x); }`, "undefined variable"},
		{`int main() { return( nofun(1)); }`, "undefined function"},
		{`int main() { x = 1/0; return( x); }`, "division by zero"},
		{`int main() { a = [1,2]; return( a[5]); }`, "out of bounds"},
		{`int main() { a = [1,2] + [1,2,3]; return( 0); }`, "shape mismatch"},
		{`int f() { x = 1; }  int main() { return( f()); }`, "missing return"},
		{`int main() { snet_out(1, 2); return( 0); }`, "outside a box"},
		{`int main() { if (3) { } return( 0); }`, "expected bool"},
		{`int main() { x, y = 1; return( x); }`, "1 values to 2 targets"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%q: parse error %v", c.src, err)
		}
		_, err = New(prog, tp).Call("main", nil, nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main( { }",
		"int main() { return( 1) }",             // missing semicolon
		"int main() { x = ; }",                  // missing expr
		"main() { }",                            // missing type
		"int main() { with { } : genarray(); }", // bad with
		"int main() { for(;;) { } }",            // missing cond
		"int main() { @ }",                      // lex error
		"int main() { /* }",                     // unterminated comment
		"int main() { return( with { ([0] <= iv < [3]) : 1; } : blah( x)); }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q: want parse error", src)
		}
	}
}

func TestSnetOutEmission(t *testing.T) {
	prog := MustParse(`
		void main( int n) {
			for( i = 0; i < n; i++) {
				snet_out( 1, i*i);
			}
			return;
		}`)
	var got []int
	_, err := New(prog, tp).Call("main", []Value{IntScalar(4)}, func(variant int, vals []Value) error {
		if variant != 1 || len(vals) != 1 {
			t.Fatalf("variant=%d vals=%v", variant, vals)
		}
		n, _ := vals[0].AsInt(Pos{})
		got = append(got, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != 9 {
		t.Fatalf("got %v", got)
	}
}
