package sacvm

// Program is a parsed SaC module: an ordered set of function definitions.
type Program struct {
	Funs  map[string]*FunDecl
	Order []string
}

// TypeExpr is a parsed type annotation such as int, bool[.,.] or int[*].
// The interpreter is dynamically checked; annotations are kept for
// documentation and rank assertions where fully static.
type TypeExpr struct {
	Base string // int, bool, double, void
	// Rank: -1 unknown ([*]), otherwise the declared rank; 0 = scalar.
	Rank int
}

// FunDecl is a (possibly multi-value) function definition.
type FunDecl struct {
	Name    string
	Returns []TypeExpr
	Params  []Param
	Body    []Stmt
	At      Pos
}

// Param is one formal parameter.
type Param struct {
	Type TypeExpr
	Name string
}

// Stmt is a statement.
type Stmt interface{ pos() Pos }

// AssignStmt is targets = exprs;  Multi-assignment binds the results of a
// multi-value call: i,j = findFirst(0, board);
type AssignStmt struct {
	Targets []string
	Exprs   []Expr
	At      Pos
}

// IndexAssignStmt is the functional array update board[i,j] = k;
type IndexAssignStmt struct {
	Name  string
	Index []Expr
	Value Expr
	At    Pos
}

// IfStmt is if (cond) { } [else { } | else if ...].
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil or a single nested IfStmt for else-if
	At   Pos
}

// ForStmt is for (init; cond; post) { }.
type ForStmt struct {
	Init Stmt // nil or AssignStmt
	Cond Expr
	Post Stmt // nil or AssignStmt
	Body []Stmt
	At   Pos
}

// WhileStmt is while (cond) { }.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	At   Pos
}

// ReturnStmt is return( e1, e2 ); or return;
type ReturnStmt struct {
	Exprs []Expr
	At    Pos
}

// ExprStmt is a call used for effect, e.g. snet_out(1, board, opts);
type ExprStmt struct {
	X  Expr
	At Pos
}

func (s *AssignStmt) pos() Pos      { return s.At }
func (s *IndexAssignStmt) pos() Pos { return s.At }
func (s *IfStmt) pos() Pos          { return s.At }
func (s *ForStmt) pos() Pos         { return s.At }
func (s *WhileStmt) pos() Pos       { return s.At }
func (s *ReturnStmt) pos() Pos      { return s.At }
func (s *ExprStmt) pos() Pos        { return s.At }

// Expr is an expression.
type Expr interface{ epos() Pos }

type IntLit struct {
	V  int
	At Pos
}

type DoubleLit struct {
	V  float64
	At Pos
}

type BoolLit struct {
	V  bool
	At Pos
}

type VarRef struct {
	Name string
	At   Pos
}

// ArrayLit is [e1, e2, ...]; elements must be scalars or same-shaped arrays
// (nested literals build higher ranks).
type ArrayLit struct {
	Elems []Expr
	At    Pos
}

// CallExpr is f(args); also carries user-defined ++ as name "++".
type CallExpr struct {
	Name string
	Args []Expr
	At   Pos
}

// IndexExpr is x[e1, e2] or x[iv] with a vector index.
type IndexExpr struct {
	X   Expr
	Idx []Expr
	At  Pos
}

type UnaryExpr struct {
	Op byte // '-' or '!'
	X  Expr
	At Pos
}

type BinExpr struct {
	Op   string
	X, Y Expr
	At   Pos
}

// GenKind distinguishes the with-loop flavours.
type GenKind int

const (
	GenGenarray GenKind = iota
	GenModarray
	GenFold
)

// GenSpec is one generator (lower <= var < upper) : body, with optional
// inclusive bounds.
type GenSpec struct {
	Lower     Expr
	LowerIncl bool
	Var       string
	Upper     Expr
	UpperIncl bool
	Body      Expr
	At        Pos
}

// WithLoop is the with-loop comprehension:
//
//	with { gen; gen; ... } : genarray(shape, default)
//	with { gen; ... }      : modarray(array)
//	with { gen; ... }      : fold(op, neutral)
type WithLoop struct {
	Gens []GenSpec
	Kind GenKind
	A1   Expr   // shape / source array / neutral
	A2   Expr   // default / nil / nil
	Op   string // fold operator: + * && || min max
	At   Pos
}

func (e *IntLit) epos() Pos    { return e.At }
func (e *DoubleLit) epos() Pos { return e.At }
func (e *BoolLit) epos() Pos   { return e.At }
func (e *VarRef) epos() Pos    { return e.At }
func (e *ArrayLit) epos() Pos  { return e.At }
func (e *CallExpr) epos() Pos  { return e.At }
func (e *IndexExpr) epos() Pos { return e.At }
func (e *UnaryExpr) epos() Pos { return e.At }
func (e *BinExpr) epos() Pos   { return e.At }
func (e *WithLoop) epos() Pos  { return e.At }
