package sacvm

import "strconv"

// Parse parses a SaC module (a sequence of function definitions).
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Funs: map[string]*FunDecl{}}
	for !p.at(tEOF) {
		fd, err := p.parseFun()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funs[fd.Name]; dup {
			return nil, errf(fd.At, "duplicate function %q", fd.Name)
		}
		prog.Funs[fd.Name] = fd
		prog.Order = append(prog.Order, fd.Name)
	}
	return prog, nil
}

// MustParse is Parse panicking on error (for embedded programs).
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok { return p.toks[p.i] }
func (p *parser) peekAt(n int) tok {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}
func (p *parser) take() tok      { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k kind) bool { return p.toks[p.i].kind == k }
func (p *parser) atKw(kw string) bool {
	return p.at(tIdent) && p.peek().text == kw
}

func (p *parser) accept(k kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k kind) (tok, error) {
	if !p.at(k) {
		return tok{}, errf(p.peek().pos, "expected %v, found %v", k, p.peek().kind)
	}
	return p.take(), nil
}

var baseTypes = map[string]bool{"int": true, "bool": true, "double": true, "void": true}

func (p *parser) atType() bool { return p.at(tIdent) && baseTypes[p.peek().text] }

// parseType parses int, bool[.], double[*], int[3,7] etc.
func (p *parser) parseType() (TypeExpr, error) {
	if !p.atType() {
		return TypeExpr{}, errf(p.peek().pos, "expected type, found %v", p.peek().kind)
	}
	te := TypeExpr{Base: p.take().text, Rank: 0}
	if !p.accept(tLBrack) {
		return te, nil
	}
	if p.accept(tRBrack) {
		return te, nil // int[] — scalar notation
	}
	rank := 0
	for {
		switch {
		case p.at(tStar):
			p.take()
			te.Rank = -1
		case p.at(tDot): // int[.,.]: known rank, unknown shape
			p.take()
			rank++
		case p.at(tInt): // int[3,7]: fixed shape
			p.take()
			rank++
		default:
			return te, errf(p.peek().pos, "expected '*', '.' or integer in type dimensions")
		}
		if p.accept(tComma) {
			continue
		}
		if _, err := p.expect(tRBrack); err != nil {
			return te, err
		}
		if te.Rank >= 0 {
			te.Rank = rank
		}
		return te, nil
	}
}

// parseFun parses: type (',' type)* name '(' params ')' '{' body '}'.
// The name may be the operator form (++).
func (p *parser) parseFun() (*FunDecl, error) {
	at := p.peek().pos
	var rets []TypeExpr
	for {
		te, err := p.parseType()
		if err != nil {
			return nil, err
		}
		rets = append(rets, te)
		if p.accept(tComma) {
			continue
		}
		break
	}
	var name string
	switch {
	case p.at(tIdent):
		name = p.take().text
	case p.at(tLParen) && p.peekAt(1).kind == tPlusPlus && p.peekAt(2).kind == tRParen:
		p.take()
		p.take()
		p.take()
		name = "++"
	default:
		return nil, errf(p.peek().pos, "expected function name, found %v", p.peek().kind)
	}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var params []Param
	if !p.accept(tRParen) {
		for {
			te, err := p.parseType()
			if err != nil {
				return nil, err
			}
			id, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			params = append(params, Param{Type: te, Name: id.text})
			if p.accept(tComma) {
				continue
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			break
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FunDecl{Name: name, Returns: rets, Params: params, Body: body, At: at}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept(tRBrace) {
		if p.at(tEOF) {
			return nil, errf(p.peek().pos, "unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	at := p.peek().pos
	switch {
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("for"):
		return p.parseFor()
	case p.atKw("while"):
		p.take()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, At: at}, nil
	case p.atKw("return"):
		p.take()
		rs := &ReturnStmt{At: at}
		if p.accept(tSemi) {
			return rs, nil
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		if !p.accept(tRParen) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				rs.Exprs = append(rs.Exprs, e)
				if p.accept(tComma) {
					continue
				}
				if _, err := p.expect(tRParen); err != nil {
					return nil, err
				}
				break
			}
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return rs, nil
	}
	// Assignment, index assignment or call statement — all start with an
	// identifier.
	if !p.at(tIdent) {
		return nil, errf(at, "expected statement, found %v", p.peek().kind)
	}
	// call statement: IDENT '(' ... ')' ';'
	if p.peekAt(1).kind == tLParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, At: at}, nil
	}
	// index assignment: IDENT '[' idx ']' '=' expr ';'
	if p.peekAt(1).kind == tLBrack {
		name := p.take().text
		p.take() // '['
		var idx []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			idx = append(idx, e)
			if p.accept(tComma) {
				continue
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			break
		}
		if _, err := p.expect(tAssign); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &IndexAssignStmt{Name: name, Index: idx, Value: v, At: at}, nil
	}
	// (multi-)assignment: IDENT (',' IDENT)* '=' exprs ';'
	var targets []string
	targets = append(targets, p.take().text)
	for p.accept(tComma) {
		id, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		targets = append(targets, id.text)
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	var exprs []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if p.accept(tComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{Targets: targets, Exprs: exprs, At: at}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	at := p.take().pos // "if"
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, At: at}
	if p.acceptKw("else") {
		if p.atKw("if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	at := p.take().pos // "for"
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{At: at}
	if !p.at(tSemi) {
		init, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.Cond = cond
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	if !p.at(tRParen) {
		post, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseSimpleAssign parses the for-header forms `k = expr` and `k++`.
func (p *parser) parseSimpleAssign() (Stmt, error) {
	at := p.peek().pos
	id, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if p.accept(tPlusPlus) {
		return &AssignStmt{Targets: []string{id.text},
			Exprs: []Expr{&BinExpr{Op: "+", X: &VarRef{Name: id.text, At: at},
				Y: &IntLit{V: 1, At: at}, At: at}}, At: at}, nil
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Targets: []string{id.text}, Exprs: []Expr{e}, At: at}, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tOr) {
		at := p.take().pos
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: "||", X: x, Y: y, At: at}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(tAnd) {
		at := p.take().pos
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: "&&", X: x, Y: y, At: at}
	}
	return x, nil
}

var cmpTok = map[kind]string{tEq: "==", tNeq: "!=", tLt: "<", tLe: "<=", tGt: ">", tGe: ">="}

func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpTok[p.peek().kind]
		if !ok {
			return x, nil
		}
		at := p.take().pos
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op, X: x, Y: y, At: at}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tPlus:
			op = "+"
		case tMinus:
			op = "-"
		case tPlusPlus:
			op = "++"
		default:
			return x, nil
		}
		at := p.take().pos
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if op == "++" {
			x = &CallExpr{Name: "++", Args: []Expr{x, y}, At: at}
		} else {
			x = &BinExpr{Op: op, X: x, Y: y, At: at}
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tStar:
			op = "*"
		case tSlash:
			op = "/"
		case tPercent:
			op = "%"
		default:
			return x, nil
		}
		at := p.take().pos
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinExpr{Op: op, X: x, Y: y, At: at}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tMinus:
		at := p.take().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '-', X: x, At: at}, nil
	case tNot:
		at := p.take().pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '!', X: x, At: at}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tLBrack) {
		at := p.take().pos
		var idx []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			idx = append(idx, e)
			if p.accept(tComma) {
				continue
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			break
		}
		x = &IndexExpr{X: x, Idx: idx, At: at}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	at := p.peek().pos
	switch {
	case p.at(tInt):
		n, _ := strconv.Atoi(p.take().text)
		return &IntLit{V: n, At: at}, nil
	case p.at(tDouble):
		f, _ := strconv.ParseFloat(p.take().text, 64)
		return &DoubleLit{V: f, At: at}, nil
	case p.atKw("true"):
		p.take()
		return &BoolLit{V: true, At: at}, nil
	case p.atKw("false"):
		p.take()
		return &BoolLit{V: false, At: at}, nil
	case p.atKw("with"):
		return p.parseWith()
	case p.at(tIdent):
		name := p.take().text
		if p.at(tLParen) {
			p.take()
			var args []Expr
			if !p.accept(tRParen) {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, e)
					if p.accept(tComma) {
						continue
					}
					if _, err := p.expect(tRParen); err != nil {
						return nil, err
					}
					break
				}
			}
			return &CallExpr{Name: name, Args: args, At: at}, nil
		}
		return &VarRef{Name: name, At: at}, nil
	case p.at(tLParen):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tLBrack):
		p.take()
		lit := &ArrayLit{At: at}
		if p.accept(tRBrack) {
			return lit, nil
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lit.Elems = append(lit.Elems, e)
			if p.accept(tComma) {
				continue
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			return lit, nil
		}
	}
	return nil, errf(at, "expected expression, found %v", p.peek().kind)
}

// parseWith parses
//
//	with { (lb <= iv <= ub) : expr; ... } : genarray(shape, def)
//	                                      | modarray(array)
//	                                      | fold(op, neutral)
func (p *parser) parseWith() (Expr, error) {
	at := p.take().pos // "with"
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	wl := &WithLoop{At: at}
	for !p.accept(tRBrace) {
		g, err := p.parseGenerator()
		if err != nil {
			return nil, err
		}
		wl.Gens = append(wl.Gens, g)
	}
	if _, err := p.expect(tColon); err != nil {
		return nil, err
	}
	kw, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	switch kw.text {
	case "genarray":
		wl.Kind = GenGenarray
		if wl.A1, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		if wl.A2, err = p.parseExpr(); err != nil {
			return nil, err
		}
	case "modarray":
		wl.Kind = GenModarray
		if wl.A1, err = p.parseExpr(); err != nil {
			return nil, err
		}
	case "fold":
		wl.Kind = GenFold
		op, err := p.parseFoldOp()
		if err != nil {
			return nil, err
		}
		wl.Op = op
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		if wl.A1, err = p.parseExpr(); err != nil {
			return nil, err
		}
	default:
		return nil, errf(kw.pos, "expected genarray, modarray or fold, found %q", kw.text)
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return wl, nil
}

func (p *parser) parseFoldOp() (string, error) {
	switch p.peek().kind {
	case tPlus:
		p.take()
		return "+", nil
	case tStar:
		p.take()
		return "*", nil
	case tAnd:
		p.take()
		return "&&", nil
	case tOr:
		p.take()
		return "||", nil
	case tIdent:
		name := p.take().text
		switch name {
		case "add":
			return "+", nil
		case "mul":
			return "*", nil
		case "and":
			return "&&", nil
		case "or":
			return "||", nil
		case "min", "max":
			return name, nil
		}
		return "", errf(p.peekAt(-1).pos, "unknown fold operator %q", name)
	}
	return "", errf(p.peek().pos, "expected fold operator")
}

// parseGenerator parses ( lower <= var <|<= upper ) : expr ;
func (p *parser) parseGenerator() (GenSpec, error) {
	at := p.peek().pos
	if _, err := p.expect(tLParen); err != nil {
		return GenSpec{}, err
	}
	// Bounds are additive expressions: parsing at full precedence would
	// swallow the '<='/'<' relating bound and loop variable.
	lower, err := p.parseAdd()
	if err != nil {
		return GenSpec{}, err
	}
	g := GenSpec{Lower: lower, At: at}
	switch {
	case p.accept(tLe):
		g.LowerIncl = true
	case p.accept(tLt):
		g.LowerIncl = false
	default:
		return GenSpec{}, errf(p.peek().pos, "expected '<=' or '<' after generator lower bound")
	}
	id, err := p.expect(tIdent)
	if err != nil {
		return GenSpec{}, err
	}
	g.Var = id.text
	switch {
	case p.accept(tLe):
		g.UpperIncl = true
	case p.accept(tLt):
		g.UpperIncl = false
	default:
		return GenSpec{}, errf(p.peek().pos, "expected '<=' or '<' after generator variable")
	}
	upper, err := p.parseAdd()
	if err != nil {
		return GenSpec{}, err
	}
	g.Upper = upper
	if _, err := p.expect(tRParen); err != nil {
		return GenSpec{}, err
	}
	if _, err := p.expect(tColon); err != nil {
		return GenSpec{}, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return GenSpec{}, err
	}
	g.Body = body
	if _, err := p.expect(tSemi); err != nil {
		return GenSpec{}, err
	}
	return g, nil
}
