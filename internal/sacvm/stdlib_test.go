package sacvm

import (
	"testing"

	"repro/internal/array"
)

func TestStructuralBuiltins(t *testing.T) {
	out := run(t, Prelude+`
		int[*] main() {
			v = [1,2,3,4,5];
			a = take( v, 2);
			b = drop( v, 3);
			return( a ++ b);
		}`)
	wantInts(t, out[0], 1, 2, 4, 5)
}

func TestRotateReverseBuiltins(t *testing.T) {
	out := run(t, Prelude+`
		int[*] main() {
			v = [1,2,3,4];
			return( rotate( 0, 1, v) ++ reverse( 0, v));
		}`)
	wantInts(t, out[0], 4, 1, 2, 3, 4, 3, 2, 1)
}

func TestTransposeBuiltin(t *testing.T) {
	out := run(t, `
		int main() {
			m = with { ([0,0] <= iv < [2,3]) : iv[0]*10 + iv[1]; } : genarray([2,3], 0);
			mt = transpose( m);
			return( mt[2,1] * 100 + shape(mt)[0]);
		}`)
	if n, _ := out[0].AsInt(Pos{}); n != 12*100+3 {
		t.Fatalf("got %d", n)
	}
}

func TestTileBuiltin(t *testing.T) {
	out := run(t, `
		int[*] main() { return( tile( [7,8], 2)); }`)
	wantInts(t, out[0], 7, 8, 7, 8)
}

func TestStructuralBuiltinErrors(t *testing.T) {
	cases := []string{
		`int[*] main() { return( take( [1,2], 5)); }`,
		`int[*] main() { return( reverse( 3, [1,2])); }`,
		`int[*] main() { return( transpose( [1,2])); }`,
	}
	for _, src := range cases {
		prog := MustParse(src)
		if _, err := New(prog, tp).Call("main", nil, nil); err == nil {
			t.Fatalf("%q: want error", src)
		}
	}
}

// The generalised solver works on 4×4 boards — symbolic with-loop bounds
// derived from shape(board).
func TestGeneralizedSolver4x4(t *testing.T) {
	prog := MustParse(SudokuGenSaC)
	itp := New(prog, tp)
	// A 4×4 puzzle: first row given, rest empty.
	board := IntValue(mustBoard4())
	res, err := itp.Call("computeOptsGen", []Value{board}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := itp.Call("solveGen", []Value{res[0], res[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done, err := itp.Call("isCompletedGen", []Value{res2[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := done[0].AsBool(Pos{}); !b {
		t.Fatalf("generalised solver failed:\n%s", res2[0])
	}
	// Every row must contain 1..4 exactly once.
	sums := map[int]bool{}
	for i := 0; i < 4; i++ {
		rowSum := 0
		for j := 0; j < 4; j++ {
			rowSum += res2[0].I.At(i, j)
		}
		if rowSum != 10 {
			t.Fatalf("row %d sums to %d", i, rowSum)
		}
		sums[rowSum] = true
	}
}

func TestGeneralizedMatches9x9Specific(t *testing.T) {
	gen := New(MustParse(SudokuGenSaC), tp)
	spec := New(MustParse(SudokuSaC), tp)
	board := IntValue(mustBoard9())
	g1, err := gen.Call("computeOptsGen", []Value{board}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := spec.Call("computeOpts", []Value{board}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g1[1].Equal(s1[1]) {
		t.Fatal("generalised and 9×9-specific computeOpts disagree")
	}
	g2, err := gen.Call("solveGen", []Value{g1[0], g1[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.Call("solve", []Value{s1[0], s1[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g2[0].Equal(s2[0]) {
		t.Fatal("generalised and 9×9-specific solve disagree")
	}
}

func TestIsqrtHelper(t *testing.T) {
	itp := New(MustParse(SudokuGenSaC), tp)
	for _, c := range []struct{ x, want int }{{1, 1}, {4, 2}, {9, 3}, {16, 4}, {15, 4}} {
		out, err := itp.Call("isqrt", []Value{IntScalar(c.x)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := out[0].AsInt(Pos{}); n != c.want {
			t.Fatalf("isqrt(%d) = %d, want %d", c.x, n, c.want)
		}
	}
}

func mustBoard4() *array.Array[int] {
	cells := []int{
		1, 2, 3, 4,
		0, 0, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 0,
	}
	return array.FromSlice([]int{4, 4}, cells)
}

func mustBoard9() *array.Array[int] {
	// The classic easy puzzle used across the repository.
	s := "530070000600195000098000060800060003400803001700020006060000280000419005000080079"
	cells := make([]int, 81)
	for i, r := range s {
		cells[i] = int(r - '0')
	}
	return array.FromSlice([]int{9, 9}, cells)
}

func TestDoubleStructuralOps(t *testing.T) {
	out := run(t, `
		double main() {
			v = [1.5, 2.5, 3.5];
			w = reverse( 0, v);
			return( w[0] + take( v, 1)[0]);
		}`)
	if out[0].D.ScalarValue() != 5.0 {
		t.Fatalf("got %v", out[0])
	}
}

func TestBoolStructuralOps(t *testing.T) {
	out := run(t, `
		bool main() {
			v = [true, false, true];
			return( reverse( 0, v)[0] == true && drop( v, 2)[0]);
		}`)
	if b, _ := out[0].AsBool(Pos{}); !b {
		t.Fatalf("got %v", out[0])
	}
}
