package sacvm

import (
	"fmt"

	"repro/internal/array"
)

// ValueKind is the element type of a SaC value.
type ValueKind int

const (
	KindInt ValueKind = iota
	KindBool
	KindDouble
)

func (k ValueKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	default:
		return "double"
	}
}

// Value is a SaC value: an n-dimensional array of int, bool or double.
// Scalars are rank-0 arrays (§2).  Exactly one of I, B, D is non-nil.
type Value struct {
	Kind ValueKind
	I    *array.Array[int]
	B    *array.Array[bool]
	D    *array.Array[float64]
}

// IntValue wraps an int array.
func IntValue(a *array.Array[int]) Value { return Value{Kind: KindInt, I: a} }

// BoolValue wraps a bool array.
func BoolValue(a *array.Array[bool]) Value { return Value{Kind: KindBool, B: a} }

// DoubleValue wraps a float64 array.
func DoubleValue(a *array.Array[float64]) Value { return Value{Kind: KindDouble, D: a} }

// IntScalar returns a rank-0 int value.
func IntScalar(v int) Value { return IntValue(array.Scalar(v)) }

// BoolScalar returns a rank-0 bool value.
func BoolScalar(v bool) Value { return BoolValue(array.Scalar(v)) }

// DoubleScalar returns a rank-0 double value.
func DoubleScalar(v float64) Value { return DoubleValue(array.Scalar(v)) }

// IntVector returns a rank-1 int value.
func IntVector(vs ...int) Value { return IntValue(array.Vector(vs...)) }

// Shape returns the value's shape vector.
func (v Value) Shape() []int {
	switch v.Kind {
	case KindInt:
		return v.I.Shape()
	case KindBool:
		return v.B.Shape()
	default:
		return v.D.Shape()
	}
}

// Dim returns the value's rank.
func (v Value) Dim() int {
	switch v.Kind {
	case KindInt:
		return v.I.Dim()
	case KindBool:
		return v.B.Dim()
	default:
		return v.D.Dim()
	}
}

// Size returns the element count.
func (v Value) Size() int {
	switch v.Kind {
	case KindInt:
		return v.I.Size()
	case KindBool:
		return v.B.Size()
	default:
		return v.D.Size()
	}
}

// IsScalar reports rank 0.
func (v Value) IsScalar() bool { return v.Dim() == 0 }

// AsInt returns the value as an int scalar.
func (v Value) AsInt(at Pos) (int, error) {
	if v.Kind != KindInt || !v.IsScalar() {
		return 0, errf(at, "expected int scalar, got %s", v.TypeString())
	}
	return v.I.ScalarValue(), nil
}

// AsBool returns the value as a bool scalar.
func (v Value) AsBool(at Pos) (bool, error) {
	if v.Kind != KindBool || !v.IsScalar() {
		return false, errf(at, "expected bool scalar, got %s", v.TypeString())
	}
	return v.B.ScalarValue(), nil
}

// AsIntVector returns the value as a flat []int; scalars become 1-vectors.
func (v Value) AsIntVector(at Pos) ([]int, error) {
	if v.Kind != KindInt {
		return nil, errf(at, "expected int vector, got %s", v.TypeString())
	}
	if v.I.Dim() > 1 {
		return nil, errf(at, "expected int vector, got rank-%d array", v.I.Dim())
	}
	return append([]int(nil), v.I.Data()...), nil
}

// TypeString renders the value's type, e.g. int[3,7] or bool.
func (v Value) TypeString() string {
	s := v.Shape()
	if len(s) == 0 {
		return v.Kind.String()
	}
	return fmt.Sprintf("%s%v", v.Kind, s)
}

// Equal reports deep equality (kind, shape, elements).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return array.Equal(v.I, w.I)
	case KindBool:
		return array.Equal(v.B, w.B)
	default:
		return array.Equal(v.D, w.D)
	}
}

// String renders the value like SaC output.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return v.I.String()
	case KindBool:
		return v.B.String()
	default:
		return v.D.String()
	}
}
