package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// E22 — the pipeline-fusion experiment: the compile-time pass
// (internal/core/fuse.go) collapses serial chains of lightweight stages
// into single-goroutine slot programs, so a D-stage chain of filters, taps
// and sequential boxes costs zero stream hops and zero goroutine handoffs
// between its stages.  The sweep crosses stage count D with batch size B in
// both execution modes over the two chain populations that bracket the
// fusible spectrum: pure Observe taps (the E13/E21 transport shape) and
// W=1 boxes (per-stage user code, emitter in buffer mode).  Fusion and
// batching attack the same per-hop synchronization cost from different
// ends — B amortizes a hop, fusion deletes it — so the speedup column is
// fused vs un-fused at the *same* B.

var e22Depths = []int{4, 8, 16, 32}

func e22Taps(depth int) core.Node {
	stages := make([]core.Node, depth)
	for i := range stages {
		stages[i] = core.Observe(fmt.Sprintf("tap%d", i), nil)
	}
	return core.Serial(stages...)
}

func e22Boxes(depth int) core.Node {
	stages := make([]core.Node, depth)
	for i := range stages {
		stages[i] = core.NewBoxConcurrent(fmt.Sprintf("sq%d", i),
			core.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *core.Emitter) error {
				return out.Out(1, args[0].(int))
			}, 1)
	}
	return core.Serial(stages...)
}

func e22Inputs(n int) []*core.Record {
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord().SetTag("n", i)
	}
	return recs
}

// e22Steady is the E21 ping-pong loop over a compiled plan: a fixed
// in-flight population through a fused deep pipeline, reporting steady-state
// heap allocations per record (the zero-alloc claim extended to fused
// segments — the slot programs and op buffers must recycle like the stream
// plane they replace).
func e22Steady(plan *core.Plan, batch, ops int) float64 {
	h := plan.Start(context.Background(),
		core.WithBoxWorkers(1), core.WithStreamBatch(batch))
	defer e21Drain(h)
	const inflight = 64
	step := func() {
		r, ok := <-h.Out()
		if !ok {
			panic("E22: pipeline output closed")
		}
		if err := h.Send(r); err != nil {
			panic(err)
		}
	}
	prime := func() {
		for _, r := range e22Inputs(inflight) {
			if err := h.Send(r); err != nil {
				panic(err)
			}
		}
		for i := 0; i < inflight; i++ {
			step()
		}
	}
	return e21SteadyAllocs(prime, step, ops)
}

// E22PipelineFusion runs the fusion experiment and returns the markdown
// table plus machine-readable data points for the BENCH file.
func E22PipelineFusion() (*Table, []Result) {
	t := &Table{
		ID:    "E22",
		Title: "Pipeline fusion — serial chains of lightweight stages as single-goroutine slot programs",
		Claim: "the component-graph granularity the coordination program describes need not be the execution granularity: fusing lightweight stages at compile time removes the per-hop synchronization that dominates fine-grained S-Net workloads (arXiv:1305.7167), complementing the frame transport's B-fold amortization (E13)",
		Header: []string{"chain", "records", "depth", "B", "mode", "median",
			"records/s", "fused speedup"},
	}
	var results []Result
	n, steadyOps := 10000, 50000
	if Smoke {
		n, steadyOps = 1000, 5000
	}

	shapes := []struct {
		name string
		mk   func(depth int) core.Node
	}{
		{"identity taps", e22Taps},
		{"W=1 id boxes", e22Boxes},
	}
	for _, shape := range shapes {
		for _, depth := range e22Depths {
			for _, bsz := range []int{1, 8} {
				var fusedMed, unfusedMed float64
				for _, fuse := range []bool{false, true} {
					plan, err := core.Compile(shape.mk(depth), core.WithFusion(fuse))
					if err != nil {
						panic(fmt.Sprintf("E22 compile %s depth=%d: %v", shape.name, depth, err))
					}
					// SNET_FUSE=0 (or -fuse=false) turns the pass off even
					// when asked for: report what actually ran.
					mode := "unfused"
					if len(plan.FusionGroups()) > 0 {
						mode = "fused"
					}
					inputs := e22Inputs(n)
					tm := Measure(Reps, func() {
						out, _, err := plan.RunAll(context.Background(), inputs,
							core.WithBoxWorkers(1), core.WithStreamBatch(bsz))
						if err != nil || len(out) != n {
							panic(fmt.Sprintf("E22 %s depth=%d B=%d: out=%d err=%v",
								shape.name, depth, bsz, len(out), err))
						}
					})
					med := tm.Median().Seconds()
					if fuse {
						fusedMed = med
					} else {
						unfusedMed = med
					}
					speedup := ""
					if fuse && fusedMed > 0 {
						speedup = fmt.Sprintf("%.2fx", unfusedMed/fusedMed)
					}
					t.AddRow(shape.name, n, depth, bsz, mode, tm.Median(),
						fmt.Sprintf("%.0f", float64(n)/med), speedup)
					results = append(results, Result{
						Experiment: "E22",
						Params: map[string]any{
							"shape": shape.name, "depth": depth,
							"batch": bsz, "mode": mode,
						},
						RecordsPerSec: float64(n) / med,
						P50Ms:         ms(tm.Percentile(50)),
						P99Ms:         ms(tm.Percentile(99)),
					})
				}
			}
		}
	}

	// The headline invariant: steady-state allocations per record through a
	// fully fused deep pipeline stay at zero (cf. E21; enforced in CI by
	// TestRecordPlaneZeroAlloc's fused case).
	deep, err := core.Compile(e22Taps(32))
	if err != nil {
		panic(fmt.Sprintf("E22 steady compile: %v", err))
	}
	allocs := e22Steady(deep, 1, steadyOps)
	t.Notes = append(t.Notes,
		fmt.Sprintf("steady allocs/record through the fused depth-32 tap pipeline at B=1: %.2f (measured E21-style over a warm persistent handle; must stay at 0.00).", allocs),
		"\"fused speedup\" compares the fused run against the un-fused run at the same (depth, B); the un-fused rows are the same plans compiled with WithFusion(false).")
	return t, results
}
