package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"time"
)

// BenchSchemaVersion is the current BENCH_*.json schema.  PR-to-PR
// trajectory diffs key on it: bump it only with a migration note in
// EXPERIMENTS.md.
const BenchSchemaVersion = 1

// Result is one machine-readable benchmark data point: an experiment, the
// parameter combination it ran under, and the throughput/latency triple the
// trajectory tracks across PRs.
type Result struct {
	Experiment    string         `json:"experiment"`
	Params        map[string]any `json:"params"`
	RecordsPerSec float64        `json:"records_per_sec"`
	P50Ms         float64        `json:"p50_ms"`
	P99Ms         float64        `json:"p99_ms"`
}

// BenchFile is the persisted form (BENCH_6.json and successors).
type BenchFile struct {
	Schema  int      `json:"schema"`
	Results []Result `json:"results"`
}

// resultKey identifies a data point for merging: experiment plus the
// canonical (sorted-key JSON) form of its params.  Params go through a JSON
// round-trip first so int and float64 spellings of the same value collide.
func resultKey(r Result) string {
	norm, err := json.Marshal(r.Params)
	if err != nil {
		return r.Experiment + "?"
	}
	var back map[string]any
	_ = json.Unmarshal(norm, &back)
	keys := make([]string, 0, len(back))
	for k := range back {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := r.Experiment + "|"
	for _, k := range keys {
		key += fmt.Sprintf("%s=%v;", k, back[k])
	}
	return key
}

var experimentIDPat = regexp.MustCompile(`^E\d+$`)

// Validate checks one data point against the schema contract.
func (r Result) Validate() error {
	if !experimentIDPat.MatchString(r.Experiment) {
		return fmt.Errorf("bench: experiment %q does not match E<number>", r.Experiment)
	}
	if len(r.Params) == 0 {
		return fmt.Errorf("bench: %s result has no params", r.Experiment)
	}
	if r.RecordsPerSec <= 0 {
		return fmt.Errorf("bench: %s records_per_sec = %v, want > 0", r.Experiment, r.RecordsPerSec)
	}
	if r.P50Ms < 0 || r.P99Ms < r.P50Ms {
		return fmt.Errorf("bench: %s latency p50=%v p99=%v, want 0 <= p50 <= p99",
			r.Experiment, r.P50Ms, r.P99Ms)
	}
	return nil
}

// ValidateBenchData checks a serialized bench file: schema version, and
// every result well-formed with no duplicate (experiment, params) keys.
func ValidateBenchData(data []byte) (*BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: bad JSON: %w", err)
	}
	if f.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("bench: schema %d, want %d", f.Schema, BenchSchemaVersion)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("bench: file has no results")
	}
	seen := map[string]bool{}
	for _, r := range f.Results {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		k := resultKey(r)
		if seen[k] {
			return nil, fmt.Errorf("bench: duplicate result %s", k)
		}
		seen[k] = true
	}
	return &f, nil
}

// LoadBenchFile reads and validates a bench file.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ValidateBenchData(data)
}

// MergeBenchFile folds new results into the bench file at path: data points
// with the same (experiment, params) key are replaced, everything else is
// kept, and the result set is sorted for stable diffs.  A missing or
// unreadable file starts fresh.
func MergeBenchFile(path string, results []Result) error {
	merged := map[string]Result{}
	var order []string
	if old, err := LoadBenchFile(path); err == nil {
		for _, r := range old.Results {
			k := resultKey(r)
			merged[k] = r
			order = append(order, k)
		}
	}
	for _, r := range results {
		if err := r.Validate(); err != nil {
			return err
		}
		k := resultKey(r)
		if _, ok := merged[k]; !ok {
			order = append(order, k)
		}
		merged[k] = r
	}
	sort.Strings(order)
	f := BenchFile{Schema: BenchSchemaVersion}
	for _, k := range order {
		f.Results = append(f.Results, merged[k])
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Percentile returns the p-th percentile (0..100) of the timing's samples
// by nearest-rank on the sorted sample set.
func (t Timing) Percentile(p float64) time.Duration {
	return PercentileDur(t.Samples, p)
}

// PercentileDur is the nearest-rank percentile of a duration sample set.
func PercentileDur(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(float64(len(s))*p/100.0+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// ms renders a duration as fractional milliseconds for Result fields.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
