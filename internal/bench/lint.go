package bench

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/workloads"
)

// E20Lint benchmarks the static liveness analysis over compiled plans: the
// cost of running every graph-level check (sync starvation, dead arms,
// star divergence, unbounded splits, marker hazards) on the shipped
// workload networks plus a seeded-defect net, reported as analyzed graph
// nodes per second.  The point of the experiment is the trajectory: the
// analysis must stay cheap enough to run at every compile — daemon
// registration, snetrun -check, CI — not just in an offline audit.
func E20Lint() (*Table, []Result) {
	t := &Table{
		ID:    "E20",
		Title: "Static liveness analysis — graph checks over compiled plans",
		Claim: "the compile-time liveness pass (sync starvation, dead arms, unbounded replication, marker hazards) costs microseconds per network, so every compile — snetd registration, snetrun -check, CI — can afford it",
		Header: []string{"program", "nodes", "findings", "median", "nodes/s", "p99"},
	}
	wavefrontN := 64
	if Smoke {
		wavefrontN = 12
	}
	progs := []struct {
		name string
		node core.Node
	}{
		{"webpipe", workloads.WebPipeNet()},
		{fmt.Sprintf("wavefront-%d", wavefrontN), workloads.WavefrontNet(wavefrontN, 61)},
		{"mergesort-4096", workloads.DivConqNet(4096, 64)},
		{"starved-sync", starvedSyncNet()},
	}
	var results []Result
	for _, p := range progs {
		plan, err := core.Compile(p.node)
		if plan == nil {
			panic(fmt.Errorf("E20: %s: %v", p.name, err))
		}
		var rep *analysis.Report
		tm := Measure(Reps, func() {
			rep = analysis.Analyze(plan)
		})
		med := tm.Median()
		nodesPerSec := float64(rep.Nodes) / med.Seconds()
		t.AddRow(p.name, rep.Nodes, len(rep.Findings), med,
			fmt.Sprintf("%.0f", nodesPerSec), tm.Percentile(99))
		results = append(results, Result{
			Experiment:    "E20",
			Params:        map[string]any{"program": p.name},
			RecordsPerSec: nodesPerSec,
			P50Ms:         ms(tm.Percentile(50)),
			P99Ms:         ms(tm.Percentile(99)),
		})
	}
	t.Notes = append(t.Notes,
		"\"nodes\" counts graph nodes visited by one Analyze pass over the already-compiled plan; \"findings\" is the report size (the workload nets analyze clean, the seeded net reports its starving synchrocell).  Analysis reuses the variant flow the compile pass already computed, so its cost is a graph walk, not a re-inference.")
	return t, results
}

// starvedSyncNet is the seeded-defect program of E20: a synchrocell whose
// second pattern no upstream variant satisfies, the canonical
// registration-time finding.
func starvedSyncNet() core.Node {
	nop := func([]any, *core.Emitter) error { return nil }
	gen := core.NewBox("gen", core.MustParseSignature("(<s>) -> (a, <k>)"), nop)
	use := core.NewBox("use", core.MustParseSignature("(a, b, <k>) -> (done)"), nop)
	join := core.Sync(
		core.MustParsePattern("{a, <k>}"),
		core.MustParsePattern("{b, <k>}"))
	return core.Serial(gen, core.Serial(join, use))
}
