// Package bench is the experiment harness behind cmd/experiments and
// bench_test.go: workload construction, repeated timing, and the table
// renderer that regenerates every figure/claim of the paper (see the
// experiment index in DESIGN.md and the results in EXPERIMENTS.md).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's corresponding claim
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Timing is a small sample of repeated measurements.
type Timing struct {
	Samples []time.Duration
}

// Measure runs f reps times (after one warmup) and collects wall times.
func Measure(reps int, f func()) Timing {
	f() // warmup
	t := Timing{Samples: make([]time.Duration, 0, reps)}
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		t.Samples = append(t.Samples, time.Since(start))
	}
	return t
}

// Median returns the median sample.
func (t Timing) Median() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), t.Samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// Min returns the fastest sample.
func (t Timing) Min() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	m := t.Samples[0]
	for _, s := range t.Samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Speedup returns base/other as a factor.
func Speedup(base, other time.Duration) float64 {
	if other == 0 {
		return 0
	}
	return float64(base) / float64(other)
}
