package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
)

// E21 — the record-plane experiment: slot-array records, interned shapes and
// arena recycling under sustained load.  Two shapes bracket the hot paths the
// refactor targets: the E13 deep tap pipeline (pure transport: every record
// crosses `depth` streams untouched) and the E16 wide routing net (every
// record is dispatched by shape, rewritten by a filter into a pooled output,
// and consumed by a sink — the arena's closed loop).  Each row reports
// end-to-end throughput plus two invariants: steady-state allocations per
// record over a warm persistent handle (the zero-alloc claim, enforced in CI
// by TestRecordPlaneZeroAlloc) and the arena's live-record delta after the
// run (the leak ledger).

const e21Depth = 32

func e21Pipeline() core.Node {
	stages := make([]core.Node, e21Depth)
	for i := range stages {
		stages[i] = core.Observe(fmt.Sprintf("tap%d", i), nil)
	}
	return core.Serial(stages...)
}

func e21Routing(width int) (net core.Node, sunk core.Node) {
	branches := make([]core.Node, width)
	for i := range branches {
		branches[i] = core.MustFilter(fmt.Sprintf("{a,x%d} -> {a,x%d}", i, i))
	}
	sink := core.NewBox("sink", core.MustParseSignature("(a) -> (a)"),
		func([]any, *core.Emitter) error { return nil })
	return core.Parallel(branches...), core.Serial(core.Parallel(branches...), sink)
}

func e21PipelineInputs(n int) []*core.Record {
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord().SetTag("n", i)
	}
	return recs
}

func e21RoutingInputs(n, width int) []*core.Record {
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord().SetField("a", i).
			SetField(fmt.Sprintf("x%d", i%width), i)
	}
	return recs
}

// e21SteadyAllocs measures heap allocations per record over a warm
// persistent handle.  prime sends the initial population and runs warm laps;
// step moves exactly one record.  The mallocs delta is read across ops steps,
// so handle construction, arena population and routing-memo warmup are all
// excluded — what remains is the per-record cost of the plane itself.
func e21SteadyAllocs(prime func(), step func(), ops int) float64 {
	prime()
	// A collection clears sync.Pool caches, so a GC scheduled by garbage from
	// *earlier* experiments would force the whole in-flight arena population
	// to reallocate mid-window and masquerade as per-record cost.  Take that
	// collection now and re-warm; the measured window itself is allocation-
	// free, so it never triggers another one.
	runtime.GC()
	for i := 0; i < 8192; i++ {
		step()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < ops; i++ {
		step()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

// e21Drain shuts a steady-state handle down gracefully: close the input,
// drain the remaining in-flight records out, then wait.  A plain Cancel would
// strand pooled records in stream buffers and show up as a spurious arena
// live delta.
func e21Drain(h *core.Handle) {
	h.Close()
	for range h.Out() {
	}
	h.Wait()
}

// e21PipelineSteady is the ping-pong loop of BenchmarkRecordPlane/pipeline:
// a fixed in-flight population, each output record resent as the next input.
func e21PipelineSteady(batch, ops int) float64 {
	h := core.Start(context.Background(), e21Pipeline(),
		core.WithBoxWorkers(1), core.WithStreamBatch(batch))
	defer e21Drain(h)
	const inflight = 64
	step := func() {
		r, ok := <-h.Out()
		if !ok {
			panic("E21: pipeline output closed")
		}
		if err := h.Send(r); err != nil {
			panic(err)
		}
	}
	prime := func() {
		for _, r := range e21PipelineInputs(inflight) {
			if err := h.Send(r); err != nil {
				panic(err)
			}
		}
		for i := 0; i < inflight; i++ {
			step()
		}
	}
	return e21SteadyAllocs(prime, step, ops)
}

// e21RoutingSteady is the closed-loop shape of BenchmarkRecordPlane/routing:
// a caller-owned input population resent round-robin into the sink-terminated
// net, so pooled filter outputs are acquired and released inside the run.
func e21RoutingSteady(width, batch, ops int) float64 {
	_, net := e21Routing(width)
	h := core.Start(context.Background(), net,
		core.WithBoxWorkers(1), core.WithStreamBatch(batch))
	defer e21Drain(h)
	inputs := e21RoutingInputs(256, width)
	i := 0
	step := func() {
		if err := h.Send(inputs[i%len(inputs)]); err != nil {
			panic(err)
		}
		i++
	}
	prime := func() {
		for lap := 0; lap < 4; lap++ {
			for range inputs {
				step()
			}
		}
	}
	return e21SteadyAllocs(prime, step, ops)
}

// e21LiveDelta polls the arena's live count back toward base after a drained
// run, returning the residual delta (0 means fully accounted).
func e21LiveDelta(base int64) int64 {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if core.PoolStats().Live() == base {
			return 0
		}
		time.Sleep(2 * time.Millisecond)
	}
	return core.PoolStats().Live() - base
}

// E21RecordPlane runs the record-plane experiment and returns the markdown
// table plus the machine-readable data points for the BENCH file.
func E21RecordPlane() (*Table, []Result) {
	t := &Table{
		ID:    "E21",
		Title: "Record plane — slot-array records, interned shapes, arena recycling",
		Claim: "records are the unit the coordination layer touches per message; flattening them to compile-time-interned slot arrays and recycling them through stream-owned arenas removes the per-record heap traffic the map representation paid (the allocation share of the per-message overhead in arXiv:1305.7167)",
		Header: []string{"shape", "records", "param", "median", "records/s",
			"steady allocs/record", "arena live delta"},
	}
	var results []Result
	n, steadyOps := 20000, 50000
	if Smoke {
		n, steadyOps = 2000, 5000
	}

	for _, bsz := range streamBatchSweep {
		base := core.PoolStats().Live()
		inputs := e21PipelineInputs(n)
		tm := Measure(Reps, func() {
			out, _, err := core.RunAll(context.Background(), e21Pipeline(), inputs,
				core.WithBoxWorkers(1), core.WithStreamBatch(bsz))
			if err != nil || len(out) != n {
				panic(fmt.Sprintf("E21 pipeline B=%d: out=%d err=%v", bsz, len(out), err))
			}
		})
		allocs := e21PipelineSteady(bsz, steadyOps)
		med := tm.Median()
		t.AddRow(fmt.Sprintf("pipeline depth=%d", e21Depth), n,
			fmt.Sprintf("B=%d", bsz), med,
			fmt.Sprintf("%.0f", float64(n)/med.Seconds()),
			fmt.Sprintf("%.2f", allocs), e21LiveDelta(base))
		results = append(results, Result{
			Experiment:    "E21",
			Params:        map[string]any{"shape": "pipeline", "depth": e21Depth, "batch": bsz},
			RecordsPerSec: float64(n) / med.Seconds(),
			P50Ms:         ms(tm.Percentile(50)),
			P99Ms:         ms(tm.Percentile(99)),
		})
	}

	for _, width := range []int{8, 16, 32} {
		base := core.PoolStats().Live()
		net, _ := e21Routing(width)
		inputs := e21RoutingInputs(n, width)
		tm := Measure(Reps, func() {
			out, _, err := core.RunAll(context.Background(), net, inputs,
				core.WithBoxWorkers(1), core.WithStreamBatch(8))
			if err != nil || len(out) != n {
				panic(fmt.Sprintf("E21 routing width=%d: out=%d err=%v", width, len(out), err))
			}
		})
		allocs := e21RoutingSteady(width, 8, steadyOps)
		med := tm.Median()
		t.AddRow(fmt.Sprintf("routing width=%d", width), n,
			fmt.Sprintf("W=%d", width), med,
			fmt.Sprintf("%.0f", float64(n)/med.Seconds()),
			fmt.Sprintf("%.2f", allocs), e21LiveDelta(base))
		results = append(results, Result{
			Experiment:    "E21",
			Params:        map[string]any{"shape": "routing", "width": width, "batch": 8},
			RecordsPerSec: float64(n) / med.Seconds(),
			P50Ms:         ms(tm.Percentile(50)),
			P99Ms:         ms(tm.Percentile(99)),
		})
	}

	t.Notes = append(t.Notes,
		"\"steady allocs/record\" is the heap-allocation count per record over a warm persistent handle (mallocs delta across the measured window / records moved) — the pipeline ping-pongs a fixed in-flight population through "+fmt.Sprint(e21Depth)+" taps, the routing shape recirculates caller-owned inputs into a sink-terminated net so pooled filter outputs recycle inside the run; both must stay at 0.00 (enforced by TestRecordPlaneZeroAlloc).  \"arena live delta\" is the record pool's live count after the drained RunAll passes, relative to the pre-run baseline — 0 means acquired = recycled + disowned held exactly.")
	return t, results
}
