package bench

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/workloads"
)

// E23Verify benchmarks the whole-plan deadlock & boundedness verifier: the
// occupancy abstract interpretation (per-edge worst-case queue fill, the
// static memory high-water bound), wait-for cycle detection, and
// counterexample trace construction, over the shipped workload networks
// plus two seeded-defect nets.  Like E20 the point is the trajectory: the
// verifier guards snetd registration and snetrun -verify in CI, so it must
// stay a graph walk, not a model check — microseconds per network.
func E23Verify() (*Table, []Result) {
	t := &Table{
		ID:    "E23",
		Title: "Deadlock & boundedness verifier — occupancy bounds and cycle detection",
		Claim: "the whole-plan verifier (edge occupancy bounds, deadlock cycles, counterexample traces) costs microseconds per network, so every registration and every CI run can afford a machine-checked deadlock-freedom certificate",
		Header: []string{"program", "nodes", "verdict", "bound (records)", "median", "nodes/s"},
	}
	wavefrontN := 64
	if Smoke {
		wavefrontN = 12
	}
	progs := []struct {
		name string
		node core.Node
	}{
		{"webpipe", workloads.WebPipeNet()},
		{fmt.Sprintf("wavefront-%d", wavefrontN), workloads.WavefrontNet(wavefrontN, 61)},
		{"mergesort-4096", workloads.DivConqNet(4096, 64)},
		{"starved-sync", starvedSyncNet()},
		{"feedback-cycle", feedbackCycleNet()},
	}
	var results []Result
	for _, p := range progs {
		plan, err := core.Compile(p.node)
		if plan == nil {
			panic(fmt.Errorf("E23: %s: %v", p.name, err))
		}
		var rep *analysis.Report
		tm := Measure(Reps, func() {
			rep = analysis.Analyze(plan)
		})
		med := tm.Median()
		nodesPerSec := float64(rep.Nodes) / med.Seconds()
		verdict := "deadlock-free"
		if !rep.DeadlockFree() {
			verdict = "DEADLOCK"
		}
		bound := "unbounded"
		if rep.Bound != nil && rep.Bound.Finite {
			bound = fmt.Sprintf("%d", rep.Bound.Total)
		}
		t.AddRow(p.name, rep.Nodes, verdict, bound, med,
			fmt.Sprintf("%.0f", nodesPerSec))
		results = append(results, Result{
			Experiment:    "E23",
			Params:        map[string]any{"program": p.name, "verdict": verdict},
			RecordsPerSec: nodesPerSec,
			P50Ms:         ms(tm.Percentile(50)),
			P99Ms:         ms(tm.Percentile(99)),
		})
	}
	t.Notes = append(t.Notes,
		"\"bound (records)\" is the verifier's static memory high-water mark under default caps (buffer 32, batch 8): the sum of every stream edge's worst-case fill plus node and replica holds, the number snetd exports per network in /api/networks.  The workload nets certify deadlock-free; the two seeded nets reproduce the verdicts snetrun -verify exits nonzero on (a starving synchrocell and a feedback cycle through a downstream producer).")
	return t, results
}

// feedbackCycleNet seeds the E23 deadlock verdict: the synchrocell's
// second pattern is produced only downstream of the join itself, so the
// join waits on a producer whose input the join's own output feeds — a
// wait-for cycle, not mere starvation.
func feedbackCycleNet() core.Node {
	nop := func([]any, *core.Emitter) error { return nil }
	gen := core.NewBox("gen", core.MustParseSignature("(<seed>) -> (a, <k>)"), nop)
	toB := core.NewBox("toB", core.MustParseSignature("(a, <k>) -> (b, <k>)"), nop)
	join := core.Sync(
		core.MustParsePattern("{a, <k>}"),
		core.MustParsePattern("{b, <k>}"))
	return core.Serial(gen, core.Serial(join, toB))
}
