package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/workloads"
	"repro/snet"
	"repro/snet/service"
)

// Smoke shrinks the workload-suite experiments (E17–E19) to CI-smoke sizes:
// small grids, short recursions, dozens instead of a thousand HTTP clients.
// The sweep structure and the BENCH result schema are unchanged, so a smoke
// run still exercises every code path the full run does.
var Smoke = false

// E17Wavefront benchmarks the wavefront workload: an N×N dependency grid
// whose interior cells are synchrocell joins inside tag-indexed replication,
// advanced one anti-diagonal per star stage.  Scales grid size N and box
// workers W; every run is checked against the sequential reference.
func E17Wavefront() (*Table, []Result) {
	t := &Table{
		ID:    "E17",
		Title: "Wavefront — N×N dependency grid of synchrocell joins (Cholesky/Smith-Waterman shape)",
		Claim: "synchrocells plus indexed replication express dependency grids — the wavefront workload of the S-Net vs CnC comparison (arXiv:1305.7167) — without the coordination layer touching the data",
		Header: []string{"n", "cells", "W", "median", "cells/s", "p99",
			"sync fired", "star stages"},
	}
	var results []Result
	sizes := []int{16, 32, 64}
	if Smoke {
		sizes = []int{12}
	}
	const seed = int64(61)
	for _, n := range sizes {
		for _, w := range []int{1, 4} {
			plan := snet.MustCompile(workloads.WavefrontNet(n, seed))
			want := workloads.WavefrontReference(n, seed)
			var stats *snet.Stats
			tm := Measure(Reps, func() {
				out, st, err := plan.RunAll(context.Background(),
					[]*snet.Record{workloads.WavefrontSeed()},
					runOpts(snet.WithBoxWorkers(w))...)
				if err != nil {
					panic(fmt.Errorf("E17: %w", err))
				}
				if len(out) != 1 || out[0].MustField("result").(int) != want {
					panic(fmt.Errorf("E17: n=%d result diverged from reference", n))
				}
				stats = st
			})
			med := tm.Median()
			cells := workloads.WavefrontCells(n)
			m := stats.Snapshot()
			t.AddRow(n, cells, w, med,
				fmt.Sprintf("%.0f", float64(cells)/med.Seconds()),
				tm.Percentile(99),
				m["sync.wave_join.fired"], 2*n-1)
			results = append(results, Result{
				Experiment:    "E17",
				Params:        map[string]any{"n": n, "workers": w},
				RecordsPerSec: float64(cells) / med.Seconds(),
				P50Ms:         ms(tm.Percentile(50)),
				P99Ms:         ms(tm.Percentile(99)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"One {start} record unfolds the whole grid: edge boxes chain the boundary, interior cells are [| {up,...}, {left,...} |] .. cell replicas split by <cell>, and the star advances one anti-diagonal per stage (2N-1 stages).  \"cells/s\" counts computed cell values; every run is checked against the sequential DP reference.")
	return t, results
}

// E18DivConq benchmarks the divide-and-conquer workload: mergesort as a
// star-unfolded split-solve-combine tree, sibling halves joined in
// per-pair split replicas — split replica churn and the in-band close
// protocol under deep recursion.
func E18DivConq() (*Table, []Result) {
	t := &Table{
		ID:    "E18",
		Title: "Divide-and-conquer — recursive mergesort via star unfolding and per-pair split replicas",
		Claim: "serial replication unfolds recursive decomposition on demand (A ** p, §4) while indexed replication isolates each combine step; replica close keeps the churn bounded (the recursive workload class of arXiv:1305.7167)",
		Header: []string{"jobs", "n", "leaf", "W", "median", "elems/s", "p99",
			"merges", "pair replicas", "max width"},
	}
	var results []Result
	type cfg struct{ jobs, n, leaf int }
	cfgs := []cfg{{4, 4096, 64}, {16, 4096, 64}, {4, 16384, 128}}
	if Smoke {
		cfgs = []cfg{{2, 512, 32}}
	}
	const seed = int64(23)
	for _, c := range cfgs {
		for _, w := range []int{1, 4} {
			plan := snet.MustCompile(workloads.DivConqNet(c.n, c.leaf))
			jobsIn := workloads.DivConqJobs(c.jobs, c.n, seed)
			want := make(map[int][]int, c.jobs)
			for j := 0; j < c.jobs; j++ {
				want[j] = workloads.DivConqReference(workloads.DivConqInput(c.n, seed, j))
			}
			var stats *snet.Stats
			tm := Measure(Reps, func() {
				out, st, err := plan.RunAll(context.Background(), jobsIn,
					runOpts(snet.WithBoxWorkers(w),
						snet.WithMaxSplitWidth(workloads.DivConqSplitWidth(c.jobs, c.n, c.leaf)))...)
				if err != nil {
					panic(fmt.Errorf("E18: %w", err))
				}
				if len(out) != c.jobs {
					panic(fmt.Errorf("E18: %d outputs, want %d", len(out), c.jobs))
				}
				for _, rec := range out {
					got := rec.MustField("out").([]int)
					ref := want[rec.MustTag("job")]
					for i := range got {
						if got[i] != ref[i] {
							panic(fmt.Errorf("E18: job %d diverged from reference", rec.MustTag("job")))
						}
					}
				}
				stats = st
			})
			med := tm.Median()
			elems := workloads.DivConqElements(c.jobs, c.n)
			m := stats.Snapshot()
			t.AddRow(c.jobs, c.n, c.leaf, w, med,
				fmt.Sprintf("%.0f", float64(elems)/med.Seconds()),
				tm.Percentile(99),
				m["sync.dc_join.fired"], m["split.dc_pairs.replicas"],
				m["split.dc_pairs.width.max"])
			results = append(results, Result{
				Experiment:    "E18",
				Params:        map[string]any{"jobs": c.jobs, "n": c.n, "leaf": c.leaf, "workers": w},
				RecordsPerSec: float64(elems) / med.Seconds(),
				P50Ms:         ms(tm.Percentile(50)),
				P99Ms:         ms(tm.Percentile(99)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Each job's segments are heap-numbered; halves rendezvous under the composite tag p = job·stride + parent, so the run needs WithMaxSplitWidth(DivConqSplitWidth(...)) — modulo folding must never collapse two live joins onto one replica.  \"pair replicas\" counts dc_pairs replicas instantiated per run (one per merge) and \"max width\" the widest single stage; outputs are checked against sort.Ints.")
	return t, results
}

// e19Request drives one /api/run round-trip and checks the response against
// the webpipe reference, returning the request latency.
func e19Request(client *http.Client, url string, id int) (time.Duration, error) {
	reqURL := workloads.WebPipeURL(id)
	body, _ := json.Marshal(map[string]any{
		"net": "webpipe",
		"records": []service.RecordJSON{{
			Tags:   map[string]int{"id": id},
			Fields: map[string]string{"url": reqURL},
		}},
		"wait": "30s",
	})
	start := time.Now()
	resp, err := client.Post(url+"/api/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Records []service.RecordJSON `json:"records"`
		Done    bool                 `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("E19: HTTP %d", resp.StatusCode)
	}
	if !out.Done || len(out.Records) != 1 {
		return 0, fmt.Errorf("E19: done=%v records=%d", out.Done, len(out.Records))
	}
	wantResp, wantStatus := workloads.WebPipeReference(reqURL)
	rec := out.Records[0]
	if rec.Fields["resp"] != wantResp || rec.Tags["status"] != wantStatus {
		return 0, fmt.Errorf("E19: response diverged from reference for %s", reqURL)
	}
	return elapsed, nil
}

// E19HTTPSessions benchmarks the request/response workload end-to-end over
// the snetd HTTP wire protocol: a large concurrent-client harness fires
// one-shot /api/run sessions at the webpipe network and measures p50/p99
// session latency in Isolated vs Shared mode.
func E19HTTPSessions() (*Table, []Result) {
	t := &Table{
		ID:    "E19",
		Title: "HTTP request/response — concurrent one-shot sessions over snetd, Isolated vs Shared",
		Claim: "the warm shared engine turns session open from a graph instantiation into a map insert (E15); under web-shaped concurrent load that difference is tail latency — the deployed-runtime scenario of the S-Net service evaluations (arXiv:1306.2743)",
		Header: []string{"mode", "clients", "requests", "wall", "req/s", "p50", "p99"},
	}
	var results []Result
	clients, perClient := 1000, 5
	if Smoke {
		clients, perClient = 64, 2
	}
	for _, mode := range []service.SessionMode{service.Isolated, service.Shared} {
		svc := service.New()
		svc.Register("webpipe", "request/response workload", service.Options{
			SessionMode: mode,
			MaxSessions: -1,
			BufferSize:  8,
		}, func(service.Options) (snet.Node, error) {
			return workloads.WebPipeNet(), nil
		}, nil)
		srv := httptest.NewServer(svc.Handler())
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        clients,
			MaxIdleConnsPerHost: clients,
		}}
		if mode == service.Shared {
			// Warm the engine: the one instantiation all sessions amortize.
			if _, err := e19Request(client, srv.URL, 0); err != nil {
				panic(err)
			}
		}

		latencies := make([]time.Duration, clients*perClient)
		errs := make(chan error, clients)
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for k := 0; k < perClient; k++ {
					i := c*perClient + k
					d, err := e19Request(client, srv.URL, i)
					if err != nil {
						errs <- err
						return
					}
					latencies[i] = d
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(t0)
		close(errs)
		for err := range errs {
			panic(err)
		}

		total := clients * perClient
		p50, p99 := PercentileDur(latencies, 50), PercentileDur(latencies, 99)
		t.AddRow(mode.String(), clients, total, wall,
			fmt.Sprintf("%.0f", float64(total)/wall.Seconds()), p50, p99)
		results = append(results, Result{
			Experiment:    "E19",
			Params:        map[string]any{"mode": mode.String(), "clients": clients},
			RecordsPerSec: float64(total) / wall.Seconds(),
			P50Ms:         ms(p50),
			P99Ms:         ms(p99),
		})

		if mode == service.Shared {
			// All sessions released: the mux gauge must drain to zero.
			deadline := time.Now().Add(10 * time.Second)
			gauge := func() int64 { return svc.Stats()["run.webpipe.split.session_mux.replicas"] }
			for gauge() != 0 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if g := gauge(); g != 0 {
				panic(fmt.Errorf("E19: %d session replicas leaked after churn", g))
			}
		}
		srv.Close()
		svc.Shutdown()
	}
	t.Notes = append(t.Notes,
		"Each request is a full HTTP one-shot session (open, feed, drain, release) against the classify→(api‖page‖asset)→render pipeline; the harness runs `clients` goroutines concurrently (the rivaas concurrent-client pattern) and checks every response against the reference.  Shared mode asserts the session_mux replica gauge back to 0 after the churn.")
	return t, results
}
