package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sudoku"
	"repro/snet"
	"repro/snet/service"
)

// Reps is the measurement repetition count used by the experiment tables.
var Reps = 5

// Grain overrides the with-loop pools' minimum chunk size for every
// experiment (0 keeps each experiment's default), so grain sweeps are
// runnable from cmd/experiments without recompiling.
var Grain = 0

// StreamBatch overrides the runs' stream batch size B for every experiment
// (0 keeps the runtime default).  E13/E14 sweep B explicitly regardless.
var StreamBatch = 0

// newPool builds a with-loop pool honouring the Grain override (Grain < 1
// selects the sched default).
func newPool(width int) *sched.Pool {
	return sched.NewWithGrain(width, Grain)
}

// runOpts returns the run options implied by the package knobs.
func runOpts(extra ...core.Option) []core.Option {
	var opts []core.Option
	if StreamBatch > 0 {
		opts = append(opts, core.WithStreamBatch(StreamBatch))
	}
	return append(opts, extra...)
}

// Workloads returns the named 9×9 puzzle set used across experiments.
func Workloads() []struct {
	Name   string
	Puzzle *sudoku.Board
} {
	out := []struct {
		Name   string
		Puzzle *sudoku.Board
	}{}
	for _, name := range []string{"easy", "medium", "hard"} {
		out = append(out, struct {
			Name   string
			Puzzle *sudoku.Board
		}{name, sudoku.Fixed9x9()[name]})
	}
	return out
}

func solveNet(net core.Node, puzzle *sudoku.Board, opts ...core.Option) (*core.Stats, error) {
	b, stats, err := sudoku.SolveWithNet(context.Background(), net, puzzle, runOpts(opts...)...)
	if err != nil {
		return stats, err
	}
	if b == nil || !b.IsSolved() {
		return stats, fmt.Errorf("network failed to solve the puzzle")
	}
	return stats, nil
}

// E1Fig1 reproduces Figure 1: the pipeline solver, its correctness, its
// unfolding bound and its runtime against the sequential solver.
func E1Fig1() *Table {
	t := &Table{
		ID:    "E1",
		Title: "Fig. 1 — computeOpts .. (solveOneLevel ** {<done>})",
		Claim: "the serial replicator unfolds on demand and \"cannot lead to pipelines longer than 81 replicas\" for 9×9 (§5)",
		Header: []string{"puzzle", "empty cells", "seq median", "fig1 median",
			"stages (replicas)", "bound 81 held"},
	}
	pool := newPool(1)
	for _, w := range Workloads() {
		seq := Measure(Reps, func() {
			if _, ok := sudoku.SolveBoard(pool, w.Puzzle); !ok {
				panic("seq failed")
			}
		})
		var lastStats *core.Stats
		fig1 := Measure(Reps, func() {
			stats, err := solveNet(sudoku.Fig1Net(sudoku.NetConfig{Pool: pool}), w.Puzzle)
			if err != nil {
				panic(err)
			}
			lastStats = stats
		})
		replicas := lastStats.Counter("star.solve_loop.replicas")
		t.AddRow(w.Name, 81-w.Puzzle.CountFilled(), seq.Median(), fig1.Median(),
			replicas, replicas <= 81)
	}
	return t
}

// E2Fig2 reproduces Figure 2: full unfolding with the parallel replicator.
func E2Fig2() *Table {
	t := &Table{
		ID:    "E2",
		Title: "Fig. 2 — (solveOneLevel !! <k>) ** {<done>} (full unfolding)",
		Claim: "no more than 9 replicas per stage; \"a maximum of 9×81 = 729 solveOneLevel boxes\" (§5)",
		Header: []string{"puzzle", "fig2 median", "stages", "max width",
			"solveOneLevel instances", "bounds (9 / 729) held"},
	}
	pool := newPool(1)
	for _, w := range Workloads() {
		var stats *core.Stats
		tm := Measure(Reps, func() {
			s, err := solveNet(sudoku.Fig2Net(sudoku.NetConfig{Pool: pool}), w.Puzzle)
			if err != nil {
				panic(err)
			}
			stats = s
		})
		width := stats.Max("split.level_split.width")
		boxes := stats.Counter("box.solveOneLevel.instances")
		t.AddRow(w.Name, tm.Median(), stats.Counter("star.solve_loop.replicas"),
			width, boxes, width <= 9 && boxes <= 729)
	}
	return t
}

// E3Fig3 reproduces Figure 3: throttled unfolding, sweeping the modulo
// throttle and the exit level.
func E3Fig3() *Table {
	t := &Table{
		ID:    "E3",
		Title: "Fig. 3 — throttled unfolding ({<k>}->{<k>=<k>%m}, exit <level> > L, terminal solve)",
		Claim: "the %4 filter \"implicitly limits the parallel unfolding to a maximum of 4 instances\"; non-completed sudokus exit at level > 40 and are finished by the solve box (§5)",
		Header: []string{"puzzle", "throttle m", "exit L", "median", "stages",
			"max width", "width ≤ m"},
	}
	pool := newPool(1)
	for _, w := range Workloads()[1:] { // medium, hard
		for _, m := range []int{1, 2, 4, 8} {
			var stats *core.Stats
			tm := Measure(Reps, func() {
				s, err := solveNet(sudoku.Fig3Net(sudoku.NetConfig{Pool: pool, Throttle: m, ExitLevel: 40}), w.Puzzle)
				if err != nil {
					panic(err)
				}
				stats = s
			})
			width := stats.Max("split.level_split.width")
			t.AddRow(w.Name, m, 40, tm.Median(),
				stats.Counter("star.solve_loop.replicas"), width, width <= int64(m))
		}
	}
	for _, L := range []int{20, 40, 60} {
		var stats *core.Stats
		tm := Measure(Reps, func() {
			s, err := solveNet(sudoku.Fig3Net(sudoku.NetConfig{Pool: pool, Throttle: 4, ExitLevel: L}), sudoku.Hard())
			if err != nil {
				panic(err)
			}
			stats = s
		})
		width := stats.Max("split.level_split.width")
		t.AddRow("hard", 4, L, tm.Median(),
			stats.Counter("star.solve_loop.replicas"), width, width <= 4)
	}
	return t
}

// E4Sequential reproduces the §3 footnote: typical 9×9 puzzles solve "in
// far less than a second" with the findMinTrues heuristic.
func E4Sequential() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Sequential §3 solver on 9×9",
		Claim:  "\"this algorithm leads to code that typically solves 9 by 9 sudokus in far less than a second\" (§3 footnote)",
		Header: []string{"puzzle", "median", "min", "sub-second"},
	}
	pool := newPool(1)
	for _, w := range Workloads() {
		tm := Measure(Reps, func() {
			if _, ok := sudoku.SolveBoard(pool, w.Puzzle); !ok {
				panic("seq failed")
			}
		})
		t.AddRow(w.Name, tm.Median(), tm.Min(), tm.Median() < time.Second)
	}
	return t
}

// E5WithLoop reproduces the implicit data-parallelism claim: with-loop
// runtime scales with the worker pool, with identical results.
func E5WithLoop(maxWorkers int) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Data-parallel with-loops (genarray stencil + fold reduction)",
		Claim: "data parallelism in SaC \"comes for free, i.e., it just requires multi-threaded code generation to be enabled\" (§3)",
		Header: []string{"kernel", "workers", "median", "speedup vs 1",
			"result identical"},
	}
	const side = 1200
	src := array.Genarray(sched.New(1), []int{side, side}, 0.0,
		array.GenHalfOpen([]int{0, 0}, []int{side, side}, func(iv []int) float64 {
			return float64((iv[0]*31+iv[1]*17)%1000) / 1000.0
		}))
	stencil := func(p *sched.Pool) *array.Array[float64] {
		return array.Genarray(p, []int{side, side}, 0.0,
			array.GenHalfOpen([]int{1, 1}, []int{side - 1, side - 1}, func(iv []int) float64 {
				i, j := iv[0], iv[1]
				return 0.2 * (src.At(i, j) + src.At(i-1, j) + src.At(i+1, j) +
					src.At(i, j-1) + src.At(i, j+1))
			}))
	}
	foldK := func(p *sched.Pool) float64 {
		return array.Fold(p, 0.0, func(a, b float64) float64 { return a + b },
			array.GenHalfOpen([]int{0, 0}, []int{side, side}, func(iv []int) float64 {
				v := src.At(iv[0], iv[1])
				return v * v
			}))
	}
	base := map[string]time.Duration{}
	ref := stencil(sched.New(1))
	refFold := foldK(sched.New(1))
	for _, kernel := range []string{"stencil", "fold"} {
		for workers := 1; workers <= maxWorkers; workers *= 2 {
			p := sched.NewWithGrain(workers, 512)
			var same bool
			tm := Measure(Reps, func() {
				switch kernel {
				case "stencil":
					same = array.Equal(stencil(p), ref)
				case "fold":
					d := foldK(p) - refFold
					same = d < 1e-6 && d > -1e-6
				}
			})
			if workers == 1 {
				base[kernel] = tm.Median()
			}
			t.AddRow(kernel, workers, tm.Median(), Speedup(base[kernel], tm.Median()), same)
		}
	}
	t.Notes = append(t.Notes,
		"Speedups are bounded by the host's core count; the shape to check is monotone scaling with identical results.")
	return t
}

// E6BigBoards reproduces the §3 footnote's motivation: "as sudokus can be
// played on any board of size n²×n², parallelisation becomes essential for
// bigger puzzles" — coordination-level concurrency against the sequential
// solver on 16×16 boards.
//
// The instances are seed-pinned 16×16 boards spanning easy (the sequential
// depth-first search barely backtracks) to hard (seconds of backtracking).
// The expected shape: the networks lose on easy instances (coordination
// overhead, speculative work wasted) and win on hard ones, where the
// throttled Fig. 3 network's bounded breadth-first exploration beats DFS.
func E6BigBoards() *Table {
	t := &Table{
		ID:    "E6",
		Title: "16×16 boards — sequential vs coordination-level concurrency",
		Claim: "\"as sudokus can be played on any board of size n²×n² parallelisation becomes essential for bigger puzzles\" (§3 footnote)",
		Header: []string{"instance (holes/seed)", "seq", "fig2", "fig3",
			"fig2 speedup", "fig3 speedup"},
	}
	pool := newPool(1)
	reps := Reps
	if reps > 2 {
		reps = 2 // hard instances run for seconds
	}
	for _, c := range []struct {
		name  string
		holes int
		seed  int64
	}{
		{"easy   (150/7)", 150, 7},
		{"medium (130/5)", 130, 5},
		{"hard   (150/6)", 150, 6},
		{"hard   (150/3)", 150, 3},
	} {
		puzzle, _ := sudoku.Generate(pool, 4, c.seed, c.holes, false)
		seq := Measure(reps, func() {
			if _, ok := sudoku.SolveBoard(pool, puzzle); !ok {
				panic("seq failed")
			}
		})
		fig2 := Measure(reps, func() {
			if _, err := solveNet(sudoku.Fig2Net(sudoku.NetConfig{Pool: pool}), puzzle); err != nil {
				panic(err)
			}
		})
		fig3 := Measure(reps, func() {
			cfg := sudoku.NetConfig{Pool: pool, Throttle: 4, ExitLevel: 200}
			if _, err := solveNet(sudoku.Fig3Net(cfg), puzzle); err != nil {
				panic(err)
			}
		})
		t.AddRow(c.name, seq.Median(), fig2.Median(), fig3.Median(),
			Speedup(seq.Median(), fig2.Median()), Speedup(seq.Median(), fig3.Median()))
	}
	t.Notes = append(t.Notes,
		"First-solution search: the networks explore sibling alternatives concurrently (speculative breadth-first search). On easy instances sequential DFS gets lucky and the coordination overhead dominates; on hard instances the throttled Fig. 3 network wins — the crossover the paper's footnote motivates.")
	return t
}

// E8DetVsNondet measures the cost of the deterministic variants' sort-record
// protocol — the ablation for §4's combinator design.
func E8DetVsNondet() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Deterministic (|, *, !) vs nondeterministic (||, **, !!) merge",
		Claim:  "deterministic variants preserve input order at the price of a sort-record protocol (§4)",
		Header: []string{"combinator", "records", "nondet median", "det median", "det/nondet"},
	}
	const n = 2000
	inputs := make([]*core.Record, n)
	for i := range inputs {
		inputs[i] = core.NewRecord().SetTag("n", i).SetTag("k", i%4).SetField("s", i%2 == 0)
	}
	idFn := func(args []any, out *core.Emitter) error { return out.Out(1, args[0].(int)) }
	mkPar := func(det bool) core.Node {
		a := core.NewBox("a", core.MustParseSignature("(s,<n>) -> (<n>)"),
			func(args []any, out *core.Emitter) error { return out.Out(1, args[1].(int)) })
		b := core.NewBox("b", core.MustParseSignature("(<n>) -> (<n>)"), idFn)
		if det {
			return core.ParallelDet(a, b)
		}
		return core.Parallel(a, b)
	}
	mkSplit := func(det bool) core.Node {
		b := core.NewBox("w", core.MustParseSignature("(<n>) -> (<n>)"), idFn)
		if det {
			return core.SplitDet(b, "k")
		}
		return core.Split(b, "k")
	}
	decFn := func(args []any, out *core.Emitter) error {
		v := args[0].(int) % 3
		if v <= 0 {
			return out.Out(2, 0, 1)
		}
		return out.Out(1, v-1)
	}
	mkStar := func(det bool) core.Node {
		b := core.NewBox("d", core.MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"), decFn)
		if det {
			return core.StarDet(b, core.MustParsePattern("{<done>}"))
		}
		return core.Star(b, core.MustParsePattern("{<done>}"))
	}
	cases := []struct {
		name string
		mk   func(bool) core.Node
	}{{"parallel", mkPar}, {"split", mkSplit}, {"star", mkStar}}
	for _, c := range cases {
		runIt := func(det bool) time.Duration {
			return Measure(3, func() {
				out, _, err := core.RunAll(context.Background(), c.mk(det), inputs)
				if err != nil || len(out) != n {
					panic(fmt.Sprintf("%s det=%v: out=%d err=%v", c.name, det, len(out), err))
				}
			}).Median()
		}
		nd, d := runIt(false), runIt(true)
		t.AddRow(c.name, n, nd, d, Speedup(d, nd))
	}
	return t
}

// E9RuntimeMicro measures raw coordination-layer throughput: box pipelines,
// filters, and flow inheritance.
func E9RuntimeMicro() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Coordination-layer microbenchmarks (records/s)",
		Claim:  "streams are cheap enough to coordinate fine-grained components (§4)",
		Header: []string{"network", "records", "median", "records/s"},
	}
	const n = 5000
	plain := make([]*core.Record, n)
	wide := make([]*core.Record, n)
	for i := range plain {
		plain[i] = core.NewRecord().SetTag("n", i)
		wide[i] = core.NewRecord().SetTag("n", i).
			SetField("a", 1).SetField("b", 2).SetField("c", 3).
			SetTag("x", 4).SetTag("y", 5)
	}
	idFn := func(args []any, out *core.Emitter) error { return out.Out(1, args[0].(int)) }
	box := func() core.Node {
		return core.NewBox("id", core.MustParseSignature("(<n>) -> (<n>)"), idFn)
	}
	cases := []struct {
		name   string
		net    core.Node
		inputs []*core.Record
	}{
		{"1 box", box(), plain},
		{"8-box pipeline", core.Serial(box(), box(), box(), box(), box(), box(), box(), box()), plain},
		{"filter (tag arithmetic)", core.MustFilter("{<n>} -> {<n>=<n>*2+1}"), plain},
		{"1 box + flow inheritance (5 extra labels)", box(), wide},
	}
	for _, c := range cases {
		tm := Measure(3, func() {
			out, _, err := core.RunAll(context.Background(), c.net, c.inputs)
			if err != nil || len(out) != n {
				panic("micro bench failed")
			}
		})
		persec := float64(n) / tm.Median().Seconds()
		t.AddRow(c.name, n, tm.Median(), fmt.Sprintf("%.0f", persec))
	}
	return t
}

// E10Hybrid compares interpreted-SaC boxes with native boxes in the Fig. 1
// network — the two-layer separation claim: coordination is agnostic to the
// box implementation.
func E10Hybrid() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Fig. 1 with interpreted SaC boxes vs native boxes",
		Claim:  "the coordination layer treats box internals as opaque; the same network runs unmodified over either implementation (§4, §5)",
		Header: []string{"puzzle", "native fig1", "interpreted fig1", "slowdown", "same solution"},
	}
	pool := newPool(1)
	boxes := sudoku.NewSacBoxes(pool)
	for _, w := range Workloads()[:2] { // easy, medium — interpretation is slow
		native, _, err := sudoku.SolveWithNet(context.Background(),
			sudoku.Fig1Net(sudoku.NetConfig{Pool: pool}), w.Puzzle)
		if err != nil {
			panic(err)
		}
		nt := Measure(3, func() {
			_, _, err := sudoku.SolveWithNet(context.Background(),
				sudoku.Fig1Net(sudoku.NetConfig{Pool: pool}), w.Puzzle)
			if err != nil {
				panic(err)
			}
		})
		var hybridBoard *sudoku.Board
		ht := Measure(1, func() {
			b, _, err := boxes.SolveHybrid(context.Background(), w.Puzzle)
			if err != nil {
				panic(err)
			}
			hybridBoard = b
		})
		t.AddRow(w.Name, nt.Median(), ht.Median(),
			Speedup(ht.Median(), nt.Median()), hybridBoard.Equal(native))
	}
	return t
}

// streamBatchSweep is the B axis of the transport experiments.
var streamBatchSweep = []int{1, 8, 64}

// E13DeepPipeline measures the batched stream transport on deep pipelines —
// the workload the frame refactor targets: every record used to pay one
// channel synchronization per hop, so a D-stage pipeline cost O(D) syncs
// per record; frames amortize that B-fold on hot streams.
func E13DeepPipeline() *Table {
	t := &Table{
		ID:    "E13",
		Title: "Deep pipelines across stream batch size B (adaptive frame transport)",
		Claim: "per-message stream overhead dominates fine-grained S-Net workloads (Zaichenkov et al., arXiv:1305.7167); batching synchronization is the transport-level remedy (cf. S+Net's extra-functional knobs, arXiv:1306.2743)",
		Header: []string{"pipeline", "records", "B", "median", "records/s",
			"frames/record", "speedup vs B=1"},
	}
	const n, depth = 5000, 32
	idFn := func(args []any, out *core.Emitter) error { return out.Out(1, args[0].(int)) }
	mkTaps := func() core.Node {
		stages := make([]core.Node, depth)
		for i := range stages {
			stages[i] = core.Observe(fmt.Sprintf("tap%d", i), nil)
		}
		return core.Serial(stages...)
	}
	mkBoxes := func() core.Node {
		stages := make([]core.Node, depth)
		for i := range stages {
			stages[i] = core.NewBox(fmt.Sprintf("id%d", i),
				core.MustParseSignature("(<n>) -> (<n>)"), idFn)
		}
		return core.Serial(stages...)
	}
	inputs := func() []*core.Record {
		recs := make([]*core.Record, n)
		for i := range recs {
			recs[i] = core.NewRecord().SetTag("n", i)
		}
		return recs
	}
	cases := []struct {
		name string
		mk   func() core.Node
	}{
		{fmt.Sprintf("%d identity taps", depth), mkTaps},
		{fmt.Sprintf("%d-box id pipeline", depth), mkBoxes},
	}
	for _, c := range cases {
		var base time.Duration
		for _, b := range streamBatchSweep {
			var stats *core.Stats
			tm := Measure(3, func() {
				out, s, err := core.RunAll(context.Background(), c.mk(), inputs(),
					core.WithStreamBatch(b), core.WithBoxWorkers(1))
				if err != nil || len(out) != n {
					panic(fmt.Sprintf("E13 %s B=%d: out=%d err=%v", c.name, b, len(out), err))
				}
				stats = s
			})
			if b == 1 {
				base = tm.Median()
			}
			framesPerRec := float64(stats.Counter("stream.frames")) /
				float64(stats.Counter("stream.records"))
			t.AddRow(c.name, n, b, tm.Median(),
				fmt.Sprintf("%.0f", float64(n)/tm.Median().Seconds()),
				fmt.Sprintf("%.2f", framesPerRec), Speedup(base, tm.Median()))
		}
	}
	t.Notes = append(t.Notes,
		"frames/record counts every stream hop in the run; at B=1 it equals the hop count per record, and larger B divides it — the synchronization amortization the refactor buys.")
	return t
}

// E14Fig1Batch runs the paper's Fig. 1 network — the deepest star chain of
// the case study (≤ 81 unfolded stages) — across the stream batch size, the
// end-to-end check that transport batching helps (and never hurts) a real
// workload with the deterministic-merge protocol in the loop.
func E14Fig1Batch() *Table {
	t := &Table{
		ID:    "E14",
		Title: "Fig. 1 sudoku pipeline across stream batch size B",
		Claim: "the star chain costs O(stages) stream synchronizations per record (§5's ≤ 81-stage unfolding); frame batching must cut that cost without disturbing results or unfolding bounds",
		Header: []string{"puzzle", "B", "median", "stages", "frames/record",
			"speedup vs B=1"},
	}
	pool := newPool(1)
	for _, w := range Workloads() {
		var base time.Duration
		for _, b := range streamBatchSweep {
			var stats *core.Stats
			tm := Measure(Reps, func() {
				s, err := solveNet(sudoku.Fig1Net(sudoku.NetConfig{Pool: pool}), w.Puzzle,
					core.WithStreamBatch(b))
				if err != nil {
					panic(err)
				}
				stats = s
			})
			if b == 1 {
				base = tm.Median()
			}
			framesPerRec := float64(stats.Counter("stream.frames")) /
				float64(stats.Counter("stream.records"))
			t.AddRow(w.Name, b, tm.Median(),
				stats.Counter("star.solve_loop.replicas"),
				fmt.Sprintf("%.2f", framesPerRec), Speedup(base, tm.Median()))
		}
	}
	return t
}

// e15Sweep is the session-count axis of the session-mux experiment.
var e15Sweep = []int{1, 64, 1024}

// e15Builder returns the E15 workload network: a three-stage box pipeline
// over <n> — cheap per record, so the measurement isolates the session
// machinery (instantiation vs map insert; per-instance streams vs the
// shared engine's mux) rather than box compute.
func e15Builder(service.Options) (snet.Node, error) {
	box := func(name string) core.Node {
		return core.NewBox(name, core.MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *core.Emitter) error {
				return out.Out(1, args[0].(int)+1)
			})
	}
	return core.Serial(box("s1"), box("s2"), box("s3")), nil
}

// E15SessionMux measures the shared warm-engine session mode against the
// classic instance-per-session mode: open latency for S sessions, then
// aggregate throughput with all S sessions streaming concurrently, then
// full churn (every session released, shared replicas reclaimed).
func E15SessionMux() *Table {
	t := &Table{
		ID:    "E15",
		Title: "Session multiplexing — isolated instances vs one warm engine (indexed replication)",
		Claim: "indexed parallel replication with flow inheritance (A !! <tag>, §4) lets one warm instance serve all sessions — the deployed-runtime direction of the S-Net evaluations (arXiv:1305.7167, arXiv:1306.2743); session open becomes a map insert instead of a graph instantiation",
		Header: []string{"mode", "S", "open total", "open/session", "records",
			"stream+drain", "records/s", "open speedup vs isolated", "replicas after churn"},
	}
	const perSession = 20
	for _, S := range e15Sweep {
		var isoOpen time.Duration
		for _, mode := range []service.SessionMode{service.Isolated, service.Shared} {
			svc := service.New()
			svc.Register("pipe", "", service.Options{
				BufferSize: 8, SessionMode: mode, MaxSessions: -1,
			}, e15Builder, nil)
			if mode == service.Shared {
				// Warm the engine: the one instantiation all opens amortize.
				warm, err := svc.Open("pipe")
				if err != nil {
					panic(err)
				}
				warm.Release()
			}
			sessions := make([]*service.Session, S)
			t0 := time.Now()
			for i := range sessions {
				s, err := svc.Open("pipe")
				if err != nil {
					panic(err)
				}
				sessions[i] = s
			}
			openTotal := time.Since(t0)

			t1 := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, S)
			for _, sess := range sessions {
				wg.Add(1)
				go func(sess *service.Session) {
					defer wg.Done()
					ctx := context.Background()
					go func() {
						for i := 0; i < perSession; i++ {
							if sess.Send(ctx, core.NewRecord().SetTag("n", i)) != nil {
								return
							}
						}
						sess.CloseInput()
					}()
					recs, done, err := sess.Drain(ctx, 0)
					if err != nil || !done || len(recs) != perSession {
						errs <- fmt.Errorf("E15: %d records done=%v err=%v", len(recs), done, err)
					}
				}(sess)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				panic(err)
			}
			flow := time.Since(t1)
			for _, sess := range sessions {
				sess.Release()
			}
			replicas := int64(0)
			if mode == service.Shared {
				// The close protocol reclaims replicas asynchronously; wait
				// for the gauge, then record it (must be 0).
				deadline := time.Now().Add(10 * time.Second)
				gauge := func() int64 {
					return svc.Stats()["run.pipe.split.session_mux.replicas"]
				}
				for gauge() != 0 && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
				replicas = gauge()
			}
			total := S * perSession
			speedup := "—"
			if mode == service.Isolated {
				isoOpen = openTotal
			} else {
				speedup = fmt.Sprintf("%.1fx", Speedup(isoOpen, openTotal))
			}
			t.AddRow(mode.String(), S, openTotal, openTotal/time.Duration(S),
				total, flow, fmt.Sprintf("%.0f", float64(total)/flow.Seconds()),
				speedup, replicas)
			svc.Shutdown()
		}
	}
	t.Notes = append(t.Notes,
		"Shared mode wraps the network in SessionSplit(root, \"__snet_session\") once; Open allocates an id and two bounded queues, and the per-session replica unfolds on the first record. \"replicas after churn\" is the live split.session_mux.replicas gauge after all sessions released — 0 means every replica was reclaimed through the close protocol.")
	return t
}

// E16Routing measures the compile-then-run dispatch tables against the
// per-record scoring loop they replaced, on wide parallel combinators —
// the workload where best-match routing cost scales with the branch count.
// The table path computes each record shape's decision once and memoizes
// it (shared across every run of the plan); the scoring baseline
// re-evaluates every branch's multivariant type per record.
func E16Routing() *Table {
	t := &Table{
		ID:    "E16",
		Title: "Routing: precomputed dispatch tables vs per-record scoring (wide Parallel nets)",
		Claim: "best-match routing is decided by the record's type against the branches' inferred types (§4) — a property of the network, so a compile phase can precompute it (cf. the upfront graph analysis credited for CnC's edge, arXiv:1305.7167)",
		Header: []string{"branches", "records", "mode", "median", "records/s",
			"speedup vs scoring"},
	}
	const n = 5000
	echoFn := func(args []any, out *core.Emitter) error { return out.Out(1, args...) }
	for _, width := range []int{8, 16, 32} {
		branches := make([]core.Node, width)
		for i := range branches {
			sig := fmt.Sprintf("(a,x%d) -> (a,x%d)", i, i)
			branches[i] = core.NewBox(fmt.Sprintf("w%d", i), core.MustParseSignature(sig), echoFn)
		}
		net := core.Parallel(branches...)
		inputs := func() []*core.Record {
			recs := make([]*core.Record, n)
			for i := range recs {
				recs[i] = core.NewRecord().SetField("a", i).
					SetField(fmt.Sprintf("x%d", i%width), i)
			}
			return recs
		}
		var base time.Duration
		for _, mode := range []struct {
			name string
			opts []core.Option
		}{
			{"scoring", []core.Option{core.WithLegacyRouting()}},
			{"table", nil},
		} {
			opts := append([]core.Option{core.WithBoxWorkers(1)}, mode.opts...)
			tm := Measure(3, func() {
				out, _, err := core.RunAll(context.Background(), net, inputs(), opts...)
				if err != nil || len(out) != n {
					panic(fmt.Sprintf("E16 width=%d mode=%s: out=%d err=%v",
						width, mode.name, len(out), err))
				}
			})
			if mode.name == "scoring" {
				base = tm.Median()
			}
			t.AddRow(width, n, mode.name, tm.Median(),
				fmt.Sprintf("%.0f", float64(n)/tm.Median().Seconds()),
				Speedup(base, tm.Median()))
		}
	}
	t.Notes = append(t.Notes,
		"Every record here carries a distinct branch-selecting field, so the scoring baseline evaluates all `branches` multivariant types per record while the table path hashes the record's shape and reuses the memoized decision; BenchmarkRouting/dispatch isolates the routing decision itself (no network goroutines) and shows the per-decision gap directly.")
	return t
}

// All runs every experiment table (E7 is covered by unit tests — the §2
// semantics examples — and therefore has no timing table).
func All(maxWorkers int) []*Table {
	return []*Table{
		E1Fig1(), E2Fig2(), E3Fig3(), E4Sequential(),
		E5WithLoop(maxWorkers), E6BigBoards(),
		E8DetVsNondet(), E9RuntimeMicro(), E10Hybrid(),
		E13DeepPipeline(), E14Fig1Batch(), E15SessionMux(), E16Routing(),
	}
}
