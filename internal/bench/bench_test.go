package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "something holds",
		Header: []string{"a", "b"},
	}
	tab.AddRow("x", 1500*time.Microsecond)
	tab.AddRow(3.14159, true)
	tab.Notes = append(tab.Notes, "note")
	md := tab.Markdown()
	for _, want := range []string{"### EX — demo", "*Paper claim:* something holds",
		"| a | b |", "| x | 1.5ms |", "| 3.14 | true |", "note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMeasureAndStats(t *testing.T) {
	calls := 0
	tm := Measure(4, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 5 { // 4 + warmup
		t.Fatalf("calls = %d", calls)
	}
	if len(tm.Samples) != 4 {
		t.Fatalf("samples = %d", len(tm.Samples))
	}
	if tm.Median() < time.Millisecond/2 || tm.Min() > tm.Median() {
		t.Fatalf("median=%v min=%v", tm.Median(), tm.Min())
	}
	var empty Timing
	if empty.Median() != 0 || empty.Min() != 0 {
		t.Fatal("empty timing must be zero")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2*time.Second, time.Second) != 2.0 {
		t.Fatal("speedup broken")
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero divisor must yield 0")
	}
}

// Smoke-test the fast experiment runners end to end with minimal reps (the
// full sweep lives in cmd/experiments).
func TestExperimentRunnersSmoke(t *testing.T) {
	old := Reps
	Reps = 1
	defer func() { Reps = old }()
	for _, tab := range []*Table{E1Fig1(), E4Sequential()} {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: ragged row %v", tab.ID, row)
			}
		}
		if !strings.Contains(tab.Markdown(), tab.ID) {
			t.Fatalf("%s: markdown broken", tab.ID)
		}
	}
	// Every boolean bound column in E1 must hold.
	for _, row := range E1Fig1().Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E1 bound violated: %v", row)
		}
	}
}

func TestWorkloadsComplete(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 {
		t.Fatalf("workloads = %d", len(ws))
	}
	for _, w := range ws {
		if w.Puzzle == nil || w.Puzzle.CountFilled() == 0 {
			t.Fatalf("bad workload %s", w.Name)
		}
	}
}
