package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func validResult() Result {
	return Result{
		Experiment:    "E17",
		Params:        map[string]any{"n": 16, "workers": 1},
		RecordsPerSec: 1000,
		P50Ms:         1.5,
		P99Ms:         2.5,
	}
}

func TestResultValidate(t *testing.T) {
	if err := validResult().Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	bad := []func(*Result){
		func(r *Result) { r.Experiment = "X17" },
		func(r *Result) { r.Experiment = "E" },
		func(r *Result) { r.Params = nil },
		func(r *Result) { r.RecordsPerSec = 0 },
		func(r *Result) { r.RecordsPerSec = -1 },
		func(r *Result) { r.P50Ms = -0.1 },
		func(r *Result) { r.P99Ms = r.P50Ms - 1 },
	}
	for i, mutate := range bad {
		r := validResult()
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, r)
		}
	}
}

func TestValidateBenchData(t *testing.T) {
	if _, err := ValidateBenchData([]byte(`{`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ValidateBenchData([]byte(`{"schema":2,"results":[]}`)); err == nil {
		t.Error("wrong schema version accepted")
	}
	if _, err := ValidateBenchData([]byte(`{"schema":1,"results":[]}`)); err == nil {
		t.Error("empty result set accepted")
	}
	ok := `{"schema":1,"results":[
	  {"experiment":"E17","params":{"n":16},"records_per_sec":10,"p50_ms":1,"p99_ms":2}]}`
	if _, err := ValidateBenchData([]byte(ok)); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	dup := `{"schema":1,"results":[
	  {"experiment":"E17","params":{"n":16},"records_per_sec":10,"p50_ms":1,"p99_ms":2},
	  {"experiment":"E17","params":{"n":16},"records_per_sec":99,"p50_ms":1,"p99_ms":2}]}`
	if _, err := ValidateBenchData([]byte(dup)); err == nil {
		t.Error("duplicate (experiment, params) key accepted")
	}
}

// TestMergeBenchFile: same-key data points are replaced, others kept, and
// int/float64 spellings of the same params collide onto one key.
func TestMergeBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	first := validResult()
	if err := MergeBenchFile(path, []Result{first}); err != nil {
		t.Fatal(err)
	}
	second := validResult()
	second.Params = map[string]any{"n": float64(16), "workers": float64(1)} // post-JSON spelling
	second.RecordsPerSec = 2000
	other := validResult()
	other.Experiment = "E18"
	if err := MergeBenchFile(path, []Result{second, other}); err != nil {
		t.Fatal(err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 2 {
		t.Fatalf("got %d results, want 2 (replace + add): %+v", len(f.Results), f.Results)
	}
	for _, r := range f.Results {
		if r.Experiment == "E17" && r.RecordsPerSec != 2000 {
			t.Errorf("E17 data point not replaced: %+v", r)
		}
	}
}

// TestCommittedBenchFile validates the BENCH_6.json committed at the repo
// root — the schema contract PR 7+ diffs the performance trajectory
// against — and checks it carries all three workload experiments.
func TestCommittedBenchFile(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_6.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed bench file missing: %v (regenerate with `go run ./cmd/experiments -only E17` etc.)", err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatalf("BENCH_6.json fails schema validation: %v", err)
	}
	byExp := map[string]int{}
	for _, r := range f.Results {
		byExp[r.Experiment]++
	}
	for _, exp := range []string{"E17", "E18", "E19"} {
		if byExp[exp] == 0 {
			t.Errorf("BENCH_6.json has no %s data points (have %v)", exp, byExp)
		}
	}
}

// TestCommittedVerifierBenchFile validates the BENCH_10.json committed at
// the repo root — the verifier-cost trajectory this PR introduces — and
// checks it carries the E23 experiment with both verdict classes.
func TestCommittedVerifierBenchFile(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_10.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed bench file missing: %v (regenerate with `go run ./cmd/experiments -only E23`)", err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatalf("BENCH_10.json fails schema validation: %v", err)
	}
	verdicts := map[string]int{}
	for _, r := range f.Results {
		if r.Experiment == "E23" {
			if v, ok := r.Params["verdict"].(string); ok {
				verdicts[v]++
			}
		}
	}
	if verdicts["deadlock-free"] == 0 || verdicts["DEADLOCK"] == 0 {
		t.Errorf("BENCH_10.json E23 points must cover both verdict classes, have %v", verdicts)
	}
}

func TestPercentileDur(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Millisecond // unsorted descending
	}
	if got := PercentileDur(samples, 50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := PercentileDur(samples, 99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := PercentileDur(samples, 100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := PercentileDur(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	if got := PercentileDur(samples[:1], 99); got != 100*time.Millisecond {
		t.Errorf("single-sample p99 = %v, want the sample", got)
	}
}
