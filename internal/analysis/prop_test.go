package analysis_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// This file is the property-test half of the verifier's soundness story:
// the certificate "deadlock-free with finite bound" must mean something at
// runtime.  A generator builds random small plans (≤6 boxes) over an
// ordered tag alphabet — every box consumes level i and produces level
// i+1, so any generated plan terminates by construction — and every plan
// the verifier certifies deadlock-free is soak-run at the harshest
// configuration (stream buffer 1, batch B=1, box workers W=1) under a
// watchdog.  A certified plan that hangs is a verifier unsoundness; its
// seed goes into regressionSeeds below so the failure is replayed forever.

// regressionSeeds pins generator seeds that once produced a hang or a
// wrong verdict.  Add the seed the failure message names; the sweep runs
// these before the random range.
var regressionSeeds = []int64{}

// lvlTag names the ordered tag alphabet: level 0 is <a>, level 1 <b>, ...
func lvlTag(i int) string {
	if i > 15 {
		panic("prop: level alphabet exhausted")
	}
	return string(rune('a' + i))
}

// planGen grows a random combinator tree.  Leaves are pass-through boxes
// from one level tag to the next; serial, parallel, star and split
// combinators stack on top.  Every record also carries the index tag <s>,
// which drives indexed splits.
type planGen struct {
	r     *rand.Rand
	boxes int // leaf budget
	n     int // name counter
}

func (g *planGen) box(level int) (core.Node, int) {
	g.boxes--
	g.n++
	sig, err := core.ParseSignature(fmt.Sprintf("(<%s>,<s>) -> (<%s>,<s>)",
		lvlTag(level), lvlTag(level+1)))
	if err != nil {
		panic(err)
	}
	name := fmt.Sprintf("step%d", g.n)
	return core.NewBox(name, sig, func(args []any, out *core.Emitter) error {
		return out.Out(1, args[0], args[1])
	}), level + 1
}

// chain builds the straight box pipeline from level `from` to level `to`,
// used to land a parallel branch on the same output level as its sibling.
func (g *planGen) chain(from, to int) core.Node {
	var nodes []core.Node
	for l := from; l < to; l++ {
		n, _ := g.box(l)
		nodes = append(nodes, n)
	}
	if len(nodes) == 1 {
		return nodes[0]
	}
	return core.Serial(nodes...)
}

func (g *planGen) gen(level, depth int) (core.Node, int) {
	if depth <= 0 || g.boxes <= 1 || g.r.Intn(3) == 0 {
		return g.box(level)
	}
	switch g.r.Intn(4) {
	case 0: // serial composition
		a, mid := g.gen(level, depth-1)
		b, out := g.gen(mid, depth-1)
		return core.Serial(a, b), out
	case 1: // parallel: both branches land on the same level
		a, out := g.gen(level, depth-1)
		return core.Parallel(a, g.chain(level, out)), out
	case 2: // star: one pass through the operand reaches the exit level
		inner, out := g.box(level)
		exit := core.Pattern{Variant: core.NewVariant(core.Tag(lvlTag(out)), core.Tag("s"))}
		return core.Star(inner, exit), out
	default: // indexed split over the sequence tag
		inner, out := g.box(level)
		return core.Split(inner, "s"), out
	}
}

// genPlan builds the random node for one seed and compiles it.
func genPlan(t *testing.T, seed int64) (*core.Plan, core.Node) {
	t.Helper()
	g := &planGen{r: rand.New(rand.NewSource(seed)), boxes: 6}
	node, _ := g.gen(0, 3)
	plan, err := core.Compile(node)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	if n := len(plan.TypeErrors()); n != 0 {
		t.Fatalf("seed %d: generator produced %d type errors: %v", seed, n, plan.TypeErrors())
	}
	return plan, node
}

// soak runs a certified plan at buffer 1, B=1, W=1 — the configuration
// with the least slack, where any wait-for cycle the verifier missed will
// actually block — and fails hard if it does not drain within the
// watchdog.
func soak(t *testing.T, seed int64, plan *core.Plan) {
	t.Helper()
	const nRecords = 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := plan.Start(ctx,
		core.WithStreamBuffer(1), core.WithStreamBatch(1), core.WithBoxWorkers(1))
	done := make(chan int, 1)
	go func() {
		n := 0
		for range h.Out() {
			n++
		}
		done <- n
	}()
	go func() {
		for i := 0; i < nRecords; i++ {
			r := core.NewRecord().SetTag(lvlTag(0), 0).SetTag("s", i)
			if err := h.Send(r); err != nil {
				return
			}
		}
		h.Close()
	}()
	select {
	case n := <-done:
		if n != nRecords {
			t.Errorf("seed %d: certified plan dropped records: %d in, %d out", seed, nRecords, n)
		}
	case <-time.After(5 * time.Second):
		h.Cancel()
		t.Fatalf("seed %d: plan certified deadlock-free hung at buffer=1 B=1 W=1 — verifier unsoundness; add the seed to regressionSeeds", seed)
	}
}

// TestPropCertifiedPlansDontHang is the property sweep: every seed whose
// plan the verifier certifies deadlock-free must drain a full soak run.
// Seeds the verifier declines to certify are skipped (the generator only
// builds terminating topologies, so near-all seeds must certify — a
// collapse in the certified fraction is a verifier regression too).
func TestPropCertifiedPlansDontHang(t *testing.T) {
	seeds := append(append([]int64{}, regressionSeeds...), func() []int64 {
		s := make([]int64, 40)
		for i := range s {
			s[i] = int64(i + 1)
		}
		return s
	}()...)
	certified := 0
	for _, seed := range seeds {
		plan, _ := genPlan(t, seed)
		rep := analysis.Analyze(plan)
		if !rep.DeadlockFree() {
			t.Logf("seed %d: not certified: %v", seed, rep.Findings)
			continue
		}
		if rep.Bound == nil || !rep.Bound.Finite {
			t.Errorf("seed %d: certified but no finite bound: %v", seed, rep.Bound)
		}
		certified++
		soak(t, seed, plan)
	}
	if certified*2 < len(seeds) {
		t.Errorf("only %d/%d generated plans certified deadlock-free — generator or verifier drifted", certified, len(seeds))
	}
}

// TestPropStarvingSyncFlagged is the negative property: grafting a
// synchrocell with an unsatisfiable pattern onto any generated plan must
// revoke the deadlock-free certificate — the verifier may not certify a
// plan whose join waits for a variant nothing can produce.
func TestPropStarvingSyncFlagged(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := &planGen{r: rand.New(rand.NewSource(seed)), boxes: 6}
		node, out := g.gen(0, 3)
		starving := core.Serial(node, core.Sync(
			core.Pattern{Variant: core.NewVariant(core.Tag(lvlTag(out)), core.Tag("s"))},
			core.Pattern{Variant: core.NewVariant(core.Tag("ghost"), core.Tag("s"))},
		))
		plan, err := core.Compile(starving)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		rep := analysis.Analyze(plan)
		if rep.DeadlockFree() {
			t.Errorf("seed %d: starving sync certified deadlock-free — verifier unsoundness", seed)
		}
	}
}
