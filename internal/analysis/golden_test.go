package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lang"
)

var update = flag.Bool("update", false, "rewrite golden files")

// autoNamePat normalizes the process-global combinator counter out of node
// paths ("serial#12" → "serial#n") so goldens are stable across test
// orderings.
var autoNamePat = regexp.MustCompile(`#\d+`)

func normalize(s string) string { return autoNamePat.ReplaceAllString(s, "#n") }

// stubRegistry binds every box the program declares to a no-op
// implementation — the fixtures are only ever compiled, never run.
func stubRegistry(prog *lang.Program) *lang.Registry {
	reg := lang.NewRegistry()
	for _, bd := range prog.Boxes {
		reg.RegisterFunc(bd.Name, func([]any, *core.Emitter) error { return nil })
	}
	return reg
}

// analyzeFile parses, builds and analyzes the single net of a .snet file
// under the default capacity assumptions.
func analyzeFile(t *testing.T, path string) *analysis.Report {
	t.Helper()
	return analyzeFileCaps(t, path, analysis.DefaultCaps())
}

// analyzeFileCaps is analyzeFile under explicit capacity assumptions.
func analyzeFileCaps(t *testing.T, path string, caps analysis.Caps) *analysis.Report {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(prog.Nets) != 1 {
		t.Fatalf("%s: want exactly one net, got %d", path, len(prog.Nets))
	}
	_, rep, _ := lang.AnalyzeNetWithCaps(prog, prog.Nets[0].Name, stubRegistry(prog), caps)
	if rep == nil {
		t.Fatalf("%s: no report", path)
	}
	return rep
}

// render produces the golden form: one normalized Finding per line, empty
// for a clean pass.
func render(rep *analysis.Report) string {
	var b strings.Builder
	for _, f := range rep.Findings {
		fmt.Fprintln(&b, normalize(f.String()))
	}
	return b.String()
}

func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestLintFixtures checks the three seeded defect programs against their
// golden finding lists: node paths, source positions and messages.
func TestLintFixtures(t *testing.T) {
	for _, name := range []string{"deadlock_sync", "dead_arm", "unbounded_split"} {
		t.Run(name, func(t *testing.T) {
			rep := analyzeFile(t, filepath.Join("testdata", name+".snet"))
			if rep.Empty() {
				t.Fatalf("fixture %s produced no findings", name)
			}
			checkGolden(t, filepath.Join("testdata", name+".golden"), render(rep))
		})
	}
}

// TestVerifierFixtures checks the deadlock & boundedness verifier's seeded
// defect programs against their golden counterexample traces: a wait-for
// cycle closed by a downstream producer, a diverging star with unbounded
// occupancy, and a sound plan that exceeds a configured admission budget.
func TestVerifierFixtures(t *testing.T) {
	budgeted := analysis.DefaultCaps()
	budgeted.MemoryBudget = 1000
	for _, tc := range []struct {
		name string
		caps analysis.Caps
	}{
		{"deadlock_cycle", analysis.DefaultCaps()},
		{"diverging_star", analysis.DefaultCaps()},
		{"overbudget", budgeted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyzeFileCaps(t, filepath.Join("testdata", tc.name+".snet"), tc.caps)
			if rep.Empty() {
				t.Fatalf("fixture %s produced no findings", tc.name)
			}
			checkGolden(t, filepath.Join("testdata", tc.name+".golden"), render(rep))
		})
	}
}

// TestWorkloadProgramsClean checks the shipped workload/example programs
// analyze clean — the golden files are empty.
func TestWorkloadProgramsClean(t *testing.T) {
	for _, tc := range []struct{ name, path string }{
		{"wavefront", "../../examples/wavefront/wavefront.snet"},
		{"mergesort", "../../examples/divconq/mergesort.snet"},
		{"webpipe", "../../examples/webpipe/webpipe.snet"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyzeFile(t, tc.path)
			if !rep.Empty() {
				t.Errorf("want clean pass, got:\n%s", render(rep))
			}
			checkGolden(t, filepath.Join("testdata", tc.name+"_clean.golden"), render(rep))
		})
	}
}
