// Package analysis is the graph-level static-analysis pass over compiled
// Plans — the liveness/deadlock half of the claim that S-Net coordination is
// statically checkable.  Where the compile-time shape-flow pass (core's
// flow.go) reports *type* defects — shapes a box rejects, branches nothing
// routes to — this pass reads the flow's per-path reachability facts
// (Plan.FlowIn/FlowOut/FlowExact) together with the structured graph
// (Plan.Graph) and reports *coordination* defects:
//
//	sync-starvation   a synchrocell join pattern the upstream flow can
//	                  never supply: records matching the other patterns
//	                  are stored and held forever — the join deadlocks.
//	dead-arm          a subgraph no variant of the closed-world input
//	                  type ever reaches (parallel branches beyond the
//	                  compile pass's unreachable-branch error, star
//	                  chains that are never entered, synchrocells that
//	                  can never fire).
//	star-divergence   a serial-replication chain whose records can never
//	                  satisfy the exit pattern: the chain unfolds without
//	                  bound and nothing ever leaves.
//	unbounded-split   an indexed parallel replication whose replicas each
//	                  contain a starving join: replicas accumulate held
//	                  records with no close or reap path retiring them.
//	marker-hazard     subgraph shapes that can drop or reorder reserved
//	                  "__snet_" control records: hiding reserved tags,
//	                  or session splits nested inside replication where
//	                  the close/ack barrier degrades to merge order.
//
// Soundness: findings are warnings, not errors.  The analysis is
// closed-world over the plan's inferred (or declared) input type, and the
// underlying variant sets are approximate downstream of synchrocells and
// after truncation — Finding.Exact records whether the supporting flow was
// exact.  The pass never blocks Compile; surface tools (snetrun -check
// -lint, snetd registration logging) decide how loudly to report.
package analysis
