package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/workloads"
)

func nopBox(args []any, out *core.Emitter) error { return nil }

func box(name, sig string) core.Node {
	return core.NewBox(name, core.MustParseSignature(sig), nopBox)
}

func pat(s string) core.Pattern { return core.MustParsePattern(s) }

// compileAndAnalyze compiles (tolerating type errors — the analysis runs
// either way) and analyzes.
func compileAndAnalyze(t *testing.T, root core.Node, opts ...core.CompileOption) *analysis.Report {
	t.Helper()
	plan, _ := core.Compile(root, opts...)
	if plan == nil {
		t.Fatal("Compile returned nil plan")
	}
	return analysis.Analyze(plan)
}

// codes collects the finding codes of a report.
func codes(r *analysis.Report) []string {
	var out []string
	for _, f := range r.Findings {
		out = append(out, f.Code)
	}
	return out
}

func wantFinding(t *testing.T, r *analysis.Report, code, pathSub, msgSub string) *analysis.Finding {
	t.Helper()
	for _, f := range r.Findings {
		if f.Code == code && strings.Contains(f.Path, pathSub) && strings.Contains(f.Msg, msgSub) {
			return f
		}
	}
	t.Fatalf("no %s finding with path~%q msg~%q; got %v", code, pathSub, msgSub, r.Findings)
	return nil
}

func TestSyncStarvation(t *testing.T) {
	// gen only ever emits the "a" half; the {b,<k>} pattern can never fill.
	net := core.Serial(
		box("gen", "(<seed>) -> (a, <k>)"),
		core.NamedSync("join", pat("{a, <k>}"), pat("{b, <k>}")),
	)
	r := compileAndAnalyze(t, net)
	f := wantFinding(t, r, analysis.CodeSyncStarvation, "/join", "{b, <k>}")
	if !f.Exact {
		t.Errorf("starvation fed by an exact flow should be exact, got %v", f)
	}
	if f.Subject() == nil {
		t.Error("finding has no subject node")
	}
}

func TestSyncNeverFires(t *testing.T) {
	// Nothing upstream matches either pattern: the cell is a dead arm, not
	// a deadlock.
	net := core.Serial(
		box("gen", "(<seed>) -> (c)"),
		core.NamedSync("join", pat("{a, <k>}"), pat("{b, <k>}")),
	)
	r := compileAndAnalyze(t, net)
	wantFinding(t, r, analysis.CodeDeadArm, "/join", "never fires")
}

func TestStarDivergence(t *testing.T) {
	// spin preserves its shape; nothing ever satisfies the exit pattern.
	net := core.NamedStar("loop", box("spin", "(<n>) -> (<n>)"), pat("{<done>}"))
	r := compileAndAnalyze(t, net,
		core.WithInputType(core.RecType{core.NewVariant(core.Tag("n"))}))
	wantFinding(t, r, analysis.CodeStarDivergence, "loop", "unfolds without bound")
}

func TestStarNeverEntered(t *testing.T) {
	// Every input variant satisfies the exit pattern immediately: the chain
	// is dead weight.
	net := core.NamedStar("skip", box("spin", "(<n>) -> (<n>)"), pat("{<n>}"))
	r := compileAndAnalyze(t, net,
		core.WithInputType(core.RecType{core.NewVariant(core.Tag("n"))}))
	wantFinding(t, r, analysis.CodeDeadArm, "skip/operand/spin", "never entered")
}

func TestDeadParallelArmBehindSync(t *testing.T) {
	// The compile pass can only warn about the dead branch (the flow is
	// approximate downstream of the synchrocell); the analysis still
	// reports it as a structured finding, marked imprecise.
	net := core.Serial(
		box("g", "(<s>) -> (a, <k>) | (b, <k>)"),
		core.NamedSync("join", pat("{a, <k>}"), pat("{b, <k>}")),
		core.Parallel(
			box("onMerged", "(a, b, <k>) -> (res)"),
			box("onNever", "(nope) -> (res)"),
		),
	)
	r := compileAndAnalyze(t, net)
	f := wantFinding(t, r, analysis.CodeDeadArm, "branch[1]/onNever", "dead")
	if f.Exact {
		t.Errorf("dead arm downstream of a sync should be imprecise, got %v", f)
	}
	if len(r.Findings) != 1 {
		t.Errorf("want exactly 1 finding, got %v", r.Findings)
	}
}

func TestUnboundedSplit(t *testing.T) {
	// Only "l" halves are ever produced: each replica's join starves, so
	// replicas accumulate forever.
	net := core.Serial(
		box("feed", "(<job>) -> (l, <p>, <job>)"),
		core.NamedSplit("pairs",
			core.Serial(
				core.NamedSync("pair", pat("{l, <p>, <job>}"), pat("{r, <p>, <job>}")),
				box("merge2", "(l, r, <p>, <job>) -> (out, <done>)"),
			),
			"p"),
	)
	r := compileAndAnalyze(t, net)
	wantFinding(t, r, analysis.CodeSyncStarvation, "/pair", "{r, <job>, <p>}")
	wantFinding(t, r, analysis.CodeUnboundedSplit, "/pairs", "grow without bound")
}

func TestSessionSplitExempt(t *testing.T) {
	// The same starving join under an uncapped session split is not an
	// unbounded-split finding: the session layer owns replica lifecycle.
	net := core.Serial(
		box("feed", "(<job>) -> (l, <p>, <job>)"),
		core.SessionSplit("sess",
			core.NamedSync("pair", pat("{l, <p>, <job>}"), pat("{r, <p>, <job>}")),
			"p"),
	)
	r := compileAndAnalyze(t, net)
	for _, f := range r.Findings {
		if f.Code == analysis.CodeUnboundedSplit {
			t.Errorf("session split must be exempt from unbounded-split, got %v", f)
		}
	}
	wantFinding(t, r, analysis.CodeSyncStarvation, "/pair", "{r, <job>, <p>}")
}

func TestMarkerHazardHideReserved(t *testing.T) {
	net := core.Serial(
		box("g", "(a) -> (a)"),
		core.HideTags("x", core.ReservedTagPrefix+"close"),
	)
	r := compileAndAnalyze(t, net)
	wantFinding(t, r, analysis.CodeMarkerHazard, "hide", "reserved control tag")
}

func TestMarkerHazardNestedSessionSplit(t *testing.T) {
	inner := core.SessionSplit("sess", box("g", "(a, <k>) -> (a, <k>)"), "k")
	net := core.NamedSplit("outer", inner, "shard")
	r := compileAndAnalyze(t, net)
	wantFinding(t, r, analysis.CodeMarkerHazard, "/sess", "nested inside")
}

func TestCleanWorkloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		node core.Node
	}{
		{"wavefront", workloads.WavefrontNet(8, 61)},
		{"divconq", workloads.DivConqNet(64, 8)},
		{"webpipe", workloads.WebPipeNet()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := core.Compile(tc.node)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			r := analysis.Analyze(plan)
			if !r.Empty() {
				t.Errorf("want clean pass, got findings %v (codes %v)", r.Findings, codes(r))
			}
			if r.Nodes == 0 {
				t.Error("report counted no nodes")
			}
		})
	}
}
