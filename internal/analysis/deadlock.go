package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// The deadlock pass: wait-for cycle detection over the coordination
// structure, and counterexample trace construction for every deadlock-class
// finding.
//
// A compiled plan's stream edges form a tree — the only cyclic edge shape
// is a star's feedback (GraphNode.Feedback): each unfolded stage's chain
// port feeds the next replica of the same operand.  A starving join is
// therefore a plain starvation unless the variant it awaits has a producer
// that the join's own output feeds: a producer strictly downstream in
// pipeline order (the records that could complete the join can only
// materialize after it has fired), or a producer sharing a star feedback
// loop with the join.  Either way the wait is circular and no schedule
// resolves it — those starvation findings are upgraded to deadlock-cycle
// with the producer appended to the trace.  Everything else the flow pass
// reached and the occupancy pass bounded is proven deadlock-free: acyclic
// bounded streams drain, so blocking is always transient.

// checkDeadlocks upgrades sync-starvation findings whose awaited variant
// has a producer fed by the join's own output, and records the producer for
// trace construction.
func (a *analyzer) checkDeadlocks(root *core.GraphNode) {
	for _, f := range a.findings {
		if f.Code != CodeSyncStarvation || f.Variant == nil {
			continue
		}
		prods := downstreamProducers(root, f.Path, f.Variant)
		if len(prods) == 0 {
			continue
		}
		p := prods[0]
		f.Code = CodeDeadlockCycle
		f.Msg = fmt.Sprintf(
			"wait-for cycle: synchrocell %s awaits %s, but its only producer (%s at %s) is fed through the cell itself — the records that could complete the join can only exist after it has fired",
			f.Node, f.Variant, p.Name, p.Path)
		a.cycleProducers[f] = prods
	}
}

// downstreamProducers returns the leaf nodes whose declared output supplies
// variant v and whose input is fed by the output of the node at fromPath:
// nodes on the b-side of a serial combinator whose a-side contains
// fromPath, and — through star feedback — any producer sharing a star
// operand with fromPath.  The node at fromPath itself is excluded.
func downstreamProducers(g *core.GraphNode, fromPath string, v core.Variant) []*core.GraphNode {
	var out []*core.GraphNode
	if !contains(g, fromPath) {
		return nil
	}
	switch g.Kind {
	case "serial":
		if contains(g.Children[0], fromPath) {
			out = append(out, downstreamProducers(g.Children[0], fromPath, v)...)
			out = append(out, producersIn(g.Children[1], fromPath, v)...)
		} else {
			out = append(out, downstreamProducers(g.Children[1], fromPath, v)...)
		}
	case "star":
		// Feedback: the operand's output re-enters the operand, so every
		// producer in the loop is downstream of every node in it.
		out = append(out, producersIn(g.Children[0], fromPath, v)...)
	default:
		for _, ch := range g.Children {
			if contains(ch, fromPath) {
				out = append(out, downstreamProducers(ch, fromPath, v)...)
			}
		}
	}
	return out
}

// contains reports whether the subtree at g includes the node at path.
func contains(g *core.GraphNode, path string) bool {
	return g.Path == path || strings.HasPrefix(path, g.Path+"/")
}

// producersIn collects leaves of the subtree (excluding the node at
// skipPath) whose declared output signature includes a variant supplying v.
func producersIn(g *core.GraphNode, skipPath string, v core.Variant) []*core.GraphNode {
	var out []*core.GraphNode
	if g.Path != skipPath && len(g.Children) == 0 {
		for _, o := range g.Out {
			if v.SubsetOf(o) {
				out = append(out, g)
				break
			}
		}
	}
	for _, ch := range g.Children {
		out = append(out, producersIn(ch, skipPath, v)...)
	}
	return out
}

// attachTraces builds the counterexample trace for every deadlock-class
// finding: the ordered chain of graph edges from the network entry to the
// defect, each annotated with its blocking fill state, then the defect's
// held/awaited state — and for wait-for cycles, the producer that closes
// the cycle.
func (a *analyzer) attachTraces(root *core.GraphNode) {
	edgeState := fmt.Sprintf("fills to %d items (%d frames × %d + %d pending + 1 in hand), then blocks its writer",
		core.StreamCapacity(a.caps.StreamBuffer, a.caps.StreamBatch),
		a.caps.StreamBuffer, a.caps.StreamBatch, a.caps.StreamBatch)
	for _, f := range a.findings {
		if !deadlockCodes[f.Code] || len(f.Trace) > 0 {
			continue
		}
		chain := ancestors(root, f.Path)
		if chain == nil {
			continue
		}
		for i, g := range chain[:len(chain)-1] {
			state := fmt.Sprintf("records enter %s %s", g.Kind, g.Name)
			if i > 0 {
				state = fmt.Sprintf("the bounded stream into %s %s %s", g.Kind, g.Name, edgeState)
			}
			f.Trace = append(f.Trace, TraceStep{Path: g.Path, Node: g.Name, State: state, subject: g.Node})
		}
		g := chain[len(chain)-1]
		f.Trace = append(f.Trace, TraceStep{
			Path: g.Path, Node: g.Name, subject: g.Node,
			State: defectState(f, g),
		})
		for _, p := range a.cycleProducers[f] {
			f.Trace = append(f.Trace, TraceStep{
				Path: p.Path, Node: p.Name, subject: p.Node,
				State: fmt.Sprintf(
					"%s %s is the only producer of %s, and its input is fed by the blocked join's output — the wait-for cycle closes here",
					p.Kind, p.Name, f.Variant),
			})
		}
	}
}

// defectState renders the final trace step's held/awaited state per code.
func defectState(f *Finding, g *core.GraphNode) string {
	switch f.Code {
	case CodeSyncStarvation, CodeDeadlockCycle:
		return fmt.Sprintf(
			"synchrocell %s stores a record per fillable join pattern and awaits %s, which never arrives — the stored records are held forever",
			g.Name, f.Variant)
	case CodeStarDivergence, CodeUnboundedOccupancy:
		return fmt.Sprintf(
			"records circulate through star %s without ever satisfying the exit pattern: each pass re-enters the feedback edge and occupancy grows by one per entering record",
			g.Name)
	case CodeUnboundedSplit:
		return fmt.Sprintf(
			"every distinct <%s> value instantiates a replica of split %s whose join never completes, so replicas accumulate without a retire path",
			g.Tag, g.Name)
	}
	return f.Msg
}
