package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Finding codes.
const (
	// CodeSyncStarvation marks a synchrocell join pattern the inferred
	// upstream flow can never supply while other patterns fill — the
	// stored records are held forever.
	CodeSyncStarvation = "sync-starvation"
	// CodeDeadArm marks a subgraph no variant of the closed-world input
	// type ever reaches, or a synchrocell that can never fire.
	CodeDeadArm = "dead-arm"
	// CodeStarDivergence marks a serial replication whose entering records
	// can never satisfy the exit pattern.
	CodeStarDivergence = "star-divergence"
	// CodeUnboundedSplit marks an indexed parallel replication whose
	// replicas contain a starving join and have no retire path.
	CodeUnboundedSplit = "unbounded-split"
	// CodeMarkerHazard marks a subgraph that can drop or reorder reserved
	// "__snet_" control records.
	CodeMarkerHazard = "marker-hazard"
)

// Finding is one structured analysis result, mirroring core.TypeError: Path
// locates the node from the compiled root, Pos is filled in by surface
// front ends (snet/lang) that can map the subject node to .snet source.
type Finding struct {
	Code    string       // one of the Code constants
	Path    string       // node path from the compiled root
	Node    string       // the subject node's name
	Variant core.Variant // record shape or pattern variant exhibiting the defect, if any
	Msg     string
	Pos     string // source position ("line:col"), if known
	// Exact reports whether the supporting flow facts were exact; findings
	// downstream of a synchrocell or a truncated variant set are
	// approximate and rendered as such.
	Exact bool

	subject core.Node
}

// Subject returns the node the finding is about, for front ends that map
// nodes back to source positions (cf. core.TypeError.Subject).
func (f *Finding) Subject() core.Node { return f.subject }

func (f *Finding) String() string {
	var b strings.Builder
	b.WriteString("snet: ")
	if f.Pos != "" {
		b.WriteString(f.Pos)
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "lint [%s] at %s: %s", f.Code, f.Path, f.Msg)
	if !f.Exact {
		b.WriteString(" (imprecise: approximate variant flow)")
	}
	return b.String()
}

// Report is the result of one Analyze call.
type Report struct {
	// Findings, sorted by (Path, Code, Msg) for stable output.
	Findings []*Finding
	// Nodes is the number of graph nodes analysed.
	Nodes int
}

// Empty reports whether the analysis found nothing.
func (r *Report) Empty() bool { return len(r.Findings) == 0 }
