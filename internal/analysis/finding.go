package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Finding codes.
const (
	// CodeSyncStarvation marks a synchrocell join pattern the inferred
	// upstream flow can never supply while other patterns fill — the
	// stored records are held forever.
	CodeSyncStarvation = "sync-starvation"
	// CodeDeadArm marks a subgraph no variant of the closed-world input
	// type ever reaches, or a synchrocell that can never fire.
	CodeDeadArm = "dead-arm"
	// CodeStarDivergence marks a serial replication whose entering records
	// can never satisfy the exit pattern.
	CodeStarDivergence = "star-divergence"
	// CodeUnboundedSplit marks an indexed parallel replication whose
	// replicas contain a starving join and have no retire path.
	CodeUnboundedSplit = "unbounded-split"
	// CodeMarkerHazard marks a subgraph that can drop or reorder reserved
	// "__snet_" control records.
	CodeMarkerHazard = "marker-hazard"
	// CodeDeadlockCycle marks a wait-for cycle through the coordination
	// structure: a synchrocell awaits a variant whose only producers lie
	// downstream of the cell itself, so the records that could complete
	// the join can only materialize after the join has fired — a circular
	// wait that no schedule resolves.
	CodeDeadlockCycle = "deadlock-cycle"
	// CodeCapacityOverflow marks a plan whose static memory high-water
	// bound exceeds the configured budget (Caps.MemoryBudget) — the
	// admission-control verdict: the plan is deadlock-free but cannot be
	// guaranteed to fit.
	CodeCapacityOverflow = "capacity-overflow"
	// CodeUnboundedOccupancy marks a subgraph whose queue occupancy grows
	// without bound under any finite capacity assumption — a diverging
	// star chain accumulating every record that enters it.
	CodeUnboundedOccupancy = "unbounded-occupancy"
)

// deadlockCodes are the finding codes that make a plan deadlock-positive:
// some records can be held, circulate, or accumulate forever.  dead-arm and
// marker-hazard are structural defects but not deadlocks; capacity-overflow
// is a boundedness verdict against a budget, not a deadlock.
var deadlockCodes = map[string]bool{
	CodeSyncStarvation:     true,
	CodeDeadlockCycle:      true,
	CodeStarDivergence:     true,
	CodeUnboundedSplit:     true,
	CodeUnboundedOccupancy: true,
}

// TraceStep is one hop of a counterexample trace: the graph edge into Path
// together with the blocking fill state of that edge (or the held state of
// the node itself on the final step).  Pos is filled in by surface front
// ends that can map the subject node to .snet source, exactly like
// Finding.Pos.
type TraceStep struct {
	Path  string `json:"path"`
	Node  string `json:"node"`
	State string `json:"state"`
	Pos   string `json:"pos,omitempty"`

	subject core.Node
}

// Subject returns the node this step is anchored to, for front ends that
// decorate steps with source positions.
func (s *TraceStep) Subject() core.Node { return s.subject }

// Finding is one structured analysis result, mirroring core.TypeError: Path
// locates the node from the compiled root, Pos is filled in by surface
// front ends (snet/lang) that can map the subject node to .snet source.
type Finding struct {
	Code    string       // one of the Code constants
	Path    string       // node path from the compiled root
	Node    string       // the subject node's name
	Variant core.Variant // record shape or pattern variant exhibiting the defect, if any
	Msg     string
	Pos     string // source position ("line:col"), if known
	// Exact reports whether the supporting flow facts were exact; findings
	// downstream of a synchrocell or a truncated variant set are
	// approximate and rendered as such.
	Exact bool
	// Trace is the counterexample: the ordered chain of graph edges from
	// the network entry to the defect (and, for wait-for cycles, onward to
	// the node that closes the cycle), each step annotated with its
	// blocking fill state.  Empty for findings without an occupancy
	// witness (dead arms, marker hazards).
	Trace []TraceStep

	subject core.Node
}

// Subject returns the node the finding is about, for front ends that map
// nodes back to source positions (cf. core.TypeError.Subject).
func (f *Finding) Subject() core.Node { return f.subject }

func (f *Finding) String() string {
	var b strings.Builder
	b.WriteString("snet: ")
	if f.Pos != "" {
		b.WriteString(f.Pos)
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "lint [%s] at %s: %s", f.Code, f.Path, f.Msg)
	if !f.Exact {
		b.WriteString(" (imprecise: approximate variant flow)")
	}
	for i, s := range f.Trace {
		b.WriteString("\n")
		fmt.Fprintf(&b, "    trace[%d]", i)
		if s.Pos != "" {
			b.WriteString(" " + s.Pos)
		}
		fmt.Fprintf(&b, " %s: %s", s.Path, s.State)
	}
	return b.String()
}

// Report is the result of one Analyze call.
type Report struct {
	// Findings, sorted by (Path, Code, Msg) for stable output and
	// deduplicated across shared memoized subtrees.
	Findings []*Finding
	// Nodes is the number of graph nodes analysed.
	Nodes int
	// Edges is the number of stream edges the occupancy pass modeled.
	Edges int
	// Bound is the whole-plan static memory high-water bound computed by
	// the occupancy pass under the report's Caps.
	Bound *Bound
	// Caps are the capacity assumptions the occupancy verdicts hold under.
	Caps Caps
}

// Empty reports whether the analysis found nothing.
func (r *Report) Empty() bool { return len(r.Findings) == 0 }

// DeadlockFree reports the verifier's headline verdict: no finding of a
// deadlock class (sync starvation, wait-for cycles, diverging or unbounded
// replication).  Structural findings (dead arms, marker hazards) and the
// budget verdict (capacity-overflow) do not revoke it.
func (r *Report) DeadlockFree() bool {
	for _, f := range r.Findings {
		if deadlockCodes[f.Code] {
			return false
		}
	}
	return true
}
