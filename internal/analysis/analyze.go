package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Analyze runs every check over the compiled plan under the default
// capacity assumptions and returns the findings, sorted by (Path, Code,
// Msg).  The plan may have compile-time TypeErrors; the analysis still runs
// (the flow facts exist either way) and suppresses findings the compile
// pass already reported as errors at the same path.
func Analyze(p *core.Plan) *Report {
	return AnalyzeWithCaps(p, DefaultCaps())
}

// AnalyzeWithCaps is Analyze under explicit capacity assumptions: the
// occupancy bound, the deadlock verdict and any capacity-overflow finding
// are guarantees about runs configured at or below the given caps.
func AnalyzeWithCaps(p *core.Plan, caps Caps) *Report {
	a := &analyzer{
		plan:           p,
		caps:           caps,
		errPaths:       map[string]string{},
		starving:       map[string]core.Variant{},
		diverging:      map[string]*core.GraphNode{},
		cycleProducers: map[*Finding][]*core.GraphNode{},
	}
	for _, te := range p.TypeErrors() {
		a.errPaths[te.Path] = te.Code
	}
	g := p.Graph()
	if in, ok := p.FlowIn(g.Path); ok && len(in) > 0 {
		a.rootLive = true
	}
	a.walk(g, walkCtx{})
	a.checkSplits(g)
	a.checkDeadlocks(g)
	a.computeBound(g)
	a.attachTraces(g)
	a.findings = sortAndDedupe(a.findings)
	return &Report{
		Findings: a.findings,
		Nodes:    a.nodes,
		Edges:    a.edges,
		Bound:    a.bound,
		Caps:     a.caps,
	}
}

// sortAndDedupe orders findings by (Path, Code, Msg) and collapses repeats
// from shared memoized subtrees: the same defect on the same underlying
// node, reached at several paths, is reported once at the lowest path.
func sortAndDedupe(findings []*Finding) []*Finding {
	sort.SliceStable(findings, func(i, j int) bool {
		x, y := findings[i], findings[j]
		if x.Path != y.Path {
			return x.Path < y.Path
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		return x.Msg < y.Msg
	})
	type key struct {
		code    string
		subject core.Node
		variant string
		msg     string
	}
	seen := map[key]bool{}
	out := findings[:0]
	for _, f := range findings {
		k := key{f.Code, f.subject, fmt.Sprintf("%v", f.Variant), f.Msg}
		if f.subject != nil && seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// analyzer is the state of one Analyze call.
type analyzer struct {
	plan     *core.Plan
	caps     Caps
	findings []*Finding
	nodes    int
	edges    int
	bound    *Bound
	rootLive bool
	// errPaths maps node paths with compile-time TypeErrors to their code,
	// to avoid re-reporting the same defect as a finding.
	errPaths map[string]string
	// starving maps each synchrocell path with an unfillable pattern to
	// that pattern's variant — consumed by the unbounded-split check.
	starving map[string]core.Variant
	// diverging maps each star path whose exit flow is empty to its graph
	// node — consumed by the occupancy pass (unbounded-occupancy).
	diverging map[string]*core.GraphNode
	// cycleProducers maps each deadlock-cycle finding to the producers that
	// close its wait-for cycle — consumed by trace construction.
	cycleProducers map[*Finding][]*core.GraphNode
}

// walkCtx is the ancestor context threaded down the graph walk.
type walkCtx struct {
	// deadReported marks that a dead-arm finding was already emitted for an
	// ancestor; descendants of a dead subgraph are not re-reported.
	deadReported bool
	// enclosingSplit / enclosingStar hold the nearest replicating
	// ancestors' paths ("" if none) — the marker-hazard context.
	enclosingSplit string
	enclosingStar  string
	// parent is the graph parent ("" kind at the root).
	parent *core.GraphNode
}

func (a *analyzer) emit(g *core.GraphNode, code string, variant core.Variant, msg string) {
	a.emitExact(g, code, variant, msg, a.plan.FlowExact(g.Path))
}

func (a *analyzer) emitExact(g *core.GraphNode, code string, variant core.Variant, msg string, exact bool) {
	a.findings = append(a.findings, &Finding{
		Code:    code,
		Path:    g.Path,
		Node:    g.Name,
		Variant: variant,
		Msg:     msg,
		Exact:   exact,
		subject: g.Node,
	})
}

// reached reports whether the flow pass delivered at least one variant to
// the node at path.
func (a *analyzer) reached(path string) bool {
	in, ok := a.plan.FlowIn(path)
	return ok && len(in) > 0
}

func (a *analyzer) walk(g *core.GraphNode, cx walkCtx) {
	a.nodes++
	if a.rootLive && !a.reached(g.Path) && !cx.deadReported {
		a.checkDeadArm(g, cx)
		cx.deadReported = true
	}
	if a.reached(g.Path) {
		switch g.Kind {
		case "sync":
			a.checkSync(g)
		case "star":
			a.checkStar(g)
		}
	}
	switch g.Kind {
	case "hide":
		a.checkHide(g)
	case "split":
		a.checkSessionNesting(g, cx)
	}

	childCx := cx
	childCx.parent = g
	switch g.Kind {
	case "split":
		childCx.enclosingSplit = g.Path
	case "star":
		childCx.enclosingStar = g.Path
	}
	for _, ch := range g.Children {
		a.walk(ch, childCx)
	}
}
