package analysis

import (
	"sort"

	"repro/internal/core"
)

// Analyze runs every check over the compiled plan and returns the findings,
// sorted by (Path, Code, Msg).  The plan may have compile-time TypeErrors;
// the analysis still runs (the flow facts exist either way) and suppresses
// findings the compile pass already reported as errors at the same path.
func Analyze(p *core.Plan) *Report {
	a := &analyzer{
		plan:     p,
		errPaths: map[string]string{},
		starving: map[string]core.Variant{},
	}
	for _, te := range p.TypeErrors() {
		a.errPaths[te.Path] = te.Code
	}
	g := p.Graph()
	if in, ok := p.FlowIn(g.Path); ok && len(in) > 0 {
		a.rootLive = true
	}
	a.walk(g, walkCtx{})
	a.checkSplits(g)
	sort.SliceStable(a.findings, func(i, j int) bool {
		x, y := a.findings[i], a.findings[j]
		if x.Path != y.Path {
			return x.Path < y.Path
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		return x.Msg < y.Msg
	})
	return &Report{Findings: a.findings, Nodes: a.nodes}
}

// analyzer is the state of one Analyze call.
type analyzer struct {
	plan     *core.Plan
	findings []*Finding
	nodes    int
	rootLive bool
	// errPaths maps node paths with compile-time TypeErrors to their code,
	// to avoid re-reporting the same defect as a finding.
	errPaths map[string]string
	// starving maps each synchrocell path with an unfillable pattern to
	// that pattern's variant — consumed by the unbounded-split check.
	starving map[string]core.Variant
}

// walkCtx is the ancestor context threaded down the graph walk.
type walkCtx struct {
	// deadReported marks that a dead-arm finding was already emitted for an
	// ancestor; descendants of a dead subgraph are not re-reported.
	deadReported bool
	// enclosingSplit / enclosingStar hold the nearest replicating
	// ancestors' paths ("" if none) — the marker-hazard context.
	enclosingSplit string
	enclosingStar  string
	// parent is the graph parent ("" kind at the root).
	parent *core.GraphNode
}

func (a *analyzer) emit(g *core.GraphNode, code string, variant core.Variant, msg string) {
	a.emitExact(g, code, variant, msg, a.plan.FlowExact(g.Path))
}

func (a *analyzer) emitExact(g *core.GraphNode, code string, variant core.Variant, msg string, exact bool) {
	a.findings = append(a.findings, &Finding{
		Code:    code,
		Path:    g.Path,
		Node:    g.Name,
		Variant: variant,
		Msg:     msg,
		Exact:   exact,
		subject: g.Node,
	})
}

// reached reports whether the flow pass delivered at least one variant to
// the node at path.
func (a *analyzer) reached(path string) bool {
	in, ok := a.plan.FlowIn(path)
	return ok && len(in) > 0
}

func (a *analyzer) walk(g *core.GraphNode, cx walkCtx) {
	a.nodes++
	if a.rootLive && !a.reached(g.Path) && !cx.deadReported {
		a.checkDeadArm(g, cx)
		cx.deadReported = true
	}
	if a.reached(g.Path) {
		switch g.Kind {
		case "sync":
			a.checkSync(g)
		case "star":
			a.checkStar(g)
		}
	}
	switch g.Kind {
	case "hide":
		a.checkHide(g)
	case "split":
		a.checkSessionNesting(g, cx)
	}

	childCx := cx
	childCx.parent = g
	switch g.Kind {
	case "split":
		childCx.enclosingSplit = g.Path
	case "star":
		childCx.enclosingStar = g.Path
	}
	for _, ch := range g.Children {
		a.walk(ch, childCx)
	}
}
