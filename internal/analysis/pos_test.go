package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lang"
)

var lineColPat = regexp.MustCompile(`^\d+:\d+$`)

// TestFindingPositionsRoundTrip pins the satellite contract: every Finding
// on a .snet-built net carries a line:col position, and that position is
// exactly what the builder's node→Pos index (the same index CompileNet uses
// for TypeErrors) records for the finding's subject node.
func TestFindingPositionsRoundTrip(t *testing.T) {
	for _, name := range []string{"deadlock_sync", "dead_arm", "unbounded_split"} {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name+".snet"))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			reg := stubRegistry(prog)
			netName := prog.Nets[0].Name

			// The decorated path: AnalyzeNet fills Finding.Pos.
			_, rep, _ := lang.AnalyzeNet(prog, netName, reg)
			if rep.Empty() {
				t.Fatal("fixture produced no findings")
			}

			// The raw path: build once more, analyze the plan directly, and
			// map subjects through the node→Pos index by hand.
			b, err := lang.BuildNet(prog, netName, reg)
			if err != nil {
				t.Fatal(err)
			}
			plan, _ := core.Compile(b.Node)
			raw := analysis.Analyze(plan)
			if len(raw.Findings) != len(rep.Findings) {
				t.Fatalf("decorated and raw analyses diverge: %d vs %d findings",
					len(rep.Findings), len(raw.Findings))
			}

			for i, f := range rep.Findings {
				if f.Pos == "" {
					t.Errorf("finding %v has no source position", f)
					continue
				}
				if !lineColPat.MatchString(f.Pos) {
					t.Errorf("finding position %q is not line:col", f.Pos)
				}
				// Same program, same builder: the raw finding's subject must
				// resolve through Positions to the same line:col the
				// decorated finding carries.
				pos, ok := b.Positions[raw.Findings[i].Subject()]
				if !ok {
					t.Errorf("subject of %v missing from the node→Pos index", raw.Findings[i])
					continue
				}
				if pos.String() != f.Pos {
					t.Errorf("position mismatch for %s at %s: index says %s, finding says %s",
						f.Code, f.Path, pos, f.Pos)
				}
			}
		})
	}
}
