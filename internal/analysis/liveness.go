package analysis

import (
	"fmt"

	"repro/internal/core"
)

// The liveness checks: synchrocell starvation and star divergence.  Both
// read the flow facts at the node's own path, so their verdicts are about
// the closed-world input type the plan was compiled against.

// checkSync classifies each join pattern of a reached synchrocell as
// fillable (some reaching variant supplies it) or starving.  A mix of the
// two is the paper-level deadlock of join coordination: records matching
// the fillable patterns are stored awaiting a partner that never arrives.
// All patterns starving means the cell never fires at all and degenerates
// to an identity — reported as a dead arm instead.
func (a *analyzer) checkSync(g *core.GraphNode) {
	in, _ := a.plan.FlowIn(g.Path)
	var fillable, starving []core.Pattern
	for _, p := range g.Patterns {
		supplied := false
		for _, v := range in {
			if p.Variant.SubsetOf(v) {
				supplied = true
				break
			}
		}
		if supplied {
			fillable = append(fillable, p)
		} else {
			starving = append(starving, p)
		}
	}
	if len(starving) == 0 {
		return
	}
	if len(fillable) == 0 {
		a.emit(g, CodeDeadArm, nil, fmt.Sprintf(
			"synchrocell %s never fires: no variant of the upstream flow matches any join pattern; the cell degenerates to an identity",
			g.Name))
		return
	}
	for _, p := range starving {
		a.starving[g.Path] = p.Variant
		a.emit(g, CodeSyncStarvation, p.Variant, fmt.Sprintf(
			"join pattern %s of synchrocell %s can never be filled: no variant of the upstream flow %v supplies it; records matching %s are stored and held forever — the join deadlocks",
			p, g.Name, in, renderPatterns(fillable)))
	}
}

// checkStar reports a reached star whose exit set is empty: the flow
// fixpoint found no variant — neither an input nor anything the operand
// produces — that satisfies the exit pattern, so records circulate (and the
// chain unfolds) without bound.
func (a *analyzer) checkStar(g *core.GraphNode) {
	out, ok := a.plan.FlowOut(g.Path)
	if !ok || len(out) > 0 {
		return
	}
	exit := ""
	if g.Exit != nil {
		exit = g.Exit.String()
	}
	a.diverging[g.Path] = g
	a.emit(g, CodeStarDivergence, nil, fmt.Sprintf(
		"no record entering star %s can ever satisfy its exit pattern %s: the replication chain unfolds without bound and no record leaves",
		g.Name, exit))
}

func renderPatterns(ps []core.Pattern) string {
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s
}
