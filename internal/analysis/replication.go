package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// The replication checks: unbounded split growth and marker/close-barrier
// hazards around the reserved "__snet_" control-record protocol.

// checkSplits is a second pass over the graph (after the walk has collected
// starving synchrocells): a capped, reached split whose operand subtree
// contains a starving join accumulates replicas without bound — each tag
// value instantiates a replica whose join holds records forever, and with
// the join never completing there is no quiescent point for idle reap or a
// close record to retire the replica cleanly.  Session splits (uncapped)
// are exempt: their lifecycle is owned by the session layer's close/ack
// protocol, not by the data flow.
func (a *analyzer) checkSplits(g *core.GraphNode) {
	if g.Kind == "split" && !g.Uncapped && a.reached(g.Path) {
		for path, variant := range a.starving {
			if strings.HasPrefix(path, g.Path+"/") {
				a.emit(g, CodeUnboundedSplit, variant, fmt.Sprintf(
					"replicas of split %s (indexed by <%s>) grow without bound: the synchrocell at %s can never complete its join, so every tag value leaves a replica holding records forever with no close or reap path retiring it",
					g.Name, g.Tag, path))
			}
		}
	}
	for _, ch := range g.Children {
		a.checkSplits(ch)
	}
}

// checkHide flags a hide node that deletes reserved control tags: replica
// close/ack records and session tags crossing it are corrupted, which
// silently breaks the close barrier of any split downstream.
func (a *analyzer) checkHide(g *core.GraphNode) {
	for _, t := range g.HiddenTags {
		if core.IsReservedLabel(t) {
			a.emit(g, CodeMarkerHazard, core.NewVariant(core.Tag(t)), fmt.Sprintf(
				"hide deletes reserved control tag <%s>: replica close/ack and session records crossing this node are corrupted, breaking the close barrier of downstream replication",
				t))
		}
	}
}

// checkSessionNesting flags an uncapped session split nested inside another
// replicating combinator.  The close/ack barrier is FIFO only within one
// stream; inside an enclosing split the barrier degrades to merge order
// across sibling replicas, and inside a star each lazily-unfolded stage has
// its own replica map, so a close record retires at most the first stage's
// replica.  The session layer relies on the barrier being exact and always
// places its split at the root.
func (a *analyzer) checkSessionNesting(g *core.GraphNode, cx walkCtx) {
	if !g.Uncapped {
		return
	}
	enclosing := ""
	switch {
	case cx.enclosingSplit != "":
		enclosing = "split at " + cx.enclosingSplit
	case cx.enclosingStar != "":
		enclosing = "star at " + cx.enclosingStar
	default:
		return
	}
	a.emit(g, CodeMarkerHazard, nil, fmt.Sprintf(
		"session split %s is nested inside the %s: the replica close/ack barrier only orders control records within one enclosing replica, so session close records can be dropped or reordered against data",
		g.Name, enclosing))
}
