package analysis_test

import (
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/sudoku"
)

// loadNet parses a .snet file and returns its single net's built node.
func loadNet(t *testing.T, path string) core.Node {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	b, err := lang.BuildNet(prog, prog.Nets[0].Name, stubRegistry(prog))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return b.Node
}

// verifierPrograms is every .snet program the fusion-invariance and
// boundedness tests sweep: the shipped workloads plus the seeded defects.
var verifierPrograms = []struct {
	name, path string
	clean      bool
}{
	{"wavefront", "../../examples/wavefront/wavefront.snet", true},
	{"mergesort", "../../examples/divconq/mergesort.snet", true},
	{"webpipe", "../../examples/webpipe/webpipe.snet", true},
	{"deadlock_sync", "testdata/deadlock_sync.snet", false},
	{"deadlock_cycle", "testdata/deadlock_cycle.snet", false},
	{"diverging_star", "testdata/diverging_star.snet", false},
	{"unbounded_split", "testdata/unbounded_split.snet", false},
	{"overbudget", "testdata/overbudget.snet", true},
}

// TestVerdictsFusionInvariant proves the verifier's verdicts cannot depend
// on whether pipeline fusion ran: for every program and every point of the
// capacity matrix, compiling with fusion on and off yields byte-identical
// rendered reports and identical bounds.  This holds by construction — the
// analysis reads Plan.Graph(), the un-fused blueprint, and
// core.FusedSegmentHold(batch) is strictly below the StreamCapacity sum of
// the edges fusion removes — but the sweep pins it against regressions.
func TestVerdictsFusionInvariant(t *testing.T) {
	for _, prog := range verifierPrograms {
		node := loadNet(t, prog.path)
		for _, w := range []int{1, 4, 16} {
			for _, batch := range []int{1, 8, 64} {
				caps := analysis.DefaultCaps()
				caps.BoxWorkers = w
				caps.StreamBatch = batch
				var rendered [2]string
				var bounds [2]*analysis.Bound
				for i, fuse := range []bool{false, true} {
					plan, err := core.Compile(node, core.WithFusion(fuse))
					if err != nil {
						t.Fatalf("%s: compile(fusion=%v): %v", prog.name, fuse, err)
					}
					rep := analysis.AnalyzeWithCaps(plan, caps)
					rendered[i] = render(rep)
					bounds[i] = rep.Bound
				}
				if rendered[0] != rendered[1] {
					t.Errorf("%s (W=%d B=%d): verdicts differ with fusion on vs off\n--- off ---\n%s--- on ---\n%s",
						prog.name, w, batch, rendered[0], rendered[1])
				}
				if bounds[0].Total != bounds[1].Total || bounds[0].Fixed != bounds[1].Fixed || bounds[0].Finite != bounds[1].Finite {
					t.Errorf("%s (W=%d B=%d): bounds differ: %s vs %s",
						prog.name, w, batch, bounds[0], bounds[1])
				}
			}
		}
	}
}

// TestWorkloadBoundsFinite proves every shipped workload program
// deadlock-free with a finite memory high-water bound under default caps.
func TestWorkloadBoundsFinite(t *testing.T) {
	for _, prog := range verifierPrograms {
		if !prog.clean {
			continue
		}
		rep := analyzeFile(t, prog.path)
		if !rep.DeadlockFree() {
			t.Errorf("%s: want deadlock-free, got:\n%s", prog.name, render(rep))
		}
		if rep.Bound == nil || !rep.Bound.Finite || rep.Bound.Total <= 0 {
			t.Errorf("%s: want finite positive bound, got %v", prog.name, rep.Bound)
		}
		if rep.Edges <= 0 {
			t.Errorf("%s: occupancy pass modeled no edges", prog.name)
		}
	}
}

// TestSudokuNetsVerified proves the sudoku case-study networks (built
// straight from the Go combinator API, no .snet source) deadlock-free with
// finite bounds — the paper's figures must pass their own verifier.
func TestSudokuNetsVerified(t *testing.T) {
	for name, node := range map[string]core.Node{
		"fig1": sudoku.Fig1Net(sudoku.NetConfig{}),
		"fig2": sudoku.Fig2Net(sudoku.NetConfig{}),
		"fig3": sudoku.Fig3Net(sudoku.NetConfig{}),
	} {
		plan, err := core.Compile(node)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := analysis.Analyze(plan)
		if !rep.DeadlockFree() {
			t.Errorf("%s: want deadlock-free, got:\n%s", name, render(rep))
		}
		if rep.Bound == nil || !rep.Bound.Finite {
			t.Errorf("%s: want finite bound, got %v", name, rep.Bound)
		}
	}
}

// TestReportDeadlockFree pins the verdict classification: deadlock-class
// codes revoke the verdict, structural and budget findings do not.
func TestReportDeadlockFree(t *testing.T) {
	budgeted := analysis.DefaultCaps()
	budgeted.MemoryBudget = 1
	rep := analyzeFileCaps(t, "testdata/overbudget.snet", budgeted)
	if !rep.DeadlockFree() {
		t.Errorf("capacity-overflow must not revoke deadlock freedom:\n%s", render(rep))
	}
	found := false
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeCapacityOverflow {
			found = true
		}
	}
	if !found {
		t.Errorf("budget of 1 record must overflow, got:\n%s", render(rep))
	}
	for _, name := range []string{"deadlock_sync", "deadlock_cycle", "diverging_star"} {
		rep := analyzeFile(t, "testdata/"+name+".snet")
		if rep.DeadlockFree() {
			t.Errorf("%s: want deadlock-positive, got clean report", name)
		}
	}
}
