package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// The occupancy pass: an abstract interpretation of the compiled graph under
// explicit capacity assumptions.  Every blocking point of the runtime —
// stream edges (buffer × batch frames plus the writer's pending batch and
// the reader's in-hand item), box engines (W in flight plus reorder slots),
// synchrocell stores, parallel merge slots, replication chains — contributes
// a worst-case record count, and the sum is the whole-plan static memory
// high-water bound: no schedule of a deadlock-free plan can hold more
// records at once.
//
// The bound is computed over the UN-FUSED blueprint (Plan.Graph() always
// returns the blueprint root).  Fusion replaces a chain of stream edges with
// a single segment holding core.FusedSegmentHold(batch) records — strictly
// less than the StreamCapacity sum of the edges it removed — so the
// blueprint bound is sound for both execution plans and the verdict cannot
// depend on whether fusion ran.

// Caps are the capacity assumptions an occupancy verdict holds under.  They
// mirror the run options (WithBuffer, WithStreamBatch, WithBoxWorkers,
// WithMaxWidth, WithMaxDepth): the verdict is a guarantee about any run
// configured at or below these values.
type Caps struct {
	// StreamBuffer is the per-stream frame buffer (WithBuffer).
	StreamBuffer int `json:"streamBuffer"`
	// StreamBatch is the frame batch size B (WithStreamBatch).
	StreamBatch int `json:"streamBatch"`
	// BoxWorkers is the assumed invocation width W for boxes that do not
	// pin their own width (WithBoxWorkers); pinned boxes use their own.
	BoxWorkers int `json:"boxWorkers"`
	// SplitWidth is the assumed live replica count per indexed split —
	// the fold width for capped splits, the assumed concurrent session
	// count for uncapped (session) splits.
	SplitWidth int `json:"splitWidth"`
	// StarDepth is the assumed unfolded stage count per serial replication.
	StarDepth int `json:"starDepth"`
	// MemoryBudget, when positive, turns the bound into an admission
	// verdict: a finite bound above the budget is a capacity-overflow
	// finding.  Zero disables the check.
	MemoryBudget int64 `json:"memoryBudget,omitempty"`
}

// DefaultCaps returns the capacity assumptions matching the runtime's
// defaults: 32-frame buffers, batch 8, width-4 boxes, and 64 live replicas
// per replication site.
func DefaultCaps() Caps {
	return Caps{
		StreamBuffer: core.DefaultStreamBuffer,
		StreamBatch:  core.DefaultStreamBatch,
		BoxWorkers:   4,
		SplitWidth:   64,
		StarDepth:    64,
	}
}

// ReplicaTerm is one replication site's contribution to the bound: PerUnit
// records per live replica (operand occupancy plus the replica's own
// edges), Units assumed replicas, Subtotal their product.  For a site
// nested inside another replication the term is per single enclosing
// replica; the enclosing site's PerUnit already includes it.
type ReplicaTerm struct {
	Path     string `json:"path"`
	Kind     string `json:"kind"` // "star" or "split"
	PerUnit  int64  `json:"perUnit"`
	Units    int64  `json:"units"`
	Subtotal int64  `json:"subtotal"`
}

// Bound is the whole-plan static memory high-water bound, in records.
type Bound struct {
	// Fixed is the non-replicated part: every stream edge, box engine,
	// synchrocell and merge slot outside any replication site.
	Fixed int64 `json:"fixed"`
	// Replicas are the replication sites' contributions.
	Replicas []ReplicaTerm `json:"replicas,omitempty"`
	// Finite is false when some subgraph's occupancy grows without bound
	// under any finite capacity assumption (a diverging star); Total is
	// then only the truncated sum at the assumed StarDepth.
	Finite bool `json:"finite"`
	// Total is Fixed plus all replica subtotals plus the two boundary
	// streams.
	Total int64 `json:"total"`
}

// String renders the bound as a one-line verdict fragment.
func (b *Bound) String() string {
	if b == nil {
		return "no bound"
	}
	if !b.Finite {
		return "unbounded occupancy"
	}
	return fmt.Sprintf("%d records (%d fixed + %d replicated)", b.Total, b.Fixed, b.Total-b.Fixed)
}

// bounder is the state of one occupancy computation.
type bounder struct {
	caps  Caps
	bound *Bound
	edges int
	// replDepth counts enclosing replication sites; node holds are
	// attributed to Bound.Fixed only at depth zero (inside a site they are
	// part of that site's PerUnit).
	replDepth int
	// diverging maps star paths whose exit flow is empty (recorded by
	// checkStar) — the unbounded-occupancy sites.
	diverging map[string]*core.GraphNode
}

// edgeCap is the worst-case record count of one stream edge under the caps.
func (b *bounder) edgeCap() int64 {
	b.edges++
	return core.StreamCapacity(b.caps.StreamBuffer, b.caps.StreamBatch)
}

// fixed attributes a hold to the non-replicated part of the bound when we
// are outside every replication site, and returns it unchanged either way.
func (b *bounder) fixed(n int64) int64 {
	if b.replDepth == 0 {
		b.bound.Fixed += n
	}
	return n
}

// node returns the worst-case record count held inside the subtree at g:
// the nodes' own holds plus every internal stream edge.
func (b *bounder) node(g *core.GraphNode) int64 {
	switch g.Kind {
	case "box":
		w := g.Workers
		if w <= 0 {
			w = b.caps.BoxWorkers
		}
		return b.fixed(core.BoxEngineHold(w))
	case "sync":
		// One stored record per join pattern (the fire drains them all).
		n := int64(len(g.Patterns))
		if n < 1 {
			n = 1
		}
		return b.fixed(n)
	case "serial":
		return b.node(g.Children[0]) + b.fixed(b.edgeCap()) + b.node(g.Children[1])
	case "parallel":
		// Dispatcher's record in hand, then per branch: an input edge, the
		// branch subtree, an output edge, and the merge stage's slot.
		occ := b.fixed(1)
		for _, ch := range g.Children {
			occ += b.fixed(b.edgeCap()) + b.node(ch) + b.fixed(b.edgeCap()) + b.fixed(1)
		}
		return occ
	case "star":
		// Entry edge, exit/merge edge and the merge's in-hand record are
		// per-site; each lazily-unfolded stage holds one operand instance
		// plus the chain port feeding the next stage.
		occ := b.fixed(b.edgeCap()) + b.fixed(b.edgeCap()) + b.fixed(1)
		b.replDepth++
		per := b.node(g.Children[0]) + b.edgeCap()
		b.replDepth--
		units := int64(b.caps.StarDepth)
		sub := per * units
		b.bound.Replicas = append(b.bound.Replicas, ReplicaTerm{
			Path: g.Path, Kind: "star", PerUnit: per, Units: units, Subtotal: sub,
		})
		if b.diverging[g.Path] != nil {
			b.bound.Finite = false
		}
		return occ + sub
	case "split":
		// Router's record in hand and the merged output slot are per-site;
		// each live replica holds one operand instance plus its own input
		// and output edges.
		occ := b.fixed(1) + b.fixed(1)
		b.replDepth++
		per := b.edgeCap() + b.node(g.Children[0]) + b.edgeCap()
		b.replDepth--
		units := int64(b.caps.SplitWidth)
		sub := per * units
		b.bound.Replicas = append(b.bound.Replicas, ReplicaTerm{
			Path: g.Path, Kind: "split", PerUnit: per, Units: units, Subtotal: sub,
		})
		return occ + sub
	default: // filter, observe, hide, node: one record in hand
		occ := b.fixed(1)
		for _, ch := range g.Children {
			occ += b.fixed(b.edgeCap()) + b.node(ch)
		}
		return occ
	}
}

// computeBound runs the occupancy pass: it fills Report.Bound/Edges and
// emits the occupancy findings (unbounded-occupancy for diverging stars,
// capacity-overflow against a configured budget).
func (a *analyzer) computeBound(root *core.GraphNode) {
	b := &bounder{caps: a.caps, bound: &Bound{Finite: true}, diverging: a.diverging}
	occ := b.node(root)
	// The network boundary: the input stream and the output record channel.
	occ += b.fixed(b.edgeCap()) + b.fixed(b.edgeCap())
	b.bound.Total = occ
	a.bound = b.bound
	a.edges = b.edges

	for _, path := range sortedKeys(a.diverging) {
		g := a.diverging[path]
		a.emit(g, CodeUnboundedOccupancy, nil, fmt.Sprintf(
			"queue occupancy of star %s grows without bound: every entering record stays in the replication chain, so no finite buffer, batch or depth cap yields a memory high-water bound",
			g.Name))
	}

	if a.caps.MemoryBudget > 0 && a.bound.Finite && a.bound.Total > a.caps.MemoryBudget {
		f := &Finding{
			Code:    CodeCapacityOverflow,
			Path:    root.Path,
			Node:    root.Name,
			Msg: fmt.Sprintf(
				"static memory high-water bound of %d records exceeds the budget of %d: the plan is admissible only with more memory or smaller caps (buffer %d, batch %d, %d replicas per site)",
				a.bound.Total, a.caps.MemoryBudget, a.caps.StreamBuffer, a.caps.StreamBatch, a.caps.SplitWidth),
			Exact:   true,
			subject: root.Node,
		}
		f.Trace = append(f.Trace, TraceStep{
			Path: root.Path, Node: root.Name, subject: root.Node,
			State: fmt.Sprintf("fixed plumbing holds up to %d records (%d stream edges at %d each, plus engines and merge slots)",
				a.bound.Fixed, a.edges, core.StreamCapacity(a.caps.StreamBuffer, a.caps.StreamBatch)),
		})
		terms := append([]ReplicaTerm(nil), a.bound.Replicas...)
		sort.Slice(terms, func(i, j int) bool {
			if terms[i].Subtotal != terms[j].Subtotal {
				return terms[i].Subtotal > terms[j].Subtotal
			}
			return terms[i].Path < terms[j].Path
		})
		for i, t := range terms {
			if i == 3 {
				break
			}
			g := findPath(root, t.Path)
			step := TraceStep{Path: t.Path, State: fmt.Sprintf(
				"%s contributes %d records: %d per replica × %d assumed replicas", t.Kind, t.Subtotal, t.PerUnit, t.Units)}
			if g != nil {
				step.Node = g.Name
				step.subject = g.Node
			}
			f.Trace = append(f.Trace, step)
		}
		a.findings = append(a.findings, f)
	}
}

// findPath locates the graph node at path (paths are unique in the tree).
func findPath(g *core.GraphNode, path string) *core.GraphNode {
	if g.Path == path {
		return g
	}
	for _, ch := range g.Children {
		if path == ch.Path || strings.HasPrefix(path, ch.Path+"/") {
			return findPath(ch, path)
		}
	}
	return nil
}

// ancestors returns the chain of graph nodes from the root to the node at
// path, inclusive; nil if the path is not in the tree.
func ancestors(g *core.GraphNode, path string) []*core.GraphNode {
	if g.Path == path {
		return []*core.GraphNode{g}
	}
	for _, ch := range g.Children {
		if path == ch.Path || strings.HasPrefix(path, ch.Path+"/") {
			if rest := ancestors(ch, path); rest != nil {
				return append([]*core.GraphNode{g}, rest...)
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
