package analysis

import (
	"fmt"

	"repro/internal/core"
)

// checkDeadArm reports the topmost node of a subgraph the flow pass never
// delivered a variant to.  The compile pass already errors on the exact
// unreachable-parallel-branch case; this check covers the rest — branches
// that are only approximately unreachable (downstream of a synchrocell,
// where the compile pass can only warn), star chains every input variant
// bypasses, and split operands behind a total index-tag rejection.
func (a *analyzer) checkDeadArm(g *core.GraphNode, cx walkCtx) {
	if a.errPaths[g.Path] == core.ErrCodeUnreachable {
		return // already a definite compile error at this path
	}
	msg := fmt.Sprintf("%s is never reached by any variant of the closed-world input type", g.Name)
	if cx.parent != nil {
		switch cx.parent.Kind {
		case "parallel":
			msg = fmt.Sprintf(
				"parallel branch %s is dead: no variant of the closed-world input type routes to it",
				g.Name)
		case "star":
			exit := ""
			if cx.parent.Exit != nil {
				exit = cx.parent.Exit.String()
			}
			msg = fmt.Sprintf(
				"the replication chain of star %s is never entered: every input variant satisfies the exit pattern %s immediately",
				cx.parent.Name, exit)
		case "split":
			msg = fmt.Sprintf(
				"the operand of split %s is never reached: no variant carries its index tag <%s>",
				cx.parent.Name, cx.parent.Tag)
		}
	}
	// The dead node itself has no flow facts; exactness comes from the
	// nearest visited node — its parent (dead arms are reported topmost, so
	// the parent was reached or is the live root).
	exact := true
	if cx.parent != nil {
		exact = a.plan.FlowExact(cx.parent.Path)
	}
	a.emitExact(g, CodeDeadArm, nil, msg, exact)
}
