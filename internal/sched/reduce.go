package sched

import "context"

// Reduce computes a parallel reduction over [0, n).  mapChunk reduces one
// contiguous chunk to a partial value starting from neutral; combine folds
// two partials.  combine must be associative, and neutral its identity.
// Chunk partials are combined in ascending chunk order, so for merely
// associative (non-commutative) operators the result still equals the
// sequential left fold.
func Reduce[T any](p *Pool, ctx context.Context, n int, neutral T,
	mapChunk func(lo, hi int, acc T) T, combine func(a, b T) T) (T, error) {

	if n <= 0 {
		return neutral, nil
	}
	if p.width == 1 || n <= p.grain {
		var out T
		err := runInline(ctx, n, func(lo, hi int) {
			out = mapChunk(lo, hi, neutral)
		})
		return out, err
	}
	chunk, nchunks := p.chunking(n)
	partials := make([]T, nchunks)
	err := p.forChunks(ctx, nchunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		partials[c] = mapChunk(lo, hi, neutral)
	})
	if err != nil {
		return neutral, err
	}
	out := neutral
	for c := 0; c < nchunks; c++ {
		out = combine(out, partials[c])
	}
	return out, nil
}
