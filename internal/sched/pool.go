// Package sched provides the data-parallel execution substrate that stands in
// for SaC's multithreaded code generation.
//
// The paper (§1, §3) relies on the SaC compiler to execute with-loops in a
// data-parallel fashion: "it just requires multi-threaded code generation to
// be enabled".  Here the equivalent knob is a Pool: with-loops in
// internal/array partition their index spaces into chunks and execute them on
// a Pool.  Pool width 1 is the sequential baseline; width w models a w-thread
// SaC executable.
//
// Scheduling is guided self-scheduling: workers pull chunk indices from a
// shared atomic counter, so imbalanced generator bodies (the common case in
// search problems) still load-balance.  Panics in loop bodies are propagated
// to the caller; cancellation is polled between chunks.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the parallel width of loop execution.  The zero value is not
// usable; use New.  A Pool carries no goroutines of its own: each parallel
// loop spawns at most Width short-lived workers, which keeps nested
// parallelism deadlock-free (nested loops simply multiply width, and the Go
// scheduler multiplexes them onto GOMAXPROCS threads).
type Pool struct {
	width int
	// grain is the minimum chunk size handed to a worker.  Smaller ranges
	// are run inline.
	grain int
}

// DefaultGrain is the minimum number of loop iterations per scheduled chunk
// when no explicit grain is configured.
const DefaultGrain = 256

// New returns a Pool with the given width.  Width < 1 selects
// runtime.GOMAXPROCS(0).
func New(width int) *Pool {
	if width < 1 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{width: width, grain: DefaultGrain}
}

// NewWithGrain returns a Pool with an explicit minimum chunk size.
// Grain < 1 selects DefaultGrain.
func NewWithGrain(width, grain int) *Pool {
	p := New(width)
	if grain >= 1 {
		p.grain = grain
	}
	return p
}

// Width reports the parallel width of the pool.
func (p *Pool) Width() int { return p.width }

// Grain reports the minimum chunk size of the pool.
func (p *Pool) Grain() int { return p.grain }

var defaultPool atomic.Pointer[Pool]

func init() { defaultPool.Store(New(0)) }

// Default returns the process-wide default pool (initially GOMAXPROCS wide).
func Default() *Pool { return defaultPool.Load() }

// SetDefault replaces the process-wide default pool and returns the previous
// one.  It is used by benchmarks and tools to model a w-thread SaC runtime.
func SetDefault(p *Pool) *Pool {
	if p == nil {
		panic("sched: SetDefault(nil)")
	}
	return defaultPool.Swap(p)
}

// PanicError wraps a panic value recovered from a parallel loop body so the
// caller sees where it came from.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("sched: panic in loop body: %v", e.Value) }

// chunking computes the chunk size for a range of n iterations: several
// chunks per worker so stragglers rebalance, but never below grain.
func (p *Pool) chunking(n int) (chunk, nchunks int) {
	chunk = n / (p.width * 4)
	if chunk < p.grain {
		chunk = p.grain
	}
	nchunks = (n + chunk - 1) / chunk
	return chunk, nchunks
}

// forChunks runs body(c) for every chunk index c in [0, nchunks) on up to
// p.width workers pulling indices from a shared counter.  It is the common
// engine under For and Reduce.
func (p *Pool) forChunks(ctx context.Context, nchunks int, body func(c int)) error {
	workers := p.width
	if workers > nchunks {
		workers = nchunks
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[PanicError]
		stop     atomic.Bool
	)
	runWorker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				pe := &PanicError{Value: r}
				panicked.CompareAndSwap(nil, pe)
				stop.Store(true)
			}
		}()
		for {
			if stop.Load() {
				return
			}
			select {
			case <-ctx.Done():
				stop.Store(true)
				return
			default:
			}
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			body(c)
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go runWorker()
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	return ctx.Err()
}

// For executes body over the half-open range [0, n) with guided
// self-scheduling on the pool.  body(lo, hi) must process indices lo..hi-1
// and must be safe to call concurrently from multiple goroutines on disjoint
// ranges.  For returns ctx.Err() if the context is cancelled before all
// chunks are issued, and a *PanicError if any body invocation panicked.
func (p *Pool) For(ctx context.Context, n int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if p.width == 1 || n <= p.grain {
		return runInline(ctx, n, body)
	}
	chunk, nchunks := p.chunking(n)
	return p.forChunks(ctx, nchunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

func runInline(ctx context.Context, n int, body func(lo, hi int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	body(0, n)
	if err == nil {
		err = ctx.Err()
	}
	return err
}

// ForEach is a convenience wrapper over For that invokes body once per index.
func (p *Pool) ForEach(ctx context.Context, n int, body func(i int)) error {
	return p.For(ctx, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
