package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 255, 256, 257, 1000, 4096, 10000} {
			p := NewWithGrain(width, 64)
			hits := make([]int32, n)
			err := p.For(context.Background(), n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("width=%d n=%d: unexpected error %v", width, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width=%d n=%d: index %d visited %d times", width, n, i, h)
				}
			}
		}
	}
}

func TestForEachCoversRange(t *testing.T) {
	p := NewWithGrain(4, 8)
	const n = 1000
	var sum atomic.Int64
	if err := p.ForEach(context.Background(), n, func(i int) {
		sum.Add(int64(i))
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(n*(n-1)) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForNegativeAndZero(t *testing.T) {
	p := New(2)
	called := false
	if err := p.For(context.Background(), 0, func(lo, hi int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if err := p.For(context.Background(), -5, func(lo, hi int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, width := range []int{1, 4} {
		p := NewWithGrain(width, 1)
		err := p.For(context.Background(), 100, func(lo, hi int) {
			if hi > 40 {
				panic("boom")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("width=%d: want PanicError, got %v", width, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value = %v", pe.Value)
		}
		if pe.Error() == "" {
			t.Fatal("empty error message")
		}
	}
}

func TestForCancellation(t *testing.T) {
	p := NewWithGrain(2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	started := make(chan struct{}, 1)
	err := p.For(ctx, 1<<20, func(lo, hi int) {
		select {
		case started <- struct{}{}:
			cancel()
		default:
		}
		done.Add(1)
		time.Sleep(time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if done.Load() == 1<<20 {
		t.Fatal("cancellation had no effect")
	}
}

func TestWidthAndGrainAccessors(t *testing.T) {
	p := NewWithGrain(3, 17)
	if p.Width() != 3 || p.Grain() != 17 {
		t.Fatalf("got width=%d grain=%d", p.Width(), p.Grain())
	}
	if New(0).Width() < 1 {
		t.Fatal("New(0) must select at least one worker")
	}
	if NewWithGrain(2, 0).Grain() != DefaultGrain {
		t.Fatal("grain 0 must select DefaultGrain")
	}
}

func TestSetDefaultSwap(t *testing.T) {
	orig := Default()
	p := New(1)
	prev := SetDefault(p)
	if prev != orig {
		t.Fatal("SetDefault did not return previous pool")
	}
	if Default() != p {
		t.Fatal("Default not updated")
	}
	SetDefault(orig)
	defer func() {
		if recover() == nil {
			t.Fatal("SetDefault(nil) must panic")
		}
	}()
	SetDefault(nil)
}

func TestReduceSum(t *testing.T) {
	for _, width := range []int{1, 2, 5} {
		p := NewWithGrain(width, 16)
		got, err := Reduce(p, context.Background(), 10000, 0,
			func(lo, hi int, acc int) int {
				for i := lo; i < hi; i++ {
					acc += i
				}
				return acc
			},
			func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if want := 10000 * 9999 / 2; got != want {
			t.Fatalf("width=%d: sum = %d, want %d", width, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	p := New(4)
	got, err := Reduce(p, context.Background(), 0, 42,
		func(lo, hi, acc int) int { return 0 },
		func(a, b int) int { return a + b })
	if err != nil || got != 42 {
		t.Fatalf("got %d, %v; want neutral 42", got, err)
	}
}

func TestReduceNonCommutativeMatchesSequential(t *testing.T) {
	// String concatenation is associative but not commutative: parallel
	// Reduce must still equal the sequential left fold.
	p := NewWithGrain(4, 4)
	n := 300
	got, err := Reduce(p, context.Background(), n, "",
		func(lo, hi int, acc string) string {
			for i := lo; i < hi; i++ {
				acc += string(rune('a' + i%26))
			}
			return acc
		},
		func(a, b string) string { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	want := ""
	for i := 0; i < n; i++ {
		want += string(rune('a' + i%26))
	}
	if got != want {
		t.Fatalf("parallel fold diverged from sequential fold")
	}
}

func TestReducePanic(t *testing.T) {
	p := NewWithGrain(2, 1)
	_, err := Reduce(p, context.Background(), 100, 0,
		func(lo, hi, acc int) int { panic("kaboom") },
		func(a, b int) int { return a + b })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

// Property: for any width/grain/n the parallel sum equals the closed form.
func TestQuickForSumProperty(t *testing.T) {
	f := func(widthRaw, grainRaw uint8, nRaw uint16) bool {
		width := int(widthRaw%8) + 1
		grain := int(grainRaw%128) + 1
		n := int(nRaw % 5000)
		p := NewWithGrain(width, grain)
		var sum atomic.Int64
		if err := p.For(context.Background(), n, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		}); err != nil {
			return false
		}
		return sum.Load() == int64(n)*int64(n-1)/2 || n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
