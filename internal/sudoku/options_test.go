package sudoku

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestNewOptionsAllTrue(t *testing.T) {
	o := NewOptions(3)
	for k := 1; k <= 9; k++ {
		if !o.Get(0, 0, k) || !o.Get(8, 8, k) {
			t.Fatal("fresh options must be all true")
		}
	}
	if o.Count(4, 4) != 9 {
		t.Fatalf("count = %d", o.Count(4, 4))
	}
}

// AddNumber must falsify exactly: all numbers at (i,j), number k in row i,
// column j and the surrounding sub-board — §3's four generators.
func TestAddNumberEliminations(t *testing.T) {
	b := NewBoard(3)
	o := NewOptions(3)
	i, j, k := 4, 7, 5
	b2, o2 := AddNumber(sp, b, o, i, j, k)
	if b2.Get(i, j) != k {
		t.Fatal("board not updated")
	}
	if b.Get(i, j) != 0 {
		t.Fatal("AddNumber mutated its input board")
	}
	if o.Count(i, j) != 9 {
		t.Fatal("AddNumber mutated its input options")
	}
	for x := 0; x < 9; x++ {
		for y := 0; y < 9; y++ {
			for num := 1; num <= 9; num++ {
				got := o2.Get(x, y, num)
				inCell := x == i && y == j
				inRow := x == i && num == k
				inCol := y == j && num == k
				inBox := x/3 == i/3 && y/3 == j/3 && num == k
				want := !(inCell || inRow || inCol || inBox)
				if got != want {
					t.Fatalf("opts[%d,%d,%d] = %v, want %v", x, y, num, got, want)
				}
			}
		}
	}
}

// The with-loop implementation and the direct-loop implementation must
// agree on arbitrary placements (differential test).
func TestQuickAddNumberDifferential(t *testing.T) {
	f := func(iRaw, jRaw, kRaw uint8, seed int64) bool {
		i, j, k := int(iRaw%9), int(jRaw%9), int(kRaw%9)+1
		base := GenerateSolved(3, seed)
		// Derive a partially-filled board and its options.
		puzzle := base.Clone()
		for c := 0; c < 40; c++ {
			puzzle.cells.Data()[(c*7)%81] = 0
		}
		opts, _ := ComputeOpts(sp, puzzle)
		b1, o1 := AddNumber(sp, puzzle, opts, i, j, k)
		b2, o2 := addNumberDirect(puzzle, opts, i, j, k)
		return b1.Equal(b2) && o1.Equal(o2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// With-loop AddNumber must be identical under sequential and parallel pools.
func TestAddNumberPoolEquivalence(t *testing.T) {
	p2 := sched.NewWithGrain(2, 8)
	o := NewOptions(3)
	b := NewBoard(3)
	b1, o1 := AddNumber(sp, b, o, 3, 3, 7)
	b2, o2 := AddNumber(p2, b, o, 3, 3, 7)
	if !b1.Equal(b2) || !o1.Equal(o2) {
		t.Fatal("pool width changed with-loop semantics")
	}
}

func TestComputeOptsConsistency(t *testing.T) {
	opts, ok := ComputeOpts(sp, Easy())
	if !ok {
		t.Fatal("Easy must be consistent")
	}
	// Cell (0,2) is empty; 4 must be possible (it is in the solution).
	if !opts.Get(0, 2, 4) {
		t.Fatal("solution value eliminated")
	}
	// 5 is in row 0 already: impossible at (0,2).
	if opts.Get(0, 2, 5) {
		t.Fatal("row elimination missing")
	}
	// Inconsistent board: two 5s in one row.
	bad := Easy().With(0, 8, 5)
	if _, ok := ComputeOpts(sp, bad); ok {
		t.Fatal("inconsistency undetected")
	}
}

func TestIsStuckDetectsDeadEnd(t *testing.T) {
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	if IsStuck(b, opts) {
		t.Fatal("Easy is not stuck")
	}
	// Fill a row's remaining cells' options away: make cell (0,2)
	// impossible by placing 1,2,4,6,8,9 around it (leaving no number).
	// Cheaper: zero out its option row directly on a clone.
	o2 := opts.Clone()
	data := o2.cube.Data()
	for k := 0; k < 9; k++ {
		data[(0*9+2)*9+k] = false
	}
	if !IsStuck(b, o2) {
		t.Fatal("stuck state undetected")
	}
}

func TestFindMinTruesPrefersConstrainedCells(t *testing.T) {
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	i, j, ok := FindMinTrues(opts)
	if !ok {
		t.Fatal("no candidate found")
	}
	if b.Get(i, j) != 0 {
		t.Fatal("findMinTrues picked a filled cell")
	}
	min := opts.Count(i, j)
	for x := 0; x < 9; x++ {
		for y := 0; y < 9; y++ {
			if c := opts.Count(x, y); c > 0 && c < min {
				t.Fatalf("cell (%d,%d) has %d < %d options", x, y, c, min)
			}
		}
	}
}

func TestFindMinTruesExhausted(t *testing.T) {
	o := NewOptions(2)
	data := o.cube.Data()
	for i := range data {
		data[i] = false
	}
	if _, _, ok := FindMinTrues(o); ok {
		t.Fatal("exhausted options must report not-ok")
	}
}
