package sudoku

import (
	"math/rand"

	"repro/internal/sched"
)

// GenerateSolved returns a uniformly shuffled valid solved board of
// sub-board size n, deterministically derived from seed.
//
// It starts from the canonical Latin construction
//
//	cell(i,j) = ((i·n + i/n + j) mod N) + 1
//
// which satisfies all three sudoku constraints, then applies the standard
// validity-preserving shuffles: symbol permutation, row permutations within
// bands, column permutations within stacks, band and stack permutations.
func GenerateSolved(n int, seed int64) *Board {
	N := n * n
	rng := rand.New(rand.NewSource(seed))

	symbols := rng.Perm(N) // symbol s → symbols[s]+1
	rowOf := groupPerm(rng, n)
	colOf := groupPerm(rng, n)

	b := NewBoard(n)
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			si, sj := rowOf[i], colOf[j]
			v := (si*n + si/n + sj) % N
			b.cells.Set(symbols[v]+1, i, j)
		}
	}
	return b
}

// groupPerm builds a permutation of [0, n²) that permutes the n groups of n
// consecutive indices and the indices within each group independently —
// rows within bands plus band order (and likewise for columns).
func groupPerm(rng *rand.Rand, n int) []int {
	N := n * n
	groups := rng.Perm(n)
	out := make([]int, N)
	for g := 0; g < n; g++ {
		inner := rng.Perm(n)
		for r := 0; r < n; r++ {
			out[g*n+r] = groups[g]*n + inner[r]
		}
	}
	return out
}

// Generate digs holes into a solved board: it removes `holes` cells in a
// seed-determined random order.  With unique set, a removal that makes the
// solution non-unique is reverted (and another cell tried), so the result
// keeps a unique solution; uniqueness checking costs a bounded solver run
// per removal and is practical for n ≤ 3.
func Generate(p *sched.Pool, n int, seed int64, holes int, unique bool) (puzzle, solution *Board) {
	solution = GenerateSolved(n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	N := n * n
	order := rng.Perm(N * N)
	puzzle = solution.Clone()
	removed := 0
	for _, cell := range order {
		if removed >= holes {
			break
		}
		i, j := cell/N, cell%N
		v := puzzle.Get(i, j)
		if v == 0 {
			continue
		}
		candidate := puzzle.With(i, j, 0)
		if unique && CountSolutions(p, candidate, 2) != 1 {
			continue
		}
		puzzle = candidate
		removed++
	}
	return puzzle, solution
}
