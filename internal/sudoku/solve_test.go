package sudoku

import (
	"context"
	"testing"
	"testing/quick"
)

func TestSolveEasyMatchesKnownSolution(t *testing.T) {
	got, solved := SolveBoard(sp, Easy())
	if !solved {
		t.Fatal("Easy not solved")
	}
	if !got.Equal(EasySolution()) {
		t.Fatalf("wrong solution:\n%s", got)
	}
}

func TestSolveAllFixedPuzzles(t *testing.T) {
	for name, puzzle := range Fixed9x9() {
		got, solved := SolveBoard(sp, puzzle)
		if !solved {
			t.Fatalf("%s not solved", name)
		}
		if !got.IsSolved() {
			t.Fatalf("%s: invalid solution", name)
		}
		if !got.Extends(puzzle) {
			t.Fatalf("%s: solution does not extend the puzzle", name)
		}
	}
}

func TestFixedPuzzlesAreUnique(t *testing.T) {
	for name, puzzle := range Fixed9x9() {
		if c := CountSolutions(sp, puzzle, 2); c != 1 {
			t.Fatalf("%s has %d solutions", name, c)
		}
	}
}

func TestSolveUnsolvable(t *testing.T) {
	// A board with an empty cell that admits no number: row 0 holds
	// 1..8 in its other cells and the 9 sits lower in column 0, so cell
	// (0,0) is empty with zero options — no rule is directly violated.
	b := NewBoard(3)
	for j := 1; j <= 8; j++ {
		b = b.With(0, j, j)
	}
	b = b.With(5, 0, 9)
	opts, ok := ComputeOpts(sp, b)
	if !ok {
		t.Fatal("board should be consistent (no direct violation)")
	}
	if !IsStuck(b, opts) {
		t.Fatal("cell (0,0) must be stuck")
	}
	_, _, solved := Solve(sp, b, opts)
	if solved {
		t.Fatal("unsolvable board reported solved")
	}
}

func TestCountSolutionsMultiple(t *testing.T) {
	// An empty 4×4 board has many solutions; limit must cap the count.
	if c := CountSolutions(sp, NewBoard(2), 5); c != 5 {
		t.Fatalf("count = %d, want limit 5", c)
	}
}

func TestSolve4x4(t *testing.T) {
	got, solved := SolveBoard(sp, NewBoard(2))
	if !solved || !got.IsSolved() {
		t.Fatal("empty 4×4 must solve")
	}
}

func TestSolve16x16Generated(t *testing.T) {
	puzzle, solution := Generate(sp, 4, 42, 60, false)
	got, solved := SolveBoard(sp, puzzle)
	if !solved {
		t.Fatal("16×16 puzzle not solved")
	}
	if !got.IsSolved() || !got.Extends(puzzle) {
		t.Fatal("16×16 solution invalid")
	}
	_ = solution
}

func TestGenerateSolvedValidity(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := GenerateSolved(n, 7)
		if !b.IsSolved() {
			t.Fatalf("n=%d: generated board invalid", n)
		}
	}
}

func TestGenerateSeedDeterminism(t *testing.T) {
	a := GenerateSolved(3, 123)
	b := GenerateSolved(3, 123)
	c := GenerateSolved(3, 124)
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce")
	}
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateUniquePuzzle(t *testing.T) {
	puzzle, solution := Generate(sp, 3, 99, 45, true)
	if c := CountSolutions(sp, puzzle, 2); c != 1 {
		t.Fatalf("unique generation produced %d solutions", c)
	}
	got, solved := SolveBoard(sp, puzzle)
	if !solved || !got.Equal(solution) {
		t.Fatal("puzzle does not solve back to its solution")
	}
}

func TestGenerateHoleCount(t *testing.T) {
	puzzle, _ := Generate(sp, 3, 5, 30, false)
	if got := 81 - puzzle.CountFilled(); got != 30 {
		t.Fatalf("holes = %d, want 30", got)
	}
}

// Property: solving any generated puzzle yields a valid completion of it.
func TestQuickGeneratedPuzzlesSolve(t *testing.T) {
	f := func(seed int64, holesRaw uint8) bool {
		holes := int(holesRaw % 50)
		puzzle, _ := Generate(sp, 3, seed, holes, false)
		got, solved := SolveBoard(sp, puzzle)
		return solved && got.IsSolved() && got.Extends(puzzle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveOneLevelEmitsAlternatives(t *testing.T) {
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	var outs []SolveOneLevelOutput
	err := SolveOneLevel(sp, b, opts, func(o SolveOneLevelOutput) error {
		outs = append(outs, o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("no alternatives emitted")
	}
	i, j, _ := FindMinTrues(opts)
	if len(outs) != opts.Count(i, j) {
		t.Fatalf("emitted %d, want %d (options at the selected cell)", len(outs), opts.Count(i, j))
	}
	for _, o := range outs {
		if o.Done {
			t.Fatal("Easy cannot complete in one placement")
		}
		if o.Level != b.CountFilled()+1 {
			t.Fatalf("level = %d, want %d", o.Level, b.CountFilled()+1)
		}
		if o.Board.Get(i, j) != o.K {
			t.Fatal("emitted board does not carry the tried number")
		}
		if !o.Board.Valid() {
			t.Fatal("emitted board invalid")
		}
	}
}

func TestSolveOneLevelDoneOnLastCell(t *testing.T) {
	sol := EasySolution()
	b := sol.With(4, 4, 0) // one hole
	opts, _ := ComputeOpts(sp, b)
	var outs []SolveOneLevelOutput
	if err := SolveOneLevel(sp, b, opts, func(o SolveOneLevelOutput) error {
		outs = append(outs, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].Done {
		t.Fatalf("outs = %+v", outs)
	}
	if !outs[0].Board.Equal(sol) {
		t.Fatal("completion wrong")
	}
}

func TestSolveOneLevelStuckEmitsNothing(t *testing.T) {
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	o2 := opts.Clone()
	data := o2.cube.Data()
	for k := 0; k < 9; k++ {
		data[(0*9+2)*9+k] = false // kill cell (0,2)
	}
	count := 0
	if err := SolveOneLevel(sp, b, o2, func(SolveOneLevelOutput) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("stuck board emitted %d records", count)
	}
}

func TestSolve25x25Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("25×25 smoke test")
	}
	// Few holes: the point is exercising the generic n²×n² path at n=5,
	// not search difficulty.
	puzzle, solution := Generate(sp, 5, 13, 20, false)
	got, solved := SolveBoard(sp, puzzle)
	if !solved || !got.IsSolved() || !got.Extends(puzzle) {
		t.Fatal("25×25 failed")
	}
	_ = solution
}

func TestNetwork25x25Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("25×25 smoke test")
	}
	puzzle, _ := Generate(sp, 5, 13, 12, false)
	got, _, err := SolveWithNet(context.Background(),
		Fig3Net(NetConfig{Throttle: 4, ExitLevel: 620}), puzzle)
	if err != nil || got == nil || !got.IsSolved() {
		t.Fatalf("25×25 network solve failed: %v", err)
	}
}
