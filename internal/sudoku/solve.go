package sudoku

import "repro/internal/sched"

// Solve is the paper's §3 sequential solver with the findMinTrues heuristic:
// depth-first search that places one number per level, backtracking through
// the option cube.  It returns the first solution found (solved == true) or
// the board where the search got stuck.
func Solve(p *sched.Pool, board *Board, opts *Options) (*Board, *Options, bool) {
	if IsStuck(board, opts) || board.IsCompleted() {
		return board, opts, board.IsCompleted()
	}
	i, j, ok := FindMinTrues(opts)
	if !ok {
		return board, opts, board.IsCompleted()
	}
	N := board.N()
	memBoard, memOpts := board, opts
	for k := 1; k <= N && !board.IsCompleted(); k++ {
		if memOpts.Get(i, j, k) {
			b2, o2 := AddNumber(p, memBoard, memOpts, i, j, k)
			b3, o3, solved := Solve(p, b2, o2)
			if solved {
				return b3, o3, true
			}
			// keep the paper's shape: board/opts carry the last
			// attempt so the loop condition mirrors §3 line 8
			board, opts = b3, o3
		}
	}
	return board, opts, board.IsCompleted()
}

// SolveBoard is the end-to-end convenience: compute options, then solve.
func SolveBoard(p *sched.Pool, b *Board) (*Board, bool) {
	opts, consistent := ComputeOpts(p, b)
	if !consistent {
		return b, false
	}
	sb, _, solved := Solve(p, b, opts)
	return sb, solved
}

// CountSolutions counts the puzzle's solutions, stopping once limit is
// reached (limit 2 suffices for uniqueness checks).
func CountSolutions(p *sched.Pool, b *Board, limit int) int {
	opts, consistent := ComputeOpts(p, b)
	if !consistent {
		return 0
	}
	count := 0
	var rec func(board *Board, opts *Options)
	rec = func(board *Board, opts *Options) {
		if count >= limit {
			return
		}
		if IsStuck(board, opts) {
			return
		}
		if board.IsCompleted() {
			count++
			return
		}
		i, j, ok := FindMinTrues(opts)
		if !ok {
			return
		}
		N := board.N()
		for k := 1; k <= N && count < limit; k++ {
			if opts.Get(i, j, k) {
				b2, o2 := AddNumber(p, board, opts, i, j, k)
				rec(b2, o2)
			}
		}
	}
	rec(b, opts)
	return count
}

// SolveOneLevelOutput is one record emitted by SolveOneLevel: either a
// completed board (Done) or a deeper search state to be handled by the next
// pipeline stage, annotated with the paper's control tags.
type SolveOneLevelOutput struct {
	Board *Board
	Opts  *Options
	Done  bool
	K     int // the number tried at the selected position (Fig. 2's <k>)
	Level int // numbers placed so far (Fig. 3's <level>)
}

// SolveOneLevel is the paper's §5 solveOneLevel: instead of recursing it
// emits one record per viable choice at the selected position via emit —
// the snet_out calls of Fig. 1.  Stuck boards emit nothing; a board
// completed by a placement emits a Done record.
func SolveOneLevel(p *sched.Pool, board *Board, opts *Options, emit func(SolveOneLevelOutput) error) error {
	if IsStuck(board, opts) || board.IsCompleted() {
		return nil
	}
	i, j, ok := FindMinTrues(opts)
	if !ok {
		return nil
	}
	N := board.N()
	memBoard, memOpts := board, opts
	completed := false
	for k := 1; k <= N && !completed; k++ {
		if !memOpts.Get(i, j, k) {
			continue
		}
		b2, o2 := AddNumber(p, memBoard, memOpts, i, j, k)
		outRec := SolveOneLevelOutput{
			Board: b2, Opts: o2, K: k, Level: b2.CountFilled(),
		}
		if b2.IsCompleted() {
			outRec.Done = true
			completed = true
		}
		if err := emit(outRec); err != nil {
			return err
		}
	}
	return nil
}
