package sudoku

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func solveWith(t *testing.T, net core.Node, puzzle *Board, opts ...core.Option) (*Board, *core.Stats) {
	t.Helper()
	b, stats, err := SolveWithNet(context.Background(), net, puzzle, opts...)
	if err != nil {
		t.Fatalf("network error: %v", err)
	}
	if b == nil {
		t.Fatal("network found no solution")
	}
	return b, stats
}

func TestFig1SolvesFixedPuzzles(t *testing.T) {
	for name, puzzle := range Fixed9x9() {
		got, _ := solveWith(t, Fig1Net(NetConfig{}), puzzle)
		if !got.IsSolved() || !got.Extends(puzzle) {
			t.Fatalf("%s: bad solution", name)
		}
	}
}

func TestFig2SolvesFixedPuzzles(t *testing.T) {
	for name, puzzle := range Fixed9x9() {
		got, _ := solveWith(t, Fig2Net(NetConfig{}), puzzle)
		if !got.IsSolved() || !got.Extends(puzzle) {
			t.Fatalf("%s: bad solution", name)
		}
	}
}

func TestFig3SolvesFixedPuzzles(t *testing.T) {
	for name, puzzle := range Fixed9x9() {
		got, _ := solveWith(t, Fig3Net(NetConfig{}), puzzle)
		if !got.IsSolved() || !got.Extends(puzzle) {
			t.Fatalf("%s: bad solution", name)
		}
	}
}

// All three networks agree with the sequential solver on unique puzzles.
func TestNetworksMatchSequentialSolver(t *testing.T) {
	puzzle := Easy()
	want, solved := SolveBoard(sp, puzzle)
	if !solved {
		t.Fatal("sequential failed")
	}
	for name, net := range map[string]core.Node{
		"fig1": Fig1Net(NetConfig{}),
		"fig2": Fig2Net(NetConfig{}),
		"fig3": Fig3Net(NetConfig{}),
	} {
		got, _ := solveWith(t, net, puzzle)
		if !got.Equal(want) {
			t.Fatalf("%s disagrees with sequential solver", name)
		}
	}
}

// §5's bound: "this unfolding cannot lead to pipelines longer than 81
// replicas of the solveOneLevel box" — one stage per number placed.
func TestFig1UnfoldingBound(t *testing.T) {
	puzzle := Hard() // most empties: 81 - 23 givens
	_, stats := solveWith(t, Fig1Net(NetConfig{}), puzzle)
	replicas := stats.Counter("star.solve_loop.replicas")
	empty := int64(81 - puzzle.CountFilled())
	if replicas > empty+1 {
		t.Fatalf("replicas = %d exceeds empty cells + 1 = %d", replicas, empty+1)
	}
	if replicas > 81 {
		t.Fatalf("replicas = %d exceeds the paper's bound of 81", replicas)
	}
	if replicas == 0 {
		t.Fatal("no unfolding recorded")
	}
}

// §5's Fig. 2 bound: at most 9 replicas per stage (tag <k> ∈ 1..9), hence
// at most 9×81 = 729 solveOneLevel boxes.
func TestFig2UnfoldingBounds(t *testing.T) {
	_, stats := solveWith(t, Fig2Net(NetConfig{}), Hard())
	stages := stats.Counter("star.solve_loop.replicas")
	splits := stats.Counter("split.level_split.replicas")
	width := stats.Max("split.level_split.width")
	if width > 9 {
		t.Fatalf("parallel width %d exceeds 9", width)
	}
	if splits > 9*stages {
		t.Fatalf("split replicas %d exceed 9 per stage (%d stages)", splits, stages)
	}
	boxes := stats.Counter("box.solveOneLevel.instances")
	if boxes > 729 {
		t.Fatalf("box instances %d exceed the paper's 729 bound", boxes)
	}
	if boxes == 0 {
		t.Fatal("no boxes instantiated")
	}
}

// Fig. 3's filter {<k>} -> {<k>=<k>%4} caps the parallel unfolding at 4.
func TestFig3ThrottleBound(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		_, stats := solveWith(t, Fig3Net(NetConfig{Throttle: m}), Medium())
		if width := stats.Max("split.level_split.width"); width > int64(m) {
			t.Fatalf("throttle %d: width = %d", m, width)
		}
	}
}

// Fig. 3's guarded exit: with exit level L, the serial replicator unfolds at
// most ~L - givens stages before records leave for the solve box.
func TestFig3ExitLevelBoundsChain(t *testing.T) {
	puzzle := Medium()
	givens := int64(puzzle.CountFilled())
	for _, L := range []int{30, 40} {
		_, stats := solveWith(t, Fig3Net(NetConfig{ExitLevel: L}), puzzle)
		stages := stats.Counter("star.solve_loop.replicas")
		maxStages := int64(L) - givens + 1
		if maxStages < 1 {
			maxStages = 1 // records exit right after the first stage
		}
		if stages > maxStages {
			t.Fatalf("L=%d: %d stages, want <= %d", L, stages, maxStages)
		}
	}
}

// Deterministic variants also solve correctly (ablation path).
func TestDetVariantsSolve(t *testing.T) {
	puzzle := Easy()
	for name, net := range map[string]core.Node{
		"fig1det": Fig1Net(NetConfig{Det: true}),
		"fig2det": Fig2Net(NetConfig{Det: true}),
	} {
		got, _ := solveWith(t, net, puzzle)
		if !got.IsSolved() {
			t.Fatalf("%s failed", name)
		}
	}
}

// 4×4 boards exercise the generic n²×n² path through all networks.
func TestNetworks4x4(t *testing.T) {
	puzzle, _ := Generate(sp, 2, 3, 8, true)
	want, _ := SolveBoard(sp, puzzle)
	for name, net := range map[string]core.Node{
		"fig1": Fig1Net(NetConfig{}),
		"fig2": Fig2Net(NetConfig{}),
		"fig3": Fig3Net(NetConfig{Throttle: 2, ExitLevel: 10}),
	} {
		got, _ := solveWith(t, net, puzzle)
		if !got.Equal(want) {
			t.Fatalf("%s: wrong solution on 4×4", name)
		}
	}
}

// Inconsistent input: computeOpts errors, nothing comes out, solver reports
// no solution rather than hanging.
func TestNetworkInconsistentInput(t *testing.T) {
	bad := Easy().With(0, 8, 5) // duplicate 5 in row 0
	var errs []string
	b, _, err := SolveWithNet(context.Background(), Fig1Net(NetConfig{}), bad,
		core.WithErrorHandler(func(e error) { errs = append(errs, e.Error()) }))
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("inconsistent puzzle must not produce a solution")
	}
	if len(errs) == 0 || !strings.Contains(errs[0], "inconsistent") {
		t.Fatalf("errors = %v", errs)
	}
}

// The network's type signature is inferable and the serial composition of
// the figure networks carries no hard errors.
func TestNetworksTypecheck(t *testing.T) {
	for name, net := range map[string]core.Node{
		"fig1": Fig1Net(NetConfig{}),
		"fig2": Fig2Net(NetConfig{}),
		"fig3": Fig3Net(NetConfig{}),
	} {
		in, out, diags := core.Check(net)
		if len(in) == 0 || len(out) == 0 {
			t.Fatalf("%s: empty signature", name)
		}
		for _, d := range diags {
			if !d.Warning {
				t.Fatalf("%s: type error: %v", name, d)
			}
		}
	}
	// Fig. 1's inferred input must accept a plain {board} record.
	in, _ := core.Infer(Fig1Net(NetConfig{}))
	rec := core.NewRecord().SetField("board", Easy())
	if core.MatchScore(rec, in) < 0 {
		t.Fatal("fig1 input type rejects {board}")
	}
}

// Unsolvable puzzles drain the network without a result.
func TestNetworkUnsolvableDrains(t *testing.T) {
	b := NewBoard(3)
	for j := 1; j <= 8; j++ {
		b = b.With(0, j, j)
	}
	b = b.With(5, 0, 9) // cell (0,0) stuck
	got, _, err := SolveWithNet(context.Background(), Fig1Net(NetConfig{}), b)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("unsolvable puzzle produced a solution")
	}
}
