// Package sudoku implements the paper's case study (§3, §5): sudoku boards
// of size n²×n², the SaC-style solver functions (addNumber, findMinTrues,
// isStuck, isCompleted, solve, solveOneLevel), puzzle generation, and the
// three S-Net solver networks of Figures 1–3.
//
// Boards and option cubes are built on the SaC array substrate
// (internal/array); addNumber is the paper's modarray-with-loop verbatim, so
// its data parallelism scales with the scheduler pool exactly as the paper's
// "multi-threaded code generation" would.
package sudoku

import (
	"fmt"
	"strings"

	"repro/internal/array"
)

// Board is an n²×n² sudoku board; 0 denotes an empty cell.  Boards are
// immutable values in the SaC sense: all updates return fresh boards.
type Board struct {
	n     int // sub-board size (3 for the classic 9×9 game)
	cells *array.Array[int]
}

// NewBoard returns an empty board with sub-board size n (board side n²).
func NewBoard(n int) *Board {
	if n < 2 {
		panic("sudoku: sub-board size must be at least 2")
	}
	N := n * n
	return &Board{n: n, cells: array.New([]int{N, N}, 0)}
}

// FromGrid builds a board from a row-major grid; the side length must be a
// perfect square and every value in [0, side].
func FromGrid(grid [][]int) (*Board, error) {
	N := len(grid)
	n := intSqrt(N)
	if n < 2 || n*n != N {
		return nil, fmt.Errorf("sudoku: side %d is not a perfect square ≥ 4", N)
	}
	b := NewBoard(n)
	for i, row := range grid {
		if len(row) != N {
			return nil, fmt.Errorf("sudoku: row %d has %d cells, want %d", i, len(row), N)
		}
		for j, v := range row {
			if v < 0 || v > N {
				return nil, fmt.Errorf("sudoku: cell (%d,%d) value %d out of range", i, j, v)
			}
			b.cells.Set(v, i, j)
		}
	}
	return b, nil
}

// Parse reads a 9×9 board from the conventional 81-character single-line
// form, where digits are givens and '.' or '0' are empty cells.  Whitespace
// is ignored.
func Parse(s string) (*Board, error) {
	var cells []int
	for _, r := range s {
		switch {
		case r == '.':
			cells = append(cells, 0)
		case r >= '0' && r <= '9':
			cells = append(cells, int(r-'0'))
		case r == ' ' || r == '\n' || r == '\t' || r == '\r' || r == '|' || r == '-' || r == '+':
			// layout characters
		default:
			return nil, fmt.Errorf("sudoku: unexpected character %q", string(r))
		}
	}
	if len(cells) != 81 {
		return nil, fmt.Errorf("sudoku: got %d cells, want 81", len(cells))
	}
	b := NewBoard(3)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			b.cells.Set(cells[i*9+j], i, j)
		}
	}
	return b, nil
}

// MustParse is Parse panicking on error, for puzzle literals.
func MustParse(s string) *Board {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

func intSqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// N returns the board side length (n²).
func (b *Board) N() int { return b.n * b.n }

// SubSize returns the sub-board size n.
func (b *Board) SubSize() int { return b.n }

// Cells exposes the underlying array (read-only by convention).
func (b *Board) Cells() *array.Array[int] { return b.cells }

// Get returns the value at (i, j); 0 means empty.
func (b *Board) Get(i, j int) int { return b.cells.At(i, j) }

// With returns a copy of the board with (i, j) set to v — the functional
// update `board[i,j] = k` of the paper's addNumber.
func (b *Board) With(i, j, v int) *Board {
	return &Board{n: b.n, cells: b.cells.WithAt(v, i, j)}
}

// Clone returns a deep copy.
func (b *Board) Clone() *Board { return &Board{n: b.n, cells: b.cells.Clone()} }

// Equal reports equality of size and contents.
func (b *Board) Equal(o *Board) bool {
	return b.n == o.n && array.Equal(b.cells, o.cells)
}

// IsCompleted reports whether every cell is filled (§3's isCompleted).
func (b *Board) IsCompleted() bool {
	for _, v := range b.cells.Data() {
		if v == 0 {
			return false
		}
	}
	return true
}

// CountFilled returns the number of non-empty cells — the <level> tag of
// the Fig. 3 network.
func (b *Board) CountFilled() int {
	c := 0
	for _, v := range b.cells.Data() {
		if v != 0 {
			c++
		}
	}
	return c
}

// FindFirst returns the first empty position in row-major order (§3's
// findFirst); ok is false when the board is complete.
func (b *Board) FindFirst() (i, j int, ok bool) {
	N := b.N()
	for idx, v := range b.cells.Data() {
		if v == 0 {
			return idx / N, idx % N, true
		}
	}
	return 0, 0, false
}

// Valid reports whether the filled cells violate no sudoku rule: each row,
// column and sub-board contains no duplicate number.
func (b *Board) Valid() bool {
	N := b.N()
	seen := make([]bool, N+1)
	reset := func() {
		for i := range seen {
			seen[i] = false
		}
	}
	for i := 0; i < N; i++ { // rows
		reset()
		for j := 0; j < N; j++ {
			if v := b.Get(i, j); v != 0 {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
	}
	for j := 0; j < N; j++ { // columns
		reset()
		for i := 0; i < N; i++ {
			if v := b.Get(i, j); v != 0 {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
	}
	for bi := 0; bi < b.n; bi++ { // sub-boards
		for bj := 0; bj < b.n; bj++ {
			reset()
			for di := 0; di < b.n; di++ {
				for dj := 0; dj < b.n; dj++ {
					if v := b.Get(bi*b.n+di, bj*b.n+dj); v != 0 {
						if seen[v] {
							return false
						}
						seen[v] = true
					}
				}
			}
		}
	}
	return true
}

// IsSolved reports whether the board is complete and valid.
func (b *Board) IsSolved() bool { return b.IsCompleted() && b.Valid() }

// Extends reports whether b agrees with the given puzzle on every filled
// cell of the puzzle (b is a completion of it).
func (b *Board) Extends(puzzle *Board) bool {
	if b.n != puzzle.n {
		return false
	}
	pd, bd := puzzle.cells.Data(), b.cells.Data()
	for i, v := range pd {
		if v != 0 && bd[i] != v {
			return false
		}
	}
	return true
}

// String renders the board with sub-board rules.
func (b *Board) String() string {
	N := b.N()
	var sb strings.Builder
	for i := 0; i < N; i++ {
		if i > 0 && i%b.n == 0 {
			sb.WriteString(strings.Repeat("-", 3*N+b.n-1))
			sb.WriteByte('\n')
		}
		for j := 0; j < N; j++ {
			if j > 0 && j%b.n == 0 {
				sb.WriteByte('|')
			}
			v := b.Get(i, j)
			if v == 0 {
				sb.WriteString("  .")
			} else {
				fmt.Fprintf(&sb, "%3d", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
