package sudoku

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// S-Net boxes wrapping the solver functions (§5).  Records carry the board
// and option cube as opaque fields "board" and "opts"; the control tags are
// <done> (Fig. 1/2), <k> (Fig. 2/3) and <level> (Fig. 3).

// asBoard extracts a *Board box argument.
func asBoard(v any) (*Board, error) {
	b, ok := v.(*Board)
	if !ok {
		return nil, fmt.Errorf("sudoku: field board holds %T, want *Board", v)
	}
	return b, nil
}

func asOptions(v any) (*Options, error) {
	o, ok := v.(*Options)
	if !ok {
		return nil, fmt.Errorf("sudoku: field opts holds %T, want *Options", v)
	}
	return o, nil
}

// ComputeOptsBox is Fig. 1's initialisation box:
//
//	box computeOpts {board} -> {board, opts}
//
// It derives the option cube by repeatedly calling addNumber (§3).
// Inconsistent boards (a given violates the rules) emit nothing and are
// reported as a box error.
func ComputeOptsBox(p *sched.Pool) core.Node {
	return core.NewBox("computeOpts",
		core.MustParseSignature("(board) -> (board, opts)"),
		func(args []any, out *core.Emitter) error {
			b, err := asBoard(args[0])
			if err != nil {
				return err
			}
			opts, consistent := ComputeOpts(p, b)
			if !consistent {
				return fmt.Errorf("sudoku: inconsistent board (a given violates the rules)")
			}
			return out.Out(1, b, opts)
		})
}

// SolveOneLevelBoxFig1 is Fig. 1's box:
//
//	box solveOneLevel {board, opts} -> {board, opts} | {board, <done>}
func SolveOneLevelBoxFig1(p *sched.Pool) core.Node {
	return core.NewBox("solveOneLevel",
		core.MustParseSignature("(board, opts) -> (board, opts) | (board, <done>)"),
		func(args []any, out *core.Emitter) error {
			return solveOneLevelBody(p, args, func(o SolveOneLevelOutput) error {
				if o.Done {
					return out.Out(2, o.Board, 1)
				}
				return out.Out(1, o.Board, o.Opts)
			})
		})
}

// SolveOneLevelBoxFig2 is Fig. 2's box, which additionally emits the tried
// number as tag <k> for the parallel replicator:
//
//	box solveOneLevel {board, opts} -> {board, opts, <k>} | {board, <done>}
func SolveOneLevelBoxFig2(p *sched.Pool) core.Node {
	return core.NewBox("solveOneLevel",
		core.MustParseSignature("(board, opts) -> (board, opts, <k>) | (board, <done>)"),
		func(args []any, out *core.Emitter) error {
			return solveOneLevelBody(p, args, func(o SolveOneLevelOutput) error {
				if o.Done {
					return out.Out(2, o.Board, 1)
				}
				return out.Out(1, o.Board, o.Opts, o.K)
			})
		})
}

// SolveOneLevelBoxFig3 is Fig. 3's box, emitting <k> and the unfolding
// level (numbers placed so far) so the network can throttle and exit:
//
//	box solveOneLevel {board, opts} -> {board, opts, <k>, <level>}
//
// Completed boards carry level == N², which exceeds any exit threshold
// below N² and therefore leaves the serial replicator.
func SolveOneLevelBoxFig3(p *sched.Pool) core.Node {
	return core.NewBox("solveOneLevel",
		core.MustParseSignature("(board, opts) -> (board, opts, <k>, <level>)"),
		func(args []any, out *core.Emitter) error {
			return solveOneLevelBody(p, args, func(o SolveOneLevelOutput) error {
				return out.Out(1, o.Board, o.Opts, o.K, o.Level)
			})
		})
}

func solveOneLevelBody(p *sched.Pool, args []any, emit func(SolveOneLevelOutput) error) error {
	b, err := asBoard(args[0])
	if err != nil {
		return err
	}
	o, err := asOptions(args[1])
	if err != nil {
		return err
	}
	return SolveOneLevel(p, b, o, emit)
}

// SolveBox is Fig. 3's terminal box wrapping the full sequential solver of
// §3:
//
//	box solve {board, opts} -> {board, opts}
//
// Complete boards pass through unchanged; incomplete ones are solved to the
// first solution (or to the stuck board).
func SolveBox(p *sched.Pool) core.Node {
	return core.NewBox("solve",
		core.MustParseSignature("(board, opts) -> (board, opts)"),
		func(args []any, out *core.Emitter) error {
			b, err := asBoard(args[0])
			if err != nil {
				return err
			}
			o, err := asOptions(args[1])
			if err != nil {
				return err
			}
			sb, so, _ := Solve(p, b, o)
			return out.Out(1, sb, so)
		})
}
