package sudoku

import (
	"context"
	"fmt"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/sacvm"
	"repro/internal/sched"
)

// The hybrid configuration of §5: the box functions are the paper's actual
// SaC code, interpreted by internal/sacvm, coordinated by the same S-Net
// networks.  Record fields hold sacvm.Value payloads (opaque to the
// coordination layer, as S-Net requires); conversion to and from the native
// Board representation happens only at the network boundary.

// SacBoxes wires an interpreter of the paper's sudoku.sac into S-Net box
// nodes.
type SacBoxes struct {
	itp *sacvm.Interp
}

// NewSacBoxes loads the embedded sudoku.sac (§3/§5 code) on the given pool.
func NewSacBoxes(pool *sched.Pool) *SacBoxes {
	return &SacBoxes{itp: sacvm.New(sacvm.MustParse(sacvm.SudokuSaC), pool)}
}

// Interp exposes the underlying interpreter (for direct function calls in
// tests and tools).
func (s *SacBoxes) Interp() *sacvm.Interp { return s.itp }

// BoardToValue converts a native board to the SaC int[9,9] representation.
func BoardToValue(b *Board) sacvm.Value {
	return sacvm.IntValue(b.Cells().Clone())
}

// ValueToBoard converts a SaC int[N,N] value back to a native board.
func ValueToBoard(v sacvm.Value) (*Board, error) {
	if v.Kind != sacvm.KindInt || v.Dim() != 2 {
		return nil, fmt.Errorf("sudoku: value %s is not a board", v.TypeString())
	}
	sh := v.Shape()
	n := intSqrt(sh[0])
	if n*n != sh[0] || sh[0] != sh[1] {
		return nil, fmt.Errorf("sudoku: board shape %v is not n²×n²", sh)
	}
	return &Board{n: n, cells: v.I.Clone()}, nil
}

// asValue extracts a sacvm.Value box argument.
func asValue(v any, what string) (sacvm.Value, error) {
	sv, ok := v.(sacvm.Value)
	if !ok {
		return sacvm.Value{}, fmt.Errorf("sudoku: field %s holds %T, want sacvm.Value", what, v)
	}
	return sv, nil
}

// ComputeOptsBox is the computeOpts box backed by interpreted SaC.
func (s *SacBoxes) ComputeOptsBox() core.Node {
	return core.NewBox("computeOpts",
		core.MustParseSignature("(board) -> (board, opts)"),
		func(args []any, out *core.Emitter) error {
			bv, err := asValue(args[0], "board")
			if err != nil {
				return err
			}
			res, err := s.itp.Call("computeOpts", []sacvm.Value{bv}, nil)
			if err != nil {
				return err
			}
			return out.Out(1, res[0], res[1])
		})
}

// SolveOneLevelBox is the solveOneLevel box of Fig. 1 backed by the paper's
// interpreted SaC function, whose snet_out calls become emitted records.
func (s *SacBoxes) SolveOneLevelBox() core.Node {
	return core.NewBox("solveOneLevel",
		core.MustParseSignature("(board, opts) -> (board, opts) | (board, <done>)"),
		func(args []any, out *core.Emitter) error {
			bv, err := asValue(args[0], "board")
			if err != nil {
				return err
			}
			ov, err := asValue(args[1], "opts")
			if err != nil {
				return err
			}
			_, err = s.itp.Call("solveOneLevel", []sacvm.Value{bv, ov},
				func(variant int, vals []sacvm.Value) error {
					switch variant {
					case 1:
						return out.Out(1, vals[0], vals[1])
					case 2:
						done, err := vals[1].AsInt(sacvm.Pos{})
						if err != nil {
							return err
						}
						return out.Out(2, vals[0], done)
					}
					return fmt.Errorf("unexpected snet_out variant %d", variant)
				})
			return err
		})
}

// SolveBox is the full §3 solver as a box, interpreted.
func (s *SacBoxes) SolveBox() core.Node {
	return core.NewBox("solve",
		core.MustParseSignature("(board, opts) -> (board, opts)"),
		func(args []any, out *core.Emitter) error {
			bv, err := asValue(args[0], "board")
			if err != nil {
				return err
			}
			ov, err := asValue(args[1], "opts")
			if err != nil {
				return err
			}
			res, err := s.itp.Call("solve", []sacvm.Value{bv, ov}, nil)
			if err != nil {
				return err
			}
			return out.Out(1, res[0], res[1])
		})
}

// Fig1HybridNet is the Fig. 1 network with SaC-interpreted boxes — the
// paper's actual two-layer configuration.
func (s *SacBoxes) Fig1HybridNet() core.Node {
	return core.Serial(
		s.ComputeOptsBox(),
		core.NamedStar("solve_loop", s.SolveOneLevelBox(), core.MustParsePattern("{<done>}")),
	)
}

// SolveHybrid runs a puzzle through the hybrid Fig. 1 network and returns
// the first solution.
func (s *SacBoxes) SolveHybrid(ctx context.Context, puzzle *Board, opts ...core.Option) (*Board, *core.Stats, error) {
	if puzzle.SubSize() != 3 {
		return nil, nil, fmt.Errorf("sudoku: the paper's SaC code is written for 9×9 boards")
	}
	input := core.NewRecord().SetField("board", BoardToValue(puzzle))
	rec, stats, err := core.RunUntil(ctx, s.Fig1HybridNet(), []*core.Record{input},
		func(r *core.Record) bool {
			_, done := r.Tag("done")
			return done
		}, opts...)
	if err != nil || rec == nil {
		return nil, stats, err
	}
	v, ok := rec.Field("board")
	if !ok {
		return nil, stats, fmt.Errorf("sudoku: result record lacks board")
	}
	sv, err := asValue(v, "board")
	if err != nil {
		return nil, stats, err
	}
	b, err := ValueToBoard(sv)
	return b, stats, err
}

// OptionsToValue converts native options to the SaC bool[N,N,N] cube.
func OptionsToValue(o *Options) sacvm.Value {
	return sacvm.BoolValue(o.cube.Clone())
}

// ValueToOptions converts a SaC bool cube back to native options.
func ValueToOptions(v sacvm.Value) (*Options, error) {
	if v.Kind != sacvm.KindBool || v.Dim() != 3 {
		return nil, fmt.Errorf("sudoku: value %s is not an option cube", v.TypeString())
	}
	n := intSqrt(v.Shape()[0])
	return &Options{n: n, cube: v.B.Clone()}, nil
}

// Compile-time guard: sacvm values are built on the same array substrate.
var _ = array.Equal[int]
