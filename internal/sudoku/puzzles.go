package sudoku

// Fixed benchmark puzzles.  Easy/Medium are conventional newspaper-grade
// 9×9 puzzles; Hard is the "AI Escargot" instance, a classic
// minimal-givens stress test for backtracking solvers.  All are verified
// (solvable, unique) by the test suite.

// Easy is the well-known example puzzle from the sudoku literature.
func Easy() *Board {
	return MustParse(
		"530070000" +
			"600195000" +
			"098000060" +
			"800060003" +
			"400803001" +
			"700020006" +
			"060000280" +
			"000419005" +
			"000080079")
}

// EasySolution is the unique solution of Easy.
func EasySolution() *Board {
	return MustParse(
		"534678912" +
			"672195348" +
			"198342567" +
			"859761423" +
			"426853791" +
			"713924856" +
			"961537284" +
			"287419635" +
			"345286179")
}

// Medium is a mid-difficulty puzzle with 26 givens.
func Medium() *Board {
	return MustParse(
		"000260701" +
			"680070090" +
			"190004500" +
			"820100040" +
			"004602900" +
			"050003028" +
			"009300074" +
			"040050036" +
			"703018000")
}

// Hard is "AI Escargot" (Arto Inkala), frequently cited as one of the
// hardest 9×9 puzzles for human techniques; it exercises deep backtracking.
func Hard() *Board {
	return MustParse(
		"100007090" +
			"030020008" +
			"009600500" +
			"005300900" +
			"010080002" +
			"600004000" +
			"300000010" +
			"040000007" +
			"007000300")
}

// Fixed9x9 returns the named benchmark set used throughout EXPERIMENTS.md.
func Fixed9x9() map[string]*Board {
	return map[string]*Board{
		"easy":   Easy(),
		"medium": Medium(),
		"hard":   Hard(),
	}
}
