package sudoku

import (
	"context"
	"testing"

	"repro/internal/sacvm"
)

// Differential tests: the paper's interpreted SaC functions must agree with
// the native Go implementations on every solver primitive.

func sacBoxes(t *testing.T) *SacBoxes {
	t.Helper()
	return NewSacBoxes(sp)
}

func TestSacAddNumberMatchesNative(t *testing.T) {
	s := sacBoxes(t)
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	for _, c := range []struct{ i, j, k int }{{0, 2, 4}, {4, 4, 5}, {8, 0, 3}} {
		nb, no := AddNumber(sp, b, opts, c.i, c.j, c.k)
		res, err := s.Interp().Call("addNumber", []sacvm.Value{
			sacvm.IntScalar(c.i), sacvm.IntScalar(c.j), sacvm.IntScalar(c.k),
			BoardToValue(b), OptionsToValue(opts),
		}, nil)
		if err != nil {
			t.Fatalf("addNumber(%v): %v", c, err)
		}
		gb, err := ValueToBoard(res[0])
		if err != nil {
			t.Fatal(err)
		}
		go2, err := ValueToOptions(res[1])
		if err != nil {
			t.Fatal(err)
		}
		if !gb.Equal(nb) {
			t.Fatalf("addNumber(%v): boards differ", c)
		}
		if !go2.Equal(no) {
			t.Fatalf("addNumber(%v): options differ", c)
		}
	}
}

func TestSacComputeOptsMatchesNative(t *testing.T) {
	s := sacBoxes(t)
	b := Easy()
	native, _ := ComputeOpts(sp, b)
	res, err := s.Interp().Call("computeOpts", []sacvm.Value{BoardToValue(b)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValueToOptions(res[1])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(native) {
		t.Fatal("computeOpts cubes differ")
	}
}

func TestSacPredicatesMatchNative(t *testing.T) {
	s := sacBoxes(t)
	for name, b := range map[string]*Board{
		"puzzle":   Easy(),
		"solution": EasySolution(),
	} {
		res, err := s.Interp().Call("isCompleted", []sacvm.Value{BoardToValue(b)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := res[0].AsBool(sacvm.Pos{})
		if got != b.IsCompleted() {
			t.Fatalf("%s: isCompleted = %v", name, got)
		}
	}
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	res, err := s.Interp().Call("isStuck", []sacvm.Value{BoardToValue(b), OptionsToValue(opts)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res[0].AsBool(sacvm.Pos{}); got != IsStuck(b, opts) {
		t.Fatal("isStuck differs")
	}
}

func TestSacFindMinTruesMatchesNative(t *testing.T) {
	s := sacBoxes(t)
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	res, err := s.Interp().Call("findMinTrues", []sacvm.Value{OptionsToValue(opts)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := res[0].AsInt(sacvm.Pos{})
	gj, _ := res[1].AsInt(sacvm.Pos{})
	// The SaC version scans row-major like the native one; both must pick
	// a minimal cell (the exact cell must agree given identical order).
	ni, nj, _ := FindMinTrues(opts)
	if gi != ni || gj != nj {
		t.Fatalf("findMinTrues: sac (%d,%d) vs native (%d,%d)", gi, gj, ni, nj)
	}
}

func TestSacSolveMatchesKnownSolution(t *testing.T) {
	s := sacBoxes(t)
	b := Easy()
	opts, _ := ComputeOpts(sp, b)
	res, err := s.Interp().Call("solve", []sacvm.Value{BoardToValue(b), OptionsToValue(opts)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValueToBoard(res[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(EasySolution()) {
		t.Fatalf("interpreted solve produced a different board:\n%s", got)
	}
}

// The full two-layer configuration of §5: interpreted SaC boxes inside the
// Fig. 1 S-Net network.
func TestHybridFig1SolvesEasy(t *testing.T) {
	s := sacBoxes(t)
	got, stats, err := s.SolveHybrid(context.Background(), Easy())
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !got.Equal(EasySolution()) {
		t.Fatalf("hybrid solution wrong: %v", got)
	}
	if stats.Counter("star.solve_loop.replicas") == 0 {
		t.Fatal("no unfolding recorded")
	}
	if stats.Counter("star.solve_loop.replicas") > 81 {
		t.Fatal("unfolding bound violated")
	}
}

func TestHybridRejectsNon9x9(t *testing.T) {
	s := sacBoxes(t)
	if _, _, err := s.SolveHybrid(context.Background(), NewBoard(2)); err == nil {
		t.Fatal("the paper's 9×9-specific SaC code must reject 4×4 boards")
	}
}

func TestValueConversionErrors(t *testing.T) {
	if _, err := ValueToBoard(sacvm.IntScalar(1)); err == nil {
		t.Fatal("scalar is not a board")
	}
	if _, err := ValueToOptions(sacvm.BoolScalar(true)); err == nil {
		t.Fatal("scalar is not an option cube")
	}
	if _, err := ValueToBoard(sacvm.IntValue(Easy().Cells().Reshape([]int{3, 27}))); err == nil {
		t.Fatal("non-square board accepted")
	}
}
