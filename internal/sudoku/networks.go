package sudoku

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// NetConfig selects the network variant and its parameters.
type NetConfig struct {
	// Pool executes the data-parallel with-loops inside the boxes (the
	// "SaC threads"); nil selects a sequential pool, which isolates the
	// coordination-level concurrency the figures are about.
	Pool *sched.Pool
	// Throttle m > 0 inserts Fig. 3's filter {<k>} -> {<k>=<k>%m} in
	// front of the parallel replicator, capping its width at m.
	Throttle int
	// ExitLevel is Fig. 3's serial-replicator exit threshold L in
	// {<level>} | <level> > L.  Zero selects the paper's 40.
	ExitLevel int
	// Det selects the deterministic combinator variants (|, *, !) —
	// not used by the paper's figures (which use **, !!) but provided
	// for the determinism ablation.
	Det bool
}

func (c NetConfig) pool() *sched.Pool {
	if c.Pool == nil {
		return sched.New(1)
	}
	return c.Pool
}

func (c NetConfig) star(name string, operand core.Node, exit core.Pattern) core.Node {
	if c.Det {
		return core.NamedStarDet(name, operand, exit)
	}
	return core.NamedStar(name, operand, exit)
}

func (c NetConfig) split(name string, operand core.Node, tag string) core.Node {
	if c.Det {
		return core.NamedSplitDet(name, operand, tag)
	}
	return core.NamedSplit(name, operand, tag)
}

// Fig1Net builds the paper's Figure 1 network:
//
//	computeOpts .. (solveOneLevel ** {<done>})
//
// The serial replicator unfolds into a pipeline of solveOneLevel boxes; a
// record leaves as soon as it carries <done>.  For an N×N board the
// unfolding is bounded by the number of cells (≤ 81 stages for 9×9).
func Fig1Net(cfg NetConfig) core.Node {
	p := cfg.pool()
	return core.Serial(
		ComputeOptsBox(p),
		cfg.star("solve_loop", SolveOneLevelBoxFig1(p), core.MustParsePattern("{<done>}")),
	)
}

// Fig2Net builds the paper's Figure 2 network with full unfolding:
//
//	computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevel !! <k>) ** {<done>})
//
// The filter seeds the <k> tag (board and opts flow-inherit through it);
// within every pipeline stage the parallel replicator fans out by <k>, so
// sibling alternatives of a search node proceed concurrently — at most 9
// replicas per stage and 9×81 = 729 boxes for 9×9 (§5).
func Fig2Net(cfg NetConfig) core.Node {
	p := cfg.pool()
	return core.Serial(
		ComputeOptsBox(p),
		core.MustFilter("{} -> {<k>=1}"),
		cfg.star("solve_loop",
			cfg.split("level_split", SolveOneLevelBoxFig2(p), "k"),
			core.MustParsePattern("{<done>}")),
	)
}

// Fig3Net builds the paper's Figure 3 network with throttled unfolding:
//
//	computeOpts .. [{} -> {<k>=1}] ..
//	  (([{<k>} -> {<k>=<k>%m}] .. (solveOneLevel !! <k>)) ** ({<level>} | <level> > L)) ..
//	  solve
//
// The modulo filter caps the parallel width at m (the paper uses 4); the
// guarded exit releases records once more than L numbers are placed (the
// paper uses 40), and the terminal solve box finishes non-completed boards
// sequentially.
func Fig3Net(cfg NetConfig) core.Node {
	p := cfg.pool()
	m := cfg.Throttle
	if m <= 0 {
		m = 4
	}
	L := cfg.ExitLevel
	if L <= 0 {
		L = 40
	}
	inner := core.Serial(
		core.MustFilter(fmt.Sprintf("{<k>} -> {<k>=<k>%%%d}", m)),
		cfg.split("level_split", SolveOneLevelBoxFig3(p), "k"),
	)
	exit := core.MustParsePattern(fmt.Sprintf("{<level>} | <level> > %d", L))
	return core.Serial(
		ComputeOptsBox(p),
		core.MustFilter("{} -> {<k>=1}"),
		cfg.star("solve_loop", inner, exit),
		SolveBox(p),
	)
}

// SolveWithNet runs one puzzle through a solver network and returns the
// first completed board (nil if the network drains without a solution —
// unsolvable puzzle), together with the run's statistics.
func SolveWithNet(ctx context.Context, net core.Node, puzzle *Board, opts ...core.Option) (*Board, *core.Stats, error) {
	input := core.NewRecord().SetField("board", puzzle)
	rec, stats, err := core.RunUntil(ctx, net, []*core.Record{input}, func(r *core.Record) bool {
		v, ok := r.Field("board")
		if !ok {
			return false
		}
		b, ok := v.(*Board)
		return ok && b.IsCompleted()
	}, opts...)
	if err != nil || rec == nil {
		return nil, stats, err
	}
	v, _ := rec.Field("board")
	return v.(*Board), stats, nil
}
