package sudoku

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

var sp = sched.New(1)

func TestParseAndGet(t *testing.T) {
	b := Easy()
	if b.N() != 9 || b.SubSize() != 3 {
		t.Fatalf("N=%d n=%d", b.N(), b.SubSize())
	}
	if b.Get(0, 0) != 5 || b.Get(0, 1) != 3 || b.Get(8, 8) != 9 {
		t.Fatal("parse broken")
	}
	if b.Get(0, 2) != 0 {
		t.Fatal("empty cell broken")
	}
}

func TestParseWithDotsAndLayout(t *testing.T) {
	b, err := Parse(`
		53..7....
		6..195...
		.98....6.
		8...6...3
		4..8.3..1
		7...2...6
		.6....28.
		...419..5
		....8..79`)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(Easy()) {
		t.Fatal("dot form disagrees with zero form")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("123"); err == nil {
		t.Fatal("short input must fail")
	}
	if _, err := Parse(strings.Repeat("x", 81)); err == nil {
		t.Fatal("bad character must fail")
	}
}

func TestFromGrid(t *testing.T) {
	g := make([][]int, 4)
	for i := range g {
		g[i] = make([]int, 4)
	}
	g[0][0] = 1
	b, err := FromGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if b.SubSize() != 2 || b.Get(0, 0) != 1 {
		t.Fatal("FromGrid broken")
	}
	if _, err := FromGrid(make([][]int, 5)); err == nil {
		t.Fatal("non-square side must fail")
	}
	g[0][0] = 9
	if _, err := FromGrid(g); err == nil {
		t.Fatal("out-of-range value must fail")
	}
	g[0][0] = 1
	g[1] = g[1][:2]
	if _, err := FromGrid(g); err == nil {
		t.Fatal("ragged grid must fail")
	}
}

func TestWithIsFunctional(t *testing.T) {
	b := NewBoard(3)
	b2 := b.With(4, 5, 7)
	if b.Get(4, 5) != 0 || b2.Get(4, 5) != 7 {
		t.Fatal("With must not mutate")
	}
}

func TestCompletedAndCounts(t *testing.T) {
	if Easy().IsCompleted() {
		t.Fatal("puzzle is not complete")
	}
	if !EasySolution().IsCompleted() {
		t.Fatal("solution is complete")
	}
	if Easy().CountFilled() != 30 {
		t.Fatalf("Easy has %d givens", Easy().CountFilled())
	}
	if EasySolution().CountFilled() != 81 {
		t.Fatal("solution filled count")
	}
}

func TestFindFirst(t *testing.T) {
	i, j, ok := Easy().FindFirst()
	if !ok || i != 0 || j != 2 {
		t.Fatalf("FindFirst = %d,%d,%v", i, j, ok)
	}
	if _, _, ok := EasySolution().FindFirst(); ok {
		t.Fatal("complete board has no empty cell")
	}
}

func TestValidDetectsViolations(t *testing.T) {
	if !Easy().Valid() || !EasySolution().Valid() {
		t.Fatal("valid boards reported invalid")
	}
	if !EasySolution().IsSolved() {
		t.Fatal("solution must be solved")
	}
	// duplicate in row
	if Easy().With(0, 8, 5).Valid() {
		t.Fatal("row violation undetected")
	}
	// duplicate in column
	if Easy().With(8, 0, 5).Valid() {
		t.Fatal("column violation undetected")
	}
	// duplicate in sub-board
	if Easy().With(1, 1, 5).Valid() {
		t.Fatal("sub-board violation undetected")
	}
}

func TestExtends(t *testing.T) {
	if !EasySolution().Extends(Easy()) {
		t.Fatal("solution must extend its puzzle")
	}
	if EasySolution().Extends(Hard()) {
		t.Fatal("wrong-puzzle extension")
	}
	if Easy().Extends(NewBoard(2)) {
		t.Fatal("size mismatch must not extend")
	}
}

func TestBoardString(t *testing.T) {
	s := Easy().String()
	if !strings.Contains(s, "5") || !strings.Contains(s, ".") || !strings.Contains(s, "|") {
		t.Fatalf("rendering: %q", s)
	}
}

func TestCloneEqualIndependent(t *testing.T) {
	b := Easy()
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone unequal")
	}
	c.cells.Set(9, 0, 2)
	if b.Equal(c) || b.Get(0, 2) != 0 {
		t.Fatal("clone aliased")
	}
}

func TestNewBoardPanicsOnTinySubSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoard(1) must panic")
		}
	}()
	NewBoard(1)
}
