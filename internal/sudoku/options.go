package sudoku

import (
	"repro/internal/array"
	"repro/internal/sched"
)

// Options is the paper's bool[N,N,N] cube: Options[i,j,k] reports whether
// number k+1 may still be placed at position (i,j).  Like the board it is a
// functional value; AddNumber returns fresh options.
type Options struct {
	n    int
	cube *array.Array[bool]
}

// NewOptions returns the all-true option cube (§3: "We start out from an
// array containing true values only").
func NewOptions(n int) *Options {
	N := n * n
	return &Options{n: n, cube: array.New([]int{N, N, N}, true)}
}

// Cube exposes the underlying array (read-only by convention).
func (o *Options) Cube() *array.Array[bool] { return o.cube }

// Get reports whether number k (1-based) is still possible at (i, j).
func (o *Options) Get(i, j, k int) bool { return o.cube.At(i, j, k-1) }

// Count returns the number of options left at (i, j).
func (o *Options) Count(i, j int) int {
	N := o.n * o.n
	data := o.cube.Data()
	base := (i*N + j) * N
	c := 0
	for _, v := range data[base : base+N] {
		if v {
			c++
		}
	}
	return c
}

// Clone returns a deep copy.
func (o *Options) Clone() *Options { return &Options{n: o.n, cube: o.cube.Clone()} }

// Equal reports equality.
func (o *Options) Equal(p *Options) bool { return o.n == p.n && array.Equal(o.cube, p.cube) }

// AddNumber places number k (1-based) at position (i, j): it returns the
// updated board and options.  This is the paper's §3 addNumber function,
// with the option update expressed as the same four-generator
// modarray-with-loop:
//
//	opts = with {
//	    ([i,j,0]   <= iv <= [i,j,N-1])        : false;   // this cell
//	    ([i,0,k]   <= iv <= [i,N-1,k])        : false;   // row i
//	    ([0,j,k]   <= iv <= [N-1,j,k])        : false;   // column j
//	    ([is,js,k] <= iv <= [is+n-1,js+n-1,k]): false;   // sub-board
//	} : modarray( opts);
//
// The with-loop runs data-parallel on pool p.
func AddNumber(p *sched.Pool, b *Board, o *Options, i, j, k int) (*Board, *Options) {
	N := b.N()
	n := b.n
	board := b.With(i, j, k)
	k0 := k - 1
	is, js := (i/n)*n, (j/n)*n
	falseBody := func([]int) bool { return false }
	cube := array.Modarray(p, o.cube,
		array.GenClosed([]int{i, j, 0}, []int{i, j, N - 1}, falseBody),
		array.GenClosed([]int{i, 0, k0}, []int{i, N - 1, k0}, falseBody),
		array.GenClosed([]int{0, j, k0}, []int{N - 1, j, k0}, falseBody),
		array.GenClosed([]int{is, js, k0}, []int{is + n - 1, js + n - 1, k0}, falseBody),
	)
	return board, &Options{n: o.n, cube: cube}
}

// addNumberDirect is a hand-written loop equivalent of AddNumber used for
// differential testing and as a fast path where the with-loop engine's
// generality is not needed.
func addNumberDirect(b *Board, o *Options, i, j, k int) (*Board, *Options) {
	N := b.N()
	n := b.n
	board := b.With(i, j, k)
	opts := o.Clone()
	data := opts.cube.Data()
	k0 := k - 1
	at := func(x, y, z int) int { return (x*N+y)*N + z }
	for z := 0; z < N; z++ {
		data[at(i, j, z)] = false
	}
	for y := 0; y < N; y++ {
		data[at(i, y, k0)] = false
	}
	for x := 0; x < N; x++ {
		data[at(x, j, k0)] = false
	}
	is, js := (i/n)*n, (j/n)*n
	for x := is; x < is+n; x++ {
		for y := js; y < js+n; y++ {
			data[at(x, y, k0)] = false
		}
	}
	return board, opts
}

// ComputeOpts derives the option cube for a board by adding every given
// number to a fresh all-true cube — the computeOpts box of Fig. 1.  The
// boolean result is false when a given number was already impossible (the
// puzzle is inconsistent).
func ComputeOpts(p *sched.Pool, b *Board) (*Options, bool) {
	N := b.N()
	opts := NewOptions(b.n)
	consistent := true
	cur := NewBoard(b.n)
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			k := b.Get(i, j)
			if k == 0 {
				continue
			}
			if !opts.Get(i, j, k) {
				consistent = false
			}
			cur, opts = AddNumber(p, cur, opts, i, j, k)
		}
	}
	return opts, consistent
}

// IsStuck reports whether some empty cell has no options left (§3's
// isStuck): the search cannot proceed from this board.
func IsStuck(b *Board, o *Options) bool {
	N := b.N()
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if b.Get(i, j) == 0 && o.Count(i, j) == 0 {
				return true
			}
		}
	}
	return false
}

// FindMinTrues selects the position with the minimum positive number of
// options left (§3/§5's findMinTrues): positions with zero options are
// filled cells (or stuck cells, which isStuck rules out beforehand).
// ok is false when no position has any option left.
func FindMinTrues(o *Options) (i, j int, ok bool) {
	N := o.n * o.n
	best := N + 1
	bi, bj := -1, -1
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			c := o.Count(x, y)
			if c > 0 && c < best {
				best, bi, bj = c, x, y
				if c == 1 {
					return bi, bj, true
				}
			}
		}
	}
	return bi, bj, bi >= 0
}
