package array

import (
	"testing"
	"testing/quick"
)

func TestTakeDrop(t *testing.T) {
	v := Vector(1, 2, 3, 4, 5)
	if !Equal(Take(v, 2), Vector(1, 2)) {
		t.Fatal("Take front")
	}
	if !Equal(Take(v, -2), Vector(4, 5)) {
		t.Fatal("Take back")
	}
	if !Equal(Drop(v, 2), Vector(3, 4, 5)) {
		t.Fatal("Drop front")
	}
	if !Equal(Drop(v, -2), Vector(1, 2, 3)) {
		t.Fatal("Drop back")
	}
	if Take(v, 0).Size() != 0 || Drop(v, 5).Size() != 0 {
		t.Fatal("empty edge cases")
	}
	m := FromSlice([]int{3, 2}, []int{1, 2, 3, 4, 5, 6})
	if !Equal(Take(m, 1), FromSlice([]int{1, 2}, []int{1, 2})) {
		t.Fatal("Take matrix row")
	}
	if !Equal(Drop(m, -1), FromSlice([]int{2, 2}, []int{1, 2, 3, 4})) {
		t.Fatal("Drop matrix back")
	}
}

func TestTakeDropErrors(t *testing.T) {
	t.Run("take-scalar", func(t *testing.T) {
		defer wantShapePanic(t, "Take")
		Take(Scalar(1), 1)
	})
	t.Run("take-over", func(t *testing.T) {
		defer wantShapePanic(t, "Take")
		Take(Vector(1, 2), 3)
	})
	t.Run("drop-over", func(t *testing.T) {
		defer wantShapePanic(t, "Drop")
		Drop(Vector(1, 2), -3)
	})
}

func TestRotate(t *testing.T) {
	v := Vector(1, 2, 3, 4, 5)
	if !Equal(Rotate(v, 0, 1), Vector(5, 1, 2, 3, 4)) {
		t.Fatalf("rotate +1: %v", Rotate(v, 0, 1))
	}
	if !Equal(Rotate(v, 0, -1), Vector(2, 3, 4, 5, 1)) {
		t.Fatal("rotate -1")
	}
	if !Equal(Rotate(v, 0, 5), v) || !Equal(Rotate(v, 0, -10), v) {
		t.Fatal("full rotations must be identity")
	}
	m := FromSlice([]int{2, 3}, []int{1, 2, 3, 4, 5, 6})
	if !Equal(Rotate(m, 1, 1), FromSlice([]int{2, 3}, []int{3, 1, 2, 6, 4, 5})) {
		t.Fatalf("rotate axis 1: %v", Rotate(m, 1, 1))
	}
	defer wantShapePanic(t, "Rotate")
	Rotate(v, 1, 1)
}

func TestReverse(t *testing.T) {
	if !Equal(Reverse(Vector(1, 2, 3), 0), Vector(3, 2, 1)) {
		t.Fatal("reverse vector")
	}
	m := FromSlice([]int{2, 3}, []int{1, 2, 3, 4, 5, 6})
	if !Equal(Reverse(m, 0), FromSlice([]int{2, 3}, []int{4, 5, 6, 1, 2, 3})) {
		t.Fatal("reverse rows")
	}
	if !Equal(Reverse(m, 1), FromSlice([]int{2, 3}, []int{3, 2, 1, 6, 5, 4})) {
		t.Fatal("reverse cols")
	}
	if !Equal(Reverse(Reverse(m, 0), 0), m) {
		t.Fatal("reverse involution")
	}
	defer wantShapePanic(t, "Reverse")
	Reverse(m, 2)
}

func TestTranspose(t *testing.T) {
	for _, p := range pools {
		m := FromSlice([]int{2, 3}, []int{1, 2, 3, 4, 5, 6})
		mt := Transpose(p, m)
		if !Equal(mt, FromSlice([]int{3, 2}, []int{1, 4, 2, 5, 3, 6})) {
			t.Fatalf("transpose: %v", mt)
		}
		if !Equal(Transpose(p, mt), m) {
			t.Fatal("transpose involution")
		}
		// rank 3: leading axes swap, inner blocks move wholesale
		c := FromSlice([]int{2, 2, 2}, []int{0, 1, 2, 3, 4, 5, 6, 7})
		ct := Transpose(p, c)
		if ct.At(1, 0, 1) != c.At(0, 1, 1) {
			t.Fatal("rank-3 transpose broken")
		}
	}
	defer wantShapePanic(t, "Transpose")
	Transpose(p1, Vector(1, 2))
}

func TestTile(t *testing.T) {
	if !Equal(Tile(Vector(1, 2), 3), Vector(1, 2, 1, 2, 1, 2)) {
		t.Fatal("tile vector")
	}
	if Tile(Vector(1), 0).Size() != 0 {
		t.Fatal("tile zero")
	}
	defer wantShapePanic(t, "Tile")
	Tile(Vector(1), -1)
}

func TestMinMaxValue(t *testing.T) {
	v := Vector(3, -1, 7, 2)
	if MinValue(v) != -1 || MaxValue(v) != 7 {
		t.Fatal("min/max broken")
	}
	defer wantShapePanic(t, "MinValue")
	MinValue(New([]int{0}, 0))
}

// Property: Take(v,n) ++ Drop(v,n) == v for 0 <= n <= len.
func TestQuickTakeDropConcat(t *testing.T) {
	f := func(raw []int8, nRaw uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		v := FromSlice([]int{len(data)}, data)
		if len(data) == 0 {
			return true
		}
		n := int(nRaw) % (len(data) + 1)
		return Equal(Concat(Take(v, n), Drop(v, n)), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rotating by n then -n is the identity.
func TestQuickRotateInverse(t *testing.T) {
	f := func(raw []int8, nRaw int8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		v := FromSlice([]int{len(data)}, data)
		n := int(nRaw)
		return Equal(Rotate(Rotate(v, 0, n), 0, -n), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose swaps indices on random matrices.
func TestQuickTransposeIndex(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		r, c := int(rRaw%6)+1, int(cRaw%6)+1
		m := Genarray(p2, []int{r, c}, 0,
			GenHalfOpen([]int{0, 0}, []int{r, c}, func(iv []int) int {
				return iv[0]*100 + iv[1]
			}))
		mt := Transpose(p2, m)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if mt.At(j, i) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
