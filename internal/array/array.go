// Package array implements the SaC array substrate of the paper (§2):
// state-less n-dimensional arrays over int, bool and float64 elements, with
// SaC's structural primitives (dim, shape, selection including subarray
// selection) and the with-loop array comprehensions (genarray, modarray,
// fold) executed data-parallel on an internal/sched pool.
//
// Semantics follow §2 of the paper:
//
//   - scalars are rank-0 arrays with an empty shape vector;
//   - a with-loop may have several generators over rectangular index sets;
//     when generators overlap, later generators win;
//   - genarray's result shape is given explicitly and elements not covered
//     by any generator take the default value;
//   - modarray copies the referred array and overwrites generator-covered
//     elements.
//
// Arrays are values in the SaC sense: every operation returns a fresh array
// and never aliases input storage (Clone-on-build).  Shape errors are
// programmer errors and panic with a *ShapeError, mirroring the checks SaC
// performs at compile time.
package array

import (
	"fmt"
	"strings"
)

// ShapeError reports an invalid shape, index, or bound combination.
type ShapeError struct {
	Op  string
	Msg string
}

func (e *ShapeError) Error() string { return "array: " + e.Op + ": " + e.Msg }

func shapeErrf(op, format string, args ...any) *ShapeError {
	return &ShapeError{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Array is an immutable-by-convention n-dimensional array in row-major
// layout.  A rank-0 Array holds exactly one element and models a SaC scalar.
type Array[T any] struct {
	shape []int
	data  []T
}

// Size returns the number of elements described by a shape vector.  An empty
// shape has size 1 (a scalar).
func Size(shape []int) int {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(shapeErrf("Size", "negative extent in shape %v", shape))
		}
		n *= s
	}
	return n
}

// New returns an array of the given shape with every element set to fill.
// The shape slice is copied.
func New[T any](shape []int, fill T) *Array[T] {
	a := &Array[T]{shape: cloneInts(shape), data: make([]T, Size(shape))}
	var zero T
	if any(fill) != any(zero) {
		for i := range a.data {
			a.data[i] = fill
		}
	}
	return a
}

// FromSlice builds an array of the given shape from row-major data.  The
// data slice is copied.
func FromSlice[T any](shape []int, data []T) *Array[T] {
	if Size(shape) != len(data) {
		panic(shapeErrf("FromSlice", "shape %v needs %d elements, got %d", shape, Size(shape), len(data)))
	}
	return &Array[T]{shape: cloneInts(shape), data: append([]T(nil), data...)}
}

// Scalar returns a rank-0 array holding v.
func Scalar[T any](v T) *Array[T] {
	return &Array[T]{shape: nil, data: []T{v}}
}

// Vector returns a rank-1 array holding vs.
func Vector[T any](vs ...T) *Array[T] {
	return FromSlice([]int{len(vs)}, vs)
}

// Dim returns the rank of the array (SaC's dim()); 0 for scalars.
func (a *Array[T]) Dim() int { return len(a.shape) }

// Shape returns a copy of the shape vector (SaC's shape()).
func (a *Array[T]) Shape() []int { return cloneInts(a.shape) }

// shapeRef returns the internal shape without copying; callers must not
// mutate it.
func (a *Array[T]) shapeRef() []int { return a.shape }

// Size returns the total number of elements.
func (a *Array[T]) Size() int { return len(a.data) }

// Data returns the row-major backing slice.  Callers must treat it as
// read-only; it is exposed for zero-copy consumption by schedulers and
// encoders.
func (a *Array[T]) Data() []T { return a.data }

// Clone returns a deep copy.
func (a *Array[T]) Clone() *Array[T] {
	return &Array[T]{shape: cloneInts(a.shape), data: append([]T(nil), a.data...)}
}

// ScalarValue returns the single element of a rank-0 array.
func (a *Array[T]) ScalarValue() T {
	if len(a.data) != 1 || len(a.shape) != 0 {
		panic(shapeErrf("ScalarValue", "array of shape %v is not a scalar", a.shape))
	}
	return a.data[0]
}

// Offset converts a full index vector to the row-major offset.
func (a *Array[T]) Offset(iv []int) int {
	if len(iv) != len(a.shape) {
		panic(shapeErrf("Offset", "index %v has rank %d, array has rank %d", iv, len(iv), len(a.shape)))
	}
	off := 0
	for d, i := range iv {
		if i < 0 || i >= a.shape[d] {
			panic(shapeErrf("Offset", "index %v out of bounds for shape %v", iv, a.shape))
		}
		off = off*a.shape[d] + i
	}
	return off
}

// At returns the element at the given full index vector.
func (a *Array[T]) At(iv ...int) T { return a.data[a.Offset(iv)] }

// Set writes the element at the given full index vector.  It mutates the
// receiver and is intended for array construction only; SaC-level code uses
// With-loops or With* helpers that copy first.
func (a *Array[T]) Set(v T, iv ...int) { a.data[a.Offset(iv)] = v }

// WithAt returns a copy of a with the element at iv replaced by v — the
// functional single-element update that `board[i,j] = k` denotes in SaC.
func (a *Array[T]) WithAt(v T, iv ...int) *Array[T] {
	b := a.Clone()
	b.data[b.Offset(iv)] = v
	return b
}

// Sel implements SaC selection array[idx_vec]: the index vector may be a
// prefix of the rank, in which case the result is the selected subarray; a
// full-rank index yields a rank-0 (scalar) array.
func (a *Array[T]) Sel(iv ...int) *Array[T] {
	if len(iv) > len(a.shape) {
		panic(shapeErrf("Sel", "index %v longer than rank %d", iv, len(a.shape)))
	}
	off := 0
	for d, i := range iv {
		if i < 0 || i >= a.shape[d] {
			panic(shapeErrf("Sel", "index %v out of bounds for shape %v", iv, a.shape))
		}
		off = off*a.shape[d] + i
	}
	rest := a.shape[len(iv):]
	sz := Size(rest)
	off *= sz
	out := &Array[T]{shape: cloneInts(rest), data: append([]T(nil), a.data[off:off+sz]...)}
	return out
}

// Reshape returns an array with the same data and a new shape of equal size.
func (a *Array[T]) Reshape(shape []int) *Array[T] {
	if Size(shape) != len(a.data) {
		panic(shapeErrf("Reshape", "cannot reshape %v (size %d) to %v (size %d)",
			a.shape, len(a.data), shape, Size(shape)))
	}
	return &Array[T]{shape: cloneInts(shape), data: append([]T(nil), a.data...)}
}

// Equal reports whether two arrays have identical shape and elements.
func Equal[T comparable](a, b *Array[T]) bool {
	if !sameInts(a.shape, b.shape) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// String renders the array; vectors and matrices get SaC-like bracketed
// layout, higher ranks a flat dump with shape prefix.
func (a *Array[T]) String() string {
	switch len(a.shape) {
	case 0:
		return fmt.Sprint(a.data[0])
	case 1:
		var b strings.Builder
		b.WriteByte('[')
		for i, v := range a.data {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprint(&b, v)
		}
		b.WriteByte(']')
		return b.String()
	case 2:
		var b strings.Builder
		b.WriteByte('[')
		rows, cols := a.shape[0], a.shape[1]
		for r := 0; r < rows; r++ {
			if r > 0 {
				b.WriteString(",\n ")
			}
			b.WriteByte('[')
			for c := 0; c < cols; c++ {
				if c > 0 {
					b.WriteByte(',')
				}
				fmt.Fprint(&b, a.data[r*cols+c])
			}
			b.WriteByte(']')
		}
		b.WriteByte(']')
		return b.String()
	default:
		return fmt.Sprintf("reshape(%v, %v)", a.shape, a.data)
	}
}

func cloneInts(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	return append([]int(nil), s...)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
