package array

import (
	"context"

	"repro/internal/sched"
)

// Number constrains element types that support arithmetic.
type Number interface {
	~int | ~int64 | ~float64
}

// Map applies f elementwise, producing a fresh array of the same shape.
func Map[T, U any](p *sched.Pool, a *Array[T], f func(T) U) *Array[U] {
	out := &Array[U]{shape: cloneInts(a.shape), data: make([]U, len(a.data))}
	err := p.For(context.Background(), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = f(a.data[i])
		}
	})
	rethrow(err)
	return out
}

// Zip combines two same-shaped arrays elementwise.
func Zip[T, U, V any](p *sched.Pool, a *Array[T], b *Array[U], f func(T, U) V) *Array[V] {
	if !sameInts(a.shape, b.shape) {
		panic(shapeErrf("Zip", "shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := &Array[V]{shape: cloneInts(a.shape), data: make([]V, len(a.data))}
	err := p.For(context.Background(), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = f(a.data[i], b.data[i])
		}
	})
	rethrow(err)
	return out
}

// Add returns the elementwise sum a + b.
func Add[T Number](p *sched.Pool, a, b *Array[T]) *Array[T] {
	return Zip(p, a, b, func(x, y T) T { return x + y })
}

// Sub returns the elementwise difference a - b.
func Sub[T Number](p *sched.Pool, a, b *Array[T]) *Array[T] {
	return Zip(p, a, b, func(x, y T) T { return x - y })
}

// Mul returns the elementwise product a * b.
func Mul[T Number](p *sched.Pool, a, b *Array[T]) *Array[T] {
	return Zip(p, a, b, func(x, y T) T { return x * y })
}

// AddScalar returns a + s with s broadcast over every element.
func AddScalar[T Number](p *sched.Pool, a *Array[T], s T) *Array[T] {
	return Map(p, a, func(x T) T { return x + s })
}

// MulScalar returns a * s with s broadcast over every element.
func MulScalar[T Number](p *sched.Pool, a *Array[T], s T) *Array[T] {
	return Map(p, a, func(x T) T { return x * s })
}

// Sum reduces the array with +.
func Sum[T Number](p *sched.Pool, a *Array[T]) T {
	out, err := sched.Reduce(p, context.Background(), len(a.data), T(0),
		func(lo, hi int, acc T) T {
			for i := lo; i < hi; i++ {
				acc += a.data[i]
			}
			return acc
		}, func(x, y T) T { return x + y })
	rethrow(err)
	return out
}

// CountTrue returns the number of true elements of a boolean array.
func CountTrue(p *sched.Pool, a *Array[bool]) int {
	out, err := sched.Reduce(p, context.Background(), len(a.data), 0,
		func(lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				if a.data[i] {
					acc++
				}
			}
			return acc
		}, func(x, y int) int { return x + y })
	rethrow(err)
	return out
}

// All reports whether every element is true; true for empty arrays.
func All(p *sched.Pool, a *Array[bool]) bool {
	for _, v := range a.data { // short-circuit beats parallel dispatch here
		if !v {
			return false
		}
	}
	return true
}

// Any reports whether at least one element is true; false for empty arrays.
func Any(p *sched.Pool, a *Array[bool]) bool {
	for _, v := range a.data {
		if v {
			return true
		}
	}
	return false
}

// Eq compares two same-shaped arrays elementwise into a boolean array.
func Eq[T comparable](p *sched.Pool, a, b *Array[T]) *Array[bool] {
	return Zip(p, a, b, func(x, y T) bool { return x == y })
}

// Concat concatenates two arrays along axis 0 — the paper's ++ operator (§2)
// generalised from vectors to any rank: all trailing extents must agree.
func Concat[T any](a, b *Array[T]) *Array[T] {
	if a.Dim() == 0 || b.Dim() == 0 {
		panic(shapeErrf("Concat", "cannot concatenate scalars"))
	}
	if !sameInts(a.shape[1:], b.shape[1:]) {
		panic(shapeErrf("Concat", "trailing shapes differ: %v vs %v", a.shape, b.shape))
	}
	shape := cloneInts(a.shape)
	shape[0] = a.shape[0] + b.shape[0]
	data := make([]T, 0, len(a.data)+len(b.data))
	data = append(data, a.data...)
	data = append(data, b.data...)
	return &Array[T]{shape: shape, data: data}
}

// Iota returns the vector [0, 1, ..., n-1] (the paper's second §2 example).
func Iota(n int) *Array[int] {
	a := &Array[int]{shape: []int{n}, data: make([]int, n)}
	for i := range a.data {
		a.data[i] = i
	}
	return a
}

// Where returns the index vectors (row-major order) of all true elements.
func Where(a *Array[bool]) [][]int {
	var out [][]int
	if len(a.data) == 0 {
		return out
	}
	rank := a.Dim()
	for lin := 0; lin < len(a.data); lin++ {
		if a.data[lin] {
			iv := make([]int, rank)
			LinearToIndex(lin, a.shape, iv)
			out = append(out, iv)
		}
	}
	return out
}
