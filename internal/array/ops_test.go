package array

import (
	"testing"
	"testing/quick"
)

func TestMapZipArithmetic(t *testing.T) {
	for _, p := range pools {
		a := Vector(1, 2, 3)
		b := Vector(10, 20, 30)
		if !Equal(Add(p, a, b), Vector(11, 22, 33)) {
			t.Fatal("Add broken")
		}
		if !Equal(Sub(p, b, a), Vector(9, 18, 27)) {
			t.Fatal("Sub broken")
		}
		if !Equal(Mul(p, a, b), Vector(10, 40, 90)) {
			t.Fatal("Mul broken")
		}
		if !Equal(AddScalar(p, a, 5), Vector(6, 7, 8)) {
			t.Fatal("AddScalar broken")
		}
		if !Equal(MulScalar(p, a, -1), Vector(-1, -2, -3)) {
			t.Fatal("MulScalar broken")
		}
		sq := Map(p, a, func(x int) int { return x * x })
		if !Equal(sq, Vector(1, 4, 9)) {
			t.Fatal("Map broken")
		}
	}
}

func TestZipShapeMismatchPanics(t *testing.T) {
	defer wantShapePanic(t, "Zip")
	Zip(p1, Vector(1, 2), Vector(1, 2, 3), func(a, b int) int { return a + b })
}

func TestSumCountAllAny(t *testing.T) {
	for _, p := range pools {
		if Sum(p, Iota(100)) != 4950 {
			t.Fatal("Sum broken")
		}
		bools := Vector(true, false, true, true)
		if CountTrue(p, bools) != 3 {
			t.Fatal("CountTrue broken")
		}
		if All(p, bools) {
			t.Fatal("All broken")
		}
		if !All(p, Vector(true, true)) {
			t.Fatal("All broken on all-true")
		}
		if !All(p, New([]int{0}, false)) {
			t.Fatal("All on empty must be true")
		}
		if !Any(p, bools) {
			t.Fatal("Any broken")
		}
		if Any(p, New([]int{3}, false)) {
			t.Fatal("Any on all-false must be false")
		}
	}
}

func TestEqElementwise(t *testing.T) {
	for _, p := range pools {
		e := Eq(p, Vector(1, 2, 3), Vector(1, 9, 3))
		if !Equal(e, Vector(true, false, true)) {
			t.Fatalf("Eq = %v", e)
		}
	}
}

func TestConcatMatrices(t *testing.T) {
	a := FromSlice([]int{1, 2}, []int{1, 2})
	b := FromSlice([]int{2, 2}, []int{3, 4, 5, 6})
	c := Concat(a, b)
	if !Equal(c, FromSlice([]int{3, 2}, []int{1, 2, 3, 4, 5, 6})) {
		t.Fatalf("Concat = %v", c)
	}
}

func TestConcatErrors(t *testing.T) {
	t.Run("scalar", func(t *testing.T) {
		defer wantShapePanic(t, "Concat")
		Concat(Scalar(1), Vector(2))
	})
	t.Run("trailing", func(t *testing.T) {
		defer wantShapePanic(t, "Concat")
		Concat(FromSlice([]int{1, 2}, []int{1, 2}), FromSlice([]int{1, 3}, []int{1, 2, 3}))
	})
}

func TestWhere(t *testing.T) {
	b := FromSlice([]int{2, 2}, []bool{false, true, true, false})
	idx := Where(b)
	if len(idx) != 2 || idx[0][0] != 0 || idx[0][1] != 1 || idx[1][0] != 1 || idx[1][1] != 0 {
		t.Fatalf("Where = %v", idx)
	}
	if len(Where(New([]int{0}, false))) != 0 {
		t.Fatal("Where on empty must be empty")
	}
}

// Property: Concat length and element identity.
func TestQuickConcatProperty(t *testing.T) {
	f := func(aRaw, bRaw []int8) bool {
		av := make([]int, len(aRaw))
		bv := make([]int, len(bRaw))
		for i, v := range aRaw {
			av[i] = int(v)
		}
		for i, v := range bRaw {
			bv[i] = int(v)
		}
		a := FromSlice([]int{len(av)}, av)
		b := FromSlice([]int{len(bv)}, bv)
		c := Concat(a, b)
		if c.Size() != a.Size()+b.Size() {
			return false
		}
		for i := 0; i < a.Size(); i++ {
			if c.At(i) != a.At(i) {
				return false
			}
		}
		for i := 0; i < b.Size(); i++ {
			if c.At(a.Size()+i) != b.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum(Add(a,b)) == Sum(a) + Sum(b).
func TestQuickSumLinearity(t *testing.T) {
	f := func(raw []int8) bool {
		n := len(raw)
		av := make([]int, n)
		bv := make([]int, n)
		for i, v := range raw {
			av[i] = int(v)
			bv[i] = int(v) * 3
		}
		a := FromSlice([]int{n}, av)
		b := FromSlice([]int{n}, bv)
		return Sum(p2, Add(p2, a, b)) == Sum(p2, a)+Sum(p2, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
