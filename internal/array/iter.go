package array

// Index-space iteration helpers shared by the with-loop engine and callers
// that walk rectangular index sets.

// NextIndex advances iv through the row-major order of the given shape and
// reports whether iv is still in bounds.  Start iteration with the all-zero
// vector; NextIndex mutates iv in place.
func NextIndex(iv, shape []int) bool {
	for d := len(shape) - 1; d >= 0; d-- {
		iv[d]++
		if iv[d] < shape[d] {
			return true
		}
		iv[d] = 0
	}
	return false
}

// LinearToIndex converts a row-major linear offset within the given shape to
// an index vector written into out (which must have len(shape)).
func LinearToIndex(lin int, shape, out []int) {
	for d := len(shape) - 1; d >= 0; d-- {
		out[d] = lin % shape[d]
		lin /= shape[d]
	}
}

// IndexToLinear converts a full index vector to its row-major linear offset
// within the given shape.
func IndexToLinear(iv, shape []int) int {
	off := 0
	for d := range shape {
		off = off*shape[d] + iv[d]
	}
	return off
}
