package array

import (
	"context"
	"errors"

	"repro/internal/sched"
)

// Gen describes one with-loop generator: a rectangular (optionally strided)
// index set together with the expression computed for each index.
//
// The paper's generator forms are
//
//	( lower <= iv <  upper ) : expr;
//	( lower <= iv <= upper ) : expr;
//
// which correspond to IncUpper false/true.  Full SaC additionally allows an
// exclusive lower bound and step/width grids; both are supported here for
// completeness (Step nil means dense).
type Gen[T any] struct {
	Lower, Upper []int
	ExclLower    bool  // true for "lower < iv"
	IncUpper     bool  // true for "iv <= upper"
	Step, Width  []int // optional grid filter: (iv-lower) mod step < width
	Body         func(iv []int) T
}

// GenHalfOpen returns the common generator form lower <= iv < upper.
func GenHalfOpen[T any](lower, upper []int, body func(iv []int) T) Gen[T] {
	return Gen[T]{Lower: lower, Upper: upper, Body: body}
}

// GenClosed returns the inclusive generator form lower <= iv <= upper used
// throughout the paper's addNumber (§3).
func GenClosed[T any](lower, upper []int, body func(iv []int) T) Gen[T] {
	return Gen[T]{Lower: lower, Upper: upper, IncUpper: true, Body: body}
}

// bounds returns the effective half-open index box [lo, hi) of the
// generator.
func (g *Gen[T]) bounds() (lo, hi []int) {
	if len(g.Lower) != len(g.Upper) {
		panic(shapeErrf("withloop", "generator bounds %v and %v differ in length", g.Lower, g.Upper))
	}
	lo = cloneInts(g.Lower)
	hi = cloneInts(g.Upper)
	for d := range lo {
		if g.ExclLower {
			lo[d]++
		}
		if g.IncUpper {
			hi[d]++
		}
	}
	return lo, hi
}

func (g *Gen[T]) checkGrid(rank int) {
	if g.Step == nil {
		return
	}
	if len(g.Step) != rank || (g.Width != nil && len(g.Width) != rank) {
		panic(shapeErrf("withloop", "step/width rank mismatch (rank %d, step %v, width %v)", rank, g.Step, g.Width))
	}
	for d, s := range g.Step {
		if s < 1 {
			panic(shapeErrf("withloop", "step must be >= 1, got %v", g.Step))
		}
		if g.Width != nil && (g.Width[d] < 1 || g.Width[d] > s) {
			panic(shapeErrf("withloop", "width must be in [1, step], got step %v width %v", g.Step, g.Width))
		}
	}
}

// onGrid reports whether the offset vector off (relative to the generator's
// lower bound) lies on the generator's step/width grid.
func (g *Gen[T]) onGrid(off []int) bool {
	if g.Step == nil {
		return true
	}
	for d, o := range off {
		w := 1
		if g.Width != nil {
			w = g.Width[d]
		}
		if o%g.Step[d] >= w {
			return false
		}
	}
	return true
}

// Genarray evaluates a genarray-with-loop: an array of the given shape whose
// elements are def except where covered by a generator.  Generators are
// applied in order, so on overlap later generators win (§2 of the paper).
// Each generator's index set is evaluated data-parallel on pool p; the Body
// functions must therefore be pure (thread-safe).  The iv slice passed to
// Body is reused between calls and must not be retained.
func Genarray[T any](p *sched.Pool, shape []int, def T, gens ...Gen[T]) *Array[T] {
	res := New(shape, def)
	for i := range gens {
		applyGen(p, res, &gens[i])
	}
	return res
}

// Modarray evaluates a modarray-with-loop: a copy of src with the
// generator-covered elements replaced (§2 of the paper).
func Modarray[T any](p *sched.Pool, src *Array[T], gens ...Gen[T]) *Array[T] {
	res := src.Clone()
	for i := range gens {
		applyGen(p, res, &gens[i])
	}
	return res
}

// applyGen writes one generator into res.  Indices outside res's shape are
// skipped (the generator is intersected with the result's index space).
func applyGen[T any](p *sched.Pool, res *Array[T], g *Gen[T]) {
	rank := res.Dim()
	if len(g.Lower) != rank {
		panic(shapeErrf("withloop", "generator rank %d does not match result rank %d", len(g.Lower), rank))
	}
	g.checkGrid(rank)
	lo, hi := g.bounds()
	shape := res.shapeRef()
	// Intersect with the result's index space.
	ext := make([]int, rank)
	total := 1
	for d := 0; d < rank; d++ {
		if lo[d] < 0 {
			// keep grid alignment anchored at the original lower
			// bound: indices below zero are skipped via bounds
			// check during iteration instead of shifting lo.
			lo[d] = 0
		}
		if hi[d] > shape[d] {
			hi[d] = shape[d]
		}
		e := hi[d] - lo[d]
		if e <= 0 {
			return // empty generator
		}
		ext[d] = e
		total *= e
	}
	if rank == 0 {
		// Degenerate scalar generator covers the single element.
		res.data[0] = g.Body(nil)
		return
	}
	err := p.For(context.Background(), total, func(lin0, lin1 int) {
		iv := make([]int, rank)
		off := make([]int, rank)
		for lin := lin0; lin < lin1; lin++ {
			LinearToIndex(lin, ext, off)
			for d := 0; d < rank; d++ {
				iv[d] = lo[d] + off[d]
				// grid offsets are relative to the declared lower bound
				off[d] = iv[d] - g.Lower[d]
			}
			if !g.onGrid(off) {
				continue
			}
			res.data[IndexToLinear(iv, shape)] = g.Body(iv)
		}
	})
	rethrow(err)
}

// Fold evaluates a fold-with-loop: the Body values of every generator index
// are folded with op starting from neutral.  op must be associative with
// neutral as identity; the fold is evaluated in deterministic (row-major,
// generator order) combination order, so associative-but-non-commutative
// operators still match the sequential fold.
func Fold[T any](p *sched.Pool, neutral T, op func(a, b T) T, gens ...Gen[T]) T {
	acc := neutral
	for i := range gens {
		g := &gens[i]
		rank := len(g.Lower)
		g.checkGrid(rank)
		lo, hi := g.bounds()
		ext := make([]int, rank)
		total := 1
		empty := false
		for d := 0; d < rank; d++ {
			e := hi[d] - lo[d]
			if e <= 0 {
				empty = true
				break
			}
			ext[d] = e
			total *= e
		}
		if empty {
			continue
		}
		if rank == 0 {
			acc = op(acc, g.Body(nil))
			continue
		}
		part, err := sched.Reduce(p, context.Background(), total, neutral,
			func(lin0, lin1 int, a T) T {
				iv := make([]int, rank)
				off := make([]int, rank)
				for lin := lin0; lin < lin1; lin++ {
					LinearToIndex(lin, ext, off)
					for d := 0; d < rank; d++ {
						iv[d] = lo[d] + off[d]
						off[d] = iv[d] - g.Lower[d]
					}
					if !g.onGrid(off) {
						continue
					}
					a = op(a, g.Body(iv))
				}
				return a
			}, op)
		rethrow(err)
		acc = op(acc, part)
	}
	return acc
}

// rethrow resurfaces a loop-body panic from the scheduler as a panic at the
// with-loop call site, preserving the original panic value.
func rethrow(err error) {
	if err == nil {
		return
	}
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	panic(err)
}
