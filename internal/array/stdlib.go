package array

import (
	"context"

	"repro/internal/sched"
)

// SaC standard-library style structural operations (take, drop, rotate,
// reverse, transpose, tile).  In SaC these are defined as with-loops in the
// array module; here they are provided natively for the same purpose:
// "universally applicable array operations" (§2).  All follow SaC
// conventions: results are fresh arrays, negative take/drop counts select
// from the back.

// Take returns the first n slices along axis 0 (the last -n for n < 0).
func Take[T any](a *Array[T], n int) *Array[T] {
	if a.Dim() == 0 {
		panic(shapeErrf("Take", "cannot take from a scalar"))
	}
	ext := a.shape[0]
	k := n
	if k < 0 {
		k = -k
	}
	if k > ext {
		panic(shapeErrf("Take", "take %d exceeds extent %d", n, ext))
	}
	rowSz := Size(a.shape[1:])
	shape := cloneInts(a.shape)
	shape[0] = k
	start := 0
	if n < 0 {
		start = (ext - k) * rowSz
	}
	return &Array[T]{shape: shape, data: append([]T(nil), a.data[start:start+k*rowSz]...)}
}

// Drop removes the first n slices along axis 0 (the last -n for n < 0).
func Drop[T any](a *Array[T], n int) *Array[T] {
	if a.Dim() == 0 {
		panic(shapeErrf("Drop", "cannot drop from a scalar"))
	}
	ext := a.shape[0]
	k := n
	if k < 0 {
		k = -k
	}
	if k > ext {
		panic(shapeErrf("Drop", "drop %d exceeds extent %d", n, ext))
	}
	rowSz := Size(a.shape[1:])
	shape := cloneInts(a.shape)
	shape[0] = ext - k
	start := k * rowSz
	if n < 0 {
		start = 0
	}
	return &Array[T]{shape: shape, data: append([]T(nil), a.data[start:start+(ext-k)*rowSz]...)}
}

// Rotate cyclically shifts the array by n positions along the given axis
// (positive n moves elements towards higher indices).
func Rotate[T any](a *Array[T], axis, n int) *Array[T] {
	if axis < 0 || axis >= a.Dim() {
		panic(shapeErrf("Rotate", "axis %d out of range for rank %d", axis, a.Dim()))
	}
	ext := a.shape[axis]
	if ext == 0 {
		return a.Clone()
	}
	shift := ((n % ext) + ext) % ext
	out := &Array[T]{shape: cloneInts(a.shape), data: make([]T, len(a.data))}
	src := make([]int, a.Dim())
	dst := make([]int, a.Dim())
	for lin := 0; lin < len(a.data); lin++ {
		LinearToIndex(lin, a.shape, src)
		copy(dst, src)
		dst[axis] = (src[axis] + shift) % ext
		out.data[IndexToLinear(dst, a.shape)] = a.data[lin]
	}
	return out
}

// Reverse flips the array along the given axis.
func Reverse[T any](a *Array[T], axis int) *Array[T] {
	if axis < 0 || axis >= a.Dim() {
		panic(shapeErrf("Reverse", "axis %d out of range for rank %d", axis, a.Dim()))
	}
	out := &Array[T]{shape: cloneInts(a.shape), data: make([]T, len(a.data))}
	ext := a.shape[axis]
	idx := make([]int, a.Dim())
	for lin := 0; lin < len(a.data); lin++ {
		LinearToIndex(lin, a.shape, idx)
		idx[axis] = ext - 1 - idx[axis]
		out.data[IndexToLinear(idx, a.shape)] = a.data[lin]
	}
	return out
}

// Transpose exchanges the first two axes of a matrix (rank ≥ 2).
func Transpose[T any](p *sched.Pool, a *Array[T]) *Array[T] {
	if a.Dim() < 2 {
		panic(shapeErrf("Transpose", "needs rank >= 2, got %d", a.Dim()))
	}
	shape := cloneInts(a.shape)
	shape[0], shape[1] = shape[1], shape[0]
	out := &Array[T]{shape: shape, data: make([]T, len(a.data))}
	rows, cols := a.shape[0], a.shape[1]
	inner := Size(a.shape[2:])
	err := p.For(context.Background(), rows*cols, func(lo, hi int) {
		for rc := lo; rc < hi; rc++ {
			r, c := rc/cols, rc%cols
			srcOff := (r*cols + c) * inner
			dstOff := (c*rows + r) * inner
			copy(out.data[dstOff:dstOff+inner], a.data[srcOff:srcOff+inner])
		}
	})
	rethrow(err)
	return out
}

// Tile repeats the array reps times along axis 0.
func Tile[T any](a *Array[T], reps int) *Array[T] {
	if a.Dim() == 0 {
		panic(shapeErrf("Tile", "cannot tile a scalar"))
	}
	if reps < 0 {
		panic(shapeErrf("Tile", "negative repetition %d", reps))
	}
	shape := cloneInts(a.shape)
	shape[0] = a.shape[0] * reps
	data := make([]T, 0, len(a.data)*reps)
	for i := 0; i < reps; i++ {
		data = append(data, a.data...)
	}
	return &Array[T]{shape: shape, data: data}
}

// MinValue and MaxValue reduce a numeric array; they panic on empty arrays
// (no neutral element).
func MinValue[T Number](a *Array[T]) T {
	if len(a.data) == 0 {
		panic(shapeErrf("MinValue", "empty array"))
	}
	m := a.data[0]
	for _, v := range a.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxValue returns the largest element.
func MaxValue[T Number](a *Array[T]) T {
	if len(a.data) == 0 {
		panic(shapeErrf("MaxValue", "empty array"))
	}
	m := a.data[0]
	for _, v := range a.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
