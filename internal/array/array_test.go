package array

import (
	"strings"
	"testing"
)

func TestScalarIsRankZero(t *testing.T) {
	s := Scalar(7)
	if s.Dim() != 0 {
		t.Fatalf("scalar rank = %d, want 0", s.Dim())
	}
	if len(s.Shape()) != 0 {
		t.Fatalf("scalar shape = %v, want empty", s.Shape())
	}
	if s.ScalarValue() != 7 {
		t.Fatalf("scalar value = %d", s.ScalarValue())
	}
	if s.Size() != 1 {
		t.Fatalf("scalar size = %d", s.Size())
	}
}

func TestNewFillAndAt(t *testing.T) {
	a := New([]int{3, 5}, 42)
	if a.Dim() != 2 || a.Size() != 15 {
		t.Fatalf("dim=%d size=%d", a.Dim(), a.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if a.At(i, j) != 42 {
				t.Fatalf("a[%d,%d] = %d", i, j, a.At(i, j))
			}
		}
	}
}

func TestFromSliceRowMajor(t *testing.T) {
	a := FromSlice([]int{2, 3}, []int{1, 2, 3, 4, 5, 6})
	if a.At(0, 0) != 1 || a.At(0, 2) != 3 || a.At(1, 0) != 4 || a.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", a)
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer wantShapePanic(t, "FromSlice")
	FromSlice([]int{2, 2}, []int{1, 2, 3})
}

func TestVector(t *testing.T) {
	v := Vector(1, 2, 3)
	if v.Dim() != 1 || v.At(1) != 2 {
		t.Fatalf("vector broken: %v", v)
	}
}

func TestSetAndWithAt(t *testing.T) {
	a := New([]int{2, 2}, 0)
	a.Set(9, 1, 1)
	if a.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
	b := a.WithAt(5, 0, 0)
	if b.At(0, 0) != 5 || a.At(0, 0) != 0 {
		t.Fatal("WithAt must not mutate the receiver")
	}
	if b.At(1, 1) != 9 {
		t.Fatal("WithAt lost other elements")
	}
}

func TestSelPrefixSubarray(t *testing.T) {
	a := FromSlice([]int{2, 3}, []int{1, 2, 3, 4, 5, 6})
	row := a.Sel(1)
	if row.Dim() != 1 || row.At(0) != 4 || row.At(2) != 6 {
		t.Fatalf("Sel(1) = %v", row)
	}
	cell := a.Sel(0, 2)
	if cell.Dim() != 0 || cell.ScalarValue() != 3 {
		t.Fatalf("Sel(0,2) = %v", cell)
	}
	whole := a.Sel()
	if !Equal(whole, a) {
		t.Fatal("Sel() must return the whole array")
	}
	// Sel returns a copy: mutating it must not affect the original.
	row.Set(99, 0)
	if a.At(1, 0) != 4 {
		t.Fatal("Sel aliases the source")
	}
}

func TestSelBoundsPanics(t *testing.T) {
	a := New([]int{2, 2}, 0)
	defer wantShapePanic(t, "Sel")
	a.Sel(2)
}

func TestOffsetPanics(t *testing.T) {
	a := New([]int{2, 2}, 0)
	defer wantShapePanic(t, "Offset")
	a.At(0) // partial index is invalid for At
}

func TestReshape(t *testing.T) {
	a := Iota(6)
	m := a.Reshape([]int{2, 3})
	if m.At(1, 2) != 5 {
		t.Fatalf("reshape broken: %v", m)
	}
	defer wantShapePanic(t, "Reshape")
	a.Reshape([]int{4})
}

func TestCloneIndependence(t *testing.T) {
	a := Iota(3)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Iota(3), Vector(0, 1, 2)) {
		t.Fatal("equal arrays reported unequal")
	}
	if Equal(Iota(3), Iota(4)) {
		t.Fatal("different shapes reported equal")
	}
	if Equal(Vector(1, 2), Vector(1, 3)) {
		t.Fatal("different data reported equal")
	}
	if Equal(Iota(1), Scalar(0)) {
		t.Fatal("[1]-vector equals scalar")
	}
}

func TestStringForms(t *testing.T) {
	if got := Scalar(5).String(); got != "5" {
		t.Fatalf("scalar string = %q", got)
	}
	if got := Vector(0, 42, 0).String(); got != "[0,42,0]" {
		t.Fatalf("vector string = %q", got)
	}
	m := FromSlice([]int{2, 2}, []int{1, 2, 3, 4}).String()
	if !strings.Contains(m, "[1,2]") || !strings.Contains(m, "[3,4]") {
		t.Fatalf("matrix string = %q", m)
	}
	c := New([]int{2, 2, 2}, 0).String()
	if !strings.Contains(c, "reshape") {
		t.Fatalf("rank-3 string = %q", c)
	}
}

func TestIndexIterationHelpers(t *testing.T) {
	shape := []int{2, 3}
	iv := make([]int, 2)
	seen := 0
	for {
		if IndexToLinear(iv, shape) != seen {
			t.Fatalf("IndexToLinear(%v) = %d, want %d", iv, IndexToLinear(iv, shape), seen)
		}
		back := make([]int, 2)
		LinearToIndex(seen, shape, back)
		if back[0] != iv[0] || back[1] != iv[1] {
			t.Fatalf("LinearToIndex(%d) = %v, want %v", seen, back, iv)
		}
		seen++
		if !NextIndex(iv, shape) {
			break
		}
	}
	if seen != 6 {
		t.Fatalf("iterated %d indices, want 6", seen)
	}
}

func TestSizeNegativePanics(t *testing.T) {
	defer wantShapePanic(t, "Size")
	Size([]int{2, -1})
}

func wantShapePanic(t *testing.T, op string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("%s: expected panic", op)
	}
	if _, ok := r.(*ShapeError); !ok {
		t.Fatalf("%s: panic value %v is not *ShapeError", op, r)
	}
}
