package array

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

var p1 = sched.New(1)
var p2 = sched.NewWithGrain(2, 4)

// pools exercised by every semantic test: sequential and parallel results
// must be identical (the paper's "implicit parallelism" guarantee).
var pools = []*sched.Pool{p1, p2}

// --- The paper's §2 examples, verbatim ---

func TestPaperExampleUniform42(t *testing.T) {
	// with { ([0,0] <= iv < [3,5]) : 42; }: genarray([3,5], 0)
	for _, p := range pools {
		a := Genarray(p, []int{3, 5}, 0,
			GenHalfOpen([]int{0, 0}, []int{3, 5}, func(iv []int) int { return 42 }))
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				if a.At(i, j) != 42 {
					t.Fatalf("a[%d,%d]=%d", i, j, a.At(i, j))
				}
			}
		}
	}
}

func TestPaperExampleIota(t *testing.T) {
	// with { ([0] <= iv < [5]) : iv[0]; }: genarray([5], 0)  ==  [0,1,2,3,4]
	for _, p := range pools {
		a := Genarray(p, []int{5}, 0,
			GenHalfOpen([]int{0}, []int{5}, func(iv []int) int { return iv[0] }))
		if !Equal(a, Vector(0, 1, 2, 3, 4)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestPaperExamplePartialCover(t *testing.T) {
	// with { ([1] <= iv < [4]) : 42; }: genarray([5], 0)  ==  [0,42,42,42,0]
	for _, p := range pools {
		a := Genarray(p, []int{5}, 0,
			GenHalfOpen([]int{1}, []int{4}, func(iv []int) int { return 42 }))
		if !Equal(a, Vector(0, 42, 42, 42, 0)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestPaperExampleOverlapLaterWins(t *testing.T) {
	// with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2; }: genarray([6], 0)
	//   ==  [0,1,1,2,2,0]   (index 3 covered by both generators gets 2)
	for _, p := range pools {
		a := Genarray(p, []int{6}, 0,
			GenHalfOpen([]int{1}, []int{4}, func(iv []int) int { return 1 }),
			GenHalfOpen([]int{3}, []int{5}, func(iv []int) int { return 2 }))
		if !Equal(a, Vector(0, 1, 1, 2, 2, 0)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestPaperExampleModarray(t *testing.T) {
	// A = [0,1,1,2,2,0]; with { ([0] <= iv < [3]) : 3; }: modarray(A)
	//   ==  [3,3,3,2,2,0]
	for _, p := range pools {
		A := Vector(0, 1, 1, 2, 2, 0)
		b := Modarray(p, A,
			GenHalfOpen([]int{0}, []int{3}, func(iv []int) int { return 3 }))
		if !Equal(b, Vector(3, 3, 3, 2, 2, 0)) {
			t.Fatalf("got %v", b)
		}
		if !Equal(A, Vector(0, 1, 1, 2, 2, 0)) {
			t.Fatal("modarray mutated its source")
		}
	}
}

func TestPaperExampleConcatPlusPlus(t *testing.T) {
	// The ++ implementation from §2, expressed with the same with-loop.
	for _, p := range pools {
		a, b := Vector(1, 2, 3), Vector(4, 5)
		rshp := []int{a.Shape()[0] + b.Shape()[0]}
		res := Genarray(p, rshp, 0,
			GenHalfOpen([]int{0}, a.Shape(), func(iv []int) int { return a.At(iv[0]) }),
			GenHalfOpen(a.Shape(), rshp, func(iv []int) int { return b.At(iv[0] - a.Shape()[0]) }))
		if !Equal(res, Vector(1, 2, 3, 4, 5)) {
			t.Fatalf("++ = %v", res)
		}
		if !Equal(Concat(a, b), res) {
			t.Fatal("Concat disagrees with the with-loop ++")
		}
	}
}

// --- engine semantics beyond the paper's examples ---

func TestClosedBoundsGenerator(t *testing.T) {
	// addNumber (§3) uses  [i,j,0] <= iv <= [i,j,8]  inclusive bounds.
	for _, p := range pools {
		a := Genarray(p, []int{10}, 0,
			GenClosed([]int{2}, []int{4}, func(iv []int) int { return 1 }))
		if !Equal(a, Vector(0, 0, 1, 1, 1, 0, 0, 0, 0, 0)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestExclusiveLowerBound(t *testing.T) {
	for _, p := range pools {
		a := Genarray(p, []int{5}, 0,
			Gen[int]{Lower: []int{1}, Upper: []int{4}, ExclLower: true,
				Body: func(iv []int) int { return 7 }})
		if !Equal(a, Vector(0, 0, 7, 7, 0)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestEmptyGeneratorIsNoop(t *testing.T) {
	for _, p := range pools {
		a := Genarray(p, []int{4}, 9,
			GenHalfOpen([]int{3}, []int{3}, func(iv []int) int { return 0 }))
		if !Equal(a, Vector(9, 9, 9, 9)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestGeneratorClampedToResultShape(t *testing.T) {
	for _, p := range pools {
		a := Genarray(p, []int{3}, 0,
			GenHalfOpen([]int{-2}, []int{10}, func(iv []int) int { return iv[0] + 1 }))
		if !Equal(a, Vector(1, 2, 3)) {
			t.Fatalf("got %v", a)
		}
	}
}

func TestStepWidthGrid(t *testing.T) {
	// step 3, width 1 starting at 0: indices 0,3,6,9
	for _, p := range pools {
		a := Genarray(p, []int{10}, 0,
			Gen[int]{Lower: []int{0}, Upper: []int{10}, Step: []int{3},
				Body: func(iv []int) int { return 1 }})
		if !Equal(a, Vector(1, 0, 0, 1, 0, 0, 1, 0, 0, 1)) {
			t.Fatalf("got %v", a)
		}
		// step 4, width 2: indices 0,1, 4,5, 8,9
		b := Genarray(p, []int{10}, 0,
			Gen[int]{Lower: []int{0}, Upper: []int{10}, Step: []int{4}, Width: []int{2},
				Body: func(iv []int) int { return 1 }})
		if !Equal(b, Vector(1, 1, 0, 0, 1, 1, 0, 0, 1, 1)) {
			t.Fatalf("got %v", b)
		}
	}
}

func TestRankMismatchPanics(t *testing.T) {
	defer wantShapePanic(t, "withloop")
	Genarray(p1, []int{3, 3}, 0, GenHalfOpen([]int{0}, []int{3}, func(iv []int) int { return 1 }))
}

func TestBodyPanicSurfacesAtCallSite(t *testing.T) {
	for _, p := range pools {
		func() {
			defer func() {
				if r := recover(); r != "body-bang" {
					t.Fatalf("recovered %v", r)
				}
			}()
			Genarray(p, []int{100}, 0, GenHalfOpen([]int{0}, []int{100},
				func(iv []int) int { panic("body-bang") }))
		}()
	}
}

func TestFoldSum(t *testing.T) {
	for _, p := range pools {
		got := Fold(p, 0, func(a, b int) int { return a + b },
			GenHalfOpen([]int{0}, []int{100}, func(iv []int) int { return iv[0] }))
		if got != 99*100/2 {
			t.Fatalf("fold sum = %d", got)
		}
	}
}

func TestFoldMultipleGenerators(t *testing.T) {
	for _, p := range pools {
		got := Fold(p, 0, func(a, b int) int { return a + b },
			GenHalfOpen([]int{0}, []int{3}, func(iv []int) int { return 1 }),
			GenClosed([]int{0}, []int{3}, func(iv []int) int { return 10 }))
		if got != 3+40 {
			t.Fatalf("fold = %d", got)
		}
	}
}

func TestFoldMatrixMatchesLoop(t *testing.T) {
	for _, p := range pools {
		got := Fold(p, 0, func(a, b int) int { return a + b },
			GenHalfOpen([]int{0, 0}, []int{7, 9}, func(iv []int) int { return iv[0]*10 + iv[1] }))
		want := 0
		for i := 0; i < 7; i++ {
			for j := 0; j < 9; j++ {
				want += i*10 + j
			}
		}
		if got != want {
			t.Fatalf("fold = %d, want %d", got, want)
		}
	}
}

func TestScalarGenerator(t *testing.T) {
	for _, p := range pools {
		a := Genarray(p, nil, 0, Gen[int]{Body: func(iv []int) int { return 5 }})
		if a.ScalarValue() != 5 {
			t.Fatalf("scalar genarray = %v", a)
		}
	}
}

// Property: sequential and 2-wide parallel evaluation of a random genarray
// agree, and every covered cell holds the generator value.
func TestQuickGenarraySeqParEquivalence(t *testing.T) {
	f := func(loRaw, hiRaw [2]uint8, shapeRaw [2]uint8) bool {
		shape := []int{int(shapeRaw[0]%12) + 1, int(shapeRaw[1]%12) + 1}
		lo := []int{int(loRaw[0] % 12), int(loRaw[1] % 12)}
		hi := []int{int(hiRaw[0] % 14), int(hiRaw[1] % 14)}
		body := func(iv []int) int { return iv[0]*100 + iv[1] + 1 }
		g := GenHalfOpen(lo, hi, body)
		a := Genarray(p1, shape, -1, g)
		b := Genarray(p2, shape, -1, g)
		if !Equal(a, b) {
			return false
		}
		// verify coverage semantics against a naive loop
		for i := 0; i < shape[0]; i++ {
			for j := 0; j < shape[1]; j++ {
				in := i >= lo[0] && i < hi[0] && j >= lo[1] && j < hi[1]
				want := -1
				if in {
					want = i*100 + j + 1
				}
				if a.At(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fold with + equals the sum over the naive iteration.
func TestQuickFoldMatchesNaive(t *testing.T) {
	f := func(loRaw, extRaw uint8) bool {
		lo := int(loRaw % 20)
		hi := lo + int(extRaw%50)
		got := Fold(p2, 0, func(a, b int) int { return a + b },
			GenHalfOpen([]int{lo}, []int{hi}, func(iv []int) int { return iv[0] * iv[0] }))
		want := 0
		for i := lo; i < hi; i++ {
			want += i * i
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
