package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTestEnv builds a standalone runEnv for transport-level tests.
func newTestEnv(buf, batch int) (*runEnv, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return &runEnv{ctx: ctx, stats: newStats(), buf: buf, batch: batch}, cancel
}

func itemN(n int) item { return item{rec: NewRecord().SetTag("n", n)} }

// A hot writer coalesces items into multi-item frames: 64 records at B=8
// over an ample buffer must cost far fewer than 64 channel handoffs.
func TestStreamBatchingAmortizesFrames(t *testing.T) {
	env, cancel := newTestEnv(32, 8)
	defer cancel()
	r, w := newStream(env)
	for i := 0; i < 64; i++ {
		if !w.send(itemN(i)) {
			t.Fatal("send failed")
		}
	}
	w.close()
	for i := 0; i < 64; i++ {
		it, ok := r.recv()
		if !ok || it.rec == nil {
			t.Fatalf("item %d: ok=%v it=%+v", i, ok, it)
		}
		if v, _ := it.rec.Tag("n"); v != i {
			t.Fatalf("item %d out of order: got %d", i, v)
		}
	}
	if _, ok := r.recv(); ok {
		t.Fatal("stream did not close")
	}
	frames := env.stats.Counter("stream.frames")
	if frames != 8 {
		t.Fatalf("64 records at B=8 took %d frames, want 8", frames)
	}
	if got := env.stats.Counter("stream.records"); got != 64 {
		t.Fatalf("stream.records = %d, want 64", got)
	}
	if hwm := env.stats.Max("stream.frame.hwm"); hwm != 8 {
		t.Fatalf("stream.frame.hwm = %d, want 8", hwm)
	}
}

// Markers are flush barriers: a marker must be delivered immediately, and
// every record buffered before it must arrive first.
func TestStreamMarkerFlushesBarrier(t *testing.T) {
	env, cancel := newTestEnv(32, 64)
	defer cancel()
	r, w := newStream(env)
	w.send(itemN(0))
	w.send(itemN(1))
	if !w.send(item{mk: &marker{level: 1, ticket: 1}}) {
		t.Fatal("marker send failed")
	}
	// Without closing or idling the writer, all three items must already
	// be readable.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			it, ok := r.recv()
			if !ok || it.rec == nil {
				t.Errorf("record %d not delivered before marker: ok=%v", i, ok)
			}
		}
		it, ok := r.recv()
		if !ok || it.mk == nil {
			t.Error("marker not delivered")
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("marker barrier did not flush: reader stuck")
	}
	w.close()
}

// The idle flush: a node blocking on its input must first flush the writers
// it owns, so a single record never waits for a batch that will not fill.
func TestStreamIdleFlushKeepsLatencyFlat(t *testing.T) {
	env, cancel := newTestEnv(32, 64)
	defer cancel()
	upR, upW := newStream(env)     // the node's input
	downR, downW := newStream(env) // the node's output
	go func() {
		upR.autoFlush(downW)
		for {
			it, ok := upR.recv()
			if !ok {
				downW.close()
				return
			}
			downW.send(it)
		}
	}()
	// One record in, stream then idle: the forwarding node's recv must
	// flush the pending batch of one.
	upW.send(itemN(7))
	upW.flush()
	deadline := time.After(2 * time.Second)
	got := make(chan item, 1)
	go func() {
		it, _ := downR.recv()
		got <- it
	}()
	select {
	case it := <-got:
		if it.rec == nil {
			t.Fatal("no record")
		}
	case <-deadline:
		t.Fatal("record stuck in pending batch while input idle")
	}
	upW.close()
}

// Discard drains a stream in the background and counts the thrown-away
// data records (markers are not counted).
func TestStreamDiscardCountsRecords(t *testing.T) {
	env, cancel := newTestEnv(32, 4)
	defer cancel()
	r, w := newStream(env)
	for i := 0; i < 10; i++ {
		w.send(itemN(i))
	}
	w.send(item{mk: &marker{level: 1, ticket: 1}})
	// Consume three, discard the rest.
	for i := 0; i < 3; i++ {
		if _, ok := r.recv(); !ok {
			t.Fatal("recv failed")
		}
	}
	r.Discard()
	r.Discard() // idempotent
	w.close()
	deadline := time.Now().Add(2 * time.Second)
	for env.stats.Counter("stream.discarded") != 7 {
		if time.Now().After(deadline) {
			t.Fatalf("stream.discarded = %d, want 7", env.stats.Counter("stream.discarded"))
		}
		time.Sleep(time.Millisecond)
	}
}

// sendDirect accepts concurrent senders (the network-boundary contract).
func TestStreamSendDirectConcurrent(t *testing.T) {
	env, cancel := newTestEnv(8, 8)
	defer cancel()
	r, w := newStream(env)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.sendDirect(context.Background(), itemN(i)); err != nil {
					t.Errorf("sendDirect: %v", err)
					return
				}
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := r.recv(); !ok {
				return
			}
			got++
		}
	}()
	wg.Wait()
	w.close()
	<-done
	if got != senders*per {
		t.Fatalf("received %d records, want %d", got, senders*per)
	}
}

// End to end: the run-level frame counters must show amortization — a hot
// pipeline at B=64 takes fewer frames per record than at B=1.
func TestStreamStatsShowAmortization(t *testing.T) {
	pipeline := func(b int) (frames, records int64) {
		n := Serial(incBox("s1", 1), incBox("s2", 1), incBox("s3", 1))
		inputs := seqInputs(256, func(i int, r *Record) { r.SetTag("n", i) })
		out, stats, err := RunAll(context.Background(), n, inputs,
			WithStreamBatch(b), WithBoxWorkers(1))
		if err != nil || len(out) != 256 {
			t.Fatalf("B=%d: out=%d err=%v", b, len(out), err)
		}
		return stats.Counter("stream.frames"), stats.Counter("stream.records")
	}
	f1, r1 := pipeline(1)
	f64, r64 := pipeline(64)
	if r1 != r64 {
		t.Fatalf("record counts differ: %d vs %d", r1, r64)
	}
	if f64 >= f1 {
		t.Fatalf("B=64 should use fewer frames than B=1: %d vs %d", f64, f1)
	}
	t.Logf("B=1: %d frames / %d records; B=64: %d frames", f1, r1, f64)
}

// Markers must not be double-counted as records anywhere in the det plane.
func TestStreamRecordCounterExcludesMarkers(t *testing.T) {
	n := ParallelDet(incBox("ma", 1), MustFilter("{<b>} -> {<b>=<b>}"))
	inputs := seqInputs(20, func(i int, r *Record) {
		if i%2 == 0 {
			r.SetTag("n", i)
		} else {
			r.SetTag("b", i)
		}
	})
	out, stats, err := RunAll(context.Background(), n, inputs, WithStreamBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("got %d records", len(out))
	}
	if fr := stats.Counter("stream.frames"); fr == 0 {
		t.Fatal("no frames counted")
	}
}

func ExampleWithStreamBatch() {
	inc := NewBox("inc", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0].(int)+1) })
	out, _, _ := RunAll(context.Background(), inc,
		[]*Record{NewRecord().SetTag("n", 41)},
		WithStreamBatch(64), WithStreamBuffer(16))
	fmt.Println(out[0])
	// Output: {<n>=42}
}
