package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// routeBox builds an echo box whose signature consumes (and re-emits) the
// given labels.
func routeBox(name string, labels ...Label) Node {
	return NewBox(name, &BoxSignature{In: labels, Out: [][]Label{labels}},
		func(args []any, out *Emitter) error { return out.Out(1, args...) })
}

func TestShapeKeyCaching(t *testing.T) {
	r := NewRecord().SetField("b", 1).SetField("a", 2).SetTag("t", 3)
	if got, want := r.ShapeKey(), "a,b|t"; got != want {
		t.Fatalf("ShapeKey = %q, want %q", got, want)
	}
	sh := r.shapeRef()
	r.SetField("a", 9) // value-only update keeps the interned shape
	if r.shapeRef() != sh {
		t.Fatal("value-only SetField changed the interned shape")
	}
	r.SetTag("u", 1)
	if got, want := r.ShapeKey(), "a,b|t,u"; got != want {
		t.Fatalf("ShapeKey after SetTag = %q, want %q", got, want)
	}
	r.DeleteField("a")
	if got, want := r.ShapeKey(), "b|t,u"; got != want {
		t.Fatalf("ShapeKey after DeleteField = %q, want %q", got, want)
	}
	c := r.Copy()
	if got := c.ShapeKey(); got != r.ShapeKey() {
		t.Fatalf("Copy shape = %q, want %q", got, r.ShapeKey())
	}
	// Flow inheritance mutates label maps directly; it must invalidate too.
	dst := NewRecord().SetField("x", 1)
	_ = dst.ShapeKey()
	inheritInto(dst, r, nil)
	if got, want := dst.ShapeKey(), "b,x|t,u"; got != want {
		t.Fatalf("ShapeKey after inheritInto = %q, want %q", got, want)
	}
	if got, want := NewRecord().ShapeKey(), "|"; got != want {
		t.Fatalf("empty ShapeKey = %q, want %q", got, want)
	}
}

// TestDispatchMatchesLegacy drives the compiled dispatch table and the
// per-record scoring loop over randomized branch sets and records, in both
// det and nondet modes, asserting decision-for-decision equality (including
// the rotation sequence over ties).
func TestDispatchMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []Label{Field("a"), Field("b"), Field("c"), Tag("t"), Tag("u")}
	randVariant := func() Variant {
		v := Variant{}
		for _, l := range labels {
			if rng.Intn(2) == 0 {
				v[l] = struct{}{}
			}
		}
		return v
	}
	for trial := 0; trial < 200; trial++ {
		det := trial%2 == 0
		nb := 2 + rng.Intn(5)
		branches := make([]Node, nb)
		for i := range branches {
			if rng.Intn(4) == 0 {
				// A guarded filter branch: attracts records with <t> odd.
				branches[i] = NewFilter(&FilterSpec{
					Pattern: Pattern{Variant: randVariant().Union(NewVariant(Tag("t"))),
						Guard: MustParseTagExpr("<t> % 2")},
				})
				continue
			}
			branches[i] = routeBox(fmt.Sprintf("b%d", i), randVariant().Labels()...)
		}
		table := buildRouteTable(det, branches)
		scorers := legacyScorers(branches)
		rrT, rrL := 0, 0
		for rec := 0; rec < 50; rec++ {
			r := NewRecord()
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					if l.IsTag {
						r.SetTag(l.Name, rng.Intn(4))
					} else {
						r.SetField(l.Name, rec)
					}
				}
			}
			got := table.dispatch(r, &rrT)
			want := legacyDispatch(scorers, r, det, &rrL)
			if got != want {
				t.Fatalf("trial %d det=%v rec %s: table=%d legacy=%d", trial, det, r, got, want)
			}
			if rrT != rrL {
				t.Fatalf("trial %d: rotation diverged: table=%d legacy=%d", trial, rrT, rrL)
			}
		}
	}
}

func TestDispatchMemoizesPerShape(t *testing.T) {
	branches := []Node{
		routeBox("ab", Field("a"), Field("b")),
		routeBox("ac", Field("a"), Field("c")),
	}
	table := buildRouteTable(false, branches)
	rr := 0
	for i := 0; i < 100; i++ {
		r := NewRecord().SetField("a", i).SetField("b", i)
		if got := table.dispatch(r, &rr); got != 0 {
			t.Fatalf("dispatch = %d, want 0", got)
		}
	}
	if n := table.size.Load(); n != 1 {
		t.Fatalf("memo entries = %d, want 1 (one shape)", n)
	}
}

// A guarded branch's guard must be evaluated per record even when the shape
// is memoized: records of one shape may route differently by tag value.
func TestGuardedDispatchNotOverMemoized(t *testing.T) {
	even := NewFilter(&FilterSpec{
		Pattern: Pattern{Variant: NewVariant(Tag("n")), Guard: MustParseTagExpr("!(<n> % 2)")},
		Outputs: [][]FilterItem{{{Name: "n", IsTag: true, Expr: MustParseTagExpr("<n>")},
			{Name: "even", IsTag: true, Expr: MustParseTagExpr("1")}}},
	})
	odd := NewFilter(&FilterSpec{
		Pattern: Pattern{Variant: NewVariant(Tag("n")), Guard: MustParseTagExpr("<n> % 2")},
		Outputs: [][]FilterItem{{{Name: "n", IsTag: true, Expr: MustParseTagExpr("<n>")},
			{Name: "odd", IsTag: true, Expr: MustParseTagExpr("1")}}},
	})
	net := Parallel(even, odd)
	var inputs []*Record
	for i := 0; i < 10; i++ {
		inputs = append(inputs, NewRecord().SetTag("n", i))
	}
	out, _, err := RunAll(context.Background(), net, inputs)
	if err != nil || len(out) != 10 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for _, r := range out {
		n := r.MustTag("n")
		_, isEven := r.Tag("even")
		if isEven != (n%2 == 0) {
			t.Fatalf("record %s misrouted", r)
		}
	}
}

func TestNoRouteErrorTyped(t *testing.T) {
	net := Parallel(routeBox("ab", Field("a"), Field("b")), routeBox("c", Field("c")))
	var handled error
	h := Start(context.Background(), net, WithErrorHandler(func(err error) { handled = err }))
	if err := h.Send(NewRecord().SetTag("zzz", 1)); err != nil {
		t.Fatal(err)
	}
	h.Close()
	for range h.Out() {
	}
	h.Wait()

	for name, err := range map[string]error{"handler": handled, "Handle.Err": h.Err()} {
		if err == nil {
			t.Fatalf("%s: no error surfaced", name)
		}
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("%s: error %v is not ErrNoRoute", name, err)
		}
		var nre *NoRouteError
		if !errors.As(err, &nre) {
			t.Fatalf("%s: error %T is not *NoRouteError", name, err)
		}
		if !nre.Shape.Equal(NewVariant(Tag("zzz"))) {
			t.Fatalf("%s: shape = %v", name, nre.Shape)
		}
		if len(nre.Branches) != 2 || !nre.Branches[0][0].Equal(NewVariant(Field("a"), Field("b"))) {
			t.Fatalf("%s: branches = %v", name, nre.Branches)
		}
	}
	if h.Stats().Counter("runtime.errors") != 1 {
		t.Fatalf("runtime.errors = %d", h.Stats().Counter("runtime.errors"))
	}
}

// The table path and the legacy path must route identically end-to-end.
func TestLegacyRoutingOptionEquivalent(t *testing.T) {
	net := Parallel(routeBox("ab", Field("a"), Field("b")), routeBox("a", Field("a")))
	inputs := []*Record{
		NewRecord().SetField("a", 1).SetField("b", 2),
		NewRecord().SetField("a", 3),
	}
	for _, opts := range [][]Option{nil, {WithLegacyRouting()}} {
		out, stats, err := RunAll(context.Background(), net, inputs, opts...)
		if err != nil || len(out) != 2 {
			t.Fatalf("opts=%v: out=%d err=%v", opts, len(out), err)
		}
		if stats.Counter("parallel."+net.name()+".branch0") != 1 ||
			stats.Counter("parallel."+net.name()+".branch1") != 1 {
			t.Fatalf("opts=%v: routing counters wrong: %v", opts, stats.Snapshot())
		}
	}
}

// wideParallel builds a B-branch parallel net for the routing benchmarks:
// every branch consumes a common field plus its own, so scoring must
// consider every branch for every record.
func wideParallel(b int) (Node, []*Record) {
	branches := make([]Node, b)
	for i := range branches {
		branches[i] = routeBox(fmt.Sprintf("w%d", i), Field("a"), Field(fmt.Sprintf("x%d", i)))
	}
	recs := make([]*Record, 64)
	for i := range recs {
		recs[i] = NewRecord().SetField("a", i).SetField(fmt.Sprintf("x%d", i%b), i)
	}
	return Parallel(branches...), recs
}

// BenchmarkRouting compares the compiled shape-keyed dispatch table with
// the per-record scoring loop it replaced, on wide parallel combinators —
// the E16 microbenchmark.  "dispatch" measures routing decisions alone;
// "net" runs the full combinator.
func BenchmarkRouting(b *testing.B) {
	for _, width := range []int{8, 16, 32} {
		net, recs := wideParallel(width)
		pn := net.(*parallelNode)
		table := pn.routes()
		scorers := legacyScorers(pn.branches)
		b.Run(fmt.Sprintf("dispatch/table-%d", width), func(b *testing.B) {
			rr := 0
			for i := 0; i < b.N; i++ {
				if table.dispatch(recs[i%len(recs)], &rr) < 0 {
					b.Fatal("no route")
				}
			}
		})
		b.Run(fmt.Sprintf("dispatch/legacy-%d", width), func(b *testing.B) {
			rr := 0
			for i := 0; i < b.N; i++ {
				if legacyDispatch(scorers, recs[i%len(recs)], false, &rr) < 0 {
					b.Fatal("no route")
				}
			}
		})
	}
	for _, width := range []int{8, 16} {
		net, recs := wideParallel(width)
		for _, mode := range []struct {
			name string
			opts []Option
		}{{"table", nil}, {"legacy", []Option{WithLegacyRouting()}}} {
			b.Run(fmt.Sprintf("net/%s-%d", mode.name, width), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, _, err := RunAll(context.Background(), net, recs, mode.opts...)
					if err != nil || len(out) != len(recs) {
						b.Fatalf("out=%d err=%v", len(out), err)
					}
				}
			})
		}
	}
}
