package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// filterNode executes a FilterSpec as a network component.
type filterNode struct {
	label string
	spec  *FilterSpec
	// memo caches the pattern's variant check per record shape — the
	// filter's slice of the compile-then-run match tables.  A pure function
	// of the spec, shared by every run.
	memo *matchMemo
	// progs caches the spec compiled to a slot program per input shape
	// (filterspec.go); like the match memo it is a pure function of the
	// spec, shared by every run, and bounded by progCount so a pathological
	// shape churn cannot grow it without limit.
	progs     sync.Map // *shape -> *filterProg
	progCount atomic.Int64
	// Stat keys, concatenated once so per-record accounting never builds a
	// string.
	kNomatch, kErrors, kApplied string
}

// NewFilter wraps a filter specification as a node.  Records matching the
// pattern are rewritten into the specified output records (with flow
// inheritance of unconsumed labels); records that do not match are forwarded
// unchanged and counted under "filter.<name>.nomatch" — with a well-typed
// network this never happens.
func NewFilter(spec *FilterSpec) Node {
	if spec == nil {
		panic("core: NewFilter: nil spec")
	}
	label := autoName("filter")
	return &filterNode{label: label, spec: spec,
		memo:     newMatchMemo(spec.Pattern.Variant),
		kNomatch: "filter." + label + ".nomatch",
		kErrors:  "filter." + label + ".errors",
		kApplied: "filter." + label + ".applied"}
}

// FilterFrom parses a filter in the paper's notation and wraps it as a node.
func FilterFrom(src string) (Node, error) {
	spec, err := ParseFilter(src)
	if err != nil {
		return nil, err
	}
	return NewFilter(spec), nil
}

// MustFilter is FilterFrom panicking on error, for network literals.
func MustFilter(src string) Node {
	n, err := FilterFrom(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (f *filterNode) name() string   { return f.label }
func (f *filterNode) String() string { return f.spec.String() }

func (f *filterNode) sig(*checker) (RecType, RecType) {
	return RecType{f.spec.Pattern.Variant}, f.spec.OutType()
}

// matches is the filter's pattern test with the variant half memoized by
// record shape.
func (f *filterNode) matches(rec *Record) bool {
	return f.memo.matches(f.spec.Pattern, rec)
}

// program returns the spec's slot program for the given input shape,
// compiling and memoizing it on first sight (capped like the routing
// memos; past the cap the program is still exact, just recompiled).
func (f *filterNode) program(sh *shape) *filterProg {
	if p, ok := f.progs.Load(sh); ok {
		return p.(*filterProg)
	}
	p := compileFilterProg(f.spec, sh)
	if f.progCount.Load() < maxMemoEntries {
		if prev, loaded := f.progs.LoadOrStore(sh, p); loaded {
			return prev.(*filterProg)
		}
		f.progCount.Add(1)
	}
	return p
}

// score makes filter guards participate in best-match routing: a guarded
// filter only attracts records its guard admits.
func (f *filterNode) score(rec *Record) int {
	if !f.matches(rec) {
		return -1
	}
	return len(f.spec.Pattern.Variant)
}

func (f *filterNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	var outsBuf []*Record // reused across records; outputs leave via send
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.mk != nil {
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		rec := it.rec
		env.trace(f.label, "in", rec)
		if !f.matches(rec) {
			env.stats.Add(f.kNomatch, 1)
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		var outs []*Record
		var err error
		if prog := f.program(rec.shape); !prog.fallback {
			outs, err = prog.apply(rec, outsBuf)
		} else {
			outs, err = f.spec.applyInto(rec, outsBuf, true)
		}
		if err != nil {
			env.error(fmt.Errorf("core: filter %s: %w", f.label, err))
			env.stats.Add(f.kErrors, 1)
			releaseRecord(rec) // dropped, not forwarded
			continue
		}
		if outs != nil {
			outsBuf = outs
		}
		env.stats.Add(f.kApplied, 1)
		// The input was consumed: its labels were rewritten or inherited into
		// fresh outputs, never aliased, so it returns to the arena now.
		releaseRecord(rec)
		for i, o := range outs {
			env.trace(f.label, "out", o)
			if !out.sendRecord(o) {
				// The failed record was already reclaimed by the transport's
				// cancellation path; outputs never handed to it are ours.
				for _, rest := range outs[i+1:] {
					releaseRecord(rest)
				}
				in.Discard()
				return
			}
		}
	}
}
