package core

import "fmt"

// filterNode executes a FilterSpec as a network component.
type filterNode struct {
	label string
	spec  *FilterSpec
	// memo caches the pattern's variant check per record shape — the
	// filter's slice of the compile-then-run match tables.  A pure function
	// of the spec, shared by every run.
	memo *matchMemo
}

// NewFilter wraps a filter specification as a node.  Records matching the
// pattern are rewritten into the specified output records (with flow
// inheritance of unconsumed labels); records that do not match are forwarded
// unchanged and counted under "filter.<name>.nomatch" — with a well-typed
// network this never happens.
func NewFilter(spec *FilterSpec) Node {
	if spec == nil {
		panic("core: NewFilter: nil spec")
	}
	return &filterNode{label: autoName("filter"), spec: spec,
		memo: newMatchMemo(spec.Pattern.Variant)}
}

// FilterFrom parses a filter in the paper's notation and wraps it as a node.
func FilterFrom(src string) (Node, error) {
	spec, err := ParseFilter(src)
	if err != nil {
		return nil, err
	}
	return NewFilter(spec), nil
}

// MustFilter is FilterFrom panicking on error, for network literals.
func MustFilter(src string) Node {
	n, err := FilterFrom(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (f *filterNode) name() string   { return f.label }
func (f *filterNode) String() string { return f.spec.String() }

func (f *filterNode) sig(*checker) (RecType, RecType) {
	return RecType{f.spec.Pattern.Variant}, f.spec.OutType()
}

// matches is the filter's pattern test with the variant half memoized by
// record shape.
func (f *filterNode) matches(rec *Record) bool {
	return f.memo.matches(f.spec.Pattern, rec)
}

// score makes filter guards participate in best-match routing: a guarded
// filter only attracts records its guard admits.
func (f *filterNode) score(rec *Record) int {
	if !f.matches(rec) {
		return -1
	}
	return len(f.spec.Pattern.Variant)
}

func (f *filterNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.mk != nil {
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		rec := it.rec
		env.trace(f.label, "in", rec)
		if !f.matches(rec) {
			env.stats.Add("filter."+f.label+".nomatch", 1)
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		outs, err := f.spec.Apply(rec)
		if err != nil {
			env.error(fmt.Errorf("core: filter %s: %w", f.label, err))
			env.stats.Add("filter."+f.label+".errors", 1)
			continue
		}
		env.stats.Add("filter."+f.label+".applied", 1)
		for _, o := range outs {
			env.trace(f.label, "out", o)
			if !out.sendRecord(o) {
				in.Discard()
				return
			}
		}
	}
}
