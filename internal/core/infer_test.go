package core

import (
	"strings"
	"testing"
)

func TestInferBoxSignature(t *testing.T) {
	b := NewBox("foo", MustParseSignature("(a,<b>) -> (c) | (c,d,<e>)"), nopFn)
	in, out := Infer(b)
	if len(in) != 1 || !in[0].Equal(v(Field("a"), Tag("b"))) {
		t.Fatalf("in = %v", in)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

var nopFn = func(args []any, out *Emitter) error { return nil }

func TestInferSerialComposition(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (y)"), nopFn)
	b := NewBox("b", MustParseSignature("(y) -> (z)"), nopFn)
	in, out, diags := Check(Serial(a, b))
	if !in[0].Equal(v(Field("x"))) || !out[0].Equal(v(Field("z"))) {
		t.Fatalf("in=%v out=%v", in, out)
	}
	for _, d := range diags {
		if !d.Warning {
			t.Fatalf("unexpected error: %v", d)
		}
	}
}

func TestCheckSerialMismatchWarns(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (y)"), nopFn)
	b := NewBox("b", MustParseSignature("(q) -> (z)"), nopFn)
	_, _, diags := Check(Serial(a, b))
	if len(diags) == 0 {
		t.Fatal("expected a diagnostic for y -> (q)")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "flow inheritance") {
			found = true
		}
		if d.String() == "" {
			t.Fatal("empty diagnostic rendering")
		}
	}
	if !found {
		t.Fatalf("diagnostics = %v", diags)
	}
}

func TestInferParallelUnion(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (u)"), nopFn)
	b := NewBox("b", MustParseSignature("(y) -> (w)"), nopFn)
	in, out := Infer(Parallel(a, b))
	if len(in) != 2 || len(out) != 2 {
		t.Fatalf("in=%v out=%v", in, out)
	}
}

func TestInferStar(t *testing.T) {
	// dec's second variant carries <done>: exit statically reachable.
	n := Star(decBox(), MustParsePattern("{<done>}"))
	in, out, diags := Check(n)
	if len(diags) != 0 {
		t.Fatalf("diags = %v", diags)
	}
	// Input accepts the operand's input or an immediately-exiting record.
	if len(in) != 2 {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Tag("done"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestCheckStarUnreachableExitWarns(t *testing.T) {
	n := Star(incBox("spin", 1), MustParsePattern("{<done>}"))
	_, _, diags := Check(n)
	if len(diags) != 1 || !diags[0].Warning {
		t.Fatalf("diags = %v", diags)
	}
}

func TestInferSplitAddsIndexTag(t *testing.T) {
	n := Split(incBox("i", 0), "k")
	in, out := Infer(n)
	if !in[0].Equal(v(Tag("n"), Tag("k"))) {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Tag("n"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestInferFilter(t *testing.T) {
	n := MustFilter("{a,<c>} -> {a,<t>}")
	in, out := Infer(n)
	if !in[0].Equal(v(Field("a"), Tag("c"))) {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Field("a"), Tag("t"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestInferSync(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b,<t>}"))
	in, out := Infer(n)
	if len(in) != 2 {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Field("a"), Field("b"), Tag("t"))) {
		t.Fatalf("out = %v", out)
	}
}

// TestInferTable is the table-driven sweep over every combinator: for each
// network it checks the inferred input/output types and, through Compile,
// the definite findings — including flow inheritance through boxes, tag
// guards on star exit patterns, and reserved-label rejection.
func TestInferTable(t *testing.T) {
	echo := func(name, sig string) Node {
		return NewBox(name, MustParseSignature(sig),
			func(args []any, out *Emitter) error { return out.Out(1, args...) })
	}
	cases := []struct {
		name     string
		net      func() Node
		opts     []CompileOption
		wantIn   RecType
		wantOut  RecType
		wantErrs []string // expected TypeError codes, in order; empty = clean
	}{
		{
			name:    "box",
			net:     func() Node { return echo("b", "(a,<t>) -> (a,<t>)") },
			wantIn:  RecType{NewVariant(Field("a"), Tag("t"))},
			wantOut: RecType{NewVariant(Field("a"), Tag("t"))},
		},
		{
			name:    "filter",
			net:     func() Node { return MustFilter("{a,<c>} -> {a,<t>}") },
			wantIn:  RecType{NewVariant(Field("a"), Tag("c"))},
			wantOut: RecType{NewVariant(Field("a"), Tag("t"))},
		},
		{
			name: "serial-flow-inheritance",
			net: func() Node {
				// b consumes y and z; z only arrives because a's box
				// inherits it from the input record.
				return Serial(echo("a", "(x) -> (y)"), echo("b", "(y,z) -> (w)"))
			},
			opts:    []CompileOption{WithInputType(RecType{NewVariant(Field("x"), Field("z"))})},
			wantIn:  RecType{NewVariant(Field("x"))},
			wantOut: RecType{NewVariant(Field("w"))},
		},
		{
			name: "parallel-union",
			net: func() Node {
				return Parallel(echo("p", "(a) -> (u)"), echo("q", "(b) -> (v)"))
			},
			wantIn:  RecType{NewVariant(Field("a")), NewVariant(Field("b"))},
			wantOut: RecType{NewVariant(Field("u")), NewVariant(Field("v"))},
		},
		{
			name: "parallel-det-shadowed",
			net: func() Node {
				return ParallelDet(echo("p", "(a) -> (u)"), echo("q", "(a) -> (v)"))
			},
			wantIn:   RecType{NewVariant(Field("a")), NewVariant(Field("a"))},
			wantOut:  RecType{NewVariant(Field("u")), NewVariant(Field("v"))},
			wantErrs: []string{ErrCodeUnreachable},
		},
		{
			name: "star-guarded-exit",
			net: func() Node {
				return Star(echo("lvl", "(board,<level>) -> (board,<level>)"),
					MustParsePattern("{<level>} | <level> > 40"))
			},
			opts:    []CompileOption{WithInputType(RecType{NewVariant(Field("board"), Tag("level"))})},
			wantIn:  RecType{NewVariant(Field("board"), Tag("level")), NewVariant(Tag("level"))},
			wantOut: RecType{NewVariant(Tag("level"))},
		},
		{
			name: "split-adds-index-tag",
			net: func() Node {
				return Split(echo("w", "(<n>) -> (<n>)"), "k")
			},
			wantIn:  RecType{NewVariant(Tag("n"), Tag("k"))},
			wantOut: RecType{NewVariant(Tag("n"))},
		},
		{
			name: "split-missing-tag",
			net: func() Node {
				return Serial(echo("a", "(x) -> (y)"), Split(echo("w", "(y) -> (y)"), "k"))
			},
			opts:     []CompileOption{WithInputType(RecType{NewVariant(Field("x"))})},
			wantIn:   RecType{NewVariant(Field("x"))},
			wantOut:  RecType{NewVariant(Field("y"))},
			wantErrs: []string{ErrCodeMissingTag},
		},
		{
			name: "sync-merge",
			net: func() Node {
				return Sync(MustParsePattern("{a}"), MustParsePattern("{b,<t>}"))
			},
			wantIn:  RecType{NewVariant(Field("a")), NewVariant(Field("b"), Tag("t"))},
			wantOut: RecType{NewVariant(Field("a"), Field("b"), Tag("t"))},
		},
		{
			name: "reserved-label-compile",
			net: func() Node {
				return NewBox("evil", &BoxSignature{In: []Label{Field("__snet_x")},
					Out: [][]Label{{Field("__snet_x")}}}, nopFn)
			},
			wantIn:   RecType{NewVariant(Field("__snet_x"))},
			wantOut:  RecType{NewVariant(Field("__snet_x"))},
			wantErrs: []string{ErrCodeReserved},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := Compile(tc.net(), tc.opts...)
			var codes []string
			for _, te := range plan.TypeErrors() {
				codes = append(codes, te.Code)
			}
			if len(tc.wantErrs) == 0 {
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
			} else {
				if err == nil {
					t.Fatalf("Compile accepted; want codes %v", tc.wantErrs)
				}
				if len(codes) != len(tc.wantErrs) {
					t.Fatalf("codes = %v, want %v", codes, tc.wantErrs)
				}
				for i, c := range tc.wantErrs {
					if codes[i] != c {
						t.Fatalf("codes = %v, want %v", codes, tc.wantErrs)
					}
				}
			}
			checkType := func(what string, got, want RecType) {
				if len(got) != len(want) {
					t.Fatalf("%s = %v, want %v", what, got, want)
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("%s = %v, want %v", what, got, want)
					}
				}
			}
			checkType("in", plan.In(), tc.wantIn)
			checkType("out", plan.Out(), tc.wantOut)
		})
	}
}

func TestNodeStringRendering(t *testing.T) {
	n := Serial(
		NewBox("cO", MustParseSignature("(board) -> (board,opts)"), nopFn),
		Star(NewBox("sOL", MustParseSignature("(board,opts) -> (board,opts) | (board,<done>)"), nopFn),
			MustParsePattern("{<done>}")),
	)
	s := n.String()
	for _, want := range []string{"box cO", "box sOL", "**", "{<done>}", ".."} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Deterministic variants render with single symbols.
	d := SplitDet(incBox("x", 0), "k").String()
	if !strings.Contains(d, " ! ") || strings.Contains(d, "!!") {
		t.Fatalf("det split rendering: %q", d)
	}
	p := ParallelDet(incBox("x", 0), incBox("y", 0)).String()
	if !strings.Contains(p, " | ") {
		t.Fatalf("det parallel rendering: %q", p)
	}
}
