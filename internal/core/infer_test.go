package core

import (
	"strings"
	"testing"
)

func TestInferBoxSignature(t *testing.T) {
	b := NewBox("foo", MustParseSignature("(a,<b>) -> (c) | (c,d,<e>)"), nopFn)
	in, out := Infer(b)
	if len(in) != 1 || !in[0].Equal(v(Field("a"), Tag("b"))) {
		t.Fatalf("in = %v", in)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

var nopFn = func(args []any, out *Emitter) error { return nil }

func TestInferSerialComposition(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (y)"), nopFn)
	b := NewBox("b", MustParseSignature("(y) -> (z)"), nopFn)
	in, out, diags := Check(Serial(a, b))
	if !in[0].Equal(v(Field("x"))) || !out[0].Equal(v(Field("z"))) {
		t.Fatalf("in=%v out=%v", in, out)
	}
	for _, d := range diags {
		if !d.Warning {
			t.Fatalf("unexpected error: %v", d)
		}
	}
}

func TestCheckSerialMismatchWarns(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (y)"), nopFn)
	b := NewBox("b", MustParseSignature("(q) -> (z)"), nopFn)
	_, _, diags := Check(Serial(a, b))
	if len(diags) == 0 {
		t.Fatal("expected a diagnostic for y -> (q)")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Msg, "flow inheritance") {
			found = true
		}
		if d.String() == "" {
			t.Fatal("empty diagnostic rendering")
		}
	}
	if !found {
		t.Fatalf("diagnostics = %v", diags)
	}
}

func TestInferParallelUnion(t *testing.T) {
	a := NewBox("a", MustParseSignature("(x) -> (u)"), nopFn)
	b := NewBox("b", MustParseSignature("(y) -> (w)"), nopFn)
	in, out := Infer(Parallel(a, b))
	if len(in) != 2 || len(out) != 2 {
		t.Fatalf("in=%v out=%v", in, out)
	}
}

func TestInferStar(t *testing.T) {
	// dec's second variant carries <done>: exit statically reachable.
	n := Star(decBox(), MustParsePattern("{<done>}"))
	in, out, diags := Check(n)
	if len(diags) != 0 {
		t.Fatalf("diags = %v", diags)
	}
	// Input accepts the operand's input or an immediately-exiting record.
	if len(in) != 2 {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Tag("done"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestCheckStarUnreachableExitWarns(t *testing.T) {
	n := Star(incBox("spin", 1), MustParsePattern("{<done>}"))
	_, _, diags := Check(n)
	if len(diags) != 1 || !diags[0].Warning {
		t.Fatalf("diags = %v", diags)
	}
}

func TestInferSplitAddsIndexTag(t *testing.T) {
	n := Split(incBox("i", 0), "k")
	in, out := Infer(n)
	if !in[0].Equal(v(Tag("n"), Tag("k"))) {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Tag("n"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestInferFilter(t *testing.T) {
	n := MustFilter("{a,<c>} -> {a,<t>}")
	in, out := Infer(n)
	if !in[0].Equal(v(Field("a"), Tag("c"))) {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Field("a"), Tag("t"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestInferSync(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b,<t>}"))
	in, out := Infer(n)
	if len(in) != 2 {
		t.Fatalf("in = %v", in)
	}
	if !out[0].Equal(v(Field("a"), Field("b"), Tag("t"))) {
		t.Fatalf("out = %v", out)
	}
}

func TestNodeStringRendering(t *testing.T) {
	n := Serial(
		NewBox("cO", MustParseSignature("(board) -> (board,opts)"), nopFn),
		Star(NewBox("sOL", MustParseSignature("(board,opts) -> (board,opts) | (board,<done>)"), nopFn),
			MustParsePattern("{<done>}")),
	)
	s := n.String()
	for _, want := range []string{"box cO", "box sOL", "**", "{<done>}", ".."} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Deterministic variants render with single symbols.
	d := SplitDet(incBox("x", 0), "k").String()
	if !strings.Contains(d, " ! ") || strings.Contains(d, "!!") {
		t.Fatalf("det split rendering: %q", d)
	}
	p := ParallelDet(incBox("x", 0), incBox("y", 0)).String()
	if !strings.Contains(p, " | ") {
		t.Fatalf("det parallel rendering: %q", p)
	}
}
