package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// Failure injection inside combinators: a panicking box must lose only the
// poisoned records while the network keeps serving the rest.

func poisonBox(name string, bad int) Node {
	return NewBox(name, MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			n := args[0].(int)
			if n == bad {
				panic("poison")
			}
			return out.Out(1, n)
		})
}

func TestPanicInsideSplit(t *testing.T) {
	var errs int32
	n := NamedSplit("w", poisonBox("p", 7), "k")
	inputs := seqInputs(20, func(i int, r *Record) { r.SetTag("n", i).SetTag("k", i%4) })
	out, stats, err := RunAll(context.Background(), n, inputs,
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 19 {
		t.Fatalf("got %d records, want 19 survivors", len(out))
	}
	if errs != 1 || stats.Counter("box.p.panics") != 1 {
		t.Fatalf("errs=%d panics=%d", errs, stats.Counter("box.p.panics"))
	}
}

func TestPanicInsideStarChain(t *testing.T) {
	// Poison triggers deep in the chain: records with n==2 die at the
	// third stage; others complete.
	bomb := NewBox("bomb", MustParseSignature("(<n>,<depth>) -> (<n>,<depth>) | (<n>,<done>)"),
		func(args []any, out *Emitter) error {
			n, depth := args[0].(int), args[1].(int)
			if n == 2 && depth == 2 {
				panic("deep poison")
			}
			if depth >= 4 {
				return out.Out(2, n, 1)
			}
			return out.Out(1, n, depth+1)
		})
	var errs int32
	net := NamedStar("loop", bomb, MustParsePattern("{<done>}"))
	inputs := seqInputs(5, func(i int, r *Record) { r.SetTag("n", i).SetTag("depth", 0) })
	out, _, err := RunAll(context.Background(), net, inputs,
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || errs != 1 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
	for _, r := range out {
		if v, _ := r.Tag("n"); v == 2 {
			t.Fatal("poisoned record survived")
		}
	}
}

func TestPanicInDeterministicNet(t *testing.T) {
	// The det merger must not deadlock when a box drops a record: the
	// sort markers still flow, so ordering recovers around the gap.
	var errs int32
	n := SplitDet(poisonBox("p", 5), "k")
	inputs := seqInputs(12, func(i int, r *Record) { r.SetTag("n", i).SetTag("k", i%3) })
	out, _, err := RunAll(context.Background(), n, inputs,
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 11 || errs != 1 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
	// Remaining records stay in input order.
	prev := -1
	for _, r := range out {
		v, _ := r.Tag("seq")
		if v <= prev {
			t.Fatalf("order broken after drop: %v", out)
		}
		prev = v
	}
}

func TestBoxErrorsDoNotStopStream(t *testing.T) {
	flaky := NewBox("flaky", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			if args[0].(int)%2 == 0 {
				return errors.New("even numbers rejected")
			}
			return out.Out(1, args[0].(int))
		})
	var errs int32
	out, _, err := RunAll(context.Background(), Serial(flaky, incBox("after", 1)),
		[]*Record{recN(1), recN(2), recN(3), recN(4)},
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || errs != 2 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
}

// The classic S-Net idiom: a synchrocell inside a serial replicator joins
// pairs repeatedly — each star stage holds one join.
func TestSyncInsideStarJoinsPairs(t *testing.T) {
	cell := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	net := NamedStar("joiner", cell, MustParsePattern("{a, b}"))
	inputs := []*Record{
		NewRecord().SetField("a", 1),
		NewRecord().SetField("b", 2),
		NewRecord().SetField("a", 3),
		NewRecord().SetField("b", 4),
	}
	out, _, err := RunAll(context.Background(), net, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d joins, want 2", len(out))
	}
	for _, r := range out {
		if !recordSatisfies(r, NewVariant(Field("a"), Field("b"))) {
			t.Fatalf("record %v is not a join", r)
		}
	}
}

// Mixed routing with unroutable records inside a star: the errors surface
// but the network completes.
func TestUnroutableInsideStar(t *testing.T) {
	inner := Parallel(
		NewBox("x", MustParseSignature("(x,<n>) -> (<n>,<done>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[1].(int), 1) }),
		NewBox("y", MustParseSignature("(y,<n>) -> (<n>,<done>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[1].(int), 1) }),
	)
	var errs int32
	net := NamedStar("s", inner, MustParsePattern("{<done>}"))
	inputs := []*Record{
		NewRecord().SetField("x", 1).SetTag("n", 0),
		NewRecord().SetField("zzz", 1).SetTag("n", 1), // unroutable
		NewRecord().SetField("y", 1).SetTag("n", 2),
	}
	out, _, err := RunAll(context.Background(), net, inputs,
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || errs != 1 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
}
