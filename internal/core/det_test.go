package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// Deterministic combinators (|, *, !) must preserve the causal order of
// inputs in the merged output even when branches run at wildly different
// speeds; the nondeterministic variants must deliver the same multiset.

// jitterBox sleeps a pseudo-random time derived from <seq> before
// forwarding, so branch speeds interleave unpredictably.
func jitterBox(name string, salt int64) Node {
	return NewBox(name, MustParseSignature("(<seq>) -> (<seq>,<via_"+name+">)"),
		func(args []any, out *Emitter) error {
			seq := args[0].(int)
			r := rand.New(rand.NewSource(salt + int64(seq)))
			time.Sleep(time.Duration(r.Intn(3)) * time.Millisecond)
			return out.Out(1, seq, 1)
		})
}

func seqInputs(n int, extra func(i int, r *Record)) []*Record {
	out := make([]*Record, n)
	for i := 0; i < n; i++ {
		out[i] = NewRecord().SetTag("seq", i)
		if extra != nil {
			extra(i, out[i])
		}
	}
	return out
}

func collectSeqs(t *testing.T, recs []*Record) []int {
	t.Helper()
	seqs := make([]int, len(recs))
	for i, r := range recs {
		seqs[i] = tagOf(t, r, "seq")
	}
	return seqs
}

func assertOrdered(t *testing.T, seqs []int, n int) {
	t.Helper()
	if len(seqs) != n {
		t.Fatalf("got %d records, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("order broken at %d: %v", i, seqs)
		}
	}
}

func assertMultiset(t *testing.T, seqs []int, n int) {
	t.Helper()
	if len(seqs) != n {
		t.Fatalf("got %d records, want %d", len(seqs), n)
	}
	seen := map[int]bool{}
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate seq %d", s)
		}
		seen[s] = true
	}
}

const detN = 40

// Records alternate between a slow and a fast branch, selected by field.
func detParallelNet(det bool) (Node, []*Record) {
	slow := NewBox("slow", MustParseSignature("(s,<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error {
			time.Sleep(2 * time.Millisecond)
			return out.Out(1, args[1].(int))
		})
	fast := NewBox("fast", MustParseSignature("(f,<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error {
			return out.Out(1, args[1].(int))
		})
	var n Node
	if det {
		n = ParallelDet(slow, fast)
	} else {
		n = Parallel(slow, fast)
	}
	inputs := seqInputs(detN, func(i int, r *Record) {
		if i%2 == 0 {
			r.SetField("s", 1)
		} else {
			r.SetField("f", 1)
		}
	})
	return n, inputs
}

func TestDetParallelPreservesInputOrder(t *testing.T) {
	n, inputs := detParallelNet(true)
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

func TestNondetParallelDeliversAll(t *testing.T) {
	n, inputs := detParallelNet(false)
	out, _ := runNet(t, n, inputs)
	assertMultiset(t, collectSeqs(t, out), detN)
}

func TestNondetParallelCanReorder(t *testing.T) {
	// Not a strict guarantee, but with a 2ms slow branch and an eager
	// fast branch reordering should occur essentially always; retry a
	// few times to keep flake probability negligible.
	for attempt := 0; attempt < 5; attempt++ {
		n, inputs := detParallelNet(false)
		out, _ := runNet(t, n, inputs)
		seqs := collectSeqs(t, out)
		for i, s := range seqs {
			if s != i {
				return // observed reordering: nondeterministic merge works
			}
		}
	}
	t.Log("warning: nondeterministic merge never reordered; timing-dependent")
}

func TestDetSplitPreservesInputOrder(t *testing.T) {
	n := SplitDet(jitterBox("j", 17), "k")
	inputs := seqInputs(detN, func(i int, r *Record) { r.SetTag("k", i%4) })
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

func TestNondetSplitDeliversAll(t *testing.T) {
	n := Split(jitterBox("j", 23), "k")
	inputs := seqInputs(detN, func(i int, r *Record) { r.SetTag("k", i%4) })
	out, _ := runNet(t, n, inputs)
	assertMultiset(t, collectSeqs(t, out), detN)
}

// varDecBox decrements <n> with jitter and signals <done> at zero; different
// records exit a star chain at different depths.
func varDecBox(salt int64) Node {
	return NewBox("vdec", MustParseSignature("(<n>,<seq>) -> (<n>,<seq>) | (<seq>,<done>)"),
		func(args []any, out *Emitter) error {
			n, seq := args[0].(int), args[1].(int)
			r := rand.New(rand.NewSource(salt + int64(n*100+seq)))
			time.Sleep(time.Duration(r.Intn(2)) * time.Millisecond)
			if n <= 0 {
				return out.Out(2, seq, 1)
			}
			return out.Out(1, n-1, seq)
		})
}

func TestDetStarPreservesInputOrder(t *testing.T) {
	n := StarDet(varDecBox(5), MustParsePattern("{<done>}"))
	inputs := seqInputs(detN, func(i int, r *Record) { r.SetTag("n", (detN-i)%7) })
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

func TestNondetStarDeliversAll(t *testing.T) {
	n := Star(varDecBox(7), MustParsePattern("{<done>}"))
	inputs := seqInputs(detN, func(i int, r *Record) { r.SetTag("n", i%7) })
	out, _ := runNet(t, n, inputs)
	assertMultiset(t, collectSeqs(t, out), detN)
}

// Nesting: a nondeterministic split inside a deterministic parallel — the
// outer determinism must survive inner nondeterminism (sort-record barriers
// pass through the inner merger).
func TestDetOuterNondetInner(t *testing.T) {
	inner := Split(jitterBox("inner", 31), "k")
	other := NewBox("noval", MustParseSignature("(none,<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[1].(int)) })
	n := ParallelDet(inner, other)
	inputs := seqInputs(detN, func(i int, r *Record) {
		if i%3 == 0 {
			r.SetField("none", 1)
		} else {
			r.SetTag("k", i%4)
		}
	})
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

// Nesting: deterministic star inside deterministic split.
func TestDetStarInsideDetSplit(t *testing.T) {
	inner := StarDet(varDecBox(11), MustParsePattern("{<done>}"))
	n := SplitDet(inner, "k")
	inputs := seqInputs(detN, func(i int, r *Record) {
		r.SetTag("k", i%3).SetTag("n", i%5)
	})
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

// A deterministic combinator fed from another deterministic combinator in
// series: markers of the first must not confuse the second.
func TestDetSeriesOfDetCombinators(t *testing.T) {
	first := ParallelDet(
		NewBox("pa", MustParseSignature("(s,<seq>) -> (<seq>)"),
			func(args []any, out *Emitter) error {
				time.Sleep(time.Millisecond)
				return out.Out(1, args[1].(int))
			}),
		NewBox("pb", MustParseSignature("(f,<seq>) -> (<seq>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[1].(int)) }),
	)
	second := SplitDet(jitterBox("j2", 41), "k")
	// first consumes s/f and emits {<seq>}; add <k> downstream for split.
	addK := MustFilter("{<seq>} -> {<seq>, <k>=<seq>%3}")
	n := Serial(first, addK, second)
	inputs := seqInputs(detN, func(i int, r *Record) {
		if i%2 == 0 {
			r.SetField("s", 1)
		} else {
			r.SetField("f", 1)
		}
	})
	out, _ := runNet(t, n, inputs)
	assertOrdered(t, collectSeqs(t, out), detN)
}

// A box that multiplies records: det combinators must keep each input's
// outputs grouped and in generation order.
func TestDetSplitWithMultiOutputBox(t *testing.T) {
	multi := NewBox("multi", MustParseSignature("(<seq>) -> (<seq>,<part>)"),
		func(args []any, out *Emitter) error {
			seq := args[0].(int)
			time.Sleep(time.Duration(seq%2) * time.Millisecond)
			for part := 0; part < 3; part++ {
				if err := out.Out(1, seq, part); err != nil {
					return err
				}
			}
			return nil
		})
	n := SplitDet(multi, "k")
	inputs := seqInputs(20, func(i int, r *Record) { r.SetTag("k", i%4) })
	out, _ := runNet(t, n, inputs)
	if len(out) != 60 {
		t.Fatalf("got %d records", len(out))
	}
	for i, r := range out {
		wantSeq, wantPart := i/3, i%3
		if tagOf(t, r, "seq") != wantSeq || tagOf(t, r, "part") != wantPart {
			t.Fatalf("position %d: got seq=%d part=%d, want %d/%d",
				i, tagOf(t, r, "seq"), tagOf(t, r, "part"), wantSeq, wantPart)
		}
	}
}

func TestDetRunsAreRepeatable(t *testing.T) {
	// Two runs of a deterministic network produce identical sequences.
	run := func() []int {
		n := SplitDet(jitterBox("rep", time.Now().UnixNano()%1000), "k")
		inputs := seqInputs(25, func(i int, r *Record) { r.SetTag("k", i%5) })
		out, _, err := RunAll(context.Background(), n, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return collectSeqs(t, out)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}
