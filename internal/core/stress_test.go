package core

import (
	"context"
	"fmt"
	"testing"
)

// Buffer-capacity sweep: every combinator nest must work with unbuffered
// channels (capacity 0 exposes ordering deadlocks that buffering hides).
func TestBufferSizeSweep(t *testing.T) {
	for _, buf := range []int{0, 1, 4, 64} {
		t.Run(fmt.Sprintf("buf%d", buf), func(t *testing.T) {
			fork := NewBox("fork", MustParseSignature("(<n>) -> (<n>,<k>) | (<n>,<done>)"),
				func(args []any, out *Emitter) error {
					n := args[0].(int)
					if n <= 0 {
						return out.Out(2, 0, 1)
					}
					if err := out.Out(1, n-1, n%3); err != nil {
						return err
					}
					return out.Out(1, n-1, (n+1)%3)
				})
			net := NamedStar("loop", NamedSplit("fan", fork, "k"), MustParsePattern("{<done>}"))
			inputs := []*Record{recN(4).SetTag("k", 0), recN(3).SetTag("k", 1)}
			out, _, err := RunAll(context.Background(), net, inputs, WithBuffer(buf))
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 16+8 {
				t.Fatalf("got %d records, want 24", len(out))
			}
		})
	}
}

// Deterministic combinators under unbuffered channels.
func TestBufferSizeSweepDeterministic(t *testing.T) {
	for _, buf := range []int{0, 1, 16} {
		t.Run(fmt.Sprintf("buf%d", buf), func(t *testing.T) {
			net := SplitDet(StarDet(decBox(), MustParsePattern("{<done>}")), "k")
			inputs := seqInputs(12, func(i int, r *Record) {
				r.SetTag("k", i%3).SetTag("n", i%4)
			})
			out, _, err := RunAll(context.Background(), net, inputs, WithBuffer(buf))
			if err != nil {
				t.Fatal(err)
			}
			assertOrdered(t, collectSeqs(t, out), 12)
		})
	}
}

// A record flood through a deep pipeline of replicated boxes — the shape of
// the sudoku networks at scale.
func TestStressDeepNesting(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	hop := NewBox("hop", MustParseSignature("(<n>,<hops>) -> (<n>,<hops>) | (<n>,<done>)"),
		func(args []any, out *Emitter) error {
			n, hops := args[0].(int), args[1].(int)
			if hops <= 0 {
				return out.Out(2, n, 1)
			}
			return out.Out(1, n, hops-1)
		})
	net := NamedStar("deep", NamedSplit("wide", hop, "k"), MustParsePattern("{<done>}"))
	const n = 500
	inputs := make([]*Record, n)
	for i := range inputs {
		inputs[i] = NewRecord().SetTag("n", i).SetTag("hops", 20+i%10).SetTag("k", i%8)
	}
	out, stats, err := RunAll(context.Background(), net, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d records", len(out))
	}
	seen := map[int]bool{}
	for _, r := range out {
		v, _ := r.Tag("n")
		if seen[v] {
			t.Fatalf("duplicate record %d", v)
		}
		seen[v] = true
	}
	if stats.Counter("star.deep.replicas") < 20 {
		t.Fatalf("chain too short: %d", stats.Counter("star.deep.replicas"))
	}
}

// Concurrent network instances sharing the same Node blueprint must not
// interfere (Nodes are blueprints; all state is per-run).
func TestSharedBlueprintConcurrentRuns(t *testing.T) {
	net := Serial(incBox("shared", 1), NamedStar("loop", decBox(), MustParsePattern("{<done>}")))
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			out, _, err := RunAll(context.Background(), net,
				[]*Record{recN(3 + g%3), recN(2)})
			if err == nil && len(out) != 2 {
				err = fmt.Errorf("got %d records", len(out))
			}
			errs <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// Repeated starts of the same handle pattern: Start/Send/Cancel in a tight
// loop must stay leak- and panic-free.
func TestStartCancelChurn(t *testing.T) {
	net := NamedSplit("churn", incBox("c", 1), "k")
	for i := 0; i < 50; i++ {
		h := Start(context.Background(), net)
		_ = h.Send(NewRecord().SetTag("n", i).SetTag("k", i%2))
		if i%2 == 0 {
			h.Close()
			for range h.Out() {
			}
		} else {
			h.Cancel()
		}
		h.Wait()
	}
}

// Empty input: the network must open and drain cleanly.
func TestEmptyRun(t *testing.T) {
	for _, net := range []Node{
		incBox("e", 1),
		Parallel(incBox("a", 1), incBox("b", 2)),
		NamedStar("s", decBox(), MustParsePattern("{<done>}")),
		SplitDet(incBox("d", 1), "k"),
		Sync(MustParsePattern("{a}"), MustParsePattern("{b}")),
	} {
		out, _, err := RunAll(context.Background(), net, nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("%s: out=%d err=%v", net, len(out), err)
		}
	}
}
