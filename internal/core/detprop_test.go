package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// Property-style determinism tests: for deterministic combinators the
// rendered output stream must be byte-identical whatever the box
// concurrency width W, whatever the stream batch size B, and whatever
// latencies the invocations exhibit.  The (W=1, B=1) run defines the
// reference; every other (W, B) combination must reproduce it exactly —
// in particular, sort markers must stay flush barriers at any B.

// renderStream flattens a record sequence into one comparable string.
func renderStream(recs []*Record) string {
	var sb strings.Builder
	for _, r := range recs {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// latencyBox forwards <seq> (tagged with a branch witness) after a truly
// random sleep, so invocation completion order is unrelated to input order.
func latencyBox(name, field string, maxDelay time.Duration) Node {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
	return NewBox(name, MustParseSignature("("+field+",<seq>) -> (<seq>,<via_"+name+">)"),
		func(args []any, out *Emitter) error {
			mu.Lock()
			d := time.Duration(rng.Int63n(int64(maxDelay)))
			mu.Unlock()
			time.Sleep(d)
			return out.Out(1, args[1].(int), 1)
		})
}

func runDetProp(t *testing.T, mkNet func() Node, inputs func() []*Record) {
	t.Helper()
	var want string
	for _, w := range []int{1, 4, 16} {
		for _, b := range []int{1, 8, 64} {
			t.Run(fmt.Sprintf("W%d_B%d", w, b), func(t *testing.T) {
				out, _, err := RunAll(context.Background(), mkNet(), inputs(),
					WithBoxWorkers(w), WithStreamBatch(b))
				if err != nil {
					t.Fatal(err)
				}
				got := renderStream(out)
				if w == 1 && b == 1 {
					want = got
					return
				}
				if got != want {
					t.Fatalf("W=%d B=%d output diverges from the (1,1) reference:\n--- want ---\n%s--- got ---\n%s",
						w, b, want, got)
				}
			})
		}
	}
}

// A|B: deterministic parallel composition of two jittery boxes.
func TestDetPropParallelPipeline(t *testing.T) {
	const n = 60
	mkNet := func() Node {
		return ParallelDet(
			latencyBox("pa", "a", 800*time.Microsecond),
			latencyBox("pb", "b", 300*time.Microsecond),
		)
	}
	inputs := func() []*Record {
		return seqInputs(n, func(i int, r *Record) {
			if i%2 == 0 {
				r.SetField("a", 1)
			} else {
				r.SetField("b", 1)
			}
		})
	}
	runDetProp(t, mkNet, inputs)
}

// A*(p): deterministic serial replication around a jittery multi-exit box.
func TestDetPropStarPipeline(t *testing.T) {
	const n = 40
	mkNet := func() Node {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(4242))
		step := NewBox("sp", MustParseSignature("(<n>,<seq>) -> (<n>,<seq>) | (<seq>,<done>)"),
			func(args []any, out *Emitter) error {
				mu.Lock()
				d := time.Duration(rng.Int63n(int64(500 * time.Microsecond)))
				mu.Unlock()
				time.Sleep(d)
				v, seq := args[0].(int), args[1].(int)
				if v <= 0 {
					return out.Out(2, seq, 1)
				}
				return out.Out(1, v-1, seq)
			})
		return StarDet(step, MustParsePattern("{<done>}"))
	}
	inputs := func() []*Record {
		return seqInputs(n, func(i int, r *Record) { r.SetTag("n", i%6) })
	}
	runDetProp(t, mkNet, inputs)
}

// Nested: a deterministic split of a concurrent box, fed from a
// deterministic parallel — the full marker-barrier gauntlet.
func TestDetPropNestedCombinators(t *testing.T) {
	const n = 36
	mkNet := func() Node {
		first := ParallelDet(
			latencyBox("na", "a", 400*time.Microsecond),
			latencyBox("nb", "b", 150*time.Microsecond),
		)
		addK := MustFilter("{<seq>} -> {<seq>, <k>=<seq>%3}")
		second := SplitDet(latencyBox2("ns", 600*time.Microsecond), "k")
		return Serial(first, addK, second)
	}
	inputs := func() []*Record {
		return seqInputs(n, func(i int, r *Record) {
			if i%2 == 0 {
				r.SetField("a", 1)
			} else {
				r.SetField("b", 1)
			}
		})
	}
	runDetProp(t, mkNet, inputs)
}

// latencyBox2 is latencyBox over a bare (<seq>) signature.
func latencyBox2(name string, maxDelay time.Duration) Node {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(int64(len(name)) * 104729))
	return NewBox(name, MustParseSignature("(<seq>) -> (<seq>,<hop_"+name+">)"),
		func(args []any, out *Emitter) error {
			mu.Lock()
			d := time.Duration(rng.Int63n(int64(maxDelay)))
			mu.Unlock()
			time.Sleep(d)
			return out.Out(1, args[0].(int), 1)
		})
}

// Regression for the shared-node-state race: node trees are blueprints, so
// the same network value must serve any number of concurrent sessions
// without touching shared mutable state (the old parallelNode rotation
// counter lived on the node and raced here under -race).
func TestSharedNetworkConcurrentSessions(t *testing.T) {
	// Two branches with identical input types force the tie-breaking
	// rotation path on every record.
	tieA := NewBox("tieA", MustParseSignature("(<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0].(int)) })
	tieB := NewBox("tieB", MustParseSignature("(<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0].(int)) })
	shared := Serial(Parallel(tieA, tieB), NamedStar("tail", decBox(), MustParsePattern("{<done>}")))

	const sessions = 8
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		go func(s int) {
			inputs := seqInputs(25, func(i int, r *Record) { r.SetTag("n", (s+i)%3) })
			out, _, err := RunAll(context.Background(), shared, inputs, WithBoxWorkers(4))
			if err == nil && len(out) != 25 {
				err = fmt.Errorf("session %d: got %d records", s, len(out))
			}
			errs <- err
		}(s)
	}
	for s := 0; s < sessions; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
