package core

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The micro-syntax lexer shared by the textual forms of the coordination
// layer: box signatures "(a,<b>) -> (c) | (c,d,<e>)", patterns
// "{board, <done>}", guarded patterns "{<level>} | <level> > 40", filters
// "[{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]" and tag expressions
// "<k>%4+1".
//
// The only subtlety is '<': a '<' immediately followed by an identifier and
// '>' lexes as one tagName token, so "<c>=<c>+1" tokenises as
// tag(c) '=' tag(c) '+' 1 rather than tripping over ">=".

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokTagName // <ident>
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokComma
	tokSemi
	tokAssign // =
	tokArrow  // ->
	tokPipe   // |
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq  // ==
	tokNeq // !=
	tokLt
	tokLe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
	tokNot
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokTagName:
		return "tag"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokAssign:
		return "'='"
	case tokArrow:
		return "'->'"
	case tokPipe:
		return "'|'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokAndAnd:
		return "'&&'"
	case tokOrOr:
		return "'||'"
	case tokNot:
		return "'!'"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string // ident / tag name / integer literal
	pos  int
}

// SyntaxError reports a parse failure in one of the textual micro-forms.
// Pos is a byte offset into Input; LineCol converts it to the 1-based
// line/column pair, which Error uses for multi-line inputs (a bare offset
// into a multi-line source is useless past the first line).
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

// LineCol returns the 1-based line and column of the error offset.
func (e *SyntaxError) LineCol() (line, col int) {
	line, col = 1, 1
	for i := 0; i < e.Pos && i < len(e.Input); i++ {
		if e.Input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// errorLine returns the line of Input the error offset falls on.
func (e *SyntaxError) errorLine() string {
	start := strings.LastIndexByte(e.Input[:min(e.Pos, len(e.Input))], '\n') + 1
	end := strings.IndexByte(e.Input[start:], '\n')
	if end < 0 {
		return e.Input[start:]
	}
	return e.Input[start : start+end]
}

func (e *SyntaxError) Error() string {
	if strings.ContainsRune(e.Input, '\n') {
		line, col := e.LineCol()
		return fmt.Sprintf("core: syntax error at %d:%d in %q: %s", line, col, e.errorLine(), e.Msg)
	}
	return fmt.Sprintf("core: syntax error at %d in %q: %s", e.Pos, e.Input, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(r byte) bool {
	return r == '_' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return r == '_' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokInt, text: l.src[start:l.pos], pos: start}, nil
	}
	one := func(k tokKind) (token, error) {
		l.pos++
		return token{kind: k, pos: start}, nil
	}
	switch c {
	case '{':
		return one(tokLBrace)
	case '}':
		return one(tokRBrace)
	case '(':
		return one(tokLParen)
	case ')':
		return one(tokRParen)
	case '[':
		return one(tokLBrack)
	case ']':
		return one(tokRBrack)
	case ',':
		return one(tokComma)
	case ';':
		return one(tokSemi)
	case '+':
		return one(tokPlus)
	case '*':
		return one(tokStar)
	case '/':
		return one(tokSlash)
	case '%':
		return one(tokPercent)
	case '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{kind: tokArrow, pos: start}, nil
		}
		return one(tokMinus)
	case '=':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokEq, pos: start}, nil
		}
		return one(tokAssign)
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNeq, pos: start}, nil
		}
		return one(tokNot)
	case '&':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
			l.pos += 2
			return token{kind: tokAndAnd, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '&'")
	case '|':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
			l.pos += 2
			return token{kind: tokOrOr, pos: start}, nil
		}
		return one(tokPipe)
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokGe, pos: start}, nil
		}
		return one(tokGt)
	case '<':
		// Try the atomic tag form <ident>.
		p := l.pos + 1
		if p < len(l.src) && isIdentStart(l.src[p]) {
			q := p
			for q < len(l.src) && isIdentPart(l.src[q]) {
				q++
			}
			if q < len(l.src) && l.src[q] == '>' {
				l.pos = q + 1
				return token{kind: tokTagName, text: l.src[p:q], pos: start}, nil
			}
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokLe, pos: start}, nil
		}
		return one(tokLt)
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

// parser is a token cursor shared by the micro-form parsers.
type parser struct {
	src  string
	toks []token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{src: src, toks: toks}, nil
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) take() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %v, found %v", k, p.peek().kind)
	}
	return p.take(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Input: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() error {
	if !p.at(tokEOF) {
		return p.errf("trailing input")
	}
	return nil
}

func atoi(t token) int {
	n, _ := strconv.Atoi(t.text)
	return n
}
