package core

import (
	"sync"
	"sync/atomic"
)

// Label interning — the symbol-table half of the zero-allocation record
// plane.
//
// Every label name that ever crosses the coordination layer is interned to a
// small integer once; records, shapes and the compiled routing/filter
// artifacts all speak label ids afterwards, so the hot path never hashes a
// string.  The table is process-global and append-only: a label id, once
// assigned, is stable for the life of the process, which is what lets
// shapes (shape.go) and the per-node compiled programs cache slot indices
// by id.  Compile pre-interns every label a plan can carry (its per-Plan
// symbol table is a view onto this table), so steady-state record traffic
// only ever takes the lock-free read path below; labels of out-of-plan
// dynamic shapes intern on first sight through the slow path.
//
// Reads go through an atomically published immutable snapshot
// (copy-on-write), so lookup is one map access with no locking; writers —
// rare by construction — serialize on a mutex and publish a fresh snapshot.

// labelID identifies one interned label name.  Field and tag labels with
// the same name share an id: the field/tag distinction lives in the shape,
// not the symbol table.
type labelID int32

// internState is one immutable snapshot of the symbol table.
type internState struct {
	byName map[string]labelID
	names  []string
}

var (
	internMu   sync.Mutex
	internSnap atomic.Pointer[internState]
)

func init() {
	internSnap.Store(&internState{byName: map[string]labelID{}})
}

// lookupLabel returns the id of an already-interned name.
func lookupLabel(name string) (labelID, bool) {
	id, ok := internSnap.Load().byName[name]
	return id, ok
}

// internLabel returns the id for a name, interning it if new.
func internLabel(name string) labelID {
	if id, ok := internSnap.Load().byName[name]; ok {
		return id
	}
	internMu.Lock()
	defer internMu.Unlock()
	s := internSnap.Load()
	if id, ok := s.byName[name]; ok {
		return id
	}
	next := &internState{
		byName: make(map[string]labelID, len(s.byName)+1),
		names:  make([]string, len(s.names), len(s.names)+1),
	}
	for k, v := range s.byName {
		next.byName[k] = v
	}
	copy(next.names, s.names)
	id := labelID(len(next.names))
	next.byName[name] = id
	next.names = append(next.names, name)
	internSnap.Store(next)
	return id
}

// labelName returns the name behind an id.
func labelName(id labelID) string {
	return internSnap.Load().names[id]
}

// InternedLabels reports how many distinct label names the process has
// interned — the size of the global symbol table (diagnostics and tests).
func InternedLabels() int {
	return len(internSnap.Load().names)
}

// internVariant pre-interns every label of a variant; Compile calls it for
// all signatures, patterns and filter outputs of a plan, so the plan's
// whole label universe is id-resolved before the first record flows.
func internVariant(v Variant) {
	for l := range v {
		internLabel(l.Name)
	}
}
