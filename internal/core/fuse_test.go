package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// tapChain is the E13/E21 deep-pipeline shape: depth Observe stages, all
// fusible, so a fused compile collapses the whole chain into one segment.
func tapChain(depth int) Node {
	stages := make([]Node, depth)
	for i := range stages {
		stages[i] = Observe(fmt.Sprintf("ftap%d", i), nil)
	}
	return Serial(stages...)
}

// seqBox is a sequential (W=1, fusible) box rewriting <seq>.
func seqBox(name string, f func(int) int) Node {
	return NewBoxConcurrent(name, MustParseSignature("(<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error {
			return out.Out(1, f(args[0].(int)))
		}, 1)
}

func drainAll(h *Handle) []*Record {
	var out []*Record
	for r := range h.Out() {
		out = append(out, r)
	}
	h.Wait()
	return out
}

// TestFusionTopologyAndGroups pins the compile-side contract: the blueprint
// tree is untouched, the execution tree is rewritten, and the topology
// reports which stages fused.
func TestFusionTopologyAndGroups(t *testing.T) {
	if !envFuseOn() {
		t.Skip("SNET_FUSE=0")
	}
	net := tapChain(32)
	plan := MustCompile(net)
	groups := plan.FusionGroups()
	if len(groups) != 1 {
		t.Fatalf("want 1 fusion group, got %v", groups)
	}
	if len(groups[0].Members) != 32 {
		t.Fatalf("want 32 members, got %d", len(groups[0].Members))
	}
	for i, m := range groups[0].Members {
		if want := fmt.Sprintf("ftap%d", i); m != want {
			t.Fatalf("member %d: want %s, got %s", i, want, m)
		}
	}
	if plan.ExecRoot() == plan.Root() {
		t.Fatal("ExecRoot should be the rewritten tree")
	}
	if _, ok := plan.ExecRoot().(*fusedNode); !ok {
		t.Fatalf("a fully fusible chain should compile to a single fusedNode, got %T", plan.ExecRoot())
	}
	raw, err := json.Marshal(plan.Topology())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"fusion_groups"`) {
		t.Fatal("topology JSON should list fusion groups")
	}
	if strings.Contains(string(raw), `"kind":"fused"`) {
		t.Fatal("the topology tree must keep describing the un-fused blueprint")
	}

	off := MustCompile(net, WithFusion(false))
	if off.ExecRoot() != off.Root() {
		t.Fatal("WithFusion(false): ExecRoot must be Root")
	}
	if len(off.FusionGroups()) != 0 {
		t.Fatal("WithFusion(false): no fusion groups expected")
	}
}

// TestFusionBarriers checks the fusible predicate end to end: barriers split
// the chain, single fusible stages between barriers stay un-fused, and a
// default-width box never fuses.
func TestFusionBarriers(t *testing.T) {
	if !envFuseOn() {
		t.Skip("SNET_FUSE=0")
	}
	wide := NewBox("wide", MustParseSignature("(<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0].(int)) })
	net := Serial(
		Observe("f_a", nil), Observe("f_b", nil), // fuses (run of 2)
		wide,                // barrier: inherits WithBoxWorkers
		Observe("f_c", nil), // lone fusible stage: stays as it is
		Sync(MustParsePattern("{a}"), MustParsePattern("{b}")), // barrier
		Observe("f_d", nil), seqBox("f_sq", func(n int) int { return n }), Observe("f_e", nil),
	)
	plan := MustCompile(net, WithInputType(RecType{
		NewVariant(Field("a"), Tag("seq")),
		NewVariant(Field("b"), Tag("seq")),
	}))
	groups := plan.FusionGroups()
	if len(groups) != 2 {
		t.Fatalf("want 2 fusion groups, got %v", groups)
	}
	if got := groups[0].Members; len(got) != 2 || got[0] != "f_a" || got[1] != "f_b" {
		t.Fatalf("group 0: %v", got)
	}
	if got := groups[1].Members; len(got) != 3 || got[0] != "f_d" || got[1] != "f_sq" || got[2] != "f_e" {
		t.Fatalf("group 1: %v", got)
	}
}

// TestFusionSharedSubtree: a node instance appearing at several graph
// positions must be rewritten once and stay shared (blueprints are
// identity-sensitive — stats keys, routing tables).
func TestFusionSharedSubtree(t *testing.T) {
	chain := Serial(Observe("sh_a", nil), Observe("sh_b", nil))
	net := Serial(Split(chain, "k"), Star(chain, MustParsePattern("{<done>}")))
	fused, groups := fuseTree(net)
	if len(groups) != 1 {
		t.Fatalf("shared chain should fuse once, got %v", groups)
	}
	s := fused.(*serialNode)
	split := s.a.(*splitNode)
	star := s.b.(*starNode)
	if split.operand != star.operand {
		t.Fatal("rewritten shared subtree lost its sharing")
	}
}

// mixedFusibleNet exercises every fused op kind between two barriers, with
// multi-output filters and a multi-emit box.
func mixedFusibleNet() Node {
	double := NewBoxConcurrent("fm_double", MustParseSignature("(<n>) -> (<n>,<twice>)"),
		func(args []any, out *Emitter) error {
			n := args[0].(int)
			if err := out.Out(1, n, 2*n); err != nil {
				return err
			}
			return out.Out(1, n+100, 2*(n+100))
		}, 1)
	return Serial(
		Observe("fm_tap", nil),
		MustFilter("{<n>} -> {<n>, <m>=<n>*3}"),
		double,
		HideTags("m"),
		MustFilter("{<twice>} -> {<twice>}; {<twice>=<twice>+1}"),
	)
}

// TestFusedMixedChainOutputs compares the fused execution of a mixed chain
// against the stage-per-goroutine baseline, record for record.
func TestFusedMixedChainOutputs(t *testing.T) {
	inputs := func() []*Record {
		return seqInputs(40, func(i int, r *Record) { r.SetTag("n", i) })
	}
	run := func(fuse bool) string {
		plan := MustCompile(mixedFusibleNet(), WithFusion(fuse),
			WithInputType(RecType{NewVariant(Tag("n"), Tag("seq"))}))
		out, _, err := plan.RunAll(context.Background(), inputs(), WithBoxWorkers(1), WithStreamBatch(1))
		if err != nil {
			t.Fatal(err)
		}
		return renderStream(out)
	}
	if got, want := run(true), run(false); got != want {
		t.Fatalf("fused output diverges:\n--- unfused ---\n%s--- fused ---\n%s", want, got)
	}
}

// TestFusedSegmentStats: the segment counts its own records/applications on
// preregistered atomics and the constituent stages keep their counters.
func TestFusedSegmentStats(t *testing.T) {
	if !envFuseOn() {
		t.Skip("SNET_FUSE=0")
	}
	net := Serial(
		Observe("fs_tap", nil),
		MustFilter("{<n>} -> {<n>, <m>=<n>+1}"),
		seqBox("fs_box", func(n int) int { return n }),
	)
	plan := MustCompile(net, WithInputType(RecType{NewVariant(Tag("n"), Tag("seq"))}))
	groups := plan.FusionGroups()
	if len(groups) != 1 {
		t.Fatalf("want 1 group, got %v", groups)
	}
	const n = 25
	inputs := make([]*Record, n)
	for i := range inputs {
		inputs[i] = NewRecord().SetTag("n", i).SetTag("seq", i)
	}
	_, stats, err := plan.RunAll(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0].Name
	if got := stats.Counter("fused." + g + ".records"); got != n {
		t.Errorf("fused records: want %d, got %d", n, got)
	}
	// tap + filter + box apply once per record each.
	if got := stats.Counter("fused." + g + ".applied"); got != 3*n {
		t.Errorf("fused applied: want %d, got %d", 3*n, got)
	}
	if got := stats.SumPrefix("filter."); got != n {
		t.Errorf("constituent filter counters: want %d, got %d", n, got)
	}
	if got := stats.Counter("box.fs_box.calls"); got != n {
		t.Errorf("constituent box calls: want %d, got %d", n, got)
	}
	if got := stats.Counter("box.fs_box.instances"); got != 1 {
		t.Errorf("box instances: want 1, got %d", got)
	}
	// The hot keys must appear in the map-shaped accessors like any other.
	snap := stats.Snapshot()
	if snap["fused."+g+".records"] != n {
		t.Errorf("snapshot is missing the fused segment counters: %v", snap)
	}
	found := false
	for _, k := range stats.Keys() {
		if k == "fused."+g+".records" {
			found = true
		}
	}
	if !found {
		t.Error("Keys() is missing the fused segment counter")
	}
	agg := NewStats()
	agg.Merge(stats)
	if agg.Counter("fused."+g+".records") != n {
		t.Error("Merge dropped the preregistered counters")
	}
}

// TestFusedPipelineGoroutineBudget: a 32-stage fused pipeline runs on
// O(barriers) goroutines, not O(stages).
func TestFusedPipelineGoroutineBudget(t *testing.T) {
	if !envFuseOn() {
		t.Skip("SNET_FUSE=0")
	}
	measure := func(fuse bool) int {
		plan := MustCompile(tapChain(32), WithFusion(fuse))
		runtime.GC()
		base := runtime.NumGoroutine()
		h := plan.Start(context.Background())
		if err := h.Send(NewRecord().SetTag("seq", 1)); err != nil {
			t.Fatal(err)
		}
		<-h.Out()
		grown := runtime.NumGoroutine() - base
		h.Close()
		drainAll(h)
		return grown
	}
	fused, unfused := measure(true), measure(false)
	// Fused: one segment goroutine plus the boundary pump (and scheduler
	// noise).  Unfused: 31 serial spawns + the same fixed costs.
	if fused > 8 {
		t.Errorf("fused 32-stage pipeline grew %d goroutines, want O(1)", fused)
	}
	if unfused < 25 {
		t.Errorf("unfused baseline grew only %d goroutines — harness no longer measures what it should", unfused)
	}
}

// TestFusedArenaClean: graceful drain and hard cancel both return every
// pooled record to the arena, through multi-output filters and multi-emit
// boxes inside the segment.
func TestFusedArenaClean(t *testing.T) {
	plan := MustCompile(mixedFusibleNet(),
		WithInputType(RecType{NewVariant(Tag("n"), Tag("seq"))}))
	inputs := func(n int) []*Record {
		out := make([]*Record, n)
		for i := range out {
			out[i] = AcquireRecord().SetTag("n", i).SetTag("seq", i)
		}
		return out
	}

	base := poolLiveSettled(t)
	if _, _, err := plan.RunAll(context.Background(), inputs(200), WithStreamBatch(8)); err != nil {
		t.Fatal(err)
	}
	waitPoolLive(t, base)

	// Hard cancel mid-stream: the drainer pulls ~40 records and yanks the
	// context while the segment is still processing.  Records dropped in
	// cancelled frames leave the arena without a release (same as the
	// stage-per-goroutine runtime), so the invariant here is prompt
	// unwinding, not pool-live parity.
	gbase := runtime.NumGoroutine()
	h := plan.Start(context.Background(), WithStreamBatch(8))
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		n := 0
		for range h.Out() {
			if n++; n == 40 {
				h.Cancel()
			}
		}
	}()
	for _, r := range inputs(200) {
		if err := h.Send(r); err != nil {
			releaseRecord(r) // rejected sends stay caller-owned
		}
	}
	h.Close()
	<-drained
	h.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > gbase+3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > gbase+3 {
		t.Fatalf("fused segment left goroutines behind after cancel: %d > %d", g, gbase+3)
	}
}

// TestFusedBoxFailureIsolation: errors and panics inside a fused box drop
// the record, count, and keep the segment running — same contract as the
// stand-alone box engine.
func TestFusedBoxFailureIsolation(t *testing.T) {
	faulty := NewBoxConcurrent("ff_box", MustParseSignature("(<seq>) -> (<seq>)"),
		func(args []any, out *Emitter) error {
			switch n := args[0].(int); {
			case n%7 == 3:
				return errors.New("synthetic failure")
			case n%7 == 5:
				panic("synthetic panic")
			default:
				return out.Out(1, n)
			}
		}, 1)
	net := Serial(Observe("ff_tap", nil), faulty)
	plan := MustCompile(net, WithInputType(RecType{NewVariant(Tag("seq"))}))
	if envFuseOn() && len(plan.FusionGroups()) != 1 {
		t.Fatal("chain should fuse")
	}
	var errCount int
	out, stats, err := plan.RunAll(context.Background(), seqInputs(70, nil),
		WithErrorHandler(func(error) { errCount++ }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Errorf("want 50 surviving records, got %d", len(out))
	}
	if errCount != 20 {
		t.Errorf("want 20 reported errors, got %d", errCount)
	}
	if got := stats.Counter("box.ff_box.panics"); got != 10 {
		t.Errorf("panics: want 10, got %d", got)
	}
}

// TestFusedGuardedRoutingPreserved: fusion must not disturb best-match
// routing — bare guarded filters stay filterNodes (runs < 2 never fuse), and
// a fused chain branch keeps the serial spine's signature.
func TestFusedGuardedRoutingPreserved(t *testing.T) {
	mkNet := func() Node {
		lo := MustFilter("{<n>} | <n> < 10 -> {<n>, <lo>}")
		hi := MustFilter("{<n>} | <n> >= 10 -> {<n>, <hi>}")
		chain := Serial(MustFilter("{<n>, <lo>} -> {<n>, <lo>}"), Observe("gr_tap", nil))
		// The catch-all branch keeps the static flow total: the checker
		// cannot know the two guards partition {<n>}.  Both layers are
		// deterministic so the merge order is a hard guarantee to compare.
		return Serial(ParallelDet(lo, hi), ParallelDet(chain,
			MustFilter("{<n>, <hi>} -> {<n>, <hi>}"),
			MustFilter("{<n>} -> {<n>, <neither>}")))
	}
	inputs := func() []*Record {
		return seqInputs(30, func(i int, r *Record) { r.SetTag("n", i) })
	}
	run := func(fuse bool) string {
		out, _, err := MustCompile(mkNet(), WithFusion(fuse)).
			RunAll(context.Background(), inputs(), WithBoxWorkers(1), WithStreamBatch(1))
		if err != nil {
			t.Fatal(err)
		}
		return renderStream(out)
	}
	if got, want := run(true), run(false); got != want {
		t.Fatalf("fused routing diverges:\n--- unfused ---\n%s--- fused ---\n%s", want, got)
	}
}

// runFusedDetProp is the detprop matrix (detprop_test.go) run in both
// execution modes: the fused plan must reproduce the un-fused reference
// byte-for-byte at every (W, B).
func runFusedDetProp(t *testing.T, mkNet func() Node, inputs func() []*Record) {
	t.Helper()
	var want string
	first := true
	for _, fuse := range []bool{false, true} {
		for _, w := range []int{1, 4, 16} {
			for _, b := range []int{1, 8, 64} {
				fuse, w, b := fuse, w, b
				t.Run(fmt.Sprintf("fuse=%v_W%d_B%d", fuse, w, b), func(t *testing.T) {
					plan, err := Compile(mkNet(), WithFusion(fuse))
					if err != nil {
						t.Fatal(err)
					}
					if fuse && envFuseOn() && len(plan.FusionGroups()) == 0 {
						t.Fatal("determinism net should contain fused segments")
					}
					out, _, err := plan.RunAll(context.Background(), inputs(),
						WithBoxWorkers(w), WithStreamBatch(b))
					if err != nil {
						t.Fatal(err)
					}
					got := renderStream(out)
					if first {
						want, first = got, false
						return
					}
					if got != want {
						t.Fatalf("fuse=%v W=%d B=%d diverges from reference:\n--- want ---\n%s--- got ---\n%s",
							fuse, w, b, want, got)
					}
				})
			}
		}
	}
}

// TestFusedDetPropPipeline: a fused chain downstream of a deterministic
// parallel — sort markers must cross the segment in FIFO position at any
// (W, B) in either mode.
func TestFusedDetPropPipeline(t *testing.T) {
	const n = 36
	mkNet := func() Node {
		first := ParallelDet(
			latencyBox("fda", "a", 400*time.Microsecond),
			latencyBox("fdb", "b", 150*time.Microsecond),
		)
		chain := Serial(
			MustFilter("{<seq>} -> {<seq>, <h>=<seq>*2}"),
			seqBox("fd_sq", func(n int) int { return n }),
			HideTags("h"),
			Observe("fd_tap", nil),
		)
		return Serial(first, chain)
	}
	inputs := func() []*Record {
		return seqInputs(n, func(i int, r *Record) {
			if i%2 == 0 {
				r.SetField("a", i)
			} else {
				r.SetField("b", i)
			}
		})
	}
	runFusedDetProp(t, mkNet, inputs)
}

// TestFusedDetPropNested: the nested-combinator detprop net with a fusible
// chain spliced between its barriers.
func TestFusedDetPropNested(t *testing.T) {
	const n = 24
	mkNet := func() Node {
		first := ParallelDet(
			latencyBox("fna", "a", 300*time.Microsecond),
			latencyBox("fnb", "b", 120*time.Microsecond),
		)
		chain := Serial(
			MustFilter("{<seq>} -> {<seq>, <k>=<seq>%3}"),
			Observe("fn_tap", nil),
		)
		second := SplitDet(latencyBox2("fns", 500*time.Microsecond), "k")
		return Serial(first, chain, second)
	}
	inputs := func() []*Record {
		return seqInputs(n, func(i int, r *Record) {
			if i%2 == 0 {
				r.SetField("a", i)
			} else {
				r.SetField("b", i)
			}
		})
	}
	runFusedDetProp(t, mkNet, inputs)
}

// TestFusedStarOperand: star replication over a fused operand — every
// unfolded replica executes the fused segment.
func TestFusedStarOperand(t *testing.T) {
	mkNet := func() Node {
		dec := NewBoxConcurrent("fst_dec", MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"),
			func(args []any, out *Emitter) error {
				n := args[0].(int)
				if n <= 0 {
					return out.Out(2, 0, 1)
				}
				return out.Out(1, n-1)
			}, 1)
		return NamedStar("fst_loop", Serial(dec, Observe("fst_tap", nil)),
			MustParsePattern("{<done>}"))
	}
	inputs := func() []*Record {
		return seqInputs(12, func(i int, r *Record) { r.SetTag("n", i%5) })
	}
	run := func(fuse bool) int {
		out, _, err := MustCompile(mkNet(), WithFusion(fuse)).
			RunAll(context.Background(), inputs(), WithBoxWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		return len(out)
	}
	if got, want := run(true), run(false); got != want {
		t.Fatalf("fused star output count %d != unfused %d", got, want)
	}
}

// TestFilterProgramEquivalence: the compiled slot program must agree with
// the interpretive applyInto on every supported shape, including flow
// inheritance, expression tags, zero-init tags and multi-output specs.
func TestFilterProgramEquivalence(t *testing.T) {
	cases := []struct {
		spec string
		rec  func() *Record
	}{
		{"{a,b} -> {a, z=b}", func() *Record {
			return NewRecord().SetField("a", 1).SetField("b", 2)
		}},
		{"{a,<t>} -> {a,<t>}", func() *Record {
			return NewRecord().SetField("a", 1).SetTag("t", 7)
		}},
		{"{a} -> {a,<t>}", func() *Record {
			return NewRecord().SetField("a", 1).SetTag("t", 9) // <t> not consumed: zero-init wins
		}},
		{"{<n>} -> {<n>=<n>+1, <m>=<n>*2}", func() *Record {
			return NewRecord().SetTag("n", 21)
		}},
		{"{a,<n>} -> {a}; {<n>=<n>-1}", func() *Record {
			return NewRecord().SetField("a", "x").SetTag("n", 3).SetField("extra", 5).SetTag("u", 1)
		}},
		{"{x} -> ", func() *Record {
			return NewRecord().SetField("x", 0).SetTag("keep", 4)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			spec := MustParseFilter(tc.spec)
			rec := tc.rec()
			prog := compileFilterProg(spec, rec.shape)
			if prog.fallback {
				t.Fatalf("program for %s fell back on shape %v", tc.spec, rec.ShapeKey())
			}
			want, err := spec.Apply(tc.rec())
			if err != nil {
				t.Fatal(err)
			}
			got, err := prog.apply(rec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if renderStream(got) != renderStream(want) {
				t.Fatalf("program output diverges:\n--- applyInto ---\n%s--- program ---\n%s",
					renderStream(want), renderStream(got))
			}
			for _, r := range got {
				releaseRecord(r)
			}
		})
	}
}

// TestFilterProgramFallback: shapes the program cannot serve exactly are
// marked fallback instead of guessed.
func TestFilterProgramFallback(t *testing.T) {
	// Source field absent from the input shape: applyInto owns the error.
	spec := MustParseFilter("{a} -> {z=a}")
	rec := NewRecord().SetTag("t", 1) // no field a
	if prog := compileFilterProg(spec, rec.shape); !prog.fallback {
		t.Error("missing source field should force fallback")
	}
	// Duplicate item names: later-wins/first-error ordering is the
	// interpreter's.
	dup := &FilterSpec{
		Pattern: Pattern{Variant: NewVariant(Tag("n"))},
		Outputs: [][]FilterItem{{
			{Name: "n", IsTag: true},
			{Name: "n", IsTag: true, Expr: MustParseTagExpr("<n>+1")},
		}},
	}
	rec2 := NewRecord().SetTag("n", 1)
	if prog := compileFilterProg(dup, rec2.shape); !prog.fallback {
		t.Error("duplicate output items should force fallback")
	}
}
