// Package core implements the S-Net coordination runtime — the paper's
// primary contribution (§4).
//
// S-Net turns functions into asynchronously executed, stateless
// stream-processing components ("boxes") connected by typed streams of
// records.  Records are non-recursive label/value collections: *fields*
// carry values that are entirely opaque to the coordination layer, *tags*
// carry integers visible to both layers.  Networks are composed from four
// combinators — serial composition (..), parallel composition (||), serial
// replication (**) and parallel replication (!!) — together with their
// deterministic single-symbol variants (|, *, !), housekeeping filters, and
// (as an S-Net language extension beyond the paper) synchrocells.
//
// Streams are Go channels; every box, filter, splitter and merger is a
// goroutine.  Nondeterministic merging is channel multiplexing;
// deterministic variants implement a sort-record protocol (see merge.go).
package core

import (
	"fmt"
	"strings"
)

// Record is an S-Net record: a set of labelled fields (opaque values) and
// tags (integers).  Records are not safe for concurrent mutation; the
// runtime hands each record to exactly one component at a time, which is the
// S-Net data-flow discipline.
//
// Internally a record is a pointer to an interned shape (the label set with
// a canonical slot layout, see shape.go) plus two flat value arrays aligned
// with the shape's slots.  Label lookups resolve to slot indices — no string
// hashing, no per-record maps — and records of the same type share one
// layout, which is what the routing tables key their memos on.
type Record struct {
	shape *shape
	fvals []any // field values, aligned with shape.fields
	tvals []int // tag values, aligned with shape.tags
	// pooled marks records acquired from the transport's record arena
	// (arena.go): only those return to the pool on release.  Records built
	// with NewRecord stay caller-owned — callers routinely keep and reuse
	// them — so releasing one is a no-op.
	pooled bool
}

// NewRecord returns an empty record.
func NewRecord() *Record {
	return &Record{shape: emptyShape}
}

// SetField associates a field label with a value and returns the record for
// chaining.
func (r *Record) SetField(name string, v any) *Record {
	if i, ok := r.shape.fieldSlot(name); ok {
		r.fvals[i] = v
		return r
	}
	next, pos := r.shape.transition(transAddField, name)
	r.shape = next
	r.fvals = append(r.fvals, nil)
	copy(r.fvals[pos+1:], r.fvals[pos:])
	r.fvals[pos] = v
	return r
}

// SetTag associates a tag label with an integer and returns the record for
// chaining.
func (r *Record) SetTag(name string, v int) *Record {
	if i, ok := r.shape.tagSlot(name); ok {
		r.tvals[i] = v
		return r
	}
	next, pos := r.shape.transition(transAddTag, name)
	r.shape = next
	r.tvals = append(r.tvals, 0)
	copy(r.tvals[pos+1:], r.tvals[pos:])
	r.tvals[pos] = v
	return r
}

// Field returns the value of a field and whether it is present.
func (r *Record) Field(name string) (any, bool) {
	if i, ok := r.shape.fieldSlot(name); ok {
		return r.fvals[i], true
	}
	return nil, false
}

// MustField returns the value of a field, panicking if absent (used by box
// implementations whose signature guarantees presence).
func (r *Record) MustField(name string) any {
	v, ok := r.Field(name)
	if !ok {
		panic(fmt.Sprintf("core: record %v has no field %q", r, name))
	}
	return v
}

// Tag returns the value of a tag and whether it is present.
func (r *Record) Tag(name string) (int, bool) {
	if i, ok := r.shape.tagSlot(name); ok {
		return r.tvals[i], true
	}
	return 0, false
}

// MustTag returns the value of a tag, panicking if absent.
func (r *Record) MustTag(name string) int {
	v, ok := r.Tag(name)
	if !ok {
		panic(fmt.Sprintf("core: record %v has no tag <%s>", r, name))
	}
	return v
}

// DeleteField removes a field if present.
func (r *Record) DeleteField(name string) {
	if _, ok := r.shape.fieldSlot(name); !ok {
		return
	}
	next, pos := r.shape.transition(transDelField, name)
	r.shape = next
	r.fvals = append(r.fvals[:pos], r.fvals[pos+1:]...)
}

// DeleteTag removes a tag if present.
func (r *Record) DeleteTag(name string) {
	if _, ok := r.shape.tagSlot(name); !ok {
		return
	}
	next, pos := r.shape.transition(transDelTag, name)
	r.shape = next
	r.tvals = append(r.tvals[:pos], r.tvals[pos+1:]...)
}

// HasLabel reports whether the record carries the given label.
func (r *Record) HasLabel(l Label) bool {
	if l.IsTag {
		_, ok := r.shape.tagSlot(l.Name)
		return ok
	}
	_, ok := r.shape.fieldSlot(l.Name)
	return ok
}

// FieldNames returns the sorted field labels.
func (r *Record) FieldNames() []string {
	return append([]string(nil), r.shape.fieldNames...)
}

// TagNames returns the sorted tag labels.
func (r *Record) TagNames() []string {
	return append([]string(nil), r.shape.tagNames...)
}

// NumLabels returns the total number of labels.
func (r *Record) NumLabels() int {
	return len(r.shape.fields) + len(r.shape.tags)
}

// Labels returns the record's type: the set of all its labels.
func (r *Record) Labels() Variant {
	v := make(Variant, r.NumLabels())
	for l := range r.shape.variant {
		v[l] = struct{}{}
	}
	return v
}

// Copy returns a shallow copy: field values are shared (they are opaque to
// S-Net and treated as immutable by convention), the slot arrays are fresh.
func (r *Record) Copy() *Record {
	return &Record{
		shape: r.shape,
		fvals: append([]any(nil), r.fvals...),
		tvals: append([]int(nil), r.tvals...),
	}
}

// copyInto re-shapes dst — which must be empty (freshly acquired) — into a
// copy of r, reusing dst's slot-array capacity.  It is the pool-aware spine
// of Copy used by runtime-internal copies.
func (r *Record) copyInto(dst *Record) *Record {
	dst.shape = r.shape
	dst.fvals = append(dst.fvals[:0], r.fvals...)
	dst.tvals = append(dst.tvals[:0], r.tvals...)
	return dst
}

// ShapeKey returns the canonical rendering of the record's label set —
// sorted field names, '|', sorted tag names.  Two records have the same
// ShapeKey iff they have the same type (Labels).  With interned shapes the
// key is precomputed on the shared layout, so this is a pointer chase; the
// routing tables themselves key on the shape pointer and never touch it.
func (r *Record) ShapeKey() string { return r.shape.key }

// shapeRef exposes the interned layout — the identity the per-shape memos
// (routing, matching, filter programs) key on.
func (r *Record) shapeRef() *shape { return r.shape }

// String renders the record as {field=value, ..., <tag>=n, ...} with sorted
// labels; large field values are elided to their type.
func (r *Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, k := range r.shape.fieldNames {
		if !first {
			b.WriteString(", ")
		}
		first = false
		switch v := r.fvals[i].(type) {
		case int, int64, float64, bool, string:
			fmt.Fprintf(&b, "%s=%v", k, v)
		default:
			fmt.Fprintf(&b, "%s=(%T)", k, v)
		}
	}
	for i, k := range r.shape.tagNames {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "<%s>=%d", k, r.tvals[i])
	}
	b.WriteByte('}')
	return b.String()
}
