// Package core implements the S-Net coordination runtime — the paper's
// primary contribution (§4).
//
// S-Net turns functions into asynchronously executed, stateless
// stream-processing components ("boxes") connected by typed streams of
// records.  Records are non-recursive label/value collections: *fields*
// carry values that are entirely opaque to the coordination layer, *tags*
// carry integers visible to both layers.  Networks are composed from four
// combinators — serial composition (..), parallel composition (||), serial
// replication (**) and parallel replication (!!) — together with their
// deterministic single-symbol variants (|, *, !), housekeeping filters, and
// (as an S-Net language extension beyond the paper) synchrocells.
//
// Streams are Go channels; every box, filter, splitter and merger is a
// goroutine.  Nondeterministic merging is channel multiplexing;
// deterministic variants implement a sort-record protocol (see merge.go).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Record is an S-Net record: a set of labelled fields (opaque values) and
// tags (integers).  Records are not safe for concurrent mutation; the
// runtime hands each record to exactly one component at a time, which is the
// S-Net data-flow discipline.
type Record struct {
	fields map[string]any
	tags   map[string]int
	// shape memoizes ShapeKey — the canonical rendering of the record's
	// label set used as the routing-table key.  It is invalidated by any
	// mutation that changes the label set (value-only updates keep it).
	// Like the record itself it is not safe for concurrent mutation.
	shape string
}

// NewRecord returns an empty record.
func NewRecord() *Record {
	return &Record{fields: map[string]any{}, tags: map[string]int{}}
}

// SetField associates a field label with a value and returns the record for
// chaining.
func (r *Record) SetField(name string, v any) *Record {
	if _, ok := r.fields[name]; !ok {
		r.shape = ""
	}
	r.fields[name] = v
	return r
}

// SetTag associates a tag label with an integer and returns the record for
// chaining.
func (r *Record) SetTag(name string, v int) *Record {
	if _, ok := r.tags[name]; !ok {
		r.shape = ""
	}
	r.tags[name] = v
	return r
}

// Field returns the value of a field and whether it is present.
func (r *Record) Field(name string) (any, bool) {
	v, ok := r.fields[name]
	return v, ok
}

// MustField returns the value of a field, panicking if absent (used by box
// implementations whose signature guarantees presence).
func (r *Record) MustField(name string) any {
	v, ok := r.fields[name]
	if !ok {
		panic(fmt.Sprintf("core: record %v has no field %q", r, name))
	}
	return v
}

// Tag returns the value of a tag and whether it is present.
func (r *Record) Tag(name string) (int, bool) {
	v, ok := r.tags[name]
	return v, ok
}

// MustTag returns the value of a tag, panicking if absent.
func (r *Record) MustTag(name string) int {
	v, ok := r.tags[name]
	if !ok {
		panic(fmt.Sprintf("core: record %v has no tag <%s>", r, name))
	}
	return v
}

// DeleteField removes a field if present.
func (r *Record) DeleteField(name string) {
	if _, ok := r.fields[name]; ok {
		r.shape = ""
		delete(r.fields, name)
	}
}

// DeleteTag removes a tag if present.
func (r *Record) DeleteTag(name string) {
	if _, ok := r.tags[name]; ok {
		r.shape = ""
		delete(r.tags, name)
	}
}

// HasLabel reports whether the record carries the given label.
func (r *Record) HasLabel(l Label) bool {
	if l.IsTag {
		_, ok := r.tags[l.Name]
		return ok
	}
	_, ok := r.fields[l.Name]
	return ok
}

// FieldNames returns the sorted field labels.
func (r *Record) FieldNames() []string {
	out := make([]string, 0, len(r.fields))
	for k := range r.fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TagNames returns the sorted tag labels.
func (r *Record) TagNames() []string {
	out := make([]string, 0, len(r.tags))
	for k := range r.tags {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumLabels returns the total number of labels.
func (r *Record) NumLabels() int { return len(r.fields) + len(r.tags) }

// Labels returns the record's type: the set of all its labels.
func (r *Record) Labels() Variant {
	v := make(Variant, r.NumLabels())
	for k := range r.fields {
		v[Label{Name: k}] = struct{}{}
	}
	for k := range r.tags {
		v[Label{Name: k, IsTag: true}] = struct{}{}
	}
	return v
}

// Copy returns a shallow copy: field values are shared (they are opaque to
// S-Net and treated as immutable by convention), label maps are fresh.
func (r *Record) Copy() *Record {
	c := &Record{
		fields: make(map[string]any, len(r.fields)),
		tags:   make(map[string]int, len(r.tags)),
	}
	for k, v := range r.fields {
		c.fields[k] = v
	}
	for k, v := range r.tags {
		c.tags[k] = v
	}
	c.shape = r.shape
	return c
}

// ShapeKey returns the canonical rendering of the record's label set —
// sorted field names, '|', sorted tag names — the key under which the
// routing tables memoize per-shape dispatch decisions.  Two records have the
// same ShapeKey iff they have the same type (Labels).  The key is cached on
// the record and survives value-only mutations, so a record crossing several
// routing points pays the sort once.
func (r *Record) ShapeKey() string {
	if r.shape != "" {
		return r.shape
	}
	var b strings.Builder
	b.Grow(8 * (len(r.fields) + len(r.tags) + 1))
	for i, k := range r.FieldNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	b.WriteByte('|')
	for i, k := range r.TagNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	r.shape = b.String()
	return r.shape
}

// String renders the record as {field=value, ..., <tag>=n, ...} with sorted
// labels; large field values are elided to their type.
func (r *Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range r.FieldNames() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		v := r.fields[k]
		switch v := v.(type) {
		case int, int64, float64, bool, string:
			fmt.Fprintf(&b, "%s=%v", k, v)
		default:
			fmt.Fprintf(&b, "%s=(%T)", k, v)
		}
	}
	for _, k := range r.TagNames() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "<%s>=%d", k, r.tags[k])
	}
	b.WriteByte('}')
	return b.String()
}

// tagEnv adapts a record's tags for tag-expression evaluation.
func (r *Record) tagEnv() map[string]int { return r.tags }
