package core

import "strings"

// BoxSignature declares a box interface (§4 of the paper):
//
//	box foo (a,<b>) -> (c) | (c,d,<e>)
//
// The input is an ordered tuple of labels — the order defines the argument
// order of the box function.  The output is a disjunction of ordered tuples
// — the order defines the argument order of snet_out for that variant.
// Dropping the ordering yields the box's type signature
// ({a,<b>} -> {c} | {c,d,<e>}) used for routing and inference.
type BoxSignature struct {
	In  []Label
	Out [][]Label
}

// InType returns the (single-variant) input type of the signature.
func (s *BoxSignature) InType() RecType { return RecType{NewVariant(s.In...)} }

// OutType returns the multivariant output type of the signature.
func (s *BoxSignature) OutType() RecType {
	out := make(RecType, len(s.Out))
	for i, vs := range s.Out {
		out[i] = NewVariant(vs...)
	}
	return out
}

func labelTuple(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (s *BoxSignature) String() string {
	outs := make([]string, len(s.Out))
	for i, o := range s.Out {
		outs[i] = labelTuple(o)
	}
	return labelTuple(s.In) + " -> " + strings.Join(outs, " | ")
}

// ParseSignature parses the paper's box signature notation, e.g.
// "(a,<b>) -> (c) | (c,d,<e>)".
func ParseSignature(src string) (*BoxSignature, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	in, err := p.parseLabelTuple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	var outs [][]Label
	for {
		o, err := p.parseLabelTuple()
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
		if !p.accept(tokPipe) {
			break
		}
	}
	if err := p.eof(); err != nil {
		return nil, err
	}
	sig := &BoxSignature{In: in, Out: outs}
	if err := sig.validate(src); err != nil {
		return nil, err
	}
	return sig, nil
}

// MustParseSignature is ParseSignature panicking on error.
func MustParseSignature(src string) *BoxSignature {
	s, err := ParseSignature(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *BoxSignature) validate(src string) error {
	dup := func(ls []Label) *Label {
		seen := Variant{}
		for _, l := range ls {
			if seen.Has(l) {
				return &l
			}
			seen[l] = struct{}{}
		}
		return nil
	}
	if l := dup(s.In); l != nil {
		return &SyntaxError{Input: src, Msg: "duplicate input label " + l.String()}
	}
	for _, o := range s.Out {
		if l := dup(o); l != nil {
			return &SyntaxError{Input: src, Msg: "duplicate output label " + l.String()}
		}
	}
	return nil
}

// parseLabelTuple parses "(a, <b>, c)"; the empty tuple "()" is allowed.
func (p *parser) parseLabelTuple() ([]Label, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []Label
	if p.accept(tokRParen) {
		return out, nil
	}
	for {
		l, err := p.parseLabel()
		if err != nil {
			return nil, err
		}
		out = append(out, l)
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return out, nil
	}
}
