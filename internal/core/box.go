package core

import (
	"context"
	"errors"
	"fmt"
)

// BoxFunc is the computation wrapped by a box.  It receives the values bound
// to the box signature's input labels, in signature order (tag labels arrive
// as int), and emits any number of output records through the emitter — the
// paper's snet_out interface.  Box functions must be stateless and must not
// retain args or emitted values after returning; the runtime may run many
// instances of the same box concurrently (one per replica).
//
// A returned error is reported to the run's error handler; the box then
// continues with the next record.
type BoxFunc func(args []any, out *Emitter) error

// ErrCancelled is returned by Emitter.Out when the run has been cancelled;
// box functions should return promptly when they see it.
var ErrCancelled = errors.New("core: run cancelled")

// Emitter delivers a box invocation's output records — the snet_out
// interface function of §4.  It is valid only for the duration of the box
// call it was passed to.
type Emitter struct {
	env      *runEnv
	out      *streamWriter
	box      *boxNode
	src      *Record
	consumed Variant
	stopped  bool
	emitted  int
	// buf, when non-nil, puts the emitter in buffer mode: outputs are
	// appended to the fused segment's stage buffer instead of crossing a
	// stream (fuse.go).  The pointer targets per-run exec state, never a
	// stack variable, so emitting stays allocation-free.
	buf *[]*Record
}

// Out emits one record according to output variant number `variant`
// (1-based, as in the paper's snet_out(1, x)).  vals must match the
// signature's label tuple for that variant: tag labels take int values.
// Excess labels of the input record are attached by flow inheritance unless
// the output already carries them.
func (e *Emitter) Out(variant int, vals ...any) error {
	if e.stopped {
		// The run is gone; nothing emitted from here on can reach the
		// output stream, so stop counting and fail fast.
		return ErrCancelled
	}
	if variant < 1 || variant > len(e.box.boxSig.Out) {
		return fmt.Errorf("core: box %s: snet_out variant %d out of range 1..%d",
			e.box.label, variant, len(e.box.boxSig.Out))
	}
	labels := e.box.boxSig.Out[variant-1]
	if len(vals) != len(labels) {
		return fmt.Errorf("core: box %s: snet_out variant %d needs %d values, got %d",
			e.box.label, variant, len(labels), len(vals))
	}
	rec := acquireRecord()
	for i, l := range labels {
		if l.IsTag {
			tv, ok := vals[i].(int)
			if !ok {
				releaseRecord(rec)
				return fmt.Errorf("core: box %s: value for tag <%s> must be int, got %T",
					e.box.label, l.Name, vals[i])
			}
			rec.SetTag(l.Name, tv)
		} else {
			rec.SetField(l.Name, vals[i])
		}
	}
	inheritInto(rec, e.src, e.consumed)
	if e.buf != nil {
		// Fused path: the segment runs on one goroutine with no stream
		// between stages, so no send is there to observe cancellation —
		// check it here so an emit-heavy box cannot outlive its run.
		if ctxDone(e.env.ctx) {
			releaseRecord(rec)
			e.stopped = true
			return ErrCancelled
		}
		e.env.trace(e.box.label, "out", rec)
		*e.buf = append(*e.buf, rec)
		e.emitted++
		return nil
	}
	e.env.trace(e.box.label, "out", rec)
	if !e.out.sendRecord(rec) {
		e.stopped = true
		return ErrCancelled
	}
	e.emitted++
	return nil
}

// Emitted reports how many records this invocation has emitted so far.
func (e *Emitter) Emitted() int { return e.emitted }

// Done exposes the run's cancellation signal.  Box functions are stateless
// user code with no context of their own; one that blocks (I/O, a long
// solve) must select on Done and return ErrCancelled so session release
// and service shutdown cannot leak its goroutine.
func (e *Emitter) Done() <-chan struct{} { return e.env.ctx.Done() }

// Context returns the run's context, for box bodies that call
// context-aware code (e.g. sched.Pool loops).
func (e *Emitter) Context() context.Context { return e.env.ctx }

// boxNode wraps a BoxFunc as a network component.
type boxNode struct {
	label   string
	boxSig  *BoxSignature
	fn      BoxFunc
	workers int // fixed invocation width; 0 inherits the run's WithBoxWorkers
	keys    boxStatKeys
}

// boxStatKeys are the node's stat-counter keys, concatenated once at
// construction so the per-invocation accounting never builds a string.
type boxStatKeys struct {
	instances, concurrency, inflight    string
	calls, emitted, cancelled, rejected string
	panics                              string
}

func makeBoxStatKeys(label string) boxStatKeys {
	p := "box." + label + "."
	return boxStatKeys{
		instances: p + "instances", concurrency: p + "concurrency", inflight: p + "inflight",
		calls: p + "calls", emitted: p + "emitted", cancelled: p + "cancelled",
		rejected: p + "rejected", panics: p + "panics",
	}
}

// NewBox declares a box with the given name, signature and function —
// the S-Net `box name (in) -> (out) | ...` declaration.  Its concurrency
// width is the run's default (WithBoxWorkers, GOMAXPROCS if unset).
func NewBox(name string, sig *BoxSignature, fn BoxFunc) Node {
	return NewBoxConcurrent(name, sig, fn, 0)
}

// NewBoxConcurrent is NewBox with a fixed per-box concurrency width: the
// node runs up to `workers` invocations of fn at a time regardless of the
// run's WithBoxWorkers setting.  workers == 0 inherits the run default;
// workers == 1 pins the box to strictly sequential invocation (for box
// functions whose statelessness the author does not trust).  Output order
// is preserved at any width (see boxengine.go).
func NewBoxConcurrent(name string, sig *BoxSignature, fn BoxFunc, workers int) Node {
	if name == "" {
		name = autoName("box")
	}
	if sig == nil {
		panic("core: NewBox: nil signature")
	}
	if fn == nil {
		panic("core: NewBox: nil box function")
	}
	if workers < 0 {
		workers = 0
	}
	return &boxNode{label: name, boxSig: sig, fn: fn, workers: workers,
		keys: makeBoxStatKeys(name)}
}

func (b *boxNode) name() string   { return b.label }
func (b *boxNode) String() string { return "box " + b.label + " " + b.boxSig.String() }

func (b *boxNode) sig(*checker) (RecType, RecType) {
	return b.boxSig.InType(), b.boxSig.OutType()
}

// width resolves the node's effective invocation width for one run.
func (b *boxNode) width(env *runEnv) int {
	w := b.workers
	if w == 0 {
		w = env.boxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (b *boxNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	if w := b.width(env); w > 1 {
		b.runConcurrent(env, in, out, w)
		return
	}
	defer out.close()
	in.autoFlush(out)
	env.stats.Add(b.keys.instances, 1)
	env.stats.SetMax(b.keys.concurrency, 1)
	consumed := NewVariant(b.boxSig.In...)
	invoked := false
	// One emitter and one argument buffer serve every invocation of this
	// instance: box functions must not retain either after returning (the
	// BoxFunc contract), so the loop resets rather than reallocates.
	em := &Emitter{env: env, out: out, box: b, consumed: consumed}
	argsBuf := make([]any, 0, len(b.boxSig.In))
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.mk != nil {
			if !out.send(it) {
				in.Discard()
				return
			}
			continue
		}
		rec := it.rec
		env.trace(b.label, "in", rec)
		args, ok := b.bindArgs(rec, argsBuf)
		if !ok {
			env.error(fmt.Errorf("core: box %s: input record %s does not match signature %s",
				b.label, rec, b.boxSig))
			env.stats.Add(b.keys.rejected, 1)
			releaseRecord(rec)
			continue
		}
		if !invoked {
			// The observed in-flight high-water mark is 1 by construction
			// here; record it so the key exists at any width.
			env.stats.SetMax(b.keys.inflight, 1)
			invoked = true
		}
		em.src, em.stopped, em.emitted = rec, false, 0
		b.invoke(env, args, em)
		em.src = nil
		// The invocation is over: the input record was consumed (its values
		// were bound into args or flow-inherited into fresh outputs), so it
		// returns to the arena before the next receive.
		releaseRecord(rec)
		b.account(env, em)
		if em.stopped || ctxDone(env.ctx) {
			in.Discard()
			return
		}
	}
}

// account settles one finished invocation's counters.  Completed
// invocations count under "box.<name>.calls" and their emissions under
// "box.<name>.emitted"; invocations cut short by run cancellation count
// under "box.<name>.cancelled" instead.  "Emitted" means accepted by the
// box's output stream: under run cancellation up to B-1 emissions batched
// in the writer's pending frame can still be dropped in flight (the
// transport's own "stream.records" counter retracts those; see ship).
func (b *boxNode) account(env *runEnv, em *Emitter) {
	if em.emitted > 0 {
		env.stats.Add(b.keys.emitted, int64(em.emitted))
	}
	if em.stopped {
		env.stats.Add(b.keys.cancelled, 1)
		return
	}
	env.stats.Add(b.keys.calls, 1)
}

// invoke runs the box function with panic isolation: a panicking box loses
// the current record but the network keeps running (failure injection tests
// rely on this).
func (b *boxNode) invoke(env *runEnv, args []any, em *Emitter) {
	defer func() {
		if r := recover(); r != nil {
			env.error(fmt.Errorf("core: box %s panicked: %v", b.label, r))
			env.stats.Add(b.keys.panics, 1)
		}
	}()
	if err := b.fn(args, em); err != nil && !errors.Is(err, ErrCancelled) {
		env.error(fmt.Errorf("core: box %s: %w", b.label, err))
	}
}

// bindArgs extracts the signature-ordered argument values from a record into
// buf (reused across invocations on the sequential path; pass nil to
// allocate).  Box functions must not retain the returned slice.
func (b *boxNode) bindArgs(rec *Record, buf []any) ([]any, bool) {
	args := buf[:0]
	for _, l := range b.boxSig.In {
		if l.IsTag {
			v, ok := rec.Tag(l.Name)
			if !ok {
				return nil, false
			}
			args = append(args, v)
		} else {
			v, ok := rec.Field(l.Name)
			if !ok {
				return nil, false
			}
			args = append(args, v)
		}
	}
	return args, true
}
