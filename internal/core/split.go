package core

import "fmt"

// splitNode is parallel replication A!!<tag>: an indexed family of replicas
// of A connected in parallel.  Every incoming record must carry the index
// tag; its value selects the replica, and any two records with the same tag
// value are guaranteed to reach the same replica (§4).  Replicas are created
// on demand.
type splitNode struct {
	label   string
	det     bool
	operand Node
	tag     string
}

// Split builds the nondeterministic parallel replicator, the paper's
// A !! <tag>: outputs merge as soon as they are produced.
func Split(operand Node, tag string) Node {
	return &splitNode{label: autoName("split"), operand: operand, tag: tag}
}

// SplitDet builds the deterministic parallel replicator A ! <tag>: the
// merged output preserves the causal order of the inputs.
func SplitDet(operand Node, tag string) Node {
	return &splitNode{label: autoName("split"), det: true, operand: operand, tag: tag}
}

// NamedSplit is Split with an explicit stats label, so experiments can read
// "split.<name>.replicas" (used to verify the paper's ≤9-replica bound and
// the %4 throttling of Fig. 3).
func NamedSplit(name string, operand Node, tag string) Node {
	return &splitNode{label: name, operand: operand, tag: tag}
}

// NamedSplitDet is SplitDet with an explicit stats label.
func NamedSplitDet(name string, operand Node, tag string) Node {
	return &splitNode{label: name, det: true, operand: operand, tag: tag}
}

func (n *splitNode) name() string { return n.label }

func (n *splitNode) String() string {
	op := " !! "
	if n.det {
		op = " ! "
	}
	return "(" + n.operand.String() + op + "<" + n.tag + ">)"
}

func (n *splitNode) sig(c *checker) (RecType, RecType) {
	opIn, opOut := n.operand.sig(c)
	in := make(RecType, len(opIn))
	for i, v := range opIn {
		in[i] = v.Union(NewVariant(Tag(n.tag)))
	}
	if len(in) == 0 {
		in = RecType{NewVariant(Tag(n.tag))}
	}
	return in, opOut
}

func (n *splitNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	f := newFanout(env, n.det, in)
	ports := map[int]*branchPort{}
	mergeDone := make(chan struct{})
	go func() {
		f.mergeLoop(out, f.level)
		close(mergeDone)
	}()
	for {
		it, ok := in.recv()
		if !ok {
			break
		}
		if it.mk != nil {
			if !f.forwardMarker(it.mk) {
				break
			}
			continue
		}
		rec := it.rec
		v, ok := rec.Tag(n.tag)
		if !ok {
			env.error(fmt.Errorf("core: split %s: record %s lacks index tag <%s>",
				n.label, rec, n.tag))
			env.stats.Add("split."+n.label+".untagged", 1)
			continue
		}
		// Fold the tag value into the replica-width cap; records with
		// equal tag values still share a replica.
		key := v % env.maxWidth
		if key < 0 {
			key += env.maxWidth
		}
		port := ports[key]
		if port == nil {
			env.stats.Add("split."+n.label+".replicas", 1)
			env.stats.SetMax("split."+n.label+".width", int64(len(ports)+1))
			port = f.addBranch(n.operand)
			ports[key] = port
		}
		if !f.route(port, rec) || !f.afterRoute() {
			break
		}
	}
	in.Discard()
	f.finish()
	<-mergeDone
}
