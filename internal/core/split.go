package core

import (
	"fmt"
	"time"
)

// splitNode is parallel replication A!!<tag>: an indexed family of replicas
// of A connected in parallel.  Every incoming record must carry the index
// tag; its value selects the replica, and any two records with the same tag
// value are guaranteed to reach the same replica (§4).  Replicas are created
// on demand and reclaimed on demand: the in-band close protocol
// (NewReplicaClose / NewReplicaCloseAck) retires one replica in FIFO
// position with the data, and WithReplicaIdleReap sweeps replicas whose key
// has gone quiet.  "split.<name>.replicas" is therefore a live gauge — it
// counts replicas currently running, not replicas ever created.
type splitNode struct {
	label   string
	det     bool
	operand Node
	tag     string
	// uncapped exempts this split from the run's WithMaxSplitWidth modulo
	// folding — the session-multiplexing configuration, where distinct tag
	// values must never share a replica (SessionSplit).
	uncapped bool
}

// Split builds the nondeterministic parallel replicator, the paper's
// A !! <tag>: outputs merge as soon as they are produced.
func Split(operand Node, tag string) Node {
	return &splitNode{label: autoName("split"), operand: operand, tag: tag}
}

// SplitDet builds the deterministic parallel replicator A ! <tag>: the
// merged output preserves the causal order of the inputs.
func SplitDet(operand Node, tag string) Node {
	return &splitNode{label: autoName("split"), det: true, operand: operand, tag: tag}
}

// NamedSplit is Split with an explicit stats label, so experiments can read
// "split.<name>.replicas" (used to verify the paper's ≤9-replica bound and
// the %4 throttling of Fig. 3).
func NamedSplit(name string, operand Node, tag string) Node {
	return &splitNode{label: name, operand: operand, tag: tag}
}

// NamedSplitDet is SplitDet with an explicit stats label.
func NamedSplitDet(name string, operand Node, tag string) Node {
	return &splitNode{label: name, det: true, operand: operand, tag: tag}
}

// SessionSplit is NamedSplit exempted from the run's WithMaxSplitWidth
// modulo folding: distinct tag values always get distinct replicas.  It is
// the session-multiplexing combinator of the service layer — one replica of
// the wrapped network per live session — where folding two sessions onto
// one replica would mix their state and break the per-replica close
// protocol.  The replica count is bounded by the caller (the service's
// session cap), not by the run option.  SessionSplit is also exempt from
// WithReplicaIdleReap: session replicas hold live client state between
// requests and are retired deterministically through the close protocol,
// never by idle sweep.
func SessionSplit(name string, operand Node, tag string) Node {
	return &splitNode{label: name, operand: operand, tag: tag, uncapped: true}
}

func (n *splitNode) name() string { return n.label }

func (n *splitNode) String() string {
	op := " !! "
	if n.det {
		op = " ! "
	}
	return "(" + n.operand.String() + op + "<" + n.tag + ">)"
}

func (n *splitNode) sig(c *checker) (RecType, RecType) {
	opIn, opOut := n.operand.sig(c)
	in := make(RecType, len(opIn))
	for i, v := range opIn {
		in[i] = v.Union(NewVariant(Tag(n.tag)))
	}
	if len(in) == 0 {
		in = RecType{NewVariant(Tag(n.tag))}
	}
	return in, opOut
}

// foldKey maps a tag value onto the replica key: folded into the run's
// width cap by modulo (records with equal tag values still share a
// replica), or taken verbatim for session splits — sessions must never
// share a replica.
func foldKey(v int, uncapped bool, maxWidth int) int {
	if uncapped {
		return v
	}
	key := v % maxWidth
	if key < 0 {
		key += maxWidth
	}
	return key
}

func (n *splitNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	f := newFanout(env, n.det, in)
	ports := map[int]*branchPort{}
	reap := env.replicaIdle
	if n.uncapped {
		reap = 0 // session replicas are closed by protocol, never swept
	}
	var lastSeen map[int]time.Time
	var nextSweep time.Time
	if reap > 0 {
		lastSeen = map[int]time.Time{}
		nextSweep = time.Now().Add(reap)
	}
	mergeDone := make(chan struct{})
	go func() {
		f.mergeLoop(out, f.level)
		close(mergeDone)
	}()

	// retire runs the splitter half of the close protocol for one key:
	// close the replica's input, drop it from the routing table, decrement
	// the live-replica gauge.  sentinel (the acknowledgement record, if
	// requested) is emitted by the merger after the replica's last record —
	// or immediately when no replica exists.
	retire := func(key int, sentinel *Record, reason string) bool {
		port := ports[key]
		if port == nil {
			if sentinel != nil {
				return f.emitDirect(sentinel)
			}
			return true
		}
		delete(ports, key)
		if lastSeen != nil {
			delete(lastSeen, key)
		}
		env.stats.Add("split."+n.label+".replicas", -1)
		env.stats.Add("split."+n.label+"."+reason, 1)
		return f.retireBranch(port, sentinel)
	}
	// sweep reaps every replica idle for at least reap.
	sweep := func(now time.Time) bool {
		for key, seen := range lastSeen {
			if now.Sub(seen) >= reap {
				if !retire(key, nil, "reaped") {
					return false
				}
			}
		}
		nextSweep = now.Add(reap)
		return true
	}

	for {
		var it item
		var ok bool
		if reap > 0 {
			var timedOut bool
			it, ok, timedOut = in.recvTimeout(reap)
			if timedOut {
				if !sweep(time.Now()) {
					break
				}
				continue
			}
		} else {
			it, ok = in.recv()
		}
		if !ok {
			break
		}
		if it.mk != nil {
			if !f.forwardMarker(it.mk) {
				break
			}
			continue
		}
		rec := it.rec
		v, ok := rec.Tag(n.tag)
		if IsReplicaClose(rec) {
			// A close record lacking this split's index tag is addressed
			// to some other split: forward it downstream (merge order, not
			// FIFO with records still inside this split's replicas).
			if !ok {
				if !f.emitDirect(rec) {
					break
				}
				continue
			}
			var sentinel *Record
			if wantsCloseAck(rec) {
				sentinel = rec // forwarded downstream as the drain barrier
			} else {
				releaseRecord(rec) // consumed by the split itself
			}
			if !retire(foldKey(v, n.uncapped, env.maxWidth), sentinel, "closed") {
				break
			}
			continue
		}
		if !ok {
			env.error(fmt.Errorf("core: split %s: record %s lacks index tag <%s>",
				n.label, rec, n.tag))
			env.stats.Add("split."+n.label+".untagged", 1)
			releaseRecord(rec) // dropped, not forwarded
			continue
		}
		key := foldKey(v, n.uncapped, env.maxWidth)
		port := ports[key]
		if port == nil {
			env.stats.Add("split."+n.label+".replicas", 1)
			env.stats.SetMax("split."+n.label+".width", int64(len(ports)+1))
			port = f.addBranch(n.operand)
			ports[key] = port
		}
		if reap > 0 {
			now := time.Now()
			lastSeen[key] = now
			// A stream busy enough never to idle out still reaps: sweep
			// opportunistically once per reap interval.
			if now.After(nextSweep) && !sweep(now) {
				break
			}
		}
		if !f.route(port, rec) || !f.afterRoute() {
			break
		}
	}
	in.Discard()
	f.finish()
	<-mergeDone
}
