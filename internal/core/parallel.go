package core

import (
	"fmt"
	"strings"
	"sync"
)

// parallelNode is parallel composition: incoming records are routed to the
// branch whose input type matches best; branch outputs are merged (§4).
// Note the absence of run state: networks are blueprints shared by any
// number of concurrent runs (service sessions), so even a humble rotation
// counter must live in run, not on the node (it used to live here, which
// was a data race between sessions; see TestSharedNetworkConcurrentSessions).
type parallelNode struct {
	label    string
	det      bool
	branches []Node

	// Per-branch routing counters and the unroutable key, concatenated once
	// at construction: dispatch accounting is per record and must not build
	// strings.
	branchKeys  []string
	kUnroutable string

	// table is the node's compiled dispatch table — a pure function of the
	// branch list (accepted types and guards), never of a run, so it is
	// cached on the node and shared by every run: built eagerly by Compile,
	// lazily on first use under the legacy Start path.
	tableOnce sync.Once
	table     *routeTable
}

// Parallel builds the nondeterministic parallel combinator (A||B); it
// accepts two or more branches.  Records are routed by best match of the
// record's type against the branch input types; outputs merge as soon as
// they are produced.
func Parallel(branches ...Node) Node {
	return newParallel(false, branches)
}

// ParallelDet builds the deterministic parallel combinator (A|B): routing is
// identical, but the merged output preserves the causal order of the inputs
// (outputs of input n precede outputs of input n+1), and ties in match score
// resolve to the leftmost branch.
func ParallelDet(branches ...Node) Node {
	return newParallel(true, branches)
}

func newParallel(det bool, branches []Node) Node {
	if len(branches) < 2 {
		panic("core: parallel composition needs at least two branches")
	}
	label := autoName("parallel")
	keys := make([]string, len(branches))
	for i := range branches {
		keys[i] = fmt.Sprintf("parallel.%s.branch%d", label, i)
	}
	return &parallelNode{label: label, det: det, branches: branches,
		branchKeys: keys, kUnroutable: "parallel." + label + ".unroutable"}
}

func (n *parallelNode) name() string { return n.label }

func (n *parallelNode) String() string {
	op := " || "
	if n.det {
		op = " | "
	}
	parts := make([]string, len(n.branches))
	for i, b := range n.branches {
		parts[i] = b.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}

func (n *parallelNode) sig(c *checker) (RecType, RecType) {
	var in, out RecType
	for _, b := range n.branches {
		bi, bo := b.sig(c)
		in = in.Union(bi)
		out = out.Union(bo)
	}
	return in, out
}

// recordScorer lets a node refine its routing score beyond its static input
// type; filters use it so pattern guards participate in best-match routing.
type recordScorer interface {
	score(rec *Record) int
}

// routes returns the node's compiled dispatch table, building it on first
// use.
func (n *parallelNode) routes() *routeTable {
	n.tableOnce.Do(func() { n.table = buildRouteTable(n.det, n.branches) })
	return n.table
}

func (n *parallelNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	f := newFanout(env, n.det, in)
	ports := make([]*branchPort, len(n.branches))
	for i, b := range n.branches {
		ports[i] = f.addBranch(b)
	}
	// Precomputed shape-keyed dispatch is the default; WithLegacyRouting
	// restores the per-record scoring loop (the E16/BenchmarkRouting
	// baseline).
	var table *routeTable
	var scorers []func(*Record) int
	if env.legacyRouting {
		scorers = legacyScorers(n.branches)
	} else {
		table = n.routes()
	}
	mergeDone := make(chan struct{})
	go func() {
		f.mergeLoop(out, f.level)
		close(mergeDone)
	}()
	// Per-run rotation counter for nondeterministic tie-breaking: "one is
	// selected non-deterministically" among equally-scored branches.
	rr := 0
	for {
		it, ok := in.recv()
		if !ok {
			break
		}
		if it.mk != nil {
			if !f.forwardMarker(it.mk) {
				break
			}
			continue
		}
		rec := it.rec
		var chosen int
		if table != nil {
			chosen = table.dispatch(rec, &rr)
		} else {
			chosen = legacyDispatch(scorers, rec, n.det, &rr)
		}
		if chosen < 0 {
			env.error(&NoRouteError{
				Net:      n.label,
				Record:   rec.String(),
				Shape:    rec.Labels(),
				Branches: n.routes().accept,
			})
			env.stats.Add(n.kUnroutable, 1)
			releaseRecord(rec) // dropped, not forwarded
			continue
		}
		env.stats.Add(n.branchKeys[chosen], 1)
		if !f.route(ports[chosen], rec) || !f.afterRoute() {
			break
		}
	}
	in.Discard()
	f.finish()
	<-mergeDone
}
