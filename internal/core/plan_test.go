package core

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// The acceptance scenario of the compile-then-run redesign: a Parallel
// branch no record from the producer can ever reach compiles to a
// structured TypeError with a node path — previously the records silently
// all took the other branch (and records aimed at the dead branch failed
// only at runtime).
func TestCompileRejectsUnreachableParallelBranch(t *testing.T) {
	net := Serial(
		NewBox("p", MustParseSignature("(n) -> (a,b)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[0], args[0]) }),
		Parallel(
			routeBox("q", Field("a"), Field("b")),
			routeBox("r", Field("a"), Field("c")), // nothing upstream produces {a,c}
		),
	)
	plan, err := Compile(net)
	if err == nil {
		t.Fatal("Compile accepted a network with an unreachable branch")
	}
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CompileError", err)
	}
	var te *TypeError
	if !errors.As(err, &te) {
		t.Fatalf("CompileError does not unwrap to *TypeError: %v", err)
	}
	if te.Code != ErrCodeUnreachable {
		t.Fatalf("code = %q, want %q (err: %v)", te.Code, ErrCodeUnreachable, err)
	}
	if !strings.Contains(te.Path, "/branch[1]/") || !strings.Contains(te.Path, "parallel#") {
		t.Fatalf("path %q does not locate the branch", te.Path)
	}
	if te.Subject() == nil || te.Subject().name() != "r" {
		t.Fatalf("subject = %v", te.Subject())
	}
	// The plan is still returned and still runs (the legacy-compatibility
	// contract): records route to the live branch.
	out, _, rerr := plan.RunAll(context.Background(),
		[]*Record{NewRecord().SetField("n", 1)})
	if rerr != nil || len(out) != 1 {
		t.Fatalf("plan with type errors did not run: out=%d err=%v", len(out), rerr)
	}
}

func TestCompileNoRouteVariant(t *testing.T) {
	net := Parallel(
		routeBox("ab", Field("a"), Field("b")),
		routeBox("ac", Field("a"), Field("c")),
	)
	// Inferred input is {a,b}|{a,c}: both route, compile is clean.
	if _, err := Compile(net); err != nil {
		t.Fatalf("inferred-input compile failed: %v", err)
	}
	// A declared input type with a variant no branch accepts is a definite
	// compile error — the failure that used to be a runtime "matches no
	// branch".
	_, err := Compile(net, WithInputType(RecType{NewVariant(Field("a"))}))
	var te *TypeError
	if !errors.As(err, &te) || te.Code != ErrCodeNoRoute {
		t.Fatalf("err = %v, want no-route TypeError", err)
	}
	if !te.Variant.Equal(NewVariant(Field("a"))) {
		t.Fatalf("variant = %v", te.Variant)
	}
}

func TestCompileBoxReject(t *testing.T) {
	net := Serial(
		NewBox("a", MustParseSignature("(x) -> (y)"), nopFn),
		NewBox("b", MustParseSignature("(y,z) -> (w)"), nopFn),
	)
	// {y} does not satisfy (y,z); inheritance cannot be assumed for the
	// inferred input {x}, so this is definite.
	_, err := Compile(net)
	var te *TypeError
	if !errors.As(err, &te) || te.Code != ErrCodeBoxReject {
		t.Fatalf("err = %v, want box-reject TypeError", err)
	}
	// Declaring a wider input type makes inheritance carry z through a, and
	// the same network compiles.
	if _, err := Compile(net, WithInputType(RecType{NewVariant(Field("x"), Field("z"))})); err != nil {
		t.Fatalf("widened input still fails: %v", err)
	}
}

func TestCompileMissingSplitTag(t *testing.T) {
	net := Serial(
		NewBox("a", MustParseSignature("(x) -> (y)"), nopFn),
		Split(NewBox("b", MustParseSignature("(y) -> (z)"), nopFn), "k"),
	)
	// Inference adds <k> to the split's input, but records produced by box
	// a never carry it.
	_, err := Compile(net, WithInputType(RecType{NewVariant(Field("x"))}))
	var te *TypeError
	if !errors.As(err, &te) || te.Code != ErrCodeMissingTag {
		t.Fatalf("err = %v, want missing-index-tag TypeError", err)
	}
}

func TestCompileReservedLabelProgrammatic(t *testing.T) {
	// The textual parsers refuse reserved labels; a programmatically built
	// signature bypasses them and must be caught at compile time.
	net := NewBox("evil", &BoxSignature{
		In:  []Label{Tag("__snet_session")},
		Out: [][]Label{{Tag("__snet_session")}},
	}, nopFn)
	_, err := Compile(net)
	var te *TypeError
	if !errors.As(err, &te) || te.Code != ErrCodeReserved {
		t.Fatalf("err = %v, want reserved-label TypeError", err)
	}
	// The runtime's own SessionSplit is exempt: its reserved index tag is
	// the mechanism, not a violation.
	wrapped := SessionSplit("mux", routeBox("id", Field("a")), "__snet_session")
	if _, err := Compile(wrapped); err != nil {
		t.Fatalf("SessionSplit flagged: %v", err)
	}
}

func TestCompileDetShadowedDuplicateBranch(t *testing.T) {
	// Deterministic parallel resolves ties leftmost, so an exact duplicate
	// of an earlier branch can never win; nondeterministic rotation keeps
	// both reachable.
	dup := func(det bool) Node {
		a := routeBox("a1", Field("a"))
		b := routeBox("a2", Field("a"))
		if det {
			return ParallelDet(a, b)
		}
		return Parallel(a, b)
	}
	_, err := Compile(dup(true))
	var te *TypeError
	if !errors.As(err, &te) || te.Code != ErrCodeUnreachable {
		t.Fatalf("det duplicate: err = %v, want unreachable-branch", err)
	}
	if _, err := Compile(dup(false)); err != nil {
		t.Fatalf("nondet duplicate flagged: %v", err)
	}
}

func TestCompileCleanStarPipeline(t *testing.T) {
	// The paper's Fig. 1 shape: computeOpts .. (solveOneLevel ** {<done>}).
	net := Serial(
		NewBox("computeOpts", MustParseSignature("(board) -> (board,opts)"), nopFn),
		Star(NewBox("solveOneLevel",
			MustParseSignature("(board,opts) -> (board,opts) | (board,<done>)"), nopFn),
			MustParsePattern("{<done>}")),
	)
	plan, err := Compile(net)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(plan.TypeErrors()) != 0 {
		t.Fatalf("type errors: %v", plan.TypeErrors())
	}
	if !plan.In()[0].Equal(NewVariant(Field("board"))) {
		t.Fatalf("in = %v", plan.In())
	}
	if len(plan.Out()) != 1 || !plan.Out()[0].Has(Tag("done")) {
		t.Fatalf("out = %v", plan.Out())
	}
}

func TestCompileStarGuardedExit(t *testing.T) {
	// A guarded exit pattern (Fig. 3's {<level>} | <level> > 40) may fail
	// at runtime, so the matching variant must still flow into the operand.
	inc := NewBox("lvl", MustParseSignature("(board,<level>) -> (board,<level>)"), nopFn)
	net := Star(inc, MustParsePattern("{<level>} | <level> > 40"))
	plan, err := Compile(net, WithInputType(RecType{NewVariant(Field("board"), Tag("level"))}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(plan.Out()) != 1 {
		t.Fatalf("out = %v", plan.Out())
	}
}

func TestPlanTopologyJSON(t *testing.T) {
	net := Serial(
		NewBox("inc", MustParseSignature("(<n>) -> (<n>)"), nopFn),
		Parallel(
			MustFilter("{<n>} -> {<n>=<n>*2}"),
			Split(routeBox("w", Field("a")), "k"),
		),
	)
	plan, _ := Compile(net) // branch types overlap; errors irrelevant here
	topo := plan.Topology()
	if topo.Kind != "serial" || len(topo.Children) != 2 {
		t.Fatalf("root topo: %+v", topo)
	}
	par := topo.Children[1]
	if par.Kind != "parallel" || len(par.Children) != 2 {
		t.Fatalf("parallel topo: %+v", par)
	}
	if par.Children[1].Kind != "split" || par.Children[1].Tag != "k" {
		t.Fatalf("split topo: %+v", par.Children[1])
	}
	if !strings.Contains(par.Children[1].Path, "/branch[1]/") {
		t.Fatalf("split path: %q", par.Children[1].Path)
	}
	box := topo.Children[0]
	if box.Kind != "box" || box.Sig != "(<n>) -> (<n>)" {
		t.Fatalf("box topo: %+v", box)
	}
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != "serial" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestPlanStartSharesTables(t *testing.T) {
	net := Parallel(routeBox("ab", Field("a"), Field("b")), routeBox("c", Field("c")))
	plan, err := Compile(net)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pn := net.(*parallelNode)
	if pn.table == nil {
		t.Fatal("Compile did not build the routing table eagerly")
	}
	for i := 0; i < 3; i++ {
		out, _, err := plan.RunAll(context.Background(),
			[]*Record{NewRecord().SetField("a", 1).SetField("b", 2)})
		if err != nil || len(out) != 1 {
			t.Fatalf("run %d: out=%d err=%v", i, len(out), err)
		}
	}
	if n := pn.table.size.Load(); n != 1 {
		t.Fatalf("memo entries after 3 runs of one shape = %d, want 1", n)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile(ParallelDet(routeBox("a1", Field("a")), routeBox("a2", Field("a"))))
}

// TestCompiledNeverNoRoute is the property tying the static and dynamic
// halves together: for randomly generated networks, whenever Compile
// accepts, feeding records shaped exactly like the inferred input variants
// never produces ErrNoRoute at runtime.
func TestCompiledNeverNoRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fields := []string{"a", "b", "c", "d"}
	randEcho := func(id int) Node {
		in := Variant{}
		for _, f := range fields {
			if rng.Intn(2) == 0 {
				in[Field(f)] = struct{}{}
			}
		}
		return routeBox("g"+strings.Repeat("x", id%3)+string(rune('a'+id%26)), in.Labels()...)
	}
	var build func(depth, id int) Node
	build = func(depth, id int) Node {
		if depth <= 0 || rng.Intn(3) == 0 {
			return randEcho(rng.Intn(1000))
		}
		switch rng.Intn(3) {
		case 0:
			return Serial(build(depth-1, id*2), build(depth-1, id*2+1))
		case 1:
			return Parallel(build(depth-1, id*2), build(depth-1, id*2+1))
		default:
			return ParallelDet(build(depth-1, id*2), build(depth-1, id*2+1))
		}
	}
	accepted := 0
	for trial := 0; trial < 300; trial++ {
		net := build(3, 1)
		plan, err := Compile(net)
		if err != nil {
			continue // rejected networks are outside the property
		}
		accepted++
		var inputs []*Record
		for _, v := range plan.In() {
			r := NewRecord()
			for _, l := range v.Labels() {
				if l.IsTag {
					r.SetTag(l.Name, rng.Intn(8))
				} else {
					r.SetField(l.Name, trial)
				}
			}
			inputs = append(inputs, r)
		}
		_, stats, rerr := plan.RunAll(context.Background(), inputs)
		if rerr != nil {
			t.Fatalf("trial %d: run error %v", trial, rerr)
		}
		for _, k := range stats.Keys() {
			if strings.HasSuffix(k, ".unroutable") && stats.Counter(k) > 0 {
				t.Fatalf("trial %d: Compile accepted %s but %s=%d for inputs %v",
					trial, net, k, stats.Counter(k), inputs)
			}
		}
	}
	if accepted < 30 {
		t.Fatalf("only %d/300 random networks accepted; property undertested", accepted)
	}
}

// A node instance may appear at several graph positions (shared sub-nets,
// or a .snet net referenced twice); the flow pass must route variants
// through every occurrence, not just the first, or the no-ErrNoRoute
// guarantee breaks downstream of the second one.
func TestCompileSharedNodeInstances(t *testing.T) {
	p := Parallel(routeBox("pa", Field("a")), routeBox("pb", Field("b")))
	tail := Parallel(routeBox("qa", Field("a")), routeBox("qb", Field("b")))
	net := Serial(p, Serial(p, tail))
	plan, err := Compile(net)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	out, stats, rerr := plan.RunAll(context.Background(),
		[]*Record{NewRecord().SetField("a", 1)})
	if rerr != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), rerr)
	}
	for _, k := range stats.Keys() {
		if strings.HasSuffix(k, ".unroutable") && stats.Counter(k) > 0 {
			t.Fatalf("Compile accepted but %s=%d", k, stats.Counter(k))
		}
	}
}

// Downstream of a synchrocell the variant set is approximate, so a branch
// the approximation never feeds must warn, not hard-error: the sync's
// merged record can carry inherited labels the analysis dropped.
func TestUnreachableDowngradesAfterSync(t *testing.T) {
	net := Serial(
		Sync(MustParsePattern("{a}"), MustParsePattern("{b}")),
		Parallel(
			routeBox("ab", Field("a"), Field("b")),
			routeBox("abe", Field("a"), Field("b"), Field("extra")),
		),
	)
	plan, err := Compile(net, WithInputType(RecType{
		NewVariant(Field("a"), Field("extra")), NewVariant(Field("b"))}))
	if err != nil {
		t.Fatalf("Compile hard-failed on an approximate finding: %v", err)
	}
	found := false
	for _, d := range plan.Warnings() {
		if d.Warning && strings.Contains(d.Msg, "unreachable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unreachable warning, got %v", plan.Warnings())
	}
	// And the branch really is reachable at runtime: {a,extra}+{b} merge to
	// {a,b,extra}, which routes to abe.
	_, stats, rerr := plan.RunAll(context.Background(), []*Record{
		NewRecord().SetField("a", 1).SetField("extra", 2),
		NewRecord().SetField("b", 3),
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	routed := false
	for _, k := range stats.Keys() {
		if strings.HasSuffix(k, ".branch1") && stats.Counter(k) > 0 {
			routed = true
		}
	}
	if !routed {
		t.Fatalf("merged record did not reach branch 1: %v", stats.Snapshot())
	}
}
