package core

// The structured graph API of a compiled Plan.
//
// Topology (plan.go) is the *serializable* view of the typed graph — strings
// all the way down, built for JSON.  GraphNode is the *analyzable* view: the
// same tree, but carrying the structured artifacts a static-analysis pass
// needs (patterns as Pattern values, the underlying Node identity for
// source-position mapping, split/star configuration) without exposing the
// unexported node types themselves.  internal/analysis consumes it together
// with the Flow* accessors below.
//
// Both views are built from Plan.Root(), the un-fused blueprint — never
// from the fusion-rewritten execution tree (fuse.go) — so analysis findings
// and flow facts see through fusion groups: every constituent stage of a
// fused segment keeps its own GraphNode, path and flow facts.  Which stages
// are fused is reported separately (Topology.FusionGroups).

// GraphNode is one node of the compiled network's structured graph.  Paths
// and kinds match Topology exactly, so flow facts recorded by the compile
// pass (FlowIn/FlowOut/FlowExact) can be looked up by Path.
type GraphNode struct {
	Kind string // box, filter, sync, observe, hide, serial, parallel, star, split, node
	Name string
	Path string
	Det  bool

	// Node is the underlying blueprint node — the identity front ends map
	// back to source positions (cf. TypeError.Subject).
	Node Node

	In, Out RecType // accepted / produced variants (bottom-up signature)

	BoxSig     *BoxSignature // box only
	Filter     *FilterSpec   // filter only
	Patterns   []Pattern     // sync only: the join patterns
	Exit       *Pattern      // star only: the exit pattern
	Tag        string        // split only: the index tag
	Uncapped   bool          // split only: SessionSplit (width-fold exempt)
	HiddenTags []string      // hide only: tags deleted from passing records

	// Workers is the box's pinned invocation width W (box only;
	// NewBoxConcurrent).  0 means the box inherits the run's WithBoxWorkers
	// width, so a capacity analysis must substitute its assumed run width.
	// The box engine holds up to BoxEngineHold(W) records: W in flight plus
	// the reorder stage's completed-but-unreleased slots.
	Workers int

	// Feedback marks the node as owning the graph's only cyclic edge shape
	// (star only): each lazily-unfolded stage's chain port feeds the next
	// replica of the same operand, so records that never satisfy the exit
	// pattern circulate — the wait-for structure the deadlock analysis walks.
	// All other edges of a compiled plan form a tree and cannot cycle.
	Feedback bool

	Children []*GraphNode
}

// The static capacity model of the runtime's blocking points.  These are
// the single source of truth shared by the transport layer and the
// occupancy analysis (internal/analysis): if a buffer is added or resized
// in the runtime, the bound formula changes here, in one place.

// StreamCapacity returns the worst-case number of in-flight items on one
// stream edge: `buffer` queued frames of up to `batch` items each, plus the
// writer's pending batch (up to `batch` items accumulated before the next
// flush), plus the single item the reader holds in hand.
func StreamCapacity(buffer, batch int) int64 {
	if buffer < 0 {
		buffer = 0
	}
	if batch < 1 {
		batch = 1
	}
	return int64(buffer)*int64(batch) + int64(batch) + 1
}

// BoxEngineHold returns the worst-case number of records held inside one
// concurrent box node at width W: W invocations in flight plus up to W-1
// completed results parked in the FIFO reorder stage awaiting the head.
func BoxEngineHold(workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	return 2*int64(workers) - 1
}

// FusedSegmentHold returns the worst-case number of records buffered inside
// one fused pipeline segment (fuse.go): the executor's cur/next buffers of
// up to `batch` records each.  For any batch ≥ 1 this is strictly below the
// StreamCapacity sum of the streams fusion removed, which is why the
// occupancy analysis computes its bound over the un-fused blueprint — the
// same bound is sound for both execution plans, and verdicts cannot depend
// on whether fusion ran.
func FusedSegmentHold(batch int) int64 {
	if batch < 1 {
		batch = 1
	}
	return 2 * int64(batch)
}

// Graph returns the structured graph of the compiled network.  The tree is
// rebuilt per call (it is cheap — pure traversal); callers that walk it
// repeatedly should hold on to the result.
func (p *Plan) Graph() *GraphNode { return buildGraph(p.root, "") }

func buildGraph(n Node, prefix string) *GraphNode {
	path := prefix + n.name()
	in, out := n.sig(nil)
	g := &GraphNode{Name: n.name(), Path: path, Node: n, In: in, Out: out}
	switch n := n.(type) {
	case *boxNode:
		g.Kind = "box"
		g.BoxSig = n.boxSig
		g.Workers = n.workers
	case *filterNode:
		g.Kind = "filter"
		g.Filter = n.spec
	case *identityNode:
		g.Kind = "observe"
	case *hideNode:
		g.Kind = "hide"
		g.HiddenTags = append([]string(nil), n.tags...)
	case *syncNode:
		g.Kind = "sync"
		g.Patterns = append([]Pattern(nil), n.patterns...)
	case *serialNode:
		g.Kind = "serial"
		g.Children = []*GraphNode{
			buildGraph(n.a, path+"/"),
			buildGraph(n.b, path+"/"),
		}
	case *parallelNode:
		g.Kind = "parallel"
		g.Det = n.det
		for i, b := range n.branches {
			g.Children = append(g.Children, buildGraph(b, branchPrefix(path, i)))
		}
	case *starNode:
		g.Kind = "star"
		g.Det = n.det
		g.Feedback = true
		exit := n.exit
		g.Exit = &exit
		g.Children = []*GraphNode{buildGraph(n.operand, path+"/operand/")}
	case *splitNode:
		g.Kind = "split"
		g.Det = n.det
		g.Tag = n.tag
		g.Uncapped = n.uncapped
		g.Children = []*GraphNode{buildGraph(n.operand, path+"/operand/")}
	default:
		g.Kind = "node"
	}
	return g
}

// FlowIn returns the union of variants the compile-time shape-flow pass saw
// entering the node at path, and whether the pass visited that path at all.
// An unvisited path means the node is unreachable under the analysed input
// type; a visited path with zero variants means it was entered only with an
// empty variant set (e.g. a split operand behind a total missing-tag
// rejection).
func (p *Plan) FlowIn(path string) ([]Variant, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.variants(p.facts.in, path)
}

// FlowOut is FlowIn for the variants leaving the node.  For a star node the
// out set is the exit set: variants that satisfy the exit pattern and leave
// the chain.
func (p *Plan) FlowOut(path string) ([]Variant, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.variants(p.facts.out, path)
}

// FlowExact reports whether every flow visit delivered an exact variant set
// *to* path (input-side exactness).  Downstream of a synchrocell (whose
// merged output depends on runtime contents) or after variant-set
// truncation the recorded sets are approximate, and findings derived from
// them should be presented as imprecise.  Unvisited paths report true;
// callers reasoning about unreached nodes should consult the nearest
// visited ancestor.
func (p *Plan) FlowExact(path string) bool {
	if p.facts == nil {
		return false
	}
	return !p.facts.inexact[path]
}
