package core

import (
	"testing"
	"testing/quick"
)

func v(labels ...Label) Variant { return NewVariant(labels...) }

func TestSubtypingBasics(t *testing.T) {
	// {a,<b>,d} is a subtype of {a,<b>}: more labels = more specific.
	sub := v(Field("a"), Tag("b"), Field("d"))
	sup := v(Field("a"), Tag("b"))
	if !sub.SubtypeOf(sup) {
		t.Fatal("wider record must be a subtype")
	}
	if sup.SubtypeOf(sub) {
		t.Fatal("narrower record must not be a subtype")
	}
	if !sub.SubtypeOf(sub) {
		t.Fatal("subtyping must be reflexive")
	}
	// The empty variant is the top type.
	if !sub.SubtypeOf(v()) {
		t.Fatal("every record type is a subtype of {}")
	}
}

func TestFieldTagDistinct(t *testing.T) {
	if v(Field("x")).SubtypeOf(v(Tag("x"))) {
		t.Fatal("field x must not satisfy tag <x>")
	}
}

func TestMultivariantSubtyping(t *testing.T) {
	// {c} | {c,d,<e>}  ⊑  {c}
	x := RecType{v(Field("c")), v(Field("c"), Field("d"), Tag("e"))}
	y := RecType{v(Field("c"))}
	if !x.SubtypeOf(y) {
		t.Fatal("multivariant subtyping broken")
	}
	if y.SubtypeOf(RecType{v(Field("c"), Field("d"))}) {
		t.Fatal("{c} must not be a subtype of {c,d}")
	}
	// Empty multivariant is a subtype of anything.
	if !(RecType{}).SubtypeOf(y) {
		t.Fatal("empty multivariant")
	}
}

func TestVariantOps(t *testing.T) {
	a := v(Field("x"), Tag("t"))
	b := v(Field("y"))
	u := a.Union(b)
	if len(u) != 3 || !u.Has(Field("x")) || !u.Has(Field("y")) || !u.Has(Tag("t")) {
		t.Fatalf("union = %v", u)
	}
	if !a.Equal(v(Tag("t"), Field("x"))) {
		t.Fatal("Equal order-sensitive")
	}
	if a.Equal(b) {
		t.Fatal("unequal variants equal")
	}
}

func TestVariantString(t *testing.T) {
	s := v(Tag("t"), Field("b"), Field("a")).String()
	if s != "{a, b, <t>}" {
		t.Fatalf("String = %q", s)
	}
	if (RecType{}).String() != "{}" {
		t.Fatal("empty RecType string")
	}
	rt := RecType{v(Field("c")), v(Field("d"))}.String()
	if rt != "{c} | {d}" {
		t.Fatalf("RecType string = %q", rt)
	}
}

func TestMatchScore(t *testing.T) {
	rec := NewRecord().SetField("board", 1).SetField("opts", 2).SetTag("k", 0)
	// Branch 1 wants {board}; branch 2 wants {board, opts}.
	t1 := RecType{v(Field("board"))}
	t2 := RecType{v(Field("board"), Field("opts"))}
	if MatchScore(rec, t1) != 1 {
		t.Fatalf("score t1 = %d", MatchScore(rec, t1))
	}
	if MatchScore(rec, t2) != 2 {
		t.Fatalf("score t2 = %d", MatchScore(rec, t2))
	}
	if MatchScore(rec, RecType{v(Field("missing"))}) != -1 {
		t.Fatal("non-match must score -1")
	}
	// Multivariant: best matching variant counts.
	t3 := RecType{v(Field("missing")), v(Field("board"), Tag("k"))}
	if MatchScore(rec, t3) != 2 {
		t.Fatalf("score t3 = %d", MatchScore(rec, t3))
	}
	// Empty variant matches everything with score 0.
	if MatchScore(rec, RecType{v()}) != 0 {
		t.Fatal("empty variant score")
	}
}

func genVariant(raw []uint8) Variant {
	names := []string{"a", "b", "c", "d"}
	out := Variant{}
	for _, r := range raw {
		l := Label{Name: names[int(r)%len(names)], IsTag: (r/4)%2 == 0}
		out[l] = struct{}{}
	}
	return out
}

// Property: subtyping is reflexive and transitive; union is an upper bound
// in the subset order and a lower bound in the subtype order.
func TestQuickSubtypingLaws(t *testing.T) {
	f := func(ra, rb, rc []uint8) bool {
		a, b, c := genVariant(ra), genVariant(rb), genVariant(rc)
		if !a.SubtypeOf(a) {
			return false
		}
		if a.SubtypeOf(b) && b.SubtypeOf(c) && !a.SubtypeOf(c) {
			return false
		}
		u := a.Union(b)
		// u has all labels of a and of b, hence is a subtype of both.
		if !u.SubtypeOf(a) || !u.SubtypeOf(b) {
			return false
		}
		// antisymmetry up to equality
		if a.SubtypeOf(b) && b.SubtypeOf(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchScore is monotone — adding labels to a record never
// decreases its score against a fixed type.
func TestQuickMatchScoreMonotone(t *testing.T) {
	f := func(rt, rrec []uint8, extra uint8) bool {
		typ := RecType{genVariant(rt)}
		rec := NewRecord()
		for l := range genVariant(rrec) {
			if l.IsTag {
				rec.SetTag(l.Name, 1)
			} else {
				rec.SetField(l.Name, 1)
			}
		}
		before := MatchScore(rec, typ)
		for l := range genVariant([]uint8{extra}) {
			if l.IsTag {
				rec.SetTag(l.Name, 1)
			} else {
				rec.SetField(l.Name, 1)
			}
		}
		return MatchScore(rec, typ) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
