package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Shapes — the compile-time-interned record layouts behind the slot-array
// record representation (record.go).
//
// A shape is one immutable label set with a fixed slot layout: field slots
// ordered by field name, tag slots ordered by tag name.  Every record points
// at exactly one shape; records with equal label sets share the same shape
// object (shapes are interned in a global registry keyed by the canonical
// ShapeKey), so the routing tables and pattern memos key their per-shape
// decisions by shape *pointer* — one map probe, no string hashing, no
// canonicalization per record.
//
// Mutating a record's label set walks a shape *transition*: shape + label →
// shape.  Transitions are memoized per shape in a copy-on-write map, so
// steady-state record construction (a box emitting the same output variant,
// a filter rewriting the same input shape) never rebuilds layouts — it
// follows pointers.  The canonical slot order also makes the flat layout a
// deterministic serialization format (record_flat.go), which is what the
// distributed backend's wire codec rides on.
//
// Shapes never carry values: they are layouts.  The registry is bounded
// (maxShapes); beyond the cap — only reachable by workloads synthesizing
// unbounded fresh label sets — transitions return unregistered shapes whose
// memory is bounded by the records that reference them.

// shape is one interned record layout.  All exported-ish fields are
// immutable after construction.
type shape struct {
	fields     []labelID // field slots, ascending by name
	fieldNames []string  // aligned with fields
	tags       []labelID // tag slots, ascending by name
	tagNames   []string  // aligned with tags
	key        string    // canonical ShapeKey: "f1,f2|t1,t2"
	variant    Variant   // the label set; treat as immutable
	reserved   bool      // carries a reserved "__snet_" label
	registered bool      // lives in the global registry

	trans atomic.Pointer[map[shapeTrans]*shape]
	mu    sync.Mutex // serializes transition/registry publication
}

// shapeTrans is one layout transition: add/remove one field/tag label.
type shapeTrans struct {
	op uint8
	id labelID
}

const (
	transAddField = iota
	transAddTag
	transDelField
	transDelTag
)

// maxShapes bounds the global shape registry; maxShapeTrans bounds each
// shape's memoized transition map.  Real networks see a handful of shapes;
// the caps only matter to adversarial label-synthesizing workloads.
const (
	maxShapes     = 1 << 16
	maxShapeTrans = 1 << 8
)

var (
	shapeRegMu sync.Mutex
	shapeReg   = map[string]*shape{} // ShapeKey → shape
	shapeCount atomic.Int64
	emptyShape = newShape(nil, nil, nil, nil, true)
)

func init() {
	shapeReg[shapeRegKey(nil, nil)] = emptyShape
	shapeCount.Store(1)
}

// newShape builds a layout from name-sorted label slices (which it adopts).
func newShape(fields []labelID, fieldNames []string, tags []labelID, tagNames []string, registered bool) *shape {
	s := &shape{
		fields: fields, fieldNames: fieldNames,
		tags: tags, tagNames: tagNames,
		registered: registered,
	}
	var b strings.Builder
	n := 1
	for _, k := range fieldNames {
		n += len(k) + 1
	}
	for _, k := range tagNames {
		n += len(k) + 1
	}
	b.Grow(n)
	for i, k := range fieldNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	b.WriteByte('|')
	for i, k := range tagNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	s.key = b.String()
	s.variant = make(Variant, len(fields)+len(tags))
	for _, k := range fieldNames {
		s.variant[Field(k)] = struct{}{}
		s.reserved = s.reserved || IsReservedLabel(k)
	}
	for _, k := range tagNames {
		s.variant[Tag(k)] = struct{}{}
		s.reserved = s.reserved || IsReservedLabel(k)
	}
	return s
}

// shapeRegKey renders an unambiguous registry key for name-sorted label
// slices.  Unlike the human-readable ShapeKey, every name is length-prefixed:
// degenerate label names (empty, or containing ',' / '|') must not alias two
// distinct layouts onto one registry entry — the fuzzer found exactly that,
// a {""} field shape colliding with the empty shape.
func shapeRegKey(fieldNames, tagNames []string) string {
	var b strings.Builder
	for _, k := range fieldNames {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	b.WriteByte('|')
	for _, k := range tagNames {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// canonicalShape interns the layout for the given name-sorted label slices,
// which must not be mutated afterwards if the shape gets registered.
func canonicalShape(fields []labelID, fieldNames []string, tags []labelID, tagNames []string) *shape {
	key := shapeRegKey(fieldNames, tagNames)
	shapeRegMu.Lock()
	defer shapeRegMu.Unlock()
	if s, ok := shapeReg[key]; ok {
		return s
	}
	registered := shapeCount.Load() < maxShapes
	s := newShape(fields, fieldNames, tags, tagNames, registered)
	if registered {
		shapeReg[key] = s
		shapeCount.Add(1)
	}
	return s
}

// NumShapes reports the size of the global shape registry (tests,
// diagnostics).
func NumShapes() int { return int(shapeCount.Load()) }

// fieldSlot returns the slot index of a field by name.
func (s *shape) fieldSlot(name string) (int, bool) {
	i := sort.SearchStrings(s.fieldNames, name)
	if i < len(s.fieldNames) && s.fieldNames[i] == name {
		return i, true
	}
	return -1, false
}

// tagSlot returns the slot index of a tag by name.
func (s *shape) tagSlot(name string) (int, bool) {
	i := sort.SearchStrings(s.tagNames, name)
	if i < len(s.tagNames) && s.tagNames[i] == name {
		return i, true
	}
	return -1, false
}

// fieldSlotID / tagSlotID resolve a slot by interned id — the form the
// compiled programs use (ids resolve once at compile, slots scan a handful
// of ints per record).
func (s *shape) fieldSlotID(id labelID) (int, bool) {
	for i, f := range s.fields {
		if f == id {
			return i, true
		}
	}
	return -1, false
}

func (s *shape) tagSlotID(id labelID) (int, bool) {
	for i, t := range s.tags {
		if t == id {
			return i, true
		}
	}
	return -1, false
}

// transition returns the layout after one add/remove, memoizing it on s.
// For additions, pos is the slot the new label occupies in the target
// layout; for removals, the slot it vacated in s.
func (s *shape) transition(op uint8, name string) (next *shape, pos int) {
	id := internLabel(name)
	tk := shapeTrans{op: op, id: id}
	if m := s.trans.Load(); m != nil {
		if t, ok := (*m)[tk]; ok {
			return t, transPos(op, t, s, name)
		}
	}
	next = s.buildTransition(op, id, name)
	s.mu.Lock()
	old := s.trans.Load()
	var size int
	if old != nil {
		size = len(*old)
	}
	if size < maxShapeTrans {
		m := make(map[shapeTrans]*shape, size+1)
		if old != nil {
			for k, v := range *old {
				m[k] = v
			}
		}
		m[tk] = next
		s.trans.Store(&m)
	}
	s.mu.Unlock()
	return next, transPos(op, next, s, name)
}

// transPos recovers the affected slot index for a memoized transition.
func transPos(op uint8, next, prev *shape, name string) int {
	switch op {
	case transAddField:
		i, _ := next.fieldSlot(name)
		return i
	case transAddTag:
		i, _ := next.tagSlot(name)
		return i
	case transDelField:
		i, _ := prev.fieldSlot(name)
		return i
	default:
		i, _ := prev.tagSlot(name)
		return i
	}
}

// buildTransition computes the target layout of one transition.
func (s *shape) buildTransition(op uint8, id labelID, name string) *shape {
	clone := func(ids []labelID, names []string) ([]labelID, []string) {
		return append([]labelID(nil), ids...), append([]string(nil), names...)
	}
	insert := func(ids []labelID, names []string) ([]labelID, []string) {
		i := sort.SearchStrings(names, name)
		ids = append(ids, 0)
		copy(ids[i+1:], ids[i:])
		ids[i] = id
		names = append(names, "")
		copy(names[i+1:], names[i:])
		names[i] = name
		return ids, names
	}
	remove := func(ids []labelID, names []string, i int) ([]labelID, []string) {
		ids = append(ids[:i], ids[i+1:]...)
		names = append(names[:i], names[i+1:]...)
		return ids, names
	}
	fields, fieldNames := clone(s.fields, s.fieldNames)
	tags, tagNames := clone(s.tags, s.tagNames)
	switch op {
	case transAddField:
		fields, fieldNames = insert(fields, fieldNames)
	case transAddTag:
		tags, tagNames = insert(tags, tagNames)
	case transDelField:
		i, _ := s.fieldSlot(name)
		fields, fieldNames = remove(fields, fieldNames, i)
	case transDelTag:
		i, _ := s.tagSlot(name)
		tags, tagNames = remove(tags, tagNames, i)
	}
	return canonicalShape(fields, fieldNames, tags, tagNames)
}

// shapeForVariant interns the layout carrying exactly the labels of v.
func shapeForVariant(v Variant) *shape {
	sh := emptyShape
	for _, l := range v.Labels() {
		if l.IsTag {
			sh, _ = sh.transition(transAddTag, l.Name)
		} else {
			sh, _ = sh.transition(transAddField, l.Name)
		}
	}
	return sh
}

// satisfiesIDs reports whether the shape carries every listed field and tag
// id — the static half of pattern matching, resolved to ids at compile.
func (s *shape) satisfiesIDs(fields, tags []labelID) bool {
	for _, id := range fields {
		if _, ok := s.fieldSlotID(id); !ok {
			return false
		}
	}
	for _, id := range tags {
		if _, ok := s.tagSlotID(id); !ok {
			return false
		}
	}
	return true
}
