package core

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The record plane's channel is an implementation detail of stream.go: every
// node communicates through streamReader/streamWriter, never over a raw
// item channel.  This lint pins the boundary so a future node cannot
// quietly regrow its own channel plumbing (and with it its own flush,
// marker and drain bugs).
func TestNoRawItemChannelsOutsideStream(t *testing.T) {
	forbidden := regexp.MustCompile(`chan\s+item\b|chan\s*<-\s*item\b|<-\s*chan\s+item\b|make\(chan\s+frame|chan\s+frame\b`)
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("suspiciously few files globbed: %v", files)
	}
	for _, f := range files {
		// stream.go owns the channel; its white-box test may build
		// harness channels of its own.
		if f == "stream.go" || f == "stream_test.go" {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if idx := strings.Index(line, "//"); idx >= 0 {
				line = line[:idx]
			}
			if forbidden.MatchString(line) {
				t.Errorf("%s:%d: raw item/frame channel outside stream.go: %s",
					f, i+1, strings.TrimSpace(line))
			}
		}
	}
}
