package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// incBox returns a box (<n>) -> (<n>) emitting n+delta.
func incBox(name string, delta int) Node {
	return NewBox(name, MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			return out.Out(1, args[0].(int)+delta)
		})
}

func tagOf(t *testing.T, r *Record, name string) int {
	t.Helper()
	v, ok := r.Tag(name)
	if !ok {
		t.Fatalf("record %s lacks tag <%s>", r, name)
	}
	return v
}

func recN(n int) *Record { return NewRecord().SetTag("n", n) }

func runNet(t *testing.T, n Node, inputs []*Record, opts ...Option) ([]*Record, *Stats) {
	t.Helper()
	out, stats, err := RunAll(context.Background(), n, inputs, opts...)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return out, stats
}

func TestBoxBasic(t *testing.T) {
	out, stats := runNet(t, incBox("inc", 1), []*Record{recN(1), recN(2), recN(3)})
	if len(out) != 3 {
		t.Fatalf("got %d records", len(out))
	}
	got := []int{}
	for _, r := range out {
		got = append(got, tagOf(t, r, "n"))
	}
	sort.Ints(got)
	if got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("outputs = %v", got)
	}
	if stats.Counter("box.inc.calls") != 3 {
		t.Fatalf("calls = %d", stats.Counter("box.inc.calls"))
	}
}

func TestBoxMultipleOutputsPerInput(t *testing.T) {
	fan := NewBox("fan", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			n := args[0].(int)
			for i := 0; i < n; i++ {
				if err := out.Out(1, i); err != nil {
					return err
				}
			}
			if out.Emitted() != n {
				return fmt.Errorf("emitted %d, want %d", out.Emitted(), n)
			}
			return nil
		})
	out, _ := runNet(t, fan, []*Record{recN(4)})
	if len(out) != 4 {
		t.Fatalf("got %d records", len(out))
	}
}

// Flow inheritance (§4): excess labels of the input are attached to outputs
// unless already present.
func TestBoxFlowInheritance(t *testing.T) {
	// box foo (a,<b>) -> (c) | (c,d,<e>), fed {a,<b>,d}: first variant
	// gains d by inheritance, second variant keeps its own d.
	foo := NewBox("foo", MustParseSignature("(a,<b>) -> (c) | (c,d,<e>)"),
		func(args []any, out *Emitter) error {
			if err := out.Out(1, "c1"); err != nil {
				return err
			}
			return out.Out(2, "c2", "ownD", 42)
		})
	in := NewRecord().SetField("a", "A").SetTag("b", 7).SetField("d", "inheritedD")
	out, _ := runNet(t, foo, []*Record{in})
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	// Identify the two variants by <e>.
	var v1, v2 *Record
	for _, r := range out {
		if _, ok := r.Tag("e"); ok {
			v2 = r
		} else {
			v1 = r
		}
	}
	if v1 == nil || v2 == nil {
		t.Fatalf("missing variants: %v", out)
	}
	if d, ok := v1.Field("d"); !ok || d != "inheritedD" {
		t.Fatalf("variant 1 must inherit d, got %v", v1)
	}
	if d, _ := v2.Field("d"); d != "ownD" {
		t.Fatalf("variant 2 must keep its own d, got %v", v2)
	}
	// Consumed labels a and <b> do not inherit.
	if _, ok := v1.Field("a"); ok {
		t.Fatal("consumed field a must not inherit")
	}
	if _, ok := v1.Tag("b"); ok {
		t.Fatal("consumed tag <b> must not inherit")
	}
}

func TestBoxRejectsNonMatchingRecord(t *testing.T) {
	var errs []error
	out, stats := runNet(t, incBox("inc", 1),
		[]*Record{NewRecord().SetField("other", 1)},
		WithErrorHandler(func(e error) { errs = append(errs, e) }))
	if len(out) != 0 {
		t.Fatalf("got %d records", len(out))
	}
	if stats.Counter("box.inc.rejected") != 1 || len(errs) != 1 {
		t.Fatal("rejection not reported")
	}
}

func TestBoxPanicIsolation(t *testing.T) {
	bomb := NewBox("bomb", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			if args[0].(int) == 2 {
				panic("kaboom")
			}
			return out.Out(1, args[0].(int))
		})
	var errs []error
	out, stats := runNet(t, bomb, []*Record{recN(1), recN(2), recN(3)},
		WithErrorHandler(func(e error) { errs = append(errs, e) }))
	if len(out) != 2 {
		t.Fatalf("got %d records, want the two survivors", len(out))
	}
	if stats.Counter("box.bomb.panics") != 1 || len(errs) != 1 {
		t.Fatal("panic not reported")
	}
}

func TestBoxErrorReturnReported(t *testing.T) {
	bad := NewBox("bad", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error { return errors.New("nope") })
	var errs []error
	_, _ = runNet(t, bad, []*Record{recN(1)},
		WithErrorHandler(func(e error) { errs = append(errs, e) }))
	if len(errs) != 1 {
		t.Fatal("box error not reported")
	}
}

func TestEmitterValidation(t *testing.T) {
	var gotErrs []error
	box := NewBox("val", MustParseSignature("(<n>) -> (a,<t>)"),
		func(args []any, out *Emitter) error {
			if err := out.Out(3, "x", 1); err == nil {
				return errors.New("variant 3 should fail")
			}
			if err := out.Out(1, "x"); err == nil {
				return errors.New("arity should fail")
			}
			if err := out.Out(1, "x", "notint"); err == nil {
				return errors.New("tag type should fail")
			}
			return out.Out(1, "x", 5)
		})
	out, _ := runNet(t, box, []*Record{recN(0)},
		WithErrorHandler(func(e error) { gotErrs = append(gotErrs, e) }))
	if len(out) != 1 {
		t.Fatalf("got %d records", len(out))
	}
	if tv, _ := out[0].Tag("t"); tv != 5 {
		t.Fatal("valid emit lost")
	}
}

func TestSerialPipeline(t *testing.T) {
	n := Serial(incBox("a", 1), incBox("b", 10), incBox("c", 100))
	out, _ := runNet(t, n, []*Record{recN(0)})
	if len(out) != 1 || tagOf(t, out[0], "n") != 111 {
		t.Fatalf("pipeline result = %v", out)
	}
}

func TestSerialNeedsOneNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Serial() must panic")
		}
	}()
	Serial()
}

func TestFilterNode(t *testing.T) {
	n := MustFilter("{<n>} -> {<n>=<n>*2}")
	out, stats := runNet(t, n, []*Record{recN(3)})
	if len(out) != 1 || tagOf(t, out[0], "n") != 6 {
		t.Fatalf("filter result = %v", out)
	}
	if stats.SumPrefix("filter.") != 1 {
		t.Fatal("filter stats missing")
	}
}

func TestFilterNoMatchForwards(t *testing.T) {
	n := MustFilter("{<missing>} -> {<missing>}")
	out, stats := runNet(t, n, []*Record{recN(1)})
	if len(out) != 1 || tagOf(t, out[0], "n") != 1 {
		t.Fatal("non-matching record must pass through unchanged")
	}
	found := false
	for k := range stats.Snapshot() {
		if len(k) > 7 && k[:7] == "filter." && k[len(k)-8:] == ".nomatch" {
			found = true
		}
	}
	if !found {
		t.Fatal("nomatch not counted")
	}
}

func TestObserveTap(t *testing.T) {
	var seen []int
	n := Serial(incBox("a", 1), Observe("tap", func(r *Record) {
		if v, ok := r.Tag("n"); ok {
			seen = append(seen, v)
		}
	}), incBox("b", 1))
	out, _ := runNet(t, n, []*Record{recN(0)})
	if len(out) != 1 || tagOf(t, out[0], "n") != 2 {
		t.Fatal("observe must be transparent")
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("tap saw %v", seen)
	}
}

func TestTracerSeesBoxEvents(t *testing.T) {
	var events []string
	tr := TracerFunc(func(node, dir string, rec *Record) {
		events = append(events, node+":"+dir)
	})
	// Single box, single record: trace callbacks happen on the box
	// goroutine; no extra synchronisation needed after Wait.
	_, _ = runNet(t, incBox("tb", 1), []*Record{recN(1)}, WithTracer(tr))
	if len(events) != 2 || events[0] != "tb:in" || events[1] != "tb:out" {
		t.Fatalf("events = %v", events)
	}
}

func TestHandleSendAfterClose(t *testing.T) {
	h := Start(context.Background(), incBox("x", 1))
	h.Close()
	if err := h.Send(recN(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	h.Wait()
}

func TestHandleCancelDrains(t *testing.T) {
	slow := NewBox("slow", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			time.Sleep(5 * time.Millisecond)
			return out.Out(1, args[0].(int))
		})
	h := Start(context.Background(), Serial(slow, slow))
	for i := 0; i < 50; i++ {
		if err := h.Send(recN(i)); err != nil {
			break
		}
	}
	h.Cancel()
	// Out must close promptly even with records in flight.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-h.Out():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("output did not close after cancel")
		}
	}
}

func TestRunUntilFirstResultWins(t *testing.T) {
	n := incBox("inc", 1)
	inputs := []*Record{recN(10), recN(20), recN(30)}
	rec, _, err := RunUntil(context.Background(), n, inputs, func(r *Record) bool {
		v, _ := r.Tag("n")
		return v > 15
	})
	if err != nil || rec == nil {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
	if v := tagOf(t, rec, "n"); v <= 15 {
		t.Fatalf("stop record = %d", v)
	}
}

func TestRunUntilNoMatchReturnsNil(t *testing.T) {
	rec, _, err := RunUntil(context.Background(), incBox("inc", 1),
		[]*Record{recN(1)}, func(r *Record) bool { return false })
	if rec != nil || err != nil {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
}
