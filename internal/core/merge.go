package core

import "sort"

// This file implements the shared splitter/merger machinery of the three
// branching combinators (parallel composition, serial replication, parallel
// replication).
//
// Nondeterministic variants (the paper's ||, **, !!) merge branch outputs as
// soon as records become available: "any record produced proceeds as soon as
// possible" (§4).
//
// Deterministic variants (|, *, !) implement a sort-record protocol.  The
// splitter broadcasts a control marker to all live branches after every
// routed data record.  Each branch preserves FIFO order and forwards
// markers, so the k-th marker on every branch delimits the same input
// prefix.  The merger buffers each branch's output into regions bounded by
// markers and emits region t — in fixed branch order — once every branch
// has delivered marker t (or closed).  Branches created lazily (replication
// unfolds on demand) join with the current marker count; earlier regions
// are vacuously empty for them.
//
// Markers originating from an enclosing deterministic combinator ("foreign"
// markers) are broadcast and merged exactly the same way, which makes inner
// combinators — deterministic or not — order-transparent to outer ones.
//
// Transport note: branch inputs are batched streams, but markers are flush
// barriers (stream.go), so a broadcast marker — and every record routed
// before it — reaches each branch without waiting for the batch to fill.
// The liveness of the sort-record protocol is therefore independent of the
// batch size B.

// branch event kinds flowing into the merger.
const (
	evRegister = iota // new branch: id + join mark
	evItem            // record or marker arriving from a branch
	evClosed          // branch output closed
	evMarker          // splitter announces a marker (identity + global number)
	evDone            // splitter finished; no further branches or markers
	evRetire          // splitter closed a branch's input (close protocol);
	//                   it.rec, if non-nil, is the drain-acknowledgement
	//                   sentinel to emit after the branch's last record
	evEmit // splitter hands one record straight to the output (the
	//        close protocol's acknowledgement when no replica exists)
)

type branchEvent struct {
	kind int
	id   int
	join int  // evRegister: markers broadcast before this branch existed
	seq  int  // evMarker: global marker number
	it   item // evItem payload; evMarker identity (it.mk)
}

// branchPort is the splitter's handle to one branch: the writing end of the
// branch's input stream.
type branchPort struct {
	id int
	w  *streamWriter
}

// fanout is the splitter half: it owns branch creation, routing and marker
// broadcast.  All methods are called from the combinator's run goroutine
// only; branch-input writers are registered with the combinator's input
// reader so records buffered for a branch are flushed whenever the splitter
// waits for more input.
type fanout struct {
	env       *runEnv
	det       bool
	level     int // own marker level (det only)
	ownTicket uint64
	mux       chan branchEvent
	in        *streamReader // the combinator's input, for autoFlush wiring
	branches  []*branchPort
	markers   int // global marker count broadcast so far
}

func newFanout(env *runEnv, det bool, in *streamReader) *fanout {
	f := &fanout{env: env, det: det, in: in, mux: make(chan branchEvent, env.buf+4)}
	if det {
		f.level = env.newLevel()
	}
	return f
}

// sendEv delivers an event to the merger; false means the run is cancelled.
func (f *fanout) sendEv(e branchEvent) bool {
	select {
	case f.mux <- e:
		return true
	case <-f.env.ctx.Done():
		return false
	}
}

// addBranch registers a new branch running node n; a nil node is an identity
// passthrough (used for the exit path of serial replication).  It returns
// the port for routing.
func (f *fanout) addBranch(n Node) *branchPort {
	inR, inW := newStream(f.env)
	port := &branchPort{id: len(f.branches), w: inW}
	f.branches = append(f.branches, port)
	f.in.autoFlush(inW)
	f.sendEv(branchEvent{kind: evRegister, id: port.id, join: f.markers})
	var branchOut *streamReader
	if n == nil {
		branchOut = inR
	} else {
		outR, outW := newStream(f.env)
		go n.run(f.env, inR, outW)
		branchOut = outR
	}
	go f.pump(port.id, branchOut)
	return port
}

// pump forwards one branch's output into the merger mux.
func (f *fanout) pump(id int, r *streamReader) {
	for {
		it, ok := r.recv()
		if !ok {
			break
		}
		if !f.sendEv(branchEvent{kind: evItem, id: id, it: it}) {
			return
		}
	}
	f.sendEv(branchEvent{kind: evClosed, id: id})
}

// route sends a data record into a branch; false on cancellation.
func (f *fanout) route(port *branchPort, r *Record) bool {
	return port.w.sendRecord(r)
}

// afterRoute emits the per-record sort marker in deterministic mode.
func (f *fanout) afterRoute() bool {
	if !f.det {
		return true
	}
	f.ownTicket++
	return f.broadcast(&marker{level: f.level, ticket: f.ownTicket})
}

// forwardMarker broadcasts a foreign marker from an enclosing deterministic
// combinator through all branches.
func (f *fanout) forwardMarker(mk *marker) bool { return f.broadcast(mk) }

func (f *fanout) broadcast(mk *marker) bool {
	f.markers++
	if !f.sendEv(branchEvent{kind: evMarker, seq: f.markers, it: item{mk: mk}}) {
		return false
	}
	for _, port := range f.branches {
		if port == nil {
			continue // retired by the close protocol
		}
		if !port.w.send(item{mk: mk}) {
			return false
		}
	}
	return true
}

// retireBranch is the splitter half of the replica close protocol: the
// branch's input stream is closed (the branch drains and its output merges
// as usual, ending in the pump's evClosed) and, if sentinel is non-nil, the
// merger emits sentinel strictly after the branch's last record.  The port
// must not be routed to after retireBranch.
func (f *fanout) retireBranch(port *branchPort, sentinel *Record) bool {
	port.w.close()
	f.branches[port.id] = nil
	return f.sendEv(branchEvent{kind: evRetire, id: port.id, it: item{rec: sentinel}})
}

// emitDirect hands one record straight to the merged output — the close
// protocol's acknowledgement path when no replica exists for the key.
func (f *fanout) emitDirect(rec *Record) bool {
	return f.sendEv(branchEvent{kind: evEmit, it: item{rec: rec}})
}

// finish closes all branch inputs and tells the merger no more branches or
// markers will appear.
func (f *fanout) finish() {
	for _, port := range f.branches {
		if port == nil {
			continue // retired by the close protocol
		}
		port.w.close()
	}
	f.sendEv(branchEvent{kind: evDone})
}

// mergerBranch is the merger-side view of one branch.
type mergerBranch struct {
	join        int
	closed      bool
	markersSeen int
	regions     map[int][]*Record // det: buffered data per region
	sentinel    *Record           // close protocol: emit after the last record
}

// lastGlobalMarker returns the global number of the latest marker this
// branch has delivered.
func (b *mergerBranch) lastGlobalMarker() int { return b.join + b.markersSeen }

// mergeLoop is the merger half; the combinator runs it in a dedicated
// goroutine, which owns the out writer until mergeLoop returns.  It writes
// merged output to out and returns when the splitter is done and all
// branches have closed (or on cancellation).  The caller closes out.
func (f *fanout) mergeLoop(out *streamWriter, ownLevel int) {
	var (
		branches     []*mergerBranch
		markerIDs    = map[int]*marker{}
		totalMarkers int
		emitted      int
		done         bool
	)
	// nextEvent receives from the mux, flushing out's pending batch before
	// blocking so merged records never wait on merger idleness.
	nextEvent := func() (branchEvent, bool) {
		select {
		case e := <-f.mux:
			return e, true
		case <-f.env.ctx.Done():
			return branchEvent{}, false
		default:
		}
		if !out.flush() {
			return branchEvent{}, false
		}
		select {
		case e := <-f.mux:
			return e, true
		case <-f.env.ctx.Done():
			return branchEvent{}, false
		}
	}
	// A nil entry in branches is a branch whose evRegister lost the
	// cancellation race in sendEv while later events survived; the run is
	// being abandoned, so every walk below skips it.
	allClosed := func() bool {
		for _, b := range branches {
			if b != nil && !b.closed {
				return false
			}
		}
		return true
	}
	regionComplete := func(next int) bool {
		for _, b := range branches {
			if b == nil || b.join >= next || b.closed {
				continue
			}
			if b.lastGlobalMarker() < next {
				return false
			}
		}
		return true
	}
	// emitSentinel delivers a retired branch's drain acknowledgement once
	// the branch has closed and none of its data remains buffered — the
	// "strictly after the branch's last record" guarantee of the close
	// protocol.  False on cancellation.
	emitSentinel := func(b *mergerBranch) bool {
		if b == nil || b.sentinel == nil || !b.closed || len(b.regions) != 0 {
			return true
		}
		rec := b.sentinel
		b.sentinel = nil
		return out.sendRecord(rec)
	}
	emitRegion := func(next int) bool {
		for _, b := range branches {
			if b == nil {
				continue
			}
			for _, r := range b.regions[next] {
				if !out.sendRecord(r) {
					return false
				}
			}
			delete(b.regions, next)
			if !emitSentinel(b) {
				return false
			}
		}
		mk := markerIDs[next]
		delete(markerIDs, next)
		if mk != nil && mk.level != ownLevel {
			if !out.send(item{mk: mk}) {
				return false
			}
		}
		return true
	}
	// tryAdvance emits all currently complete regions; false on cancel.
	tryAdvance := func() bool {
		for emitted < totalMarkers {
			next := emitted + 1
			if _, announced := markerIDs[next]; !announced {
				return true // identity not yet known
			}
			if !regionComplete(next) {
				return true
			}
			if !emitRegion(next) {
				return false
			}
			emitted = next
		}
		return true
	}
	// flushTails emits data buffered after the last marker of each branch
	// (or all data, in runs without any markers), in branch order, followed
	// by any retired branch's drain acknowledgement.
	flushTails := func() bool {
		for _, b := range branches {
			if b == nil {
				continue
			}
			keys := make([]int, 0, len(b.regions))
			for k := range b.regions {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				for _, r := range b.regions[k] {
					if !out.sendRecord(r) {
						return false
					}
				}
			}
			b.regions = map[int][]*Record{}
			if !emitSentinel(b) {
				return false
			}
		}
		return true
	}
	for {
		e, ok := nextEvent()
		if !ok {
			return
		}
		switch e.kind {
		case evRegister:
			for len(branches) <= e.id {
				branches = append(branches, nil)
			}
			branches[e.id] = &mergerBranch{join: e.join, regions: map[int][]*Record{}}
		case evItem:
			// During cancellation sendEv may drop an evRegister (its
			// select races ctx.Done against the mux send) while a later
			// evItem still gets through; the run is being abandoned, so
			// drop such orphaned events.
			if e.id >= len(branches) || branches[e.id] == nil {
				break
			}
			b := branches[e.id]
			if e.it.mk != nil {
				b.markersSeen++
				if !tryAdvance() {
					return
				}
				break
			}
			region := b.lastGlobalMarker() + 1
			// Nondeterministic merging forwards eagerly, but only within
			// the currently open marker region — data from later regions
			// must wait so that an enclosing deterministic combinator
			// sees a correctly ordered marker/data interleaving.
			// Deterministic merging always buffers, emitting whole
			// regions in branch order.
			if !f.det && region == emitted+1 {
				if !out.send(e.it) {
					return
				}
				break
			}
			b.regions[region] = append(b.regions[region], e.it.rec)
		case evMarker:
			totalMarkers = e.seq
			markerIDs[e.seq] = e.it.mk
			if !tryAdvance() {
				return
			}
		case evClosed:
			if e.id >= len(branches) || branches[e.id] == nil {
				break // see evItem: cancellation orphan
			}
			branches[e.id].closed = true
			if !tryAdvance() {
				return
			}
			if !emitSentinel(branches[e.id]) {
				return
			}
		case evRetire:
			// The splitter closed this branch's input.  Remember the drain
			// acknowledgement (if requested); the branch's evClosed — or, in
			// deterministic runs, the emission of its last buffered region —
			// releases it.  evRetire and evClosed race through the mux from
			// different goroutines, so check both orders.
			if e.id >= len(branches) || branches[e.id] == nil {
				break // see evItem: cancellation orphan
			}
			branches[e.id].sentinel = e.it.rec
			if !emitSentinel(branches[e.id]) {
				return
			}
		case evEmit:
			if !out.send(e.it) {
				return
			}
		case evDone:
			done = true
		}
		if done && allClosed() {
			if !tryAdvance() {
				return
			}
			if emitted == totalMarkers {
				flushTails()
				return
			}
		}
	}
}
