package core

import (
	"context"
	"testing"
	"testing/quick"
)

// Properties of flow inheritance (§4): excess labels survive any box or
// filter unchanged; consumed labels never leak; explicit outputs always win
// over inherited labels.

func randomRecord(fieldBits, tagBits uint8) *Record {
	names := []string{"p", "q", "r", "s"}
	rec := NewRecord()
	for i, n := range names {
		if fieldBits&(1<<i) != 0 {
			rec.SetField(n, i)
		}
		if tagBits&(1<<i) != 0 {
			rec.SetTag(n, i*10)
		}
	}
	return rec
}

// Property: a box consuming nothing of the excess labels passes all of them
// through to every output variant that does not redefine them.
func TestQuickBoxInheritanceProperty(t *testing.T) {
	box := NewBox("probe", MustParseSignature("(in) -> (out)"),
		func(args []any, out *Emitter) error {
			return out.Out(1, "result")
		})
	f := func(fieldBits, tagBits uint8) bool {
		rec := randomRecord(fieldBits, tagBits).SetField("in", "x")
		want := rec.Copy()
		out, _, err := RunAll(context.Background(), box, []*Record{rec})
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0]
		// consumed label gone
		if _, ok := got.Field("in"); ok {
			return false
		}
		// output label present
		if v, _ := got.Field("out"); v != "result" {
			return false
		}
		// every excess label inherited with its value
		for _, n := range want.FieldNames() {
			if n == "in" {
				continue
			}
			wv, _ := want.Field(n)
			gv, ok := got.Field(n)
			if !ok || gv != wv {
				return false
			}
		}
		for _, n := range want.TagNames() {
			wv, _ := want.Tag(n)
			gv, ok := got.Tag(n)
			if !ok || gv != wv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// Property: explicit output labels shadow inheritance — a record carrying
// label "out" still gets the box's own "out" value.
func TestQuickInheritanceNoOverwriteProperty(t *testing.T) {
	box := NewBox("probe", MustParseSignature("(in) -> (out)"),
		func(args []any, out *Emitter) error {
			return out.Out(1, "fresh")
		})
	f := func(v uint8) bool {
		rec := NewRecord().SetField("in", 1).SetField("out", int(v))
		out, _, err := RunAll(context.Background(), box, []*Record{rec})
		if err != nil || len(out) != 1 {
			return false
		}
		got, _ := out[0].Field("out")
		return got == "fresh"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}

// Property: the identity filter {} -> {} plus inheritance is the identity
// on every record.
func TestQuickEmptyFilterIsIdentity(t *testing.T) {
	filt := MustFilter("{} -> {}")
	f := func(fieldBits, tagBits uint8) bool {
		rec := randomRecord(fieldBits, tagBits)
		want := rec.Copy()
		out, _, err := RunAll(context.Background(), filt, []*Record{rec})
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0]
		if !got.Labels().Equal(want.Labels()) {
			return false
		}
		for _, n := range want.TagNames() {
			wv, _ := want.Tag(n)
			gv, _ := got.Tag(n)
			if wv != gv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// Property: two filters composed serially behave like their composition —
// tag arithmetic chains associate.
func TestQuickFilterComposition(t *testing.T) {
	f1 := MustFilter("{<n>} -> {<n>=<n>*2}")
	f2 := MustFilter("{<n>} -> {<n>=<n>+3}")
	composed := MustFilter("{<n>} -> {<n>=<n>*2+3}")
	f := func(nRaw int16) bool {
		n := int(nRaw)
		a, _, err1 := RunAll(context.Background(), Serial(f1, f2),
			[]*Record{NewRecord().SetTag("n", n)})
		b, _, err2 := RunAll(context.Background(), composed,
			[]*Record{NewRecord().SetTag("n", n)})
		if err1 != nil || err2 != nil || len(a) != 1 || len(b) != 1 {
			return false
		}
		av, _ := a[0].Tag("n")
		bv, _ := b[0].Tag("n")
		return av == bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: subtype routing — a record satisfying the more specific branch
// never routes to the less specific one.
func TestQuickBestMatchSpecificity(t *testing.T) {
	f := func(extraBits uint8) bool {
		general := NewBox("g", MustParseSignature("(a) -> (a,<viaG>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
		specific := NewBox("s", MustParseSignature("(a,b) -> (a,<viaS>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
		rec := NewRecord().SetField("a", 1).SetField("b", 2)
		for i := 0; i < 3; i++ {
			if extraBits&(1<<i) != 0 {
				rec.SetTag([]string{"x", "y", "z"}[i], i)
			}
		}
		out, _, err := RunAll(context.Background(), Parallel(general, specific), []*Record{rec})
		if err != nil || len(out) != 1 {
			return false
		}
		_, viaS := out[0].Tag("viaS")
		return viaS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}
