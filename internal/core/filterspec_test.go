package core

import (
	"testing"
)

// The paper's §4 filter example:
// [{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]
func TestPaperFilterExample(t *testing.T) {
	f := MustParseFilter("[{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]")
	rec := NewRecord().SetField("a", "A").SetField("b", "B").SetTag("c", 9)
	outs, err := f.Apply(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d records", len(outs))
	}
	// First record: field a (original), field z (same value), tag <t>=0.
	r1 := outs[0]
	if a, _ := r1.Field("a"); a != "A" {
		t.Fatalf("r1.a = %v", a)
	}
	if z, _ := r1.Field("z"); z != "A" {
		t.Fatalf("r1.z = %v", z)
	}
	if tv, ok := r1.Tag("t"); !ok || tv != 0 {
		t.Fatalf("r1.<t> = %v %v", tv, ok)
	}
	if _, ok := r1.Field("b"); ok {
		t.Fatal("r1 must not carry b (in pattern, not in spec)")
	}
	if _, ok := r1.Tag("c"); ok {
		t.Fatal("r1 must not carry <c>")
	}
	// Second record: b, a=b, <c> incremented.
	r2 := outs[1]
	if b, _ := r2.Field("b"); b != "B" {
		t.Fatalf("r2.b = %v", b)
	}
	if a, _ := r2.Field("a"); a != "B" {
		t.Fatalf("r2.a = %v (must be renamed from b)", a)
	}
	if c, _ := r2.Tag("c"); c != 10 {
		t.Fatalf("r2.<c> = %d", c)
	}
}

// Fig. 2's filter {} -> {<k>=1} relies on flow inheritance: fields board and
// opts pass through although they do not occur in the filter.
func TestFilterFlowInheritance(t *testing.T) {
	f := MustParseFilter("{} -> {<k>=1}")
	rec := NewRecord().SetField("board", "B").SetField("opts", "O")
	outs, err := f.Apply(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d records", len(outs))
	}
	o := outs[0]
	if k, _ := o.Tag("k"); k != 1 {
		t.Fatalf("<k> = %d", k)
	}
	if b, ok := o.Field("board"); !ok || b != "B" {
		t.Fatal("board must flow-inherit")
	}
	if _, ok := o.Field("opts"); !ok {
		t.Fatal("opts must flow-inherit")
	}
}

// Inheritance must not overwrite labels the output already carries.
func TestFilterInheritanceNoOverwrite(t *testing.T) {
	f := MustParseFilter("{<k>} -> {<k>=<k>%4}")
	rec := NewRecord().SetTag("k", 9).SetField("x", 1)
	outs, err := f.Apply(rec)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := outs[0].Tag("k"); k != 1 {
		t.Fatalf("<k> = %d, want 9%%4", k)
	}
	if _, ok := outs[0].Field("x"); !ok {
		t.Fatal("x must inherit")
	}
}

func TestFilterBareTagCopyAndInit(t *testing.T) {
	// <c> in pattern → copied; <fresh> not in pattern → zero.
	f := MustParseFilter("{<c>} -> {<c>, <fresh>}")
	outs, err := f.Apply(NewRecord().SetTag("c", 5))
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := outs[0].Tag("c"); c != 5 {
		t.Fatalf("<c> = %d", c)
	}
	if fr, ok := outs[0].Tag("fresh"); !ok || fr != 0 {
		t.Fatalf("<fresh> = %d %v", fr, ok)
	}
}

func TestFilterMultipleOutputsShareNothing(t *testing.T) {
	f := MustParseFilter("{a} -> {a}; {a}")
	outs, err := f.Apply(NewRecord().SetField("a", 1).SetTag("extra", 7))
	if err != nil {
		t.Fatal(err)
	}
	outs[0].SetTag("mut", 1)
	if _, ok := outs[1].Tag("mut"); ok {
		t.Fatal("output records alias each other")
	}
	if e, _ := outs[1].Tag("extra"); e != 7 {
		t.Fatal("inheritance missing on second record")
	}
}

func TestFilterEmptyOutputListDiscards(t *testing.T) {
	f, err := ParseFilter("[{x} -> ]")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := f.Apply(NewRecord().SetField("x", 1))
	if err != nil || len(outs) != 0 {
		t.Fatalf("outs = %v, err = %v", outs, err)
	}
}

func TestFilterParseValidation(t *testing.T) {
	// Items must reference pattern labels.
	for _, src := range []string{
		"{a} -> {b}",          // b not in pattern
		"{a} -> {x=b}",        // source b not in pattern
		"{a} -> {<t>=<u>}",    // tag u not in pattern
		"[{a} -> {a}",         // unclosed bracket
		"{a} -> {a=}",         // missing source
		"{a} -> {a} trailing", // trailing tokens
		"{a} -> {2}",          // not an item
	} {
		if _, err := ParseFilter(src); err == nil {
			t.Fatalf("%q: want error", src)
		}
	}
}

func TestFilterOutTypeAndString(t *testing.T) {
	f := MustParseFilter("[{a,<c>} -> {a,<t>}; {<c>=<c>+1}]")
	ot := f.OutType()
	if len(ot) != 2 {
		t.Fatalf("OutType = %v", ot)
	}
	if !ot[0].Equal(v(Field("a"), Tag("t"))) {
		t.Fatalf("OutType[0] = %v", ot[0])
	}
	// String must reparse.
	if _, err := ParseFilter(f.String()); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestFilterGuardedPattern(t *testing.T) {
	f := MustParseFilter("{<k>} | <k> > 2 -> {<k>=0}")
	if !f.Pattern.Matches(NewRecord().SetTag("k", 3)) {
		t.Fatal("guard true must match")
	}
	if f.Pattern.Matches(NewRecord().SetTag("k", 1)) {
		t.Fatal("guard false must not match")
	}
}

func TestFilterApplyMissingFieldError(t *testing.T) {
	f := MustParseFilter("{a} -> {a}")
	// Pattern says field a, record only has tag <a>; Apply must error.
	if _, err := f.Apply(NewRecord().SetTag("a", 1)); err == nil {
		t.Fatal("want error for missing field")
	}
}
