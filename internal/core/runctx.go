package core

import (
	"context"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stats collects named counters and high-water marks from a running network.
// Keys are structured as "<nodekind>.<nodename>.<metric>", e.g.
// "box.solveOneLevel.calls", "star.solve_loop.replicas",
// "split.width.replicas".  Stats are safe for concurrent use.
type Stats struct {
	mu       sync.Mutex
	counters map[string]int64
	maxima   map[string]int64

	// The transport-plane keys are preregistered as atomics: every stream
	// writer folds its frame/record tallies in on close (and the boundary
	// writer on every direct send), so these are the collector's hottest
	// keys by far.  Routing them around the mutex keeps a run with
	// thousands of short-lived streams (deep split/star unfoldings) off
	// the map lock; Snapshot, Counter, Keys and friends fold them back in,
	// so the external Stats shape is unchanged.
	hotFrames  atomic.Int64 // "stream.frames"
	hotRecords atomic.Int64 // "stream.records"
	hotHWM     atomic.Int64 // "stream.frame.hwm" (a maximum, not a sum)

	// hot holds additional preregistered atomic counters, keyed by stat
	// name — per-fused-segment record counters above all.  The map is built
	// by preregister before a run's goroutines launch and is read-only
	// afterwards, so lookups are lock-free.
	hot map[string]*atomic.Int64
}

// The preregistered hot-counter keys.
const (
	statStreamFrames  = "stream.frames"
	statStreamRecords = "stream.records"
	statFrameHWM      = "stream.frame.hwm"
)

func newStats() *Stats {
	return &Stats{counters: map[string]int64{}, maxima: map[string]int64{}}
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// preregister installs lock-free atomic counters for keys whose traffic is
// known ahead of a run — Start calls it for every fused segment's per-record
// keys before any run goroutine launches.  It must not be called once the
// collector is in concurrent use: the hot map is immutable thereafter, which
// is exactly what makes its reads fence-free.
func (s *Stats) preregister(keys ...string) {
	if s.hot == nil {
		s.hot = make(map[string]*atomic.Int64, len(keys))
	}
	for _, k := range keys {
		if _, ok := s.hot[k]; !ok {
			s.hot[k] = new(atomic.Int64)
		}
	}
}

// NewStats returns an empty, usable Stats collector.  The runtime allocates
// its own per-run collector in Start; NewStats exists for aggregators (such
// as the session service) that fold many runs' statistics into one.
func NewStats() *Stats { return newStats() }

// Merge folds another collector's snapshot into s: counters are added,
// maxima are maximised.  Both collectors remain usable.
func (s *Stats) Merge(o *Stats) {
	o.mu.Lock()
	counters := make(map[string]int64, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	maxima := make(map[string]int64, len(o.maxima))
	for k, v := range o.maxima {
		maxima[k] = v
	}
	o.mu.Unlock()
	s.hotFrames.Add(o.hotFrames.Load())
	s.hotRecords.Add(o.hotRecords.Load())
	atomicMax(&s.hotHWM, o.hotHWM.Load())
	for k, c := range o.hot {
		if v := c.Load(); v != 0 {
			s.Add(k, v)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range counters {
		s.counters[k] += v
	}
	for k, v := range maxima {
		if v > s.maxima[k] {
			s.maxima[k] = v
		}
	}
}

// Add increments a counter and returns the new value.
func (s *Stats) Add(key string, delta int64) int64 {
	switch key {
	case statStreamFrames:
		return s.hotFrames.Add(delta)
	case statStreamRecords:
		return s.hotRecords.Add(delta)
	}
	if c := s.hot[key]; c != nil {
		return c.Add(delta)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[key] += delta
	return s.counters[key]
}

// SetMax records v as a high-water mark for key.
func (s *Stats) SetMax(key string, v int64) {
	if key == statFrameHWM {
		atomicMax(&s.hotHWM, v)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.maxima[key] {
		s.maxima[key] = v
	}
}

// Counter returns the current value of a counter.
func (s *Stats) Counter(key string) int64 {
	switch key {
	case statStreamFrames:
		return s.hotFrames.Load()
	case statStreamRecords:
		return s.hotRecords.Load()
	}
	if c := s.hot[key]; c != nil {
		return c.Load()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Max returns the recorded high-water mark for key.
func (s *Stats) Max(key string) int64 {
	if key == statFrameHWM {
		return s.hotHWM.Load()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxima[key]
}

// hotKV is one nonzero hot counter, for the map-shaped accessors.
type hotKV struct {
	key string
	val int64
}

// hotSnapshot lists the nonzero hot counters (maxima excluded), so a run
// that never touched the transport plane reports no transport keys, exactly
// as before.
func (s *Stats) hotSnapshot() []hotKV {
	var out []hotKV
	if v := s.hotFrames.Load(); v != 0 {
		out = append(out, hotKV{statStreamFrames, v})
	}
	if v := s.hotRecords.Load(); v != 0 {
		out = append(out, hotKV{statStreamRecords, v})
	}
	for k, c := range s.hot {
		if v := c.Load(); v != 0 {
			out = append(out, hotKV{k, v})
		}
	}
	return out
}

// Snapshot returns all counters (maxima suffixed ".max") as a plain map.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters)+len(s.maxima)+3)
	for k, v := range s.counters {
		out[k] = v
	}
	for k, v := range s.maxima {
		out[k+".max"] = v
	}
	for _, kv := range s.hotSnapshot() {
		out[kv.key] = kv.val
	}
	if v := s.hotHWM.Load(); v != 0 {
		out[statFrameHWM+".max"] = v
	}
	return out
}

// Keys returns the sorted counter keys (for deterministic reports).
func (s *Stats) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.counters)+2)
	for k := range s.counters {
		keys = append(keys, k)
	}
	for _, kv := range s.hotSnapshot() {
		keys = append(keys, kv.key)
	}
	sort.Strings(keys)
	return keys
}

// SumPrefix sums all counters whose key starts with the given prefix.
func (s *Stats) SumPrefix(prefix string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for k, v := range s.counters {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			total += v
		}
	}
	for _, kv := range s.hotSnapshot() {
		if k := kv.key; len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			total += kv.val
		}
	}
	return total
}

// Tracer observes records crossing node boundaries — S-Net's promise that
// "all streams can be observed individually" (§1).  Dir is "in" or "out".
// Implementations must be safe for concurrent use and must not retain the
// record.
type Tracer interface {
	Event(node, dir string, rec *Record)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(node, dir string, rec *Record)

// Event calls f.
func (f TracerFunc) Event(node, dir string, rec *Record) { f(node, dir, rec) }

// runEnv carries the per-run execution context shared by all nodes of one
// started network.
type runEnv struct {
	ctx        context.Context
	stats      *Stats
	tracer     Tracer
	onError    func(error)
	buf        int          // stream buffer capacity, in frames
	batch      int          // stream batch size B (items per frame, >= 1)
	levelSeq   atomic.Int64 // deterministic-combinator level ids
	maxDepth   int          // serial replication unfolding cap
	maxWidth   int          // parallel replication width cap
	boxWorkers int          // in-flight invocation cap per box node
	// replicaIdle > 0 makes split nodes reap replicas that have received
	// no record for that long (see WithReplicaIdleReap).
	replicaIdle time.Duration
	// legacyRouting disables the precomputed routing tables (see
	// WithLegacyRouting).
	legacyRouting bool

	// firstErr records the first runtime error of the run (Handle.Err).
	errMu    sync.Mutex
	firstErr error
}

// err returns the first runtime error reported so far.
func (e *runEnv) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

func (e *runEnv) newLevel() int { return int(e.levelSeq.Add(1)) }

func (e *runEnv) error(err error) {
	e.stats.Add("runtime.errors", 1)
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	if e.onError != nil {
		e.onError(err)
	}
}

func (e *runEnv) trace(node, dir string, rec *Record) {
	if e.tracer != nil {
		e.tracer.Event(node, dir, rec)
	}
}

// Option configures a network run.
type Option func(*runEnv)

// DefaultStreamBuffer is the per-stream frame buffer capacity applied when
// WithBuffer/WithStreamBuffer does not select one.  Together with the batch
// size B it bounds the in-flight items of every stream edge (see
// StreamCapacity), which is what the static occupancy analysis sums into a
// whole-plan memory high-water bound.
const DefaultStreamBuffer = 32

// WithBuffer sets the stream buffer capacity in frames (default
// DefaultStreamBuffer; 0 selects fully synchronous handoff).
// WithStreamBuffer is the same knob under its transport-layer name.
func WithBuffer(n int) Option {
	return func(e *runEnv) {
		if n >= 0 {
			e.buf = n
		}
	}
}

// WithStreamBuffer sets the per-stream buffer capacity in frames.  Total
// in-flight records per stream are bounded by roughly buffer × batch.
func WithStreamBuffer(n int) Option { return WithBuffer(n) }

// DefaultStreamBatch is the stream batch size B applied when neither
// WithStreamBatch nor the SNET_STREAM_BATCH environment variable selects
// one.  Flushing is adaptive (see stream.go), so a larger B never delays a
// record behind traffic that is not coming — it only lets hot streams
// amortize channel synchronization B-fold.
const DefaultStreamBatch = 8

// envStreamBatch reads the SNET_STREAM_BATCH override once per process; it
// lets deployments and CI sweep the batch size without recompiling.
var envStreamBatch = sync.OnceValue(func() int {
	if s := os.Getenv("SNET_STREAM_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return DefaultStreamBatch
})

// WithStreamBatch sets the stream batch size B: the maximum number of items
// (records and markers) a stream writer coalesces into one frame, i.e. one
// channel synchronization.  1 restores unbatched per-record handoff;
// markers and idle inputs always flush early, so deterministic-merge
// liveness and low-load latency are independent of B.
func WithStreamBatch(n int) Option {
	return func(e *runEnv) {
		if n >= 1 {
			e.batch = n
		}
	}
}

// WithLegacyRouting makes the run's parallel combinators rescore every
// record against every branch instead of consuming their precomputed
// shape-keyed dispatch tables.  It exists as the measured baseline of
// BenchmarkRouting / E16 and as a comparison oracle in tests; there is no
// reason to set it in production.
func WithLegacyRouting() Option {
	return func(e *runEnv) { e.legacyRouting = true }
}

// WithTracer installs a stream observer.
func WithTracer(t Tracer) Option {
	return func(e *runEnv) { e.tracer = t }
}

// WithErrorHandler installs a callback invoked for runtime errors (records
// that cannot be routed, failing tag expressions, panicking boxes).  Errors
// are additionally counted under "runtime.errors".
func WithErrorHandler(f func(error)) Option {
	return func(e *runEnv) { e.onError = f }
}

// WithMaxStarDepth caps the unfolding depth of serial replication (default
// 1 << 20); records that would unfold deeper are reported as errors and
// dropped.
func WithMaxStarDepth(n int) Option {
	return func(e *runEnv) {
		if n > 0 {
			e.maxDepth = n
		}
	}
}

// WithBoxWorkers sets the run's default box concurrency width W: every box
// node may run up to W invocations of its (stateless) box function at a
// time, with output order preserved by the reorder stage of the box engine
// (see boxengine.go).  The default is GOMAXPROCS; 1 restores strictly
// sequential invocation.  NewBoxConcurrent overrides the width per box.
func WithBoxWorkers(n int) Option {
	return func(e *runEnv) {
		if n > 0 {
			e.boxWorkers = n
		}
	}
}

// WithMaxSplitWidth caps the number of replicas of parallel replication
// (default 1 << 20); the tag value is folded into the cap by modulo, which
// mirrors the paper's throttling filter semantics.
func WithMaxSplitWidth(n int) Option {
	return func(e *runEnv) {
		if n > 0 {
			e.maxWidth = n
		}
	}
}

// WithReplicaIdleReap makes every split node of the run reclaim replicas
// that have received no record for at least d: the replica's input is
// closed, it drains, its goroutines unwind, and the "split.<name>.replicas"
// gauge is decremented ("split.<name>.reaped" counts the reclamations).  A
// later record with the same tag value simply creates a fresh replica.
//
// Without reaping (the default, d = 0) a split's replica map only grows,
// which under long-lived runs with a drifting key population — session
// multiplexing above all — is a goroutine and memory leak.  Replicas can
// also be retired individually, and deterministically, with the in-band
// close protocol (NewReplicaClose / NewReplicaCloseAck); the reaper is the
// belt-and-braces sweep for keys whose retirement no one announces.  Note
// that per-key record order is not preserved across a reap boundary: a
// record arriving while the reaped replica still drains starts a fresh
// replica whose output merges concurrently.
func WithReplicaIdleReap(d time.Duration) Option {
	return func(e *runEnv) {
		if d > 0 {
			e.replicaIdle = d
		}
	}
}
