package core

import (
	"context"
	"fmt"
	"strings"
)

// The compile half of the compile-then-run API.
//
// A Node tree is an immutable blueprint; Compile turns it into a checked,
// inspectable Plan: bottom-up type inference over the combinator graph (§3–4
// of the paper — box signatures seed the leaves, Serial checks
// producer/consumer compatibility under flow inheritance, the branching
// combinators compute per-branch accepted types), eager construction of the
// routing tables the hot path consumes (route.go), a serializable topology
// of the typed graph, and structured TypeErrors for defects that previously
// surfaced only at runtime: unreachable parallel branches, record shapes no
// branch accepts, box signature mismatches, records reaching a split without
// its index tag, and reserved-label violations in programmatically built
// networks.
//
// Definite errors come from a shape-flow pass (flow.go) that propagates the
// network's inferred (or declared, WithInputType) input variants through the
// graph.  The analysis is closed-world over that input type: records outside
// it still route correctly at runtime (the dispatch tables compute decisions
// for unforeseen shapes on demand), they are simply outside the static
// contract.

// TypeError codes.
const (
	// ErrCodeUnreachable marks a parallel branch no variant of the input
	// type ever routes to.
	ErrCodeUnreachable = "unreachable-branch"
	// ErrCodeNoRoute marks an input variant no parallel branch accepts —
	// the compile-time form of the runtime's ErrNoRoute.
	ErrCodeNoRoute = "no-route"
	// ErrCodeBoxReject marks a variant that reaches a box without
	// satisfying its input signature.
	ErrCodeBoxReject = "box-reject"
	// ErrCodeMissingTag marks a variant that reaches parallel replication
	// without the split's index tag.
	ErrCodeMissingTag = "missing-index-tag"
	// ErrCodeReserved marks a signature, pattern, filter or split tag using
	// the runtime's reserved "__snet_" label namespace.
	ErrCodeReserved = "reserved-label"
)

// TypeError is one definite finding of the compile phase.  Path locates the
// offending node from the root ("serial#3/parallel#5/branch[1]/box inc");
// Variant, when non-nil, is the record shape exhibiting the defect.  Pos is
// empty unless a surface-language front end (snet/lang) decorated the error
// with a source position.
type TypeError struct {
	Code    string  // one of the ErrCode constants
	Path    string  // node path from the compiled root
	Node    string  // the offending node's name
	Variant Variant // offending record shape, if any
	Msg     string
	Pos     string // source position ("line:col"), if known

	subject Node
}

func (e *TypeError) Error() string {
	var b strings.Builder
	b.WriteString("snet: ")
	if e.Pos != "" {
		b.WriteString(e.Pos)
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "type error [%s] at %s: %s", e.Code, e.Path, e.Msg)
	return b.String()
}

// Subject returns the node the error is about, for front ends that map
// nodes back to source positions.
func (e *TypeError) Subject() Node { return e.subject }

// CompileError aggregates every TypeError of one Compile call.
type CompileError struct {
	Errors []*TypeError
}

func (e *CompileError) Error() string {
	if len(e.Errors) == 1 {
		return e.Errors[0].Error()
	}
	return fmt.Sprintf("%s (and %d more type errors)", e.Errors[0].Error(), len(e.Errors)-1)
}

// Unwrap exposes the individual TypeErrors to errors.Is/As.
func (e *CompileError) Unwrap() []error {
	out := make([]error, len(e.Errors))
	for i, te := range e.Errors {
		out[i] = te
	}
	return out
}

// Topology is the serializable typed graph of a compiled network — the
// inspectable artifact behind snetd's /api/networks and snetrun -check.
type Topology struct {
	Kind     string      `json:"kind"` // box, filter, sync, observe, hide, serial, parallel, star, split
	Name     string      `json:"name"`
	Path     string      `json:"path"`
	Det      bool        `json:"det,omitempty"`
	In       []string    `json:"in,omitempty"`  // accepted input variants
	Out      []string    `json:"out,omitempty"` // produced output variants
	Sig      string      `json:"sig,omitempty"` // box signature / filter spec
	Tag      string      `json:"tag,omitempty"` // split index tag
	Exit     string      `json:"exit,omitempty"`
	Patterns []string    `json:"patterns,omitempty"` // synchrocell patterns
	Children []*Topology `json:"children,omitempty"`
	// FusionGroups, on the root topology only, lists the fused segments of
	// the execution plan: which stages run collapsed into one goroutine
	// (fuse.go).  The tree itself always describes the un-fused blueprint.
	FusionGroups []FusionGroup `json:"fusion_groups,omitempty"`
}

// compileCfg collects CompileOptions.
type compileCfg struct {
	input RecType
	fuse  bool
}

// CompileOption configures Compile.
type CompileOption func(*compileCfg)

// WithFusion enables or disables the pipeline-fusion pass (fuse.go).  It is
// on by default; WithFusion(false) keeps the execution plan stage-per-
// goroutine, which is the measured baseline of the E22 experiment and the
// programmatic form of the SNET_FUSE=0 triage switch.
func WithFusion(on bool) CompileOption {
	return func(c *compileCfg) { c.fuse = on }
}

// WithInputType declares the network's input type, overriding bottom-up
// inference as the seed of the shape-flow diagnostics: the compile contract
// narrows to exactly the declared variants, which typically sharpens
// unreachable-branch and no-route findings.
func WithInputType(t RecType) CompileOption {
	return func(c *compileCfg) { c.input = t }
}

// Plan is a compiled network: the checked blueprint plus everything the
// runtime precomputed from it.  A Plan is immutable and safe for concurrent
// use; Start may be called any number of times (each call is one run), and
// all runs share the plan's routing tables.
type Plan struct {
	root     Node
	execRoot Node // fusion-rewritten blueprint; == root when nothing fused
	groups   []FusionGroup
	in, out  RecType
	warnings []Diagnostic
	typeErrs []*TypeError
	topo     *Topology
	facts    *flowFacts
}

// Compile type-checks the network and precomputes its routing artifacts.
// On type errors it returns a non-nil *CompileError whose Errors list every
// finding; the returned Plan is still usable (Start runs the network with
// the defects intact), which is what the legacy Start shim relies on —
// callers that care about static guarantees must check the error.
func Compile(root Node, opts ...CompileOption) (*Plan, error) {
	if root == nil {
		panic("core: Compile: nil root")
	}
	cfg := compileCfg{fuse: true}
	for _, o := range opts {
		o(&cfg)
	}
	chk := &checker{}
	in, out := root.sig(chk)
	p := &Plan{root: root, execRoot: root, in: in, out: out, warnings: chk.diags}

	c := newCompiler()
	p.topo = c.walk(root, "")
	if cfg.fuse && envFuseOn() {
		p.execRoot, p.groups = fuseTree(root)
		p.topo.FusionGroups = p.groups
	}
	seed := cfg.input
	if seed == nil {
		seed = in
	}
	c.flowRoot(root, seed)
	p.warnings = append(p.warnings, c.warns...)
	p.typeErrs = c.errs
	p.facts = c.facts
	if len(c.errs) > 0 {
		return p, &CompileError{Errors: c.errs}
	}
	return p, nil
}

// MustCompile is Compile panicking on type errors.
func MustCompile(root Node, opts ...CompileOption) *Plan {
	p, err := Compile(root, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Root returns the compiled blueprint.
func (p *Plan) Root() Node { return p.root }

// ExecRoot returns the tree runs actually execute: the fusion-rewritten
// blueprint (fuse.go), or Root when the plan compiled with fusion off or
// nothing fused.  Engines that instantiate runs themselves (the shared-mode
// session engine wraps the network under its own session split) must wrap
// ExecRoot, not Root, to inherit the fused execution plan.
func (p *Plan) ExecRoot() Node { return p.execRoot }

// FusionGroups lists the fused segments of the execution plan in discovery
// order — empty when fusion is off or nothing fused.
func (p *Plan) FusionGroups() []FusionGroup { return p.groups }

// In returns the network's inferred input type.
func (p *Plan) In() RecType { return p.in }

// Out returns the network's inferred output type.
func (p *Plan) Out() RecType { return p.out }

// Warnings returns the non-fatal findings: static mismatches that flow
// inheritance may still satisfy, approximated analyses, and the legacy
// checker's diagnostics.
func (p *Plan) Warnings() []Diagnostic { return p.warnings }

// TypeErrors returns the definite findings (the same list a failing Compile
// wraps in its CompileError) — empty for a cleanly compiled plan.
func (p *Plan) TypeErrors() []*TypeError { return p.typeErrs }

// Topology returns the serializable typed graph.
func (p *Plan) Topology() *Topology { return p.topo }

func (p *Plan) String() string {
	return fmt.Sprintf("plan %s : %v -> %v", p.root, p.in, p.out)
}

// Start instantiates one run of the compiled network; see Handle.  The
// blueprint was checked and its routing tables built at Compile time, so
// instantiation is pure runtime setup.
func (p *Plan) Start(ctx context.Context, opts ...Option) *Handle {
	return Start(ctx, p.execRoot, opts...)
}

// RunAll is the Plan form of the RunAll harness.
func (p *Plan) RunAll(ctx context.Context, inputs []*Record, opts ...Option) ([]*Record, *Stats, error) {
	return RunAll(ctx, p.execRoot, inputs, opts...)
}

// RunUntil is the Plan form of the RunUntil harness.
func (p *Plan) RunUntil(ctx context.Context, inputs []*Record, stop func(*Record) bool, opts ...Option) (*Record, *Stats, error) {
	return RunUntil(ctx, p.execRoot, inputs, stop, opts...)
}

// maxCompileErrors caps the error list of one Compile.
const maxCompileErrors = 64

// compiler is the state of one Compile walk: collected findings plus the
// per-parallel-branch reachability accumulators finalized by flowRoot.
type compiler struct {
	errs    []*TypeError
	warns   []Diagnostic
	errKeys map[string]bool

	// Parallel-branch reachability accumulates across the whole flow (a
	// star operand is flowed iteratively and a node instance may appear at
	// several graph positions, so per-call judgement would misreport) and
	// is settled in finishParallel.  parInexact marks nodes some call
	// reached with an approximate variant set.
	parOrder   []*parallelNode
	parIn      map[*parallelNode][]*varSet
	parPath    map[*parallelNode]string
	parFed     map[*parallelNode]bool
	parInexact map[*parallelNode]bool

	// facts is the per-path reachability trace the flow pass leaves behind
	// for internal/analysis (see flowFacts).
	facts *flowFacts
}

func newCompiler() *compiler {
	return &compiler{
		errKeys:    map[string]bool{},
		parIn:      map[*parallelNode][]*varSet{},
		parPath:    map[*parallelNode]string{},
		parFed:     map[*parallelNode]bool{},
		parInexact: map[*parallelNode]bool{},
		facts:      newFlowFacts(),
	}
}

// typeError records a definite finding (deduplicated); when the flow has
// lost exactness (downstream of a synchrocell or a truncated variant set)
// the finding is downgraded to a warning.
func (c *compiler) typeError(exact bool, code, path string, n Node, variant Variant, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !exact {
		c.warnf(path, "%s (imprecise analysis; would be a %s error)", msg, code)
		return
	}
	key := code + "\x00" + path + "\x00" + variant.String()
	if c.errKeys[key] || len(c.errs) >= maxCompileErrors {
		return
	}
	c.errKeys[key] = true
	name := ""
	if n != nil {
		name = n.name()
	}
	c.errs = append(c.errs, &TypeError{
		Code: code, Path: path, Node: name, Variant: variant, Msg: msg, subject: n,
	})
}

func (c *compiler) warnf(path, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := "warn\x00" + path + "\x00" + msg
	if c.errKeys[key] {
		return
	}
	c.errKeys[key] = true
	c.warns = append(c.warns, Diagnostic{Node: path, Warning: true, Msg: msg})
}

// renderType renders a RecType as per-variant strings for the topology.
func renderType(t RecType) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = v.String()
	}
	return out
}

// reservedIn reports the first reserved label of a variant, if any.
func reservedIn(v Variant) (Label, bool) {
	for _, l := range v.Labels() {
		if IsReservedLabel(l.Name) {
			return l, true
		}
	}
	return Label{}, false
}

// internNode pre-interns every label a node can put on a record and
// registers the shapes its declared variants induce, so the plan's whole
// label universe is id-resolved and its canonical shapes exist before the
// first record flows.  Records of these shapes then take only the lock-free
// intern/shape read paths at runtime; out-of-plan dynamic shapes still
// intern lazily on first sight.
func internNode(n Node) {
	internShape := func(v Variant) {
		internVariant(v)
		shapeForVariant(v)
	}
	switch n := n.(type) {
	case *boxNode:
		internShape(NewVariant(n.boxSig.In...))
		for _, tuple := range n.boxSig.Out {
			internShape(NewVariant(tuple...))
		}
	case *filterNode:
		internShape(n.spec.Pattern.Variant)
		for _, items := range n.spec.Outputs {
			for _, it := range items {
				internLabel(it.Name)
			}
		}
	case *starNode:
		internShape(n.exit.Variant)
	case *splitNode:
		internLabel(n.tag)
	case *syncNode:
		for _, p := range n.patterns {
			internShape(p.Variant)
		}
	}
}

// checkReservedLabels rejects reserved-namespace labels in user-declared
// types.  The textual parsers already refuse them; this catches
// programmatically built nodes.
func (c *compiler) checkReservedLabels(path string, n Node) {
	report := func(l Label, where string) {
		c.typeError(true, ErrCodeReserved, path, n, nil,
			"%s label %s lies in the runtime's reserved %q namespace", where, l, ReservedTagPrefix)
	}
	switch n := n.(type) {
	case *boxNode:
		if l, bad := reservedIn(NewVariant(n.boxSig.In...)); bad {
			report(l, "box input")
		}
		for _, tuple := range n.boxSig.Out {
			if l, bad := reservedIn(NewVariant(tuple...)); bad {
				report(l, "box output")
			}
		}
	case *filterNode:
		if l, bad := reservedIn(n.spec.Pattern.Variant); bad {
			report(l, "filter pattern")
		}
		for _, items := range n.spec.Outputs {
			for _, it := range items {
				if IsReservedLabel(it.Name) {
					report(Label{Name: it.Name, IsTag: it.IsTag}, "filter output")
				}
			}
		}
	case *starNode:
		if l, bad := reservedIn(n.exit.Variant); bad {
			report(l, "star exit pattern")
		}
	case *splitNode:
		// SessionSplit (uncapped) is the runtime's own session-multiplexing
		// configuration; its reserved tag is intentional.
		if !n.uncapped && IsReservedLabel(n.tag) {
			report(Tag(n.tag), "split index")
		}
	case *syncNode:
		for _, p := range n.patterns {
			if l, bad := reservedIn(p.Variant); bad {
				report(l, "synchrocell pattern")
			}
		}
	}
}

// walk builds the topology, checks reserved labels, and eagerly builds the
// routing tables.  prefix is the parent path including its trailing
// separator; the node's path is prefix + name().
func (c *compiler) walk(n Node, prefix string) *Topology {
	path := prefix + n.name()
	in, out := n.sig(nil)
	topo := &Topology{Name: n.name(), Path: path, In: renderType(in), Out: renderType(out)}
	c.checkReservedLabels(path, n)
	internNode(n)
	switch n := n.(type) {
	case *boxNode:
		topo.Kind = "box"
		topo.Sig = n.boxSig.String()
	case *filterNode:
		topo.Kind = "filter"
		topo.Sig = n.spec.String()
	case *identityNode:
		topo.Kind = "observe"
	case *hideNode:
		topo.Kind = "hide"
	case *syncNode:
		topo.Kind = "sync"
		for _, p := range n.patterns {
			topo.Patterns = append(topo.Patterns, p.String())
		}
	case *serialNode:
		topo.Kind = "serial"
		topo.Children = []*Topology{c.walk(n.a, path+"/"), c.walk(n.b, path+"/")}
	case *parallelNode:
		topo.Kind = "parallel"
		topo.Det = n.det
		n.routes() // build the dispatch table at compile time
		for i, b := range n.branches {
			topo.Children = append(topo.Children, c.walk(b, fmt.Sprintf("%s/branch[%d]/", path, i)))
		}
	case *starNode:
		topo.Kind = "star"
		topo.Det = n.det
		topo.Exit = n.exit.String()
		topo.Children = []*Topology{c.walk(n.operand, path+"/operand/")}
	case *splitNode:
		topo.Kind = "split"
		topo.Det = n.det
		topo.Tag = n.tag
		topo.Children = []*Topology{c.walk(n.operand, path+"/operand/")}
	default:
		topo.Kind = "node"
	}
	return topo
}
