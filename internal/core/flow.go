package core

import "fmt"

// Shape-flow analysis: the definite-error half of Compile.
//
// The pass propagates a finite set of record shapes (variants) through the
// combinator graph, starting from the network's inferred or declared input
// type, mirroring what the runtime does to records: boxes consume their
// signature and attach unconsumed labels by flow inheritance, filters
// rewrite matching shapes, parallel composition routes each shape to the
// branches that could win best-match dispatch, serial replication iterates
// its operand to a fixpoint, parallel replication requires the index tag.
//
// Because shapes are propagated exactly, failures the pass discovers are
// definite for records within the analysed input type: a shape rejected by
// a box, a shape matching no parallel branch, a shape without a split's
// index tag, a parallel branch no shape ever reaches.  Two constructs make
// the set approximate — synchrocells (their merged output depends on stored
// record contents) and variant-set truncation at maxFlowVariants — after
// which findings downgrade to warnings instead of errors.

// maxFlowVariants bounds the variant set at any point of the analysis; a
// network that exceeds it (unbounded label growth through a star, usually)
// is analysed approximately instead of looping forever.
const maxFlowVariants = 128

// varSet is an insertion-ordered set of variants keyed by their canonical
// rendering.
type varSet struct {
	keys map[string]bool
	list []Variant
}

func newVarSet() *varSet { return &varSet{keys: map[string]bool{}} }

// add inserts v, reporting whether it was new.
func (s *varSet) add(v Variant) bool {
	k := v.String()
	if s.keys[k] {
		return false
	}
	s.keys[k] = true
	s.list = append(s.list, v)
	return true
}

func (s *varSet) size() int { return len(s.list) }

// flowFacts is the shape-flow pass's per-path trace: for every node path the
// pass visited, the union of variants that entered (in) and left (out) it
// across all visits, and whether any visit had already lost exactness
// (downstream of a synchrocell or after variant-set truncation).  A path
// absent from in was never visited at all — its node is unreachable under
// the analysed input type.
type flowFacts struct {
	in, out map[string]*varSet
	inexact map[string]bool
}

func newFlowFacts() *flowFacts {
	return &flowFacts{
		in:      map[string]*varSet{},
		out:     map[string]*varSet{},
		inexact: map[string]bool{},
	}
}

// record unions vs into the set at path, creating the (possibly empty)
// entry so that "visited with zero variants" is distinguishable from "never
// visited".
func (f *flowFacts) record(m map[string]*varSet, path string, vs []Variant) {
	s, ok := m[path]
	if !ok {
		s = newVarSet()
		m[path] = s
	}
	for _, v := range vs {
		s.add(v)
	}
}

// variants returns the recorded variant list at path and whether the path
// was visited.
func (f *flowFacts) variants(m map[string]*varSet, path string) ([]Variant, bool) {
	s, ok := m[path]
	if !ok {
		return nil, false
	}
	return s.list, true
}

// flowRoot runs the shape-flow pass from the given input type and settles
// the deferred parallel-branch reachability findings.
func (c *compiler) flowRoot(root Node, input RecType) {
	in := make([]Variant, 0, len(input))
	seen := newVarSet()
	for _, v := range input {
		if seen.add(v) {
			in = append(in, v)
		}
	}
	c.flow(root, in, "", true)
	c.finishParallel()
}

// flow propagates the input variants through n, returning the output
// variants and whether the analysis is still exact.  prefix is the parent
// path including its trailing separator (as in compiler.walk).
//
// Beyond computing outputs, flow records per-path reachability facts (the
// union of variants seen entering and leaving each node across every visit,
// plus whether any visit was approximate) into c.facts — the raw material of
// the post-compile liveness analysis in internal/analysis.  A star operand
// is flowed once per fixpoint iteration and shared sub-nets appear at
// several paths, so the facts are keyed by path and accumulated as unions.
func (c *compiler) flow(n Node, in []Variant, prefix string, exact bool) ([]Variant, bool) {
	path := prefix + n.name()
	c.facts.record(c.facts.in, path, in)
	if !exact {
		// Input-side exactness only: a node whose *own* output is
		// approximate (a synchrocell) still received an exact input, and
		// verdicts about what reaches the node should say so.
		c.facts.inexact[path] = true
	}
	out, e := c.flowNode(n, in, path, exact)
	c.facts.record(c.facts.out, path, out)
	return out, e
}

// flowNode dispatches on the node kind; path is the node's own path.
func (c *compiler) flowNode(n Node, in []Variant, path string, exact bool) ([]Variant, bool) {
	switch n := n.(type) {
	case *boxNode:
		return c.flowBox(n, in, path, exact), exact
	case *filterNode:
		return c.flowFilter(n, in), exact
	case *identityNode:
		return in, exact
	case *hideNode:
		out := newVarSet()
		for _, v := range in {
			w := make(Variant, len(v))
			for l := range v {
				w[l] = struct{}{}
			}
			for _, tag := range n.tags {
				delete(w, Tag(tag))
			}
			out.add(w)
		}
		return out.list, exact
	case *syncNode:
		// A synchrocell's merged output carries the union of its stored
		// records' labels, which depend on runtime contents; approximate
		// with the pattern union and pass-through, and drop exactness.
		out := newVarSet()
		for _, v := range in {
			out.add(v)
		}
		merged := Variant{}
		for _, p := range n.patterns {
			merged = merged.Union(p.Variant)
		}
		out.add(merged)
		return out.list, false
	case *serialNode:
		mid, e := c.flow(n.a, in, path+"/", exact)
		return c.flow(n.b, mid, path+"/", e)
	case *parallelNode:
		return c.flowParallel(n, in, path, exact)
	case *starNode:
		return c.flowStar(n, in, path, exact)
	case *splitNode:
		passed := make([]Variant, 0, len(in))
		for _, v := range in {
			if !v.Has(Tag(n.tag)) {
				c.typeError(exact, ErrCodeMissingTag, path, n, v,
					"records of variant %s reach split %s without its index tag <%s>",
					v, n.label, n.tag)
				continue
			}
			passed = append(passed, v)
		}
		return c.flow(n.operand, passed, path+"/operand/", exact)
	}
	// Unknown node kind: give up on exactness rather than guess.
	return in, false
}

// flowBox applies a box's signature and flow inheritance to each incoming
// variant; shapes that cannot satisfy the signature are definite rejects.
func (c *compiler) flowBox(n *boxNode, in []Variant, path string, exact bool) []Variant {
	consumed := NewVariant(n.boxSig.In...)
	out := newVarSet()
	for _, v := range in {
		if !consumed.SubsetOf(v) {
			c.typeError(exact, ErrCodeBoxReject, path, n, v,
				"records of variant %s reach box %s but do not satisfy its signature %s",
				v, n.label, n.boxSig)
			continue
		}
		for _, tuple := range n.boxSig.Out {
			o := NewVariant(tuple...)
			for l := range v {
				if !consumed.Has(l) {
					o[l] = struct{}{} // flow inheritance
				}
			}
			out.add(o)
		}
	}
	return out.list
}

// flowFilter rewrites matching variants through the filter's output
// specifiers (with flow inheritance of unconsumed labels); non-matching
// variants forward unchanged, and a guarded pattern may do either.
func (c *compiler) flowFilter(n *filterNode, in []Variant) []Variant {
	pat := n.spec.Pattern
	out := newVarSet()
	for _, v := range in {
		if !pat.Variant.SubsetOf(v) {
			out.add(v) // runtime forwards unmatched records unchanged
			continue
		}
		if pat.Guard != nil {
			out.add(v) // the guard may fail at runtime
		}
		for _, items := range n.spec.Outputs {
			o := Variant{}
			for _, it := range items {
				o[Label{Name: it.Name, IsTag: it.IsTag}] = struct{}{}
			}
			for l := range v {
				if !pat.Variant.Has(l) && !o.Has(l) {
					o[l] = struct{}{} // flow inheritance
				}
			}
			out.add(o)
		}
	}
	return out.list
}

// flowParallel routes each variant to every branch best-match dispatch
// could select for it, accumulating per-branch reachability (settled later
// in finishParallel) and recursing into each branch with the variants it
// receives.  A node instance may appear at several graph positions (shared
// sub-nets), so the reachability accumulator in c.parIn spans every call
// while the routing below is strictly per call — the second occurrence must
// flow its variants downstream even if the first already saw them.
func (c *compiler) flowParallel(n *parallelNode, in []Variant, path string, exact bool) ([]Variant, bool) {
	t := n.routes()
	sets, ok := c.parIn[n]
	if !ok {
		sets = make([]*varSet, len(n.branches))
		for i := range sets {
			sets[i] = newVarSet()
		}
		c.parIn[n] = sets
		c.parPath[n] = path
		c.parOrder = append(c.parOrder, n)
	}
	if !exact {
		c.parInexact[n] = true
	}
	perBranch := make([]*varSet, len(n.branches))
	for i := range perBranch {
		perBranch[i] = newVarSet()
	}
	for _, v := range in {
		c.parFed[n] = true
		winners := possibleWinners(t, v, n.det)
		if len(winners) == 0 {
			c.typeError(exact, ErrCodeNoRoute, path, n, v,
				"records of variant %s match no branch of %s (branch types: %v)",
				v, n.label, t.accept)
			continue
		}
		for _, w := range winners {
			sets[w].add(v)
			perBranch[w].add(v)
		}
	}
	out := newVarSet()
	stillExact := exact
	for i, b := range n.branches {
		if perBranch[i].size() == 0 {
			continue
		}
		bo, e := c.flow(b, perBranch[i].list, branchPrefix(path, i), exact)
		stillExact = stillExact && e
		for _, v := range bo {
			out.add(v)
		}
	}
	return out.list, stillExact
}

func branchPrefix(path string, i int) string {
	return fmt.Sprintf("%s/branch[%d]/", path, i)
}

// finishParallel settles branch reachability after the whole network has
// been flowed: a branch of a fed parallel combinator that received no
// variant is unreachable for the analysed input type.  If any call reached
// the node with an approximate variant set (downstream of a synchrocell,
// or after truncation), the variants that would reach the branch may have
// been dropped, so the finding downgrades to a warning like every other
// inexact one.
func (c *compiler) finishParallel() {
	for _, n := range c.parOrder {
		if !c.parFed[n] {
			continue // the combinator itself is unreached; reported upstream
		}
		for i, set := range c.parIn[n] {
			if set.size() > 0 {
				continue
			}
			t := n.routes()
			c.typeError(!c.parInexact[n], ErrCodeUnreachable,
				branchPrefix(c.parPath[n], i)+n.branches[i].name(), n.branches[i], nil,
				"branch %d of %s (accepted type %v) is unreachable: no variant of the input type routes to it",
				i, n.label, t.accept[i])
		}
	}
}

// possibleWinners returns, ascending, every branch best-match dispatch
// could select for a record of the given shape under some outcome of the
// guarded branches' guards (and, for nondeterministic combinators, of tie
// rotation).
func possibleWinners(t *routeTable, shape Variant, det bool) []int {
	n := len(t.accept)
	score := make([]int, n)
	guarded := make([]bool, n)
	for i := range score {
		score[i] = -1
	}
	for i, st := range t.static {
		if st == nil {
			continue
		}
		for _, w := range st {
			if len(w) > score[i] && w.SubsetOf(shape) {
				score[i] = len(w)
			}
		}
	}
	for _, g := range t.gb {
		guarded[g.idx] = true
		if g.pattern.Variant.SubsetOf(shape) {
			score[g.idx] = len(g.pattern.Variant)
		}
	}
	var winners []int
	for b := 0; b < n; b++ {
		if score[b] < 0 {
			continue
		}
		ok := true
		for j := 0; j < n && ok; j++ {
			if j == b || guarded[j] {
				continue // a guarded competitor may be off
			}
			if det && j < b {
				// Deterministic ties resolve leftmost: an earlier branch
				// scoring at least as high always wins.
				if score[j] >= score[b] {
					ok = false
				}
			} else if score[j] > score[b] {
				ok = false
			}
		}
		if ok {
			winners = append(winners, b)
		}
	}
	return winners
}

// flowStar iterates the star's dispatcher to a fixpoint: variants matching
// the exit pattern leave, the rest feed the operand, whose outputs re-enter
// the dispatcher.
func (c *compiler) flowStar(n *starNode, in []Variant, path string, exact bool) ([]Variant, bool) {
	exits := newVarSet()
	seen := newVarSet()
	frontier := in
	for len(frontier) > 0 {
		var toOperand []Variant
		for _, v := range frontier {
			if !seen.add(v) {
				continue
			}
			if n.exit.Variant.SubsetOf(v) {
				exits.add(v)
				if n.exit.Guard == nil {
					continue // definitely exits
				}
				// A guarded exit may fail; the record then enters the chain.
			}
			toOperand = append(toOperand, v)
		}
		if len(toOperand) == 0 {
			break
		}
		if seen.size() > maxFlowVariants {
			c.warnf(path, "star %s: variant set exceeded %d during analysis; results are approximate",
				n.label, maxFlowVariants)
			exact = false
			break
		}
		opOut, e := c.flow(n.operand, toOperand, path+"/operand/", exact)
		exact = e
		frontier = opOut
	}
	return exits.list, exact
}
