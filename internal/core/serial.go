package core

import "sync"

// serialNode is the serial combinator A..B: the output stream of A feeds the
// input stream of B; the pair operates as a pipeline (§4).
//
// This is the general form — one goroutine and one bounded stream per
// stage.  Compile's fusion pass (fuse.go) collapses runs of lightweight
// stages on a serial spine into single-goroutine fusedNodes, so in a
// compiled plan the serialNodes that remain are the ones separating true
// concurrency barriers.
type serialNode struct {
	label string
	a, b  Node
}

// Serial composes nodes left to right into a pipeline — the paper's (A..B).
// It accepts any number of stages for convenience; Serial(a) is a.
func Serial(nodes ...Node) Node {
	switch len(nodes) {
	case 0:
		panic("core: Serial needs at least one node")
	case 1:
		return nodes[0]
	}
	n := nodes[0]
	for _, m := range nodes[1:] {
		n = &serialNode{label: autoName("serial"), a: n, b: m}
	}
	return n
}

func (s *serialNode) name() string   { return s.label }
func (s *serialNode) String() string { return "(" + s.a.String() + " .. " + s.b.String() + ")" }

func (s *serialNode) sig(c *checker) (RecType, RecType) {
	aIn, aOut := s.a.sig(c)
	bIn, bOut := s.b.sig(c)
	if c != nil {
		c.checkSerial(s, aOut, bIn)
	}
	return aIn, bOut
}

func (s *serialNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	midR, midW := newStream(env)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.a.run(env, in, midW)
	}()
	s.b.run(env, midR, out)
	// If b stopped early (cancellation) a may still be blocked sending to
	// mid; Discard is idempotent, so this is safe whether or not b already
	// detached a drainer itself.  Wait so run has no stragglers once it
	// returns.
	midR.Discard()
	wg.Wait()
}
