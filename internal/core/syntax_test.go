package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTagExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		tags map[string]int
		want int
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"10-3-2", nil, 5}, // left assoc
		{"<k>%4", map[string]int{"k": 9}, 1},
		{"-<k>", map[string]int{"k": 5}, -5},
		{"!0", nil, 1},
		{"!7", nil, 0},
		{"10/3", nil, 3},
		{"<a>+<b>", map[string]int{"a": 2, "b": 40}, 42},
		{"<level> > 40", map[string]int{"level": 41}, 1},
		{"<level> > 40", map[string]int{"level": 40}, 0},
		{"<a> == <b>", map[string]int{"a": 1, "b": 1}, 1},
		{"<a> != <b>", map[string]int{"a": 1, "b": 1}, 0},
		{"<a> <= 3 && <a> >= 1", map[string]int{"a": 2}, 1},
		{"<a> < 1 || <a> > 3", map[string]int{"a": 2}, 0},
		{"1 < 2", nil, 1},
		{"2 <= 2", nil, 1},
	}
	for _, c := range cases {
		e, err := ParseTagExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got, err := e.Eval(c.tags)
		if err != nil {
			t.Fatalf("%q: eval: %v", c.src, err)
		}
		if got != c.want {
			t.Fatalf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestTagExprShortCircuit(t *testing.T) {
	// <missing> on the right of && must not be evaluated when the left
	// side is false.
	e := MustParseTagExpr("0 && <missing>")
	if v, err := e.Eval(nil); err != nil || v != 0 {
		t.Fatalf("short-circuit && broken: %v %v", v, err)
	}
	e = MustParseTagExpr("1 || <missing>")
	if v, err := e.Eval(nil); err != nil || v != 1 {
		t.Fatalf("short-circuit || broken: %v %v", v, err)
	}
}

func TestTagExprErrors(t *testing.T) {
	if _, err := ParseTagExpr("1 +"); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ParseTagExpr("(1"); err == nil {
		t.Fatal("want parse error for unclosed paren")
	}
	if _, err := ParseTagExpr("1 2"); err == nil {
		t.Fatal("want trailing-input error")
	}
	if _, err := ParseTagExpr("&"); err == nil {
		t.Fatal("want lex error for single &")
	}
	if _, err := ParseTagExpr("a"); err == nil {
		t.Fatal("bare identifiers are not tag expressions")
	}
	for _, src := range []string{"1/0", "1%0", "<k>+1"} {
		e := MustParseTagExpr(src)
		if _, err := e.Eval(map[string]int{}); err == nil {
			t.Fatalf("%q: want eval error", src)
		}
	}
	var se *SyntaxError
	_, err := ParseTagExpr("@")
	if se, _ = err.(*SyntaxError); se == nil || !strings.Contains(se.Error(), "@") {
		t.Fatalf("syntax error quality: %v", err)
	}
}

func TestTagExprTagRefs(t *testing.T) {
	e := MustParseTagExpr("<a>+<b>*<a>")
	refs := e.TagRefs(nil)
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
}

func TestMustParseTagExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTagExpr must panic on bad input")
		}
	}()
	MustParseTagExpr("+++")
}

// Property: String() of a parsed expression reparses to an expression with
// identical evaluation on a fixed environment.
func TestQuickTagExprRoundTrip(t *testing.T) {
	exprs := []string{
		"1+2*3", "<k>%4", "(<a>-<b>)*2", "<a> > 3 && <b> < 2",
		"-<k>+7", "!(<a>==<b>)", "<a>/2", "<a> >= <b> || <a> != 3",
	}
	env := map[string]int{"a": 5, "b": 2, "k": 11}
	f := func(pick uint8) bool {
		src := exprs[int(pick)%len(exprs)]
		e1 := MustParseTagExpr(src)
		e2 := MustParseTagExpr(e1.String())
		v1, err1 := e1.Eval(env)
		v2, err2 := e2.Eval(env)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePattern(t *testing.T) {
	p := MustParsePattern("{board, <done>}")
	if !p.Variant.Equal(v(Field("board"), Tag("done"))) {
		t.Fatalf("pattern variant = %v", p.Variant)
	}
	if p.Guard != nil {
		t.Fatal("no guard expected")
	}
	rec := NewRecord().SetField("board", 1).SetTag("done", 1).SetField("extra", 2)
	if !p.Matches(rec) {
		t.Fatal("superset record must match")
	}
	if p.Matches(NewRecord().SetField("board", 1)) {
		t.Fatal("missing tag must not match")
	}
}

func TestParsePatternGuard(t *testing.T) {
	// The paper's throttled exit: {<level>} | <level> > 40
	p := MustParsePattern("{<level>} | <level> > 40")
	if p.Guard == nil {
		t.Fatal("guard missing")
	}
	if !p.Matches(NewRecord().SetTag("level", 41)) {
		t.Fatal("level 41 must exit")
	}
	if p.Matches(NewRecord().SetTag("level", 40)) {
		t.Fatal("level 40 must not exit")
	}
	// "if" keyword form
	p2 := MustParsePattern("{<level>} if <level> > 40")
	if !p2.Matches(NewRecord().SetTag("level", 99)) {
		t.Fatal("if-guard form broken")
	}
}

func TestPatternEmpty(t *testing.T) {
	p := MustParsePattern("{}")
	if !p.Matches(NewRecord()) || !p.Matches(NewRecord().SetField("x", 1)) {
		t.Fatal("empty pattern must match everything")
	}
}

func TestPatternGuardEvalErrorMeansNoMatch(t *testing.T) {
	p := MustParsePattern("{} | <ghost> > 0")
	if p.Matches(NewRecord()) {
		t.Fatal("guard referencing absent tag must not match")
	}
}

func TestPatternParseErrors(t *testing.T) {
	for _, src := range []string{"{", "{a,}", "{a} |", "{a} extra", "a"} {
		if _, err := ParsePattern(src); err == nil {
			t.Fatalf("%q: want error", src)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := MustParsePattern("{a,<t>} | <t> % 2 == 0")
	s := p.String()
	p2 := MustParsePattern(s)
	if !p2.Variant.Equal(p.Variant) || p2.Guard == nil {
		t.Fatalf("pattern round-trip broke: %q", s)
	}
}

func TestParseSignature(t *testing.T) {
	// The paper's example: box foo (a,<b>) -> (c) | (c,d,<e>)
	s := MustParseSignature("(a,<b>) -> (c) | (c,d,<e>)")
	if len(s.In) != 2 || s.In[0] != Field("a") || s.In[1] != Tag("b") {
		t.Fatalf("In = %v", s.In)
	}
	if len(s.Out) != 2 || len(s.Out[0]) != 1 || len(s.Out[1]) != 3 {
		t.Fatalf("Out = %v", s.Out)
	}
	if s.Out[1][2] != Tag("e") {
		t.Fatalf("Out[1] = %v", s.Out[1])
	}
	// Type signature drops ordering: {a,<b>} -> {c} | {c,d,<e>}
	if !s.InType()[0].Equal(v(Field("a"), Tag("b"))) {
		t.Fatal("InType broken")
	}
	if len(s.OutType()) != 2 {
		t.Fatal("OutType broken")
	}
	if got := s.String(); got != "(a,<b>) -> (c) | (c,d,<e>)" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseSignatureEmptyTuples(t *testing.T) {
	s := MustParseSignature("() -> (<k>)")
	if len(s.In) != 0 || len(s.Out) != 1 {
		t.Fatalf("sig = %v", s)
	}
}

func TestParseSignatureErrors(t *testing.T) {
	for _, src := range []string{
		"(a) (b)", "(a) ->", "(a -> (b)", "(a,a) -> (b)", "(a) -> (b,b)", "(a) -> (b) trailing",
	} {
		if _, err := ParseSignature(src); err == nil {
			t.Fatalf("%q: want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"pattern":   func() { MustParsePattern("{") },
		"signature": func() { MustParseSignature("nope") },
		"filter":    func() { MustParseFilter("[") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

// Regression: micro-form syntax errors in multi-line sources report
// line:column instead of a bare byte offset (useless past the first line),
// quoting only the offending line.
func TestSyntaxErrorLineCol(t *testing.T) {
	src := "[{a, b, <c>} ->\n  {a, z=a, <t>};\n  {b, a=q, <c>=<c>+1}]"
	_, err := ParseFilter(src)
	if err == nil {
		t.Fatal("ParseFilter accepted a bad source")
	}
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("err %T is not *SyntaxError", err)
	}
	line, col := serr.LineCol()
	if line != 3 || col != 10 {
		t.Fatalf("LineCol = %d:%d, want 3:10 (err: %v)", line, col, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "3:10") || strings.Contains(msg, "\n") {
		t.Fatalf("rendering = %q, want line:col and no embedded newlines", msg)
	}
	// Single-line sources keep the compact offset form.
	_, err = ParseFilter("{a} -> {q}")
	if err == nil || !strings.Contains(err.Error(), "at 9 in") {
		t.Fatalf("single-line rendering changed: %v", err)
	}
}
