package core

import (
	"bytes"
	"encoding/hex"
	"math"
	"reflect"
	"strings"
	"testing"
)

// flatRecordsEqual compares two records label by label (DeepEqual on field
// values, so []byte fields compare by content).
func flatRecordsEqual(a, b *Record) bool {
	if a.ShapeKey() != b.ShapeKey() {
		return false
	}
	for _, name := range a.FieldNames() {
		av, _ := a.Field(name)
		bv, _ := b.Field(name)
		if !reflect.DeepEqual(av, bv) {
			return false
		}
	}
	for _, name := range a.TagNames() {
		av, _ := a.Tag(name)
		bv, _ := b.Tag(name)
		if av != bv {
			return false
		}
	}
	return true
}

func mustFlat(t *testing.T, r *Record) []byte {
	t.Helper()
	buf, err := r.AppendFlat(nil)
	if err != nil {
		t.Fatalf("AppendFlat(%s): %v", r, err)
	}
	return buf
}

// TestFlatGolden pins the wire bytes of representative records, so format
// drift is an explicit test change, never an accident.
func TestFlatGolden(t *testing.T) {
	cases := []struct {
		name string
		rec  *Record
		hex  string
	}{
		{"empty", NewRecord(), "010000"},
		// 01 | 1 field | "a" | str "x" | 1 tag | "t" | varint 5
		{"one-each", NewRecord().SetField("a", "x").SetTag("t", 5),
			"010101610501780101740a"},
		// 01 | 0 fields | 1 tag | "n" | varint -1 (zigzag 01)
		{"negative-tag", NewRecord().SetTag("n", -1), "010001016e01"},
		// 01 | 1 field "b" = bool true | 0 tags
		{"bool", NewRecord().SetField("b", true), "01010162010100"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hex.EncodeToString(mustFlat(t, tc.rec))
			if got != tc.hex {
				t.Fatalf("flat(%s) = %s, want %s", tc.rec, got, tc.hex)
			}
		})
	}
}

// TestFlatCanonicalOrder checks insertion order does not leak into the
// encoding: the slot layout is canonical, so the bytes are too.
func TestFlatCanonicalOrder(t *testing.T) {
	fwd := NewRecord().SetField("a", 1).SetField("b", 2).SetTag("x", 3).SetTag("y", 4)
	rev := NewRecord().SetTag("y", 4).SetTag("x", 3).SetField("b", 2).SetField("a", 1)
	if fb, rb := mustFlat(t, fwd), mustFlat(t, rev); !bytes.Equal(fb, rb) {
		t.Fatalf("insertion order leaked into encoding:\n fwd %x\n rev %x", fb, rb)
	}
}

// TestFlatRoundTrip round-trips every wire type, a dynamic (never compiled)
// shape, and a reserved-tag control record.
func TestFlatRoundTrip(t *testing.T) {
	recs := []*Record{
		NewRecord(),
		NewRecord().SetField("s", "hello").SetField("i", 42).SetField("i64", int64(-7)).
			SetField("f", math.Pi).SetField("b", true).SetField("raw", []byte{0, 1, 2}).
			SetTag("t", -123456),
		NewRecord().SetField("dyn_never_compiled_label_xyzzy", "v").
			SetTag("dyn_never_compiled_tag_xyzzy", 9),
		NewReplicaCloseAck("k", 3),
	}
	for _, r := range recs {
		buf := mustFlat(t, r)
		got, rest, err := DecodeFlat(buf)
		if err != nil {
			t.Fatalf("DecodeFlat(%x): %v", buf, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeFlat(%x): %d trailing bytes", buf, len(rest))
		}
		if !flatRecordsEqual(r, got) {
			t.Fatalf("round trip mutated record: %s -> %s", r, got)
		}
		if r.HasReservedLabel() != got.HasReservedLabel() {
			t.Fatalf("reserved flag lost in round trip of %s", r)
		}
		// The decoded record's shape is the interned one: encoding it again
		// is byte-identical.
		again := mustFlat(t, got)
		if !bytes.Equal(buf, again) {
			t.Fatalf("re-encode diverged:\n  %x\n  %x", buf, again)
		}
	}
}

// TestFlatSharedShape checks a round-tripped record lands on the same
// interned *shape as a natively built one — the decode path feeds the same
// registry the compiler pre-populates.
func TestFlatSharedShape(t *testing.T) {
	r := NewRecord().SetField("pos", "here").SetTag("lvl", 2)
	buf := mustFlat(t, r)
	got, _, err := DecodeFlat(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.shapeRef() != r.shapeRef() {
		t.Fatalf("decoded record has shape %p, native %p (keys %q / %q)",
			got.shapeRef(), r.shapeRef(), got.ShapeKey(), r.ShapeKey())
	}
}

// TestFlatConcatenatedStream checks DecodeFlat consumes exactly one record,
// returning the rest — the framing a wire transport needs.
func TestFlatConcatenatedStream(t *testing.T) {
	a := NewRecord().SetTag("n", 1)
	b := NewRecord().SetField("s", "x")
	buf := mustFlat(t, a)
	buf = append(buf, mustFlat(t, b)...)
	gotA, rest, err := DecodeFlat(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeFlat(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !flatRecordsEqual(a, gotA) || !flatRecordsEqual(b, gotB) {
		t.Fatalf("stream decode: got %s, %s, %d trailing", gotA, gotB, len(rest))
	}
}

// TestFlatDegenerateLabels pins the registry-collision regression the
// fuzzer found: label names that are empty or contain the ShapeKey
// separators (',', '|') must still intern distinct shapes — the registry
// keys on a length-prefixed encoding, not the pretty ShapeKey.
func TestFlatDegenerateLabels(t *testing.T) {
	r := NewRecord().SetField("", 1).SetField("a,b", 2).SetTag("x|y", 3)
	if r.shapeRef() == emptyShape {
		t.Fatal("degenerate shape aliased the empty shape")
	}
	if v, ok := r.Field(""); !ok || v != 1 {
		t.Fatalf("empty-named field lost: %v %v", v, ok)
	}
	if v, ok := r.Field("a,b"); !ok || v != 2 {
		t.Fatalf("comma field lost: %v %v", v, ok)
	}
	two := NewRecord().SetField("a", 1).SetField("b", 2)
	if two.shapeRef() == NewRecord().SetField("a,b", 0).shapeRef() {
		t.Fatal("{a,b} and {a, b} aliased one shape")
	}
	buf := mustFlat(t, r)
	got, _, err := DecodeFlat(buf)
	if err != nil || !flatRecordsEqual(r, got) {
		t.Fatalf("degenerate labels did not round-trip: %v, %s", err, got)
	}
}

// TestFlatRejectsNonWireField checks box-level payloads are refused, not
// silently mangled.
func TestFlatRejectsNonWireField(t *testing.T) {
	type opaque struct{ int }
	_, err := NewRecord().SetField("x", opaque{1}).AppendFlat(nil)
	if err == nil || !strings.Contains(err.Error(), "not a flat wire type") {
		t.Fatalf("want wire-type error, got %v", err)
	}
}

// TestFlatDecodeErrors checks corrupt input fails loudly, never panics.
func TestFlatDecodeErrors(t *testing.T) {
	good := mustFlat(t, NewRecord().SetField("a", "x").SetTag("t", 5))
	bad := [][]byte{
		nil,
		{0x00},                               // wrong version
		{flatVersion},                        // missing field count
		good[:3],                             // truncated mid-name
		good[:len(good)-1],                   // truncated final varint
		{flatVersion, 0x01, 0x01, 'a', 0xff}, // unknown value kind
	}
	for _, data := range bad {
		if _, _, err := DecodeFlat(data); err == nil {
			t.Fatalf("DecodeFlat(%x) accepted corrupt input", data)
		}
	}
}

// FuzzFlatRoundTrip throws arbitrary bytes at DecodeFlat; whatever decodes
// must re-encode canonically and decode back to an equal record.
func FuzzFlatRoundTrip(f *testing.F) {
	seed := func(r *Record) {
		buf, err := r.AppendFlat(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(NewRecord())
	seed(NewRecord().SetField("a", "x").SetTag("t", 5))
	seed(NewRecord().SetField("f", 2.5).SetField("raw", []byte("bytes")).SetTag("n", -3))
	seed(NewReplicaCloseAck("k", 1))
	f.Add([]byte{flatVersion, 0x02, 0x01, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, _, err := DecodeFlat(data)
		if err != nil {
			return
		}
		buf, err := rec.AppendFlat(nil)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		again, rest, err := DecodeFlat(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("canonical re-encode does not decode: %v (%d trailing)", err, len(rest))
		}
		if !flatRecordsEqual(rec, again) {
			t.Fatalf("round trip mutated record: %s -> %s", rec, again)
		}
	})
}
