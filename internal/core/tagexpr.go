package core

import (
	"fmt"
	"strconv"
	"strings"
)

// TagExpr is an integer expression over tag values, used on the right-hand
// side of filter tag assignments ("<k>=<k>%4") and in pattern guards
// ("{<level>} | <level> > 40").  The expression language is C-flavoured:
// integers, tag references <name>, unary - and !, binary + - * / %, the
// comparisons == != < <= > >=, and && / ||.  Booleans are represented as 0/1
// integers, matching the paper's treatment of tags as plain integers.
type TagExpr interface {
	// Eval computes the expression over the given tag environment.
	Eval(tags map[string]int) (int, error)
	// TagRefs appends the tag names referenced by the expression.
	TagRefs(dst []string) []string
	String() string
}

// EvalError reports a failed tag-expression evaluation.
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("core: cannot evaluate %q: %s", e.Expr, e.Msg)
}

type intLit int

func (e intLit) Eval(map[string]int) (int, error) { return int(e), nil }
func (e intLit) TagRefs(dst []string) []string    { return dst }
func (e intLit) String() string                   { return strconv.Itoa(int(e)) }

type tagRef string

func (e tagRef) Eval(tags map[string]int) (int, error) {
	v, ok := tags[string(e)]
	if !ok {
		return 0, &EvalError{Expr: e.String(), Msg: "tag not present in record"}
	}
	return v, nil
}
func (e tagRef) TagRefs(dst []string) []string { return append(dst, string(e)) }
func (e tagRef) String() string                { return "<" + string(e) + ">" }

type unaryExpr struct {
	op byte // '-' or '!'
	x  TagExpr
}

func (e *unaryExpr) Eval(tags map[string]int) (int, error) {
	v, err := e.x.Eval(tags)
	if err != nil {
		return 0, err
	}
	if e.op == '-' {
		return -v, nil
	}
	if v == 0 {
		return 1, nil
	}
	return 0, nil
}
func (e *unaryExpr) TagRefs(dst []string) []string { return e.x.TagRefs(dst) }
func (e *unaryExpr) String() string                { return string(e.op) + e.x.String() }

type binExpr struct {
	op   string
	x, y TagExpr
}

func (e *binExpr) Eval(tags map[string]int) (int, error) {
	a, err := e.x.Eval(tags)
	if err != nil {
		return 0, err
	}
	// Short-circuit the logical operators.
	switch e.op {
	case "&&":
		if a == 0 {
			return 0, nil
		}
		b, err := e.y.Eval(tags)
		if err != nil {
			return 0, err
		}
		return btoi(b != 0), nil
	case "||":
		if a != 0 {
			return 1, nil
		}
		b, err := e.y.Eval(tags)
		if err != nil {
			return 0, err
		}
		return btoi(b != 0), nil
	}
	b, err := e.y.Eval(tags)
	if err != nil {
		return 0, err
	}
	return e.apply(a, b)
}

// apply evaluates the non-short-circuit operators over computed operands; it
// is shared by the map-environment Eval and the slot-resolved evalTagRec.
func (e *binExpr) apply(a, b int) (int, error) {
	switch e.op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, &EvalError{Expr: e.String(), Msg: "division by zero"}
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, &EvalError{Expr: e.String(), Msg: "modulo by zero"}
		}
		return a % b, nil
	case "==":
		return btoi(a == b), nil
	case "!=":
		return btoi(a != b), nil
	case "<":
		return btoi(a < b), nil
	case "<=":
		return btoi(a <= b), nil
	case ">":
		return btoi(a > b), nil
	case ">=":
		return btoi(a >= b), nil
	}
	return 0, &EvalError{Expr: e.String(), Msg: "unknown operator " + e.op}
}

// evalTagRec evaluates a tag expression directly over a record's tag slots —
// the runtime's fast path (guards, filter tag assignments).  Unlike Eval it
// materializes no map: tag references resolve through the record's interned
// shape.  Foreign TagExpr implementations fall back to Eval over a built
// environment.
func evalTagRec(e TagExpr, r *Record) (int, error) {
	switch e := e.(type) {
	case intLit:
		return int(e), nil
	case tagRef:
		if i, ok := r.shape.tagSlot(string(e)); ok {
			return r.tvals[i], nil
		}
		return 0, &EvalError{Expr: e.String(), Msg: "tag not present in record"}
	case *unaryExpr:
		v, err := evalTagRec(e.x, r)
		if err != nil {
			return 0, err
		}
		if e.op == '-' {
			return -v, nil
		}
		return btoi(v == 0), nil
	case *binExpr:
		a, err := evalTagRec(e.x, r)
		if err != nil {
			return 0, err
		}
		switch e.op {
		case "&&":
			if a == 0 {
				return 0, nil
			}
			b, err := evalTagRec(e.y, r)
			if err != nil {
				return 0, err
			}
			return btoi(b != 0), nil
		case "||":
			if a != 0 {
				return 1, nil
			}
			b, err := evalTagRec(e.y, r)
			if err != nil {
				return 0, err
			}
			return btoi(b != 0), nil
		}
		b, err := evalTagRec(e.y, r)
		if err != nil {
			return 0, err
		}
		return e.apply(a, b)
	default:
		return e.Eval(r.tagMap())
	}
}

// tagMap materializes the record's tags as a map — only the compatibility
// fallback for TagExpr implementations outside this package.
func (r *Record) tagMap() map[string]int {
	m := make(map[string]int, len(r.tvals))
	for i, k := range r.shape.tagNames {
		m[k] = r.tvals[i]
	}
	return m
}

func (e *binExpr) TagRefs(dst []string) []string {
	return e.y.TagRefs(e.x.TagRefs(dst))
}

func (e *binExpr) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(e.x.String())
	b.WriteByte(' ')
	b.WriteString(e.op)
	b.WriteByte(' ')
	b.WriteString(e.y.String())
	b.WriteByte(')')
	return b.String()
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TagLit returns a constant tag expression.
func TagLit(n int) TagExpr { return intLit(n) }

// TagVar returns a reference to the tag with the given name.
func TagVar(name string) TagExpr { return tagRef(name) }

// TagUnary returns a unary expression; op is '-' or '!'.
func TagUnary(op byte, x TagExpr) TagExpr { return &unaryExpr{op: op, x: x} }

// TagBinary returns a binary expression over one of the operators
// + - * / % == != < <= > >= && ||.
func TagBinary(op string, x, y TagExpr) TagExpr { return &binExpr{op: op, x: x, y: y} }

// ParseTagExpr parses a tag expression from its textual form.
func ParseTagExpr(src string) (TagExpr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseTagExpr()
	if err != nil {
		return nil, err
	}
	if err := p.eof(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParseTagExpr is ParseTagExpr panicking on error, for literals in code.
func MustParseTagExpr(src string) TagExpr {
	e, err := ParseTagExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Precedence climbing: || < && < comparisons < additive < multiplicative <
// unary < primary.

func (p *parser) parseTagExpr() (TagExpr, error) { return p.parseOr() }

func (p *parser) parseOr() (TagExpr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOrOr) {
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: "||", x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (TagExpr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAndAnd) {
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: "&&", x: x, y: y}
	}
	return x, nil
}

var cmpOps = map[tokKind]string{
	tokEq: "==", tokNeq: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
}

func (p *parser) parseCmp() (TagExpr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpOps[p.peek().kind]
		if !ok {
			return x, nil
		}
		p.take()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseAdd() (TagExpr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return x, nil
		}
		p.take()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseMul() (TagExpr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		case tokPercent:
			op = "%"
		default:
			return x, nil
		}
		p.take()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseUnary() (TagExpr, error) {
	switch p.peek().kind {
	case tokMinus:
		p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: '-', x: x}, nil
	case tokNot:
		p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: '!', x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (TagExpr, error) {
	switch p.peek().kind {
	case tokInt:
		return intLit(atoi(p.take())), nil
	case tokTagName:
		return tagRef(p.take().text), nil
	case tokLParen:
		p.take()
		x, err := p.parseTagExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected integer, tag or '(', found %v", p.peek().kind)
}
