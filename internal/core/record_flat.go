package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The flat wire form of a record — the slot-array layout serialized as-is.
//
// Because a shape stores its labels in canonical slot order (fields sorted
// by name, then tags sorted by name), writing the slots front to back is
// already a canonical encoding: two records with equal contents produce
// identical bytes regardless of the order their labels were set in.  The
// format is self-describing (label names travel with the values), so a
// reader on the other end of a wire reconstructs the record — and its
// interned shape — without sharing this process's symbol table.
//
//	flat   := version(0x01) nfields:uvarint field* ntags:uvarint tag*
//	field  := name value
//	tag    := name val:varint
//	name   := len:uvarint bytes
//	value  := kind:byte payload
//
// Value kinds cover the types the coordination layer itself traffics in;
// richer box payloads stay the business of a service Codec.

// flatVersion is the format version byte leading every encoding.
const flatVersion = 0x01

// Value kind bytes of the flat encoding.
const (
	flatBool  = 0x01 // 1 payload byte, 0 or 1
	flatInt   = 0x02 // varint, decodes as int
	flatInt64 = 0x03 // varint, decodes as int64
	flatFloat = 0x04 // 8 bytes, IEEE-754 little-endian
	flatStr   = 0x05 // uvarint length + bytes
	flatBytes = 0x06 // uvarint length + bytes
)

// flatMaxLen caps one name or value read by DecodeFlat, so corrupt input
// cannot ask for a multi-gigabyte allocation.
const flatMaxLen = 1 << 24

// AppendFlat appends the record's canonical flat encoding to buf and
// returns the extended slice.  It fails on field values outside the wire
// types (bool, int, int64, float64, string, []byte): those are box-level
// payloads a service Codec must translate first.
func (r *Record) AppendFlat(buf []byte) ([]byte, error) {
	buf = append(buf, flatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(r.shape.fieldNames)))
	for i, name := range r.shape.fieldNames {
		buf = appendFlatString(buf, name)
		var err error
		if buf, err = appendFlatValue(buf, name, r.fvals[i]); err != nil {
			return nil, err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.shape.tagNames)))
	for i, name := range r.shape.tagNames {
		buf = appendFlatString(buf, name)
		buf = binary.AppendVarint(buf, int64(r.tvals[i]))
	}
	return buf, nil
}

func appendFlatString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFlatValue(buf []byte, label string, v any) ([]byte, error) {
	switch v := v.(type) {
	case bool:
		b := byte(0)
		if v {
			b = 1
		}
		return append(buf, flatBool, b), nil
	case int:
		return binary.AppendVarint(append(buf, flatInt), int64(v)), nil
	case int64:
		return binary.AppendVarint(append(buf, flatInt64), v), nil
	case float64:
		buf = append(buf, flatFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
	case string:
		return appendFlatString(append(buf, flatStr), v), nil
	case []byte:
		buf = binary.AppendUvarint(append(buf, flatBytes), uint64(len(v)))
		return append(buf, v...), nil
	default:
		return nil, fmt.Errorf("core: field %q: %T is not a flat wire type", label, v)
	}
}

// DecodeFlat reads one flat-encoded record from data, returning the record
// and the remaining bytes.  The decoded record is a fresh user-owned
// record (never pooled); label names intern and the shape registers as a
// side effect, so decoding is also how a wire peer's shapes enter this
// process's registry.
func DecodeFlat(data []byte) (*Record, []byte, error) {
	if len(data) == 0 || data[0] != flatVersion {
		return nil, data, fmt.Errorf("core: DecodeFlat: bad version byte")
	}
	rest := data[1:]
	r := NewRecord()
	nf, rest, err := decodeFlatCount(rest, "field")
	if err != nil {
		return nil, data, err
	}
	for i := 0; i < nf; i++ {
		var name string
		if name, rest, err = decodeFlatString(rest); err != nil {
			return nil, data, err
		}
		var v any
		if v, rest, err = decodeFlatValue(rest); err != nil {
			return nil, data, err
		}
		r.SetField(name, v)
	}
	nt, rest, err := decodeFlatCount(rest, "tag")
	if err != nil {
		return nil, data, err
	}
	for i := 0; i < nt; i++ {
		var name string
		if name, rest, err = decodeFlatString(rest); err != nil {
			return nil, data, err
		}
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, data, fmt.Errorf("core: DecodeFlat: truncated tag value")
		}
		rest = rest[n:]
		r.SetTag(name, int(v))
	}
	return r, rest, nil
}

func decodeFlatCount(data []byte, what string) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || v > flatMaxLen {
		return 0, data, fmt.Errorf("core: DecodeFlat: bad %s count", what)
	}
	return int(v), data[n:], nil
}

func decodeFlatString(data []byte) (string, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || v > flatMaxLen || uint64(len(data)-n) < v {
		return "", data, fmt.Errorf("core: DecodeFlat: truncated string")
	}
	return string(data[n : n+int(v)]), data[n+int(v):], nil
}

func decodeFlatValue(data []byte) (any, []byte, error) {
	if len(data) == 0 {
		return nil, data, fmt.Errorf("core: DecodeFlat: truncated value")
	}
	kind, rest := data[0], data[1:]
	switch kind {
	case flatBool:
		if len(rest) == 0 || rest[0] > 1 {
			return nil, data, fmt.Errorf("core: DecodeFlat: bad bool")
		}
		return rest[0] == 1, rest[1:], nil
	case flatInt:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, data, fmt.Errorf("core: DecodeFlat: truncated int")
		}
		return int(v), rest[n:], nil
	case flatInt64:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, data, fmt.Errorf("core: DecodeFlat: truncated int64")
		}
		return v, rest[n:], nil
	case flatFloat:
		if len(rest) < 8 {
			return nil, data, fmt.Errorf("core: DecodeFlat: truncated float")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case flatStr:
		s, rest, err := decodeFlatString(rest)
		return s, rest, err
	case flatBytes:
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > flatMaxLen || uint64(len(rest)-n) < v {
			return nil, data, fmt.Errorf("core: DecodeFlat: truncated bytes")
		}
		out := make([]byte, v)
		copy(out, rest[n:])
		return out, rest[n+int(v):], nil
	default:
		return nil, data, fmt.Errorf("core: DecodeFlat: unknown value kind 0x%02x", kind)
	}
}
