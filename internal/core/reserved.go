package core

import "strings"

// This file defines the runtime's reserved label namespace and the in-band
// control records of the parallel-replication close protocol.
//
// The service layer multiplexes many client sessions over one warm network
// instance by wrapping the user's network in indexed parallel replication
// over a session tag (the paper's A !! <tag>, §4) and letting flow
// inheritance carry the tag through every box.  That only works if user
// code cannot collide with — or spoof — the runtime's own labels, so every
// label starting with ReservedTagPrefix belongs to the runtime:
//
//   - the textual parsers (signatures, patterns, filters) reject reserved
//     labels, so no user network can consume or synthesize them;
//   - programmatic construction is unrestricted (the runtime itself and the
//     service layer build reserved-tag records), but service ingress rejects
//     client records that carry them (Record.HasReservedLabel).

// ReservedTagPrefix marks the label namespace owned by the runtime.  User
// signatures, patterns and filters must not mention labels with this prefix.
const ReservedTagPrefix = "__snet_"

// replicaCloseTag marks a replica-close control record of the split close
// protocol; replicaAckTag additionally requests the acknowledgement record.
const (
	replicaCloseTag = ReservedTagPrefix + "close"
	replicaAckTag   = ReservedTagPrefix + "ack"
)

// IsReservedLabel reports whether a label name lies in the runtime's
// reserved namespace.
func IsReservedLabel(name string) bool {
	return strings.HasPrefix(name, ReservedTagPrefix)
}

// HasReservedLabel reports whether the record carries any reserved label —
// the ingress check of layers (such as the session service) that must keep
// clients from spoofing runtime control records.
func (r *Record) HasReservedLabel() bool { return r.shape.reserved }

// NewReplicaClose builds the in-band control record that retires one replica
// of parallel replication: when a split node over <tag> receives it, the
// replica serving the given tag value stops accepting input, drains, and is
// reclaimed (goroutines unwound, the "split.<name>.replicas" gauge
// decremented).  The record is consumed by the split; nothing is emitted.
// If no replica exists for the value, the close is a no-op.
//
// Because the close record travels the ordinary record stream, it is
// FIFO-ordered with the data: every record routed to the replica before the
// close still reaches it, and its outputs still merge downstream.  A split
// whose index tag the record does not carry forwards it downstream (so a
// close can address an inner split through outer ones), though crossing an
// intervening split trades FIFO order for merge order with records still
// inside that split's replicas.
func NewReplicaClose(tag string, value int) *Record {
	return NewRecord().SetTag(replicaCloseTag, 1).SetTag(tag, value)
}

// NewReplicaCloseAck is NewReplicaClose with an acknowledgement: after the
// replica's output has fully drained into the merged stream, the close
// record itself is emitted downstream — strictly after the replica's last
// record.  Consumers past the split (the session service's egress demux)
// use it as the end-of-replica barrier.  With no replica for the value, the
// acknowledgement is emitted immediately.
func NewReplicaCloseAck(tag string, value int) *Record {
	return NewReplicaClose(tag, value).SetTag(replicaAckTag, 1)
}

// IsReplicaClose reports whether r is a replica-close control record (with
// or without acknowledgement).
func IsReplicaClose(r *Record) bool {
	_, ok := r.Tag(replicaCloseTag)
	return ok
}

// wantsCloseAck reports whether a replica-close record requests the drain
// acknowledgement.
func wantsCloseAck(r *Record) bool {
	_, ok := r.Tag(replicaAckTag)
	return ok
}
