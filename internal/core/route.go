package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Precomputed routing (the compile-then-run hot path).
//
// The paper's best-match dispatch (§4) is a property of the *network*: which
// branch a record takes depends only on the record's type (its label set)
// and, for guarded filters, on its tag values.  The per-branch accepted
// types are static, so the expensive part of routing — scoring the record
// against every branch's multivariant input type — can be computed once per
// record *shape* and reused for every record of that shape, across every
// run sharing the node (service sessions above all).
//
// routeTable is that artifact for one parallel combinator: per-branch
// accepted types split into a statically scorable part and guard-bearing
// filter branches, plus a shape-keyed memo of dispatch decisions.
// matchMemo is the single-pattern analogue used by serial replication exits
// and filters.  Both are pure functions of the node (never of a run), so
// they live on the node itself and are built once — eagerly by Compile,
// lazily on first use under the legacy Start path.

// maxMemoEntries caps every shape memo: networks see a handful of record
// shapes in practice, but a pathological workload could synthesize fresh
// labels per record; beyond the cap decisions are computed without being
// stored.
const maxMemoEntries = 1 << 12

// ErrNoRoute is the sentinel under every routing failure of parallel
// composition: a record whose type matches no branch.  The concrete error is
// a *NoRouteError carrying the record's variant and the branch types.
var ErrNoRoute = errors.New("core: record matches no parallel branch")

// NoRouteError reports one unroutable record: it carries the parallel
// combinator's identity, the record's variant (its label set), and the
// inferred accepted input type of every branch, so the failure is
// diagnosable without re-running under a tracer.  It unwraps to ErrNoRoute.
// A network accepted by Compile never produces it for records within the
// inferred input type.
type NoRouteError struct {
	Net      string    // the parallel combinator's label
	Record   string    // the record, rendered
	Shape    Variant   // the record's variant (label set)
	Branches []RecType // per-branch accepted input types, in branch order
}

func (e *NoRouteError) Error() string {
	return fmt.Sprintf("core: parallel %s: record %s (variant %s) matches no branch %v",
		e.Net, e.Record, e.Shape, e.Branches)
}

func (e *NoRouteError) Unwrap() error { return ErrNoRoute }

// matchMemo caches, per record shape, whether records of that shape carry
// every label of one variant — the static half of Pattern matching.  Safe
// for concurrent use; shared across runs.
type matchMemo struct {
	variant Variant
	memo    sync.Map // *shape → bool
	size    atomic.Int64
}

func newMatchMemo(v Variant) *matchMemo { return &matchMemo{variant: v} }

// satisfies reports whether rec carries every label of the memo's variant.
// The memo keys on the record's interned shape pointer: one lock-free map
// probe, and — unlike a string key — boxing the key allocates nothing.
func (m *matchMemo) satisfies(rec *Record) bool {
	key := rec.shape
	if v, ok := m.memo.Load(key); ok {
		return v.(bool)
	}
	ok := recordSatisfies(rec, m.variant)
	if m.size.Load() < maxMemoEntries {
		if _, loaded := m.memo.LoadOrStore(key, ok); !loaded {
			m.size.Add(1)
		}
	}
	return ok
}

// matches is p.Matches(rec) with the variant check memoized; p must be the
// pattern the memo was built from.
func (m *matchMemo) matches(p Pattern, rec *Record) bool {
	return m.satisfies(rec) && p.guardOK(rec)
}

// guardedBranch is a parallel branch whose routing score depends on tag
// values, not only on the record's shape: a filter with a tag guard.
type guardedBranch struct {
	idx     int
	pattern Pattern
}

// dispatchEntry is the memoized routing decision for one record shape:
// the best static score with its tied branches, plus the guarded branches
// whose variant the shape satisfies (their guards still evaluate per
// record).  For the common all-static case dispatch is a map lookup and a
// slice index.
type dispatchEntry struct {
	best  int         // best static score (-1: no static branch matches)
	ties  []int       // static branches scoring best, ascending
	cands []guardCand // guarded branches compatible with the shape, ascending
}

type guardCand struct {
	idx   int
	score int
	guard TagExpr
}

// routeTable is the precomputed dispatch table of one parallel combinator.
type routeTable struct {
	det    bool
	accept []RecType // per-branch accepted input type (diagnostics, NoRouteError)
	static []RecType // statically scorable accepted type; nil for guarded branches
	gb     []guardedBranch
	memo   sync.Map // *shape → *dispatchEntry
	size   atomic.Int64
}

// buildRouteTable compiles the branch list of a parallel combinator.
func buildRouteTable(det bool, branches []Node) *routeTable {
	t := &routeTable{
		det:    det,
		accept: make([]RecType, len(branches)),
		static: make([]RecType, len(branches)),
	}
	for i, b := range branches {
		if f, ok := b.(*filterNode); ok && f.spec.Pattern.Guard != nil {
			// A guarded filter only attracts records its guard admits;
			// the variant part is still static and memoizes by shape.
			t.gb = append(t.gb, guardedBranch{idx: i, pattern: f.spec.Pattern})
			t.accept[i] = RecType{f.spec.Pattern.Variant}
			continue
		}
		in, _ := b.sig(nil)
		t.accept[i] = in
		t.static[i] = in
	}
	return t
}

// entry returns (building and memoizing on demand) the dispatch entry for
// the record's shape.
func (t *routeTable) entry(rec *Record) *dispatchEntry {
	key := rec.shape
	if e, ok := t.memo.Load(key); ok {
		return e.(*dispatchEntry)
	}
	e := t.buildEntry(rec.Labels())
	if t.size.Load() < maxMemoEntries {
		if prev, loaded := t.memo.LoadOrStore(key, e); loaded {
			return prev.(*dispatchEntry)
		}
		t.size.Add(1)
	}
	return e
}

// buildEntry scores one shape against every branch's static type.
func (t *routeTable) buildEntry(shape Variant) *dispatchEntry {
	e := &dispatchEntry{best: -1}
	for i, st := range t.static {
		if st == nil {
			continue
		}
		s := -1
		for _, v := range st {
			if len(v) > s && v.SubsetOf(shape) {
				s = len(v)
			}
		}
		if s < 0 {
			continue
		}
		switch {
		case s > e.best:
			e.best, e.ties = s, append(e.ties[:0], i)
		case s == e.best:
			e.ties = append(e.ties, i)
		}
	}
	for _, g := range t.gb {
		if g.pattern.Variant.SubsetOf(shape) {
			e.cands = append(e.cands,
				guardCand{idx: g.idx, score: len(g.pattern.Variant), guard: g.pattern.Guard})
		}
	}
	return e
}

// dispatch picks the branch for one record: the memoized static decision,
// refined by evaluating the guards of shape-compatible guarded branches.
// rr is the caller's per-run rotation counter for nondeterministic ties;
// -1 means no branch accepts the record.
func (t *routeTable) dispatch(rec *Record, rr *int) int {
	e := t.entry(rec)
	best, ties := e.best, e.ties
	if len(e.cands) > 0 {
		var extra []int
		for _, c := range e.cands {
			if c.score < best {
				continue // cannot win even if the guard passes
			}
			if !(Pattern{Guard: c.guard}).guardOK(rec) {
				continue
			}
			if c.score > best {
				best, ties, extra = c.score, nil, extra[:0]
			}
			extra = append(extra, c.idx)
		}
		if len(extra) > 0 {
			ties = mergeAscending(ties, extra)
		}
	}
	if best < 0 || len(ties) == 0 {
		return -1
	}
	if t.det || len(ties) == 1 {
		// Deterministic ties resolve to the leftmost branch.
		return ties[0]
	}
	pick := ties[*rr%len(ties)]
	*rr++
	return pick
}

// mergeAscending merges two ascending index slices without duplicates.
func mergeAscending(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// legacyScorers is the pre-table routing path: one closure per branch
// rescoring every record.  It is kept as the baseline of BenchmarkRouting
// and E16 (WithLegacyRouting), and as the semantics the table is tested
// against.
func legacyScorers(branches []Node) []func(*Record) int {
	scorers := make([]func(*Record) int, len(branches))
	for i, b := range branches {
		if s, ok := b.(recordScorer); ok {
			scorers[i] = s.score
		} else {
			t, _ := b.sig(nil)
			scorers[i] = func(r *Record) int { return MatchScore(r, t) }
		}
	}
	return scorers
}

// legacyDispatch is the per-record scoring loop the dispatch table
// replaces; behaviour-identical by construction (see route_test.go).
func legacyDispatch(scorers []func(*Record) int, rec *Record, det bool, rr *int) int {
	best, count := -1, 0
	for _, sc := range scorers {
		if s := sc(rec); s > best {
			best, count = s, 1
		} else if s == best && s >= 0 {
			count++
		}
	}
	if best < 0 {
		return -1
	}
	pick := 0
	if !det && count > 1 {
		pick = *rr % count
		*rr++
	}
	for i, sc := range scorers {
		if sc(rec) == best {
			if pick == 0 {
				return i
			}
			pick--
		}
	}
	return -1
}
