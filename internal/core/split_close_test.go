package core

import (
	"context"
	"testing"
	"time"
)

// replicaGauge reads the live-replica gauge of a named split.
func replicaGauge(stats *Stats, name string) int64 {
	return stats.Counter("split." + name + ".replicas")
}

// waitCounter polls a stats counter until it reaches want or the deadline
// passes (the close protocol settles asynchronously with the drain).
func waitCounter(t *testing.T, get func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want %d", what, get(), want)
}

// TestSplitReplicaCloseProtocol: the in-band close record retires exactly
// the addressed replica — the gauge decrements, records routed before the
// close still reach the replica, and a later record with the same key gets
// a fresh replica.
func TestSplitReplicaCloseProtocol(t *testing.T) {
	n := NamedSplit("cp", incBox("cpinc", 1), "k")
	h := Start(context.Background(), n)
	send := func(r *Record) {
		t.Helper()
		if err := h.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	recv := func() *Record {
		t.Helper()
		select {
		case r := <-h.Out():
			return r
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for output")
			return nil
		}
	}
	for k := 0; k < 3; k++ {
		send(NewRecord().SetTag("n", 10*k).SetTag("k", k))
	}
	for i := 0; i < 3; i++ {
		v, _ := recv().Tag("n")
		got = append(got, v)
	}
	if g := replicaGauge(h.Stats(), "cp"); g != 3 {
		t.Fatalf("replicas after 3 keys: %d", g)
	}
	// Retire key 1; its replica drains and the gauge drops.
	send(NewReplicaClose("k", 1))
	waitCounter(t, func() int64 { return replicaGauge(h.Stats(), "cp") }, 2, "replicas after close")
	waitCounter(t, func() int64 { return h.Stats().Counter("split.cp.closed") }, 1, "closed counter")
	// Same key again: a fresh replica, fully functional.
	send(NewRecord().SetTag("n", 100).SetTag("k", 1))
	if v, _ := recv().Tag("n"); v != 101 {
		t.Fatalf("post-close record lost: got %d", v)
	}
	waitCounter(t, func() int64 { return replicaGauge(h.Stats(), "cp") }, 3, "replicas after reopen")
	// Closing a key with no replica is a no-op.
	send(NewReplicaClose("k", 99))
	h.Close()
	for range h.Out() {
	}
	h.Wait()
	if len(got) != 3 {
		t.Fatalf("lost pre-close outputs: %v", got)
	}
}

// TestSplitReplicaCloseAck: the acknowledgement variant re-emits the close
// record downstream strictly after the replica's last output — and
// immediately when no replica exists.
func TestSplitReplicaCloseAck(t *testing.T) {
	n := NamedSplit("ack", incBox("ackinc", 1), "k")
	h := Start(context.Background(), n)
	const burst = 5
	for i := 0; i < burst; i++ {
		if err := h.Send(NewRecord().SetTag("n", i).SetTag("k", 7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Send(NewReplicaCloseAck("k", 7)); err != nil {
		t.Fatal(err)
	}
	// No replica for key 8: the ack comes back alone.
	if err := h.Send(NewReplicaCloseAck("k", 8)); err != nil {
		t.Fatal(err)
	}
	h.Close()
	var recs []*Record
	for r := range h.Out() {
		recs = append(recs, r)
	}
	h.Wait()
	if len(recs) != burst+2 {
		t.Fatalf("got %d records, want %d: %v", len(recs), burst+2, recs)
	}
	// The key-8 ack (no replica) may arrive at any position; the key-7 ack
	// must come strictly after all of its replica's outputs.
	acks, seen := 0, 0
	for _, r := range recs {
		if !IsReplicaClose(r) {
			seen++
			continue
		}
		acks++
		if k, _ := r.Tag("k"); k == 7 && seen != burst {
			t.Fatalf("key-7 ack arrived after only %d of %d data records: %v", seen, burst, recs)
		}
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want 2 (%v)", acks, recs)
	}
	if g := replicaGauge(h.Stats(), "ack"); g != 0 {
		t.Fatalf("replica gauge after close: %d", g)
	}
}

// TestSplitDetCloseAck: the close protocol on the deterministic variant —
// the ack still follows every buffered region of the retired replica.
func TestSplitDetCloseAck(t *testing.T) {
	n := NamedSplitDet("dack", incBox("dackinc", 1), "k")
	inputsDone := make(chan struct{})
	h := Start(context.Background(), n)
	go func() {
		defer close(inputsDone)
		for i := 0; i < 6; i++ {
			_ = h.Send(NewRecord().SetTag("n", i).SetTag("k", i%2))
		}
		_ = h.Send(NewReplicaCloseAck("k", 0))
		_ = h.Send(NewRecord().SetTag("n", 50).SetTag("k", 1))
		h.Close()
	}()
	var recs []*Record
	for r := range h.Out() {
		recs = append(recs, r)
	}
	h.Wait()
	<-inputsDone
	if len(recs) != 8 { // 7 data + 1 ack
		t.Fatalf("got %d records: %v", len(recs), recs)
	}
	// Every key-0 data record precedes the ack.
	ackAt := -1
	lastK0 := -1
	for i, r := range recs {
		if IsReplicaClose(r) {
			ackAt = i
			continue
		}
		if k, _ := r.Tag("k"); k == 0 {
			lastK0 = i
		}
	}
	if ackAt < 0 || lastK0 > ackAt {
		t.Fatalf("ack at %d, last key-0 record at %d: %v", ackAt, lastK0, recs)
	}
}

// TestSplitCloseForwardsThroughOtherSplits: a close record addressed to an
// inner split crosses an outer split (whose index tag it lacks) instead of
// being dropped as untagged.
func TestSplitCloseForwardsThroughOtherSplits(t *testing.T) {
	n := Serial(
		NamedSplit("outer", incBox("oi", 1), "a"),
		NamedSplit("inner", incBox("ii", 1), "b"),
	)
	h := Start(context.Background(), n)
	if err := h.Send(NewRecord().SetTag("n", 1).SetTag("a", 0).SetTag("b", 5)); err != nil {
		t.Fatal(err)
	}
	if r := <-h.Out(); func() int { v, _ := r.Tag("n"); return v }() != 3 {
		t.Fatalf("pipeline result: %v", r)
	}
	if err := h.Send(NewReplicaClose("b", 5)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return replicaGauge(h.Stats(), "inner") }, 0,
		"inner replicas after forwarded close")
	if u := h.Stats().Counter("split.outer.untagged"); u != 0 {
		t.Fatalf("outer counted the close record as untagged (%d)", u)
	}
	if g := replicaGauge(h.Stats(), "outer"); g != 1 {
		t.Fatalf("outer replicas: %d, want 1 (close must not touch it)", g)
	}
	if errs := h.Stats().Counter("runtime.errors"); errs != 0 {
		t.Fatalf("forwarded close raised %d runtime errors", errs)
	}
	h.Close()
	for range h.Out() {
	}
	h.Wait()
}

// TestSessionSplitExemptFromIdleReap: session replicas hold live client
// state and are retired only by the close protocol — WithReplicaIdleReap
// must not sweep them.
func TestSessionSplitExemptFromIdleReap(t *testing.T) {
	n := SessionSplit("mux", incBox("mi", 1), "sid")
	h := Start(context.Background(), n, WithReplicaIdleReap(20*time.Millisecond))
	if err := h.Send(NewRecord().SetTag("n", 1).SetTag("sid", 7)); err != nil {
		t.Fatal(err)
	}
	<-h.Out()
	time.Sleep(150 * time.Millisecond) // several reap intervals of silence
	if g := replicaGauge(h.Stats(), "mux"); g != 1 {
		t.Fatalf("idle session replica swept: gauge = %d", g)
	}
	// The close protocol still retires it.
	if err := h.Send(NewReplicaClose("sid", 7)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, func() int64 { return replicaGauge(h.Stats(), "mux") }, 0, "mux replicas after close")
	h.Close()
	for range h.Out() {
	}
	h.Wait()
}

// TestSplitReplicaIdleReap: replicas whose key goes quiet are reclaimed by
// WithReplicaIdleReap — gauge back to 0 with the run still live — and a
// returning key gets a fresh, working replica.
func TestSplitReplicaIdleReap(t *testing.T) {
	n := NamedSplit("reap", incBox("reapinc", 1), "k")
	h := Start(context.Background(), n, WithReplicaIdleReap(30*time.Millisecond))
	for k := 0; k < 4; k++ {
		if err := h.Send(NewRecord().SetTag("n", k).SetTag("k", k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		<-h.Out()
	}
	waitCounter(t, func() int64 { return replicaGauge(h.Stats(), "reap") }, 0, "replicas after idle")
	waitCounter(t, func() int64 { return h.Stats().Counter("split.reap.reaped") }, 4, "reaped counter")
	// The run is still live: a returning key works.
	if err := h.Send(NewRecord().SetTag("n", 41).SetTag("k", 2)); err != nil {
		t.Fatal(err)
	}
	r := <-h.Out()
	if v, _ := r.Tag("n"); v != 42 {
		t.Fatalf("post-reap record: %v", r)
	}
	h.Close()
	for range h.Out() {
	}
	h.Wait()
}

// TestReservedLabelsRejectedByParsers: signatures, patterns and filters must
// refuse labels in the runtime's reserved namespace.
func TestReservedLabelsRejectedByParsers(t *testing.T) {
	if _, err := ParseSignature("(<__snet_session>) -> (<n>)"); err == nil {
		t.Fatal("signature with reserved tag parsed")
	}
	if _, err := ParsePattern("{<__snet_close>}"); err == nil {
		t.Fatal("pattern with reserved tag parsed")
	}
	if _, err := ParseFilter("{<n>} -> {<__snet_session>=1}"); err == nil {
		t.Fatal("filter synthesizing reserved tag parsed")
	}
	if _, err := ParsePattern("{__snet_field}"); err == nil {
		t.Fatal("pattern with reserved field parsed")
	}
	if !NewRecord().SetTag("__snet_session", 1).HasReservedLabel() {
		t.Fatal("HasReservedLabel missed a reserved tag")
	}
	if NewRecord().SetTag("n", 1).SetField("s", "x").HasReservedLabel() {
		t.Fatal("HasReservedLabel false positive")
	}
}

// TestHideTags: the tag-hiding node strips exactly the named tags.
func TestHideTags(t *testing.T) {
	n := Serial(incBox("h", 1), HideTags("aux", "absent"))
	out, _, err := RunAll(context.Background(),
		n, []*Record{NewRecord().SetTag("n", 1).SetTag("aux", 9).SetTag("keep", 3)})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if _, ok := out[0].Tag("aux"); ok {
		t.Fatalf("aux survived: %v", out[0])
	}
	if v, _ := out[0].Tag("keep"); v != 3 {
		t.Fatalf("keep lost: %v", out[0])
	}
	if v, _ := out[0].Tag("n"); v != 2 {
		t.Fatalf("n: %v", out[0])
	}
}
