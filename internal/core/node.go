package core

import (
	"fmt"
	"sync/atomic"
)

// Node is a SISO stream component: a box, filter, synchrocell or combinator
// network.  All combinators preserve the SISO property (§4), so any Node can
// be used wherever a box can.  Nodes are blueprints: the same Node value can
// be started any number of times; all execution state lives in the run.
//
// Node is a sealed interface; construct nodes with NewBox, NewFilter,
// Serial, Parallel, Star, Split, Sync and Observe.
type Node interface {
	fmt.Stringer
	// name returns the node's stats/trace identity.
	name() string
	// run consumes in until it closes or the run is cancelled, writing
	// results to out; it must close out before returning, must forward
	// foreign control markers in FIFO position, and must hand in to
	// in.Discard() on every early-exit path so upstream senders never
	// block on a stream nobody reads.
	run(env *runEnv, in *streamReader, out *streamWriter)
	// sig returns the node's inferred type signature, collecting
	// diagnostics into c (which may be nil).
	sig(c *checker) (in, out RecType)
}

// nodeSeq numbers anonymous nodes for stable stats keys.
var nodeSeq atomic.Int64

func autoName(kind string) string {
	return fmt.Sprintf("%s#%d", kind, nodeSeq.Add(1))
}

// identityNode forwards records unchanged, optionally invoking an observer
// callback — the tappable-stream debugging facility motivated in §1.
type identityNode struct {
	label string
	fn    func(*Record)
}

// Observe returns a transparent node that invokes fn for every record
// passing through.  It lets any stream in a network be observed individually
// without disturbing the computation; compose it serially where needed.
func Observe(label string, fn func(*Record)) Node {
	if label == "" {
		label = autoName("observe")
	}
	return &identityNode{label: label, fn: fn}
}

func (n *identityNode) name() string   { return n.label }
func (n *identityNode) String() string { return "observe(" + n.label + ")" }

func (n *identityNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.rec != nil {
			env.trace(n.label, "in", it.rec)
			if n.fn != nil {
				n.fn(it.rec)
			}
		}
		if !out.send(it) {
			in.Discard()
			return
		}
	}
}

func (n *identityNode) sig(*checker) (RecType, RecType) {
	any := RecType{Variant{}}
	return any, any
}

// hideNode strips a fixed set of tags from every record passing through —
// the tag-hiding component used to keep routing/multiplexing tags (session
// ids above all) out of sub-networks or egress streams.
type hideNode struct {
	label string
	tags  []string
}

// HideTags returns a transparent node that deletes the given tags from every
// record.  Compose it serially where a tag must not travel further — e.g.
// after a session-multiplexing split, so downstream consumers never see the
// reserved session tag.  Absent tags are ignored; markers pass through.
func HideTags(tags ...string) Node {
	return &hideNode{label: autoName("hide"), tags: tags}
}

func (n *hideNode) name() string   { return n.label }
func (n *hideNode) String() string { return "hide(" + n.label + ")" }

func (n *hideNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.rec != nil {
			for _, tag := range n.tags {
				it.rec.DeleteTag(tag)
			}
		}
		if !out.send(it) {
			in.Discard()
			return
		}
	}
}

func (n *hideNode) sig(*checker) (RecType, RecType) {
	any := RecType{Variant{}}
	return any, any
}
