package core

import (
	"context"
	"sync/atomic"
	"time"
)

// This file is the record plane's transport layer.  Nodes do not exchange
// items over raw channels: they communicate through a streamReader /
// streamWriter pair moving frames — batches of items — over one buffered
// channel, so a hot stream costs one channel synchronization per frame
// instead of one per record.  The batch size B (WithStreamBatch) bounds how
// many items a writer may coalesce; flushing is adaptive so latency stays
// flat when traffic is light:
//
//   - Batch-full flush: the pending batch reaches B → blocking flush.
//   - Idle flush: a node about to block on its input reader first flushes
//     the writers it owns (streamReader.autoFlush), so a record never waits
//     on traffic that is not coming.
//   - Barrier flush: a sort marker of the deterministic-merge protocol, and
//     close, flush immediately.  Markers delimit merge regions; holding one
//     back would stall every merger waiting on it, so the marker-barrier
//     rule is what keeps the determinism protocol live at any B.
//
// Because pending items are flushed in FIFO position, a marker's barrier
// flush also delivers every record buffered before it — mergers always see
// a region's data before the marker that closes it, exactly as with
// unbatched streams.
//
// Ownership rule: a streamWriter is single-goroutine — only the goroutine
// that writes a stream may send, flush or close it (sendDirect is the one
// exception: it bypasses the pending batch entirely so the network boundary
// can accept records from many client goroutines).  autoFlush registrations
// must respect this: only register writers owned by the goroutine that
// reads the stream.

// item is one element on a stream: either a data record or a control marker
// ("sort record") of the deterministic-merge protocol.  Exactly one of rec
// and mk is non-nil.
type item struct {
	rec *Record
	mk  *marker
}

// marker is a sort record: deterministic combinators emit one after every
// routed data record, broadcast to all live branches.  Mergers use the
// per-branch arrival order of markers to reassemble the deterministic output
// order (see merge.go).  level identifies the issuing combinator instance:
// a merger drops its own markers after use and forwards foreign ones.
type marker struct {
	level  int
	ticket uint64
}

// frame is one transport unit: either a single inline item (the common case
// under light load, and always at B=1 — no per-record allocation) or a batch
// of items handed off by a writer's flush.
type frame struct {
	single item
	batch  []item // nil: the payload is single
}

// newStream creates one connected reader/writer pair with the run's frame
// buffer capacity and batch size.
func newStream(env *runEnv) (*streamReader, *streamWriter) {
	ch := make(chan frame, env.buf)
	r := &streamReader{env: env, ch: ch}
	w := &streamWriter{env: env, ch: ch, batch: env.batch}
	return r, w
}

// streamWriter is the producing end of a stream.  All methods except
// sendDirect must be called from the single goroutine that owns the writer.
type streamWriter struct {
	env     *runEnv
	ch      chan frame
	batch   int    // flush threshold B (>= 1)
	pending []item // items accumulated since the last flush
	closed  bool

	// Transport counters, kept local (no locks on the hot path) and folded
	// into the run's Stats by close: frames/records delivered and the
	// per-stream frame-size high-water mark.  directRecords is atomic —
	// sendDirect accepts concurrent boundary senders.
	frames        int64
	records       int64
	hwm           int
	directRecords int64
	directFrames  int64
}

// send appends one item to the stream, flushing per the adaptive policy.
// It reports false when the run has been cancelled.
func (w *streamWriter) send(it item) bool {
	if it.rec != nil {
		w.records++
	}
	if w.batch <= 1 && len(w.pending) == 0 {
		// Unbatched stream: ship the item inline, no allocation.
		return w.ship(frame{single: it})
	}
	if w.pending == nil {
		w.pending = acquireFrameSlab(w.batch)
	}
	w.pending = append(w.pending, it)
	if it.mk != nil || len(w.pending) >= w.batch {
		return w.flush()
	}
	return true
}

// sendRecord is send for data records.
func (w *streamWriter) sendRecord(r *Record) bool {
	return w.send(item{rec: r})
}

// flush delivers the pending batch downstream (blocking); it is a no-op
// with nothing pending and reports false when the run has been cancelled.
func (w *streamWriter) flush() bool {
	n := len(w.pending)
	if n == 0 {
		return true
	}
	var f frame
	if n == 1 {
		// Single-item batch: ship inline and reuse the buffer, so light
		// traffic over a batched stream does not allocate per record.
		f = frame{single: w.pending[0]}
		w.pending = w.pending[:0]
	} else {
		f = frame{batch: w.pending}
		w.pending = nil
	}
	return w.ship(f)
}

// ship performs the channel handoff of one frame.  The transport counters
// settle here, on delivery: a frame dropped by cancellation retracts its
// records so "stream.records" reflects only what reached the channel.
func (w *streamWriter) ship(f frame) bool {
	select {
	case w.ch <- f:
		n := len(f.batch)
		if n == 0 {
			n = 1
		}
		if n > w.hwm {
			w.hwm = n
		}
		w.frames++
		return true
	case <-w.env.ctx.Done():
		// The frame never reached the channel: retract its records from the
		// transport counters and return what the writer owned to the arena.
		if f.batch == nil {
			if f.single.rec != nil {
				w.records--
				releaseRecord(f.single.rec)
			}
		} else {
			for _, it := range f.batch {
				if it.rec != nil {
					w.records--
					releaseRecord(it.rec)
				}
			}
			releaseFrameSlab(f.batch)
		}
		return false
	}
}

// sendDirect delivers one record immediately, bypassing the pending batch,
// honouring both the run context and an additional caller context.  It is
// safe for concurrent use as long as no goroutine uses the batched send on
// the same writer — the network boundary's contract (net.go).  The returned
// error is nil, ErrCancelled (run cancelled) or the caller context's error.
func (w *streamWriter) sendDirect(ctx context.Context, it item) error {
	if it.rec != nil {
		atomic.AddInt64(&w.directRecords, 1)
	}
	select {
	case w.ch <- frame{single: it}:
		atomic.AddInt64(&w.directFrames, 1)
		return nil
	case <-w.env.ctx.Done():
		return ErrCancelled
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sendBatchDirect ships a burst of records as frames of up to batch items,
// bypassing the pending buffer (so, like sendDirect, it tolerates
// concurrent callers).  It returns how many records were delivered — on
// error that is a frame-aligned prefix of recs.
func (w *streamWriter) sendBatchDirect(ctx context.Context, recs []*Record) (int, error) {
	b := w.batch
	if b < 1 {
		b = 1
	}
	sent := 0
	for sent < len(recs) {
		n := b
		if n > len(recs)-sent {
			n = len(recs) - sent
		}
		var f frame
		if n == 1 {
			f = frame{single: item{rec: recs[sent]}}
		} else {
			batch := acquireFrameSlab(n)
			for _, r := range recs[sent : sent+n] {
				batch = append(batch, item{rec: r})
			}
			f = frame{batch: batch}
		}
		select {
		case w.ch <- f:
		case <-w.env.ctx.Done():
			releaseFrameSlab(f.batch)
			return sent, ErrCancelled
		case <-ctx.Done():
			releaseFrameSlab(f.batch)
			return sent, ctx.Err()
		}
		atomic.AddInt64(&w.directRecords, int64(n))
		atomic.AddInt64(&w.directFrames, 1)
		sent += n
	}
	return sent, nil
}

// close flushes pending items, closes the channel, and folds the writer's
// transport counters into the run's Stats.  Idempotent.
func (w *streamWriter) close() {
	if w.closed {
		return
	}
	w.closed = true
	w.flush()
	if w.pending != nil && len(w.pending) == 0 {
		releaseFrameSlab(w.pending)
		w.pending = nil
	}
	close(w.ch)
	frames := w.frames + atomic.LoadInt64(&w.directFrames)
	records := w.records + atomic.LoadInt64(&w.directRecords)
	if frames > 0 {
		w.env.stats.Add("stream.frames", frames)
		w.env.stats.Add("stream.records", records)
		w.env.stats.SetMax("stream.frame.hwm", int64(w.hwm))
	}
}

// streamReader is the consuming end of a stream.  All methods must be
// called from the single goroutine that owns the reader — until Discard,
// which detaches ownership to a background drainer.
type streamReader struct {
	env *runEnv
	ch  chan frame
	cur []item // remainder of the current multi-item frame
	pos int

	// onIdle holds the writers this reader's goroutine owns; recv flushes
	// them before blocking, which is the adaptive policy's idle flush.
	onIdle     []*streamWriter
	discarding atomic.Bool
}

// autoFlush registers a writer to be flushed whenever recv is about to
// block.  The writer must be owned by the same goroutine that reads from r.
func (r *streamReader) autoFlush(ws ...*streamWriter) {
	r.onIdle = append(r.onIdle, ws...)
}

// recv returns the next item; ok is false when the stream is closed and
// drained or the run cancelled.
func (r *streamReader) recv() (item, bool) {
	if r.pos < len(r.cur) {
		it := r.cur[r.pos]
		r.pos++
		return it, true
	}
	r.finishFrame()
	// Fast path: a frame is already waiting.
	select {
	case f, ok := <-r.ch:
		return r.accept(f, ok)
	default:
	}
	// The input is momentarily idle: flush owned writers so downstream
	// never waits on our buffered output, then block.
	for _, w := range r.onIdle {
		if !w.flush() {
			return item{}, false
		}
	}
	select {
	case f, ok := <-r.ch:
		return r.accept(f, ok)
	case <-r.env.ctx.Done():
		return item{}, false
	}
}

// recvTimeout is recv with an idle deadline: after d of input silence it
// returns timedOut=true (and ok=false) so the caller can run periodic
// housekeeping — the split combinator's replica idle reaper — without
// owning a timer goroutine or violating the reader's single-goroutine
// ownership rule.  Like recv, it flushes owned writers before blocking.
func (r *streamReader) recvTimeout(d time.Duration) (it item, ok bool, timedOut bool) {
	if r.pos < len(r.cur) {
		it := r.cur[r.pos]
		r.pos++
		return it, true, false
	}
	r.finishFrame()
	select {
	case f, fok := <-r.ch:
		it, ok = r.accept(f, fok)
		return it, ok, false
	default:
	}
	for _, w := range r.onIdle {
		if !w.flush() {
			return item{}, false, false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case f, fok := <-r.ch:
		it, ok = r.accept(f, fok)
		return it, ok, false
	case <-t.C:
		return item{}, false, true
	case <-r.env.ctx.Done():
		return item{}, false, false
	}
}

// finishFrame returns the consumed frame's slab to the arena.  Called only
// once the frame is exhausted; the items were handed out by value, so the
// slab holds no live state.
func (r *streamReader) finishFrame() {
	if r.cur != nil {
		releaseFrameSlab(r.cur)
		r.cur = nil
		r.pos = 0
	}
}

func (r *streamReader) accept(f frame, ok bool) (item, bool) {
	if !ok {
		return item{}, false
	}
	if f.batch == nil {
		return f.single, true
	}
	r.cur, r.pos = f.batch, 1
	return f.batch[0], true
}

// Discard detaches a background consumer for the remainder of the stream.
// Every node that stops consuming its input early — whether it hit a
// cancelled send or finished a dispatch loop — uses this one call so
// upstream senders can never stay blocked on a stream nobody reads.  The
// drainer returns on close or cancellation and counts the data records it
// threw away under "stream.discarded".  Idempotent; the reader must not be
// used after calling it.
func (r *streamReader) Discard() {
	if r.discarding.Swap(true) {
		return
	}
	go func() {
		var n int64
		for r.pos < len(r.cur) {
			if rec := r.cur[r.pos].rec; rec != nil {
				n++
				releaseRecord(rec)
			}
			r.pos++
		}
		r.finishFrame()
		countFrame := func(f frame) {
			if f.batch == nil {
				if f.single.rec != nil {
					n++
					releaseRecord(f.single.rec)
				}
				return
			}
			for _, it := range f.batch {
				if it.rec != nil {
					n++
					releaseRecord(it.rec)
				}
			}
			releaseFrameSlab(f.batch)
		}
		defer func() {
			if n > 0 {
				r.env.stats.Add("stream.discarded", n)
			}
		}()
		for {
			// Prefer frames already delivered over the cancellation signal
			// so the discard count is deterministic for everything that
			// reached the stream before the early exit.
			select {
			case f, ok := <-r.ch:
				if !ok {
					return
				}
				countFrame(f)
				continue
			default:
			}
			select {
			case f, ok := <-r.ch:
				if !ok {
					return
				}
				countFrame(f)
			case <-r.env.ctx.Done():
				return
			}
		}
	}()
}

// ctxDone reports whether the run has been cancelled.
func ctxDone(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
