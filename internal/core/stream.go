package core

import "context"

// item is one element on a stream: either a data record or a control marker
// ("sort record") of the deterministic-merge protocol.  Exactly one of rec
// and mk is non-nil.
type item struct {
	rec *Record
	mk  *marker
}

// marker is a sort record: deterministic combinators emit one after every
// routed data record, broadcast to all live branches.  Mergers use the
// per-branch arrival order of markers to reassemble the deterministic output
// order (see merge.go).  level identifies the issuing combinator instance:
// a merger drops its own markers after use and forwards foreign ones.
type marker struct {
	level  int
	ticket uint64
}

// stream is the channel type connecting nodes.
type stream chan item

// send delivers an item respecting cancellation; it reports false when the
// environment is cancelled.
func send(env *runEnv, out chan<- item, it item) bool {
	select {
	case out <- it:
		return true
	case <-env.ctx.Done():
		return false
	}
}

// sendRecord is send for data records.
func sendRecord(env *runEnv, out chan<- item, r *Record) bool {
	return send(env, out, item{rec: r})
}

// recv receives the next item respecting cancellation; ok is false when the
// stream is closed or the run cancelled.
func recv(env *runEnv, in <-chan item) (item, bool) {
	select {
	case it, ok := <-in:
		return it, ok
	case <-env.ctx.Done():
		return item{}, false
	}
}

// drain consumes and discards the remainder of a stream so upstream senders
// unblock after a node stops early.  It returns on cancellation: all senders
// are themselves cancellation-aware, so nobody stays blocked.
func drain(env *runEnv, in <-chan item) {
	for {
		select {
		case _, ok := <-in:
			if !ok {
				return
			}
		case <-env.ctx.Done():
			return
		}
	}
}

// drainTail detaches a background consumer for the remainder of in.  Every
// node that stops consuming its input early — whether it merged its last
// exit record (star), hit a cancelled send, or finished a dispatch loop —
// uses this one helper so upstream senders can never stay blocked on a
// stream nobody reads; drain itself returns on close or cancellation.
func drainTail(env *runEnv, in <-chan item) {
	go drain(env, in)
}

// ctxDone reports whether the run has been cancelled.
func ctxDone(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
