package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
)

// Handle is a running network: a SISO pair of streams plus run-wide
// statistics.  Produce records with Send, signal end-of-input with Close,
// and consume results from Out.  The network shuts down cleanly when the
// input is closed and all in-flight records have drained, or promptly when
// the context is cancelled.
type Handle struct {
	env    *runEnv
	cancel context.CancelFunc
	in     *streamWriter
	outRec chan *Record
	done   chan struct{}

	// sendState guards the input side without ever blocking a sender on a
	// lock: the low bits count in-flight sends, closedBit marks Close.
	// Senders enter by incrementing (refused once closedBit is set), so
	// close(in) happens exactly once — by Close when no send is in flight,
	// or by the last in-flight sender to leave.  This makes Send/Close
	// safe from concurrent goroutines (the service layer's clients) while
	// keeping both non-blocking apart from the send itself, which remains
	// cancellable through the caller's context.
	sendState atomic.Int64
}

// closedBit marks the input as closed in Handle.sendState.
const closedBit = int64(1) << 62

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("core: network input closed")

// Start launches the network described by root.  The returned handle owns
// one run; the same Node tree can be started many times.
func Start(ctx context.Context, root Node, opts ...Option) *Handle {
	ctx, cancel := context.WithCancel(ctx)
	env := &runEnv{
		ctx:        ctx,
		stats:      newStats(),
		buf:        DefaultStreamBuffer,
		batch:      envStreamBatch(),
		maxDepth:   1 << 20,
		maxWidth:   1 << 20,
		boxWorkers: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(env)
	}
	// Fused segments count every record on preregistered atomics; install
	// them while the collector is still single-threaded (see
	// Stats.preregister).
	preregisterFusedStats(root, env.stats)
	// The boundary input stream is written through sendDirect only (one
	// frame per record, safe for concurrent client senders); batching
	// starts at the first internal hop.
	inR, inW := newStream(env)
	h := &Handle{
		env:    env,
		cancel: cancel,
		in:     inW,
		outRec: make(chan *Record, env.buf),
		done:   make(chan struct{}),
	}
	netOutR, netOutW := newStream(env)
	go root.run(env, inR, netOutW)
	go func() {
		defer close(h.done)
		defer close(h.outRec)
		for {
			it, ok := netOutR.recv()
			if !ok {
				return
			}
			if it.mk != nil {
				continue // markers are spent at the network boundary
			}
			// The record crosses into user code here: it leaves the arena's
			// domain for good (the user owns it, the GC reclaims it).
			disownRecord(it.rec)
			select {
			case h.outRec <- it.rec:
			case <-ctx.Done():
				return
			}
		}
	}()
	return h
}

// Send injects a record into the network, blocking on backpressure.  It
// fails with ErrClosed after Close and with ErrCancelled after the run is
// cancelled.
func (h *Handle) Send(r *Record) error {
	return h.SendCtx(context.Background(), r)
}

// acquireSend registers one in-flight send in sendState, refusing after
// Close; every successful acquire must be paired with releaseSend.
func (h *Handle) acquireSend() error {
	for {
		s := h.sendState.Load()
		if s&closedBit != 0 {
			return ErrClosed
		}
		if h.sendState.CompareAndSwap(s, s+1) {
			return nil
		}
	}
}

// releaseSend retires one in-flight send; if Close arrived mid-send, the
// last sender out closes the input stream.
func (h *Handle) releaseSend() {
	if h.sendState.Add(-1) == closedBit {
		h.in.close()
	}
}

// SendCtx is Send with an additional caller context: it unblocks with the
// caller's context error if ctx is cancelled while waiting on backpressure,
// without affecting the run.  A cancelled *run* reports ErrCancelled, so
// callers can tell "my deadline passed" from "the network is gone".  It is
// the building block for serving one network to many independent clients,
// each with its own deadline.
func (h *Handle) SendCtx(ctx context.Context, r *Record) error {
	if err := h.acquireSend(); err != nil {
		return err
	}
	defer h.releaseSend()
	return h.in.sendDirect(ctx, item{rec: r})
}

// SendBatch injects a burst of records as ready-made frames of the run's
// batch size — the boundary counterpart of the internal frame transport.
// One SendBatch call costs ⌈len(recs)/B⌉ channel synchronizations instead
// of len(recs); use it when records arrive together anyway (a file of
// inputs, an HTTP request carrying a record array).  Like Send it blocks on
// backpressure, honours ctx, and fails with ErrClosed after Close.  It
// returns how many records entered the network — all of them unless err is
// non-nil.
func (h *Handle) SendBatch(ctx context.Context, recs []*Record) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	if err := h.acquireSend(); err != nil {
		return 0, err
	}
	defer h.releaseSend()
	return h.in.sendBatchDirect(ctx, recs)
}

// Close signals end-of-input.  It is idempotent, never blocks, and is safe
// against concurrent senders: subsequent sends fail with ErrClosed, and the
// input stream is closed as soon as any in-flight sends have finished
// (records they were already committed to deliver still enter the network).
func (h *Handle) Close() {
	for {
		s := h.sendState.Load()
		if s&closedBit != 0 {
			return
		}
		if h.sendState.CompareAndSwap(s, s|closedBit) {
			if s == 0 {
				h.in.close() // no send in flight
			}
			return
		}
	}
}

// Out returns the network's output stream.  It is closed after the network
// drains (following Close) or is cancelled.
func (h *Handle) Out() <-chan *Record { return h.outRec }

// Stats returns the run's statistics collector.
func (h *Handle) Stats() *Stats { return h.env.stats }

// Err returns the first runtime error the run has reported (an unroutable
// record's *NoRouteError, a rejected box input, a panicking box, ...), or
// nil.  Errors do not stop the network — the faulty record is dropped and
// the stream continues — so Err complements WithErrorHandler as the
// after-the-fact check: errors.Is(h.Err(), ErrNoRoute) distinguishes
// routing failures.  It may be called at any time; after Wait it is the
// run's final verdict.
func (h *Handle) Err() error { return h.env.err() }

// Cancel aborts the run.  Records in flight are dropped.
func (h *Handle) Cancel() { h.cancel() }

// Wait blocks until the output stream has closed.
func (h *Handle) Wait() { <-h.done }

// RunAll is a convenience harness: it starts the network, feeds all inputs,
// closes the input and collects every output record.  It returns the
// context's error if the run was cancelled.
func RunAll(ctx context.Context, root Node, inputs []*Record, opts ...Option) ([]*Record, *Stats, error) {
	h := Start(ctx, root, opts...)
	defer h.Cancel()
	go func() {
		if _, err := h.SendBatch(context.Background(), inputs); err != nil {
			return
		}
		h.Close()
	}()
	var out []*Record
	for r := range h.Out() {
		out = append(out, r)
	}
	h.Wait()
	return out, h.Stats(), ctx.Err()
}

// RunUntil starts the network, feeds inputs from the given slice, and
// returns as soon as stop(record) reports true for an output record (that
// record is returned) — the "first solution wins" harness for search
// networks like the sudoku solvers.  If the network drains without stop
// firing, RunUntil returns nil.
func RunUntil(ctx context.Context, root Node, inputs []*Record, stop func(*Record) bool, opts ...Option) (*Record, *Stats, error) {
	h := Start(ctx, root, opts...)
	defer h.Cancel()
	go func() {
		if _, err := h.SendBatch(context.Background(), inputs); err != nil {
			return
		}
		h.Close()
	}()
	for r := range h.Out() {
		if stop(r) {
			h.Cancel()
			return r, h.Stats(), nil
		}
	}
	return nil, h.Stats(), ctx.Err()
}
