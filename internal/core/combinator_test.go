package core

import (
	"context"
	"sync/atomic"
	"testing"
)

// --- parallel composition ---

func TestParallelBestMatchRouting(t *testing.T) {
	a := NewBox("viaA", MustParseSignature("(a) -> (a,<viaA>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
	b := NewBox("viaB", MustParseSignature("(a,b) -> (a,<viaB>)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
	n := Parallel(a, b)
	r1 := NewRecord().SetField("a", 1)
	r2 := NewRecord().SetField("a", 2).SetField("b", 2)
	out, _ := runNet(t, n, []*Record{r1, r2})
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	for _, r := range out {
		av, _ := r.Field("a")
		_, viaA := r.Tag("viaA")
		_, viaB := r.Tag("viaB")
		if av == 1 && !viaA {
			t.Fatalf("{a} must route to branch A: %v", r)
		}
		if av == 2 && !viaB {
			t.Fatalf("{a,b} must route to the more specific branch B: %v", r)
		}
	}
}

func TestParallelTieBreakUsesBothBranches(t *testing.T) {
	mk := func(tag string) Node {
		return NewBox(tag, MustParseSignature("(a) -> (a,<"+tag+">)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
	}
	n := Parallel(mk("left"), mk("right"))
	var inputs []*Record
	for i := 0; i < 10; i++ {
		inputs = append(inputs, NewRecord().SetField("a", i))
	}
	out, _ := runNet(t, n, inputs)
	var left, right int
	for _, r := range out {
		if _, ok := r.Tag("left"); ok {
			left++
		}
		if _, ok := r.Tag("right"); ok {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Fatalf("tie-breaking starved a branch: left=%d right=%d", left, right)
	}
	if left+right != 10 {
		t.Fatalf("lost records: %d + %d", left, right)
	}
}

func TestParallelUnroutableDropped(t *testing.T) {
	a := incBox("a", 1) // wants <n>
	b := NewBox("b", MustParseSignature("(x) -> (x)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0]) })
	var errs int32
	out, stats := runNet(t, Parallel(a, b),
		[]*Record{NewRecord().SetField("zzz", 1)},
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if len(out) != 0 || errs != 1 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
	if stats.SumPrefix("parallel.") == 0 {
		t.Fatal("unroutable not counted")
	}
}

func TestParallelThreeBranches(t *testing.T) {
	mk := func(field string) Node {
		return NewBox("b_"+field, MustParseSignature("("+field+") -> ("+field+",<hit>)"),
			func(args []any, out *Emitter) error { return out.Out(1, args[0], 1) })
	}
	n := Parallel(mk("x"), mk("y"), mk("z"))
	out, _ := runNet(t, n, []*Record{
		NewRecord().SetField("x", 1),
		NewRecord().SetField("y", 1),
		NewRecord().SetField("z", 1),
	})
	if len(out) != 3 {
		t.Fatalf("got %d", len(out))
	}
	for _, r := range out {
		if _, ok := r.Tag("hit"); !ok {
			t.Fatalf("record %v missed its branch", r)
		}
	}
}

func TestParallelNeedsTwoBranches(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parallel(one) must panic")
		}
	}()
	Parallel(incBox("only", 1))
}

// --- serial replication (star) ---

// decBox decrements <n>; at zero it emits the second variant carrying
// <done>, the classic star termination shape of the paper's Fig. 1.
func decBox() Node {
	return NewBox("dec", MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"),
		func(args []any, out *Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			return out.Out(1, n-1)
		})
}

func TestStarUnfoldsOnDemand(t *testing.T) {
	n := NamedStar("loop", decBox(), MustParsePattern("{<done>}"))
	out, stats := runNet(t, n, []*Record{recN(5)})
	if len(out) != 1 {
		t.Fatalf("got %d records", len(out))
	}
	if _, ok := out[0].Tag("done"); !ok {
		t.Fatalf("exit record = %v", out[0])
	}
	// n=5 needs calls with 5,4,3,2,1,0 → 6 replicas, no more.
	if got := stats.Counter("star.loop.replicas"); got != 6 {
		t.Fatalf("replicas = %d, want 6", got)
	}
	if got := stats.Max("star.loop.depth"); got != 6 {
		t.Fatalf("depth = %d, want 6", got)
	}
}

func TestStarImmediateExitCreatesNoReplica(t *testing.T) {
	n := NamedStar("loop", decBox(), MustParsePattern("{<done>}"))
	out, stats := runNet(t, n, []*Record{NewRecord().SetTag("n", 3).SetTag("done", 1)})
	if len(out) != 1 {
		t.Fatalf("got %d records", len(out))
	}
	if stats.Counter("star.loop.replicas") != 0 {
		t.Fatal("exit-at-entry must not unfold the chain")
	}
}

func TestStarSharesChainAcrossRecords(t *testing.T) {
	n := NamedStar("loop", decBox(), MustParsePattern("{<done>}"))
	out, stats := runNet(t, n, []*Record{recN(5), recN(5), recN(3)})
	if len(out) != 3 {
		t.Fatalf("got %d records", len(out))
	}
	// The chain is shared: max depth 6 replicas in total.
	if got := stats.Counter("star.loop.replicas"); got != 6 {
		t.Fatalf("replicas = %d, want 6", got)
	}
}

func TestStarGuardedExit(t *testing.T) {
	// Exit once <n> drops below 3 — a guarded pattern like Fig. 3's
	// {<level>} | <level> > 40.
	n := NamedStar("loop", incBox("dec", -1), MustParsePattern("{<n>} | <n> < 3"))
	out, stats := runNet(t, n, []*Record{recN(6)})
	if len(out) != 1 || tagOf(t, out[0], "n") != 2 {
		t.Fatalf("out = %v", out)
	}
	if got := stats.Counter("star.loop.replicas"); got != 4 {
		t.Fatalf("replicas = %d, want 4 (6→5→4→3→2)", got)
	}
}

func TestStarDepthCapDropsRecords(t *testing.T) {
	// A chain that never terminates: cap must stop the unfolding.
	never := incBox("spin", 1)
	var errs int32
	out, stats := runNet(t, NamedStar("loop", never, MustParsePattern("{<done>}")),
		[]*Record{recN(0)},
		WithMaxStarDepth(10),
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if len(out) != 0 {
		t.Fatalf("got %d records", len(out))
	}
	if errs == 0 || stats.Counter("star.loop.overflow") == 0 {
		t.Fatal("overflow not reported")
	}
	if got := stats.Counter("star.loop.replicas"); got != 10 {
		t.Fatalf("replicas = %d, want exactly the cap", got)
	}
}

func TestStarMultiWayFanout(t *testing.T) {
	// Each stage forks into two children until <n> reaches 0 — the
	// search-tree shape of the sudoku networks.  2^4 = 16 leaves.
	fork := NewBox("fork", MustParseSignature("(<n>) -> (<n>) | (<n>,<done>)"),
		func(args []any, out *Emitter) error {
			n := args[0].(int)
			if n <= 0 {
				return out.Out(2, 0, 1)
			}
			if err := out.Out(1, n-1); err != nil {
				return err
			}
			return out.Out(1, n-1)
		})
	out, stats := runNet(t, NamedStar("tree", fork, MustParsePattern("{<done>}")),
		[]*Record{recN(4)})
	if len(out) != 16 {
		t.Fatalf("got %d leaves, want 16", len(out))
	}
	if got := stats.Counter("star.tree.replicas"); got != 5 {
		t.Fatalf("replicas = %d, want 5 (chain depth)", got)
	}
}

// --- parallel replication (split) ---

// instanceNode tags every passing record with a unique per-instance id;
// used to verify replica affinity.
type instanceNode struct{ label string }

var instanceSeq atomic.Int64

func (n *instanceNode) name() string   { return n.label }
func (n *instanceNode) String() string { return "instance" }
func (n *instanceNode) sig(*checker) (RecType, RecType) {
	any := RecType{Variant{}}
	return any, any
}
func (n *instanceNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	id := int(instanceSeq.Add(1))
	for {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.rec != nil {
			it.rec.SetTag("instance", id)
		}
		if !out.send(it) {
			in.Discard()
			return
		}
	}
}

func TestSplitSameTagSameReplica(t *testing.T) {
	n := NamedSplit("width", &instanceNode{label: "inst"}, "k")
	var inputs []*Record
	for i := 0; i < 30; i++ {
		inputs = append(inputs, NewRecord().SetTag("k", i%3).SetTag("seq", i))
	}
	out, stats := runNet(t, n, inputs)
	if len(out) != 30 {
		t.Fatalf("got %d records", len(out))
	}
	byK := map[int]map[int]bool{}
	for _, r := range out {
		k := tagOf(t, r, "k")
		inst := tagOf(t, r, "instance")
		if byK[k] == nil {
			byK[k] = map[int]bool{}
		}
		byK[k][inst] = true
	}
	for k, insts := range byK {
		if len(insts) != 1 {
			t.Fatalf("tag %d reached %d replicas", k, len(insts))
		}
	}
	if got := stats.Counter("split.width.replicas"); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	if got := stats.Max("split.width.width"); got != 3 {
		t.Fatalf("width max = %d", got)
	}
}

func TestSplitWidthCapFoldsTags(t *testing.T) {
	n := NamedSplit("width", &instanceNode{label: "inst"}, "k")
	var inputs []*Record
	for i := 0; i < 16; i++ {
		inputs = append(inputs, NewRecord().SetTag("k", i))
	}
	out, stats := runNet(t, n, inputs, WithMaxSplitWidth(4))
	if len(out) != 16 {
		t.Fatalf("got %d records", len(out))
	}
	if got := stats.Counter("split.width.replicas"); got != 4 {
		t.Fatalf("replicas = %d, want 4 under the cap", got)
	}
	// k and k+4 must land on the same replica.
	inst := map[int]int{}
	for _, r := range out {
		inst[tagOf(t, r, "k")] = tagOf(t, r, "instance")
	}
	for k := 0; k < 12; k++ {
		if inst[k] != inst[k+4] {
			t.Fatalf("k=%d and k=%d on different replicas under mod-4 cap", k, k+4)
		}
	}
}

func TestSplitNegativeTagValues(t *testing.T) {
	n := NamedSplit("width", &instanceNode{label: "inst"}, "k")
	out, _ := runNet(t, n, []*Record{
		NewRecord().SetTag("k", -1),
		NewRecord().SetTag("k", -1),
		NewRecord().SetTag("k", -5),
	}, WithMaxSplitWidth(4))
	if len(out) != 3 {
		t.Fatalf("got %d records", len(out))
	}
	insts := map[int]bool{}
	for _, r := range out {
		if tagOf(t, r, "k") == -1 {
			insts[tagOf(t, r, "instance")] = true
		}
	}
	if len(insts) != 1 {
		t.Fatal("equal negative tags split across replicas")
	}
}

func TestSplitMissingTagReported(t *testing.T) {
	var errs int32
	out, stats := runNet(t, NamedSplit("width", incBox("i", 0), "k"),
		[]*Record{recN(1)},
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if len(out) != 0 || errs != 1 {
		t.Fatalf("out=%d errs=%d", len(out), errs)
	}
	if stats.Counter("split.width.untagged") != 1 {
		t.Fatal("untagged not counted")
	}
}

// --- synchrocell ---

func TestSyncJoinsTwoPatterns(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	out, stats := runNet(t, n, []*Record{
		NewRecord().SetField("a", 1),
		NewRecord().SetField("b", 2),
		NewRecord().SetField("a", 99), // after firing: passes through
	})
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	joined := out[0]
	if _, ok := joined.Field("b"); !ok {
		t.Fatalf("first output must be the join: %v", joined)
	}
	if av, _ := joined.Field("a"); av != 1 {
		t.Fatalf("join a = %v", av)
	}
	if stats.SumPrefix("sync.") != 1 {
		t.Fatal("sync.fired missing")
	}
}

func TestSyncEarlierPatternPrecedence(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	out, _ := runNet(t, n, []*Record{
		NewRecord().SetField("a", "first").SetField("x", 1),
		NewRecord().SetField("b", "second").SetField("a", "clash"),
	})
	if len(out) != 1 {
		t.Fatalf("got %d records", len(out))
	}
	if av, _ := out[0].Field("a"); av != "first" {
		t.Fatalf("precedence broken: a = %v", av)
	}
	if _, ok := out[0].Field("x"); !ok {
		t.Fatal("stored labels lost")
	}
}

func TestSyncNonMatchingPassesThrough(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	out, _ := runNet(t, n, []*Record{NewRecord().SetField("c", 1)})
	if len(out) != 1 {
		t.Fatal("non-matching record must pass through")
	}
}

func TestSyncStarvationCounted(t *testing.T) {
	n := Sync(MustParsePattern("{a}"), MustParsePattern("{b}"))
	out, stats := runNet(t, n, []*Record{NewRecord().SetField("a", 1)})
	if len(out) != 0 {
		t.Fatal("stored record must not be emitted unfired")
	}
	if stats.SumPrefix("sync.") != 1 {
		t.Fatal("starved not counted")
	}
}

func TestSyncNeedsTwoPatterns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sync(one) must panic")
		}
	}()
	Sync(MustParsePattern("{a}"))
}

// --- nesting ---

func TestNestedCombinators(t *testing.T) {
	// (inc .. (dec ** {<done>})) !! <k>  — replicated pipelines with an
	// inner replication, the Fig. 2 shape.
	inner := Serial(incBox("plus", 3), NamedStar("loop", decBox(), MustParsePattern("{<done>}")))
	n := NamedSplit("outer", inner, "k")
	var inputs []*Record
	for i := 0; i < 8; i++ {
		inputs = append(inputs, NewRecord().SetTag("n", i).SetTag("k", i%4))
	}
	out, stats := runNet(t, n, inputs)
	if len(out) != 8 {
		t.Fatalf("got %d records", len(out))
	}
	for _, r := range out {
		if _, ok := r.Tag("done"); !ok {
			t.Fatalf("record %v did not finish the inner loop", r)
		}
		if _, ok := r.Tag("k"); !ok {
			t.Fatal("index tag lost (flow inheritance through boxes)")
		}
	}
	if got := stats.Counter("split.outer.replicas"); got != 4 {
		t.Fatalf("outer replicas = %d", got)
	}
}

func TestParallelWithContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := Parallel(incBox("a", 1), NewBox("b", MustParseSignature("(x) -> (x)"),
		func(args []any, out *Emitter) error { return out.Out(1, args[0]) }))
	h := Start(ctx, n)
	for i := 0; i < 10; i++ {
		_ = h.Send(recN(i))
	}
	cancel()
	h.Wait() // must terminate
}
