package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the concurrent box execution engine.  Box functions are
// stateless by contract (§4: "it is the concern of the box implementation
// to exploit concurrency internally, and of S-Net to exploit it between
// boxes"), so one box node may run many invocations at a time.  What the
// engine must preserve is the stream abstraction around that concurrency:
//
//   - Order: the output stream must be indistinguishable from sequential
//     invocation.  Every accepted input is assigned a slot in a FIFO
//     reorder queue; invocation i's emissions are released downstream
//     strictly before invocation i+1's, whatever order the invocations
//     finish in.  Deterministic combinators fed by the box therefore see
//     exactly the W=1 interleaving.
//   - Marker barriers: a sort record ("marker") of the deterministic-merge
//     protocol occupies its own slot in the reorder queue, so it is
//     forwarded only after every invocation dispatched before it has
//     flushed, and before anything dispatched after it — in-flight
//     invocations never leak emissions across a marker.
//   - Panic isolation: an invocation that panics loses only its own
//     record; its slot closes and the stream continues (invoke recovers).
//   - Backpressure: each slot's emission buffer is an ordinary stream
//     (newStream) with the run's frame capacity; a fast invocation far
//     from the head of the queue blocks on its own buffer rather than
//     ballooning memory.  Closing the slot stream when the invocation
//     returns flushes any batched tail, so a worker never parks between
//     calls with emissions still pending.

// boxSlot is one slot of the reorder queue: either a forwarded marker or
// the emission stream of one invocation (closed when it returns).  The
// worker publishes the invocation's emitter just before closing emit, so
// the releaser — the only party that knows which emissions actually
// reached the output stream — can settle the invocation's counters.
type boxSlot struct {
	mk   *marker
	emit *streamReader
	em   *Emitter // set by the worker before the emit writer closes
}

// boxCall is one dispatched invocation; emitW is the writing end of the
// slot's emission stream, owned by the worker that picks the call up.
type boxCall struct {
	rec   *Record
	args  []any
	emitW *streamWriter
	slot  *boxSlot
}

func (b *boxNode) runConcurrent(env *runEnv, in *streamReader, out *streamWriter, width int) {
	defer out.close()
	env.stats.Add(b.keys.instances, 1)
	env.stats.SetMax(b.keys.concurrency, int64(width))
	consumed := NewVariant(b.boxSig.In...)

	var (
		inflight atomic.Int64 // invocations currently running
		wg       sync.WaitGroup
	)
	// Reorder queue capacity beyond the worker count only buys queued-but-
	// undispatched slots; width+1 keeps the dispatcher just ahead of the
	// workers without unbounded marker pile-up.
	slots := make(chan *boxSlot, width+1)
	calls := make(chan *boxCall)

	worker := func() {
		defer wg.Done()
		for c := range calls {
			env.stats.SetMax(b.keys.inflight, inflight.Add(1))
			em := &Emitter{env: env, out: c.emitW, box: b, src: c.rec, consumed: consumed}
			b.invoke(env, c.args, em)
			inflight.Add(-1)
			em.src = nil
			releaseRecord(c.rec) // the invocation consumed its input
			c.slot.em = em       // published by the close below
			c.emitW.close()
		}
	}

	// The releaser walks the reorder queue in FIFO order, streaming each
	// slot's emissions (or marker) to out.  Head-of-queue emissions stream
	// through as their frames are flushed; later invocations buffer until
	// they become the head.  It also settles the per-invocation counters:
	// an invocation counts under "calls"/"emitted" only for what its slot
	// actually delivered downstream; slots overtaken by cancellation —
	// including invocations still buffered or never dispatched — count
	// under "cancelled", matching the sequential path's contract.
	released := make(chan struct{})
	go func() {
		defer close(released)
		// nextSlot dequeues the next reorder slot, flushing out's pending
		// batch before blocking so released emissions never wait on an
		// idle reorder queue.
		nextSlot := func() (*boxSlot, bool) {
			select {
			case s, ok := <-slots:
				return s, ok
			default:
			}
			out.flush() // cancellation is handled by the send loop below
			s, ok := <-slots
			return s, ok
		}
		aborted := false
		for {
			s, ok := nextSlot()
			if !ok {
				return
			}
			if s.mk != nil {
				if !aborted && !out.send(item{mk: s.mk}) {
					aborted = true
				}
				continue
			}
			s.emit.autoFlush(out)
			delivered, completed := 0, false
			for !aborted {
				it, ok := s.emit.recv()
				if !ok {
					if ctxDone(env.ctx) {
						aborted = true
						break
					}
					completed = s.em != nil && !s.em.stopped
					break
				}
				if out.send(it) {
					delivered++
					continue
				}
				aborted = true
			}
			if aborted {
				s.emit.Discard()
			}
			if delivered > 0 {
				env.stats.Add(b.keys.emitted, int64(delivered))
			}
			if completed {
				env.stats.Add(b.keys.calls, 1)
			} else {
				env.stats.Add(b.keys.cancelled, 1)
			}
		}
	}()

	// Dispatch loop (the node's own goroutine).  Workers spawn lazily, one
	// per observed need up to width, so a box that happens to see only
	// sequential traffic costs a single extra goroutine.
	enqueue := func(s *boxSlot) bool {
		select {
		case slots <- s:
			return true
		case <-env.ctx.Done():
			return false
		}
	}
	spawned := 0
	dispatch := func(c *boxCall) bool {
		if spawned < width {
			select {
			case calls <- c: // an idle worker was already waiting
				return true
			default:
				spawned++
				wg.Add(1)
				go worker()
			}
		}
		select {
		case calls <- c:
			return true
		case <-env.ctx.Done():
			return false
		}
	}
	for {
		it, ok := in.recv()
		if !ok {
			break
		}
		if it.mk != nil {
			if !enqueue(&boxSlot{mk: it.mk}) {
				break
			}
			continue
		}
		rec := it.rec
		env.trace(b.label, "in", rec)
		args, ok := b.bindArgs(rec, nil)
		if !ok {
			env.error(fmt.Errorf("core: box %s: input record %s does not match signature %s",
				b.label, rec, b.boxSig))
			env.stats.Add(b.keys.rejected, 1)
			releaseRecord(rec)
			continue
		}
		emitR, emitW := newStream(env)
		s := &boxSlot{emit: emitR}
		if !enqueue(s) {
			break
		}
		if !dispatch(&boxCall{rec: rec, args: args, emitW: emitW, slot: s}) {
			// Cancelled between queueing the slot and handing the call to
			// a worker; the releaser's recv is cancellation-aware, so the
			// never-filled slot cannot wedge it.
			releaseRecord(rec)
			break
		}
	}
	in.Discard()
	close(calls)
	wg.Wait()
	close(slots)
	<-released
}
