package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordBasics(t *testing.T) {
	r := NewRecord().SetField("board", []int{1, 2}).SetTag("k", 3)
	if v, ok := r.Field("board"); !ok || v == nil {
		t.Fatal("field lookup failed")
	}
	if v, ok := r.Tag("k"); !ok || v != 3 {
		t.Fatal("tag lookup failed")
	}
	if _, ok := r.Field("missing"); ok {
		t.Fatal("phantom field")
	}
	if _, ok := r.Tag("missing"); ok {
		t.Fatal("phantom tag")
	}
	if r.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d", r.NumLabels())
	}
	if !r.HasLabel(Field("board")) || !r.HasLabel(Tag("k")) || r.HasLabel(Tag("board")) {
		t.Fatal("HasLabel confused fields and tags")
	}
}

func TestRecordMustAccessors(t *testing.T) {
	r := NewRecord().SetField("a", 1).SetTag("t", 2)
	if r.MustField("a") != 1 || r.MustTag("t") != 2 {
		t.Fatal("Must accessors broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustField on absent label must panic")
			}
		}()
		r.MustField("zzz")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustTag on absent label must panic")
			}
		}()
		r.MustTag("zzz")
	}()
}

func TestRecordDelete(t *testing.T) {
	r := NewRecord().SetField("a", 1).SetTag("t", 2)
	r.DeleteField("a")
	r.DeleteTag("t")
	if r.NumLabels() != 0 {
		t.Fatal("delete failed")
	}
}

func TestRecordCopyIsIndependent(t *testing.T) {
	r := NewRecord().SetField("a", 1).SetTag("t", 2)
	c := r.Copy()
	c.SetField("b", 3)
	c.SetTag("u", 4)
	if r.NumLabels() != 2 {
		t.Fatal("copy shares label maps")
	}
	if !c.Labels().SubtypeOf(r.Labels()) {
		t.Fatal("copy lost labels")
	}
}

func TestRecordString(t *testing.T) {
	r := NewRecord().SetField("b", 1).SetField("a", "x").SetTag("k", 7)
	s := r.String()
	if s != "{a=x, b=1, <k>=7}" {
		t.Fatalf("String = %q", s)
	}
	big := NewRecord().SetField("data", []int{1, 2, 3})
	if !strings.Contains(big.String(), "(") {
		t.Fatalf("non-scalar field should render as type: %q", big.String())
	}
}

func TestRecordLabels(t *testing.T) {
	r := NewRecord().SetField("a", 1).SetTag("t", 0)
	v := r.Labels()
	want := NewVariant(Field("a"), Tag("t"))
	if !v.Equal(want) {
		t.Fatalf("Labels = %v", v)
	}
}

func TestFieldAndTagNamesSorted(t *testing.T) {
	r := NewRecord().SetField("z", 0).SetField("a", 0).SetTag("m", 0).SetTag("b", 0)
	f := r.FieldNames()
	g := r.TagNames()
	if f[0] != "a" || f[1] != "z" || g[0] != "b" || g[1] != "m" {
		t.Fatalf("names unsorted: %v %v", f, g)
	}
}

// Property: Copy round-trips all labels and values.
func TestQuickRecordCopyRoundTrip(t *testing.T) {
	f := func(fields map[string]int, tags map[string]int) bool {
		r := NewRecord()
		for k, v := range fields {
			if k == "" {
				continue
			}
			r.SetField(k, v)
		}
		for k, v := range tags {
			if k == "" {
				continue
			}
			r.SetTag(k, v)
		}
		c := r.Copy()
		if !c.Labels().Equal(r.Labels()) {
			return false
		}
		for _, k := range r.FieldNames() {
			a, _ := r.Field(k)
			b, _ := c.Field(k)
			if a != b {
				return false
			}
		}
		for _, k := range r.TagNames() {
			a, _ := r.Tag(k)
			b, _ := c.Tag(k)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
