package core

import (
	"fmt"
	"strings"
)

// FilterItem is one element of a filter output record specifier (§4):
//
//   - a field name occurring in the pattern: copied to the new record;
//   - newfield = oldfield: the old field's value under a new label;
//   - <tag>: copied if the tag occurs in the pattern, else initialised to 0;
//   - <tag> = expr: a tag computed from the incoming record's tags.
type FilterItem struct {
	// Field items (IsTag false): Name is the new label, Src the pattern
	// field it is copied from (Src == Name for plain copies).
	// Tag items (IsTag true): Name is the new tag label, Expr its value
	// expression; nil Expr means "copy if in pattern, else zero".
	Name  string
	IsTag bool
	Src   string
	Expr  TagExpr
}

func (it FilterItem) String() string {
	if it.IsTag {
		if it.Expr == nil {
			return "<" + it.Name + ">"
		}
		return "<" + it.Name + ">=" + it.Expr.String()
	}
	if it.Src == it.Name {
		return it.Name
	}
	return it.Name + "=" + it.Src
}

// FilterSpec is a complete filter: a pattern and the list of output record
// specifiers produced for every matching input record.
//
//	[ {a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1} ]
//
// Labels of the incoming record that do not occur in the pattern are
// attached to every output record by flow inheritance, unless the output
// already carries the label.
type FilterSpec struct {
	Pattern Pattern
	Outputs [][]FilterItem
}

func (f *FilterSpec) String() string {
	outs := make([]string, len(f.Outputs))
	for i, o := range f.Outputs {
		parts := make([]string, len(o))
		for j, it := range o {
			parts[j] = it.String()
		}
		outs[i] = "{" + strings.Join(parts, ",") + "}"
	}
	return "[" + f.Pattern.String() + " -> " + strings.Join(outs, "; ") + "]"
}

// OutType approximates the filter's output type from the specifiers.
func (f *FilterSpec) OutType() RecType {
	out := make(RecType, len(f.Outputs))
	for i, items := range f.Outputs {
		v := Variant{}
		for _, it := range items {
			v[Label{Name: it.Name, IsTag: it.IsTag}] = struct{}{}
		}
		out[i] = v
	}
	return out
}

// Apply builds the output records for one matching input record.  It
// returns an error when a tag expression cannot be evaluated.
func (f *FilterSpec) Apply(rec *Record) ([]*Record, error) {
	return f.applyInto(rec, nil, false)
}

// applyInto is Apply with the runtime's resource discipline: outputs go into
// dst (reused across records by the filter node's run loop) and, when pooled
// is set, output records come from the record arena.  On error every
// already-built pooled output is returned to the arena.
func (f *FilterSpec) applyInto(rec *Record, dst []*Record, pooled bool) ([]*Record, error) {
	outs := dst[:0]
	fail := func(err error) ([]*Record, error) {
		if pooled {
			for _, o := range outs {
				releaseRecord(o)
			}
		}
		return nil, err
	}
	for _, items := range f.Outputs {
		var o *Record
		if pooled {
			o = acquireRecord()
		} else {
			o = NewRecord()
		}
		outs = append(outs, o)
		for _, it := range items {
			if it.IsTag {
				switch {
				case it.Expr != nil:
					v, err := evalTagRec(it.Expr, rec)
					if err != nil {
						return fail(fmt.Errorf("filter %s: %w", f, err))
					}
					o.SetTag(it.Name, v)
				default:
					if v, ok := rec.Tag(it.Name); ok && f.Pattern.Variant.Has(Tag(it.Name)) {
						o.SetTag(it.Name, v)
					} else {
						o.SetTag(it.Name, 0)
					}
				}
				continue
			}
			v, ok := rec.Field(it.Src)
			if !ok {
				return fail(fmt.Errorf("filter %s: input record %s has no field %q", f, rec, it.Src))
			}
			o.SetField(it.Name, v)
		}
		inheritInto(o, rec, f.Pattern.Variant)
	}
	return outs, nil
}

// inheritInto implements flow inheritance: every label of src that is not
// consumed (not in the consumed variant) is copied to dst unless dst already
// carries the label.
func inheritInto(dst, src *Record, consumed Variant) {
	for i, name := range src.shape.fieldNames {
		if consumed.Has(Field(name)) {
			continue
		}
		if _, ok := dst.shape.fieldSlot(name); !ok {
			dst.SetField(name, src.fvals[i])
		}
	}
	for i, name := range src.shape.tagNames {
		if consumed.Has(Tag(name)) {
			continue
		}
		if _, ok := dst.shape.tagSlot(name); !ok {
			dst.SetTag(name, src.tvals[i])
		}
	}
}

// ParseFilter parses the paper's filter notation, with or without the
// enclosing brackets:
//
//	[{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]
//
// An empty output list ("[{x} -> ]") is permitted and discards matching
// records (useful for termination sinks).
func ParseFilter(src string) (*FilterSpec, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	bracketed := p.accept(tokLBrack)
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	spec := &FilterSpec{Pattern: pat}
	for p.at(tokLBrace) {
		items, err := p.parseFilterOutput(pat)
		if err != nil {
			return nil, err
		}
		spec.Outputs = append(spec.Outputs, items)
		if !p.accept(tokSemi) {
			break
		}
	}
	if bracketed {
		if _, err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
	}
	if err := p.eof(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MustParseFilter is ParseFilter panicking on error.
func MustParseFilter(src string) *FilterSpec {
	f, err := ParseFilter(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) parseFilterOutput(pat Pattern) ([]FilterItem, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	items := []FilterItem{}
	if p.accept(tokRBrace) {
		return items, nil
	}
	for {
		// Output items name labels the filter synthesizes; like parseLabel,
		// refuse the runtime's reserved namespace.
		if k := p.peek().kind; (k == tokIdent || k == tokTagName) && IsReservedLabel(p.peek().text) {
			return nil, p.errf("label %q lies in the reserved %q namespace",
				p.peek().text, ReservedTagPrefix)
		}
		switch p.peek().kind {
		case tokIdent:
			name := p.take().text
			if p.accept(tokAssign) {
				src, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if !pat.Variant.Has(Field(src.text)) {
					return nil, p.errf("field %q not in filter pattern", src.text)
				}
				items = append(items, FilterItem{Name: name, Src: src.text})
			} else {
				if !pat.Variant.Has(Field(name)) {
					return nil, p.errf("field %q not in filter pattern", name)
				}
				items = append(items, FilterItem{Name: name, Src: name})
			}
		case tokTagName:
			name := p.take().text
			if p.accept(tokAssign) {
				e, err := p.parseTagExpr()
				if err != nil {
					return nil, err
				}
				for _, ref := range e.TagRefs(nil) {
					if !pat.Variant.Has(Tag(ref)) {
						return nil, p.errf("tag <%s> used in expression but not in filter pattern", ref)
					}
				}
				items = append(items, FilterItem{Name: name, IsTag: true, Expr: e})
			} else {
				items = append(items, FilterItem{Name: name, IsTag: true})
			}
		default:
			return nil, p.errf("expected filter item, found %v", p.peek().kind)
		}
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return items, nil
	}
}
