package core

import (
	"fmt"
	"strings"
)

// FilterItem is one element of a filter output record specifier (§4):
//
//   - a field name occurring in the pattern: copied to the new record;
//   - newfield = oldfield: the old field's value under a new label;
//   - <tag>: copied if the tag occurs in the pattern, else initialised to 0;
//   - <tag> = expr: a tag computed from the incoming record's tags.
type FilterItem struct {
	// Field items (IsTag false): Name is the new label, Src the pattern
	// field it is copied from (Src == Name for plain copies).
	// Tag items (IsTag true): Name is the new tag label, Expr its value
	// expression; nil Expr means "copy if in pattern, else zero".
	Name  string
	IsTag bool
	Src   string
	Expr  TagExpr
}

func (it FilterItem) String() string {
	if it.IsTag {
		if it.Expr == nil {
			return "<" + it.Name + ">"
		}
		return "<" + it.Name + ">=" + it.Expr.String()
	}
	if it.Src == it.Name {
		return it.Name
	}
	return it.Name + "=" + it.Src
}

// FilterSpec is a complete filter: a pattern and the list of output record
// specifiers produced for every matching input record.
//
//	[ {a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1} ]
//
// Labels of the incoming record that do not occur in the pattern are
// attached to every output record by flow inheritance, unless the output
// already carries the label.
type FilterSpec struct {
	Pattern Pattern
	Outputs [][]FilterItem
}

func (f *FilterSpec) String() string {
	outs := make([]string, len(f.Outputs))
	for i, o := range f.Outputs {
		parts := make([]string, len(o))
		for j, it := range o {
			parts[j] = it.String()
		}
		outs[i] = "{" + strings.Join(parts, ",") + "}"
	}
	return "[" + f.Pattern.String() + " -> " + strings.Join(outs, "; ") + "]"
}

// OutType approximates the filter's output type from the specifiers.
func (f *FilterSpec) OutType() RecType {
	out := make(RecType, len(f.Outputs))
	for i, items := range f.Outputs {
		v := Variant{}
		for _, it := range items {
			v[Label{Name: it.Name, IsTag: it.IsTag}] = struct{}{}
		}
		out[i] = v
	}
	return out
}

// Apply builds the output records for one matching input record.  It
// returns an error when a tag expression cannot be evaluated.
func (f *FilterSpec) Apply(rec *Record) ([]*Record, error) {
	return f.applyInto(rec, nil, false)
}

// applyInto is Apply with the runtime's resource discipline: outputs go into
// dst (reused across records by the filter node's run loop) and, when pooled
// is set, output records come from the record arena.  On error every
// already-built pooled output is returned to the arena.
func (f *FilterSpec) applyInto(rec *Record, dst []*Record, pooled bool) ([]*Record, error) {
	outs := dst[:0]
	fail := func(err error) ([]*Record, error) {
		if pooled {
			for _, o := range outs {
				releaseRecord(o)
			}
		}
		return nil, err
	}
	for _, items := range f.Outputs {
		var o *Record
		if pooled {
			o = acquireRecord()
		} else {
			o = NewRecord()
		}
		outs = append(outs, o)
		for _, it := range items {
			if it.IsTag {
				switch {
				case it.Expr != nil:
					v, err := evalTagRec(it.Expr, rec)
					if err != nil {
						return fail(fmt.Errorf("filter %s: %w", f, err))
					}
					o.SetTag(it.Name, v)
				default:
					if v, ok := rec.Tag(it.Name); ok && f.Pattern.Variant.Has(Tag(it.Name)) {
						o.SetTag(it.Name, v)
					} else {
						o.SetTag(it.Name, 0)
					}
				}
				continue
			}
			v, ok := rec.Field(it.Src)
			if !ok {
				return fail(fmt.Errorf("filter %s: input record %s has no field %q", f, rec, it.Src))
			}
			o.SetField(it.Name, v)
		}
		inheritInto(o, rec, f.Pattern.Variant)
	}
	return outs, nil
}

// filterProg is a FilterSpec compiled against one input shape: a flat fill
// program bound to slot indices on both sides.  Where applyInto re-resolves
// every label per record (shape transitions, binary searches, the inheritance
// scan), the program resolved them all once — per output record it acquires
// an arena record, stamps the precomputed output shape, and runs a list of
// slot-to-slot moves.  Every slot of the output shape is written by exactly
// one fill, so records come out fully initialized with no clearing pass.
type filterProg struct {
	spec *FilterSpec
	outs []outProg
	// fallback marks shapes the program cannot serve exactly — a source
	// field absent from the input shape (applyInto's error path owns the
	// message) or duplicate item names whose later-wins/first-error ordering
	// only the interpretive path reproduces.  The runtime then uses
	// applyInto for this shape.
	fallback bool
}

// outProg builds one output record: the interned shape plus the fills.
type outProg struct {
	shape  *shape
	fields []fieldFill
	tags   []tagFill
}

// fieldFill copies input field slot src to output field slot dst.
type fieldFill struct{ dst, src int }

// tagFill writes output tag slot dst: from expr when non-nil, else copied
// from input tag slot src, else (src < 0) initialized to zero.
type tagFill struct {
	dst, src int
	expr     TagExpr
}

// compileFilterProg binds spec to one input shape.  The result is exact for
// the given shape or marked fallback; it never guesses.
func compileFilterProg(spec *FilterSpec, src *shape) *filterProg {
	p := &filterProg{spec: spec}
	for _, items := range spec.Outputs {
		fieldSrc := map[string]int{}
		type tagDef struct {
			src  int
			expr TagExpr
		}
		tagSrc := map[string]tagDef{}
		for _, it := range items {
			if it.IsTag {
				if _, dup := tagSrc[it.Name]; dup {
					p.fallback = true
					return p
				}
				if it.Expr != nil {
					tagSrc[it.Name] = tagDef{src: -1, expr: it.Expr}
					continue
				}
				slot := -1
				if i, ok := src.tagSlot(it.Name); ok && spec.Pattern.Variant.Has(Tag(it.Name)) {
					slot = i
				}
				tagSrc[it.Name] = tagDef{src: slot}
				continue
			}
			if _, dup := fieldSrc[it.Name]; dup {
				p.fallback = true
				return p
			}
			i, ok := src.fieldSlot(it.Src)
			if !ok {
				p.fallback = true
				return p
			}
			fieldSrc[it.Name] = i
		}
		// Flow inheritance, resolved statically: every label of the input
		// shape that is neither consumed by the pattern nor explicitly
		// produced is a plain copy (mirrors inheritInto over this shape).
		for i, name := range src.fieldNames {
			if spec.Pattern.Variant.Has(Field(name)) {
				continue
			}
			if _, explicit := fieldSrc[name]; !explicit {
				fieldSrc[name] = i
			}
		}
		for i, name := range src.tagNames {
			if spec.Pattern.Variant.Has(Tag(name)) {
				continue
			}
			if _, explicit := tagSrc[name]; !explicit {
				tagSrc[name] = tagDef{src: i}
			}
		}
		v := make(Variant, len(fieldSrc)+len(tagSrc))
		for name := range fieldSrc {
			v[Field(name)] = struct{}{}
		}
		for name := range tagSrc {
			v[Tag(name)] = struct{}{}
		}
		osh := shapeForVariant(v)
		op := outProg{shape: osh,
			fields: make([]fieldFill, 0, len(fieldSrc)),
			tags:   make([]tagFill, 0, len(tagSrc))}
		for name, s := range fieldSrc {
			d, _ := osh.fieldSlot(name)
			op.fields = append(op.fields, fieldFill{dst: d, src: s})
		}
		for name, td := range tagSrc {
			d, _ := osh.tagSlot(name)
			op.tags = append(op.tags, tagFill{dst: d, src: td.src, expr: td.expr})
		}
		p.outs = append(p.outs, op)
	}
	return p
}

// apply is the program's runtime: applyInto for the shape it was compiled
// against, with outputs built slot-by-slot from the arena.  dst is reused
// across records like applyInto's; on error every already-built output is
// returned to the arena.
func (p *filterProg) apply(rec *Record, dst []*Record) ([]*Record, error) {
	outs := dst[:0]
	for oi := range p.outs {
		op := &p.outs[oi]
		o := acquireRecord()
		o.shape = op.shape
		// Arena records keep their slot capacity across recycling, so after
		// warmup these resizes are free; every slot is then written by
		// exactly one fill below.
		if nf := len(op.shape.fieldNames); cap(o.fvals) >= nf {
			o.fvals = o.fvals[:nf]
		} else {
			o.fvals = make([]any, nf)
		}
		if nt := len(op.shape.tagNames); cap(o.tvals) >= nt {
			o.tvals = o.tvals[:nt]
		} else {
			o.tvals = make([]int, nt)
		}
		outs = append(outs, o)
		for _, f := range op.fields {
			o.fvals[f.dst] = rec.fvals[f.src]
		}
		for _, t := range op.tags {
			switch {
			case t.expr != nil:
				v, err := evalTagRec(t.expr, rec)
				if err != nil {
					for _, b := range outs {
						releaseRecord(b)
					}
					return nil, fmt.Errorf("filter %s: %w", p.spec, err)
				}
				o.tvals[t.dst] = v
			case t.src >= 0:
				o.tvals[t.dst] = rec.tvals[t.src]
			default:
				o.tvals[t.dst] = 0
			}
		}
	}
	return outs, nil
}

// inheritInto implements flow inheritance: every label of src that is not
// consumed (not in the consumed variant) is copied to dst unless dst already
// carries the label.
func inheritInto(dst, src *Record, consumed Variant) {
	for i, name := range src.shape.fieldNames {
		if consumed.Has(Field(name)) {
			continue
		}
		if _, ok := dst.shape.fieldSlot(name); !ok {
			dst.SetField(name, src.fvals[i])
		}
	}
	for i, name := range src.shape.tagNames {
		if consumed.Has(Tag(name)) {
			continue
		}
		if _, ok := dst.shape.tagSlot(name); !ok {
			dst.SetTag(name, src.tvals[i])
		}
	}
}

// ParseFilter parses the paper's filter notation, with or without the
// enclosing brackets:
//
//	[{a,b,<c>} -> {a,z=a,<t>}; {b,a=b,<c>=<c>+1}]
//
// An empty output list ("[{x} -> ]") is permitted and discards matching
// records (useful for termination sinks).
func ParseFilter(src string) (*FilterSpec, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	bracketed := p.accept(tokLBrack)
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	spec := &FilterSpec{Pattern: pat}
	for p.at(tokLBrace) {
		items, err := p.parseFilterOutput(pat)
		if err != nil {
			return nil, err
		}
		spec.Outputs = append(spec.Outputs, items)
		if !p.accept(tokSemi) {
			break
		}
	}
	if bracketed {
		if _, err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
	}
	if err := p.eof(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MustParseFilter is ParseFilter panicking on error.
func MustParseFilter(src string) *FilterSpec {
	f, err := ParseFilter(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *parser) parseFilterOutput(pat Pattern) ([]FilterItem, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	items := []FilterItem{}
	if p.accept(tokRBrace) {
		return items, nil
	}
	for {
		// Output items name labels the filter synthesizes; like parseLabel,
		// refuse the runtime's reserved namespace.
		if k := p.peek().kind; (k == tokIdent || k == tokTagName) && IsReservedLabel(p.peek().text) {
			return nil, p.errf("label %q lies in the reserved %q namespace",
				p.peek().text, ReservedTagPrefix)
		}
		switch p.peek().kind {
		case tokIdent:
			name := p.take().text
			if p.accept(tokAssign) {
				src, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if !pat.Variant.Has(Field(src.text)) {
					return nil, p.errf("field %q not in filter pattern", src.text)
				}
				items = append(items, FilterItem{Name: name, Src: src.text})
			} else {
				if !pat.Variant.Has(Field(name)) {
					return nil, p.errf("field %q not in filter pattern", name)
				}
				items = append(items, FilterItem{Name: name, Src: name})
			}
		case tokTagName:
			name := p.take().text
			if p.accept(tokAssign) {
				e, err := p.parseTagExpr()
				if err != nil {
					return nil, err
				}
				for _, ref := range e.TagRefs(nil) {
					if !pat.Variant.Has(Tag(ref)) {
						return nil, p.errf("tag <%s> used in expression but not in filter pattern", ref)
					}
				}
				items = append(items, FilterItem{Name: name, IsTag: true, Expr: e})
			} else {
				items = append(items, FilterItem{Name: name, IsTag: true})
			}
		default:
			return nil, p.errf("expected filter item, found %v", p.peek().kind)
		}
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return items, nil
	}
}
