package core

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// goroutineCount samples the goroutine count after a settle period.
func goroutineCount() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// waitForGoroutines polls until the count drops to at most want (plus
// slack), failing the test on timeout.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

func TestNoLeakAfterNormalDrain(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		n := Serial(
			incBox("l1", 1),
			NamedStar("loop", decBox(), MustParsePattern("{<done>}")),
			MustFilter("{<done>} -> {<done>=<done>}"),
		)
		out, _, err := RunAll(context.Background(), n, []*Record{recN(4), recN(2)})
		if err != nil || len(out) != 2 {
			t.Fatalf("run %d: out=%d err=%v", i, len(out), err)
		}
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakAfterCancel(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		slow := NewBox("lslow", MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *Emitter) error {
				time.Sleep(time.Millisecond)
				return out.Out(1, args[0].(int))
			})
		n := Split(Serial(slow, NamedStar("lloop", decBox(), MustParsePattern("{<done>}"))), "k")
		h := Start(context.Background(), n)
		for j := 0; j < 20; j++ {
			_ = h.Send(NewRecord().SetTag("n", 10).SetTag("k", j%4))
		}
		h.Cancel()
		h.Wait()
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakDeterministicNets(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		n := SplitDet(StarDet(decBox(), MustParsePattern("{<done>}")), "k")
		inputs := seqInputs(10, func(j int, r *Record) {
			r.SetTag("k", j%3).SetTag("n", j%4)
		})
		out, _, err := RunAll(context.Background(), n, inputs)
		if err != nil || len(out) != 10 {
			t.Fatalf("run %d: out=%d err=%v", i, len(out), err)
		}
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakUnconsumedOutput(t *testing.T) {
	// Cancel with records still queued in the output adapter and a
	// sender still blocked on backpressure; h.Out() is never read.
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		h := Start(context.Background(), incBox("u", 1), WithBuffer(2))
		sendDone := make(chan struct{})
		go func() {
			defer close(sendDone)
			for j := 0; j < 10; j++ {
				if h.Send(recN(j)) != nil {
					return
				}
			}
		}()
		time.Sleep(time.Millisecond)
		h.Cancel()
		<-sendDone
		h.Wait()
	}
	waitForGoroutines(t, base+3)
}
