package core

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// goroutineCount samples the goroutine count after a settle period.
func goroutineCount() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// waitForGoroutines polls until the count drops to at most want (plus
// slack), failing the test on timeout.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

func TestNoLeakAfterNormalDrain(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		n := Serial(
			incBox("l1", 1),
			NamedStar("loop", decBox(), MustParsePattern("{<done>}")),
			MustFilter("{<done>} -> {<done>=<done>}"),
		)
		out, _, err := RunAll(context.Background(), n, []*Record{recN(4), recN(2)})
		if err != nil || len(out) != 2 {
			t.Fatalf("run %d: out=%d err=%v", i, len(out), err)
		}
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakAfterCancel(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		slow := NewBox("lslow", MustParseSignature("(<n>) -> (<n>)"),
			func(args []any, out *Emitter) error {
				time.Sleep(time.Millisecond)
				return out.Out(1, args[0].(int))
			})
		n := Split(Serial(slow, NamedStar("lloop", decBox(), MustParsePattern("{<done>}"))), "k")
		h := Start(context.Background(), n)
		for j := 0; j < 20; j++ {
			_ = h.Send(NewRecord().SetTag("n", 10).SetTag("k", j%4))
		}
		h.Cancel()
		h.Wait()
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakDeterministicNets(t *testing.T) {
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		n := SplitDet(StarDet(decBox(), MustParsePattern("{<done>}")), "k")
		inputs := seqInputs(10, func(j int, r *Record) {
			r.SetTag("k", j%3).SetTag("n", j%4)
		})
		out, _, err := RunAll(context.Background(), n, inputs)
		if err != nil || len(out) != 10 {
			t.Fatalf("run %d: out=%d err=%v", i, len(out), err)
		}
	}
	waitForGoroutines(t, base+3)
}

// Mid-stream cancellation per node kind: every node's early-exit path must
// go through the shared drainTail discipline, so neither the upstream
// sender nor the node's own machinery (including the box engine's workers
// and releaser) can outlive the run.
func TestNoLeakMidStreamCancel(t *testing.T) {
	slowBody := func(args []any, out *Emitter) error {
		select {
		case <-out.Done():
			return ErrCancelled
		case <-time.After(time.Millisecond):
		}
		return out.Out(1, args[0].(int))
	}
	cases := map[string]func() Node{
		"box": func() Node {
			return NewBox("mc", MustParseSignature("(<n>) -> (<n>)"), slowBody)
		},
		"boxConcurrent": func() Node {
			return NewBoxConcurrent("mcw", MustParseSignature("(<n>) -> (<n>)"), slowBody, 4)
		},
		"filter": func() Node {
			return Serial(NewBox("mf", MustParseSignature("(<n>) -> (<n>)"), slowBody),
				MustFilter("{<n>} -> {<n>=<n>+1}"))
		},
		"split": func() Node {
			return NamedSplit("ms",
				NewBox("msb", MustParseSignature("(<n>) -> (<n>)"), slowBody), "k")
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			base := goroutineCount()
			for i := 0; i < 5; i++ {
				h := Start(context.Background(), mk(), WithBuffer(1))
				done := make(chan struct{})
				go func() {
					defer close(done)
					for j := 0; j < 40; j++ {
						if h.Send(NewRecord().SetTag("n", j).SetTag("k", j%4)) != nil {
							return
						}
					}
				}()
				// Consume a couple of results so the stream is genuinely
				// mid-flight, then cancel with records queued everywhere.
				for j := 0; j < 2; j++ {
					select {
					case <-h.Out():
					case <-time.After(time.Second):
					}
				}
				h.Cancel()
				<-done
				h.Wait()
			}
			waitForGoroutines(t, base+3)
		})
	}
}

// earlyStopNode forwards the first `limit` records, then stops consuming —
// the deterministic early-exit case for the Discard accounting: everything
// the upstream delivers after the limit must be drained and counted.
type earlyStopNode struct{ limit int }

func (n *earlyStopNode) name() string   { return "earlystop" }
func (n *earlyStopNode) String() string { return "earlystop" }
func (n *earlyStopNode) sig(*checker) (RecType, RecType) {
	any := RecType{Variant{}}
	return any, any
}

func (n *earlyStopNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	seen := 0
	for seen < n.limit {
		it, ok := in.recv()
		if !ok {
			return
		}
		if it.rec != nil {
			seen++
		}
		if !out.send(it) {
			break
		}
	}
	in.Discard()
}

// Tail-draining is accounted: a node that exits early hands its input to
// streamReader.Discard, and the records thrown away show up under
// "stream.discarded" — no anonymous goroutines silently eating streams.
func TestDiscardedRecordsCounted(t *testing.T) {
	base := goroutineCount()
	const total, kept = 12, 5
	n := Serial(&earlyStopNode{limit: kept}, incBox("dc", 1))
	inputs := seqInputs(total, func(i int, r *Record) { r.SetTag("n", i) })
	out, stats, err := RunAll(context.Background(), n, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != kept {
		t.Fatalf("got %d records, want %d", len(out), kept)
	}
	// The background drainer folds its count when the stream closes; give
	// it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for stats.Counter("stream.discarded") != total-kept {
		if time.Now().After(deadline) {
			t.Fatalf("stream.discarded = %d, want %d",
				stats.Counter("stream.discarded"), total-kept)
		}
		time.Sleep(time.Millisecond)
	}
	if fr := stats.Counter("stream.frames"); fr == 0 {
		t.Fatal("transport counters missing: stream.frames = 0")
	}
	waitForGoroutines(t, base+3)
}

// TestNoLeakSplitReplicaChurn is the standalone replica-leak regression: a
// long-lived split run whose key population churns must not accumulate
// replica goroutines.  Both reclamation paths are exercised — the in-band
// close protocol and the idle reaper — and the live-replica gauge must read
// 0 while the run is still up (the gauge only grew before this fix).
func TestNoLeakSplitReplicaChurn(t *testing.T) {
	base := goroutineCount()
	for _, mode := range []string{"close", "reap"} {
		t.Run(mode, func(t *testing.T) {
			opts := []Option{WithBuffer(4)}
			if mode == "reap" {
				opts = append(opts, WithReplicaIdleReap(20*time.Millisecond))
			}
			n := NamedSplit("churn",
				Serial(incBox("ci", 1), NamedStar("cloop", decBox(), MustParsePattern("{<done>}"))),
				"k")
			h := Start(context.Background(), n, opts...)
			go func() {
				for r := range h.Out() {
					_ = r
				}
			}()
			const keys = 40
			for k := 0; k < keys; k++ {
				if err := h.Send(NewRecord().SetTag("n", 3).SetTag("k", k)); err != nil {
					t.Fatal(err)
				}
				if mode == "close" {
					if err := h.Send(NewReplicaClose("k", k)); err != nil {
						t.Fatal(err)
					}
				}
			}
			gauge := func() int64 { return h.Stats().Counter("split.churn.replicas") }
			reclaimed := func() int64 {
				return h.Stats().Counter("split.churn.closed") +
					h.Stats().Counter("split.churn.reaped")
			}
			// Wait for all reclamations first — the gauge transiently reads
			// 0 between churn pairs still queued in the boundary stream.
			deadline := time.Now().Add(5 * time.Second)
			for reclaimed() != keys && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if r := reclaimed(); r != keys {
				t.Fatalf("reclaimed %d of %d replicas (%s mode)", r, keys, mode)
			}
			for gauge() != 0 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if g := gauge(); g != 0 {
				t.Fatalf("%d replicas still live after churn (%s mode)", g, mode)
			}
			// Replica goroutines must be gone while the run itself is live.
			waitForGoroutines(t, base+16)
			h.Close()
			h.Wait()
		})
	}
	waitForGoroutines(t, base+3)
}

func TestNoLeakUnconsumedOutput(t *testing.T) {
	// Cancel with records still queued in the output adapter and a
	// sender still blocked on backpressure; h.Out() is never read.
	base := goroutineCount()
	for i := 0; i < 5; i++ {
		h := Start(context.Background(), incBox("u", 1), WithBuffer(2))
		sendDone := make(chan struct{})
		go func() {
			defer close(sendDone)
			for j := 0; j < 10; j++ {
				if h.Send(recN(j)) != nil {
					return
				}
			}
		}()
		time.Sleep(time.Millisecond)
		h.Cancel()
		<-sendDone
		h.Wait()
	}
	waitForGoroutines(t, base+3)
}
