package core

import (
	"os"
	"sync"
	"sync/atomic"
)

// Arenas — the recycling half of the zero-allocation record plane.
//
// The stream transport owns two sync.Pool arenas: one for records, one for
// the []item slabs that back multi-item frames.  The life cycle follows the
// S-Net ownership discipline (exactly one component holds a record at a
// time), which gives every record a well-defined release point:
//
//   - acquire: runtime-internal producers — box emitters, filter outputs,
//     synchrocell merges, service ingress decoding — take records from the
//     arena instead of the heap;
//   - release: the component that consumes a record without forwarding it
//     returns it — boxes after invoking the user function (box functions see
//     bound argument values, never the record), filters after Apply,
//     synchrocells after firing, drop paths, and streamReader.Discard /
//     the service demux for records nobody will read;
//   - disown: records that cross the network boundary to user code
//     (Handle.Out, service egress) leave the arena's domain — they stay
//     plain GC-managed records.
//
// Records built with NewRecord are caller-owned and never pooled: releasing
// one is a no-op, so user code that holds on to its inputs (benchmark
// harnesses reuse whole input slices) is unaffected.
//
// Accounting is global and monotonic: acquired = recycled + disowned + live.
// The leak tests assert live returns to its baseline after a drained run, so
// a pooled-but-unreleased record is a test failure, not a silent slow leak.
// SNET_RECORD_POOL=0 disables recycling (acquire falls back to NewRecord)
// without changing any semantics — the triage knob for suspected aliasing
// bugs.

var (
	recordPoolOn = os.Getenv("SNET_RECORD_POOL") != "0"
	recordPool   = sync.Pool{New: func() any { return new(Record) }}

	poolAcquired atomic.Int64
	poolRecycled atomic.Int64
	poolDisowned atomic.Int64
)

// AcquireRecord returns an empty runtime-owned record from the arena.  It
// must be balanced by ReleaseRecord (or by crossing the network boundary,
// which disowns it); use NewRecord for caller-owned records.
func AcquireRecord() *Record { return acquireRecord() }

func acquireRecord() *Record {
	poolAcquired.Add(1)
	if !recordPoolOn {
		r := NewRecord()
		r.pooled = true
		return r
	}
	r := recordPool.Get().(*Record)
	r.shape = emptyShape
	r.pooled = true
	return r
}

// ReleaseRecord returns a runtime-owned record to the arena.  Caller-owned
// records (NewRecord) and nil are ignored.  Releasing the same record twice
// panics; using a record after releasing it nil-dereferences — both are
// ownership bugs the arena is designed to surface.
func ReleaseRecord(r *Record) { releaseRecord(r) }

func releaseRecord(r *Record) {
	if r == nil || !r.pooled {
		return
	}
	if r.shape == nil {
		panic("core: record released twice")
	}
	poolRecycled.Add(1)
	r.shape = nil // poison: any use after release faults immediately
	for i := range r.fvals {
		r.fvals[i] = nil
	}
	r.fvals = r.fvals[:0]
	r.tvals = r.tvals[:0]
	if recordPoolOn {
		recordPool.Put(r)
	}
}

// disownRecord hands a runtime-owned record to user code: it will not be
// recycled, and the arena stops accounting for it.
func disownRecord(r *Record) {
	if r != nil && r.pooled {
		r.pooled = false
		poolDisowned.Add(1)
	}
}

// RecordPoolStats is a snapshot of the record arena's accounting.
type RecordPoolStats struct {
	Acquired int64 // records handed out by the arena
	Recycled int64 // records released back
	Disowned int64 // records handed to user code at the boundary
}

// Live reports how many arena records are currently held by the runtime.
func (s RecordPoolStats) Live() int64 { return s.Acquired - s.Recycled - s.Disowned }

// PoolStats snapshots the process-global record-arena counters.  The
// counters are monotonic; leak tests compare Live() across a drained run.
func PoolStats() RecordPoolStats {
	return RecordPoolStats{
		Acquired: poolAcquired.Load(),
		Recycled: poolRecycled.Load(),
		Disowned: poolDisowned.Load(),
	}
}

// Frame slabs.  Multi-item frames need a backing array per flush; recycling
// fixed-size slabs through a pool makes the batched hot path allocation-free
// for every batch size up to frameSlabCap.  Readers release a slab once the
// frame is fully consumed (finishFrame); larger batches fall back to plain
// allocation and are simply dropped to the GC.

const frameSlabCap = 64

var frameSlabPool = sync.Pool{New: func() any { return new([frameSlabCap]item) }}

// acquireFrameSlab returns an empty []item with capacity >= n; capacity
// frameSlabCap marks it recyclable.
func acquireFrameSlab(n int) []item {
	if n > frameSlabCap || !recordPoolOn {
		return make([]item, 0, n)
	}
	p := frameSlabPool.Get().(*[frameSlabCap]item)
	return p[:0]
}

// releaseFrameSlab recycles a slab acquired from the pool; foreign slices
// (over-sized batches) are ignored.  The slab is cleared first so it retains
// no record pointers while pooled.
func releaseFrameSlab(s []item) {
	if cap(s) != frameSlabCap || !recordPoolOn {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = item{}
	}
	frameSlabPool.Put((*[frameSlabCap]item)(s))
}
