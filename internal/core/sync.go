package core

import "strings"

// syncNode is an S-Net synchrocell [| {p1}, {p2}, ... |] — part of the
// S-Net language (Grelck/Scholz/Shafarenko, IFL'06) though not exercised by
// the paper's sudoku networks; provided as the language's join primitive.
//
// A synchrocell waits until it has seen one record matching each of its
// patterns, keeping the first match per pattern; it then emits the merger of
// the stored records (labels of earlier patterns take precedence) and
// becomes a transparent identity for the rest of its lifetime.  Records that
// match no unfilled pattern pass through unchanged.
type syncNode struct {
	label    string
	patterns []Pattern
}

// Sync builds a synchrocell over the given patterns (at least two).
func Sync(patterns ...Pattern) Node {
	return NamedSync(autoName("sync"), patterns...)
}

// NamedSync is Sync with an explicit stats label, so experiments can read
// "sync.<name>.fired" / "sync.<name>.starved" counters and topologies carry
// a stable node name (used by the wavefront and divide-and-conquer workload
// suites, whose join cells are the measured artifact).
func NamedSync(name string, patterns ...Pattern) Node {
	if len(patterns) < 2 {
		panic("core: Sync needs at least two patterns")
	}
	return &syncNode{label: name, patterns: patterns}
}

func (n *syncNode) name() string { return n.label }

func (n *syncNode) String() string {
	parts := make([]string, len(n.patterns))
	for i, p := range n.patterns {
		parts[i] = p.String()
	}
	return "[| " + strings.Join(parts, ", ") + " |]"
}

func (n *syncNode) sig(*checker) (RecType, RecType) {
	in := make(RecType, len(n.patterns))
	merged := Variant{}
	for i, p := range n.patterns {
		in[i] = p.Variant
		merged = merged.Union(p.Variant)
	}
	return in, RecType{merged}
}

func (n *syncNode) run(env *runEnv, in *streamReader, out *streamWriter) {
	defer out.close()
	in.autoFlush(out)
	storage := make([]*Record, len(n.patterns))
	fired := false
	forward := func(it item) bool { return out.send(it) }
	for {
		it, ok := in.recv()
		if !ok {
			break
		}
		if it.mk != nil || fired {
			if !forward(it) {
				in.Discard()
				return
			}
			continue
		}
		rec := it.rec
		env.trace(n.label, "in", rec)
		stored := false
		for i, p := range n.patterns {
			if storage[i] == nil && p.Matches(rec) {
				storage[i] = rec
				stored = true
				break
			}
		}
		if !stored {
			if !forward(it) {
				in.Discard()
				return
			}
			continue
		}
		complete := true
		for _, s := range storage {
			if s == nil {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		// Merge: earlier patterns take precedence on label clashes.
		merged := storage[0].copyInto(acquireRecord())
		for _, s := range storage[1:] {
			inheritInto(merged, s, merged.Labels())
		}
		// The stored records were consumed by the merge; return them.
		for _, s := range storage {
			releaseRecord(s)
		}
		env.trace(n.label, "out", merged)
		env.stats.Add("sync."+n.label+".fired", 1)
		fired = true
		storage = nil
		if !out.sendRecord(merged) {
			in.Discard()
			return
		}
	}
	// Unfired storage at stream end is discarded; count it so tests and
	// users can detect starved synchrocells.
	for _, s := range storage {
		if s != nil {
			env.stats.Add("sync."+n.label+".starved", 1)
			releaseRecord(s)
		}
	}
}
