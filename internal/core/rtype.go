package core

import (
	"sort"
	"strings"
)

// Label names a field or tag.  Tags are written <name> in the surface
// syntax and are distinguished structurally here.
type Label struct {
	Name  string
	IsTag bool
}

// Field returns a field label.
func Field(name string) Label { return Label{Name: name} }

// Tag returns a tag label.
func Tag(name string) Label { return Label{Name: name, IsTag: true} }

func (l Label) String() string {
	if l.IsTag {
		return "<" + l.Name + ">"
	}
	return l.Name
}

// Variant is a record type: a set of labels.  Structural subtyping (§4):
// a record type t1 is a subtype of t2 iff t2 ⊆ t1 — records with more
// labels are more specific.
type Variant map[Label]struct{}

// NewVariant builds a variant from labels.
func NewVariant(labels ...Label) Variant {
	v := make(Variant, len(labels))
	for _, l := range labels {
		v[l] = struct{}{}
	}
	return v
}

// Has reports membership.
func (v Variant) Has(l Label) bool {
	_, ok := v[l]
	return ok
}

// SubsetOf reports whether every label of v appears in w.
func (v Variant) SubsetOf(w Variant) bool {
	if len(v) > len(w) {
		return false
	}
	for l := range v {
		if !w.Has(l) {
			return false
		}
	}
	return true
}

// SubtypeOf reports the S-Net record subtyping relation: v ⊑ w iff w ⊆ v.
func (v Variant) SubtypeOf(w Variant) bool { return w.SubsetOf(v) }

// Union returns the union of two variants.
func (v Variant) Union(w Variant) Variant {
	out := make(Variant, len(v)+len(w))
	for l := range v {
		out[l] = struct{}{}
	}
	for l := range w {
		out[l] = struct{}{}
	}
	return out
}

// Equal reports set equality.
func (v Variant) Equal(w Variant) bool { return v.SubsetOf(w) && w.SubsetOf(v) }

// Labels returns the sorted labels (fields first, then tags, each sorted by
// name) for deterministic rendering.
func (v Variant) Labels() []Label {
	out := make([]Label, 0, len(v))
	for l := range v {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IsTag != out[j].IsTag {
			return !out[i].IsTag
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (v Variant) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range v.Labels() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteByte('}')
	return b.String()
}

// RecType is a multivariant record type: a disjunction of variants.
type RecType []Variant

// SubtypeOf implements multivariant subtyping (§4): x ⊑ y iff every variant
// of x is a subtype of some variant of y.
func (x RecType) SubtypeOf(y RecType) bool {
	for _, v := range x {
		ok := false
		for _, w := range y {
			if v.SubtypeOf(w) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Union concatenates two multivariant types.
func (x RecType) Union(y RecType) RecType {
	out := make(RecType, 0, len(x)+len(y))
	out = append(out, x...)
	out = append(out, y...)
	return out
}

func (x RecType) String() string {
	if len(x) == 0 {
		return "{}"
	}
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = v.String()
	}
	return strings.Join(parts, " | ")
}

// MatchScore scores how well a record's label set matches a multivariant
// input type: the size of the largest variant that the record satisfies
// (variant ⊆ record labels), or -1 if no variant matches.  The parallel
// combinator routes each record to the branch with the higher score — the
// paper's "better match" rule; larger variants are more specific.
func MatchScore(rec *Record, t RecType) int {
	best := -1
	for _, v := range t {
		if !recordSatisfies(rec, v) {
			continue
		}
		if len(v) > best {
			best = len(v)
		}
	}
	return best
}

// recordSatisfies reports whether the record carries every label of v.
func recordSatisfies(rec *Record, v Variant) bool {
	for l := range v {
		if !rec.HasLabel(l) {
			return false
		}
	}
	return true
}
