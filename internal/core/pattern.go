package core

// Pattern is a type pattern with an optional tag guard, as used by serial
// replication exit conditions and synchrocells.  The paper writes patterns
// as "{<done>}" and guarded patterns as "{<level>} | <level> > 40".
type Pattern struct {
	Variant Variant
	Guard   TagExpr // nil means unconditionally
}

// Matches reports whether the record satisfies the pattern: it must carry
// every label of the variant and, if a guard is present, the guard must
// evaluate to nonzero over the record's tags.  A guard that fails to
// evaluate (e.g. references an absent tag) does not match.
func (p Pattern) Matches(r *Record) bool {
	return recordSatisfies(r, p.Variant) && p.guardOK(r)
}

// guardOK evaluates the optional tag guard over the record's tags; a guard
// that fails to evaluate (e.g. references an absent tag) does not pass.
func (p Pattern) guardOK(r *Record) bool {
	if p.Guard == nil {
		return true
	}
	v, err := evalTagRec(p.Guard, r)
	return err == nil && v != 0
}

func (p Pattern) String() string {
	s := p.Variant.String()
	if p.Guard != nil {
		s += " | " + p.Guard.String()
	}
	return s
}

// ParsePattern parses "{a, b, <c>}" optionally followed by a guard
// introduced with '|' (the paper's notation) or the keyword "if".
func ParsePattern(src string) (Pattern, error) {
	p, err := newParser(src)
	if err != nil {
		return Pattern{}, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return Pattern{}, err
	}
	if err := p.eof(); err != nil {
		return Pattern{}, err
	}
	return pat, nil
}

// MustParsePattern is ParsePattern panicking on error.
func MustParsePattern(src string) Pattern {
	pat, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return pat
}

func (p *parser) parsePattern() (Pattern, error) {
	v, err := p.parseBracedVariant()
	if err != nil {
		return Pattern{}, err
	}
	pat := Pattern{Variant: v}
	if p.accept(tokPipe) || (p.at(tokIdent) && p.peek().text == "if" && p.accept(tokIdent)) {
		g, err := p.parseTagExpr()
		if err != nil {
			return Pattern{}, err
		}
		pat.Guard = g
	}
	return pat, nil
}

// parseBracedVariant parses "{a, b, <c>}" into a label set.
func (p *parser) parseBracedVariant() (Variant, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	v := Variant{}
	if p.accept(tokRBrace) {
		return v, nil
	}
	for {
		l, err := p.parseLabel()
		if err != nil {
			return nil, err
		}
		v[l] = struct{}{}
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return v, nil
	}
}

func (p *parser) parseLabel() (Label, error) {
	var l Label
	switch p.peek().kind {
	case tokIdent:
		l = Field(p.take().text)
	case tokTagName:
		l = Tag(p.take().text)
	default:
		return Label{}, p.errf("expected field or tag label, found %v", p.peek().kind)
	}
	// Reserved-namespace enforcement: signatures, patterns and filters all
	// parse labels through here, so no user network can consume, match or
	// synthesize the runtime's control labels (session multiplexing and the
	// replica close protocol depend on that).
	if IsReservedLabel(l.Name) {
		return Label{}, p.errf("label %s lies in the reserved %q namespace", l, ReservedTagPrefix)
	}
	return l, nil
}
