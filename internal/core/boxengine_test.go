package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// The concurrent box engine (boxengine.go) must overlap invocations while
// keeping the output stream byte-identical to sequential execution.

// gateBox blocks every invocation until `need` of them are in flight at
// once, proving genuine overlap without depending on timing.
func gateBox(name string, need int) (Node, *atomic.Int32) {
	var inflight atomic.Int32
	n := NewBox(name, MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			inflight.Add(1)
			deadline := time.Now().Add(5 * time.Second)
			for inflight.Load() < int32(need) {
				if time.Now().After(deadline) {
					return errors.New("gate never filled: no overlap")
				}
				select {
				case <-out.Done():
					return ErrCancelled
				case <-time.After(100 * time.Microsecond):
				}
			}
			return out.Out(1, args[0].(int))
		})
	return n, &inflight
}

func TestBoxEngineOverlapsInvocations(t *testing.T) {
	box, _ := gateBox("olap", 3)
	out, stats := runNet(t, box, seqInputs(6, func(i int, r *Record) { r.SetTag("n", i) }),
		WithBoxWorkers(4))
	if len(out) != 6 {
		t.Fatalf("got %d records", len(out))
	}
	if hw := stats.Max("box.olap.inflight"); hw < 3 {
		t.Fatalf("inflight high-water = %d, want >= 3", hw)
	}
	if stats.Max("box.olap.concurrency") != 4 {
		t.Fatalf("concurrency = %d, want 4", stats.Max("box.olap.concurrency"))
	}
	if stats.Counter("box.olap.calls") != 6 {
		t.Fatalf("calls = %d", stats.Counter("box.olap.calls"))
	}
}

func TestBoxEnginePreservesOrder(t *testing.T) {
	// Each input <seq> emits (seq,0)..(seq,2) after a seq-dependent delay;
	// a concurrent engine that released invocations as they finish would
	// interleave them.  The reorder stage must restore input order exactly.
	multi := NewBox("ord", MustParseSignature("(<seq>) -> (<seq>,<part>)"),
		func(args []any, out *Emitter) error {
			seq := args[0].(int)
			time.Sleep(time.Duration((seq%5)*300) * time.Microsecond)
			for part := 0; part < 3; part++ {
				if err := out.Out(1, seq, part); err != nil {
					return err
				}
			}
			return nil
		})
	const n = 30
	out, _ := runNet(t, multi, seqInputs(n, nil), WithBoxWorkers(8))
	if len(out) != 3*n {
		t.Fatalf("got %d records", len(out))
	}
	for i, r := range out {
		if tagOf(t, r, "seq") != i/3 || tagOf(t, r, "part") != i%3 {
			t.Fatalf("position %d: got seq=%d part=%d", i,
				tagOf(t, r, "seq"), tagOf(t, r, "part"))
		}
	}
}

func TestBoxEngineMarkerBarrier(t *testing.T) {
	// A concurrent jittery box inside deterministic combinators: the sort
	// markers crossing the box must still delimit exactly the records routed
	// before them, or the det merge falls apart.
	n := SplitDet(jitterBox("mb", 91), "k")
	inputs := seqInputs(detN, func(i int, r *Record) { r.SetTag("k", i%4) })
	out, _ := runNet(t, n, inputs, WithBoxWorkers(8))
	assertOrdered(t, collectSeqs(t, out), detN)
}

func TestBoxEnginePanicIsolation(t *testing.T) {
	var errs int32
	out, stats := func() ([]*Record, *Stats) {
		out, stats, err := RunAll(context.Background(), poisonBox("pc", 7),
			seqInputs(20, func(i int, r *Record) { r.SetTag("n", i) }),
			WithBoxWorkers(4),
			WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}()
	if len(out) != 19 {
		t.Fatalf("got %d records, want 19 survivors", len(out))
	}
	if errs != 1 || stats.Counter("box.pc.panics") != 1 {
		t.Fatalf("errs=%d panics=%d", errs, stats.Counter("box.pc.panics"))
	}
}

func TestBoxEngineRejectsUnbindable(t *testing.T) {
	var errs int32
	out, stats, err := RunAll(context.Background(), incBox("rj", 1),
		[]*Record{recN(1), NewRecord().SetField("other", 1), recN(2)},
		WithBoxWorkers(4),
		WithErrorHandler(func(error) { atomic.AddInt32(&errs, 1) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || errs != 1 || stats.Counter("box.rj.rejected") != 1 {
		t.Fatalf("out=%d errs=%d rejected=%d", len(out), errs,
			stats.Counter("box.rj.rejected"))
	}
}

func TestNewBoxConcurrentOverridesRunDefault(t *testing.T) {
	// The run default is sequential, but the box pins its own width.
	var inflight atomic.Int32
	box := NewBoxConcurrent("own", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			inflight.Add(1)
			deadline := time.Now().Add(5 * time.Second)
			for inflight.Load() < 2 {
				if time.Now().After(deadline) {
					return errors.New("no overlap despite NewBoxConcurrent")
				}
				time.Sleep(100 * time.Microsecond)
			}
			return out.Out(1, args[0].(int))
		}, 4)
	out, stats := runNet(t, box, seqInputs(4, func(i int, r *Record) { r.SetTag("n", i) }),
		WithBoxWorkers(1))
	if len(out) != 4 {
		t.Fatalf("got %d records", len(out))
	}
	if stats.Max("box.own.concurrency") != 4 {
		t.Fatalf("concurrency = %d, want 4", stats.Max("box.own.concurrency"))
	}
}

func TestNewBoxConcurrentPinsSequential(t *testing.T) {
	// Width 1 pins the box to the sequential path even when the run default
	// is wide: at no point may two invocations overlap.
	var inflight, overlapped atomic.Int32
	box := NewBoxConcurrent("pin", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			if inflight.Add(1) > 1 {
				overlapped.Store(1)
			}
			time.Sleep(200 * time.Microsecond)
			inflight.Add(-1)
			return out.Out(1, args[0].(int))
		}, 1)
	out, stats := runNet(t, box, seqInputs(10, func(i int, r *Record) { r.SetTag("n", i) }),
		WithBoxWorkers(16))
	if len(out) != 10 {
		t.Fatalf("got %d records", len(out))
	}
	if overlapped.Load() != 0 {
		t.Fatal("pinned-sequential box overlapped invocations")
	}
	if stats.Max("box.pin.concurrency") != 1 {
		t.Fatalf("concurrency = %d, want 1", stats.Max("box.pin.concurrency"))
	}
}

// Satellite audit: a stopped emitter must refuse further emissions without
// counting them, and cancelled invocations must not count as completed
// calls — "box.<name>.calls" and "box.<name>.emitted" describe what
// actually reached the box's output stream.
func TestEmitterStoppedStopsCounting(t *testing.T) {
	var sawStopped, emittedAfterStop, calls int32
	blocker := NewBox("stop", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			atomic.AddInt32(&calls, 1)
			for i := 0; ; i++ {
				before := out.Emitted()
				if err := out.Out(1, i); err != nil {
					if !errors.Is(err, ErrCancelled) {
						return err
					}
					atomic.StoreInt32(&sawStopped, 1)
					// Emitter is stopped: another Out must fail fast
					// and not advance the emission count.
					if err2 := out.Out(1, i); !errors.Is(err2, ErrCancelled) {
						return errors.New("second Out after stop did not fail")
					}
					if out.Emitted() != before {
						atomic.StoreInt32(&emittedAfterStop, 1)
					}
					return ErrCancelled
				}
			}
		})
	h := Start(context.Background(), blocker, WithBuffer(0))
	if err := h.Send(recN(1)); err != nil {
		t.Fatal(err)
	}
	// The box is now looping emissions nobody consumes; cancel mid-stream.
	time.Sleep(2 * time.Millisecond)
	h.Cancel()
	h.Wait()
	// Wait waits for the output adapter, not the node goroutine; the box
	// settles its accounting just before exiting, so poll the (locked)
	// stats until the cancelled invocation has been counted.
	stats := h.Stats()
	deadline := time.Now().Add(5 * time.Second)
	for stats.Counter("box.stop.cancelled") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&calls) != 1 || atomic.LoadInt32(&sawStopped) != 1 {
		t.Fatalf("calls=%d sawStopped=%d", calls, sawStopped)
	}
	if atomic.LoadInt32(&emittedAfterStop) != 0 {
		t.Fatal("Emitted() advanced after the emitter was stopped")
	}
	if stats.Counter("box.stop.calls") != 0 {
		t.Fatalf("cancelled invocation counted as completed call: %d",
			stats.Counter("box.stop.calls"))
	}
	if stats.Counter("box.stop.cancelled") != 1 {
		t.Fatalf("cancelled = %d, want 1", stats.Counter("box.stop.cancelled"))
	}
}

func TestBoxEmittedCounterMatchesOutput(t *testing.T) {
	fan := NewBox("cnt", MustParseSignature("(<n>) -> (<n>)"),
		func(args []any, out *Emitter) error {
			for i := 0; i < args[0].(int); i++ {
				if err := out.Out(1, i); err != nil {
					return err
				}
			}
			return nil
		})
	for _, w := range []int{1, 4} {
		out, stats := runNet(t, fan, []*Record{recN(2), recN(3), recN(4)}, WithBoxWorkers(w))
		if len(out) != 9 {
			t.Fatalf("W=%d: got %d records", w, len(out))
		}
		if got := stats.Counter("box.cnt.emitted"); got != 9 {
			t.Fatalf("W=%d: emitted = %d, want 9", w, got)
		}
		if got := stats.Counter("box.cnt.calls"); got != 3 {
			t.Fatalf("W=%d: calls = %d, want 3", w, got)
		}
	}
}
